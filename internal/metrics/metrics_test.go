package metrics

import (
	"math"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference"
	"breval/internal/validation"
)

func TestConfusionBasics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := c.N(); got != 100 {
		t.Errorf("N = %d", got)
	}
	if got := c.PPV(); got != 0.8 {
		t.Errorf("PPV = %v", got)
	}
	if got := c.TPR(); math.Abs(got-8.0/13) > 1e-12 {
		t.Errorf("TPR = %v", got)
	}
	if got := c.MCC(); got <= 0 || got >= 1 {
		t.Errorf("MCC = %v, want in (0,1)", got)
	}
	if got := c.FowlkesMallows(); math.Abs(got-math.Sqrt(0.8*8.0/13)) > 1e-12 {
		t.Errorf("FM = %v", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	if !math.IsNaN((Confusion{TN: 5}).PPV()) {
		t.Error("PPV with no positive predictions should be NaN")
	}
	if !math.IsNaN((Confusion{TN: 5}).TPR()) {
		t.Error("TPR with no positives should be NaN")
	}
	if got := (Confusion{TN: 5}).MCC(); got != 0 {
		t.Errorf("degenerate MCC = %v, want 0", got)
	}
	perfect := Confusion{TP: 10, TN: 10}
	if got := perfect.MCC(); got != 1 {
		t.Errorf("perfect MCC = %v", got)
	}
	inverted := Confusion{FP: 10, FN: 10}
	if got := inverted.MCC(); got != -1 {
		t.Errorf("inverted MCC = %v", got)
	}
}

func TestEvaluate(t *testing.T) {
	pred := inference.NewResult("t", 8)
	truth := validation.NewSnapshot()

	add := func(a, b asn.ASN, tl validation.Label, pr asgraph.Rel) {
		l := asgraph.NewLink(a, b)
		truth.Add(l, tl)
		pred.Set(l, pr)
	}
	p2p := validation.Label{Type: asgraph.P2P}
	p2c := func(p asn.ASN) validation.Label {
		return validation.Label{Type: asgraph.P2C, Provider: p}
	}
	add(1, 2, p2p, asgraph.P2PRel())     // P2P TP
	add(1, 3, p2p, asgraph.P2CRel(1))    // P2P FN / P2C FP
	add(1, 4, p2c(1), asgraph.P2PRel())  // P2C FN / P2P FP
	add(1, 5, p2c(1), asgraph.P2CRel(1)) // P2C TP
	add(1, 6, p2c(1), asgraph.P2CRel(6)) // direction flip: P2C FN, P2P TN
	add(7, 8, p2p, asgraph.P2PRel())     // P2P TP (filtered out below)

	// Multi-label entry must be skipped.
	ml := asgraph.NewLink(20, 21)
	truth.Add(ml, p2p)
	truth.Add(ml, p2c(20))
	pred.Set(ml, asgraph.P2PRel())
	// Entry the prediction does not cover must be skipped.
	truth.Add(asgraph.NewLink(30, 31), p2p)

	all := Evaluate(pred, truth, nil)
	if all.P2P.TP != 2 || all.P2P.FN != 1 || all.P2P.FP != 1 || all.P2P.TN != 2 {
		t.Errorf("P2P matrix = %+v", all.P2P)
	}
	if all.P2C.TP != 1 || all.P2C.FN != 2 || all.P2C.FP != 1 || all.P2C.TN != 2 {
		t.Errorf("P2C matrix = %+v", all.P2C)
	}
	if all.LCP != 3 || all.LCC != 3 {
		t.Errorf("LCP=%d LCC=%d", all.LCP, all.LCC)
	}
	if all.PPVP != all.P2P.PPV() || all.TPRC != all.P2C.TPR() || all.MCC != all.P2P.MCC() {
		t.Error("row fields inconsistent with matrices")
	}

	filtered := Evaluate(pred, truth, func(l asgraph.Link) bool { return l.A < 7 })
	if filtered.P2P.TP != 1 {
		t.Errorf("filtered P2P TP = %d, want 1", filtered.P2P.TP)
	}
	if filtered.LCP != 2 {
		t.Errorf("filtered LCP = %d, want 2", filtered.LCP)
	}
}

func TestDelta(t *testing.T) {
	for _, c := range []struct {
		group, total float64
		want         int
	}{
		{0.99, 0.97, 1},
		{0.975, 0.97, 0},
		{0.965, 0.97, 0},
		{0.955, 0.97, -1},
		{0.93, 0.97, -1},
		{0.91, 0.97, -2},
		{0.85, 0.97, -3},
		{math.NaN(), 0.97, 0},
	} {
		if got := Delta(c.group, c.total); got != c.want {
			t.Errorf("Delta(%v, %v) = %d, want %d", c.group, c.total, got, c.want)
		}
	}
}
