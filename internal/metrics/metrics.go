// Package metrics implements the classification-correctness metrics of
// §6 of Prehn & Feldmann (IMC'21): per-class confusion matrices with
// either P2P or P2C as the positive class, precision (PPV), recall
// (TPR), Matthews correlation coefficient (MCC) and the
// Fowlkes–Mallows index.
//
// Directionality: a P2C prediction with the wrong provider endpoint is
// a misclassification. It counts as a false negative for the P2C
// matrix (the true relationship was not recovered) and as a true
// negative for the P2P matrix (neither truth nor prediction is P2P),
// keeping every link counted exactly once per matrix.
package metrics

import (
	"math"

	"breval/internal/asgraph"
	"breval/internal/inference"
	"breval/internal/validation"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// N returns the total number of classified samples.
func (c Confusion) N() int { return c.TP + c.FP + c.TN + c.FN }

// PPV returns precision (positive predictive value). It is NaN when no
// positive predictions exist.
func (c Confusion) PPV() float64 {
	d := c.TP + c.FP
	if d == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(d)
}

// TPR returns recall (true positive rate). It is NaN when no positive
// samples exist.
func (c Confusion) TPR() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(d)
}

// MCC returns Matthews correlation coefficient in [-1, 1]. Following
// Chicco et al., a zero denominator yields 0 (coin-toss correctness).
func (c Confusion) MCC() float64 {
	tp, fp, tn, fn := float64(c.TP), float64(c.FP), float64(c.TN), float64(c.FN)
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / den
}

// FowlkesMallows returns the Fowlkes–Mallows index sqrt(PPV·TPR), or
// NaN when undefined.
func (c Confusion) FowlkesMallows() float64 {
	return math.Sqrt(c.PPV() * c.TPR())
}

// Row is one row of the paper's per-group validation tables: the P2P
// and P2C one-vs-rest views of the same links plus the symmetric MCC.
type Row struct {
	// PPVP/TPRP/LCP describe the P2P-positive view: precision, recall
	// and the number of validated P2P links in the group.
	PPVP, TPRP float64
	LCP        int
	// PPVC/TPRC/LCC describe the P2C-positive view.
	PPVC, TPRC float64
	LCC        int
	// MCC is Matthews correlation coefficient of the group.
	MCC float64
	// P2P and P2C are the underlying confusion matrices.
	P2P, P2C Confusion
}

// LinkFilter selects the links a Row is computed over; nil selects
// all.
type LinkFilter func(asgraph.Link) bool

// Evaluate scores an inference against a cleaned validation snapshot
// over the links accepted by filter. Validation entries the inference
// did not classify are skipped (they are invisible links), matching
// the paper's evaluation of inferred snapshots.
func Evaluate(pred *inference.Result, truth *validation.Snapshot, filter LinkFilter) Row {
	var row Row
	truth.ForEach(func(l asgraph.Link, lbs []validation.Label) {
		if len(lbs) != 1 {
			return // uncleaned multi-label entry
		}
		if filter != nil && !filter(l) {
			return
		}
		p, ok := pred.Rel(l)
		if !ok {
			return
		}
		t := lbs[0]

		truthP2P := t.Type == asgraph.P2P
		predP2P := p.Type == asgraph.P2P
		switch {
		case truthP2P && predP2P:
			row.P2P.TP++
		case truthP2P && !predP2P:
			row.P2P.FN++
		case !truthP2P && predP2P:
			row.P2P.FP++
		default:
			row.P2P.TN++
		}

		truthP2C := t.Type == asgraph.P2C
		predP2CMatch := p.Type == asgraph.P2C && t.Type == asgraph.P2C && p.Provider == t.Provider
		predP2CClaim := p.Type == asgraph.P2C
		switch {
		case truthP2C && predP2CMatch:
			row.P2C.TP++
		case truthP2C: // missed or direction-flipped
			row.P2C.FN++
		case predP2CClaim: // true P2P predicted as P2C
			row.P2C.FP++
		default:
			row.P2C.TN++
		}

		if truthP2P {
			row.LCP++
		}
		if truthP2C {
			row.LCC++
		}
	})
	row.PPVP, row.TPRP = row.P2P.PPV(), row.P2P.TPR()
	row.PPVC, row.TPRC = row.P2C.PPV(), row.P2C.TPR()
	row.MCC = row.P2P.MCC()
	return row
}

// Delta classifies a per-group metric against the whole-dataset
// baseline using the paper's colour thresholds: +1 when at least 1%
// better (green), 0 within 1%, -1/-2/-3 when at least 1%/5%/10% worse
// (yellow/orange/red).
func Delta(group, total float64) int {
	if math.IsNaN(group) || math.IsNaN(total) {
		return 0
	}
	d := group - total
	switch {
	case d >= 0.01:
		return 1
	case d > -0.01:
		return 0
	case d > -0.05:
		return -1
	case d > -0.10:
		return -2
	default:
		return -3
	}
}
