package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// clampCounts keeps random confusion matrices in a sane range.
func clampCounts(v uint16) int { return int(v % 1000) }

// Property: MCC is bounded by [-1, 1] and symmetric under swapping
// the positive class (TP<->TN, FP<->FN) for arbitrary matrices.
func TestMCCBoundsAndSymmetryProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint16) bool {
		c := Confusion{TP: clampCounts(tp), FP: clampCounts(fp), TN: clampCounts(tn), FN: clampCounts(fn)}
		m := c.MCC()
		if math.IsNaN(m) || m < -1-1e-9 || m > 1+1e-9 {
			return false
		}
		swapped := Confusion{TP: c.TN, FP: c.FN, TN: c.TP, FN: c.FP}
		return math.Abs(m-swapped.MCC()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PPV, TPR and the Fowlkes-Mallows index are in [0, 1] when
// defined; FM² never exceeds max(PPV, TPR).
func TestRateBoundsProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint16) bool {
		c := Confusion{TP: clampCounts(tp), FP: clampCounts(fp), TN: clampCounts(tn), FN: clampCounts(fn)}
		ppv, tpr := c.PPV(), c.TPR()
		for _, v := range []float64{ppv, tpr} {
			if !math.IsNaN(v) && (v < 0 || v > 1) {
				return false
			}
		}
		fm := c.FowlkesMallows()
		if math.IsNaN(fm) {
			return true
		}
		if fm < 0 || fm > 1 {
			return false
		}
		return fm*fm <= math.Max(ppv, tpr)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a perfect classifier has MCC 1 for any class balance with
// both classes present.
func TestPerfectClassifierProperty(t *testing.T) {
	f := func(pos, neg uint16) bool {
		p, n := 1+clampCounts(pos), 1+clampCounts(neg)
		c := Confusion{TP: p, TN: n}
		return math.Abs(c.MCC()-1) < 1e-9 && c.PPV() == 1 && c.TPR() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Delta never reports "better" when the group value is
// below the total, and is monotone in the group value.
func TestDeltaMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		g := float64(a) / 255
		tot := float64(b) / 255
		d := Delta(g, tot)
		if g < tot && d > 0 {
			return false
		}
		if g > tot && d < 0 {
			return false
		}
		// Monotonicity: a higher group value never yields a lower class.
		return Delta(g+0.01, tot) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
