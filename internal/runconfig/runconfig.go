// Package runconfig is the single canonical configuration surface for
// a bias-analysis run. cmd/breval's CLI flags and cmd/brevald's JSON
// request bodies both resolve into the same Config, pass through the
// same Normalize/Validate pair, and derive the same hash-stable
// identity — so equivalent settings share checkpoint artifacts no
// matter which front end asked for them.
//
// A Config splits into two kinds of fields:
//
//   - Semantic fields (Seed, ASes, Policy, Algos, Only, MinLinks)
//     select what is computed and rendered. They feed Hash and are
//     exposed over JSON.
//   - Operational fields (timeouts, retries, checkpoint placement,
//     governor watermarks) select how the run executes. They never
//     feed Hash: retrying harder or moving the store must not change
//     a run's identity. Placement and watermark fields are
//     deliberately absent from JSON — a network client must not pick
//     server filesystem paths or resize the server's memory budget.
package runconfig

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"time"

	"breval/internal/core"
	"breval/internal/govern"
	"breval/internal/ingest"
	"breval/internal/validation"
)

// Duration is a time.Duration that travels through JSON as a Go
// duration string ("90s", "1h30m"); plain numbers are accepted as
// nanoseconds so a marshalled time.Duration round-trips too.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		td, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("runconfig: bad duration %q: %w", x, err)
		}
		*d = Duration(td)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("runconfig: duration must be a string like \"90s\" (got %T)", v)
	}
	return nil
}

// Config is one run's complete configuration. The zero value is not
// usable directly; start from Default so unset fields carry the
// calibrated defaults before Normalize/Validate.
type Config struct {
	// Semantic fields: what to compute. These feed Hash.
	Seed     int64    `json:"seed"`
	ASes     int      `json:"ases"`
	Policy   string   `json:"policy"`
	Algos    []string `json:"algos,omitempty"`
	Only     []string `json:"only,omitempty"`
	MinLinks int      `json:"min_links"`

	// RIBIn switches the path source from the simulator to real MRT
	// RIB dumps (see internal/ingest). Semantic — but its hash
	// contribution is the files' *content digest* (RIBDigest, resolved
	// by ResolveRIB), not the paths, so the same dump under a
	// different name shares artifacts and cache entries.
	// IngestMaxBadFrac is the ingest error budget; it feeds the hash
	// because it decides the run's verdict (within budget vs degraded),
	// and two verdicts must not alias one cache entry.
	RIBIn            []string `json:"rib_in,omitempty"`
	IngestMaxBadFrac float64  `json:"ingest_max_bad_frac,omitempty"`

	// Operational fields: how to execute. Never hashed. Timeout bounds
	// the whole run (the server clamps it to its own request ceiling),
	// StageTimeout each pipeline stage and experiment renderer.
	// IngestFileWorkers reads that many RIB dump files concurrently
	// (0 or 1 = serial); the parallel reader's ordered merge keeps the
	// output byte-identical, which is why the knob is operational.
	Timeout           Duration `json:"timeout,omitempty"`
	StageTimeout      Duration `json:"stage_timeout,omitempty"`
	StageRetries      int      `json:"stage_retries,omitempty"`
	IngestFileWorkers int      `json:"ingest_file_workers,omitempty"`

	// Host-controlled operational fields, set by CLI flags or server
	// startup configuration only — never by a JSON request.
	CheckpointDir string   `json:"-"`
	Resume        bool     `json:"-"`
	MemSoftMB     int64    `json:"-"`
	MemHardMB     int64    `json:"-"`
	StallTimeout  Duration `json:"-"`

	// QuarantineFile receives the ingest quarantine ledger (a server
	// must not let clients pick its filesystem paths, so this is
	// host-controlled). RIBDigest is the resolved content digest of
	// RIBIn — set by ResolveRIB, never by a request: a client-supplied
	// digest could alias a cache entry onto data it does not match.
	QuarantineFile string `json:"-"`
	RIBDigest      string `json:"-"`
}

// Default returns the calibrated paper-scale defaults, matching what
// cmd/breval has always run with no flags.
func Default() Config {
	return Config{
		Seed:     1,
		ASes:     8000,
		Policy:   "ignore",
		MinLinks: 100,
	}
}

// canonicalAlgos maps case-insensitive spellings to the canonical
// algorithm names used as map keys throughout internal/core.
var canonicalAlgos = map[string]string{
	"asrank":    core.AlgoASRank,
	"problink":  core.AlgoProbLink,
	"toposcope": core.AlgoTopoScope,
	"gao":       core.AlgoGao,
}

// RegisterFlags wires the config's fields onto fs under cmd/breval's
// historical flag names, so extracting this package changed no CLI
// surface. Current field values become the flag defaults — call on a
// Default() config.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", c.Seed, "world seed")
	fs.IntVar(&c.ASes, "ases", c.ASes, "number of ASes")
	fs.StringVar(&c.Policy, "policy", c.Policy, "ambiguous-label policy: ignore, p2p-if-first or always-p2c")
	fs.Var(csvFlag{&c.Only}, "only", "comma-separated experiments (fig1,fig2,fig3,tables,fig4-6,fig7-9,clean,case,hard,sources,reclass,evolve,unari,vps,complex); empty = all")
	fs.Var(csvFlag{&c.Algos}, "algos", "comma-separated algorithms; empty = all four")
	fs.IntVar(&c.MinLinks, "min-links", c.MinLinks, "minimum validated links for a table row")
	fs.Var(csvFlag{&c.RIBIn}, "rib-in", "comma-separated MRT RIB dump files (plain or gzip) ingested as the path source instead of simulating propagation")
	fs.Float64Var(&c.IngestMaxBadFrac, "ingest-max-bad-frac", c.IngestMaxBadFrac, "ingest error budget: fraction of RIB records allowed to be quarantined before the run degrades to partial (exit 3)")
	fs.StringVar(&c.QuarantineFile, "ingest-quarantine", c.QuarantineFile, "quarantine ledger file for damaged RIB records (JSON lines; created only when something is quarantined)")
	fs.IntVar(&c.IngestFileWorkers, "ingest-file-workers", c.IngestFileWorkers, "RIB dump files read concurrently (0 or 1 = serial; output is byte-identical either way)")
	fs.Var(durationFlag{&c.Timeout}, "timeout", "deadline for the whole run (0 = none)")
	fs.Var(durationFlag{&c.StageTimeout}, "experiment-timeout", "deadline per pipeline stage and per experiment renderer (0 = none)")
	fs.IntVar(&c.StageRetries, "stage-retries", c.StageRetries, "re-attempts for failed retryable stages")
	fs.StringVar(&c.CheckpointDir, "checkpoint-dir", c.CheckpointDir, "durable artifact store directory; stage outputs are checkpointed here")
	fs.BoolVar(&c.Resume, "resume", c.Resume, "reuse verified artifacts from -checkpoint-dir instead of recomputing")
	fs.Int64Var(&c.MemSoftMB, "mem-soft-mb", c.MemSoftMB, "soft memory watermark in MiB: heap use above it shrinks worker concurrency (0 = off)")
	fs.Int64Var(&c.MemHardMB, "mem-hard-mb", c.MemHardMB, "hard memory watermark in MiB: heap use above it sheds load to single-worker mode and exits 8 (0 = off)")
	fs.Var(durationFlag{&c.StallTimeout}, "stall-timeout", "watchdog heartbeat deadline for supervised workers; stalled workers are cancelled and the stage retried (0 = off)")
}

// ParseJSON decodes a server request body into a Config layered over
// the defaults, then normalizes and validates it. Unknown fields are
// rejected so a typoed knob fails loudly instead of silently running
// the default.
func ParseJSON(data []byte) (Config, error) {
	c := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("runconfig: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("runconfig: trailing data after config object")
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Normalize rewrites the config into its canonical spelling: policy
// lowercased, algorithm names mapped to their canonical casing,
// whitespace trimmed, empty slices nil, and zero-valued semantic
// fields replaced by the defaults they resolve to (ASes 0 means the
// paper-scale world, MinLinks 0 the paper's row threshold). Hash
// normalizes a copy itself, so two configs that differ only in
// spelling share an identity.
func (c *Config) Normalize() {
	c.Policy = strings.ToLower(strings.TrimSpace(c.Policy))
	c.Algos = normalizeList(c.Algos, func(s string) string {
		if canon, ok := canonicalAlgos[strings.ToLower(s)]; ok {
			return canon
		}
		return s
	})
	c.Only = normalizeList(c.Only, func(s string) string { return s })
	c.RIBIn = normalizeList(c.RIBIn, func(s string) string { return s })
	if c.ASes == 0 {
		c.ASes = 8000
	}
	if c.MinLinks == 0 {
		c.MinLinks = 100
	}
}

func normalizeList(in []string, canon func(string) string) []string {
	if len(in) == 0 {
		return nil
	}
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = canon(strings.TrimSpace(s))
	}
	return out
}

// Validate rejects configurations no run should start with. Call
// after Normalize.
func (c Config) Validate() error {
	switch c.Policy {
	case "ignore", "p2p-if-first", "always-p2c":
	default:
		return fmt.Errorf("unknown policy %q", c.Policy)
	}
	for _, a := range c.Algos {
		if _, ok := canonicalAlgos[strings.ToLower(a)]; !ok {
			return fmt.Errorf("unknown algorithm %q", a)
		}
	}
	for _, exp := range c.Only {
		if !core.KnownExperiment(exp) {
			return fmt.Errorf("unknown experiment %q", exp)
		}
	}
	if c.ASes < 0 {
		return fmt.Errorf("ases must be non-negative (got %d)", c.ASes)
	}
	if c.MinLinks < 0 {
		return fmt.Errorf("min-links must be non-negative (got %d)", c.MinLinks)
	}
	if c.StageRetries < 0 {
		return fmt.Errorf("-stage-retries must be non-negative (got %d)", c.StageRetries)
	}
	if c.Timeout < 0 || c.StageTimeout < 0 || c.StallTimeout < 0 {
		return fmt.Errorf("timeouts must be non-negative")
	}
	if c.Resume && c.CheckpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	for _, f := range c.RIBIn {
		if f == "" {
			return fmt.Errorf("-rib-in contains an empty file name")
		}
	}
	if c.IngestMaxBadFrac < 0 || c.IngestMaxBadFrac > 1 {
		return fmt.Errorf("-ingest-max-bad-frac must be in [0,1] (got %g)", c.IngestMaxBadFrac)
	}
	if c.IngestFileWorkers < 0 {
		return fmt.Errorf("-ingest-file-workers must be non-negative (got %d)", c.IngestFileWorkers)
	}
	if len(c.RIBIn) == 0 && (c.IngestMaxBadFrac != 0 || c.QuarantineFile != "" || c.IngestFileWorkers != 0) {
		return fmt.Errorf("ingest settings require -rib-in")
	}
	if c.MemSoftMB < 0 || c.MemHardMB < 0 {
		return fmt.Errorf("memory watermarks must be non-negative")
	}
	if c.MemSoftMB > 0 && c.MemHardMB > 0 && c.MemHardMB <= c.MemSoftMB {
		return fmt.Errorf("-mem-hard-mb (%d) must exceed -mem-soft-mb (%d)", c.MemHardMB, c.MemSoftMB)
	}
	return nil
}

// ResolveRIB computes the content digest of the RIBIn files and pins
// it into RIBDigest, which is what Hash and the checkpoint key use as
// the run's data identity. Both front ends call it after
// Normalize/Validate and before hashing: the CLI so a run is keyed by
// what it actually read, the server so cache lookups and request
// coalescing are content-addressed (and a request naming unreadable
// files fails up front). A no-op without RIBIn.
func (c *Config) ResolveRIB() error {
	if len(c.RIBIn) == 0 {
		return nil
	}
	d, err := ingest.DigestFiles(c.RIBIn)
	if err != nil {
		return err
	}
	c.RIBDigest = d
	return nil
}

// AmbiguousPolicy maps the policy name to its validation-layer value.
// Call after Validate; unrecognized names fall back to Ignore.
func (c Config) AmbiguousPolicy() validation.AmbiguousPolicy {
	switch c.Policy {
	case "p2p-if-first":
		return validation.P2PIfFirst
	case "always-p2c":
		return validation.AlwaysP2C
	}
	return validation.Ignore
}

// Scenario builds the core pipeline scenario this config describes.
func (c Config) Scenario() core.Scenario {
	s := core.DefaultScenario(c.Seed)
	s.NumASes = c.ASes
	s.Policy = c.AmbiguousPolicy()
	if len(c.Algos) > 0 {
		s.Algorithms = append([]string(nil), c.Algos...)
	}
	s.StageTimeout = time.Duration(c.StageTimeout)
	s.StageRetries = c.StageRetries
	s.CheckpointDir = c.CheckpointDir
	s.Resume = c.Resume
	s.Govern = govern.Config{
		SoftBytes:    c.MemSoftMB << 20,
		HardBytes:    c.MemHardMB << 20,
		StallTimeout: time.Duration(c.StallTimeout),
	}
	if len(c.RIBIn) > 0 {
		s.RIBIn = append([]string(nil), c.RIBIn...)
		s.RIBDigest = c.RIBDigest
		s.IngestMaxBadFrac = c.IngestMaxBadFrac
		s.IngestQuarantineFile = c.QuarantineFile
		s.IngestFileWorkers = c.IngestFileWorkers
	}
	return s
}

// RenderOptions builds the experiment-render options this config
// describes. The EvolveMonths=6 override for named experiment
// selections lives here so the CLI and the server render the exact
// same bytes for the same config.
func (c Config) RenderOptions() core.RenderOptions {
	opts := core.RenderOptions{
		MinLinks:     c.MinLinks,
		StageTimeout: time.Duration(c.StageTimeout),
		StageRetries: c.StageRetries,
	}
	if len(c.Only) > 0 {
		opts.EvolveMonths = 6
	}
	return opts
}

// hashKey is the canonical serialization Hash digests: exactly the
// semantic fields, in a fixed order, from a normalized copy. Adding a
// semantic field to Config without adding it here would alias distinct
// runs — keep them in lockstep.
type hashKey struct {
	Seed     int64    `json:"seed"`
	ASes     int      `json:"ases"`
	Policy   string   `json:"policy"`
	Algos    []string `json:"algos"`
	Only     []string `json:"only"`
	MinLinks int      `json:"min_links"`

	// RIB is the run's data identity for real-data runs: the resolved
	// content digest when ResolveRIB ran, else the file list (Hash
	// must stay pure — it cannot read files itself). omitempty keeps
	// every simulator-run hash — and brevald's cache — unchanged.
	RIB              string  `json:"rib,omitempty"`
	IngestMaxBadFrac float64 `json:"ingest_max_bad_frac,omitempty"`
}

// Hash returns the hex SHA-256 identity of the config's semantic
// fields. Two configs with equal hashes compute and render the same
// bytes (given the same code version) and therefore share checkpoint
// artifacts; operational fields never contribute.
func (c Config) Hash() string {
	n := c
	n.Normalize()
	rib := ""
	if len(n.RIBIn) > 0 {
		rib = n.RIBDigest
		if rib == "" {
			rib = "files:" + strings.Join(n.RIBIn, "\x00")
		}
	}
	b, err := json.Marshal(hashKey{
		Seed:             n.Seed,
		ASes:             n.ASes,
		Policy:           n.Policy,
		Algos:            n.Algos,
		Only:             n.Only,
		MinLinks:         n.MinLinks,
		RIB:              rib,
		IngestMaxBadFrac: n.IngestMaxBadFrac,
	})
	if err != nil {
		// Marshalling a struct of ints and strings cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// csvFlag parses a comma-separated flag value into a string slice,
// trimming whitespace around each element. An empty value clears the
// slice (meaning "all").
type csvFlag struct{ v *[]string }

func (f csvFlag) String() string {
	if f.v == nil {
		return ""
	}
	return strings.Join(*f.v, ",")
}

func (f csvFlag) Set(s string) error {
	if s == "" {
		*f.v = nil
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	*f.v = out
	return nil
}

// durationFlag adapts Duration to flag.Value so -timeout keeps its Go
// duration syntax.
type durationFlag struct{ d *Duration }

func (f durationFlag) String() string {
	if f.d == nil {
		return "0s"
	}
	return time.Duration(*f.d).String()
}

func (f durationFlag) Set(s string) error {
	td, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*f.d = Duration(td)
	return nil
}
