package runconfig

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"breval/internal/core"
)

// fromFlags builds a config the way cmd/breval does: defaults,
// RegisterFlags, Parse, Normalize, Validate.
func fromFlags(t *testing.T, args ...string) Config {
	t.Helper()
	c := Default()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse flags %v: %v", args, err)
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		t.Fatalf("validate flags %v: %v", args, err)
	}
	return c
}

func fromJSON(t *testing.T, body string) Config {
	t.Helper()
	c, err := ParseJSON([]byte(body))
	if err != nil {
		t.Fatalf("ParseJSON(%s): %v", body, err)
	}
	return c
}

// TestFlagJSONParity is the config-parity property over hand-picked
// equivalent pairs: a config built from CLI flags and one built from
// the equivalent JSON request must produce identical config hashes AND
// identical checkpoint keys — the two front ends must share artifacts.
func TestFlagJSONParity(t *testing.T) {
	cases := []struct {
		name  string
		flags []string
		json  string
	}{
		{"defaults", nil, `{}`},
		{"defaults explicit",
			[]string{"-seed", "1", "-ases", "8000", "-policy", "ignore", "-min-links", "100"},
			`{"seed":1,"ases":8000,"policy":"ignore","min_links":100}`},
		{"scaled world",
			[]string{"-seed", "7", "-ases", "600"},
			`{"seed":7,"ases":600}`},
		{"policy and experiments",
			[]string{"-policy", "always-p2c", "-only", "clean,case"},
			`{"policy":"always-p2c","only":["clean","case"]}`},
		{"algos with csv spaces vs json casing",
			[]string{"-algos", "asrank, gao"},
			`{"algos":["ASRank","Gao"]}`},
		{"policy casing",
			[]string{"-policy", "IGNORE"},
			`{"policy":"ignore"}`},
		{"min-links zero means default",
			[]string{"-min-links", "0"},
			`{"min_links":100}`},
		{"operational fields do not matter",
			[]string{"-timeout", "90s", "-experiment-timeout", "10s", "-stage-retries", "2"},
			`{"timeout":"1h","stage_retries":0}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cf := fromFlags(t, tc.flags...)
			cj := fromJSON(t, tc.json)
			if cf.Hash() != cj.Hash() {
				t.Errorf("hash mismatch:\n flags %v -> %s\n json  %s -> %s",
					tc.flags, cf.Hash(), tc.json, cj.Hash())
			}
			kf := core.CheckpointKey(cf.Scenario()).Hash()
			kj := core.CheckpointKey(cj.Scenario()).Hash()
			if kf != kj {
				t.Errorf("checkpoint key mismatch: flags %s vs json %s", kf, kj)
			}
		})
	}
}

// TestFlagJSONParityProperty generates random configurations with a
// seeded rand, renders each both as a flag line and as a JSON body,
// and requires the two parses to agree on hash and checkpoint key.
func TestFlagJSONParityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	policies := []string{"ignore", "p2p-if-first", "always-p2c"}
	algoSpellings := [][2]string{ // CLI spelling, JSON spelling
		{"asrank", "ASRank"}, {"ProbLink", "problink"},
		{"TOPOSCOPE", "TopoScope"}, {"gao", "Gao"},
	}
	experiments := []string{"clean", "case", "hard", "sources", "tables"}

	for i := 0; i < 100; i++ {
		seed := rng.Int63n(1000)
		ases := 100 * (1 + rng.Intn(100))
		policy := policies[rng.Intn(len(policies))]
		minLinks := 1 + rng.Intn(500)

		var flagAlgos, jsonAlgos []string
		for _, sp := range algoSpellings {
			if rng.Intn(2) == 0 {
				flagAlgos = append(flagAlgos, sp[0])
				jsonAlgos = append(jsonAlgos, sp[1])
			}
		}
		var only []string
		for _, exp := range experiments {
			if rng.Intn(3) == 0 {
				only = append(only, exp)
			}
		}

		args := []string{
			"-seed", fmt.Sprint(seed),
			"-ases", fmt.Sprint(ases),
			"-policy", strings.ToUpper(policy),
			"-min-links", fmt.Sprint(minLinks),
		}
		if len(flagAlgos) > 0 {
			args = append(args, "-algos", strings.Join(flagAlgos, " , "))
		}
		if len(only) > 0 {
			args = append(args, "-only", strings.Join(only, ","))
		}
		// Random operational noise on the flag side only: it must not
		// move the hash.
		if rng.Intn(2) == 0 {
			args = append(args, "-timeout", fmt.Sprintf("%ds", 1+rng.Intn(300)))
		}
		if rng.Intn(2) == 0 {
			args = append(args, "-stage-retries", fmt.Sprint(rng.Intn(3)))
		}

		req := map[string]any{
			"seed": seed, "ases": ases, "policy": policy, "min_links": minLinks,
		}
		if len(jsonAlgos) > 0 {
			req["algos"] = jsonAlgos
		}
		if len(only) > 0 {
			req["only"] = only
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}

		cf := fromFlags(t, args...)
		cj := fromJSON(t, string(body))
		if cf.Hash() != cj.Hash() {
			t.Fatalf("iteration %d: hash mismatch\n flags %v\n json  %s", i, args, body)
		}
		if core.CheckpointKey(cf.Scenario()).Hash() != core.CheckpointKey(cj.Scenario()).Hash() {
			t.Fatalf("iteration %d: checkpoint key mismatch\n flags %v\n json  %s", i, args, body)
		}
	}
}

// TestHashIgnoresOperational: execution knobs must never move a run's
// identity — otherwise retrying harder would orphan its own cache.
func TestHashIgnoresOperational(t *testing.T) {
	base := Default()
	mod := base
	mod.Timeout = Duration(time.Hour)
	mod.StageTimeout = Duration(10 * time.Second)
	mod.StageRetries = 5
	mod.CheckpointDir = "/somewhere/else"
	mod.Resume = true
	mod.MemSoftMB = 100
	mod.MemHardMB = 200
	mod.StallTimeout = Duration(time.Minute)
	if base.Hash() != mod.Hash() {
		t.Error("operational fields changed the config hash")
	}
}

func TestHashSeparatesSemantic(t *testing.T) {
	base := Default()
	for name, mutate := range map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed = 2 },
		"ases":      func(c *Config) { c.ASes = 4000 },
		"policy":    func(c *Config) { c.Policy = "always-p2c" },
		"algos":     func(c *Config) { c.Algos = []string{"ASRank"} },
		"only":      func(c *Config) { c.Only = []string{"clean"} },
		"min-links": func(c *Config) { c.MinLinks = 50 },
	} {
		mod := base
		mutate(&mod)
		if base.Hash() == mod.Hash() {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestParseJSONRejects(t *testing.T) {
	for name, body := range map[string]string{
		"unknown field":         `{"sed":1}`,
		"host-controlled field": `{"checkpoint_dir":"/tmp/x"}`,
		"unknown policy":        `{"policy":"maybe"}`,
		"unknown algorithm":     `{"algos":["PageRank"]}`,
		"unknown experiment":    `{"only":["fig99"]}`,
		"negative retries":      `{"stage_retries":-1}`,
		"negative timeout":      `{"timeout":"-5s"}`,
		"malformed duration":    `{"timeout":"fast"}`,
		"trailing garbage":      `{} {}`,
		"negative ases":         `{"ases":-5}`,
	} {
		if _, err := ParseJSON([]byte(body)); err == nil {
			t.Errorf("%s: ParseJSON(%s) succeeded", name, body)
		}
	}
}

func TestValidateWatermarks(t *testing.T) {
	c := Default()
	c.MemSoftMB = 200
	c.MemHardMB = 100
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "must exceed") {
		t.Errorf("inverted watermarks: %v", err)
	}
	c.MemSoftMB, c.MemHardMB = -1, 0
	if err := c.Validate(); err == nil {
		t.Error("negative watermark accepted")
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	for _, d := range []Duration{0, Duration(90 * time.Second), Duration(time.Hour + time.Minute)} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Duration
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Errorf("round trip: %v -> %s -> %v", d, b, back)
		}
	}
	// Numbers decode as nanoseconds, matching a marshalled
	// time.Duration.
	var n Duration
	if err := json.Unmarshal([]byte("1000000000"), &n); err != nil || n != Duration(time.Second) {
		t.Errorf("numeric duration: %v, %v", n, err)
	}
}

// TestScenarioMatchesBreval pins the flag-to-scenario mapping that
// moved here out of cmd/breval.
func TestScenarioMatchesBreval(t *testing.T) {
	c := fromFlags(t,
		"-seed", "3", "-ases", "600", "-policy", "p2p-if-first",
		"-algos", "ASRank,Gao", "-experiment-timeout", "10s",
		"-stage-retries", "2", "-checkpoint-dir", "/tmp/ck", "-resume",
		"-mem-soft-mb", "64", "-mem-hard-mb", "128", "-stall-timeout", "30s")
	s := c.Scenario()
	if s.Seed != 3 || s.NumASes != 600 {
		t.Errorf("world: %+v", s)
	}
	if got := fmt.Sprint(s.Algorithms); got != "[ASRank Gao]" {
		t.Errorf("algorithms: %v", s.Algorithms)
	}
	if s.StageTimeout != 10*time.Second || s.StageRetries != 2 {
		t.Errorf("stage policy: %v/%d", s.StageTimeout, s.StageRetries)
	}
	if s.CheckpointDir != "/tmp/ck" || !s.Resume {
		t.Errorf("checkpointing: %q/%v", s.CheckpointDir, s.Resume)
	}
	if s.Govern.SoftBytes != 64<<20 || s.Govern.HardBytes != 128<<20 ||
		s.Govern.StallTimeout != 30*time.Second {
		t.Errorf("govern: %+v", s.Govern)
	}
	opts := c.RenderOptions()
	if opts.MinLinks != 100 || opts.StageTimeout != 10*time.Second || opts.EvolveMonths != 0 {
		t.Errorf("render options: %+v", opts)
	}
	c.Only = []string{"evolve"}
	if got := c.RenderOptions().EvolveMonths; got != 6 {
		t.Errorf("EvolveMonths with -only: %d", got)
	}
}
