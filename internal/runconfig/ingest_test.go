package runconfig

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRIBFlagJSONParity: the flag and JSON spellings of a real-data
// run agree on hash and scenario, like every other semantic field.
func TestRIBFlagJSONParity(t *testing.T) {
	cf := fromFlags(t, "-rib-in", "a.rib, b.rib", "-ingest-max-bad-frac", "0.25")
	cj := fromJSON(t, `{"rib_in":["a.rib","b.rib"],"ingest_max_bad_frac":0.25}`)
	if cf.Hash() != cj.Hash() {
		t.Errorf("hash mismatch: flags %s vs json %s", cf.Hash(), cj.Hash())
	}
	sf, sj := cf.Scenario(), cj.Scenario()
	if len(sf.RIBIn) != 2 || sf.RIBIn[0] != "a.rib" || sf.IngestMaxBadFrac != 0.25 {
		t.Errorf("flag scenario lost the ingest settings: %+v", sf)
	}
	if len(sj.RIBIn) != 2 || sj.IngestMaxBadFrac != 0.25 {
		t.Errorf("json scenario lost the ingest settings: %+v", sj)
	}
}

// TestRIBHashSemantics: adding a RIB source or changing the error
// budget changes the identity (a lenient-budget verdict must never be
// served for a strict-budget request), while a config without RIB
// fields hashes exactly like one that never heard of them.
func TestRIBHashSemantics(t *testing.T) {
	base := fromFlags(t)
	withRIB := fromFlags(t, "-rib-in", "a.rib")
	if base.Hash() == withRIB.Hash() {
		t.Error("adding -rib-in did not change the hash")
	}
	strict := fromFlags(t, "-rib-in", "a.rib", "-ingest-max-bad-frac", "0")
	lenient := fromFlags(t, "-rib-in", "a.rib", "-ingest-max-bad-frac", "0.5")
	if strict.Hash() == lenient.Hash() {
		t.Error("error budget does not contribute to the hash: lenient and strict verdicts alias")
	}
	if strict.Hash() != withRIB.Hash() {
		t.Error("explicit zero budget hashes differently from the default")
	}
}

// TestResolveRIBContentAddressing: after ResolveRIB the identity is
// the file *contents* — renamed copies hash alike, changed bytes
// hash apart — and a client cannot inject the digest through JSON.
func TestResolveRIBContentAddressing(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.rib", "same bytes")
	b := write("b.rib", "same bytes")
	c := write("c.rib", "other bytes")

	mk := func(file string) Config {
		cfg := fromFlags(t, "-rib-in", file)
		if err := cfg.ResolveRIB(); err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	ca, cb, cc := mk(a), mk(b), mk(c)
	if ca.Hash() != cb.Hash() {
		t.Error("renamed identical dumps hash differently")
	}
	if ca.Hash() == cc.Hash() {
		t.Error("different dump contents hash alike")
	}
	if ca.Scenario().RIBDigest == "" {
		t.Error("scenario did not carry the resolved digest")
	}

	// Unresolved configs fall back to the file list, so Hash stays
	// pure (no I/O) — but then renamed copies are distinct.
	ua := fromFlags(t, "-rib-in", a)
	ub := fromFlags(t, "-rib-in", b)
	if ua.Hash() == ub.Hash() {
		t.Error("unresolved fallback ignored the file names")
	}

	// The digest is host-only: a request cannot supply it.
	if _, err := ParseJSON([]byte(`{"rib_in":["a.rib"],"rib_digest":"deadbeef"}`)); err == nil {
		t.Error("client-supplied rib_digest accepted (cache-poisoning vector)")
	}
	if _, err := ParseJSON([]byte(`{"rib_in":["a.rib"],"quarantine_file":"/tmp/x"}`)); err == nil {
		t.Error("client-supplied quarantine file accepted")
	}

	// ResolveRIB on a missing file fails up front.
	missing := fromFlags(t, "-rib-in", filepath.Join(dir, "missing.rib"))
	if err := missing.ResolveRIB(); err == nil {
		t.Error("ResolveRIB succeeded on a missing file")
	}
}

// TestValidateIngestSettings: the ingest knobs are rejected without a
// RIB source, and malformed values are caught.
func TestValidateIngestSettings(t *testing.T) {
	cases := []struct {
		json string
		want string
	}{
		{`{"ingest_max_bad_frac":0.5}`, "require -rib-in"},
		{`{"rib_in":["a.rib"],"ingest_max_bad_frac":1.5}`, "must be in [0,1]"},
		{`{"rib_in":["a.rib"],"ingest_max_bad_frac":-0.1}`, "must be in [0,1]"},
		{`{"rib_in":["a.rib",""]}`, "empty file name"},
	}
	for _, tc := range cases {
		if _, err := ParseJSON([]byte(tc.json)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseJSON(%s): err %v, want containing %q", tc.json, err, tc.want)
		}
	}
}
