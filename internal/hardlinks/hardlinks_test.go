package hardlinks

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference/features"
)

// fixture paths over the usual hierarchy:
//
//	1--2 clique; 10,11 transit under 1; 12 under 2; stubs below.
func fixtureFeatures() *features.Set {
	ps := bgp.NewPathSet(16, 128)
	for _, p := range []asgraph.Path{
		{100, 10, 1, 2, 12, 103}, // carries clique pair 1-2
		{101, 10, 1, 11, 102},
		{102, 11, 1, 2, 12, 103},
		{103, 12, 2, 1, 10, 100},
		{100, 10, 11, 102}, // peering detour, no clique AS
		{102, 11, 10, 100}, // opposite direction: top-down conflict fodder
	} {
		ps.Append(p)
	}
	return features.Compute(ps)
}

func TestCategorizeBasics(t *testing.T) {
	fs := fixtureFeatures()
	clique := []asn.ASN{1, 2}
	vps := []asn.ASN{100, 101, 102, 103}
	crit := Criteria{MaxNodeDegree: 3, VPLow: 1, VPHigh: 1}
	s := Categorize(fs, clique, vps, crit)

	if s.Total != fs.NumLinks() {
		t.Errorf("Total = %d, want %d", s.Total, fs.NumLinks())
	}
	// (iii) remote: links touching neither VPs nor clique — 10-11 is
	// the only candidate (10,11 are neither).
	if !s.InCategory(CatRemote, asgraph.NewLink(10, 11)) {
		t.Error("10-11 should be remote")
	}
	if n := s.CategoryCount(CatRemote); n != 1 {
		t.Errorf("remote category has %d links, want 1", n)
	}
	// (iv): the stub access link 11-102 is observed on a path with
	// the clique pair (path 3: 102,11,1,2,...? no — 102,11,1,2 has
	// pair 1|2), so it must NOT be in the category; 10-100 appears on
	// path 1 which carries 1-2 as well. 10-101 only appears on path
	// {101,10,1,11,102} without a clique pair.
	if !s.InCategory(CatStubNoCliqueTriplet, asgraph.NewLink(10, 101)) {
		t.Error("10-101 should be stub-no-clique-triplet")
	}
	if s.InCategory(CatStubNoCliqueTriplet, asgraph.NewLink(10, 100)) {
		t.Error("10-100 is observed alongside a clique pair")
	}
	// (v): 1-11 conflicts under the peak rule — on {101,10,1,11,102}
	// the peak is 10 so 1 is "above" 11, while on {102,11,1,...} the
	// degree tie makes 11 the peak and puts it above 1.
	if !s.InCategory(CatTopDownConflict, asgraph.NewLink(1, 11)) {
		t.Error("1-11 should be a top-down conflict")
	}
	// Union covers every category.
	for lid := int32(0); lid < int32(fs.NumLinks()); lid++ {
		l := fs.Intern.Link(lid)
		for c := Category(0); c < NumCategories; c++ {
			if s.InCategory(c, l) && !s.IsHard(l) {
				t.Errorf("category %v link %v missing from union", c, l)
			}
		}
	}
}

func TestDefaultCriteriaFromDistribution(t *testing.T) {
	fs := fixtureFeatures()
	crit := DefaultCriteria(fs)
	if crit.MaxNodeDegree <= 0 {
		t.Errorf("MaxNodeDegree = %d", crit.MaxNodeDegree)
	}
	if crit.VPLow > crit.VPHigh {
		t.Errorf("VP band inverted: [%d, %d]", crit.VPLow, crit.VPHigh)
	}
}

func TestComputeSkew(t *testing.T) {
	fs := fixtureFeatures()
	s := Categorize(fs, []asn.ASN{1, 2}, []asn.ASN{100, 101, 102, 103},
		Criteria{MaxNodeDegree: 3, VPLow: 1, VPHigh: 1})
	// Validate exactly the easy links (none of the hard ones).
	validated := func(l asgraph.Link) bool { return !s.IsHard(l) }
	sk := s.ComputeSkew(validated)
	if sk.AllHard <= 0 {
		t.Fatalf("AllHard = %v", sk.AllHard)
	}
	if sk.ValidatedHard != 0 {
		t.Errorf("ValidatedHard = %v, want 0 (only easy links validated)", sk.ValidatedHard)
	}
	if len(sk.PerCategory) != int(NumCategories) {
		t.Errorf("PerCategory has %d entries", len(sk.PerCategory))
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		CatLowDegree: "low-degree", CatMidVisibility: "mid-visibility",
		CatRemote: "remote", CatStubNoCliqueTriplet: "stub-no-clique-triplet",
		CatTopDownConflict: "top-down-conflict", Category(99): "unknown",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestComputeFeatures(t *testing.T) {
	fs := fixtureFeatures()
	l := asgraph.NewLink(1, 10)
	feats := ComputeFeatures(fs, []asgraph.Link{l, asgraph.NewLink(12, 103)}, FeatureInputs{
		ConeSizes: map[asn.ASN]int{1: 6, 10: 2, 12: 1, 103: 0},
		IXPMembers: [][]asn.ASN{
			{1, 10, 11},
			{10, 12},
		},
		FacilityMembers: [][]asn.ASN{{1, 10}},
		MANRS:           map[asn.ASN]bool{1: true},
		Hijackers:       map[asn.ASN]bool{103: true},
	})
	if len(feats) != 2 {
		t.Fatalf("got %d vectors", len(feats))
	}
	f := feats[0] // link 1-10 sorts first
	if f.Link != l {
		t.Fatalf("first vector is %v", f.Link)
	}
	// Origins via 1-10: paths crossing it end at 103 (paths 1 and 4:
	// origins 103, 100) plus 102? Path {101,10,1,11,102} crosses 10-1:
	// origin 102. Path {103,12,2,1,10,100}: origin 100.
	if f.PrefixesVia < 3 {
		t.Errorf("PrefixesVia = %d, want >= 3", f.PrefixesVia)
	}
	if f.AddressesVia != f.PrefixesVia*256 {
		t.Errorf("AddressesVia = %d", f.AddressesVia)
	}
	// 1-10 is a terminal hop on {103,12,2,1,10,100}? The last link is
	// 10-100, so 1-10 originates nothing... but {101,10,1,...} no.
	if f.PrefixesOriginated != 0 {
		t.Errorf("PrefixesOriginated = %d, want 0", f.PrefixesOriginated)
	}
	if f.Observers == 0 || f.Receivers == 0 {
		t.Error("observer/receiver sets empty")
	}
	if f.CommonIXPs != 1 {
		t.Errorf("CommonIXPs = %d, want 1", f.CommonIXPs)
	}
	if f.CommonFacilities != 1 {
		t.Errorf("CommonFacilities = %d, want 1", f.CommonFacilities)
	}
	if f.Behaviour != "manrs|clean" {
		t.Errorf("Behaviour = %q", f.Behaviour)
	}
	if f.TransitDegreeDiff <= 0 || f.ConeDiff <= 0 {
		t.Errorf("diffs = %v %v", f.TransitDegreeDiff, f.ConeDiff)
	}

	// The 12-103 access link originates 103's prefix.
	f2 := feats[1]
	if f2.PrefixesOriginated != 1 || f2.AddressesOriginated != 256 {
		t.Errorf("12-103 originated = %d/%d", f2.PrefixesOriginated, f2.AddressesOriginated)
	}
	if f2.Behaviour != "clean|hijacker" {
		t.Errorf("12-103 behaviour = %q", f2.Behaviour)
	}
}

func TestWriteFeaturesTSV(t *testing.T) {
	fs := fixtureFeatures()
	feats := ComputeFeatures(fs, []asgraph.Link{asgraph.NewLink(1, 2)}, FeatureInputs{})
	var buf bytes.Buffer
	if err := WriteFeaturesTSV(&buf, feats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "as1\tas2\t") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1\t2\t") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestRelDiff(t *testing.T) {
	if got := relDiff(0, 0); got != 0 {
		t.Errorf("relDiff(0,0) = %v", got)
	}
	if got := relDiff(10, 5); got != 0.5 {
		t.Errorf("relDiff(10,5) = %v", got)
	}
	if got := relDiff(5, 10); got != 0.5 {
		t.Errorf("relDiff(5,10) = %v", got)
	}
}
