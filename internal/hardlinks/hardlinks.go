// Package hardlinks implements the "hard-to-infer link" analysis the
// paper builds on (§3.3, after Jin et al., NSDI'19) and the per-link
// feature vector of Appendix C.
//
// Jin et al. describe five characteristics that make a link hard:
//
//	(i)   low node degree,
//	(ii)  observed by a mid-range number of vantage points,
//	(iii) neither incident to a vantage point nor to a clique AS,
//	(iv)  stub links with no triplet of two consecutive clique ASes
//	      on any observing path, and
//	(v)   links for which a simple top-down classification conflicts.
//
// The paper's §3.3 recalls their finding that validation data skews
// towards easy links; Categorize plus validation coverage per category
// reproduces that skew on the synthetic world.
package hardlinks

import (
	"context"
	"runtime"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference/features"
	"breval/internal/intern"
)

// Category identifies one of Jin et al.'s hard-link characteristics.
type Category uint8

// Hard-link categories (i)-(v).
const (
	CatLowDegree Category = iota
	CatMidVisibility
	CatRemote
	CatStubNoCliqueTriplet
	CatTopDownConflict
	NumCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatLowDegree:
		return "low-degree"
	case CatMidVisibility:
		return "mid-visibility"
	case CatRemote:
		return "remote"
	case CatStubNoCliqueTriplet:
		return "stub-no-clique-triplet"
	case CatTopDownConflict:
		return "top-down-conflict"
	}
	return "unknown"
}

// Criteria parameterises the categories. Jin et al.'s absolute
// thresholds (degree < 100, 50-100 VPs) assume 2019-Internet scale;
// DefaultCriteria derives scale-appropriate values from the feature
// set's distributions instead.
type Criteria struct {
	// MaxNodeDegree: category (i) holds when both endpoints' node
	// degrees are below this.
	MaxNodeDegree int
	// VPLow/VPHigh: category (ii) holds when the link is observed by
	// a count of vantage points inside [VPLow, VPHigh].
	VPLow, VPHigh int
}

// DefaultCriteria picks thresholds from the observed distributions:
// MaxNodeDegree at the 50th percentile of link-max degrees, the VP
// band between the 25th and 60th percentile of per-link VP counts.
func DefaultCriteria(fs *features.Set) Criteria {
	tab := fs.Intern
	nLinks := tab.NumLinks()
	degrees := make([]int, 0, nLinks)
	vps := make([]int, 0, nLinks)
	for lid := int32(0); lid < int32(nLinks); lid++ {
		a, b := tab.LinkEnds(lid)
		d := fs.NodeDeg[a]
		if fs.NodeDeg[b] > d {
			d = fs.NodeDeg[b]
		}
		degrees = append(degrees, int(d))
		vps = append(vps, int(fs.VPCnt[lid]))
	}
	sort.Ints(degrees)
	sort.Ints(vps)
	pick := func(s []int, q float64) int {
		if len(s) == 0 {
			return 0
		}
		return s[int(q*float64(len(s)-1))]
	}
	return Criteria{
		MaxNodeDegree: pick(degrees, 0.5),
		VPLow:         pick(vps, 0.25),
		VPHigh:        pick(vps, 0.6),
	}
}

// Set holds the categorisation result. Link membership is stored as
// dense bitsets indexed by the feature set's interned link IDs; Tab is
// the table that owns that ID space (read-only here — dense IDs are
// only ever assigned by intern.Build inside the features package).
type Set struct {
	Criteria Criteria
	// Tab maps between links and the dense IDs the bitsets index.
	Tab *intern.Table
	// ByCategory holds each category's link set.
	ByCategory [NumCategories]intern.LinkSet
	// Hard is the union of all categories.
	Hard intern.LinkSet
	// Total is the number of links examined.
	Total int
}

// IsHard reports whether l fell into any category.
func (s *Set) IsHard(l asgraph.Link) bool {
	lid, ok := s.Tab.LinkID(l)
	return ok && s.Hard.Has(lid)
}

// InCategory reports whether l fell into category c.
func (s *Set) InCategory(c Category, l asgraph.Link) bool {
	lid, ok := s.Tab.LinkID(l)
	return ok && s.ByCategory[c].Has(lid)
}

// HardCount returns the number of links in the union of all categories.
func (s *Set) HardCount() int { return s.Hard.Count() }

// CategoryCount returns the number of links in category c.
func (s *Set) CategoryCount(c Category) int { return s.ByCategory[c].Count() }

// Categorize computes the five categories over the observed links.
// clique and vps are the inferred clique and the vantage-point list.
func Categorize(fs *features.Set, clique, vps []asn.ASN, crit Criteria) *Set {
	tab, d := fs.Intern, fs.Dense
	nLinks := tab.NumLinks()
	s := &Set{
		Criteria: crit,
		Tab:      tab,
		Hard:     intern.NewLinkSet(tab),
		Total:    nLinks,
	}
	for c := range s.ByCategory {
		s.ByCategory[c] = intern.NewLinkSet(tab)
	}
	inClique := make([]bool, tab.NumAS())
	for _, a := range clique {
		if id, ok := tab.ASID(a); ok {
			inClique[id] = true
		}
	}
	isVP := make([]bool, tab.NumAS())
	for _, v := range vps {
		if id, ok := tab.ASID(v); ok {
			isVP[id] = true
		}
	}

	add := func(c Category, lid int32) {
		s.ByCategory[c].Add(lid)
		s.Hard.Add(lid)
	}

	// isStubLink: either endpoint was never seen forwarding.
	isStubLink := func(lid int32) bool {
		a, b := tab.LinkEnds(lid)
		return fs.TransitDeg[a] == 0 || fs.TransitDeg[b] == 0
	}

	// (iv) evidence: per stub link, whether ANY observing path carries
	// two consecutive clique ASes.
	hasCliquePair := intern.NewLinkSet(tab)
	// (v) evidence: per link, whether the top-down peak rule ever voted
	// the canonical A endpoint up, resp. down.
	votedUp := intern.NewLinkSet(tab)
	votedDown := intern.NewLinkSet(tab)
	// Every path votes independently into Add-only bitsets, so the
	// scan streams the dense paths block by block into per-worker sets
	// whose bitwise-or merge is schedule-independent; a failed
	// streamed scan (a worker panic) falls back to one serial pass.
	scanVotes := func(cliquePair, up, down intern.LinkSet, lo, hi int) {
		for i := lo; i < hi; i++ {
			hops := d.Hops(i)
			if len(hops) == 0 {
				continue
			}
			// One pass for (iv): does this path carry a clique pair?
			pair := false
			for _, h := range hops {
				from, to := d.HopEnds(h)
				if inClique[from] && inClique[to] {
					pair = true
					break
				}
			}
			// One pass for (v): peak rule over transit degrees. Node j is
			// hop j's source; node len(hops) is the final destination.
			from0, _ := d.HopEnds(hops[0])
			top, topDeg := 0, fs.TransitDeg[from0]
			for j := range hops {
				_, to := d.HopEnds(hops[j])
				if fs.TransitDeg[to] > topDeg {
					top, topDeg = j+1, fs.TransitDeg[to]
				}
			}
			for j, h := range hops {
				lid, fromA := intern.DecodeHop(h)
				if pair && isStubLink(lid) {
					cliquePair.Add(lid)
				}
				// Before the top the route descends towards the VP, so
				// the canonical-A side direction depends on orientation;
				// record whether the first element is the provider side
				// (up) or customer side (down) w.r.t. canonical A.
				providerIsFirst := j >= top // after the top: source above destination
				if fromA == providerIsFirst {
					up.Add(lid)
				} else {
					down.Add(lid)
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	blockPaths := d.Len() / (workers * 4)
	if blockPaths < 4096 {
		blockPaths = 4096
	}
	type voteShard struct{ pair, up, down intern.LinkSet }
	shards := make([]*voteShard, workers)
	err := fs.ScanBlocks(context.Background(), "hardlinks.scan", workers, blockPaths,
		func(_ context.Context, w, _, lo, hi int) error {
			sh := shards[w]
			if sh == nil {
				sh = &voteShard{
					pair: intern.NewLinkSet(tab),
					up:   intern.NewLinkSet(tab),
					down: intern.NewLinkSet(tab),
				}
				shards[w] = sh
			}
			scanVotes(sh.pair, sh.up, sh.down, lo, hi)
			return nil
		})
	if err != nil {
		scanVotes(hasCliquePair, votedUp, votedDown, 0, d.Len())
	} else {
		for _, sh := range shards {
			if sh == nil {
				continue
			}
			intern.Bitset(hasCliquePair).Or(intern.Bitset(sh.pair))
			intern.Bitset(votedUp).Or(intern.Bitset(sh.up))
			intern.Bitset(votedDown).Or(intern.Bitset(sh.down))
		}
	}

	// Per-link categorisation, in dense link-ID order.
	for lid := int32(0); lid < int32(nLinks); lid++ {
		a, b := tab.LinkEnds(lid)
		// (i)-(iii) are per-link lookups.
		maxDeg := fs.NodeDeg[a]
		if fs.NodeDeg[b] > maxDeg {
			maxDeg = fs.NodeDeg[b]
		}
		if int(maxDeg) < crit.MaxNodeDegree {
			add(CatLowDegree, lid)
		}
		if n := int(fs.VPCnt[lid]); n >= crit.VPLow && n <= crit.VPHigh {
			add(CatMidVisibility, lid)
		}
		if !isVP[a] && !isVP[b] && !inClique[a] && !inClique[b] {
			add(CatRemote, lid)
		}
		// (iv): stub links whose observing paths never carry two
		// consecutive clique ASes.
		if isStubLink(lid) && !hasCliquePair.Has(lid) {
			add(CatStubNoCliqueTriplet, lid)
		}
		// (v): top-down conflicts — votes in both directions.
		if votedUp.Has(lid) && votedDown.Has(lid) {
			add(CatTopDownConflict, lid)
		}
	}
	return s
}

// Skew summarises the §3.3 claim for one link universe and one
// validation predicate: the share of hard links among all links vs
// among validated links. Validation skews easy when ValidatedHard is
// clearly below AllHard.
type Skew struct {
	AllHard       float64
	ValidatedHard float64
	// PerCategory holds, per category, {share of all links, share of
	// validated links}.
	PerCategory map[Category][2]float64
}

// ComputeSkew evaluates the easy-link skew over the categorised link
// universe (every link interned in s.Tab — i.e. every observed link),
// iterating dense link IDs in ascending canonical order.
func (s *Set) ComputeSkew(validated func(asgraph.Link) bool) Skew {
	sk := Skew{PerCategory: make(map[Category][2]float64, NumCategories)}
	totalAll := s.Tab.NumLinks()
	totalVal := 0
	hardAll, hardVal := s.Hard.Count(), 0
	var catVal [NumCategories]int
	for lid := int32(0); lid < int32(totalAll); lid++ {
		if !validated(s.Tab.Link(lid)) {
			continue
		}
		totalVal++
		if s.Hard.Has(lid) {
			hardVal++
		}
		for c := Category(0); c < NumCategories; c++ {
			if s.ByCategory[c].Has(lid) {
				catVal[c]++
			}
		}
	}
	if totalAll > 0 {
		sk.AllHard = float64(hardAll) / float64(totalAll)
	}
	if totalVal > 0 {
		sk.ValidatedHard = float64(hardVal) / float64(totalVal)
	}
	for c := Category(0); c < NumCategories; c++ {
		var row [2]float64
		if totalAll > 0 {
			row[0] = float64(s.ByCategory[c].Count()) / float64(totalAll)
		}
		if totalVal > 0 {
			row[1] = float64(catVal[c]) / float64(totalVal)
		}
		sk.PerCategory[c] = row
	}
	return sk
}
