// Package hardlinks implements the "hard-to-infer link" analysis the
// paper builds on (§3.3, after Jin et al., NSDI'19) and the per-link
// feature vector of Appendix C.
//
// Jin et al. describe five characteristics that make a link hard:
//
//	(i)   low node degree,
//	(ii)  observed by a mid-range number of vantage points,
//	(iii) neither incident to a vantage point nor to a clique AS,
//	(iv)  stub links with no triplet of two consecutive clique ASes
//	      on any observing path, and
//	(v)   links for which a simple top-down classification conflicts.
//
// The paper's §3.3 recalls their finding that validation data skews
// towards easy links; Categorize plus validation coverage per category
// reproduces that skew on the synthetic world.
package hardlinks

import (
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference/features"
)

// Category identifies one of Jin et al.'s hard-link characteristics.
type Category uint8

// Hard-link categories (i)-(v).
const (
	CatLowDegree Category = iota
	CatMidVisibility
	CatRemote
	CatStubNoCliqueTriplet
	CatTopDownConflict
	NumCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatLowDegree:
		return "low-degree"
	case CatMidVisibility:
		return "mid-visibility"
	case CatRemote:
		return "remote"
	case CatStubNoCliqueTriplet:
		return "stub-no-clique-triplet"
	case CatTopDownConflict:
		return "top-down-conflict"
	}
	return "unknown"
}

// Criteria parameterises the categories. Jin et al.'s absolute
// thresholds (degree < 100, 50-100 VPs) assume 2019-Internet scale;
// DefaultCriteria derives scale-appropriate values from the feature
// set's distributions instead.
type Criteria struct {
	// MaxNodeDegree: category (i) holds when both endpoints' node
	// degrees are below this.
	MaxNodeDegree int
	// VPLow/VPHigh: category (ii) holds when the link is observed by
	// a count of vantage points inside [VPLow, VPHigh].
	VPLow, VPHigh int
}

// DefaultCriteria picks thresholds from the observed distributions:
// MaxNodeDegree at the 50th percentile of link-max degrees, the VP
// band between the 25th and 60th percentile of per-link VP counts.
func DefaultCriteria(fs *features.Set) Criteria {
	degrees := make([]int, 0, len(fs.Links))
	vps := make([]int, 0, len(fs.Links))
	for l := range fs.Links {
		d := fs.NodeDegree[l.A]
		if fs.NodeDegree[l.B] > d {
			d = fs.NodeDegree[l.B]
		}
		degrees = append(degrees, d)
		vps = append(vps, fs.VPCount[l])
	}
	sort.Ints(degrees)
	sort.Ints(vps)
	pick := func(s []int, q float64) int {
		if len(s) == 0 {
			return 0
		}
		return s[int(q*float64(len(s)-1))]
	}
	return Criteria{
		MaxNodeDegree: pick(degrees, 0.5),
		VPLow:         pick(vps, 0.25),
		VPHigh:        pick(vps, 0.6),
	}
}

// Set holds the categorisation result.
type Set struct {
	Criteria Criteria
	// ByCategory maps each category to its link set.
	ByCategory map[Category]map[asgraph.Link]bool
	// Hard is the union of all categories.
	Hard map[asgraph.Link]bool
	// Total is the number of links examined.
	Total int
}

// IsHard reports whether l fell into any category.
func (s *Set) IsHard(l asgraph.Link) bool { return s.Hard[l] }

// Categorize computes the five categories over the observed links.
// clique and vps are the inferred clique and the vantage-point list.
func Categorize(fs *features.Set, clique, vps []asn.ASN, crit Criteria) *Set {
	s := &Set{
		Criteria:   crit,
		ByCategory: make(map[Category]map[asgraph.Link]bool, NumCategories),
		Hard:       make(map[asgraph.Link]bool),
		Total:      len(fs.Links),
	}
	for c := Category(0); c < NumCategories; c++ {
		s.ByCategory[c] = make(map[asgraph.Link]bool)
	}
	cliqueSet := make(map[asn.ASN]bool, len(clique))
	for _, a := range clique {
		cliqueSet[a] = true
	}
	vpSet := make(map[asn.ASN]bool, len(vps))
	for _, v := range vps {
		vpSet[v] = true
	}

	add := func(c Category, l asgraph.Link) {
		s.ByCategory[c][l] = true
		s.Hard[l] = true
	}

	// (i)-(iii) are per-link lookups.
	for l := range fs.Links {
		maxDeg := fs.NodeDegree[l.A]
		if fs.NodeDegree[l.B] > maxDeg {
			maxDeg = fs.NodeDegree[l.B]
		}
		if maxDeg < crit.MaxNodeDegree {
			add(CatLowDegree, l)
		}
		if n := fs.VPCount[l]; n >= crit.VPLow && n <= crit.VPHigh {
			add(CatMidVisibility, l)
		}
		if !vpSet[l.A] && !vpSet[l.B] && !cliqueSet[l.A] && !cliqueSet[l.B] {
			add(CatRemote, l)
		}
	}

	// (iv): stub links whose observing paths never carry two
	// consecutive clique ASes. First collect, per stub link, whether
	// ANY observing path has a clique pair.
	isStubLink := func(l asgraph.Link) bool {
		return fs.TransitDegree[l.A] == 0 || fs.TransitDegree[l.B] == 0
	}
	hasCliquePair := make(map[asgraph.Link]bool)
	fs.Paths.ForEach(func(p asgraph.Path) {
		pair := false
		for i := 0; i+1 < len(p); i++ {
			if cliqueSet[p[i]] && cliqueSet[p[i+1]] {
				pair = true
				break
			}
		}
		if !pair {
			return
		}
		for i := 0; i+1 < len(p); i++ {
			l := asgraph.NewLink(p[i], p[i+1])
			if isStubLink(l) {
				hasCliquePair[l] = true
			}
		}
	})
	for l := range fs.Links {
		if isStubLink(l) && !hasCliquePair[l] {
			add(CatStubNoCliqueTriplet, l)
		}
	}

	// (v): top-down conflicts. Classify each path with the simple
	// peak rule (the highest-transit-degree AS is the top; links
	// before it point up, links after it point down) and flag links
	// receiving votes in both directions.
	type votes struct{ up, down bool }
	v := make(map[asgraph.Link]*votes, len(fs.Links))
	fs.Paths.ForEach(func(p asgraph.Path) {
		if len(p) < 2 {
			return
		}
		top := 0
		for i := 1; i < len(p); i++ {
			if fs.TransitDegree[p[i]] > fs.TransitDegree[p[top]] {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			l := asgraph.NewLink(p[i], p[i+1])
			row := v[l]
			if row == nil {
				row = &votes{}
				v[l] = row
			}
			// Before the top the route descends towards the VP, so
			// the canonical-A side direction depends on orientation;
			// record whether the higher-index element is the provider
			// side (up) or customer side (down) w.r.t. canonical A.
			providerIsFirst := i >= top // after the top: p[i] above p[i+1]
			if (l.A == p[i]) == providerIsFirst {
				row.up = true
			} else {
				row.down = true
			}
		}
	})
	for l, row := range v {
		if row.up && row.down {
			add(CatTopDownConflict, l)
		}
	}
	return s
}

// Skew summarises the §3.3 claim for one link universe and one
// validation predicate: the share of hard links among all links vs
// among validated links. Validation skews easy when ValidatedHard is
// clearly below AllHard.
type Skew struct {
	AllHard       float64
	ValidatedHard float64
	// PerCategory holds, per category, {share of all links, share of
	// validated links}.
	PerCategory map[Category][2]float64
}

// ComputeSkew evaluates the easy-link skew over the observed links.
func (s *Set) ComputeSkew(validated func(asgraph.Link) bool, links map[asgraph.Link]bool) Skew {
	sk := Skew{PerCategory: make(map[Category][2]float64, NumCategories)}
	totalAll, totalVal := 0, 0
	hardAll, hardVal := 0, 0
	catAll := make(map[Category]int)
	catVal := make(map[Category]int)
	for l := range links {
		totalAll++
		isVal := validated(l)
		if isVal {
			totalVal++
		}
		if s.Hard[l] {
			hardAll++
			if isVal {
				hardVal++
			}
		}
		for c := Category(0); c < NumCategories; c++ {
			if s.ByCategory[c][l] {
				catAll[c]++
				if isVal {
					catVal[c]++
				}
			}
		}
	}
	if totalAll > 0 {
		sk.AllHard = float64(hardAll) / float64(totalAll)
	}
	if totalVal > 0 {
		sk.ValidatedHard = float64(hardVal) / float64(totalVal)
	}
	for c := Category(0); c < NumCategories; c++ {
		var row [2]float64
		if totalAll > 0 {
			row[0] = float64(catAll[c]) / float64(totalAll)
		}
		if totalVal > 0 {
			row[1] = float64(catVal[c]) / float64(totalVal)
		}
		sk.PerCategory[c] = row
	}
	return sk
}
