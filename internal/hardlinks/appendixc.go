package hardlinks

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference/features"
)

// LinkFeatures is the Appendix-C per-link feature vector: the twelve
// metrics the paper proposes for identifying further groups of hard
// links. Feature 1 (visibility over time) needs a snapshot series and
// lives with the evolution experiment; the remaining eleven are
// computed here from one snapshot.
type LinkFeatures struct {
	Link asgraph.Link

	// 2/3: prefixes (and covered addresses) redistributed via the
	// link — distinct origins whose collector paths cross it.
	PrefixesVia  int
	AddressesVia int

	// 4/5: prefixes (addresses) originated through the link — the
	// origin is one of its endpoints.
	PrefixesOriginated  int
	AddressesOriginated int

	// 6: ASes that can observe the link (occur left of it on paths).
	Observers int
	// 7: ASes that might receive traffic via the link (occur right).
	Receivers int

	// 8: relative transit-degree difference of the endpoints.
	TransitDegreeDiff float64
	// 9: relative PPDC (customer cone) size difference.
	ConeDiff float64

	// 10/11: co-location counts.
	CommonIXPs       int
	CommonFacilities int

	// 12: behaviour of the incident ASes, e.g. "manrs|clean" or
	// "clean|hijacker" (canonical link order).
	Behaviour string
}

// FeatureInputs carries the side data the features need beyond the
// path-derived feature set.
type FeatureInputs struct {
	// ConeSizes is the inferred customer cone size per AS (PPDC).
	ConeSizes map[asn.ASN]int
	// IXPMembers / FacilityMembers list the member sets of each
	// fabric/facility.
	IXPMembers      [][]asn.ASN
	FacilityMembers [][]asn.ASN
	// MANRS and Hijackers flag the behavioural classes.
	MANRS     map[asn.ASN]bool
	Hijackers map[asn.ASN]bool
	// AddressesPerPrefix converts prefix counts to address counts
	// (256 for the synthetic /24-per-AS world).
	AddressesPerPrefix int
}

// ComputeFeatures evaluates the Appendix-C vector for the requested
// links.
func ComputeFeatures(fs *features.Set, links []asgraph.Link, in FeatureInputs) []LinkFeatures {
	if in.AddressesPerPrefix == 0 {
		in.AddressesPerPrefix = 256
	}
	type accum struct {
		via       map[asn.ASN]bool
		observers map[asn.ASN]bool
		receivers map[asn.ASN]bool
		origin    map[asn.ASN]bool
	}
	want := make(map[asgraph.Link]*accum, len(links))
	for _, l := range links {
		want[l] = &accum{
			via:       make(map[asn.ASN]bool),
			observers: make(map[asn.ASN]bool),
			receivers: make(map[asn.ASN]bool),
			origin:    make(map[asn.ASN]bool),
		}
	}

	fs.Paths.ForEach(func(p asgraph.Path) {
		if len(p) < 2 {
			return
		}
		origin := p.Origin()
		for i := 0; i+1 < len(p); i++ {
			l := asgraph.NewLink(p[i], p[i+1])
			acc, ok := want[l]
			if !ok {
				continue
			}
			acc.via[origin] = true
			if i+2 == len(p) {
				acc.origin[origin] = true
			}
			for j := 0; j < i; j++ {
				acc.observers[p[j]] = true
			}
			for j := i + 2; j < len(p); j++ {
				acc.receivers[p[j]] = true
			}
		}
	})

	ixpIdx := membershipIndex(in.IXPMembers)
	facIdx := membershipIndex(in.FacilityMembers)

	out := make([]LinkFeatures, 0, len(links))
	for _, l := range links {
		acc := want[l]
		f := LinkFeatures{
			Link:                l,
			PrefixesVia:         len(acc.via),
			AddressesVia:        len(acc.via) * in.AddressesPerPrefix,
			PrefixesOriginated:  len(acc.origin),
			AddressesOriginated: len(acc.origin) * in.AddressesPerPrefix,
			Observers:           len(acc.observers),
			Receivers:           len(acc.receivers),
			TransitDegreeDiff:   relDiff(fs.TransitDegree[l.A], fs.TransitDegree[l.B]),
			ConeDiff:            relDiff(in.ConeSizes[l.A], in.ConeSizes[l.B]),
			CommonIXPs:          commonCount(ixpIdx[l.A], ixpIdx[l.B]),
			CommonFacilities:    commonCount(facIdx[l.A], facIdx[l.B]),
			Behaviour:           behaviour(l.A, in) + "|" + behaviour(l.B, in),
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}

func relDiff(a, b int) float64 {
	fa, fb := float64(a), float64(b)
	m := math.Max(fa, fb)
	if m == 0 {
		return 0
	}
	return math.Abs(fa-fb) / m
}

func membershipIndex(groups [][]asn.ASN) map[asn.ASN]map[int]bool {
	idx := make(map[asn.ASN]map[int]bool)
	for g, members := range groups {
		for _, a := range members {
			m := idx[a]
			if m == nil {
				m = make(map[int]bool, 2)
				idx[a] = m
			}
			m[g] = true
		}
	}
	return idx
}

func commonCount(a, b map[int]bool) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for g := range a {
		if b[g] {
			n++
		}
	}
	return n
}

func behaviour(a asn.ASN, in FeatureInputs) string {
	switch {
	case in.Hijackers[a]:
		return "hijacker"
	case in.MANRS[a]:
		return "manrs"
	}
	return "clean"
}

// WriteFeaturesTSV writes the vectors as a tab-separated table with a
// header row, ready for external analysis tooling.
func WriteFeaturesTSV(w io.Writer, feats []LinkFeatures) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "as1\tas2\tprefixes_via\taddrs_via\tprefixes_orig\taddrs_orig\tobservers\treceivers\ttdeg_diff\tcone_diff\tcommon_ixps\tcommon_facilities\tbehaviour"); err != nil {
		return err
	}
	for _, f := range feats {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%d\t%d\t%s\n",
			f.Link.A, f.Link.B, f.PrefixesVia, f.AddressesVia,
			f.PrefixesOriginated, f.AddressesOriginated,
			f.Observers, f.Receivers,
			f.TransitDegreeDiff, f.ConeDiff,
			f.CommonIXPs, f.CommonFacilities, f.Behaviour); err != nil {
			return err
		}
	}
	return bw.Flush()
}
