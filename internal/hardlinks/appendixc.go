package hardlinks

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference/features"
	"breval/internal/intern"
)

// LinkFeatures is the Appendix-C per-link feature vector: the twelve
// metrics the paper proposes for identifying further groups of hard
// links. Feature 1 (visibility over time) needs a snapshot series and
// lives with the evolution experiment; the remaining eleven are
// computed here from one snapshot.
type LinkFeatures struct {
	Link asgraph.Link

	// 2/3: prefixes (and covered addresses) redistributed via the
	// link — distinct origins whose collector paths cross it.
	PrefixesVia  int
	AddressesVia int

	// 4/5: prefixes (addresses) originated through the link — the
	// origin is one of its endpoints.
	PrefixesOriginated  int
	AddressesOriginated int

	// 6: ASes that can observe the link (occur left of it on paths).
	Observers int
	// 7: ASes that might receive traffic via the link (occur right).
	Receivers int

	// 8: relative transit-degree difference of the endpoints.
	TransitDegreeDiff float64
	// 9: relative PPDC (customer cone) size difference.
	ConeDiff float64

	// 10/11: co-location counts.
	CommonIXPs       int
	CommonFacilities int

	// 12: behaviour of the incident ASes, e.g. "manrs|clean" or
	// "clean|hijacker" (canonical link order).
	Behaviour string
}

// FeatureInputs carries the side data the features need beyond the
// path-derived feature set.
type FeatureInputs struct {
	// ConeSizes is the inferred customer cone size per AS (PPDC).
	ConeSizes map[asn.ASN]int
	// IXPMembers / FacilityMembers list the member sets of each
	// fabric/facility.
	IXPMembers      [][]asn.ASN
	FacilityMembers [][]asn.ASN
	// MANRS and Hijackers flag the behavioural classes.
	MANRS     map[asn.ASN]bool
	Hijackers map[asn.ASN]bool
	// AddressesPerPrefix converts prefix counts to address counts
	// (256 for the synthetic /24-per-AS world).
	AddressesPerPrefix int
}

// ComputeFeatures evaluates the Appendix-C vector for the requested
// links.
func ComputeFeatures(fs *features.Set, links []asgraph.Link, in FeatureInputs) []LinkFeatures {
	if in.AddressesPerPrefix == 0 {
		in.AddressesPerPrefix = 256
	}
	// Accumulators live in a dense slot array indexed by interned link
	// ID; the AS sets are sparse (keyed by dense AS ID) since most
	// links see few distinct observers. Requested links that were never
	// observed have no slot and yield zero path-derived features.
	type accum struct {
		via       map[int32]bool
		observers map[int32]bool
		receivers map[int32]bool
		origin    map[int32]bool
	}
	tab, d := fs.Intern, fs.Dense
	want := make([]*accum, tab.NumLinks())
	for _, l := range links {
		if lid, ok := tab.LinkID(l); ok && want[lid] == nil {
			want[lid] = &accum{
				via:       make(map[int32]bool),
				observers: make(map[int32]bool),
				receivers: make(map[int32]bool),
				origin:    make(map[int32]bool),
			}
		}
	}

	// One pass over the dense paths. nodes[j] is hop j's source AS;
	// nodes[len(hops)] the final destination (the origin AS).
	var nodes []int32
	for i, n := 0, d.Len(); i < n; i++ {
		hops := d.Hops(i)
		if len(hops) == 0 {
			continue
		}
		nodes = nodes[:0]
		for _, h := range hops {
			from, _ := d.HopEnds(h)
			nodes = append(nodes, from)
		}
		_, last := d.HopEnds(hops[len(hops)-1])
		nodes = append(nodes, last)
		origin := nodes[len(nodes)-1]
		for j := range hops {
			lid, _ := intern.DecodeHop(hops[j])
			acc := want[lid]
			if acc == nil {
				continue
			}
			acc.via[origin] = true
			if j == len(hops)-1 {
				acc.origin[origin] = true
			}
			for k := 0; k < j; k++ {
				acc.observers[nodes[k]] = true
			}
			for k := j + 2; k < len(nodes); k++ {
				acc.receivers[nodes[k]] = true
			}
		}
	}

	ixpIdx := membershipIndex(in.IXPMembers)
	facIdx := membershipIndex(in.FacilityMembers)

	out := make([]LinkFeatures, 0, len(links))
	for _, l := range links {
		var acc *accum
		if lid, ok := tab.LinkID(l); ok {
			acc = want[lid]
		}
		f := LinkFeatures{
			Link:              l,
			TransitDegreeDiff: relDiff(fs.TransitDegreeOf(l.A), fs.TransitDegreeOf(l.B)),
			ConeDiff:          relDiff(in.ConeSizes[l.A], in.ConeSizes[l.B]),
			CommonIXPs:        commonCount(ixpIdx[l.A], ixpIdx[l.B]),
			CommonFacilities:  commonCount(facIdx[l.A], facIdx[l.B]),
			Behaviour:         behaviour(l.A, in) + "|" + behaviour(l.B, in),
		}
		if acc != nil {
			f.PrefixesVia = len(acc.via)
			f.AddressesVia = len(acc.via) * in.AddressesPerPrefix
			f.PrefixesOriginated = len(acc.origin)
			f.AddressesOriginated = len(acc.origin) * in.AddressesPerPrefix
			f.Observers = len(acc.observers)
			f.Receivers = len(acc.receivers)
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}

func relDiff(a, b int) float64 {
	fa, fb := float64(a), float64(b)
	m := math.Max(fa, fb)
	if m == 0 {
		return 0
	}
	return math.Abs(fa-fb) / m
}

func membershipIndex(groups [][]asn.ASN) map[asn.ASN]map[int]bool {
	idx := make(map[asn.ASN]map[int]bool)
	for g, members := range groups {
		for _, a := range members {
			m := idx[a]
			if m == nil {
				m = make(map[int]bool, 2)
				idx[a] = m
			}
			m[g] = true
		}
	}
	return idx
}

func commonCount(a, b map[int]bool) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for g := range a {
		if b[g] {
			n++
		}
	}
	return n
}

func behaviour(a asn.ASN, in FeatureInputs) string {
	switch {
	case in.Hijackers[a]:
		return "hijacker"
	case in.MANRS[a]:
		return "manrs"
	}
	return "clean"
}

// WriteFeaturesTSV writes the vectors as a tab-separated table with a
// header row, ready for external analysis tooling.
func WriteFeaturesTSV(w io.Writer, feats []LinkFeatures) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "as1\tas2\tprefixes_via\taddrs_via\tprefixes_orig\taddrs_orig\tobservers\treceivers\ttdeg_diff\tcone_diff\tcommon_ixps\tcommon_facilities\tbehaviour"); err != nil {
		return err
	}
	for _, f := range feats {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%d\t%d\t%s\n",
			f.Link.A, f.Link.B, f.PrefixesVia, f.AddressesVia,
			f.PrefixesOriginated, f.AddressesOriginated,
			f.Observers, f.Receivers,
			f.TransitDegreeDiff, f.ConeDiff,
			f.CommonIXPs, f.CommonFacilities, f.Behaviour); err != nil {
			return err
		}
	}
	return bw.Flush()
}
