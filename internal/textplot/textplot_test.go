package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	out := Table([]string{"Class", "PPV", "TPR"}, [][]string{
		{"Total°", "0.982", "0.990"},
		{"T1-TR", "0.839", "0.955"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Class") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "Total°") || !strings.Contains(lines[2], "0.982") {
		t.Errorf("row: %q", lines[2])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

func TestBarPairs(t *testing.T) {
	out := BarPairs([]string{"R°", "AR-L"}, []float64{0.39, 0.02}, []float64{0.15, 0.18}, 20)
	if !strings.Contains(out, "share  0.39") || !strings.Contains(out, "cover  0.15") {
		t.Errorf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Bars scale with value.
	if strings.Count(lines[0], "#") <= strings.Count(lines[2], "#") {
		t.Error("larger share should have longer bar")
	}
}

func TestBarPairsClamping(t *testing.T) {
	out := BarPairs([]string{"X"}, []float64{1.7}, []float64{math.NaN()}, 10)
	if strings.Count(out, "#") != 10 {
		t.Errorf("overlong bar not clamped:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	frac := [][]float64{
		{0.5, 0.2},
		{0.0, 0.0001},
	}
	out := Heatmap(frac, "test map")
	if !strings.HasPrefix(out, "test map\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 2 rows + axis = 4 lines; rows render bottom-up.
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	bottom := lines[2] // frac[0] printed last before axis
	if bottom[1] == ' ' {
		t.Error("dense cell rendered empty")
	}
	if !strings.HasPrefix(lines[3], "+--") {
		t.Errorf("axis line: %q", lines[3])
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if out := Heatmap(nil, ""); out != "" {
		t.Errorf("empty heatmap: %q", out)
	}
}

func TestMedianIQR(t *testing.T) {
	out := MedianIQR([]int{50, 51}, []float64{0.84, 0.85}, []float64{0.83, 0.84}, []float64{0.85, 0.86}, "fig4")
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "50%") ||
		!strings.Contains(out, "median 0.8400") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFmt3(t *testing.T) {
	if Fmt3(0.98345) != "0.983" {
		t.Errorf("Fmt3 = %q", Fmt3(0.98345))
	}
	if Fmt3(math.NaN()) != "-" {
		t.Errorf("NaN = %q", Fmt3(math.NaN()))
	}
}

func TestDeltaMark(t *testing.T) {
	for d, want := range map[int]string{2: "+", 1: "+", 0: "", -1: "y", -2: "o", -3: "r", -5: "r"} {
		if got := DeltaMark(d); got != want {
			t.Errorf("DeltaMark(%d) = %q, want %q", d, got, want)
		}
	}
}
