// Package textplot renders the study's tables, bar pairs and heatmaps
// as plain text for terminals, logs and EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows of cells with left-aligned headers and
// right-aligned data columns, separated by two spaces.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string, leftAlignFirst bool) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(c))
			if i == 0 && leftAlignFirst {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers, true)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep, true)
	for _, row := range rows {
		writeRow(row, true)
	}
	return b.String()
}

// BarPairs renders the Figure 1/2 style plot: for every class a share
// bar (top) and a coverage bar (bottom).
func BarPairs(classes []string, shares, coverages []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	nameW := 0
	for _, c := range classes {
		if len([]rune(c)) > nameW {
			nameW = len([]rune(c))
		}
	}
	var b strings.Builder
	for i, c := range classes {
		pad := strings.Repeat(" ", nameW-len([]rune(c)))
		fmt.Fprintf(&b, "%s%s  share %5.2f %s\n", c, pad, shares[i], bar(shares[i], width))
		fmt.Fprintf(&b, "%s  cover %5.2f %s\n", strings.Repeat(" ", nameW), coverages[i], bar(coverages[i], width))
	}
	return b.String()
}

func bar(v float64, width int) string {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	n := int(v*float64(width) + 0.5)
	return strings.Repeat("#", n)
}

// heatShades orders the shading characters from empty to dense.
var heatShades = []rune(" .:-=+*#%@")

// Heatmap renders a 2-D fraction matrix (rows indexed bottom-up: row 0
// is printed last) with log-scaled shading, one character per cell.
func Heatmap(frac [][]float64, title string) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	maxv := 0.0
	for _, row := range frac {
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
	}
	for y := len(frac) - 1; y >= 0; y-- {
		b.WriteByte('|')
		for _, v := range frac[y] {
			b.WriteRune(shade(v, maxv))
		}
		b.WriteString("|\n")
	}
	if len(frac) > 0 {
		b.WriteByte('+')
		b.WriteString(strings.Repeat("-", len(frac[0])))
		b.WriteString("+\n")
	}
	return b.String()
}

func shade(v, maxv float64) rune {
	if v <= 0 || maxv <= 0 {
		return heatShades[0]
	}
	// Log scale between maxv/1e4 and maxv.
	lo := maxv / 1e4
	if v < lo {
		v = lo
	}
	f := math.Log(v/lo) / math.Log(maxv/lo)
	idx := 1 + int(f*float64(len(heatShades)-2)+0.5)
	if idx >= len(heatShades) {
		idx = len(heatShades) - 1
	}
	if idx < 1 {
		idx = 1
	}
	return heatShades[idx]
}

// MedianIQR renders an Appendix-A style series: per x value the median
// and interquartile range.
func MedianIQR(xs []int, medians, q1s, q3s []float64, caption string) string {
	var b strings.Builder
	if caption != "" {
		b.WriteString(caption)
		b.WriteByte('\n')
	}
	for i, x := range xs {
		fmt.Fprintf(&b, "%3d%%  median %.4f  IQR [%.4f, %.4f]\n", x, medians[i], q1s[i], q3s[i])
	}
	return b.String()
}

// Fmt3 formats a metric with three decimals, rendering NaN as "-".
func Fmt3(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// DeltaMark annotates a metrics.Delta-style classification with the
// paper's colour letters: "+" green, "" neutral, "y"/"o"/"r" for
// yellow/orange/red.
func DeltaMark(d int) string {
	switch {
	case d > 0:
		return "+"
	case d == 0:
		return ""
	case d == -1:
		return "y"
	case d == -2:
		return "o"
	default:
		return "r"
	}
}
