package sampling

import (
	"math"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference"
	"breval/internal/validation"
)

// fixture builds a validation set + prediction with known precision:
// 80 true P2P (64 predicted P2P, 16 predicted P2C) and 120 true P2C
// (110 correct, 10 predicted P2P). PPV_P = 64/74, TPR_P = 64/80.
func fixture() (*inference.Result, *validation.Snapshot) {
	pred := inference.NewResult("t", 200)
	truth := validation.NewSnapshot()
	next := asn.ASN(1)
	add := func(tl validation.Label, pr asgraph.Rel) {
		a, b := next, next+1
		next += 2
		l := asgraph.NewLink(a, b)
		if tl.Type == asgraph.P2C {
			tl.Provider = a
		}
		if pr.Type == asgraph.P2C {
			pr.Provider = a
		}
		truth.Add(l, tl)
		pred.Set(l, pr)
	}
	for i := 0; i < 64; i++ {
		add(validation.Label{Type: asgraph.P2P}, asgraph.P2PRel())
	}
	for i := 0; i < 16; i++ {
		add(validation.Label{Type: asgraph.P2P}, asgraph.P2CRel(0))
	}
	for i := 0; i < 110; i++ {
		add(validation.Label{Type: asgraph.P2C}, asgraph.P2CRel(0))
	}
	for i := 0; i < 10; i++ {
		add(validation.Label{Type: asgraph.P2C}, asgraph.P2PRel())
	}
	return pred, truth
}

func TestRunBasics(t *testing.T) {
	pred, truth := fixture()
	s := Run(pred, truth, nil, Config{Reps: 40, Seed: 7})
	if s.Eligible != 200 {
		t.Fatalf("Eligible = %d", s.Eligible)
	}
	if len(s.Pcts) != 50 {
		t.Fatalf("got %d percentages, want 50", len(s.Pcts))
	}
	if s.Pcts[0] != 50 || s.Pcts[len(s.Pcts)-1] != 99 {
		t.Errorf("pct range = %d..%d", s.Pcts[0], s.Pcts[len(s.Pcts)-1])
	}
	// The full-set values: PPV_P = 64/74, TPR_P = 64/80.
	wantPPV, wantTPR := 64.0/74, 64.0/80
	for i := range s.Pcts {
		if math.Abs(s.PPVP.Median[i]-wantPPV) > 0.08 {
			t.Errorf("pct %d: PPVP median %.3f, want ~%.3f", s.Pcts[i], s.PPVP.Median[i], wantPPV)
		}
		if math.Abs(s.TPRP.Median[i]-wantTPR) > 0.08 {
			t.Errorf("pct %d: TPRP median %.3f, want ~%.3f", s.Pcts[i], s.TPRP.Median[i], wantTPR)
		}
		if s.PPVP.Q1[i] > s.PPVP.Median[i] || s.PPVP.Median[i] > s.PPVP.Q3[i] {
			t.Errorf("pct %d: quartiles out of order", s.Pcts[i])
		}
	}
}

func TestRunNoTrendOnUniformData(t *testing.T) {
	// The paper's Appendix-A claim: the metric medians carry no trend
	// in sample size.
	pred, truth := fixture()
	s := Run(pred, truth, nil, Config{Reps: 60, Seed: 3})
	for name, medians := range map[string][]float64{
		"PPVP": s.PPVP.Median, "TPRP": s.TPRP.Median, "MCC": s.MCC.Median,
	} {
		slope := TrendSlope(s.Pcts, medians)
		if math.Abs(slope) > 0.001 {
			t.Errorf("%s: slope %.5f, want ~0", name, slope)
		}
	}
}

func TestRunVarianceShrinksWithSampleSize(t *testing.T) {
	pred, truth := fixture()
	s := Run(pred, truth, nil, Config{Reps: 80, Seed: 5})
	first, last := 0, len(s.Pcts)-1
	iqrFirst := s.PPVP.Q3[first] - s.PPVP.Q1[first]
	iqrLast := s.PPVP.Q3[last] - s.PPVP.Q1[last]
	if iqrLast > iqrFirst {
		t.Errorf("IQR at 99%% (%.4f) larger than at 50%% (%.4f)", iqrLast, iqrFirst)
	}
}

func TestRunDeterministic(t *testing.T) {
	pred, truth := fixture()
	s1 := Run(pred, truth, nil, Config{Reps: 10, Seed: 9})
	s2 := Run(pred, truth, nil, Config{Reps: 10, Seed: 9})
	for i := range s1.Pcts {
		if s1.PPVP.Median[i] != s2.PPVP.Median[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRunWithFilterAndEmptyPool(t *testing.T) {
	pred, truth := fixture()
	s := Run(pred, truth, func(asgraph.Link) bool { return false }, Config{Reps: 5})
	if s.Eligible != 0 || len(s.Pcts) != 0 {
		t.Errorf("empty pool: %+v", s)
	}
}

func TestRunSkipsMultiLabelAndUncovered(t *testing.T) {
	pred := inference.NewResult("t", 2)
	truth := validation.NewSnapshot()
	ml := asgraph.NewLink(1, 2)
	truth.Add(ml, validation.Label{Type: asgraph.P2P})
	truth.Add(ml, validation.Label{Type: asgraph.P2C, Provider: 1})
	pred.Set(ml, asgraph.P2PRel())
	truth.Add(asgraph.NewLink(3, 4), validation.Label{Type: asgraph.P2P}) // not predicted
	s := Run(pred, truth, nil, Config{Reps: 2})
	if s.Eligible != 0 {
		t.Errorf("Eligible = %d, want 0", s.Eligible)
	}
}

func TestQuartiles(t *testing.T) {
	m, q1, q3 := quartiles([]float64{1, 2, 3, 4, 5})
	if m != 3 || q1 != 2 || q3 != 4 {
		t.Errorf("quartiles = %v %v %v", m, q1, q3)
	}
	m, _, _ = quartiles([]float64{7})
	if m != 7 {
		t.Errorf("single-element median = %v", m)
	}
	m, _, _ = quartiles(nil)
	if !math.IsNaN(m) {
		t.Errorf("empty median = %v", m)
	}
}

func TestTrendSlope(t *testing.T) {
	if got := TrendSlope([]int{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", got)
	}
	if got := TrendSlope([]int{1, 2}, []float64{math.NaN(), 5}); got != 0 {
		t.Errorf("slope with one point = %v", got)
	}
	if got := TrendSlope(nil, nil); got != 0 {
		t.Errorf("empty slope = %v", got)
	}
}
