// Package sampling implements the Appendix-A robustness experiment of
// Prehn & Feldmann (IMC'21): uniformly sub-sample the validated links
// of a class at rates from 50% to 99%, re-evaluate precision, recall
// and MCC on each sample, and summarise each rate with median and
// interquartile range over many repetitions. The paper uses the
// experiment to show that evaluation performance does not correlate
// with validation coverage.
package sampling

import (
	"math"
	"math/rand"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/inference"
	"breval/internal/metrics"
	"breval/internal/validation"
)

// Config tunes the experiment; zero values select the paper's
// parameters.
type Config struct {
	MinPct int   // default 50
	MaxPct int   // default 99
	Reps   int   // default 100
	Seed   int64 // default 1
}

func (c Config) withDefaults() Config {
	if c.MinPct == 0 {
		c.MinPct = 50
	}
	if c.MaxPct == 0 {
		c.MaxPct = 99
	}
	if c.Reps == 0 {
		c.Reps = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats summarises one metric across sample rates.
type Stats struct {
	Median, Q1, Q3 []float64
}

// Series is the experiment outcome: for each sampling percentage the
// distribution summary of PPV_P (Fig. 4), TPR_P (Fig. 5) and MCC
// (Fig. 6).
type Series struct {
	Pcts            []int
	PPVP, TPRP, MCC Stats
	// Eligible is the number of validated, classified links the
	// experiment sampled from.
	Eligible int
}

// sample is one pre-resolved (truth, prediction) pair.
type sample struct {
	truthP2P bool
	predP2P  bool
	p2cMatch bool // P2C prediction matching the truth's direction
}

// Run executes the experiment for the links accepted by filter.
func Run(pred *inference.Result, truth *validation.Snapshot, filter metrics.LinkFilter, cfg Config) Series {
	cfg = cfg.withDefaults()

	var pool []sample
	for _, l := range truth.Links() { // deterministic order
		lbs := truth.Labels(l)
		if len(lbs) != 1 {
			continue
		}
		if filter != nil && !filter(l) {
			continue
		}
		p, ok := pred.Rel(l)
		if !ok {
			continue
		}
		t := lbs[0]
		pool = append(pool, sample{
			truthP2P: t.Type == asgraph.P2P,
			predP2P:  p.Type == asgraph.P2P,
			p2cMatch: t.Type == asgraph.P2C && p.Type == asgraph.P2C && p.Provider == t.Provider,
		})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	out := Series{Eligible: len(pool)}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}

	for pct := cfg.MinPct; pct <= cfg.MaxPct; pct++ {
		n := len(pool) * pct / 100
		if n == 0 {
			continue
		}
		ppvs := make([]float64, 0, cfg.Reps)
		tprs := make([]float64, 0, cfg.Reps)
		mccs := make([]float64, 0, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			// Partial Fisher-Yates: the first n entries of idx are a
			// uniform sample without replacement.
			for i := 0; i < n; i++ {
				j := i + rng.Intn(len(idx)-i)
				idx[i], idx[j] = idx[j], idx[i]
			}
			var c metrics.Confusion
			for _, k := range idx[:n] {
				s := pool[k]
				switch {
				case s.truthP2P && s.predP2P:
					c.TP++
				case s.truthP2P:
					c.FN++
				case s.predP2P:
					c.FP++
				default:
					c.TN++
				}
			}
			if v := c.PPV(); !math.IsNaN(v) {
				ppvs = append(ppvs, v)
			}
			if v := c.TPR(); !math.IsNaN(v) {
				tprs = append(tprs, v)
			}
			mccs = append(mccs, c.MCC())
		}
		out.Pcts = append(out.Pcts, pct)
		appendStats(&out.PPVP, ppvs)
		appendStats(&out.TPRP, tprs)
		appendStats(&out.MCC, mccs)
	}
	return out
}

func appendStats(s *Stats, vals []float64) {
	m, q1, q3 := quartiles(vals)
	s.Median = append(s.Median, m)
	s.Q1 = append(s.Q1, q1)
	s.Q3 = append(s.Q3, q3)
}

// quartiles returns the median and the first/third quartiles using
// linear interpolation; NaN for empty input.
func quartiles(vals []float64) (median, q1, q3 float64) {
	if len(vals) == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return quantile(s, 0.5), quantile(s, 0.25), quantile(s, 0.75)
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TrendSlope fits a least-squares line through (pct, median) and
// returns its slope — the paper's "neither increasing nor decreasing
// trend" check reduces to this being ~0.
func TrendSlope(pcts []int, medians []float64) float64 {
	n := 0
	var sx, sy, sxx, sxy float64
	for i := range pcts {
		if math.IsNaN(medians[i]) {
			continue
		}
		x := float64(pcts[i])
		sx += x
		sy += medians[i]
		sxx += x * x
		sxy += x * medians[i]
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (fn*sxy - sx*sy) / den
}
