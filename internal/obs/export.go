package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Document is the exported metrics JSON (the -metrics-out file).
// Report carries the pipeline's resilience.RunReport when the caller
// attaches one; it is declared as any so obs stays dependency-free.
type Document struct {
	DurationMS float64                    `json:"duration_ms"`
	Spans      []SpanRecord               `json:"spans"`
	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramRecord `json:"histograms,omitempty"`
	MemStats   []MemSnapshot              `json:"memstats,omitempty"`
	Report     any                        `json:"report,omitempty"`
}

// Export snapshots the collector into a Document. Open spans are
// stamped with the export time; the collector remains usable.
func (c *Collector) Export() *Document {
	if c == nil {
		return nil
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	doc := &Document{
		DurationMS: float64(now.Sub(c.start)) / float64(time.Millisecond),
		Counters:   make(map[string]int64, len(c.counters)),
	}
	for _, sp := range c.roots {
		doc.Spans = append(doc.Spans, sp.record(c.start, now))
	}
	for _, name := range c.counterNames() {
		doc.Counters[name] = c.counters[name]
	}
	if len(c.gauges) > 0 {
		doc.Gauges = make(map[string]float64, len(c.gauges))
		for n, v := range c.gauges {
			doc.Gauges[n] = v
		}
	}
	if len(c.hists) > 0 {
		doc.Histograms = make(map[string]HistogramRecord, len(c.hists))
		for n, h := range c.hists {
			doc.Histograms[n] = h.record()
		}
	}
	doc.MemStats = append(doc.MemStats, c.mem...)
	return doc
}

// WriteJSON emits the document as indented JSON.
func (d *Document) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// FindSpan returns the first span named name in depth-first order.
func (d *Document) FindSpan(name string) (SpanRecord, bool) {
	var walk func(rs []SpanRecord) (SpanRecord, bool)
	walk = func(rs []SpanRecord) (SpanRecord, bool) {
		for _, r := range rs {
			if r.Name == name {
				return r, true
			}
			if c, ok := walk(r.Children); ok {
				return c, true
			}
		}
		return SpanRecord{}, false
	}
	return walk(d.Spans)
}
