package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// A nil collector and an uninstrumented context must be free no-ops
// end to end: that is what keeps the flag-off pipeline byte-identical.
func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Add("x", 1)
	c.SetGauge("g", 2)
	c.Observe("h", 3)
	c.MergeHistogram("h", &Histogram{})
	c.SnapshotMemStats("s")
	if c.Counter("x") != 0 {
		t.Error("nil counter not 0")
	}
	if c.Export() != nil {
		t.Error("nil export not nil")
	}

	ctx := context.Background()
	if From(ctx) != nil {
		t.Error("From on bare context not nil")
	}
	if Into(ctx, nil) != ctx {
		t.Error("Into(nil) must return ctx unchanged")
	}
	ctx2, sp := StartSpan(ctx, "stage")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without collector must be a no-op")
	}
	sp.End() // must not panic
}

func TestSpansNest(t *testing.T) {
	col := NewCollector()
	ctx := Into(context.Background(), col)

	ctx1, root := StartSpan(ctx, "pipeline")
	ctx2, child := StartSpan(ctx1, "bgp.propagate")
	_, grand := StartSpan(ctx2, "bgp.propagate.workers")
	grand.End()
	child.End()
	// A sibling from the root context.
	_, sib := StartSpan(ctx1, "render")
	sib.End()
	root.End()

	doc := col.Export()
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "pipeline" {
		t.Fatalf("roots = %+v", doc.Spans)
	}
	kids := doc.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "bgp.propagate" || kids[1].Name != "render" {
		t.Fatalf("children = %+v", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "bgp.propagate.workers" {
		t.Fatalf("grandchildren = %+v", kids[0].Children)
	}
	if _, ok := doc.FindSpan("bgp.propagate.workers"); !ok {
		t.Error("FindSpan missed a nested span")
	}
	if _, ok := doc.FindSpan("nope"); ok {
		t.Error("FindSpan invented a span")
	}
}

// Export must stamp still-open spans rather than dropping them: a
// metrics document written mid-run stays complete.
func TestExportStampsOpenSpans(t *testing.T) {
	col := NewCollector()
	ctx := Into(context.Background(), col)
	StartSpan(ctx, "open")
	doc := col.Export()
	if len(doc.Spans) != 1 || doc.Spans[0].DurationMS < 0 {
		t.Fatalf("open span exported as %+v", doc.Spans)
	}
}

func TestCountersConcurrent(t *testing.T) {
	col := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				col.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := col.Counter("n"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

// Add(name, 0) must register the counter: the skipped-origin
// accounting distinguishes "measured, zero" from "not measured".
func TestZeroAddRegistersCounter(t *testing.T) {
	col := NewCollector()
	col.Add("bgp.skipped_origins", 0)
	doc := col.Export()
	if v, ok := doc.Counters["bgp.skipped_origins"]; !ok || v != 0 {
		t.Errorf("zero counter missing from export: %v", doc.Counters)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 8, 1000} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Sum != 1013 || h.Min != 0 || h.Max != 1000 {
		t.Errorf("h = %+v", h)
	}
	var other Histogram
	other.Observe(-5)
	h.Merge(&other)
	if h.Count != 7 || h.Min != -5 {
		t.Errorf("after merge h = %+v", h)
	}
	rec := h.record()
	var total int64
	for _, b := range rec.Buckets {
		total += b[1]
	}
	if total != 7 {
		t.Errorf("bucket counts sum to %d, want 7", total)
	}
	// Merging an empty histogram must not clobber min/max.
	h.Merge(&Histogram{})
	if h.Min != -5 || h.Max != 1000 {
		t.Errorf("empty merge changed bounds: %+v", h)
	}
}

func TestBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1 << 40, 41}} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestMemSnapshotAndDocumentJSON(t *testing.T) {
	col := NewCollector()
	col.SnapshotMemStats("start")
	col.Add("c", 7)
	col.SetGauge("g", 1.5)
	col.Observe("h", 42)
	ctx := Into(context.Background(), col)
	_, sp := StartSpan(ctx, "stage")
	sp.End()
	sp.End() // double End keeps the first stamp

	var buf bytes.Buffer
	if err := col.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.MemStats) != 1 || doc.MemStats[0].Label != "start" {
		t.Errorf("memstats = %+v", doc.MemStats)
	}
	if doc.MemStats[0].HeapAllocBytes == 0 {
		t.Error("memstats snapshot is empty")
	}
	if doc.Counters["c"] != 7 || doc.Gauges["g"] != 1.5 {
		t.Errorf("counters/gauges = %v / %v", doc.Counters, doc.Gauges)
	}
	if doc.Histograms["h"].Count != 1 {
		t.Errorf("histograms = %+v", doc.Histograms)
	}
}

func TestProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is non-trivial.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "no/such/dir/x")); err == nil {
		t.Error("bad cpu profile path accepted")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no/such/dir/x")); err == nil {
		t.Error("bad heap profile path accepted")
	}
}

func TestFold(t *testing.T) {
	server := NewCollector()
	server.Add("runs", 1)
	server.Observe("latency", 10)

	req := NewCollector()
	req.Add("runs", 2)
	req.Add("only.here", 5)
	req.SetGauge("workers", 3)
	req.Observe("latency", 100)
	_, sp := StartSpan(Into(context.Background(), req), "req.span")
	sp.End()

	server.Fold(req)
	if got := server.Counter("runs"); got != 3 {
		t.Errorf("runs = %d, want 3", got)
	}
	if got := server.Counter("only.here"); got != 5 {
		t.Errorf("only.here = %d, want 5", got)
	}
	doc := server.Export()
	if doc.Gauges["workers"] != 3 {
		t.Errorf("gauges = %v", doc.Gauges)
	}
	h := doc.Histograms["latency"]
	if h.Count != 2 || h.Max != 100 {
		t.Errorf("latency hist = %+v", h)
	}
	// Spans do not cross the fold: the server's span forest stays
	// bounded no matter how many requests fold in.
	if len(doc.Spans) != 0 {
		t.Errorf("folded spans leaked: %+v", doc.Spans)
	}

	// Nil and self folds are no-ops.
	server.Fold(nil)
	(*Collector)(nil).Fold(req)
	server.Fold(server)
	if got := server.Counter("runs"); got != 3 {
		t.Errorf("after no-op folds runs = %d, want 3", got)
	}
}
