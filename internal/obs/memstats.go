package obs

import (
	"runtime"
	"time"
)

// MemSnapshot is one labelled runtime.MemStats reading. Byte figures
// are raw; the JSON field names carry the unit.
type MemSnapshot struct {
	Label          string  `json:"label"`
	AtMS           float64 `json:"at_ms"` // offset from collector start
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	TotalAlloc     uint64  `json:"total_alloc_bytes"`
	Mallocs        uint64  `json:"mallocs"`
	NumGC          uint32  `json:"num_gc"`
	PauseTotalMS   float64 `json:"gc_pause_total_ms"`
	NumGoroutine   int     `json:"goroutines"`
}

// SnapshotMemStats records a labelled memstats reading. ReadMemStats
// stops the world briefly, so snapshots belong at stage boundaries,
// never inside hot loops.
func (c *Collector) SnapshotMemStats(label string) {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := MemSnapshot{
		Label:          label,
		AtMS:           float64(time.Since(c.start)) / float64(time.Millisecond),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		TotalAlloc:     ms.TotalAlloc,
		Mallocs:        ms.Mallocs,
		NumGC:          ms.NumGC,
		PauseTotalMS:   float64(ms.PauseTotalNs) / float64(time.Millisecond),
		NumGoroutine:   runtime.NumGoroutine(),
	}
	c.mu.Lock()
	c.mem = append(c.mem, snap)
	c.mu.Unlock()
}
