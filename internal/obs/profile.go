package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile starts a CPU profile writing to path and returns
// the function that stops the profile and closes the file. The
// returned stop function is safe to call exactly once.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live
// objects, per runtime/pprof convention) and writes a heap profile to
// path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
