package obs

import "math/bits"

// histBuckets is the number of power-of-two buckets: bucket 0 holds
// values <= 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1],
// so bucket 63 absorbs everything above 2^62.
const histBuckets = 64

// Histogram is a fixed-size power-of-two histogram over int64 values,
// with exact count/sum/min/max. The zero value is ready to use. A
// Histogram is not internally synchronised: hot paths observe into a
// private instance and fold it into a Collector with MergeHistogram.
type Histogram struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	buckets [histBuckets]int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.buckets[bucketOf(v)]++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if h.Count == 0 || other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// HistogramRecord is the exported form of a histogram. Buckets lists
// only non-empty buckets as {upper-bound, count} pairs; the upper
// bound of bucket i is 2^i - 1 (0 for the first).
type HistogramRecord struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Mean    float64    `json:"mean"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// record exports the histogram.
func (h *Histogram) record() HistogramRecord {
	r := HistogramRecord{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean()}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		ub := int64(0)
		if i > 0 {
			ub = 1<<uint(i) - 1
		}
		r.Buckets = append(r.Buckets, [2]int64{ub, n})
	}
	return r
}
