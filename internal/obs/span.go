package obs

import (
	"context"
	"time"
)

// Span is one node of the hierarchical wall-clock timer tree: a
// pipeline stage, or a substage nested below it. Spans are created
// with StartSpan and closed with End; children attach to the span
// carried by the context they were started from, so the tree mirrors
// the call structure including goroutine fan-out (each worker starts
// its span from the parent's context). A nil *Span is a valid no-op,
// which is what StartSpan returns when no collector is installed.
type Span struct {
	name  string
	start time.Time
	end   time.Time

	col      *Collector
	parent   *Span
	children []*Span
}

// StartSpan opens a span named name under the span carried by ctx (or
// as a root span) and returns a context carrying the new span for
// substages to nest under. When ctx carries no collector it returns
// (ctx, nil) unchanged — the instrumentation disappears.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	col := From(ctx)
	if col == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	sp := &Span{name: name, start: time.Now(), col: col, parent: parent}
	col.mu.Lock()
	if parent != nil {
		parent.children = append(parent.children, sp)
	} else {
		col.roots = append(col.roots, sp)
	}
	col.mu.Unlock()
	return context.WithValue(ctx, spanKey, sp), sp
}

// End closes the span. Ending a span twice keeps the first end time;
// ending a nil span is a no-op.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.col.mu.Lock()
	if sp.end.IsZero() {
		sp.end = time.Now()
	}
	sp.col.mu.Unlock()
}

// SpanRecord is the exported form of one span. Times are offsets from
// the collector's start so documents are position-independent.
type SpanRecord struct {
	Name       string       `json:"name"`
	StartMS    float64      `json:"start_ms"`
	DurationMS float64      `json:"duration_ms"`
	Children   []SpanRecord `json:"children,omitempty"`
}

// record exports the span subtree; the caller holds col.mu. A span
// still open when the document is built is stamped with now.
func (sp *Span) record(base, now time.Time) SpanRecord {
	end := sp.end
	if end.IsZero() {
		end = now
	}
	r := SpanRecord{
		Name:       sp.name,
		StartMS:    float64(sp.start.Sub(base)) / float64(time.Millisecond),
		DurationMS: float64(end.Sub(sp.start)) / float64(time.Millisecond),
	}
	for _, c := range sp.children {
		r.Children = append(r.Children, c.record(base, now))
	}
	return r
}
