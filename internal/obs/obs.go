// Package obs is the pipeline's observability substrate: hierarchical
// spans (stage → substage wall-clock timers), counters, gauges,
// power-of-two histograms, runtime memstats snapshots, and pprof
// profile hooks (profile.go). It is dependency-free (stdlib only) and
// designed around two constraints of the propagation hot paths:
//
//   - Zero cost when off. Every method is safe on a nil *Collector,
//     and From returns nil when no collector is installed in the
//     context, so instrumented code calls obs unconditionally and a
//     flag-off run does no locking, no allocation, and no time reads
//     beyond a nil check.
//
//   - Bounded cost when on. Hot loops never touch the collector
//     directly: workers accumulate into local ints and local
//     Histograms and flush once per worker (see internal/bgp), so the
//     collector mutex is taken O(workers), not O(paths).
//
// Metric values are deterministic for a deterministic pipeline:
// counters are order-independent sums and histogram merges are
// commutative, so parallel workers produce identical totals regardless
// of schedule. Only durations and memstats vary run to run.
//
// The naming convention is dotted lower-case paths: counters and
// gauges are "<package>.<what>" (e.g. "bgp.paths_emitted"), spans
// reuse the pipeline's stage names (e.g. "bgp.propagate") with
// substages below them ("bgp.propagate.workers"). The full metric
// inventory is documented in docs/observability.md.
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Collector accumulates spans, counters, gauges, histograms and
// memstats snapshots for one run. It is safe for concurrent use; the
// zero value is not usable — construct with NewCollector. A nil
// *Collector is a valid no-op sink.
type Collector struct {
	start time.Time

	mu       sync.Mutex
	roots    []*Span
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
	mem      []MemSnapshot
}

// NewCollector returns an empty collector whose span clock starts now.
func NewCollector() *Collector {
	return &Collector{
		start:    time.Now(),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// Add increments the named counter by n. Calling Add(name, 0)
// registers the counter, so "this was measured and is zero" is
// distinguishable from "this was never measured" in the export —
// the skipped-origin accounting relies on that.
func (c *Collector) Add(name string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += n
	c.mu.Unlock()
}

// SetGauge records the named gauge's current value (last write wins).
func (c *Collector) SetGauge(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// Observe records one value into the named histogram.
func (c *Collector) Observe(name string, v int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = &Histogram{}
		c.hists[name] = h
	}
	h.Observe(v)
	c.mu.Unlock()
}

// MergeHistogram folds a locally-accumulated histogram into the named
// one. Hot paths observe into a private Histogram and merge once, so
// the collector lock is not on the per-item path.
func (c *Collector) MergeHistogram(name string, h *Histogram) {
	if c == nil || h == nil || h.Count == 0 {
		return
	}
	c.mu.Lock()
	dst := c.hists[name]
	if dst == nil {
		dst = &Histogram{}
		c.hists[name] = dst
	}
	dst.Merge(h)
	c.mu.Unlock()
}

// Fold accumulates another collector's counters, gauges and
// histograms into c and drops src's spans and memstats. This is the
// long-lived server's aggregation path: each request gets a private
// collector (so concurrent runs never interleave span trees), and at
// request end the numeric metrics fold into the server's collector,
// whose memory therefore stays bounded by the metric-name inventory
// instead of growing a span forest per request. Gauges are last-write-
// wins, matching SetGauge. Both sides may be nil; src remains usable.
func (c *Collector) Fold(src *Collector) {
	if c == nil || src == nil || c == src {
		return
	}
	// Snapshot src under its own lock, then fold under ours: never
	// hold both (lock-order safety if two servers ever cross-fold).
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for n, v := range src.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(src.gauges))
	for n, v := range src.gauges {
		gauges[n] = v
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for n, h := range src.hists {
		cp := *h
		hists[n] = &cp
	}
	src.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	for n, v := range counters {
		c.counters[n] += v
	}
	for n, v := range gauges {
		c.gauges[n] = v
	}
	for n, h := range hists {
		dst := c.hists[n]
		if dst == nil {
			dst = &Histogram{}
			c.hists[n] = dst
		}
		dst.Merge(h)
	}
}

// Counter returns the counter's current value (0 if never added).
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// counterNames returns the registered counter names, sorted.
func (c *Collector) counterNames() []string {
	names := make([]string, 0, len(c.counters))
	for n := range c.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ctxKey is the private context-key namespace.
type ctxKey int

const (
	collectorKey ctxKey = iota
	spanKey
)

// Into returns a context carrying c; instrumented code downstream
// retrieves it with From. Installing a nil collector is a no-op
// context (From still returns nil).
func Into(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey, c)
}

// From returns the collector installed in ctx, or nil when
// observability is off. The nil result is a valid no-op sink.
func From(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey).(*Collector)
	return c
}
