package org

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/asn"
)

func TestSiblings(t *testing.T) {
	tab := NewTable()
	tab.AddOrg(Organization{ID: "o1", Name: "Lumen", Country: "US"})
	tab.Assign(3356, "o1")
	tab.Assign(3549, "o1")
	tab.Assign(209, "o1")
	tab.Assign(174, "o2")

	if !tab.Siblings(3356, 3549) {
		t.Error("3356 and 3549 should be siblings")
	}
	if !tab.Siblings(3549, 3356) {
		t.Error("Siblings should be symmetric")
	}
	if tab.Siblings(3356, 174) {
		t.Error("3356 and 174 are not siblings")
	}
	if tab.Siblings(3356, 3356) {
		t.Error("an ASN is not its own sibling")
	}
	if tab.Siblings(3356, 9999) {
		t.Error("unknown ASN cannot be a sibling")
	}
	if tab.Siblings(9998, 9999) {
		t.Error("two unknown ASNs cannot be siblings")
	}
}

func TestMembersSorted(t *testing.T) {
	tab := NewTable()
	tab.Assign(300, "o1")
	tab.Assign(100, "o1")
	tab.Assign(200, "o1")
	tab.Assign(400, "o2")
	got := tab.Members("o1")
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Errorf("Members(o1) = %v", got)
	}
	if len(tab.Members("missing")) != 0 {
		t.Error("Members of unknown org should be empty")
	}
}

func TestOrgLookup(t *testing.T) {
	tab := NewTable()
	tab.AddOrg(Organization{ID: "o1", Name: "Example", Country: "DE"})
	tab.Assign(64000, "o1")
	o, ok := tab.Org(64000)
	if !ok || o.Name != "Example" || o.Country != "DE" {
		t.Errorf("Org(64000) = %+v, %v", o, ok)
	}
	if _, ok := tab.Org(1); ok {
		t.Error("Org(1) should be unknown")
	}
}

func TestAssignCreatesBareOrg(t *testing.T) {
	tab := NewTable()
	tab.Assign(1, "auto")
	if tab.NumOrgs() != 1 || tab.NumASNs() != 1 {
		t.Errorf("NumOrgs=%d NumASNs=%d", tab.NumOrgs(), tab.NumASNs())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tab := NewTable()
	tab.AddOrg(Organization{ID: "o-lumen", Name: "Lumen Technologies", Country: "US"})
	tab.AddOrg(Organization{ID: "o-dtag", Name: "Deutsche Telekom", Country: "DE"})
	tab.Assign(3356, "o-lumen")
	tab.Assign(3549, "o-lumen")
	tab.Assign(3320, "o-dtag")

	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.NumOrgs() != 2 || got.NumASNs() != 3 {
		t.Fatalf("round trip: orgs=%d asns=%d", got.NumOrgs(), got.NumASNs())
	}
	if !got.Siblings(3356, 3549) {
		t.Error("siblings lost in round trip")
	}
	o, ok := got.Org(3320)
	if !ok || o.Name != "Deutsche Telekom" {
		t.Errorf("Org(3320) = %+v, %v", o, ok)
	}
}

func TestParseRealWorldFragment(t *testing.T) {
	const in = `# name: AS Org
# format: org_id|changed|org_name|country|source
LPL-141-ARIN|20170128|Lumen|US|ARIN
# format: aut|changed|aut_name|org_id|opaque_id|source
3356|20170128|LEVEL3|LPL-141-ARIN|e5e3b9|ARIN
`
	tab, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	o, ok := tab.Org(3356)
	if !ok || o.Name != "Lumen" {
		t.Errorf("Org(3356) = %+v, %v", o, ok)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"# format: aut|changed|aut_name|org_id|opaque_id|source\nbad|x|y\n",
		"# format: aut|changed|aut_name|org_id|opaque_id|source\nabc|x|y|o1\n",
		"# format: org_id|changed|org_name|country|source\nonly|three|fields\n",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestSiblingsUnassignedZeroValue(t *testing.T) {
	tab := NewTable()
	if tab.Siblings(asn.ASN(1), asn.ASN(2)) {
		t.Error("empty table claims siblings")
	}
}
