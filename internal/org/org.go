// Package org models AS-to-Organization data in the shape of CAIDA's
// as-organizations dataset: organisations own one or more ASNs, and
// two distinct ASNs owned by the same organisation form a sibling
// (S2S) pair. Sibling pairs must be removed from relationship
// validation data unless the classifier handles them explicitly
// (§4.2 of Prehn & Feldmann, IMC'21).
//
// Serialisation follows CAIDA's legacy pipe-separated layout:
//
//	# format: org_id|changed|org_name|country|source
//	# format: aut|changed|aut_name|org_id|opaque_id|source
//
// so synthetic tables round-trip through the same parser real data
// would use.
package org

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"breval/internal/asn"
)

// Organization is one organisation record.
type Organization struct {
	ID      string
	Name    string
	Country string
}

// Table maps ASNs to organisations.
type Table struct {
	orgs  map[string]Organization
	owner map[asn.ASN]string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		orgs:  make(map[string]Organization),
		owner: make(map[asn.ASN]string),
	}
}

// AddOrg registers (or replaces) an organisation record.
func (t *Table) AddOrg(o Organization) { t.orgs[o.ID] = o }

// Assign records that a is owned by the organisation with the given
// id. The organisation does not need to be registered first; a bare
// record is created on demand.
func (t *Table) Assign(a asn.ASN, orgID string) {
	if _, ok := t.orgs[orgID]; !ok {
		t.orgs[orgID] = Organization{ID: orgID}
	}
	t.owner[a] = orgID
}

// Org returns the organisation owning a, if known.
func (t *Table) Org(a asn.ASN) (Organization, bool) {
	id, ok := t.owner[a]
	if !ok {
		return Organization{}, false
	}
	return t.orgs[id], true
}

// Siblings reports whether a and b belong to the same organisation.
// Distinct ASNs with no organisation data are never siblings, and an
// ASN is not its own sibling.
func (t *Table) Siblings(a, b asn.ASN) bool {
	if a == b {
		return false
	}
	ia, ok := t.owner[a]
	if !ok {
		return false
	}
	ib, ok := t.owner[b]
	return ok && ia == ib
}

// Members returns all ASNs owned by orgID, in ascending order.
func (t *Table) Members(orgID string) []asn.ASN {
	var out []asn.ASN
	for a, id := range t.owner {
		if id == orgID {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumOrgs returns the number of organisations, NumASNs the number of
// ASN→org assignments.
func (t *Table) NumOrgs() int { return len(t.orgs) }

// NumASNs returns the number of ASN→organisation assignments.
func (t *Table) NumASNs() int { return len(t.owner) }

// WriteTo serialises the table in CAIDA's legacy layout. Organisations
// are emitted in sorted ID order, ASNs in ascending order, so output
// is deterministic. WriteTo implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	emit := func(s string) error {
		n, err := bw.WriteString(s)
		total += int64(n)
		return err
	}
	if err := emit("# format: org_id|changed|org_name|country|source\n"); err != nil {
		return total, err
	}
	ids := make([]string, 0, len(t.orgs))
	for id := range t.orgs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := t.orgs[id]
		if err := emit(fmt.Sprintf("%s|20180401|%s|%s|BREVAL\n", o.ID, o.Name, o.Country)); err != nil {
			return total, err
		}
	}
	if err := emit("# format: aut|changed|aut_name|org_id|opaque_id|source\n"); err != nil {
		return total, err
	}
	asns := make([]asn.ASN, 0, len(t.owner))
	for a := range t.owner {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		if err := emit(fmt.Sprintf("%d|20180401|AS%d|%s||BREVAL\n", a, a, t.owner[a])); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Parse reads a table in CAIDA's legacy layout. The two record shapes
// are distinguished by the most recent "# format:" comment, exactly as
// in the real files.
func Parse(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	inAut := false
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "format:") {
				inAut = strings.Contains(line, "aut|")
			}
			continue
		}
		fields := strings.Split(line, "|")
		if inAut {
			if len(fields) < 4 {
				return nil, fmt.Errorf("org: line %d: aut record needs >=4 fields", lineno)
			}
			a, err := asn.Parse(fields[0])
			if err != nil {
				return nil, fmt.Errorf("org: line %d: %w", lineno, err)
			}
			t.Assign(a, fields[3])
			continue
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("org: line %d: org record needs >=4 fields", lineno)
		}
		t.AddOrg(Organization{ID: fields[0], Name: fields[2], Country: fields[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("org: %w", err)
	}
	return t, nil
}
