// Package features computes the path-derived quantities the
// relationship-inference algorithms and the bias analysis share:
// transit degree, node degree, vantage-point visibility per link,
// observed adjacency, triplet evidence, and distance to the clique.
//
// All quantities are derived from observed paths only — exactly what a
// real deployment computes from collector RIBs — never from the
// ground-truth graph.
package features

import (
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
)

// Set holds the shared path-derived features.
type Set struct {
	// Paths is the cleaned path set (loops removed, prepending
	// collapsed).
	Paths *bgp.PathSet
	// Links is the observed ("inferred") link universe.
	Links map[asgraph.Link]bool
	// NodeDegree counts distinct observed neighbors per AS.
	NodeDegree map[asn.ASN]int
	// TransitDegree counts distinct neighbors an AS was seen
	// forwarding between (Luckie et al.'s transit degree).
	TransitDegree map[asn.ASN]int
	// VPCount is the number of distinct vantage points observing each
	// link.
	VPCount map[asgraph.Link]int
	// Adj is the observed adjacency (sorted neighbor lists).
	Adj map[asn.ASN][]asn.ASN
}

// Compute cleans ps (dropping looped paths, collapsing prepending)
// and derives the feature set.
func Compute(ps *bgp.PathSet) *Set {
	clean := bgp.NewPathSet(ps.Len(), ps.Len()*4)
	ps.ForEach(func(p asgraph.Path) {
		c := p.CompactPrepending()
		if c.HasLoop() || len(c) == 0 {
			return
		}
		clean.Append(c)
	})

	s := &Set{
		Paths:         clean,
		Links:         make(map[asgraph.Link]bool),
		NodeDegree:    make(map[asn.ASN]int),
		TransitDegree: make(map[asn.ASN]int),
		VPCount:       make(map[asgraph.Link]int),
		Adj:           make(map[asn.ASN][]asn.ASN),
	}

	nbrs := make(map[asn.ASN]map[asn.ASN]bool)
	transit := make(map[asn.ASN]map[asn.ASN]bool)
	vpSeen := make(map[asgraph.Link]map[asn.ASN]bool)

	addNbr := func(a, b asn.ASN) {
		m := nbrs[a]
		if m == nil {
			m = make(map[asn.ASN]bool, 4)
			nbrs[a] = m
		}
		m[b] = true
	}
	addTransit := func(mid, side asn.ASN) {
		m := transit[mid]
		if m == nil {
			m = make(map[asn.ASN]bool, 4)
			transit[mid] = m
		}
		m[side] = true
	}

	clean.ForEach(func(p asgraph.Path) {
		vp := p.VantagePoint()
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			l := asgraph.NewLink(a, b)
			s.Links[l] = true
			addNbr(a, b)
			addNbr(b, a)
			m := vpSeen[l]
			if m == nil {
				m = make(map[asn.ASN]bool, 4)
				vpSeen[l] = m
			}
			m[vp] = true
		}
		p.Triplets(func(left, mid, right asn.ASN) {
			addTransit(mid, left)
			addTransit(mid, right)
		})
	})

	for a, m := range nbrs {
		s.NodeDegree[a] = len(m)
		lst := make([]asn.ASN, 0, len(m))
		for b := range m {
			lst = append(lst, b)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		s.Adj[a] = lst
	}
	for a, m := range transit {
		s.TransitDegree[a] = len(m)
	}
	for l, m := range vpSeen {
		s.VPCount[l] = len(m)
	}
	return s
}

// ASesByTransitDegree returns all observed ASes sorted by descending
// transit degree, breaking ties by descending node degree, then
// ascending ASN (deterministic).
func (s *Set) ASesByTransitDegree() []asn.ASN {
	out := make([]asn.ASN, 0, len(s.Adj))
	for a := range s.Adj {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if s.TransitDegree[a] != s.TransitDegree[b] {
			return s.TransitDegree[a] > s.TransitDegree[b]
		}
		if s.NodeDegree[a] != s.NodeDegree[b] {
			return s.NodeDegree[a] > s.NodeDegree[b]
		}
		return a < b
	})
	return out
}

// DistanceToSet returns, per AS, the minimum hop distance in the
// observed adjacency to any AS in seeds. Unreachable ASes are absent
// from the result.
func (s *Set) DistanceToSet(seeds []asn.ASN) map[asn.ASN]int {
	dist := make(map[asn.ASN]int, len(s.Adj))
	queue := make([]asn.ASN, 0, len(seeds))
	for _, a := range seeds {
		if _, ok := s.Adj[a]; !ok {
			continue
		}
		if _, ok := dist[a]; !ok {
			dist[a] = 0
			queue = append(queue, a)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, n := range s.Adj[x] {
			if _, ok := dist[n]; !ok {
				dist[n] = dist[x] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// ObservedStubs returns the ASes with transit degree zero — ASes never
// seen forwarding, the "stubs" of the observed topology.
func (s *Set) ObservedStubs() map[asn.ASN]bool {
	out := make(map[asn.ASN]bool)
	for a := range s.Adj {
		if s.TransitDegree[a] == 0 {
			out[a] = true
		}
	}
	return out
}
