// Package features computes the path-derived quantities the
// relationship-inference algorithms and the bias analysis share:
// transit degree, node degree, vantage-point visibility per link,
// observed adjacency, triplet evidence, and distance to the clique.
//
// All quantities are derived from observed paths only — exactly what a
// real deployment computes from collector RIBs — never from the
// ground-truth graph.
//
// Internally the package is built on the dense interning layer of
// internal/intern: paths are cleaned, the observed ASes and links are
// assigned dense int32 IDs, and the per-path scan accumulates into
// flat per-worker arrays that merge deterministically in shard order.
// The interning step is the single ownership point of the dense ID
// space: only Build here may assign IDs, every consumer downstream
// (inference, bias, hardlinks, casestudy, render) is a reader. The
// determinism-under-parallelism contract is documented in
// docs/performance.md: any worker count produces an identical Set.
package features

import (
	"context"
	"runtime"
	"runtime/debug"
	"slices"
	"sort"
	"sync"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/govern"
	"breval/internal/intern"
	"breval/internal/obs"
	"breval/internal/resilience"
)

// Set holds the shared path-derived features in the dense interned
// shape. The Intern table owns the dense ID space; everything else is
// indexed by its IDs. All fields are immutable after construction and
// safe for concurrent readers.
type Set struct {
	// Paths is the cleaned path set (loops removed, prepending
	// collapsed). It may be nil after ReleasePaths: the dense mirror
	// carries everything inference needs, and holding the ASN-typed
	// arena beside it doubles the path footprint for nothing.
	Paths *bgp.PathSet

	// PathCount is the number of cleaned paths. It survives
	// ReleasePaths, so consumers that only report the count (digests,
	// summaries) need not keep the arena alive.
	PathCount int

	// Intern is the dense-ID universe of the cleaned paths; Dense is
	// their per-hop dense mirror.
	Intern *intern.Table
	Dense  *intern.DensePaths
	// NodeDeg counts distinct observed neighbors per AS (by dense AS
	// ID). TransitDeg counts distinct neighbors an AS was seen
	// forwarding between (Luckie et al.'s transit degree). VPCnt is
	// the number of distinct vantage points observing each link (by
	// dense link ID).
	NodeDeg    intern.ASCounts
	TransitDeg intern.ASCounts
	VPCnt      intern.LinkCounts
}

// NumLinks returns the size of the observed ("inferred") link
// universe.
func (s *Set) NumLinks() int { return s.Intern.NumLinks() }

// ReleasePaths drops the cleaned ASN-typed path arena, keeping the
// dense mirror, the intern table and the count vectors. Call once no
// remaining consumer walks s.Paths (inference algorithms that still
// need it implement inference.PathsConsumer); PathCount keeps
// reporting the arena's length afterwards.
func (s *Set) ReleasePaths() { s.Paths = nil }

// NodeDegreeOf returns the node degree of a, 0 when a was never
// observed.
func (s *Set) NodeDegreeOf(a asn.ASN) int {
	if id, ok := s.Intern.ASID(a); ok {
		return int(s.NodeDeg[id])
	}
	return 0
}

// TransitDegreeOf returns the transit degree of a, 0 when a was never
// observed forwarding (matching the legacy map, which skipped zero
// entries).
func (s *Set) TransitDegreeOf(a asn.ASN) int {
	if id, ok := s.Intern.ASID(a); ok {
		return int(s.TransitDeg[id])
	}
	return 0
}

// VPCountOf returns the number of distinct vantage points that
// observed l, 0 when l was never observed.
func (s *Set) VPCountOf(l asgraph.Link) int {
	if lid, ok := s.Intern.LinkID(l); ok {
		return int(s.VPCnt[lid])
	}
	return 0
}

// Compute cleans ps (dropping looped paths, collapsing prepending)
// and derives the feature set. It is the convenience form of
// ComputeContext for callers running without cancellation or fault
// injection; under those conditions ComputeContext cannot fail, so
// Compute panics on the impossible error.
func Compute(ps *bgp.PathSet) *Set {
	s, err := ComputeContext(context.Background(), ps)
	if err != nil {
		panic(err)
	}
	return s
}

// maxVPMatrixBits bounds the per-worker links×VPs visibility bitset
// (32 MiB of bits). Worlds whose product exceeds it fall back to
// hash-set accumulation, trading speed for bounded memory.
const maxVPMatrixBits = 1 << 28

// ComputeContext is Compute with parallelism, observability and fault
// containment: the clean and scan phases shard the paths across
// GOMAXPROCS workers whose panics surface as typed
// *resilience.StageError values instead of crashing the caller, each
// phase is an obs span, and cancellation is honoured between shards.
// The result is bit-for-bit independent of the worker count: partial
// results merge in shard order and all dense IDs are assigned in
// sorted order (see internal/intern).
func ComputeContext(ctx context.Context, ps *bgp.PathSet) (*Set, error) {
	col := obs.From(ctx)
	workers := runtime.GOMAXPROCS(0)
	if workers > ps.Len() {
		workers = ps.Len()
	}
	if workers < 1 {
		workers = 1
	}
	col.SetGauge("features.workers", float64(workers))

	// Phase 1: clean per shard, merge in shard order. The merged arena
	// is byte-identical to a serial clean because shard boundaries
	// preserve path order.
	cctx, span := obs.StartSpan(ctx, "features.clean")
	shards := make([]*bgp.PathSet, workers)
	n := ps.Len()
	err := runContained(cctx, "features.compute.worker", workers, workers, func(ctx context.Context, _, w int) error {
		lo, hi := n*w/workers, n*(w+1)/workers
		out := bgp.NewPathSet(hi-lo, (hi-lo)*4)
		scratch := make(asgraph.Path, 0, 64)
		for i := lo; i < hi; i++ {
			if i%4096 == 0 {
				if err := resilience.Checkpoint(ctx, "features.compute.worker"); err != nil {
					return err
				}
			}
			c := ps.At(i).CompactPrependingInto(scratch[:0])
			if c.HasLoop() || len(c) == 0 {
				continue
			}
			out.Append(c)
			scratch = c
		}
		shards[w] = out
		return nil
	})
	span.End()
	if err != nil {
		return nil, err
	}
	clean := bgp.NewPathSet(ps.Len(), ps.Len()*4)
	for _, sh := range shards {
		clean.AppendSet(sh)
	}
	col.Add("features.paths_scanned", int64(ps.Len()))
	col.Add("features.paths_dropped", int64(ps.Len()-clean.Len()))

	return finishFromClean(ctx, clean, workers)
}

// finishFromClean runs the intern and scan phases over an
// already-cleaned path arena. Both ComputeContext and the streaming
// collector end here, which is what keeps the two construction paths
// byte-identical: the arena is the only input, and every phase below
// is schedule-independent.
func finishFromClean(ctx context.Context, clean *bgp.PathSet, workers int) (*Set, error) {
	col := obs.From(ctx)

	// Intern the cleaned universe and densify the paths.
	_, span := obs.StartSpan(ctx, "features.intern")
	tab := intern.Build(clean)
	dense := tab.Densify(clean)
	span.End()
	col.SetGauge("features.intern.ases", float64(tab.NumAS()))
	col.SetGauge("features.intern.links", float64(tab.NumLinks()))
	col.SetGauge("features.intern.vps", float64(tab.NumVPs()))

	s := &Set{Paths: clean, PathCount: clean.Len(), Intern: tab, Dense: dense}

	// Sharded scan into per-worker dense partials.
	sctx, span := obs.StartSpan(ctx, "features.scan")
	serr := s.scan(sctx, workers)
	span.End()
	if serr != nil {
		return nil, serr
	}
	return s, nil
}

// StreamCollector consumes propagation path blocks as they are
// produced (bgp.(*Simulator).PropagateBlocks) and accumulates the
// cleaned arena incrementally, so the raw and cleaned path universes
// never coexist in full. Feed must be called from one goroutine —
// PropagateBlocks' in-order sink delivery satisfies this — and Finish
// returns exactly the Set that ComputeContext would have produced
// from the concatenated blocks.
type StreamCollector struct {
	clean   *bgp.PathSet
	scratch asgraph.Path
	raw     int
}

// NewStreamCollector returns an empty collector.
func NewStreamCollector() *StreamCollector {
	return &StreamCollector{clean: &bgp.PathSet{}, scratch: make(asgraph.Path, 0, 64)}
}

// Feed cleans one path block (dropping looped paths, collapsing
// prepending) and appends the survivors to the collector's arena.
// Each block is one unit of governed work: it holds a limiter permit
// while cleaning, so streamed feature extraction thins out under
// memory pressure exactly like the sharded phases do.
func (sc *StreamCollector) Feed(ctx context.Context, blk *bgp.PathSet) error {
	lim := govern.From(ctx).Limiter()
	if err := lim.Acquire(ctx); err != nil {
		return err
	}
	defer lim.Release()
	n := blk.Len()
	sc.raw += n
	for i := 0; i < n; i++ {
		c := blk.At(i).CompactPrependingInto(sc.scratch[:0])
		if c.HasLoop() || len(c) == 0 {
			continue
		}
		sc.clean.Append(c)
		sc.scratch = c
	}
	return nil
}

// Finish runs the intern and scan phases over the accumulated arena
// and returns the feature set. The collector must not be reused
// afterwards.
func (sc *StreamCollector) Finish(ctx context.Context) (*Set, error) {
	col := obs.From(ctx)
	workers := runtime.GOMAXPROCS(0)
	if workers > sc.clean.Len() {
		workers = sc.clean.Len()
	}
	if workers < 1 {
		workers = 1
	}
	col.SetGauge("features.workers", float64(workers))
	col.Add("features.paths_scanned", int64(sc.raw))
	col.Add("features.paths_dropped", int64(sc.raw-sc.clean.Len()))
	return finishFromClean(ctx, sc.clean, workers)
}

// scan accumulates transit-degree and VP-visibility evidence over the
// dense paths, sharded across workers, and derives the dense count
// vectors. Per-worker partials are bitsets whose merge (bitwise or) is
// commutative, so the result is schedule-independent.
func (s *Set) scan(ctx context.Context, workers int) error {
	tab, d := s.Intern, s.Dense
	nLinks, nVPs := tab.NumLinks(), tab.NumVPs()
	vpBits := int64(nLinks) * int64(nVPs)
	useMatrix := vpBits <= maxVPMatrixBits

	transit := make([]intern.Bitset, workers)
	vpMatrix := make([]intern.Bitset, workers)
	vpPairs := make([][]uint64, workers)
	nPaths := d.Len()
	err := runContained(ctx, "features.compute.worker", workers, workers, func(ctx context.Context, _, w int) error {
		tr := intern.NewBitset(tab.NumEdges())
		transit[w] = tr
		var vm intern.Bitset
		var pairs []uint64
		lo, hi := nPaths*w/workers, nPaths*(w+1)/workers
		if useMatrix {
			vm = intern.NewBitset(int(vpBits))
			vpMatrix[w] = vm
		} else {
			// One entry per hop in the shard, known up front: presizing
			// exactly avoids append-doubling overshoot on what is the
			// scan's largest transient at xl scale.
			pairs = make([]uint64, 0, d.HopSpan(lo, hi))
		}
		for i := lo; i < hi; i++ {
			if i%4096 == 0 {
				if err := resilience.Checkpoint(ctx, "features.compute.worker"); err != nil {
					return err
				}
			}
			hops := d.Hops(i)
			if len(hops) == 0 {
				continue
			}
			vp := uint64(uint32(d.VP(i)))
			for _, h := range hops {
				lid, _ := intern.DecodeHop(h)
				if useMatrix {
					vm.Set(int32(int64(lid)*int64(nVPs) + int64(vp)))
				} else {
					pairs = append(pairs, uint64(uint32(lid))<<32|vp)
				}
			}
			// Triplets: consecutive hop pairs share the mid AS; mark
			// the two directed half-edges mid→left and mid→right.
			for j := 0; j+1 < len(hops); j++ {
				ll, lFromA := intern.DecodeHop(hops[j])
				rl, rFromA := intern.DecodeHop(hops[j+1])
				// mid is the second AS of hop j (the A endpoint of ll
				// iff the hop ran B→A), and the first AS of hop j+1.
				tr.Set(tab.EdgeEntry(ll, !lFromA))
				tr.Set(tab.EdgeEntry(rl, rFromA))
			}
		}
		if !useMatrix {
			// Dedupe the shard's raw (link, VP) occurrences before the
			// merge: sorted unique slices keep the fallback's footprint
			// proportional to the distinct pairs, not the hop count, and
			// cost a fraction of what per-key hashing did.
			slices.Sort(pairs)
			vpPairs[w] = slices.Compact(pairs)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Merge partials and derive the dense vectors. Node degree is the
	// CSR row length — every distinct neighbor is a distinct link.
	for w := 1; w < workers; w++ {
		transit[0].Or(transit[w])
		if useMatrix {
			vpMatrix[0].Or(vpMatrix[w])
		}
	}
	s.NodeDeg = intern.NewASCounts(tab)
	s.TransitDeg = intern.NewASCounts(tab)
	for id := 0; id < tab.NumAS(); id++ {
		s.NodeDeg[id] = tab.Degree(int32(id))
		lo, hi := tab.RowRange(int32(id))
		s.TransitDeg[id] = int32(transit[0].CountRange(lo, hi))
	}
	s.VPCnt = intern.NewLinkCounts(tab)
	if useMatrix {
		for lid := 0; lid < nLinks; lid++ {
			lo := int32(int64(lid) * int64(nVPs))
			s.VPCnt[lid] = int32(vpMatrix[0].CountRange(lo, lo+int32(nVPs)))
		}
	} else {
		// Different workers may have seen the same (link, VP) pair;
		// concatenate the sorted shard slices, sort once more and count
		// each distinct pair exactly once. Workers' slices are released
		// as they are absorbed so the peak is one copy of the union
		// plus the largest shard.
		var all []uint64
		if workers == 1 {
			// A single shard is already sorted and deduped; adopt it
			// instead of copying a quarter-gigabyte at xl scale.
			all, vpPairs[0] = vpPairs[0], nil
		} else {
			total := 0
			for _, p := range vpPairs {
				total += len(p)
			}
			all = make([]uint64, 0, total)
			for w := range vpPairs {
				all = append(all, vpPairs[w]...)
				vpPairs[w] = nil
			}
			slices.Sort(all)
		}
		var prev uint64
		for i, k := range all {
			if i == 0 || k != prev {
				s.VPCnt[k>>32]++
				prev = k
			}
		}
	}
	return nil
}

// NumBlocks returns how many blockPaths-sized blocks cover n paths
// (0 for an empty set). It is the block count ScanBlocks iterates
// with the same arguments.
func NumBlocks(n, blockPaths int) int {
	if n <= 0 {
		return 0
	}
	if blockPaths < 1 {
		blockPaths = n
	}
	return (n + blockPaths - 1) / blockPaths
}

// ScanBlocks runs fn over consecutive blockPaths-sized blocks of the
// dense paths, sharded across at most workers goroutines with the
// same supervised, panic-contained execution as the feature scan
// itself. Blocks partition [0, Dense.Len()) in order: block b covers
// rows [lo, hi). fn additionally receives the executing worker's
// index in [0, workers), so callers can accumulate into per-worker
// scratch without locking; any cross-block state that is
// order-sensitive must be kept per block and merged in block order by
// the caller — block-to-worker assignment is scheduling-dependent.
//
// Unlike the feature scan, blocks take no permits from the shared
// governor limiter: the inference fan-out already holds one permit
// per running algorithm for its whole lifetime, and re-acquiring
// underneath it would self-deadlock at limit 1. Cancellation is still
// honoured between blocks and through fn's own Checkpoint calls.
func (s *Set) ScanBlocks(ctx context.Context, stage string, workers, blockPaths int, fn func(ctx context.Context, worker, block, lo, hi int) error) error {
	n := s.Dense.Len()
	if n == 0 {
		return nil
	}
	if blockPaths < 1 {
		blockPaths = n
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	nb := NumBlocks(n, blockPaths)
	return runPool(ctx, stage, workers, nb, nil, func(ctx context.Context, worker, b int) error {
		lo := b * blockPaths
		hi := lo + blockPaths
		if hi > n {
			hi = n
		}
		return fn(ctx, worker, b, lo, hi)
	})
}

// runContained runs fn(worker, i) for i in [0, n) across at most
// workers goroutines, recovering panics into typed
// *resilience.StageError values; the first failure cancels the
// siblings and wins. Every work item holds one permit from the shared
// governor limiter, so the fan-out adapts to memory pressure.
func runContained(ctx context.Context, stage string, workers, n int, fn func(ctx context.Context, worker, i int) error) error {
	return runPool(ctx, stage, workers, n, govern.From(ctx).Limiter(), fn)
}

// runPool is the contained worker pool under runContained and
// ScanBlocks: supervised (the periodic resilience.Checkpoint calls
// inside fn double as heartbeats), panic-contained, first failure
// cancels the siblings and wins. lim may be nil for callers that
// already hold a permit for the whole scan. The worker index
// identifies the executing goroutine so fn can use per-worker
// scratch; which worker handles which item is scheduling-dependent.
func runPool(ctx context.Context, stage string, workers, n int, lim *govern.Limiter, fn func(ctx context.Context, worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ctx, hb := govern.Supervise(ctx, stage, 0)
	defer hb.Stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					fail(resilience.NewPanic(stage, v, debug.Stack()))
				}
			}()
			for i := range ch {
				if ctx.Err() != nil {
					return
				}
				if err := lim.Acquire(ctx); err != nil {
					fail(err)
					return
				}
				err := func() error {
					// Release survives a panicking item (the recover
					// above fires during unwinding, after this defer):
					// a leaked permit would shrink capacity for the
					// stage retry.
					defer lim.Release()
					return fn(ctx, w, i)
				}()
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return hb.Resolve(firstErr)
	}
	return hb.Resolve(ctx.Err())
}

// ASIDsByTransitDegree returns all observed dense AS IDs sorted by
// descending transit degree, breaking ties by descending node degree,
// then ascending ASN (deterministic — ascending ID is ascending ASN).
func (s *Set) ASIDsByTransitDegree() []int32 {
	out := make([]int32, s.Intern.NumAS())
	for i := range out {
		out[i] = int32(i)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if s.TransitDeg[a] != s.TransitDeg[b] {
			return s.TransitDeg[a] > s.TransitDeg[b]
		}
		if s.NodeDeg[a] != s.NodeDeg[b] {
			return s.NodeDeg[a] > s.NodeDeg[b]
		}
		return a < b
	})
	return out
}

// ASesByTransitDegree returns all observed ASes sorted by descending
// transit degree, breaking ties by descending node degree, then
// ascending ASN (deterministic).
func (s *Set) ASesByTransitDegree() []asn.ASN {
	return s.Intern.ASNsOf(s.ASIDsByTransitDegree())
}

// DistanceIDs returns, per dense AS ID, the minimum hop distance in
// the observed adjacency to any AS in seeds, or -1 when unreachable.
func (s *Set) DistanceIDs(seeds []asn.ASN) []int32 {
	tab := s.Intern
	dist := make([]int32, tab.NumAS())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(seeds))
	for _, a := range seeds {
		id, ok := tab.ASID(a)
		if !ok || dist[id] >= 0 {
			continue
		}
		dist[id] = 0
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		nbrs, _ := tab.Row(x)
		for _, nb := range nbrs {
			if dist[nb] < 0 {
				dist[nb] = dist[x] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// DistanceToSet returns, per AS, the minimum hop distance in the
// observed adjacency to any AS in seeds. Unreachable ASes are absent
// from the result.
func (s *Set) DistanceToSet(seeds []asn.ASN) map[asn.ASN]int {
	ids := s.DistanceIDs(seeds)
	out := make(map[asn.ASN]int, len(ids))
	for id, d := range ids {
		if d >= 0 {
			out[s.Intern.ASN(int32(id))] = int(d)
		}
	}
	return out
}

// ObservedStubs returns the ASes with transit degree zero — ASes never
// seen forwarding, the "stubs" of the observed topology.
func (s *Set) ObservedStubs() map[asn.ASN]bool {
	out := make(map[asn.ASN]bool)
	for id, td := range s.TransitDeg {
		if td == 0 {
			out[s.Intern.ASN(int32(id))] = true
		}
	}
	return out
}
