package features_test

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/govern"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/gao"
	"breval/internal/topogen"
)

// computeWithWorkers runs ComputeContext with GOMAXPROCS pinned to n,
// so the sharded clean and scan phases run with exactly n workers.
func computeWithWorkers(t *testing.T, ps *bgp.PathSet, n int) *features.Set {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fs, err := features.ComputeContext(context.Background(), ps)
	if err != nil {
		t.Fatalf("ComputeContext(%d workers): %v", n, err)
	}
	return fs
}

// worldPaths builds a small world and propagates its paths.
func worldPaths(t *testing.T, seed int64) *bgp.PathSet {
	t.Helper()
	cfg := topogen.DefaultConfig(seed).Scaled(300)
	world, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return bgp.NewSimulator(world.Graph).Propagate(world.ASNs, world.VPs)
}

// setDigest folds every observable quantity of a feature set — the
// cleaned path arena and the dense vectors (from which the legacy maps
// are materialised) — into one hash.
func setDigest(fs *features.Set) uint64 {
	h := fnv.New64a()
	word := func(v int32) {
		h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	for i := 0; i < fs.Paths.Len(); i++ {
		for _, a := range fs.Paths.At(i) {
			word(int32(a))
		}
		word(-1)
	}
	tab := fs.Intern
	word(int32(tab.NumAS()))
	word(int32(tab.NumLinks()))
	word(int32(tab.NumVPs()))
	for id := 0; id < tab.NumAS(); id++ {
		word(int32(tab.ASN(int32(id))))
		word(fs.NodeDeg[id])
		word(fs.TransitDeg[id])
	}
	for lid := 0; lid < tab.NumLinks(); lid++ {
		a, b := tab.LinkEnds(int32(lid))
		word(a)
		word(b)
		word(fs.VPCnt[lid])
	}
	return h.Sum64()
}

// resultDigest folds an inference result into one hash, in the
// deterministic Links() order.
func resultDigest(res *inference.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%v|", res.Name, res.Clique)
	for _, l := range res.Links() {
		rel, _ := res.Rel(l)
		fmt.Fprintf(h, "%d-%d:%d:%d|", l.A, l.B, rel.Type, rel.Provider)
	}
	return h.Sum64()
}

// TestComputeParallelDeterminism is the determinism-under-parallelism
// property: for every worker count from 1 to GOMAXPROCS (at least 4 —
// worker counts beyond NumCPU still exercise the shard merge), the
// feature set contents are identical, and so are the digests of the
// inference results computed from them.
func TestComputeParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			paths := worldPaths(t, seed)
			ref := computeWithWorkers(t, paths, 1)
			refSet := setDigest(ref)
			refASRank := resultDigest(asrank.New(asrank.Options{}).Infer(ref))
			refGao := resultDigest(gao.New(gao.Options{}).Infer(ref))
			for n := 2; n <= maxWorkers; n++ {
				fs := computeWithWorkers(t, paths, n)
				if got := setDigest(fs); got != refSet {
					t.Fatalf("%d workers: feature set digest %x, serial %x", n, got, refSet)
				}
				if got := resultDigest(asrank.New(asrank.Options{}).Infer(fs)); got != refASRank {
					t.Fatalf("%d workers: ASRank digest diverged", n)
				}
				if got := resultDigest(gao.New(gao.Options{}).Infer(fs)); got != refGao {
					t.Fatalf("%d workers: Gao digest diverged", n)
				}
			}
		})
	}
}

// TestComputeMatchesMapOracle pins the dense vectors to an
// independent map-based recomputation over the cleaned paths — the
// shape the pre-dense pipeline materialised.
func TestComputeMatchesMapOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	fs := computeWithWorkers(t, worldPaths(t, 3), 3)
	tab := fs.Intern

	// Recompute the link universe and per-link distinct-VP counts from
	// the cleaned arena with plain maps.
	links := make(map[asgraph.Link]bool)
	vpSeen := make(map[asgraph.Link]map[asn.ASN]bool)
	adj := make(map[asn.ASN]map[asn.ASN]bool)
	transit := make(map[asn.ASN]map[asn.ASN]bool)
	fs.Paths.ForEach(func(p asgraph.Path) {
		vp := p.VantagePoint()
		for i := 0; i+1 < len(p); i++ {
			l := asgraph.NewLink(p[i], p[i+1])
			links[l] = true
			if vpSeen[l] == nil {
				vpSeen[l] = make(map[asn.ASN]bool)
			}
			vpSeen[l][vp] = true
			if adj[p[i]] == nil {
				adj[p[i]] = make(map[asn.ASN]bool)
			}
			if adj[p[i+1]] == nil {
				adj[p[i+1]] = make(map[asn.ASN]bool)
			}
			adj[p[i]][p[i+1]] = true
			adj[p[i+1]][p[i]] = true
		}
		p.Triplets(func(left, mid, right asn.ASN) {
			if transit[mid] == nil {
				transit[mid] = make(map[asn.ASN]bool)
			}
			transit[mid][left] = true
			transit[mid][right] = true
		})
	})

	if len(links) != tab.NumLinks() {
		t.Fatalf("link universe: oracle %d, dense %d", len(links), tab.NumLinks())
	}
	if len(adj) != tab.NumAS() {
		t.Fatalf("AS universe: oracle %d, dense %d", len(adj), tab.NumAS())
	}
	for l := range links {
		if _, ok := tab.LinkID(l); !ok {
			t.Fatalf("oracle link %v not interned", l)
		}
	}
	for a, nbrs := range adj {
		if got := fs.NodeDegreeOf(a); got != len(nbrs) {
			t.Fatalf("NodeDegreeOf(%d) = %d, oracle %d", a, got, len(nbrs))
		}
		if got := fs.TransitDegreeOf(a); got != len(transit[a]) {
			t.Fatalf("TransitDegreeOf(%d) = %d, oracle %d", a, got, len(transit[a]))
		}
	}
	for l, vps := range vpSeen {
		if got := fs.VPCountOf(l); got != len(vps) {
			t.Fatalf("VPCountOf(%v) = %d, oracle %d", l, got, len(vps))
		}
	}
}

// feedBlocks slices ps into nBlocks contiguous blocks and feeds them
// through a StreamCollector, as the streaming propagation sink would.
func feedBlocks(t *testing.T, ctx context.Context, ps *bgp.PathSet, nBlocks int) *features.Set {
	t.Helper()
	sc := features.NewStreamCollector()
	n := ps.Len()
	for b := 0; b < nBlocks; b++ {
		lo, hi := n*b/nBlocks, n*(b+1)/nBlocks
		blk := bgp.NewPathSet(hi-lo, (hi-lo)*4)
		for i := lo; i < hi; i++ {
			blk.Append(ps.At(i))
		}
		if err := sc.Feed(ctx, blk); err != nil {
			t.Fatalf("Feed block %d: %v", b, err)
		}
	}
	fs, err := sc.Finish(ctx)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return fs
}

// TestStreamCollectorParity extends the determinism property to the
// streaming path: feeding the same paths through a StreamCollector in
// any block partitioning, at any worker count and any governor permit
// level, produces a Set byte-identical to the monolithic
// ComputeContext.
func TestStreamCollectorParity(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	paths := worldPaths(t, 7)
	ref := setDigest(computeWithWorkers(t, paths, 1))

	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	for _, nBlocks := range []int{1, 3, 17, 64} {
		for _, workers := range []int{1, maxWorkers} {
			t.Run(fmt.Sprintf("blocks=%d/workers=%d", nBlocks, workers), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
				fs := feedBlocks(t, context.Background(), paths, nBlocks)
				if got := setDigest(fs); got != ref {
					t.Fatalf("stream digest %x, monolithic %x", got, ref)
				}
			})
		}
	}
	for _, permits := range []int{1, 2} {
		t.Run(fmt.Sprintf("permits=%d", permits), func(t *testing.T) {
			g := govern.New(govern.Config{SoftBytes: 1 << 40, MaxWorkers: permits})
			ctx := govern.Into(context.Background(), g)
			fs := feedBlocks(t, ctx, paths, 9)
			if g.Limiter().InUse() != 0 {
				t.Fatalf("%d permits still held after streamed compute", g.Limiter().InUse())
			}
			if got := setDigest(fs); got != ref {
				t.Fatalf("governed stream digest %x, monolithic %x", got, ref)
			}
		})
	}
}

// TestStreamCollectorSkipAccounting: skipped-coverage counts ride the
// raw path set, not the collector, and survive the streamed pipeline
// through PropagateBlocks' return values.
func TestStreamCollectorSkipAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	cfg := topogen.DefaultConfig(5).Scaled(300)
	world, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	origins := append(append([]asn.ASN{}, world.ASNs...), 4000000, 4000001)
	vps := append(append([]asn.ASN{}, world.VPs...), 4000002)
	sim := bgp.NewSimulator(world.Graph)

	mono, err := sim.PropagateContext(context.Background(), origins, vps)
	if err != nil {
		t.Fatal(err)
	}
	sc := features.NewStreamCollector()
	ctx := context.Background()
	so, sv, err := sim.PropagateBlocks(ctx, origins, vps, func(blk *bgp.PathSet) error {
		return sc.Feed(ctx, blk)
	})
	if err != nil {
		t.Fatal(err)
	}
	if so != mono.SkippedOrigins || sv != mono.SkippedVPs {
		t.Fatalf("streamed skips (%d,%d) != monolithic (%d,%d)",
			so, sv, mono.SkippedOrigins, mono.SkippedVPs)
	}
	if so != 2 || sv != 1 {
		t.Fatalf("skips (%d,%d), want (2,1)", so, sv)
	}
	fs, err := sc.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := features.ComputeContext(context.Background(), mono)
	if err != nil {
		t.Fatal(err)
	}
	if setDigest(fs) != setDigest(ref) {
		t.Fatal("streamed feature set diverged from monolithic")
	}
}

// TestComputeGovernedPermitLevels is the governor half of the
// determinism property: a shared govern.Limiter at any permit level —
// including the single-permit load-shed floor — throttles the feature
// workers without changing a byte of the output.
func TestComputeGovernedPermitLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	paths := worldPaths(t, 7)
	ref := setDigest(computeWithWorkers(t, paths, 4))
	for _, permits := range []int{1, 2, 3} {
		g := govern.New(govern.Config{SoftBytes: 1 << 40, MaxWorkers: permits})
		ctx := govern.Into(context.Background(), g)
		fs, err := features.ComputeContext(ctx, paths)
		if err != nil {
			t.Fatalf("%d permits: %v", permits, err)
		}
		if g.Limiter().InUse() != 0 {
			t.Fatalf("%d permits: %d still held after compute", permits, g.Limiter().InUse())
		}
		if got := setDigest(fs); got != ref {
			t.Fatalf("%d permits: digest %x, ungoverned %x", permits, got, ref)
		}
	}
}
