package features_test

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"breval/internal/bgp"
	"breval/internal/govern"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/gao"
	"breval/internal/topogen"
)

// computeWithWorkers runs ComputeContext with GOMAXPROCS pinned to n,
// so the sharded clean and scan phases run with exactly n workers.
func computeWithWorkers(t *testing.T, ps *bgp.PathSet, n int) *features.Set {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fs, err := features.ComputeContext(context.Background(), ps)
	if err != nil {
		t.Fatalf("ComputeContext(%d workers): %v", n, err)
	}
	return fs
}

// worldPaths builds a small world and propagates its paths.
func worldPaths(t *testing.T, seed int64) *bgp.PathSet {
	t.Helper()
	cfg := topogen.DefaultConfig(seed).Scaled(300)
	world, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return bgp.NewSimulator(world.Graph).Propagate(world.ASNs, world.VPs)
}

// setDigest folds every observable quantity of a feature set — the
// cleaned path arena and the dense vectors (from which the legacy maps
// are materialised) — into one hash.
func setDigest(fs *features.Set) uint64 {
	h := fnv.New64a()
	word := func(v int32) {
		h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	for i := 0; i < fs.Paths.Len(); i++ {
		for _, a := range fs.Paths.At(i) {
			word(int32(a))
		}
		word(-1)
	}
	tab := fs.Intern
	word(int32(tab.NumAS()))
	word(int32(tab.NumLinks()))
	word(int32(tab.NumVPs()))
	for id := 0; id < tab.NumAS(); id++ {
		word(int32(tab.ASN(int32(id))))
		word(fs.NodeDeg[id])
		word(fs.TransitDeg[id])
	}
	for lid := 0; lid < tab.NumLinks(); lid++ {
		a, b := tab.LinkEnds(int32(lid))
		word(a)
		word(b)
		word(fs.VPCnt[lid])
	}
	return h.Sum64()
}

// resultDigest folds an inference result into one hash, in the
// deterministic Links() order.
func resultDigest(res *inference.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%v|", res.Name, res.Clique)
	for _, l := range res.Links() {
		rel, _ := res.Rel(l)
		fmt.Fprintf(h, "%d-%d:%d:%d|", l.A, l.B, rel.Type, rel.Provider)
	}
	return h.Sum64()
}

// TestComputeParallelDeterminism is the determinism-under-parallelism
// property: for every worker count from 1 to GOMAXPROCS (at least 4 —
// worker counts beyond NumCPU still exercise the shard merge), the
// feature set contents are identical, and so are the digests of the
// inference results computed from them.
func TestComputeParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			paths := worldPaths(t, seed)
			ref := computeWithWorkers(t, paths, 1)
			refSet := setDigest(ref)
			refASRank := resultDigest(asrank.New(asrank.Options{}).Infer(ref))
			refGao := resultDigest(gao.New(gao.Options{}).Infer(ref))
			for n := 2; n <= maxWorkers; n++ {
				fs := computeWithWorkers(t, paths, n)
				if got := setDigest(fs); got != refSet {
					t.Fatalf("%d workers: feature set digest %x, serial %x", n, got, refSet)
				}
				if got := resultDigest(asrank.New(asrank.Options{}).Infer(fs)); got != refASRank {
					t.Fatalf("%d workers: ASRank digest diverged", n)
				}
				if got := resultDigest(gao.New(gao.Options{}).Infer(fs)); got != refGao {
					t.Fatalf("%d workers: Gao digest diverged", n)
				}
			}
		})
	}
}

// TestComputeMatchesLegacyMaps pins the materialised map shapes to the
// dense vectors they are derived from.
func TestComputeMatchesLegacyMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	fs := computeWithWorkers(t, worldPaths(t, 3), 3)
	tab := fs.Intern
	if len(fs.Links) != tab.NumLinks() || len(fs.NodeDegree) != tab.NumAS() {
		t.Fatalf("map sizes: links %d/%d, degrees %d/%d",
			len(fs.Links), tab.NumLinks(), len(fs.NodeDegree), tab.NumAS())
	}
	for id := 0; id < tab.NumAS(); id++ {
		a := tab.ASN(int32(id))
		if fs.NodeDegree[a] != int(fs.NodeDeg[id]) {
			t.Fatalf("NodeDegree[%d] = %d, dense %d", a, fs.NodeDegree[a], fs.NodeDeg[id])
		}
		if fs.TransitDegree[a] != int(fs.TransitDeg[id]) {
			t.Fatalf("TransitDegree[%d] = %d, dense %d", a, fs.TransitDegree[a], fs.TransitDeg[id])
		}
	}
	nonZero := 0
	for _, v := range fs.TransitDeg {
		if v != 0 {
			nonZero++
		}
	}
	if len(fs.TransitDegree) != nonZero {
		t.Fatalf("TransitDegree has %d entries, want %d non-zero", len(fs.TransitDegree), nonZero)
	}
	for lid := 0; lid < tab.NumLinks(); lid++ {
		l := tab.Link(int32(lid))
		if fs.VPCount[l] != int(fs.VPCnt[lid]) {
			t.Fatalf("VPCount[%v] = %d, dense %d", l, fs.VPCount[l], fs.VPCnt[lid])
		}
	}
	// Cross-check against the PathSet's own (sort-and-count) fast paths.
	if got := fs.Paths.Links(); len(got) != len(fs.Links) {
		t.Fatalf("PathSet.Links = %d, features %d", len(got), len(fs.Links))
	}
	for l, n := range fs.Paths.VPLinkCounts() {
		if fs.VPCount[l] != n {
			t.Fatalf("VPLinkCounts[%v] = %d, features %d", l, n, fs.VPCount[l])
		}
	}
}

// TestComputeGovernedPermitLevels is the governor half of the
// determinism property: a shared govern.Limiter at any permit level —
// including the single-permit load-shed floor — throttles the feature
// workers without changing a byte of the output.
func TestComputeGovernedPermitLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("world propagation in -short mode")
	}
	paths := worldPaths(t, 7)
	ref := setDigest(computeWithWorkers(t, paths, 4))
	for _, permits := range []int{1, 2, 3} {
		g := govern.New(govern.Config{SoftBytes: 1 << 40, MaxWorkers: permits})
		ctx := govern.Into(context.Background(), g)
		fs, err := features.ComputeContext(ctx, paths)
		if err != nil {
			t.Fatalf("%d permits: %v", permits, err)
		}
		if g.Limiter().InUse() != 0 {
			t.Fatalf("%d permits: %d still held after compute", permits, g.Limiter().InUse())
		}
		if got := setDigest(fs); got != ref {
			t.Fatalf("%d permits: digest %x, ungoverned %x", permits, got, ref)
		}
	}
}
