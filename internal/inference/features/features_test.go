package features

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
)

func pathSet(paths ...asgraph.Path) *bgp.PathSet {
	ps := bgp.NewPathSet(len(paths), 32)
	for _, p := range paths {
		ps.Append(p)
	}
	return ps
}

func TestComputeCleansPaths(t *testing.T) {
	fs := Compute(pathSet(
		asgraph.Path{1, 2, 2, 3}, // prepending collapses
		asgraph.Path{4, 5, 4},    // loop: dropped
		asgraph.Path{6, 7},
	))
	if fs.Paths.Len() != 2 {
		t.Fatalf("cleaned paths = %d, want 2", fs.Paths.Len())
	}
	if _, ok := fs.Intern.LinkID(asgraph.NewLink(2, 3)); !ok {
		t.Error("link 2-3 missing from universe after cleaning")
	}
	if _, ok := fs.Intern.LinkID(asgraph.NewLink(4, 5)); ok {
		t.Error("link 4-5 from looped path survived cleaning")
	}
}

func TestDegreesAndVPCounts(t *testing.T) {
	fs := Compute(pathSet(
		asgraph.Path{10, 1, 2},
		asgraph.Path{11, 1, 2},
		asgraph.Path{10, 1, 3},
	))
	if got := fs.NodeDegreeOf(1); got != 4 { // 10, 11, 2, 3
		t.Errorf("NodeDegreeOf(1) = %d, want 4", got)
	}
	if got := fs.TransitDegreeOf(1); got != 4 { // transits between {10,11,2,3}
		t.Errorf("TransitDegreeOf(1) = %d, want 4", got)
	}
	if got := fs.TransitDegreeOf(10); got != 0 {
		t.Errorf("TransitDegreeOf(10) = %d, want 0", got)
	}
	if got := fs.TransitDegreeOf(999); got != 0 {
		t.Errorf("TransitDegreeOf(unobserved) = %d, want 0", got)
	}
	if got := fs.VPCountOf(asgraph.NewLink(1, 2)); got != 2 {
		t.Errorf("VPCountOf(1-2) = %d, want 2", got)
	}
	if got := fs.VPCountOf(asgraph.NewLink(1, 3)); got != 1 {
		t.Errorf("VPCountOf(1-3) = %d, want 1", got)
	}
	if got := fs.VPCountOf(asgraph.NewLink(998, 999)); got != 0 {
		t.Errorf("VPCountOf(unobserved) = %d, want 0", got)
	}
}

func TestAdjSortedAndSymmetric(t *testing.T) {
	fs := Compute(pathSet(asgraph.Path{3, 1, 2}))
	adjOf := func(a asn.ASN) []asn.ASN {
		id, ok := fs.Intern.ASID(a)
		if !ok {
			return nil
		}
		nbrs, _ := fs.Intern.Row(id)
		return fs.Intern.ASNsOf(nbrs)
	}
	if got := adjOf(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("adj(1) = %v", got)
	}
	if got := adjOf(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("adj(2) = %v", got)
	}
}

func TestASesByTransitDegreeDeterministic(t *testing.T) {
	fs := Compute(pathSet(
		asgraph.Path{10, 1, 2},
		asgraph.Path{11, 1, 2},
		asgraph.Path{10, 2, 5},
	))
	order := fs.ASesByTransitDegree()
	if len(order) == 0 || order[0] != 1 {
		t.Errorf("order = %v, want 1 first (highest transit degree)", order)
	}
	// Ties break by node degree then ASN: all stubs come after.
	again := fs.ASesByTransitDegree()
	for i := range order {
		if order[i] != again[i] {
			t.Fatal("ordering not deterministic")
		}
	}
}

func TestDistanceToSet(t *testing.T) {
	fs := Compute(pathSet(
		asgraph.Path{100, 10, 1},
		asgraph.Path{100, 10, 2},
	))
	dist := fs.DistanceToSet([]asn.ASN{1, 2})
	if dist[1] != 0 || dist[2] != 0 {
		t.Error("seed distance must be 0")
	}
	if dist[10] != 1 || dist[100] != 2 {
		t.Errorf("dist = %v", dist)
	}
	if _, ok := dist[999]; ok {
		t.Error("unknown AS has a distance")
	}
	// Seeds not present in the adjacency are skipped.
	dist = fs.DistanceToSet([]asn.ASN{999})
	if len(dist) != 0 {
		t.Errorf("unknown seed produced distances: %v", dist)
	}
}

func TestObservedStubs(t *testing.T) {
	fs := Compute(pathSet(asgraph.Path{100, 10, 1}))
	stubs := fs.ObservedStubs()
	if !stubs[100] || !stubs[1] || stubs[10] {
		t.Errorf("stubs = %v", stubs)
	}
}
