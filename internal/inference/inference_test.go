package inference_test

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/gao"
	"breval/internal/inference/problink"
	"breval/internal/inference/toposcope"
	"breval/internal/topogen"
)

// world800 is a shared small world for the integration tests.
func world800(t testing.TB, seed int64) (*topogen.World, *features.Set) {
	t.Helper()
	w, err := topogen.Generate(topogen.DefaultConfig(seed).Scaled(800))
	if err != nil {
		t.Fatal(err)
	}
	sim := bgp.NewSimulator(w.Graph)
	ps := sim.Propagate(w.ASNs, w.VPs)
	return w, features.Compute(ps)
}

// accuracy returns (correct, total) of res against ground truth,
// skipping sibling and hybrid links.
func accuracy(w *topogen.World, res *inference.Result) (correct, total int) {
	for l, rel := range res.Rels {
		truth, ok := w.Graph.RelOn(l)
		if !ok || truth.Type == asgraph.S2S || truth.Hybrid {
			continue
		}
		total++
		if rel.Type == truth.Type &&
			(rel.Type != asgraph.P2C || rel.Provider == truth.Provider) {
			correct++
		}
	}
	return correct, total
}

func TestASRankCliqueRecovery(t *testing.T) {
	w, fs := world800(t, 41)
	clique := asrank.InferClique(fs, 25)
	truth := w.CliqueSet()
	found := 0
	for _, c := range clique {
		if truth[c] {
			found++
		}
	}
	if found < len(w.Clique)*3/4 {
		t.Errorf("clique recovery: %d of %d true members found (inferred %v)",
			found, len(w.Clique), clique)
	}
	if len(clique) > len(w.Clique)+3 {
		t.Errorf("clique too large: %d inferred vs %d true", len(clique), len(w.Clique))
	}
}

func TestASRankOverallAccuracy(t *testing.T) {
	w, fs := world800(t, 42)
	res := asrank.New(asrank.Options{}).Infer(fs)
	if res.Len() != fs.NumLinks() {
		t.Fatalf("classified %d of %d links", res.Len(), fs.NumLinks())
	}
	correct, total := accuracy(w, res)
	if total == 0 {
		t.Fatal("nothing to evaluate")
	}
	if acc := float64(correct) / float64(total); acc < 0.90 {
		t.Errorf("ASRank accuracy = %.3f (%d/%d), want >= 0.90", acc, correct, total)
	}
}

func TestASRankPartialTransitBecomesP2P(t *testing.T) {
	w, fs := world800(t, 43)
	res := asrank.New(asrank.Options{}).Infer(fs)
	totalPartial, asP2P := 0, 0
	w.Graph.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
		if r.Type != asgraph.P2C || !r.PartialTransit {
			return
		}
		rel, ok := res.Rel(l)
		if !ok {
			return // invisible link
		}
		totalPartial++
		if rel.Type == asgraph.P2P {
			asP2P++
		}
	})
	if totalPartial == 0 {
		t.Skip("no partial-transit links visible in this world")
	}
	if float64(asP2P)/float64(totalPartial) < 0.6 {
		t.Errorf("only %d/%d partial-transit links inferred P2P; the §6.1 mechanism is broken",
			asP2P, totalPartial)
	}
}

func TestASRankSpecialStubPeeringBecomesP2C(t *testing.T) {
	w, fs := world800(t, 44)
	res := asrank.New(asrank.Options{}).Infer(fs)
	clique := w.CliqueSet()
	total, asP2C := 0, 0
	for _, s := range w.SpecialStubs {
		for _, p := range w.Graph.Peers(s) {
			if !clique[p] {
				continue
			}
			rel, ok := res.Rel(asgraph.NewLink(s, p))
			if !ok {
				continue
			}
			total++
			if rel.Type == asgraph.P2C && rel.Provider == p {
				asP2C++
			}
		}
	}
	if total == 0 {
		t.Skip("no special-stub links visible")
	}
	if float64(asP2C)/float64(total) < 0.7 {
		t.Errorf("only %d/%d stub-T1 peerings inferred P2C; the S-T1 pathology is missing",
			asP2C, total)
	}
}

func TestP2CNearPerfectForAllAlgorithms(t *testing.T) {
	w, fs := world800(t, 45)
	algos := []inference.Algorithm{
		asrank.New(asrank.Options{}),
		problink.New(problink.Options{}),
		toposcope.New(toposcope.Options{}),
	}
	for _, algo := range algos {
		res := algo.Infer(fs)
		// Recall on plain (non-partial) P2C links.
		total, correct := 0, 0
		w.Graph.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
			if r.Type != asgraph.P2C || r.PartialTransit || r.Hybrid {
				return
			}
			rel, ok := res.Rel(l)
			if !ok {
				return
			}
			total++
			if rel.Type == asgraph.P2C && rel.Provider == r.Provider {
				correct++
			}
		})
		if total == 0 {
			t.Fatalf("%s: no p2c links to assess", algo.Name())
		}
		if tpr := float64(correct) / float64(total); tpr < 0.9 {
			t.Errorf("%s: P2C recall %.3f (%d/%d), want >= 0.9", algo.Name(), tpr, correct, total)
		}
	}
}

func TestProbLinkConvergesAndCoversAllLinks(t *testing.T) {
	_, fs := world800(t, 46)
	res := problink.New(problink.Options{MaxIterations: 5}).Infer(fs)
	if res.Len() != fs.NumLinks() {
		t.Errorf("ProbLink classified %d of %d links", res.Len(), fs.NumLinks())
	}
	if res.CountByType(asgraph.P2C) == 0 || res.CountByType(asgraph.P2P) == 0 {
		t.Error("degenerate classification")
	}
}

func TestTopoScopeCoversAllLinks(t *testing.T) {
	w, fs := world800(t, 47)
	res := toposcope.New(toposcope.Options{Groups: 4}).Infer(fs)
	if res.Len() != fs.NumLinks() {
		t.Errorf("TopoScope classified %d of %d links", res.Len(), fs.NumLinks())
	}
	correct, total := accuracy(w, res)
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("TopoScope accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestGaoReasonableAccuracy(t *testing.T) {
	w, fs := world800(t, 48)
	res := gao.New(gao.Options{}).Infer(fs)
	if res.Len() != fs.NumLinks() {
		t.Errorf("Gao classified %d of %d links", res.Len(), fs.NumLinks())
	}
	correct, total := accuracy(w, res)
	if acc := float64(correct) / float64(total); acc < 0.65 {
		t.Errorf("Gao accuracy = %.3f, want >= 0.65", acc)
	}
}

func TestAlgorithmsDeterministic(t *testing.T) {
	_, fs := world800(t, 49)
	for _, mk := range []func() inference.Algorithm{
		func() inference.Algorithm { return asrank.New(asrank.Options{}) },
		func() inference.Algorithm { return problink.New(problink.Options{MaxIterations: 3}) },
		func() inference.Algorithm { return toposcope.New(toposcope.Options{Groups: 4}) },
		func() inference.Algorithm { return gao.New(gao.Options{}) },
	} {
		r1 := mk().Infer(fs)
		r2 := mk().Infer(fs)
		if r1.Len() != r2.Len() {
			t.Fatalf("%s: lengths differ", r1.Name)
		}
		for l, rel := range r1.Rels {
			if r2.Rels[l] != rel {
				t.Fatalf("%s: link %v differs: %v vs %v", r1.Name, l, rel, r2.Rels[l])
			}
		}
	}
}

func TestResultHelpers(t *testing.T) {
	res := inference.NewResult("x", 4)
	l1 := asgraph.NewLink(1, 2)
	l2 := asgraph.NewLink(3, 4)
	res.Set(l1, asgraph.P2CRel(1))
	res.Set(l2, asgraph.P2PRel())
	if res.Len() != 2 || res.CountByType(asgraph.P2C) != 1 || res.CountByType(asgraph.P2P) != 1 {
		t.Error("counts wrong")
	}
	links := res.Links()
	if len(links) != 2 || links[0] != l1 || links[1] != l2 {
		t.Errorf("Links = %v", links)
	}
	if _, ok := res.Rel(asgraph.NewLink(9, 10)); ok {
		t.Error("unknown link resolved")
	}
	_ = []asn.ASN(res.Clique) // type sanity
}
