package gao

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference/features"
)

func pathSet(paths ...asgraph.Path) *features.Set {
	ps := bgp.NewPathSet(len(paths), 64)
	for _, p := range paths {
		ps.Append(p)
	}
	return features.Compute(ps)
}

func TestConsistentVotesGiveP2C(t *testing.T) {
	// 1 always sits above 10; 10 above 100. Extra spokes make 1's
	// degree unambiguous so the peak rule picks it consistently.
	fs := pathSet(
		asgraph.Path{100, 10, 1},
		asgraph.Path{100, 10, 1, 2},
		asgraph.Path{2, 1, 10, 100},
		asgraph.Path{200, 1},
		asgraph.Path{201, 1},
		asgraph.Path{202, 1},
	)
	res := New(Options{}).Infer(fs)
	rel, ok := res.Rel(asgraph.NewLink(10, 100))
	if !ok || rel.Type != asgraph.P2C || rel.Provider != 10 {
		t.Errorf("10-100 = %v, %v; want p2c(10)", rel, ok)
	}
	rel, _ = res.Rel(asgraph.NewLink(1, 10))
	if rel.Type != asgraph.P2C || rel.Provider != 1 {
		t.Errorf("1-10 = %v; want p2c(1)", rel)
	}
}

func TestBalancedVotesGivePeerForComparableDegrees(t *testing.T) {
	// Routes cross 1-2 in both directions, so votes cancel; degrees
	// are comparable, so Gao calls it a peering.
	fs := pathSet(
		asgraph.Path{10, 1, 2, 20},
		asgraph.Path{20, 2, 1, 10},
	)
	res := New(Options{}).Infer(fs)
	rel, ok := res.Rel(asgraph.NewLink(1, 2))
	if !ok || rel.Type != asgraph.P2P {
		t.Errorf("1-2 = %v, %v; want p2p", rel, ok)
	}
}

func TestBalancedVotesHugeGapGivesP2C(t *testing.T) {
	// Balanced votes but a >R degree ratio: the big side provides.
	paths := []asgraph.Path{
		{10, 1, 2, 20},
		{20, 2, 1, 10},
	}
	// Inflate 1's degree far beyond 2's.
	for i := 0; i < 200; i++ {
		paths = append(paths, asgraph.Path{asn.ASN(1000 + i), 1})
	}
	fs := pathSet(paths...)
	res := New(Options{PeerDegreeRatio: 10}).Infer(fs)
	rel, ok := res.Rel(asgraph.NewLink(1, 2))
	if !ok || rel.Type != asgraph.P2C || rel.Provider != 1 {
		t.Errorf("1-2 = %v, %v; want p2c(1)", rel, ok)
	}
}

func TestOptionsDefaults(t *testing.T) {
	if o := (Options{}).withDefaults(); o.PeerDegreeRatio != 60 {
		t.Errorf("default ratio = %v", o.PeerDegreeRatio)
	}
	if o := (Options{PeerDegreeRatio: 5}).withDefaults(); o.PeerDegreeRatio != 5 {
		t.Errorf("explicit ratio overridden: %v", o.PeerDegreeRatio)
	}
}
