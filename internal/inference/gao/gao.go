// Package gao reimplements Lixin Gao's degree-based relationship
// inference ("On Inferring Autonomous System Relationships in the
// Internet", ToN 2001): in every path the highest-degree AS is taken
// as the top of the hill; links before it are customer-to-provider,
// links after it provider-to-customer. Votes are accumulated across
// paths and links with conflicting or balanced votes near the top
// become peers.
package gao

import (
	"context"

	"breval/internal/asgraph"
	"breval/internal/inference"
	"breval/internal/inference/features"
	"breval/internal/intern"
	"breval/internal/obs"
)

// Options tunes the classifier.
type Options struct {
	// PeerDegreeRatio is the maximum degree ratio between two ASes
	// for a conflicted link to be classified P2P rather than P2C
	// (Gao's R parameter; default 60, her recommended setting).
	PeerDegreeRatio float64
}

func (o Options) withDefaults() Options {
	if o.PeerDegreeRatio == 0 {
		o.PeerDegreeRatio = 60
	}
	return o
}

// Algorithm is the Gao classifier.
type Algorithm struct {
	opts Options
}

// New returns a Gao classifier.
func New(opts Options) *Algorithm { return &Algorithm{opts: opts.withDefaults()} }

// Name implements inference.Algorithm.
func (a *Algorithm) Name() string { return "Gao" }

// Infer implements inference.Algorithm.
func (a *Algorithm) Infer(fs *features.Set) *inference.Result {
	return a.InferContext(context.Background(), fs)
}

// InferContext implements inference.ContextAlgorithm: the vote
// accumulation over paths and the per-link classification become obs
// substage spans, and the balanced links resolved by the degree-ratio
// fallback become a counter.
func (a *Algorithm) InferContext(ctx context.Context, fs *features.Set) *inference.Result {
	col := obs.From(ctx)
	col.Add("infer.gao.runs", 1)

	tab, d := fs.Intern, fs.Dense
	nLinks := tab.NumLinks()
	res := inference.NewResult(a.Name(), nLinks)

	// votes[lid] counts evidence: positive favours A-as-provider,
	// negative favours B-as-provider (canonical link order). The scan
	// runs over the dense hop mirror: the per-hop direction bit gives
	// each vote's orientation without re-canonicalising links.
	_, sp := obs.StartSpan(ctx, "gao.vote")
	votes := make([]int32, nLinks)

	for i, n := 0, d.Len(); i < n; i++ {
		hops := d.Hops(i)
		if len(hops) == 0 {
			continue
		}
		// Find the top: the AS with the maximum node degree. Paths are
		// stored VP→origin, so positions before the top walk downhill
		// (VP side received the route), positions after walk uphill.
		// Node j of the path is hop j's source (node len(hops) is the
		// final destination).
		from0, _ := d.HopEnds(hops[0])
		top, topDeg := 0, fs.NodeDeg[from0]
		for j := range hops {
			_, to := d.HopEnds(hops[j])
			if fs.NodeDeg[to] > topDeg {
				top, topDeg = j+1, fs.NodeDeg[to]
			}
		}
		for j, h := range hops {
			lid, fromA := intern.DecodeHop(h)
			// Before the top the route flowed top→VP, so the hop's
			// destination is the provider; after it, the source.
			providerIsA := fromA == (j >= top)
			if providerIsA {
				votes[lid]++
			} else {
				votes[lid]--
			}
		}
	}
	sp.End()

	_, sp = obs.StartSpan(ctx, "gao.classify")
	var balanced int64
	for lid := int32(0); lid < int32(nLinks); lid++ {
		l := tab.Link(lid)
		switch v := votes[lid]; {
		case v > 0:
			res.Set(l, asgraph.P2CRel(l.A))
		case v < 0:
			res.Set(l, asgraph.P2CRel(l.B))
		default:
			// Balanced evidence: peer if the degrees are comparable,
			// otherwise the bigger AS is the provider.
			balanced++
			ia, ib := tab.LinkEnds(lid)
			da, db := float64(fs.NodeDeg[ia]), float64(fs.NodeDeg[ib])
			if da == 0 {
				da = 1
			}
			if db == 0 {
				db = 1
			}
			ratio := da / db
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio <= a.opts.PeerDegreeRatio {
				res.Set(l, asgraph.P2PRel())
			} else if da > db {
				res.Set(l, asgraph.P2CRel(l.A))
			} else {
				res.Set(l, asgraph.P2CRel(l.B))
			}
		}
	}
	sp.End()
	col.Add("infer.gao.balanced_links", balanced)
	return res
}

var _ inference.ContextAlgorithm = (*Algorithm)(nil)
