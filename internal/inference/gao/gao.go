// Package gao reimplements Lixin Gao's degree-based relationship
// inference ("On Inferring Autonomous System Relationships in the
// Internet", ToN 2001): in every path the highest-degree AS is taken
// as the top of the hill; links before it are customer-to-provider,
// links after it provider-to-customer. Votes are accumulated across
// paths and links with conflicting or balanced votes near the top
// become peers.
package gao

import (
	"context"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference"
	"breval/internal/inference/features"
	"breval/internal/obs"
)

// Options tunes the classifier.
type Options struct {
	// PeerDegreeRatio is the maximum degree ratio between two ASes
	// for a conflicted link to be classified P2P rather than P2C
	// (Gao's R parameter; default 60, her recommended setting).
	PeerDegreeRatio float64
}

func (o Options) withDefaults() Options {
	if o.PeerDegreeRatio == 0 {
		o.PeerDegreeRatio = 60
	}
	return o
}

// Algorithm is the Gao classifier.
type Algorithm struct {
	opts Options
}

// New returns a Gao classifier.
func New(opts Options) *Algorithm { return &Algorithm{opts: opts.withDefaults()} }

// Name implements inference.Algorithm.
func (a *Algorithm) Name() string { return "Gao" }

// Infer implements inference.Algorithm.
func (a *Algorithm) Infer(fs *features.Set) *inference.Result {
	return a.InferContext(context.Background(), fs)
}

// InferContext implements inference.ContextAlgorithm: the vote
// accumulation over paths and the per-link classification become obs
// substage spans, and the balanced links resolved by the degree-ratio
// fallback become a counter.
func (a *Algorithm) InferContext(ctx context.Context, fs *features.Set) *inference.Result {
	col := obs.From(ctx)
	col.Add("infer.gao.runs", 1)

	res := inference.NewResult(a.Name(), len(fs.Links))

	// votes[link] counts evidence: positive favours A-as-provider,
	// negative favours B-as-provider (canonical link order).
	_, sp := obs.StartSpan(ctx, "gao.vote")
	votes := make(map[asgraph.Link]int, len(fs.Links))
	degree := func(x asn.ASN) int { return fs.NodeDegree[x] }

	fs.Paths.ForEach(func(p asgraph.Path) {
		if len(p) < 2 {
			return
		}
		// Find the top: the AS with the maximum node degree. Paths are
		// stored VP→origin, so positions before the top walk downhill
		// (VP side received the route), positions after walk uphill.
		top := 0
		for i := 1; i < len(p); i++ {
			if degree(p[i]) > degree(p[top]) {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			var provider, customer asn.ASN
			if i < top {
				// Downhill seen from the VP: p[i] learned the route
				// from p[i+1]... no: the route travelled origin→VP, so
				// between VP and top the flow is top→VP: p[i+1] is the
				// provider of p[i].
				provider, customer = p[i+1], p[i]
			} else {
				provider, customer = p[i], p[i+1]
			}
			l := asgraph.NewLink(provider, customer)
			if l.A == provider {
				votes[l]++
			} else {
				votes[l]--
			}
		}
	})
	sp.End()

	_, sp = obs.StartSpan(ctx, "gao.classify")
	var balanced int64
	for l, v := range votes {
		switch {
		case v > 0:
			res.Set(l, asgraph.P2CRel(l.A))
		case v < 0:
			res.Set(l, asgraph.P2CRel(l.B))
		default:
			// Balanced evidence: peer if the degrees are comparable,
			// otherwise the bigger AS is the provider.
			balanced++
			da, db := float64(degree(l.A)), float64(degree(l.B))
			if da == 0 {
				da = 1
			}
			if db == 0 {
				db = 1
			}
			ratio := da / db
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio <= a.opts.PeerDegreeRatio {
				res.Set(l, asgraph.P2PRel())
			} else if da > db {
				res.Set(l, asgraph.P2CRel(l.A))
			} else {
				res.Set(l, asgraph.P2CRel(l.B))
			}
		}
	}

	// Links observed but never voted on (single-AS paths cannot
	// produce them, so this is defensive only).
	for l := range fs.Links {
		if _, ok := res.Rel(l); !ok {
			res.Set(l, asgraph.P2PRel())
		}
	}
	sp.End()
	col.Add("infer.gao.balanced_links", balanced)
	return res
}

var _ inference.ContextAlgorithm = (*Algorithm)(nil)
