package toposcope

import (
	"testing"

	"breval/internal/asgraph"
)

func TestBestVoteDeterministicTies(t *testing.T) {
	for _, c := range []struct {
		row  voteRow
		want int
	}{
		{voteRow{p2cA: 3, p2cB: 1, p2p: 1}, 0},
		{voteRow{p2cA: 1, p2cB: 3, p2p: 1}, 1},
		{voteRow{p2cA: 1, p2cB: 1, p2p: 3}, 2},
		{voteRow{p2cA: 2, p2cB: 2, p2p: 1}, 0}, // tie prefers p2cA
		{voteRow{p2cA: 0, p2cB: 0, p2p: 0}, 0},
	} {
		got, _ := bestVote(&c.row)
		if got != c.want {
			t.Errorf("bestVote(%+v) = %d, want %d", c.row, got, c.want)
		}
	}
}

func TestVoteRel(t *testing.T) {
	l := asgraph.NewLink(4, 9)
	if r := voteRel(l, 0); r.Type != asgraph.P2C || r.Provider != 4 {
		t.Errorf("vote 0 = %v", r)
	}
	if r := voteRel(l, 1); r.Type != asgraph.P2C || r.Provider != 9 {
		t.Errorf("vote 1 = %v", r)
	}
	if r := voteRel(l, 2); r.Type != asgraph.P2P {
		t.Errorf("vote 2 = %v", r)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Groups != 8 || o.MinVotes != 4 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{Groups: 3, MinVotes: 1}.withDefaults()
	if o2.Groups != 3 || o2.MinVotes != 1 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}
