// Package toposcope reimplements the central mechanism of TopoScope
// (Jin et al., IMC 2020): recovering relationships from fragmentary
// observations by splitting the vantage points into groups, running a
// base inference per group, and reconciling the per-group votes with a
// feature-driven (ProbLink-style Bayesian) referee for links the
// groups disagree on or that too few groups observed.
//
// The published system adds gradient-boosted trees and hidden-link
// discovery on top; this implementation keeps the ensemble-over-VPs
// architecture, which is what determines its per-class behaviour in
// the bias study (Table 3 of Prehn & Feldmann, IMC'21).
package toposcope

import (
	"context"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/problink"
	"breval/internal/obs"
)

// Options tunes the ensemble.
type Options struct {
	// Groups is the number of vantage-point groups (default 8).
	Groups int
	// MinVotes is the minimum number of groups that must have
	// observed a link for the vote to stand on its own; below it the
	// referee decides (default 4).
	MinVotes int
}

func (o Options) withDefaults() Options {
	if o.Groups == 0 {
		o.Groups = 8
	}
	if o.MinVotes == 0 {
		o.MinVotes = 4
	}
	return o
}

// Algorithm is the TopoScope classifier.
type Algorithm struct {
	opts Options
}

// New returns a TopoScope classifier.
func New(opts Options) *Algorithm { return &Algorithm{opts: opts.withDefaults()} }

// Name implements inference.Algorithm.
func (a *Algorithm) Name() string { return "TopoScope" }

// NeedsPaths implements inference.PathsConsumer: the VP-group
// partition below walks the cleaned ASN-typed arena, so the pipeline
// must not release fs.Paths ahead of a TopoScope run.
func (a *Algorithm) NeedsPaths() bool { return true }

// Infer implements inference.Algorithm.
func (a *Algorithm) Infer(fs *features.Set) *inference.Result {
	return a.InferContext(context.Background(), fs)
}

// InferContext implements inference.ContextAlgorithm: the referee
// inference, the per-group base inferences and the vote reconciliation
// become obs substage spans (the nested ProbLink/ASRank runs add their
// own spans below them), and the number of links each reconciliation
// path decided becomes a counter.
func (a *Algorithm) InferContext(ctx context.Context, fs *features.Set) *inference.Result {
	col := obs.From(ctx)
	col.Add("infer.toposcope.runs", 1)

	// Referee: ProbLink over the full view.
	rctx, sp := obs.StartSpan(ctx, "toposcope.referee")
	referee := problink.New(problink.Options{}).InferContext(rctx, fs)
	sp.End()

	// Partition paths by vantage-point group.
	vps := make(map[asn.ASN]int)
	fs.Paths.ForEach(func(p asgraph.Path) {
		if len(p) > 0 {
			vps[p.VantagePoint()] = 0
		}
	})
	vpList := make([]asn.ASN, 0, len(vps))
	for v := range vps {
		vpList = append(vpList, v)
	}
	sort.Slice(vpList, func(i, j int) bool { return vpList[i] < vpList[j] })
	groups := a.opts.Groups
	if groups > len(vpList) {
		groups = len(vpList)
	}
	if groups < 1 {
		groups = 1
	}
	for i, v := range vpList {
		vps[v] = i % groups
	}

	grouped := make([]*bgp.PathSet, groups)
	for g := range grouped {
		grouped[g] = bgp.NewPathSet(fs.Paths.Len()/groups+1, 64)
	}
	fs.Paths.ForEach(func(p asgraph.Path) {
		grouped[vps[p.VantagePoint()]].Append(p)
	})

	col.SetGauge("infer.toposcope.groups", float64(groups))

	// Per-group base inference and voting. Votes are orientation
	// aware: P2C(A), P2C(B) or P2P, accumulated in a flat row array
	// indexed by the full view's dense link IDs — the per-link row
	// allocations of the map-of-pointers version are gone.
	tab := fs.Intern
	gctx, sp := obs.StartSpan(ctx, "toposcope.groups")
	votes := make([]voteRow, tab.NumLinks())
	for g := 0; g < groups; g++ {
		gfs := features.Compute(grouped[g])
		gres := asrank.New(asrank.Options{}).InferContext(gctx, gfs)
		gtab := gfs.Intern
		// Iterate the group's own dense universe; every group link is
		// interned in the full view (group paths are a subset).
		for glid := int32(0); glid < int32(gtab.NumLinks()); glid++ {
			l := gtab.Link(glid)
			rel, ok := gres.Rel(l)
			if !ok {
				continue
			}
			lid, _ := tab.LinkID(l)
			row := &votes[lid]
			switch {
			case rel.Type == asgraph.P2C && rel.Provider == l.A:
				row.p2cA++
			case rel.Type == asgraph.P2C:
				row.p2cB++
			default:
				row.p2p++
			}
		}
	}
	sp.End()

	_, sp = obs.StartSpan(ctx, "toposcope.vote")
	var byMajority, byReferee int64
	res := inference.NewResult(a.Name(), tab.NumLinks())
	res.Clique = referee.Clique
	for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
		l := tab.Link(lid)
		row := &votes[lid]
		total := row.p2cA + row.p2cB + row.p2p
		relFromReferee, okRef := referee.Rel(l)
		if total == 0 {
			// Never classified by any group (observed only in paths
			// whose group lost it after cleaning); referee decides.
			if okRef {
				res.Set(l, relFromReferee)
				byReferee++
			} else {
				res.Set(l, asgraph.P2PRel())
			}
			continue
		}
		best, n := bestVote(row)
		// A two-thirds majority from enough groups stands; otherwise
		// the referee decides.
		if total >= a.opts.MinVotes && n*3 >= total*2 {
			res.Set(l, voteRel(l, best))
			byMajority++
		} else if okRef {
			res.Set(l, relFromReferee)
			byReferee++
		} else {
			res.Set(l, voteRel(l, best))
		}
	}
	sp.End()
	col.Add("infer.toposcope.links_by_majority", byMajority)
	col.Add("infer.toposcope.links_by_referee", byReferee)
	return res
}

// voteRow accumulates per-group votes for one link.
type voteRow struct{ p2cA, p2cB, p2p int }

func bestVote(r *voteRow) (int, int) {
	// Deterministic preference on ties: p2cA, p2cB, then p2p.
	best, n := 0, r.p2cA
	if r.p2cB > n {
		best, n = 1, r.p2cB
	}
	if r.p2p > n {
		best, n = 2, r.p2p
	}
	return best, n
}

func voteRel(l asgraph.Link, vote int) asgraph.Rel {
	switch vote {
	case 0:
		return asgraph.P2CRel(l.A)
	case 1:
		return asgraph.P2CRel(l.B)
	}
	return asgraph.P2PRel()
}

var _ inference.ContextAlgorithm = (*Algorithm)(nil)
