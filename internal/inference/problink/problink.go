// Package problink reimplements the core idea of ProbLink (Jin et
// al., NSDI 2019): starting from a hard classification (ASRank), every
// link is repeatedly reassigned to the relationship class with the
// highest naive-Bayes posterior under a set of link features, until
// the labelling converges. Feature likelihoods are re-estimated from
// the current labelling each round, so information propagates between
// nearby links — the same mechanism that makes ProbLink strong on
// average but lets majority classes bleed into structurally similar
// minority classes (the T1-TR degradation of Prehn & Feldmann's
// Table 2).
//
// The feature set is a simplified but representative subset of
// ProbLink's: distance to the clique, vantage-point visibility,
// transit-degree ratio, stubness, and the label mix of each
// endpoint's other links (standing in for the triplet feature).
package problink

import (
	"context"
	"math"

	"breval/internal/asgraph"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/obs"
)

// class is the three-way orientation-aware label.
type class uint8

const (
	clsP2P  class = iota // peers
	clsP2CA              // link.A is the provider
	clsP2CB              // link.B is the provider
	numClasses
)

// Feature cardinalities.
const (
	nDistBuckets  = 5
	nVPBuckets    = 6
	nRatioBuckets = 9 // log2 ratio clamped to [-4, +4]
	nStubCombos   = 4
	nMixBuckets   = 5
	nEvidence     = 2 // base evidence firm / fallback
	numFeatures   = 7
)

// Options tunes the refinement.
type Options struct {
	// MaxIterations bounds the refinement rounds (default 15).
	MaxIterations int
	// ConvergedFrac stops iterating when fewer than this fraction of
	// links changed in a round (default 0.001).
	ConvergedFrac float64
	// Base selects the seeding algorithm; nil uses ASRank defaults.
	Base inference.Algorithm
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 15
	}
	if o.ConvergedFrac == 0 {
		o.ConvergedFrac = 0.001
	}
	if o.Base == nil {
		o.Base = asrank.New(asrank.Options{})
	}
	return o
}

// Algorithm is the ProbLink classifier.
type Algorithm struct {
	opts Options
}

// New returns a ProbLink classifier.
func New(opts Options) *Algorithm { return &Algorithm{opts: opts.withDefaults()} }

// Name implements inference.Algorithm.
func (a *Algorithm) Name() string { return "ProbLink" }

// Posterior is the per-link class distribution after the final
// iteration — the UNARI-style (Feng et al., CoNEXT'19) uncertainty
// output: P2P plus the two P2C orientations sum to 1.
type Posterior struct {
	P2P, P2CA, P2CB float64
}

// Max returns the winning probability — the classifier's confidence.
func (p Posterior) Max() float64 {
	m := p.P2P
	if p.P2CA > m {
		m = p.P2CA
	}
	if p.P2CB > m {
		m = p.P2CB
	}
	return m
}

// Infer implements inference.Algorithm.
func (a *Algorithm) Infer(fs *features.Set) *inference.Result {
	res, _ := a.InferWithUncertainty(fs)
	return res
}

// InferContext implements inference.ContextAlgorithm: the seeding
// base inference, static feature extraction and the refinement loop
// become obs substage spans, and the executed refinement rounds become
// the infer.problink.iterations counter.
func (a *Algorithm) InferContext(ctx context.Context, fs *features.Set) *inference.Result {
	res, _ := a.inferWithUncertainty(ctx, fs)
	return res
}

// InferWithUncertainty runs the refinement and additionally returns
// the final naive-Bayes posterior per link.
func (a *Algorithm) InferWithUncertainty(fs *features.Set) (*inference.Result, map[asgraph.Link]Posterior) {
	return a.inferWithUncertainty(context.Background(), fs)
}

func (a *Algorithm) inferWithUncertainty(ctx context.Context, fs *features.Set) (*inference.Result, map[asgraph.Link]Posterior) {
	col := obs.From(ctx)
	col.Add("infer.problink.runs", 1)

	bctx, sp := obs.StartSpan(ctx, "problink.base")
	base := inference.InferContext(bctx, a.opts.Base, fs)
	sp.End()
	links := base.Links()
	tab := fs.Intern

	inClique := make([]bool, tab.NumAS())
	for _, c := range base.Clique {
		if id, ok := tab.ASID(c); ok {
			inClique[id] = true
		}
	}

	// Static features per link. Dense link/endpoint IDs are resolved
	// once here; every per-round quantity below is then pure array
	// indexing. links is sorted canonically, so when the base labels the
	// full observed universe (ASRank does) lids[i] == i.
	_, sp = obs.StartSpan(ctx, "problink.features")
	dist := fs.DistanceIDs(base.Clique)
	lids := make([]int32, len(links))
	endA := make([]int32, len(links))
	endB := make([]int32, len(links))
	static := make([][3]uint8, len(links)) // dist, vp, ratio buckets
	stub := make([]uint8, len(links))
	evid := make([]uint8, len(links)) // triplet-evidence stand-in
	fixed := make([]bool, len(links)) // clique-clique links stay P2P
	labels := make([]class, len(links))
	for i, l := range links {
		lid, _ := tab.LinkID(l)
		lids[i] = lid
		endA[i], endB[i] = tab.LinkEnds(lid)
		ta, tb := int(fs.TransitDeg[endA[i]]), int(fs.TransitDeg[endB[i]])
		static[i][0] = distBucket(dist, endA[i], endB[i])
		static[i][1] = vpBucket(int(fs.VPCnt[lid]))
		static[i][2] = ratioBucket(ta, tb)
		stub[i] = stubCombo(ta, tb)
		if base.Firm != nil && base.Firm[l] {
			evid[i] = 1
		}
		fixed[i] = inClique[endA[i]] && inClique[endB[i]]
		rel, _ := base.Rel(l)
		labels[i] = toClass(l, rel)
	}
	sp.End()

	// Iterative naive-Bayes refinement. Likelihoods are estimated
	// against the *seed* labelling every round (the seed plays the
	// role of ProbLink's training distribution); only the dynamic
	// label-mix features change between rounds. Estimating against
	// the current labelling instead drifts: every flip towards the
	// majority class inflates that class's likelihoods further.
	seed := make([]class, len(labels))
	copy(seed, labels)
	scores := make([][numClasses]float64, len(links))
	_, sp = obs.StartSpan(ctx, "problink.iterate")
	for iter := 0; iter < a.opts.MaxIterations; iter++ {
		col.Add("infer.problink.iterations", 1)
		mixA, mixB := endpointMixes(endA, endB, labels, tab.NumAS())

		var prior [numClasses]float64
		var cond [numFeatures][][numClasses]float64
		cond[0] = make([][numClasses]float64, nDistBuckets)
		cond[1] = make([][numClasses]float64, nVPBuckets)
		cond[2] = make([][numClasses]float64, nRatioBuckets)
		cond[3] = make([][numClasses]float64, nStubCombos)
		cond[4] = make([][numClasses]float64, nMixBuckets)
		cond[5] = make([][numClasses]float64, nMixBuckets)
		cond[6] = make([][numClasses]float64, nEvidence)

		for i := range links {
			c := seed[i]
			prior[c]++
			cond[0][static[i][0]][c]++
			cond[1][static[i][1]][c]++
			cond[2][static[i][2]][c]++
			cond[3][stub[i]][c]++
			cond[4][mixA[i]][c]++
			cond[5][mixB[i]][c]++
			cond[6][evid[i]][c]++
		}

		logPrior, logCond := logNormalize(prior, cond)

		changed := 0
		for i := range links {
			if fixed[i] {
				// Clique links stay P2P with full confidence.
				scores[i] = [numClasses]float64{clsP2P: 0, clsP2CA: -40, clsP2CB: -40}
				continue
			}
			var row [numClasses]float64
			bestC, bestScore := labels[i], math.Inf(-1)
			for c := class(0); c < numClasses; c++ {
				score := logPrior[c] +
					logCond[0][static[i][0]][c] +
					logCond[1][static[i][1]][c] +
					logCond[2][static[i][2]][c] +
					logCond[3][stub[i]][c] +
					logCond[4][mixA[i]][c] +
					logCond[5][mixB[i]][c] +
					logCond[6][evid[i]][c]
				row[c] = score
				if score > bestScore {
					bestScore, bestC = score, c
				}
			}
			scores[i] = row
			if bestC != labels[i] {
				labels[i] = bestC
				changed++
			}
		}
		if float64(changed) < a.opts.ConvergedFrac*float64(len(links)) {
			break
		}
	}
	sp.End()

	res := inference.NewResult(a.Name(), len(links))
	res.Clique = base.Clique
	post := make(map[asgraph.Link]Posterior, len(links))
	for i, l := range links {
		res.Set(l, fromClass(l, labels[i]))
		post[l] = softmax(scores[i])
	}
	return res, post
}

// softmax converts log scores into a normalised posterior.
func softmax(row [numClasses]float64) Posterior {
	m := math.Max(row[0], math.Max(row[1], row[2]))
	var e [numClasses]float64
	sum := 0.0
	for c := range row {
		e[c] = math.Exp(row[c] - m)
		sum += e[c]
	}
	return Posterior{
		P2P:  e[clsP2P] / sum,
		P2CA: e[clsP2CA] / sum,
		P2CB: e[clsP2CB] / sum,
	}
}

// endpointMixes computes, per link, the bucketized share of each
// endpoint's *other* links on which that endpoint acts as provider —
// the label-mix stand-in for ProbLink's triplet feature. Counters are
// flat per-AS arrays indexed by dense ID; this runs every refinement
// round.
func endpointMixes(endA, endB []int32, labels []class, nAS int) (mixA, mixB []uint8) {
	providerCount := make([]int32, nAS)
	totalCount := make([]int32, nAS)
	for i := range labels {
		totalCount[endA[i]]++
		totalCount[endB[i]]++
		switch labels[i] {
		case clsP2CA:
			providerCount[endA[i]]++
		case clsP2CB:
			providerCount[endB[i]]++
		}
	}
	mixA = make([]uint8, len(labels))
	mixB = make([]uint8, len(labels))
	bucket := func(a int32) uint8 {
		t := totalCount[a]
		if t == 0 {
			return 0
		}
		share := float64(providerCount[a]) / float64(t)
		b := uint8(share * nMixBuckets)
		if b >= nMixBuckets {
			b = nMixBuckets - 1
		}
		return b
	}
	for i := range labels {
		mixA[i] = bucket(endA[i])
		mixB[i] = bucket(endB[i])
	}
	return mixA, mixB
}

func logNormalize(prior [numClasses]float64, cond [numFeatures][][numClasses]float64) ([numClasses]float64, [numFeatures][][numClasses]float64) {
	total := 0.0
	for _, v := range prior {
		total += v
	}
	var logPrior [numClasses]float64
	for c := range prior {
		logPrior[c] = math.Log((prior[c] + 1) / (total + float64(numClasses)))
	}
	for f := range cond {
		for v := range cond[f] {
			for c := 0; c < int(numClasses); c++ {
				cond[f][v][c] = math.Log((cond[f][v][c] + 1) / (prior[c] + float64(len(cond[f]))))
			}
		}
	}
	return logPrior, cond
}

func distBucket(dist []int32, a, b int32) uint8 {
	d := dist[a]
	if db := dist[b]; db >= 0 && (d < 0 || db < d) {
		d = db
	}
	if d < 0 || d >= nDistBuckets {
		return nDistBuckets - 1
	}
	return uint8(d)
}

func vpBucket(n int) uint8 {
	b := uint8(0)
	for n > 0 && b < nVPBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

func ratioBucket(ta, tb int) uint8 {
	r := math.Log2(float64(ta+1) / float64(tb+1))
	if r > 4 {
		r = 4
	}
	if r < -4 {
		r = -4
	}
	return uint8(int(math.Round(r)) + 4)
}

func stubCombo(ta, tb int) uint8 {
	c := uint8(0)
	if ta == 0 {
		c |= 1
	}
	if tb == 0 {
		c |= 2
	}
	return c
}

func toClass(l asgraph.Link, r asgraph.Rel) class {
	if r.Type == asgraph.P2C {
		if r.Provider == l.A {
			return clsP2CA
		}
		return clsP2CB
	}
	return clsP2P
}

func fromClass(l asgraph.Link, c class) asgraph.Rel {
	switch c {
	case clsP2CA:
		return asgraph.P2CRel(l.A)
	case clsP2CB:
		return asgraph.P2CRel(l.B)
	}
	return asgraph.P2PRel()
}

var _ inference.ContextAlgorithm = (*Algorithm)(nil)
