package problink

import (
	"math"
	"testing"
	"testing/quick"

	"breval/internal/asgraph"
)

func TestBuckets(t *testing.T) {
	if b := vpBucket(0); b != 0 {
		t.Errorf("vpBucket(0) = %d", b)
	}
	if b := vpBucket(1); b != 1 {
		t.Errorf("vpBucket(1) = %d", b)
	}
	if b := vpBucket(1 << 20); b != nVPBuckets-1 {
		t.Errorf("vpBucket(big) = %d", b)
	}
	if b := ratioBucket(100, 100); b != 4 {
		t.Errorf("equal ratio bucket = %d, want middle (4)", b)
	}
	if b := ratioBucket(1600, 1); b != 8 {
		t.Errorf("huge ratio bucket = %d, want 8", b)
	}
	if b := ratioBucket(1, 1600); b != 0 {
		t.Errorf("tiny ratio bucket = %d, want 0", b)
	}
	if c := stubCombo(0, 0); c != 3 {
		t.Errorf("stubCombo(0,0) = %d", c)
	}
	if c := stubCombo(5, 0); c != 2 {
		t.Errorf("stubCombo(5,0) = %d", c)
	}
	if c := stubCombo(5, 5); c != 0 {
		t.Errorf("stubCombo(5,5) = %d", c)
	}
}

func TestClassRoundTrip(t *testing.T) {
	l := asgraph.NewLink(3, 9)
	for _, rel := range []asgraph.Rel{
		asgraph.P2PRel(), asgraph.P2CRel(3), asgraph.P2CRel(9),
	} {
		got := fromClass(l, toClass(l, rel))
		if got.Type != rel.Type || got.Provider != rel.Provider {
			t.Errorf("round trip %v -> %v", rel, got)
		}
	}
}

// Property: softmax output is a probability distribution and
// preserves the argmax.
func TestSoftmaxProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 50)
		}
		row := [numClasses]float64{clamp(a), clamp(b), clamp(c)}
		p := softmax(row)
		sum := p.P2P + p.P2CA + p.P2CB
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, v := range []float64{p.P2P, p.P2CA, p.P2CB} {
			if v < 0 || v > 1 {
				return false
			}
		}
		// argmax preserved
		maxIdx := 0
		for i := 1; i < int(numClasses); i++ {
			if row[i] > row[maxIdx] {
				maxIdx = i
			}
		}
		probs := []float64{p.P2P, p.P2CA, p.P2CB}
		return p.Max() >= probs[maxIdx]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPosteriorMax(t *testing.T) {
	p := Posterior{P2P: 0.2, P2CA: 0.7, P2CB: 0.1}
	if p.Max() != 0.7 {
		t.Errorf("Max = %v", p.Max())
	}
}
