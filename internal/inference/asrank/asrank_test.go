package asrank

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference/features"
)

func pathSet(paths ...asgraph.Path) *features.Set {
	ps := bgp.NewPathSet(len(paths), 64)
	for _, p := range paths {
		ps.Append(p)
	}
	return features.Compute(ps)
}

// cliquePaths describe a world with clique {1,2,3} (each transiting
// for the others' customers) and customers 10, 11, 12.
func cliquePaths() *features.Set {
	return pathSet(
		asgraph.Path{10, 1, 2, 11},
		asgraph.Path{10, 1, 3, 12},
		asgraph.Path{11, 2, 1, 10},
		asgraph.Path{11, 2, 3, 12},
		asgraph.Path{12, 3, 1, 10},
		asgraph.Path{12, 3, 2, 11},
	)
}

func TestInferCliqueExact(t *testing.T) {
	fs := cliquePaths()
	clique := InferClique(fs, 10)
	if len(clique) != 3 || clique[0] != 1 || clique[1] != 2 || clique[2] != 3 {
		t.Errorf("clique = %v, want [1 2 3]", clique)
	}
}

func TestInferCliqueRejectsCustomerWithEvidence(t *testing.T) {
	// 20 is linked to all clique members, but a triplet 2|1|20 proves
	// 1 exported 20's routes to a peer — 20 is a customer.
	fs := pathSet(
		asgraph.Path{10, 1, 2, 11},
		asgraph.Path{11, 2, 1, 10},
		asgraph.Path{11, 2, 3, 12},
		asgraph.Path{12, 3, 1, 10},
		asgraph.Path{12, 3, 2, 11},
		asgraph.Path{10, 1, 3, 12},
		// 20's uplinks to 1, 2 and 3 (transit customer of all).
		asgraph.Path{2, 1, 20, 99},
		asgraph.Path{3, 2, 20, 99},
		asgraph.Path{1, 3, 20, 99},
		// Make 20's transit degree large.
		asgraph.Path{1, 20, 98},
		asgraph.Path{2, 20, 97},
		asgraph.Path{3, 20, 96},
	)
	clique := InferClique(fs, 10)
	for _, c := range clique {
		if c == 20 {
			t.Errorf("customer 20 joined the clique: %v", clique)
		}
	}
}

func TestInferCliqueTripletRule(t *testing.T) {
	fs := cliquePaths()
	res := New(Options{}).Infer(fs)
	// The clique mesh is P2P.
	for _, pair := range [][2]asn.ASN{{1, 2}, {1, 3}, {2, 3}} {
		rel, ok := res.Rel(asgraph.NewLink(pair[0], pair[1]))
		if !ok || rel.Type != asgraph.P2P {
			t.Errorf("clique pair %v = %v, %v", pair, rel, ok)
		}
	}
	// Each customer link is P2C with the clique member as provider
	// (clique triplets like 2|1|10 exist).
	for _, c := range []struct{ t1, cust asn.ASN }{{1, 10}, {2, 11}, {3, 12}} {
		rel, ok := res.Rel(asgraph.NewLink(c.t1, c.cust))
		if !ok || rel.Type != asgraph.P2C || rel.Provider != c.t1 {
			t.Errorf("link %d-%d = %v, %v; want p2c(%d)", c.t1, c.cust, rel, ok, c.t1)
		}
	}
}

func TestStubToCliqueDefault(t *testing.T) {
	// Stub 50 appears only below clique member 1 (no triplet through
	// another member) — step 4 must still classify it P2C.
	fs := pathSet(
		asgraph.Path{10, 1, 2, 11},
		asgraph.Path{11, 2, 1, 10},
		asgraph.Path{11, 2, 3, 12},
		asgraph.Path{12, 3, 2, 11},
		asgraph.Path{10, 1, 3, 12},
		asgraph.Path{12, 3, 1, 10},
		asgraph.Path{1, 50}, // 50 visible only via its provider session
	)
	res := New(Options{}).Infer(fs)
	rel, ok := res.Rel(asgraph.NewLink(1, 50))
	if !ok || rel.Type != asgraph.P2C || rel.Provider != 1 {
		t.Errorf("stub default: 1-50 = %v, %v", rel, ok)
	}
}

func TestPeerFallback(t *testing.T) {
	// 10 and 11 exchange customer routes below the clique: the link
	// 10-11 is only ever crossed at the top of a path, so it falls
	// through to P2P.
	fs := pathSet(
		asgraph.Path{10, 1, 2, 11},
		asgraph.Path{11, 2, 1, 10},
		asgraph.Path{100, 10, 11, 110},
		asgraph.Path{110, 11, 10, 100},
		asgraph.Path{11, 2, 3, 12},
		asgraph.Path{12, 3, 2, 11},
		asgraph.Path{10, 1, 3, 12},
		asgraph.Path{12, 3, 1, 10},
	)
	res := New(Options{}).Infer(fs)
	rel, ok := res.Rel(asgraph.NewLink(10, 11))
	if !ok || rel.Type != asgraph.P2P {
		t.Errorf("10-11 = %v, %v; want p2p", rel, ok)
	}
	// And the firm map marks it as a fallback, not evidence.
	if res.Firm[asgraph.NewLink(10, 11)] {
		t.Error("peer fallback marked as firm evidence")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.CliqueCandidates == 0 || o.MaxIterations == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	o2 := Options{CliqueCandidates: 7, MaxIterations: 2}.withDefaults()
	if o2.CliqueCandidates != 7 || o2.MaxIterations != 2 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}
