package asrank

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/inference/features"
)

// randomWorld builds a deterministic pseudo-random path arena: nPaths
// walks of 2–6 distinct ASes over a nASes universe. It is not
// valley-free — the parity claim is about scan scheduling, and hostile
// topologies exercise more of the triplet machinery than tidy ones.
func randomWorld(seed int64, nASes, nPaths int) *features.Set {
	rng := rand.New(rand.NewSource(seed))
	ps := bgp.NewPathSet(nPaths, nPaths*4)
	hops := make(asgraph.Path, 0, 6)
	for i := 0; i < nPaths; i++ {
		n := 2 + rng.Intn(5)
		perm := rng.Perm(nASes)
		hops = hops[:0]
		for _, a := range perm[:n] {
			hops = append(hops, asn.ASN(1000+a))
		}
		ps.Append(hops)
	}
	return features.Compute(ps)
}

// resultDigest canonicalizes a result: dense-link-ordered labels with
// the firm marks, then the clique. Byte-equal digests mean identical
// inferences.
func resultDigest(fs *features.Set, res *inference.Result) uint64 {
	h := fnv.New64a()
	tab := fs.Intern
	for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
		l := tab.Link(lid)
		rel, ok := res.Rel(l)
		fmt.Fprintf(h, "%d %v %v %v\n", lid, rel, ok, res.Firm[l])
	}
	fmt.Fprintf(h, "clique=%v\n", res.Clique)
	return h.Sum64()
}

// TestStreamedScanParity is the streamed triplet inference's core
// claim: for any scan worker count and any block size — including
// one-path blocks and a single block holding the whole arena — the
// inference is identical to the default grain, across several worlds.
func TestStreamedScanParity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		fs := randomWorld(seed, 300, 3000)
		want := resultDigest(fs, New(Options{}).Infer(fs))
		for _, workers := range []int{1, 2, 4} {
			for _, block := range []int{1, 7, 64, 1 << 20} {
				res := New(Options{ScanWorkers: workers, ScanBlockPaths: block}).Infer(fs)
				if got := resultDigest(fs, res); got != want {
					t.Errorf("seed=%d workers=%d block=%d: digest %016x, want %016x",
						seed, workers, block, got, want)
				}
			}
		}
	}
}

// TestStreamedScanParityWithoutArena repeats the sweep after the
// cleaned ASN-typed arena is dropped, the way the pipeline runs
// dense-only selections: the scans must neither touch fs.Paths nor
// change a single label because it is gone.
func TestStreamedScanParityWithoutArena(t *testing.T) {
	fs := randomWorld(7, 200, 1500)
	want := resultDigest(fs, New(Options{}).Infer(fs))
	fs.ReleasePaths()
	if fs.Paths != nil {
		t.Fatal("ReleasePaths kept the arena")
	}
	for _, workers := range []int{1, 4} {
		for _, block := range []int{1, 1 << 20} {
			res := New(Options{ScanWorkers: workers, ScanBlockPaths: block}).Infer(fs)
			if got := resultDigest(fs, res); got != want {
				t.Errorf("released arena: workers=%d block=%d: digest %016x, want %016x",
					workers, block, got, want)
			}
		}
	}
}
