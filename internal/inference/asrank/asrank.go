// Package asrank reimplements the core of CAIDA's ASRank relationship
// inference (Luckie et al., "AS Relationships, Customer Cones, and
// Validation", IMC 2013): clique inference from transit degrees,
// top-down provider-to-customer inference driven by path triplets, a
// stub-to-clique default, and peering as the fallback class.
//
// The implementation is a faithful-in-spirit subset of the published
// 11-step heuristic pipeline. It preserves the properties the bias
// study depends on:
//
//   - A link T1-X is inferred P2C only if some path contains the
//     triplet C|T1|X with C another clique member (§6.1 of Prehn &
//     Feldmann, IMC'21, verifies exactly this mechanism).
//   - Remaining stub-to-clique links default to P2C, so true stub-T1
//     peerings are (wrongly) classified P2C — the S-T1 pathology of
//     the paper's Table 1.
//   - Everything without downward evidence falls back to P2P.
//
// The hot loops (triplet scans, the iterative sweeps) run over the
// dense interned mirror of the path set (features.Set.Dense): labels
// accumulate in flat per-link arrays indexed by dense link ID and the
// result maps are materialised once at the end, in link-ID order —
// which is canonical (A, B) order, so output is byte-identical to the
// legacy map-driven implementation.
package asrank

import (
	"context"
	"runtime"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference"
	"breval/internal/inference/features"
	"breval/internal/intern"
	"breval/internal/obs"
	"breval/internal/resilience"
)

// Options tunes the algorithm; the zero value uses the published
// defaults.
type Options struct {
	// CliqueCandidates is how many top transit-degree ASes are
	// considered for the clique (default 25).
	CliqueCandidates int
	// MaxIterations bounds the top-down sweeps (default 4).
	MaxIterations int
	// ScanWorkers bounds the goroutines of the streamed triplet scans
	// (0 = GOMAXPROCS) and ScanBlockPaths their block size in paths
	// (0 = an adaptive default). Both are operational knobs: any
	// setting yields byte-identical results — per-block evidence is
	// merged in block order, which reproduces the sequential pass
	// exactly.
	ScanWorkers    int
	ScanBlockPaths int
}

// scanGrain resolves the scan worker count and block size against the
// arena length. The default block size targets a few blocks per
// worker so the fan-out balances without flooding the pool with
// per-block bookkeeping.
func (o Options) scanGrain(n int) (workers, blockPaths int) {
	workers = o.ScanWorkers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	blockPaths = o.ScanBlockPaths
	if blockPaths < 1 {
		blockPaths = n / (workers * 4)
		if blockPaths < 4096 {
			blockPaths = 4096
		}
	}
	return workers, blockPaths
}

func (o Options) withDefaults() Options {
	if o.CliqueCandidates == 0 {
		o.CliqueCandidates = 50
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 4
	}
	return o
}

// Algorithm is the ASRank classifier.
type Algorithm struct {
	opts Options
}

// New returns an ASRank classifier.
func New(opts Options) *Algorithm { return &Algorithm{opts: opts.withDefaults()} }

// Name implements inference.Algorithm.
func (a *Algorithm) Name() string { return "ASRank" }

// InferClique infers the provider-free clique: among the top
// candidates by transit degree, greedily grow the largest set that is
// pairwise connected in the observed topology and free of
// customer-style triplet evidence, seeded by the highest transit
// degree ASes.
//
// The triplet filter is the essential part (it mirrors Luckie et
// al.'s refinement): a candidate c is rejected against member m when
// some path shows another candidate receiving c's routes through m
// (triplet x|m|c), because peer-learned routes are never re-exported
// to peers — such a path proves c is m's customer, however large c's
// transit degree is.
func InferClique(fs *features.Set, candidates int) []asn.ASN {
	return inferClique(context.Background(), fs, candidates, Options{})
}

// candidateTriplets collects every ordered triplet whose three ASes
// are all candidates, consuming the dense paths block by block across
// opts' scan grain. Set union is commutative, so per-worker partial
// maps merge into the same set for any schedule; a failed streamed
// scan (cancellation mid-flight) falls back to one serial pass, which
// keeps the no-error contract of the enclosing inference.
func candidateTriplets(ctx context.Context, fs *features.Set, cand []bool, opts Options) map[[3]int32]bool {
	d := fs.Dense
	workers, blockPaths := opts.scanGrain(d.Len())
	shard := make([]map[[3]int32]bool, workers)
	err := fs.ScanBlocks(ctx, "asrank.clique.scan", workers, blockPaths,
		func(ctx context.Context, w, _, lo, hi int) error {
			m := shard[w]
			if m == nil {
				m = make(map[[3]int32]bool)
				shard[w] = m
			}
			for i := lo; i < hi; i++ {
				if (i-lo)%4096 == 0 {
					if err := resilience.Checkpoint(ctx, "asrank.clique.scan"); err != nil {
						return err
					}
				}
				hops := d.Hops(i)
				for j := 0; j+1 < len(hops); j++ {
					left, mid, right := d.Triplet(hops[j], hops[j+1])
					if cand[left] && cand[mid] && cand[right] {
						m[[3]int32{left, mid, right}] = true
					}
				}
			}
			return nil
		})
	trips := make(map[[3]int32]bool)
	if err != nil {
		for i, n := 0, d.Len(); i < n; i++ {
			hops := d.Hops(i)
			for j := 0; j+1 < len(hops); j++ {
				left, mid, right := d.Triplet(hops[j], hops[j+1])
				if cand[left] && cand[mid] && cand[right] {
					trips[[3]int32{left, mid, right}] = true
				}
			}
		}
		return trips
	}
	for _, m := range shard {
		for k := range m {
			trips[k] = true
		}
	}
	return trips
}

func inferClique(ctx context.Context, fs *features.Set, candidates int, opts Options) []asn.ASN {
	tab := fs.Intern
	ranked := fs.ASIDsByTransitDegree()
	if len(ranked) > candidates {
		ranked = ranked[:candidates]
	}
	cand := make([]bool, tab.NumAS())
	for _, id := range ranked {
		cand[id] = true
	}
	trips := candidateTriplets(ctx, fs, cand, opts)
	// customerEvidence reports whether c's routes were seen crossing a
	// member to reach another member — proof that c is a customer and
	// must not join the clique.
	customerEvidence := func(members []int32, c int32) bool {
		for _, m1 := range members {
			if m1 == c {
				continue
			}
			for _, m2 := range members {
				if m2 == c || m2 == m1 {
					continue
				}
				if trips[[3]int32{m1, m2, c}] || trips[[3]int32{c, m2, m1}] {
					return true
				}
			}
		}
		return false
	}

	var best []int32
	// Greedy growth from each of the first few seeds; each grown set
	// is then re-validated against itself until stable, expelling
	// members with customer evidence. Keep the largest surviving set.
	seeds := 5
	if seeds > len(ranked) {
		seeds = len(ranked)
	}
	for s := 0; s < seeds; s++ {
		clique := []int32{ranked[s]}
		for _, c := range ranked {
			if c == ranked[s] {
				continue
			}
			ok := true
			for _, m := range clique {
				if !tab.HasLinkIDs(c, m) {
					ok = false
					break
				}
			}
			if ok && !customerEvidence(clique, c) {
				clique = append(clique, c)
			}
		}
		// Post-filter: expel members proven to be customers of the
		// final set (they may have joined before their providers).
		for {
			kept := clique[:0]
			expelled := false
			for _, c := range clique {
				if customerEvidence(clique, c) {
					expelled = true
					continue
				}
				kept = append(kept, c)
			}
			clique = kept
			if !expelled {
				break
			}
		}
		if len(clique) > len(best) {
			best = append(best[:0:0], clique...)
		}
	}
	tab.SortIDsByASN(best)
	return tab.ASNsOf(best)
}

// Per-link label states of the dense sweep.
const (
	lblNone uint8 = iota
	lblP2P
	lblP2CProvA // provider is the link's canonical A endpoint
	lblP2CProvB
)

// Infer implements inference.Algorithm.
func (a *Algorithm) Infer(fs *features.Set) *inference.Result {
	return a.InferContext(context.Background(), fs)
}

// InferContext implements inference.ContextAlgorithm: the classifier's
// phases (clique inference, clique triplets, top-down sweeps, the
// stub default and the tentative pass) become obs substage spans, and
// the inferred clique size and sweep counts become metrics. With no
// collector in ctx it is identical to Infer.
func (a *Algorithm) InferContext(ctx context.Context, fs *features.Set) *inference.Result {
	col := obs.From(ctx)
	col.Add("infer.asrank.runs", 1)
	tab, d := fs.Intern, fs.Dense
	nLinks := tab.NumLinks()

	res := inference.NewResult(a.Name(), nLinks)
	_, sp := obs.StartSpan(ctx, "asrank.clique")
	clique := inferClique(ctx, fs, a.opts.CliqueCandidates, a.opts)
	sp.End()
	col.Observe("infer.asrank.clique_size", int64(len(clique)))
	res.Clique = clique
	inClique := make([]bool, tab.NumAS())
	cliqueIDs := make([]int32, 0, len(clique))
	for _, c := range clique {
		if id, ok := tab.ASID(c); ok {
			inClique[id] = true
			cliqueIDs = append(cliqueIDs, id)
		}
	}

	labels := make([]uint8, nLinks)
	firm := intern.NewLinkSet(tab)
	// setP2C records a provider-to-customer inference unless the link
	// is already classified (first evidence wins, keeping the pass
	// deterministic and protecting clique peerings from triplet noise).
	setP2C := func(lid int32, providerIsA bool) {
		if labels[lid] != lblNone {
			return
		}
		if providerIsA {
			labels[lid] = lblP2CProvA
		} else {
			labels[lid] = lblP2CProvB
		}
	}

	// Step 1: clique members peer with each other.
	for i, c1 := range cliqueIDs {
		for _, c2 := range cliqueIDs[i+1:] {
			if lid, ok := tab.LinkIDOfIDs(c1, c2); ok {
				labels[lid] = lblP2P
			}
		}
	}

	// Step 2: clique triplets. A triplet C1|C2|X (or X|C2|C1) with
	// C1, C2 clique members proves C2 exported X's route to a peer,
	// so X is C2's customer. The scan streams the dense paths block by
	// block: each block records its own first touch per link (labels
	// stay read-only during the scan), and replaying the per-block
	// touch lists in block order afterwards applies exactly the first
	// evidence in global path order — byte-identical to the sequential
	// pass for any worker count or block size.
	_, sp = obs.StartSpan(ctx, "asrank.clique_triplets")
	type touch struct {
		lid int32
		lbl uint8
	}
	workers, blockPaths := a.opts.scanGrain(d.Len())
	blockEv := make([][]touch, features.NumBlocks(d.Len(), blockPaths))
	scratch := make([][]uint8, workers)
	serr := fs.ScanBlocks(ctx, "asrank.triplets.scan", workers, blockPaths,
		func(ctx context.Context, w, b, lo, hi int) error {
			seen := scratch[w]
			if seen == nil {
				seen = make([]uint8, nLinks)
				scratch[w] = seen
			}
			var evs []touch
			var touched []int32
			record := func(lid int32, providerIsA bool) {
				if labels[lid] != lblNone || seen[lid] != 0 {
					return
				}
				lbl := lblP2CProvB
				if providerIsA {
					lbl = lblP2CProvA
				}
				seen[lid] = lbl
				touched = append(touched, lid)
				evs = append(evs, touch{lid, lbl})
			}
			for i := lo; i < hi; i++ {
				if (i-lo)%4096 == 0 {
					if err := resilience.Checkpoint(ctx, "asrank.triplets.scan"); err != nil {
						return err
					}
				}
				hops := d.Hops(i)
				for j := 0; j+1 < len(hops); j++ {
					left, mid, right := d.Triplet(hops[j], hops[j+1])
					if !inClique[mid] {
						continue
					}
					if inClique[left] && !inClique[right] {
						// mid is the provider on the mid→right hop.
						rl, rFromA := intern.DecodeHop(hops[j+1])
						record(rl, rFromA)
					}
					if inClique[right] && !inClique[left] {
						// mid is the provider on the left→mid hop (mid
						// is the hop's destination).
						ll, lFromA := intern.DecodeHop(hops[j])
						record(ll, !lFromA)
					}
				}
			}
			for _, lid := range touched {
				seen[lid] = 0
			}
			blockEv[b] = evs
			return nil
		})
	if serr != nil {
		// Serial fallback keeps the no-error inference contract when
		// the streamed scan was cancelled or a worker panicked: redo
		// the pass sequentially from the untouched labels.
		for i, n := 0, d.Len(); i < n; i++ {
			hops := d.Hops(i)
			for j := 0; j+1 < len(hops); j++ {
				left, mid, right := d.Triplet(hops[j], hops[j+1])
				if !inClique[mid] {
					continue
				}
				if inClique[left] && !inClique[right] {
					rl, rFromA := intern.DecodeHop(hops[j+1])
					setP2C(rl, rFromA)
				}
				if inClique[right] && !inClique[left] {
					ll, lFromA := intern.DecodeHop(hops[j])
					setP2C(ll, !lFromA)
				}
			}
		}
	} else {
		for _, evs := range blockEv {
			for _, t := range evs {
				setP2C(t.lid, t.lbl == lblP2CProvA)
			}
		}
	}
	sp.End()

	// Step 3: iterative top-down sweep. When the left link of a
	// triplet A|X|B makes A X's provider or peer, the route crossing X
	// towards A must be a customer route, so B is X's customer.
	// Ordering by transit degree is implicit in the data (higher tiers
	// get resolved by step 2 first); iterating to a fixed point
	// propagates the frontier downwards.
	for lid := 0; lid < nLinks; lid++ {
		if labels[lid] != lblNone {
			firm.Add(int32(lid))
		}
	}
	// rankIdx orders ASes by transit degree (the published algorithm's
	// processing order); tentative evidence may only push provider
	// relationships downwards in this order.
	rankIdx := make([]int32, tab.NumAS())
	for i, x := range fs.ASIDsByTransitDegree() {
		rankIdx[x] = int32(i)
	}
	sweep := func(useTentative bool) bool {
		changed := false
		for i, n := 0, d.Len(); i < n; i++ {
			hops := d.Hops(i)
			for j := 0; j+1 < len(hops); j++ {
				left, mid, right := d.Triplet(hops[j], hops[j+1])
				if inClique[right] {
					// Clique members are provider-free by
					// definition; never infer one as a customer.
					// Without this guard a single mislabelled link
					// below a Tier-1 cascades: the Tier-1 gets
					// "demoted" and every one of its unresolved
					// customer links firms up through it.
					continue
				}
				rl, rFromA := intern.DecodeHop(hops[j+1])
				if firm.Has(rl) {
					continue
				}
				ll, lFromA := intern.DecodeHop(hops[j])
				lbl := labels[ll]
				if lbl == lblNone {
					continue
				}
				if !firm.Has(ll) {
					// Tentative P2P labels are weaker evidence: never
					// trust them around a clique member, where a
					// single unresolved customer link (e.g. partial
					// transit) would cascade into firm inferences for
					// all of the member's other unresolved links;
					// never trust them when the left AS is an observed
					// stub (a stub's relationships are unknowable from
					// paths, so its P2P default is just the fallback);
					// and only let them push provider relationships
					// *down* the transit-degree ranking, as the
					// published top-down processing order does.
					if !useTentative || inClique[mid] ||
						fs.TransitDeg[left] == 0 ||
						rankIdx[mid] > rankIdx[right] {
						continue
					}
				}
				// left is mid's provider or peer => mid exported the
				// route upward/across => right is mid's customer. The
				// hop ran left→mid, so left is the link's A endpoint
				// exactly when the hop was traversed from A.
				providerIsLeft := (lbl == lblP2CProvA && lFromA) || (lbl == lblP2CProvB && !lFromA)
				if lbl == lblP2P || providerIsLeft {
					if rFromA {
						labels[rl] = lblP2CProvA
					} else {
						labels[rl] = lblP2CProvB
					}
					firm.Add(rl)
					changed = true
				}
			}
		}
		return changed
	}
	_, sp = obs.StartSpan(ctx, "asrank.sweep")
	for iter := 0; iter < a.opts.MaxIterations; iter++ {
		col.Add("infer.asrank.sweeps", 1)
		if !sweep(false) {
			break
		}
	}
	sp.End()

	// Step 4: stub-to-clique default. Links between an observed stub
	// (transit degree 0) and a clique member default to P2C with the
	// clique member as provider.
	for lid := int32(0); lid < int32(nLinks); lid++ {
		if labels[lid] != lblNone {
			continue
		}
		la, lb := tab.LinkEnds(lid)
		switch {
		case inClique[la] && fs.TransitDeg[lb] == 0:
			labels[lid] = lblP2CProvA
		case inClique[lb] && fs.TransitDeg[la] == 0:
			labels[lid] = lblP2CProvB
		default:
			continue
		}
		firm.Add(lid)
	}

	// Step 5: tentative peering pass. Links still unclassified get a
	// tentative P2P label; treating those as peer evidence resolves
	// customer links that are only ever observed below a peering (the
	// published algorithm reaches the same links through its
	// fold/unfold steps). Tentative labels may be overridden by the
	// renewed sweep; firm labels may not. Whatever remains P2P at the
	// fixed point is final: a true stub customer is resolved because
	// its provider's own providers and peers re-export the stub's
	// routes (yielding provider/peer-left triplets), whereas a stub
	// peering is only ever seen from inside the neighbor's customer
	// cone and correctly stays P2P.
	_, sp = obs.StartSpan(ctx, "asrank.tentative")
	for iter := 0; iter < a.opts.MaxIterations; iter++ {
		col.Add("infer.asrank.sweeps", 1)
		for lid := range labels {
			if labels[lid] == lblNone {
				labels[lid] = lblP2P
			}
		}
		if !sweep(true) {
			break
		}
	}
	sp.End()

	// Materialise the dense labels into the legacy result shape, in
	// link-ID order (canonical (A, B) order).
	for lid := int32(0); lid < int32(nLinks); lid++ {
		l := tab.Link(lid)
		switch labels[lid] {
		case lblP2P:
			res.Set(l, asgraph.P2PRel())
		case lblP2CProvA:
			res.Set(l, asgraph.P2CRel(l.A))
		case lblP2CProvB:
			res.Set(l, asgraph.P2CRel(l.B))
		}
	}
	res.Firm = make(map[asgraph.Link]bool, firm.Count())
	for lid := int32(0); lid < int32(nLinks); lid++ {
		if firm.Has(lid) {
			res.Firm[tab.Link(lid)] = true
		}
	}
	return res
}

var _ inference.ContextAlgorithm = (*Algorithm)(nil)
