// Package asrank reimplements the core of CAIDA's ASRank relationship
// inference (Luckie et al., "AS Relationships, Customer Cones, and
// Validation", IMC 2013): clique inference from transit degrees,
// top-down provider-to-customer inference driven by path triplets, a
// stub-to-clique default, and peering as the fallback class.
//
// The implementation is a faithful-in-spirit subset of the published
// 11-step heuristic pipeline. It preserves the properties the bias
// study depends on:
//
//   - A link T1-X is inferred P2C only if some path contains the
//     triplet C|T1|X with C another clique member (§6.1 of Prehn &
//     Feldmann, IMC'21, verifies exactly this mechanism).
//   - Remaining stub-to-clique links default to P2C, so true stub-T1
//     peerings are (wrongly) classified P2C — the S-T1 pathology of
//     the paper's Table 1.
//   - Everything without downward evidence falls back to P2P.
package asrank

import (
	"context"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference"
	"breval/internal/inference/features"
	"breval/internal/obs"
)

// Options tunes the algorithm; the zero value uses the published
// defaults.
type Options struct {
	// CliqueCandidates is how many top transit-degree ASes are
	// considered for the clique (default 25).
	CliqueCandidates int
	// MaxIterations bounds the top-down sweeps (default 4).
	MaxIterations int
}

func (o Options) withDefaults() Options {
	if o.CliqueCandidates == 0 {
		o.CliqueCandidates = 50
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 4
	}
	return o
}

// Algorithm is the ASRank classifier.
type Algorithm struct {
	opts Options
}

// New returns an ASRank classifier.
func New(opts Options) *Algorithm { return &Algorithm{opts: opts.withDefaults()} }

// Name implements inference.Algorithm.
func (a *Algorithm) Name() string { return "ASRank" }

// InferClique infers the provider-free clique: among the top
// candidates by transit degree, greedily grow the largest set that is
// pairwise connected in the observed topology and free of
// customer-style triplet evidence, seeded by the highest transit
// degree ASes.
//
// The triplet filter is the essential part (it mirrors Luckie et
// al.'s refinement): a candidate c is rejected against member m when
// some path shows another candidate receiving c's routes through m
// (triplet x|m|c), because peer-learned routes are never re-exported
// to peers — such a path proves c is m's customer, however large c's
// transit degree is.
func InferClique(fs *features.Set, candidates int) []asn.ASN {
	ranked := fs.ASesByTransitDegree()
	if len(ranked) > candidates {
		ranked = ranked[:candidates]
	}
	cand := make(map[asn.ASN]bool, len(ranked))
	for _, a := range ranked {
		cand[a] = true
	}
	// trips records every ordered triplet whose three ASes are all
	// candidates.
	trips := make(map[[3]asn.ASN]bool)
	fs.Paths.ForEach(func(p asgraph.Path) {
		p.Triplets(func(left, mid, right asn.ASN) {
			if cand[left] && cand[mid] && cand[right] {
				trips[[3]asn.ASN{left, mid, right}] = true
			}
		})
	})
	connected := func(a, b asn.ASN) bool {
		return fs.Links[asgraph.NewLink(a, b)]
	}
	// customerEvidence reports whether c's routes were seen crossing a
	// member to reach another member — proof that c is a customer and
	// must not join the clique.
	customerEvidence := func(members []asn.ASN, c asn.ASN) bool {
		for _, m1 := range members {
			if m1 == c {
				continue
			}
			for _, m2 := range members {
				if m2 == c || m2 == m1 {
					continue
				}
				if trips[[3]asn.ASN{m1, m2, c}] || trips[[3]asn.ASN{c, m2, m1}] {
					return true
				}
			}
		}
		return false
	}

	var best []asn.ASN
	// Greedy growth from each of the first few seeds; each grown set
	// is then re-validated against itself until stable, expelling
	// members with customer evidence. Keep the largest surviving set.
	seeds := 5
	if seeds > len(ranked) {
		seeds = len(ranked)
	}
	for s := 0; s < seeds; s++ {
		clique := []asn.ASN{ranked[s]}
		for _, c := range ranked {
			if c == ranked[s] {
				continue
			}
			ok := true
			for _, m := range clique {
				if !connected(c, m) {
					ok = false
					break
				}
			}
			if ok && !customerEvidence(clique, c) {
				clique = append(clique, c)
			}
		}
		// Post-filter: expel members proven to be customers of the
		// final set (they may have joined before their providers).
		for {
			kept := clique[:0]
			expelled := false
			for _, c := range clique {
				if customerEvidence(clique, c) {
					expelled = true
					continue
				}
				kept = append(kept, c)
			}
			clique = kept
			if !expelled {
				break
			}
		}
		if len(clique) > len(best) {
			best = append(best[:0:0], clique...)
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best
}

// Infer implements inference.Algorithm.
func (a *Algorithm) Infer(fs *features.Set) *inference.Result {
	return a.InferContext(context.Background(), fs)
}

// InferContext implements inference.ContextAlgorithm: the classifier's
// phases (clique inference, clique triplets, top-down sweeps, the
// stub default and the tentative pass) become obs substage spans, and
// the inferred clique size and sweep counts become metrics. With no
// collector in ctx it is identical to Infer.
func (a *Algorithm) InferContext(ctx context.Context, fs *features.Set) *inference.Result {
	col := obs.From(ctx)
	col.Add("infer.asrank.runs", 1)

	res := inference.NewResult(a.Name(), len(fs.Links))
	_, sp := obs.StartSpan(ctx, "asrank.clique")
	clique := InferClique(fs, a.opts.CliqueCandidates)
	sp.End()
	col.Observe("infer.asrank.clique_size", int64(len(clique)))
	res.Clique = clique
	cliqueSet := make(map[asn.ASN]bool, len(clique))
	for _, c := range clique {
		cliqueSet[c] = true
	}

	// Step 1: clique members peer with each other.
	for i, c1 := range clique {
		for _, c2 := range clique[i+1:] {
			l := asgraph.NewLink(c1, c2)
			if fs.Links[l] {
				res.Set(l, asgraph.P2PRel())
			}
		}
	}

	// Step 2: clique triplets. A triplet C1|C2|X (or X|C2|C1) with
	// C1, C2 clique members proves C2 exported X's route to a peer,
	// so X is C2's customer.
	_, sp = obs.StartSpan(ctx, "asrank.clique_triplets")
	fs.Paths.ForEach(func(p asgraph.Path) {
		p.Triplets(func(left, mid, right asn.ASN) {
			if !cliqueSet[mid] {
				return
			}
			if cliqueSet[left] && !cliqueSet[right] {
				setP2C(res, mid, right)
			}
			if cliqueSet[right] && !cliqueSet[left] {
				setP2C(res, mid, left)
			}
		})
	})
	sp.End()

	// Step 3: iterative top-down sweep. When the left link of a
	// triplet A|X|B makes A X's provider or peer, the route crossing X
	// towards A must be a customer route, so B is X's customer.
	// Ordering by transit degree is implicit in the data (higher tiers
	// get resolved by step 2 first); iterating to a fixed point
	// propagates the frontier downwards.
	firm := make(map[asgraph.Link]bool, len(fs.Links))
	for l := range res.Rels {
		firm[l] = true
	}
	// rankIdx orders ASes by transit degree (the published algorithm's
	// processing order); tentative evidence may only push provider
	// relationships downwards in this order.
	rankIdx := make(map[asn.ASN]int, len(fs.Adj))
	for i, x := range fs.ASesByTransitDegree() {
		rankIdx[x] = i
	}
	sweep := func(useTentative bool) bool {
		changed := false
		fs.Paths.ForEach(func(p asgraph.Path) {
			p.Triplets(func(left, mid, right asn.ASN) {
				if cliqueSet[right] {
					// Clique members are provider-free by
					// definition; never infer one as a customer.
					// Without this guard a single mislabelled link
					// below a Tier-1 cascades: the Tier-1 gets
					// "demoted" and every one of its unresolved
					// customer links firms up through it.
					return
				}
				rl := asgraph.NewLink(mid, right)
				if firm[rl] {
					return
				}
				ll := asgraph.NewLink(left, mid)
				lrel, ok := res.Rel(ll)
				if !ok {
					return
				}
				if !firm[ll] {
					// Tentative P2P labels are weaker evidence: never
					// trust them around a clique member, where a
					// single unresolved customer link (e.g. partial
					// transit) would cascade into firm inferences for
					// all of the member's other unresolved links;
					// never trust them when the left AS is an observed
					// stub (a stub's relationships are unknowable from
					// paths, so its P2P default is just the fallback);
					// and only let them push provider relationships
					// *down* the transit-degree ranking, as the
					// published top-down processing order does.
					if !useTentative || cliqueSet[mid] ||
						fs.TransitDegree[left] == 0 ||
						rankIdx[mid] > rankIdx[right] {
						return
					}
				}
				// left is mid's provider or peer => mid exported the
				// route upward/across => right is mid's customer.
				if lrel.Type == asgraph.P2P || (lrel.Type == asgraph.P2C && lrel.Provider == left) {
					res.Set(rl, asgraph.P2CRel(mid))
					firm[rl] = true
					changed = true
				}
			})
		})
		return changed
	}
	_, sp = obs.StartSpan(ctx, "asrank.sweep")
	for iter := 0; iter < a.opts.MaxIterations; iter++ {
		col.Add("infer.asrank.sweeps", 1)
		if !sweep(false) {
			break
		}
	}
	sp.End()

	// Step 4: stub-to-clique default. Links between an observed stub
	// (transit degree 0) and a clique member default to P2C with the
	// clique member as provider.
	for l := range fs.Links {
		if _, ok := res.Rel(l); ok {
			continue
		}
		var rel asgraph.Rel
		switch {
		case cliqueSet[l.A] && fs.TransitDegree[l.B] == 0:
			rel = asgraph.P2CRel(l.A)
		case cliqueSet[l.B] && fs.TransitDegree[l.A] == 0:
			rel = asgraph.P2CRel(l.B)
		default:
			continue
		}
		res.Set(l, rel)
		firm[l] = true
	}

	// Step 5: tentative peering pass. Links still unclassified get a
	// tentative P2P label; treating those as peer evidence resolves
	// customer links that are only ever observed below a peering (the
	// published algorithm reaches the same links through its
	// fold/unfold steps). Tentative labels may be overridden by the
	// renewed sweep; firm labels may not. Whatever remains P2P at the
	// fixed point is final: a true stub customer is resolved because
	// its provider's own providers and peers re-export the stub's
	// routes (yielding provider/peer-left triplets), whereas a stub
	// peering is only ever seen from inside the neighbor's customer
	// cone and correctly stays P2P.
	_, sp = obs.StartSpan(ctx, "asrank.tentative")
	for iter := 0; iter < a.opts.MaxIterations; iter++ {
		col.Add("infer.asrank.sweeps", 1)
		for l := range fs.Links {
			if _, ok := res.Rel(l); !ok {
				res.Set(l, asgraph.P2PRel())
			}
		}
		if !sweep(true) {
			break
		}
	}
	sp.End()
	res.Firm = firm
	return res
}

// setP2C records a provider-to-customer inference unless the link is
// already classified (first evidence wins, keeping the pass
// deterministic and protecting clique peerings from triplet noise).
func setP2C(res *inference.Result, provider, customer asn.ASN) {
	l := asgraph.NewLink(provider, customer)
	if _, ok := res.Rel(l); ok {
		return
	}
	res.Set(l, asgraph.P2CRel(provider))
}

var _ inference.ContextAlgorithm = (*Algorithm)(nil)
