// Package inference defines the common contract for AS-relationship
// classification algorithms and the shared result representation. The
// concrete algorithms live in sub-packages: gao (Gao 2001), asrank
// (Luckie et al. 2013), problink (Jin et al. 2019) and toposcope
// (Jin et al. 2020) — reimplemented from scratch on top of the same
// observed-path features, as the paper evaluates them as black boxes.
package inference

import (
	"context"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference/features"
)

// Result is a relationship classification: one label per observed
// link. Labels are P2C (with the provider endpoint) or P2P; the
// algorithms do not emit S2S.
type Result struct {
	// Name identifies the producing algorithm.
	Name string
	// Rels maps every classified link to its inferred relationship.
	Rels map[asgraph.Link]asgraph.Rel
	// Clique is the inferred set of provider-free ASes, when the
	// algorithm computes one.
	Clique []asn.ASN
	// Firm, when set, marks links whose label is backed by positive
	// path evidence (clique membership, triplets) rather than a
	// fallback default. Meta-classifiers use it as the equivalent of
	// ProbLink's triplet feature.
	Firm map[asgraph.Link]bool
}

// Algorithm is a relationship classifier over observed-path features.
type Algorithm interface {
	// Name returns the algorithm's display name.
	Name() string
	// Infer classifies every link in fs.Links.
	Infer(fs *features.Set) *Result
}

// ContextAlgorithm is implemented by algorithms that additionally
// accept a context, through which they pick up the run's observability
// collector (obs spans and counters for their internal phases). The
// context is for instrumentation, not cancellation: inference stays
// deterministic and runs to completion.
type ContextAlgorithm interface {
	Algorithm
	// InferContext is Infer with the caller's context threaded
	// through for instrumentation.
	InferContext(ctx context.Context, fs *features.Set) *Result
}

// InferContext classifies with a when it implements ContextAlgorithm
// and falls back to plain Infer otherwise. Pipelines use it so any
// algorithm — including user-supplied ones — slots in.
func InferContext(ctx context.Context, a Algorithm, fs *features.Set) *Result {
	if ca, ok := a.(ContextAlgorithm); ok {
		return ca.InferContext(ctx, fs)
	}
	return a.Infer(fs)
}

// PathsConsumer is implemented by algorithms that still walk the
// cleaned ASN-typed path arena (features.Set.Paths) rather than the
// dense mirror. Pipelines check it before releasing the arena ahead
// of inference: features.(*Set).ReleasePaths may only run when no
// selected algorithm needs the paths.
type PathsConsumer interface {
	// NeedsPaths reports whether Infer reads fs.Paths.
	NeedsPaths() bool
}

// NeedsPaths reports whether a still requires the cleaned path arena.
// Algorithms that do not declare themselves are assumed dense-only:
// every in-tree algorithm reads features.Set.Dense, and an external
// one that walks fs.Paths opts in by implementing PathsConsumer.
func NeedsPaths(a Algorithm) bool {
	if pc, ok := a.(PathsConsumer); ok {
		return pc.NeedsPaths()
	}
	return false
}

// NewResult allocates an empty result.
func NewResult(name string, capacity int) *Result {
	return &Result{Name: name, Rels: make(map[asgraph.Link]asgraph.Rel, capacity)}
}

// Rel returns the inferred relationship for l.
func (r *Result) Rel(l asgraph.Link) (asgraph.Rel, bool) {
	rel, ok := r.Rels[l]
	return rel, ok
}

// Set records a relationship.
func (r *Result) Set(l asgraph.Link, rel asgraph.Rel) { r.Rels[l] = rel }

// Len returns the number of classified links.
func (r *Result) Len() int { return len(r.Rels) }

// CountByType returns the number of links classified with type t.
func (r *Result) CountByType(t asgraph.RelType) int {
	n := 0
	for _, rel := range r.Rels {
		if rel.Type == t {
			n++
		}
	}
	return n
}

// Links returns the classified links in deterministic order.
func (r *Result) Links() []asgraph.Link {
	out := make([]asgraph.Link, 0, len(r.Rels))
	for l := range r.Rels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
