package wire

import (
	"bytes"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/communities"
)

// FuzzUnmarshalUpdate feeds arbitrary bytes to the UPDATE decoder: it
// must never panic, and whatever decodes successfully must re-encode
// to something that decodes to the same message.
func FuzzUnmarshalUpdate(f *testing.F) {
	seed := &Update{
		ASPath:           asgraph.Path{64500, 3356, 174},
		Communities:      []communities.Community{{ASN: 3356, Value: 666}},
		LargeCommunities: []LargeCommunity{{Global: 4200000001, Data1: 1, Data2: 990}},
		NLRI:             []Prefix{PrefixForAS(174)},
		Withdrawn:        []Prefix{{Addr: [4]byte{10, 1, 2, 0}, Bits: 24}},
	}
	b, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 19))

	f.Fuzz(func(t *testing.T, data []byte) {
		u, n, err := UnmarshalUpdate(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := u.Marshal()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. an
			// empty update without NLRI drops its attributes); that
			// is fine as long as decoding never panicked.
			return
		}
		u2, _, err := UnmarshalUpdate(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if u2.ASPath.String() != u.ASPath.String() {
			t.Fatalf("path changed: %v vs %v", u.ASPath, u2.ASPath)
		}
	})
}

// FuzzRIBReader must never panic on arbitrary streams.
func FuzzRIBReader(f *testing.F) {
	var buf bytes.Buffer
	rw := NewRIBWriter(&buf, 42)
	_ = rw.Write(RIBEntry{Prefix: PrefixForAS(3356), Path: asgraph.Path{64500, 3356}})
	_ = rw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	// Truncated MRT headers: cut mid-timestamp and mid-length so the
	// reader exercises its short-header path, plus a header whose
	// declared body length exceeds the remaining stream.
	f.Add(buf.Bytes()[:3])
	f.Add(buf.Bytes()[:7])
	f.Add(buf.Bytes()[:11])
	f.Add(buf.Bytes()[:13])
	oversize := append([]byte(nil), buf.Bytes()[:12]...)
	oversize[8], oversize[9], oversize[10], oversize[11] = 0xff, 0xff, 0xff, 0xff
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRIBReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}
