package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/communities"
)

// FuzzUnmarshalUpdate feeds arbitrary bytes to the UPDATE decoder: it
// must never panic, and whatever decodes successfully must re-encode
// to something that decodes to the same message.
func FuzzUnmarshalUpdate(f *testing.F) {
	seed := &Update{
		ASPath:           asgraph.Path{64500, 3356, 174},
		Communities:      []communities.Community{{ASN: 3356, Value: 666}},
		LargeCommunities: []LargeCommunity{{Global: 4200000001, Data1: 1, Data2: 990}},
		NLRI:             []Prefix{PrefixForAS(174)},
		Withdrawn:        []Prefix{{Addr: [16]byte{10, 1, 2, 0}, Bits: 24}},
	}
	b, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 19))

	f.Fuzz(func(t *testing.T, data []byte) {
		u, n, err := UnmarshalUpdate(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := u.Marshal()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. an
			// empty update without NLRI drops its attributes); that
			// is fine as long as decoding never panicked.
			return
		}
		u2, _, err := UnmarshalUpdate(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if u2.ASPath.String() != u.ASPath.String() {
			t.Fatalf("path changed: %v vs %v", u.ASPath, u2.ASPath)
		}
	})
}

// FuzzRIBReader must never panic on arbitrary streams.
func FuzzRIBReader(f *testing.F) {
	var buf bytes.Buffer
	rw := NewRIBWriter(&buf, 42)
	_ = rw.Write(RIBEntry{Prefix: PrefixForAS(3356), Path: asgraph.Path{64500, 3356}})
	_ = rw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	// Truncated MRT headers: cut mid-timestamp and mid-length so the
	// reader exercises its short-header path, plus a header whose
	// declared body length exceeds the remaining stream.
	f.Add(buf.Bytes()[:3])
	f.Add(buf.Bytes()[:7])
	f.Add(buf.Bytes()[:11])
	f.Add(buf.Bytes()[:13])
	oversize := append([]byte(nil), buf.Bytes()[:12]...)
	oversize[8], oversize[9], oversize[10], oversize[11] = 0xff, 0xff, 0xff, 0xff
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRIBReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}

// FuzzTableDumpV2 feeds arbitrary streams to the RFC 6396 decoder: it
// must never panic, every error must obey the RecordReader contract
// (EOF, skippable *BadRecordError, or a desynchronizing sentinel), and
// in-sync damage must never prevent the reader from terminating.
func FuzzTableDumpV2(f *testing.F) {
	ps := bgp.NewPathSet(2, 8)
	ps.Append(asgraph.Path{100, 10, 1})
	ps.Append(asgraph.Path{200, 20, 90000000})
	var buf bytes.Buffer
	if err := WriteTableDumpV2(&buf, ps, 42); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	// Truncations at interesting boundaries.
	f.Add(valid[:7])
	f.Add(valid[:12])
	f.Add(valid[:len(valid)-3])
	// A flipped attribute flag inside the first RIB record.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	// A corrupt peer count in the index table (offset 6+len("breval")).
	badPeers := append([]byte(nil), valid...)
	badPeers[12+6+6+1] ^= 0xff
	f.Add(badPeers)
	// An oversize declared body length.
	oversize := append([]byte(nil), valid[:12]...)
	oversize[8], oversize[9], oversize[10], oversize[11] = 0xff, 0xff, 0xff, 0xff
	f.Add(oversize)
	// Quarantine-ledger frame_hex seeds: damaged RIB frames exactly as
	// the ingest ledger samples them (Sample.FrameHex), so real
	// quarantined frames can be pasted in as new seeds verbatim.
	for _, frameHex := range []string{
		// bad-attribute: extended-length flag flipped on ORIGIN
		"0000002a000d00020000003d00000000180a0001000100000000002a002b5001010040020e0203000000640000000a00000001c0080400640064c0200c000000640000000100000001",
		// bad-peer-index: entry references slot 99 of a 2-peer table
		"0000002a000d00020000003d00000000180a0001000100630000002a002b4001010040020e0203000000640000000a00000001c0080400640064c0200c000000640000000100000001",
	} {
		frame, err := hex.DecodeString(frameHex)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTableDumpReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			_, err := tr.Read()
			if err == nil {
				continue
			}
			var bad *BadRecordError
			if errors.As(err, &bad) {
				continue // in sync: keep reading
			}
			return // EOF or desync: stream over
		}
		t.Fatalf("reader did not terminate within 10000 reads on %d bytes", len(data))
	})
}
