package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"breval/internal/asgraph"
)

// ribFixture builds a small RIB stream of records with different path
// lengths and returns the bytes plus the cumulative record boundaries
// (boundaries[0] == 0, boundaries[len] == len(data)).
func ribFixture(t *testing.T) (data []byte, boundaries []int) {
	t.Helper()
	paths := []asgraph.Path{
		{64500, 3356, 174},
		{64501, 1299},
		{64502, 6939, 3257, 2914, 701},
	}
	var buf bytes.Buffer
	boundaries = append(boundaries, 0)
	rw := NewRIBWriter(&buf, 42)
	for _, p := range paths {
		if err := rw.Write(RIBEntry{Prefix: PrefixForAS(p.Origin()), Path: p}); err != nil {
			t.Fatal(err)
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, buf.Len())
	}
	return buf.Bytes(), boundaries
}

// readAll drains a RIBReader, returning the record count and the final
// error (io.EOF for a clean end of stream).
func readAll(data []byte) (int, error) {
	rr := NewRIBReader(bytes.NewReader(data))
	n := 0
	for {
		_, err := rr.Read()
		if err != nil {
			return n, err
		}
		n++
	}
}

// TestRIBReaderCutAtEveryBoundary: a stream cut exactly at a record
// boundary is a clean end of stream (io.EOF after the surviving
// records); cut one byte to either side it must surface ErrTruncated —
// never a bare io.EOF or io.ErrUnexpectedEOF.
func TestRIBReaderCutAtEveryBoundary(t *testing.T) {
	data, boundaries := ribFixture(t)

	for i, b := range boundaries {
		n, err := readAll(data[:b])
		if n != i || err != io.EOF {
			t.Errorf("cut at boundary %d (%d bytes): %d records, err %v; want %d records, io.EOF", i, b, n, err, i)
		}

		for _, cut := range []int{b - 1, b + 1} {
			if cut < 0 || cut > len(data) {
				continue
			}
			if cut == b || contains(boundaries, cut) {
				continue // ±1 landed on another exact boundary (not possible here, but safe)
			}
			_, err := readAll(data[:cut])
			if !errors.Is(err, ErrTruncated) {
				t.Errorf("cut at %d bytes (boundary %d%+d): err %v, want ErrTruncated", cut, i, cut-b, err)
			}
			if errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF {
				t.Errorf("cut at %d bytes leaked a bare EOF: %v", cut, err)
			}
		}
	}
}

// TestRIBReaderCutEverywhere sweeps every possible cut length: the
// reader must report io.EOF exactly at record boundaries and
// ErrTruncated everywhere else.
func TestRIBReaderCutEverywhere(t *testing.T) {
	data, boundaries := ribFixture(t)
	for cut := 0; cut <= len(data); cut++ {
		_, err := readAll(data[:cut])
		if contains(boundaries, cut) {
			if err != io.EOF {
				t.Errorf("cut at %d: err %v, want io.EOF", cut, err)
			}
		} else if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err %v, want ErrTruncated", cut, err)
		}
	}
}

// TestReadRIBPropagatesTruncation: the whole-dump reader surfaces
// ErrTruncated for a cut file rather than silently returning the
// partial path set.
func TestReadRIBPropagatesTruncation(t *testing.T) {
	data, boundaries := ribFixture(t)
	if ps, err := ReadRIB(bytes.NewReader(data)); err != nil || ps.Len() != len(boundaries)-1 {
		t.Fatalf("intact dump: %v (len %d)", err, ps.Len())
	}
	cut := boundaries[len(boundaries)-1] - 1
	if _, err := ReadRIB(bytes.NewReader(data[:cut])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated dump: err %v, want ErrTruncated", err)
	}
}

// TestRIBReaderHopCountOverrun: a frame whose hop count claims more
// bytes than its body holds is truncation-shaped damage.
func TestRIBReaderHopCountOverrun(t *testing.T) {
	data, boundaries := ribFixture(t)
	rec := append([]byte(nil), data[:boundaries[1]]...)
	// Body layout after the 12-byte header: prefixLen(1) + 3 prefix
	// bytes + hop count. Inflate the hop count past the body.
	rec[12+1+3] = 0xff
	_, err := readAll(rec)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("inflated hop count: err %v, want ErrTruncated", err)
	}
}

// TestUnmarshalUpdateEveryPrefixTruncated: every strict prefix of a
// valid UPDATE message decodes to ErrTruncated.
func TestUnmarshalUpdateEveryPrefixTruncated(t *testing.T) {
	u := &Update{
		ASPath:    asgraph.Path{64500, 3356, 174},
		NLRI:      []Prefix{PrefixForAS(174)},
		Withdrawn: []Prefix{{Addr: [16]byte{10, 1, 2, 0}, Bits: 24}},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalUpdate(b); err != nil {
		t.Fatalf("intact message: %v", err)
	}
	for cut := 0; cut < len(b); cut++ {
		_, _, err := UnmarshalUpdate(b[:cut])
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d of %d: err %v, want ErrTruncated", cut, len(b), err)
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
