package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/communities"
)

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		ASPath: asgraph.Path{64500, 3356, 174, 90000000},
		Communities: []communities.Community{
			{ASN: 3356, Value: 666},
			{ASN: 174, Value: 990},
		},
		NLRI:      []Prefix{PrefixForAS(90000000), {Addr: [16]byte{192, 0, 2, 0}, Bits: 25}},
		Withdrawn: []Prefix{{Addr: [16]byte{198, 51, 100, 0}, Bits: 24}},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, n, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d bytes", n, len(b))
	}
	if got.ASPath.String() != u.ASPath.String() {
		t.Errorf("path = %v, want %v", got.ASPath, u.ASPath)
	}
	if len(got.Communities) != 2 || got.Communities[0] != u.Communities[0] {
		t.Errorf("communities = %v", got.Communities)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Errorf("nlri = %v", got.NLRI)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
}

func TestUpdateEmptyWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []Prefix{{Addr: [16]byte{10, 0, 0, 0}, Bits: 8}}}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 0 || len(got.ASPath) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestUpdateRejectsLargeCommunityASN(t *testing.T) {
	u := &Update{
		ASPath:      asgraph.Path{1},
		NLRI:        []Prefix{PrefixForAS(1)},
		Communities: []communities.Community{{ASN: 70000, Value: 1}},
	}
	if _, err := u.Marshal(); err == nil {
		t.Error("32-bit community ASN accepted in classic attribute")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	u := &Update{ASPath: asgraph.Path{1, 2}, NLRI: []Prefix{PrefixForAS(2)}}
	good, _ := u.Marshal()

	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:10] },
		"bad marker":       func(b []byte) []byte { c := clone(b); c[0] = 0; return c },
		"bad type":         func(b []byte) []byte { c := clone(b); c[18] = 99; return c },
		"short body":       func(b []byte) []byte { return b[:len(b)-3] },
		"bad length":       func(b []byte) []byte { c := clone(b); c[16], c[17] = 0, 5; return c },
	} {
		if _, _, err := UnmarshalUpdate(corrupt(good)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := &Update{}
		hops := 1 + rng.Intn(10)
		for i := 0; i < hops; i++ {
			u.ASPath = append(u.ASPath, asn.ASN(rng.Uint32()))
		}
		for i := 0; i < rng.Intn(4); i++ {
			u.Communities = append(u.Communities, communities.Community{
				ASN: asn.ASN(rng.Intn(65536)), Value: uint16(rng.Intn(65536)),
			})
		}
		for i := 0; i <= rng.Intn(4); i++ {
			u.NLRI = append(u.NLRI, Prefix{
				Addr: [16]byte{byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0},
				Bits: uint8(16 + rng.Intn(9)),
			})
		}
		b, err := u.Marshal()
		if err != nil {
			return false
		}
		got, n, err := UnmarshalUpdate(b)
		if err != nil || n != len(b) {
			return false
		}
		if got.ASPath.String() != u.ASPath.String() || len(got.NLRI) != len(u.NLRI) ||
			len(got.Communities) != len(u.Communities) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrefixForASDeterministic(t *testing.T) {
	p1 := PrefixForAS(3356)
	p2 := PrefixForAS(3356)
	if p1 != p2 {
		t.Error("PrefixForAS not deterministic")
	}
	if p1 == PrefixForAS(174) {
		t.Error("distinct ASes share a prefix")
	}
	if p1.Bits != 24 {
		t.Errorf("prefix length = %d", p1.Bits)
	}
	if p1.String() == "" {
		t.Error("empty String()")
	}
}

func TestRIBRoundTrip(t *testing.T) {
	ps := bgp.NewPathSet(3, 16)
	ps.Append(asgraph.Path{100, 10, 1})
	ps.Append(asgraph.Path{200, 20, 2, 90000000})
	ps.Append(asgraph.Path{1})

	var buf bytes.Buffer
	if err := WriteRIB(&buf, ps, 1522540800); err != nil {
		t.Fatalf("WriteRIB: %v", err)
	}
	got, err := ReadRIB(&buf)
	if err != nil {
		t.Fatalf("ReadRIB: %v", err)
	}
	if got.Len() != ps.Len() {
		t.Fatalf("round trip: %d paths, want %d", got.Len(), ps.Len())
	}
	for i := 0; i < ps.Len(); i++ {
		if got.At(i).String() != ps.At(i).String() {
			t.Errorf("path %d = %v, want %v", i, got.At(i), ps.At(i))
		}
	}
}

func TestRIBReaderEOFAndErrors(t *testing.T) {
	r := NewRIBReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
	// Truncated header.
	r = NewRIBReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated header: err = %v", err)
	}
	// Wrong type.
	bad := make([]byte, 12)
	bad[5] = 99
	bad[11] = 2
	r = NewRIBReader(bytes.NewReader(bad))
	if _, err := r.Read(); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestRIBReaderTruncatedAndOversize(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRIBWriter(&buf, 42)
	if err := rw.Write(RIBEntry{Prefix: PrefixForAS(3356), Path: asgraph.Path{64500, 3356}}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := buf.Bytes()

	// Header cut short at various points.
	for _, n := range []int{1, 5, 7, 11} {
		r := NewRIBReader(bytes.NewReader(rec[:n]))
		if _, err := r.Read(); !errors.Is(err, ErrTruncated) {
			t.Errorf("header cut at %d: err = %v, want ErrTruncated", n, err)
		}
	}
	// Body shorter than declared length.
	r := NewRIBReader(bytes.NewReader(rec[:len(rec)-2]))
	if _, err := r.Read(); !errors.Is(err, ErrTruncated) {
		t.Errorf("short body: err = %v, want ErrTruncated", err)
	}
	// Declared body length over the bound must not allocate or read it.
	big := append([]byte(nil), rec[:12]...)
	big[8], big[9], big[10], big[11] = 0xff, 0xff, 0xff, 0xff
	r = NewRIBReader(bytes.NewReader(big))
	if _, err := r.Read(); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize body: err = %v, want ErrOversize", err)
	}
	// Declared body length below the 2-byte minimum.
	small := append([]byte(nil), rec[:12]...)
	small[8], small[9], small[10], small[11] = 0, 0, 0, 1
	r = NewRIBReader(bytes.NewReader(small))
	if _, err := r.Read(); !errors.Is(err, ErrTruncated) {
		t.Errorf("undersize body: err = %v, want ErrTruncated", err)
	}
}

func TestUnmarshalUpdateSentinels(t *testing.T) {
	u := &Update{ASPath: asgraph.Path{64500, 3356}, NLRI: []Prefix{PrefixForAS(3356)}}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalUpdate(b[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: err = %v, want ErrTruncated", err)
	}
	if _, _, err := UnmarshalUpdate(b[:len(b)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short message: err = %v, want ErrTruncated", err)
	}
	big := append([]byte(nil), b...)
	big[16], big[17] = 0xff, 0xff // declared length 65535 > 4096
	if _, _, err := UnmarshalUpdate(big); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize message: err = %v, want ErrOversize", err)
	}
}

func TestRIBWriterRejectsBadPaths(t *testing.T) {
	rw := NewRIBWriter(&bytes.Buffer{}, 0)
	if err := rw.Write(RIBEntry{Prefix: PrefixForAS(1)}); err == nil {
		t.Error("empty path accepted")
	}
	long := make(asgraph.Path, 300)
	for i := range long {
		long[i] = asn.ASN(i + 1)
	}
	if err := rw.Write(RIBEntry{Prefix: PrefixForAS(1), Path: long}); err == nil {
		t.Error("overlong path accepted")
	}
}

func TestRIBEndToEndWithSimulatedWorld(t *testing.T) {
	// RIB files written from simulator output parse back identically.
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(2, 20, asgraph.P2CRel(2))
	sim := bgp.NewSimulator(g)
	ps := sim.Propagate(g.ASes(), []asn.ASN{10, 20})

	var buf bytes.Buffer
	if err := WriteRIB(&buf, ps, 42); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ps.Len() {
		t.Fatalf("%d paths, want %d", got.Len(), ps.Len())
	}
}

func TestLargeCommunitiesRoundTrip(t *testing.T) {
	u := &Update{
		ASPath: asgraph.Path{64500, 3356},
		NLRI:   []Prefix{PrefixForAS(3356)},
		LargeCommunities: []LargeCommunity{
			{Global: 4200000001, Data1: 1, Data2: 990},
			{Global: 3356, Data1: 0, Data2: 666},
		},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.LargeCommunities) != 2 || got.LargeCommunities[0] != u.LargeCommunities[0] ||
		got.LargeCommunities[1] != u.LargeCommunities[1] {
		t.Errorf("large communities = %v", got.LargeCommunities)
	}
	if got.LargeCommunities[0].String() != "4200000001:1:990" {
		t.Errorf("String = %q", got.LargeCommunities[0].String())
	}
}

func TestLargeCommunitiesBadLength(t *testing.T) {
	u := &Update{ASPath: asgraph.Path{1}, NLRI: []Prefix{PrefixForAS(1)},
		LargeCommunities: []LargeCommunity{{Global: 1, Data1: 2, Data2: 3}}}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the large-communities length to a non-multiple of 12 by
	// truncating the message body mid-attribute.
	if _, _, err := UnmarshalUpdate(b[:len(b)-5]); err == nil {
		t.Error("truncated large communities accepted")
	}
}
