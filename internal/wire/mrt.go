package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/communities"
)

// MRT-style record framing, modelled on RFC 6396: a fixed header
// (timestamp, type, subtype, length) followed by the record body. The
// single record type used here carries one RIB entry: the prefix, the
// vantage-point AS and the AS path.
const (
	mrtType       = 13 // TABLE_DUMP_V2
	mrtSubtypeRIB = 2  // RIB_IPV4_UNICAST (simplified body)

	// maxRIBBody bounds a record body: 1+4 prefix bytes, 1 path-length
	// byte and a 255-hop path need 262; 4096 leaves headroom without
	// letting corrupt framing drive a multi-gigabyte allocation.
	maxRIBBody = 4096
)

// RIBEntry is one (vantage point, origin prefix, AS path) row of a
// collector RIB snapshot. The fields below Path only appear on entries
// decoded from real TABLE_DUMP_V2 dumps; internal-framing records
// leave them zero.
type RIBEntry struct {
	Prefix Prefix
	Path   asgraph.Path

	// PathID is the RFC 8050 ADDPATH path identifier (0 when absent).
	PathID uint32
	// ASSets counts multi-member AS_SET segments in the AS_PATH.
	// Aggregated paths are not link evidence, so ingest quarantines
	// entries with ASSets > 0 rather than inventing adjacencies.
	ASSets int
	// Communities and LargeCommunities carry the entry's community
	// attributes, feeding internal/communities-based validation.
	Communities      []communities.Community
	LargeCommunities []LargeCommunity
}

// RecordReader is the streaming decoder contract internal/ingest reads
// through: the internal framing (RIBReader) and real RFC 6396
// TABLE_DUMP_V2 (TableDumpReader) both satisfy it, so the hardening
// above — quarantine, budgets, deterministic parallel merge — is
// format-blind.
type RecordReader interface {
	// Read returns the next RIB entry, io.EOF at a clean end of
	// stream, a *BadRecordError for in-sync skippable damage, or a
	// desynchronizing error (ErrTruncated, ErrOversize,
	// ErrBadPeerIndex) that abandons the file.
	Read() (RIBEntry, error)
	// Index is the zero-based index of the record the last Read
	// attempted, or -1 before the first call.
	Index() int
	// LastFrame exposes the raw bytes of the frame the last Read
	// consumed, for quarantine ledger sampling. The slice aliases the
	// reader's scratch buffer and is only valid until the next Read.
	LastFrame() []byte
}

// RIBWriter streams RIB entries in the MRT-style framing.
type RIBWriter struct {
	w   *bufio.Writer
	ts  uint32
	err error
}

// NewRIBWriter wraps w; ts is the snapshot timestamp recorded in every
// record header.
func NewRIBWriter(w io.Writer, ts uint32) *RIBWriter {
	return &RIBWriter{w: bufio.NewWriter(w), ts: ts}
}

// Write emits one entry.
func (rw *RIBWriter) Write(e RIBEntry) error {
	if rw.err != nil {
		return rw.err
	}
	if len(e.Path) == 0 || len(e.Path) > 255 {
		return fmt.Errorf("wire: bad path length %d", len(e.Path))
	}
	// Body: prefix (1+n bytes) | path len (1) | ASNs (4 each).
	bodyLen := 1 + int(e.Prefix.Bits+7)/8 + 1 + 4*len(e.Path)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], rw.ts)
	binary.BigEndian.PutUint16(hdr[4:6], mrtType)
	binary.BigEndian.PutUint16(hdr[6:8], mrtSubtypeRIB)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(bodyLen))
	if _, rw.err = rw.w.Write(hdr[:]); rw.err != nil {
		return rw.err
	}
	rw.w.WriteByte(e.Prefix.Bits)
	rw.w.Write(e.Prefix.Addr[:int(e.Prefix.Bits+7)/8])
	rw.w.WriteByte(byte(len(e.Path)))
	var buf [4]byte
	for _, a := range e.Path {
		binary.BigEndian.PutUint32(buf[:], uint32(a))
		if _, rw.err = rw.w.Write(buf[:]); rw.err != nil {
			return rw.err
		}
	}
	return nil
}

// Flush completes the stream.
func (rw *RIBWriter) Flush() error {
	if rw.err != nil {
		return rw.err
	}
	return rw.w.Flush()
}

// WriteRIB dumps an entire path set, deriving each entry's prefix from
// its origin AS.
func WriteRIB(w io.Writer, ps *bgp.PathSet, ts uint32) error {
	rw := NewRIBWriter(w, ts)
	var err error
	ps.ForEach(func(p asgraph.Path) {
		if err != nil {
			return
		}
		err = rw.Write(RIBEntry{Prefix: PrefixForAS(p.Origin()), Path: p})
	})
	if err != nil {
		return err
	}
	return rw.Flush()
}

// BadRecordError reports a record whose frame was fully consumed but
// whose contents are unusable: a wrong type code, a malformed prefix
// or path, or truncation-shaped damage inside a complete frame. The
// stream is still positioned at the next record boundary, so callers
// that tolerate damage (internal/ingest) may skip the record and keep
// reading; callers that don't (checkpoint loads) treat it like any
// other error. Index is the zero-based position of the record in the
// stream, and Unwrap preserves errors.Is matching on the cause (in
// particular ErrTruncated for truncation-shaped damage).
type BadRecordError struct {
	Index int
	Err   error
}

func (e *BadRecordError) Error() string {
	return fmt.Sprintf("wire: record %d: %v", e.Index, e.Err)
}

func (e *BadRecordError) Unwrap() error { return e.Err }

// RIBReader streams RIB entries back.
type RIBReader struct {
	r *bufio.Reader
	// frame is the scratch buffer holding the header+body of the
	// record most recently read; it is reused across Read calls, so
	// returned entries copy out of it.
	frame []byte
	flen  int
	n     int // records attempted (headers started)
}

// NewRIBReader wraps r.
func NewRIBReader(r io.Reader) *RIBReader {
	return &RIBReader{r: bufio.NewReader(r)}
}

// Index reports the zero-based index of the record the last Read call
// attempted, or -1 before the first call. After an error it names the
// damaged record, which quarantine ledgers use for attribution.
func (rr *RIBReader) Index() int { return rr.n - 1 }

// LastFrame returns the raw header+body bytes of the record the last
// Read call consumed — complete after a nil or *BadRecordError result,
// partial after a truncation. The slice aliases the reader's scratch
// buffer and is only valid until the next Read.
func (rr *RIBReader) LastFrame() []byte { return rr.frame[:rr.flen] }

// bad marks the current record unusable while the stream stays in
// sync at the next frame boundary.
func (rr *RIBReader) bad(err error) error {
	return &BadRecordError{Index: rr.n - 1, Err: err}
}

// Read returns the next entry, or io.EOF at a clean end of stream.
// Any stream that ends inside a record — mid-header or mid-body —
// surfaces ErrTruncated, never a bare io.EOF/io.ErrUnexpectedEOF, so
// callers (checkpoint loads in particular) can distinguish a damaged
// file from a clean end of stream with errors.Is. Errors that consume
// the whole frame come back as *BadRecordError; truncation and
// oversize framing desynchronize the stream and end the read loop.
func (rr *RIBReader) Read() (RIBEntry, error) {
	if rr.frame == nil {
		rr.frame = make([]byte, 12+maxRIBBody)
	}
	rr.flen = 0
	rr.n++
	hdr := rr.frame[:12]
	if n, err := io.ReadFull(rr.r, hdr); err != nil {
		rr.flen = n
		if n == 0 && errors.Is(err, io.EOF) {
			// Zero header bytes read: the only clean end of stream.
			rr.n--
			return RIBEntry{}, io.EOF
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return RIBEntry{}, ErrTruncated
		}
		// Real I/O errors pass through unchanged.
		return RIBEntry{}, err
	}
	rr.flen = 12
	bodyLen := binary.BigEndian.Uint32(hdr[8:12])
	if bodyLen > maxRIBBody {
		// The length field itself is untrustworthy: consuming bodyLen
		// bytes could skip anything, so the stream is lost.
		return RIBEntry{}, fmt.Errorf("wire: bad record length %d: %w", bodyLen, ErrOversize)
	}
	body := rr.frame[12 : 12+bodyLen]
	if n, err := io.ReadFull(rr.r, body); err != nil {
		rr.flen += n
		// The header promised bodyLen bytes: both io.EOF (nothing
		// followed the header) and io.ErrUnexpectedEOF (the body was
		// cut short) are truncation. Real I/O errors pass through.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return RIBEntry{}, ErrTruncated
		}
		return RIBEntry{}, err
	}
	rr.flen += int(bodyLen)

	// The frame is fully consumed: every failure below leaves the
	// stream in sync and is reported as a skippable BadRecordError.
	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	if typ != mrtType || sub != mrtSubtypeRIB {
		return RIBEntry{}, rr.bad(fmt.Errorf("unexpected record type %d/%d", typ, sub))
	}
	if bodyLen < 2 {
		return RIBEntry{}, rr.bad(fmt.Errorf("bad record length %d: %w", bodyLen, ErrTruncated))
	}
	var e RIBEntry
	p, n, err := readPrefix(body)
	if err != nil {
		return RIBEntry{}, rr.bad(err)
	}
	e.Prefix = p
	body = body[n:]
	if len(body) < 1 {
		return RIBEntry{}, rr.bad(ErrTruncated)
	}
	hops := int(body[0])
	body = body[1:]
	if len(body) < hops*4 {
		// The record claims more path hops than its body holds:
		// truncation-shaped damage inside a complete frame.
		return RIBEntry{}, rr.bad(fmt.Errorf("path needs %d bytes, body has %d: %w",
			hops*4, len(body), ErrTruncated))
	}
	if len(body) > hops*4 {
		return RIBEntry{}, rr.bad(errors.New("path length mismatch"))
	}
	e.Path = make(asgraph.Path, hops)
	for i := 0; i < hops; i++ {
		e.Path[i] = asn.ASN(binary.BigEndian.Uint32(body[i*4 : i*4+4]))
	}
	return e, nil
}

// ReadRIB reads a whole dump into a path set. It is strict — any
// damaged record fails the load — and every error names the record
// index it occurred at, for quarantine attribution.
func ReadRIB(r io.Reader) (*bgp.PathSet, error) {
	rr := NewRIBReader(r)
	ps := bgp.NewPathSet(1024, 4096)
	for {
		e, err := rr.Read()
		if err == io.EOF {
			return ps, nil
		}
		if err != nil {
			var bad *BadRecordError
			if errors.As(err, &bad) {
				return nil, err // already names its record index
			}
			return nil, fmt.Errorf("wire: record %d: %w", rr.Index(), err)
		}
		ps.Append(e.Path)
	}
}
