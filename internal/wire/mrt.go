package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
)

// MRT-style record framing, modelled on RFC 6396: a fixed header
// (timestamp, type, subtype, length) followed by the record body. The
// single record type used here carries one RIB entry: the prefix, the
// vantage-point AS and the AS path.
const (
	mrtType       = 13 // TABLE_DUMP_V2
	mrtSubtypeRIB = 2  // RIB_IPV4_UNICAST (simplified body)

	// maxRIBBody bounds a record body: 1+4 prefix bytes, 1 path-length
	// byte and a 255-hop path need 262; 4096 leaves headroom without
	// letting corrupt framing drive a multi-gigabyte allocation.
	maxRIBBody = 4096
)

// RIBEntry is one (vantage point, origin prefix, AS path) row of a
// collector RIB snapshot.
type RIBEntry struct {
	Prefix Prefix
	Path   asgraph.Path
}

// RIBWriter streams RIB entries in the MRT-style framing.
type RIBWriter struct {
	w   *bufio.Writer
	ts  uint32
	err error
}

// NewRIBWriter wraps w; ts is the snapshot timestamp recorded in every
// record header.
func NewRIBWriter(w io.Writer, ts uint32) *RIBWriter {
	return &RIBWriter{w: bufio.NewWriter(w), ts: ts}
}

// Write emits one entry.
func (rw *RIBWriter) Write(e RIBEntry) error {
	if rw.err != nil {
		return rw.err
	}
	if len(e.Path) == 0 || len(e.Path) > 255 {
		return fmt.Errorf("wire: bad path length %d", len(e.Path))
	}
	// Body: prefix (1+n bytes) | path len (1) | ASNs (4 each).
	bodyLen := 1 + int(e.Prefix.Bits+7)/8 + 1 + 4*len(e.Path)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], rw.ts)
	binary.BigEndian.PutUint16(hdr[4:6], mrtType)
	binary.BigEndian.PutUint16(hdr[6:8], mrtSubtypeRIB)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(bodyLen))
	if _, rw.err = rw.w.Write(hdr[:]); rw.err != nil {
		return rw.err
	}
	rw.w.WriteByte(e.Prefix.Bits)
	rw.w.Write(e.Prefix.Addr[:int(e.Prefix.Bits+7)/8])
	rw.w.WriteByte(byte(len(e.Path)))
	var buf [4]byte
	for _, a := range e.Path {
		binary.BigEndian.PutUint32(buf[:], uint32(a))
		if _, rw.err = rw.w.Write(buf[:]); rw.err != nil {
			return rw.err
		}
	}
	return nil
}

// Flush completes the stream.
func (rw *RIBWriter) Flush() error {
	if rw.err != nil {
		return rw.err
	}
	return rw.w.Flush()
}

// WriteRIB dumps an entire path set, deriving each entry's prefix from
// its origin AS.
func WriteRIB(w io.Writer, ps *bgp.PathSet, ts uint32) error {
	rw := NewRIBWriter(w, ts)
	var err error
	ps.ForEach(func(p asgraph.Path) {
		if err != nil {
			return
		}
		err = rw.Write(RIBEntry{Prefix: PrefixForAS(p.Origin()), Path: p})
	})
	if err != nil {
		return err
	}
	return rw.Flush()
}

// RIBReader streams RIB entries back.
type RIBReader struct {
	r *bufio.Reader
}

// NewRIBReader wraps r.
func NewRIBReader(r io.Reader) *RIBReader {
	return &RIBReader{r: bufio.NewReader(r)}
}

// Read returns the next entry, or io.EOF at a clean end of stream.
// Any stream that ends inside a record — mid-header or mid-body —
// surfaces ErrTruncated, never a bare io.EOF/io.ErrUnexpectedEOF, so
// callers (checkpoint loads in particular) can distinguish a damaged
// file from a clean end of stream with errors.Is.
func (rr *RIBReader) Read() (RIBEntry, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return RIBEntry{}, ErrTruncated
		}
		// io.EOF here means zero header bytes were read: the only
		// clean end of stream. Real I/O errors pass through unchanged.
		return RIBEntry{}, err
	}
	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	if typ != mrtType || sub != mrtSubtypeRIB {
		return RIBEntry{}, fmt.Errorf("wire: unexpected record type %d/%d", typ, sub)
	}
	bodyLen := binary.BigEndian.Uint32(hdr[8:12])
	if bodyLen > maxRIBBody {
		return RIBEntry{}, fmt.Errorf("wire: bad record length %d: %w", bodyLen, ErrOversize)
	}
	if bodyLen < 2 {
		return RIBEntry{}, fmt.Errorf("wire: bad record length %d: %w", bodyLen, ErrTruncated)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(rr.r, body); err != nil {
		// The header promised bodyLen bytes: both io.EOF (nothing
		// followed the header) and io.ErrUnexpectedEOF (the body was
		// cut short) are truncation. Real I/O errors pass through.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return RIBEntry{}, ErrTruncated
		}
		return RIBEntry{}, err
	}
	var e RIBEntry
	p, n, err := readPrefix(body)
	if err != nil {
		return RIBEntry{}, err
	}
	e.Prefix = p
	body = body[n:]
	if len(body) < 1 {
		return RIBEntry{}, ErrTruncated
	}
	hops := int(body[0])
	body = body[1:]
	if len(body) < hops*4 {
		// The record claims more path hops than its body holds:
		// truncation-shaped damage inside a complete frame.
		return RIBEntry{}, fmt.Errorf("wire: path needs %d bytes, body has %d: %w",
			hops*4, len(body), ErrTruncated)
	}
	if len(body) > hops*4 {
		return RIBEntry{}, errors.New("wire: path length mismatch")
	}
	e.Path = make(asgraph.Path, hops)
	for i := 0; i < hops; i++ {
		e.Path[i] = asn.ASN(binary.BigEndian.Uint32(body[i*4 : i*4+4]))
	}
	return e, nil
}

// ReadRIB reads a whole dump into a path set.
func ReadRIB(r io.Reader) (*bgp.PathSet, error) {
	rr := NewRIBReader(r)
	ps := bgp.NewPathSet(1024, 4096)
	for {
		e, err := rr.Read()
		if err == io.EOF {
			return ps, nil
		}
		if err != nil {
			return nil, err
		}
		ps.Append(e.Path)
	}
}
