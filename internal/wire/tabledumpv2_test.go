package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/communities"
)

// --- fixture helpers -------------------------------------------------

// mrtRec frames one MRT record: common header + body.
func mrtRec(typ, sub uint16, body []byte) []byte {
	rec := make([]byte, 12, 12+len(body))
	binary.BigEndian.PutUint32(rec[0:4], 42)
	binary.BigEndian.PutUint16(rec[4:6], typ)
	binary.BigEndian.PutUint16(rec[6:8], sub)
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(body)))
	return append(rec, body...)
}

// peerTableBody builds a PEER_INDEX_TABLE body with 4-byte-AS IPv4
// peers, one slot per given AS.
func peerTableBody(peers ...uint32) []byte {
	body := binary.BigEndian.AppendUint32(nil, 0x0a000001)
	body = binary.BigEndian.AppendUint16(body, 4)
	body = append(body, "view"...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(peers)))
	for i, a := range peers {
		body = append(body, 0x02)
		body = binary.BigEndian.AppendUint32(body, uint32(i+1))
		body = binary.BigEndian.AppendUint32(body, uint32(i+1))
		body = binary.BigEndian.AppendUint32(body, a)
	}
	return body
}

// seq4 encodes one AS_SEQUENCE segment of 4-byte ASNs.
func seq4(hops ...uint32) []byte {
	b := []byte{segSequence, byte(len(hops))}
	for _, h := range hops {
		b = binary.BigEndian.AppendUint32(b, h)
	}
	return b
}

// seq2 encodes one AS_SEQUENCE segment of 2-byte ASNs.
func seq2(hops ...uint16) []byte {
	b := []byte{segSequence, byte(len(hops))}
	for _, h := range hops {
		b = binary.BigEndian.AppendUint16(b, h)
	}
	return b
}

// ribEntry builds one RIB entry: peer index, originated time, optional
// path ID, and an attribute block.
func ribEntry(peerIdx uint16, pathID []byte, attrs []byte) []byte {
	b := binary.BigEndian.AppendUint16(nil, peerIdx)
	b = binary.BigEndian.AppendUint32(b, 42)
	b = append(b, pathID...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
	return append(b, attrs...)
}

// ribBody builds a RIB record body: sequence, prefix, entry count,
// entries.
func ribBody(bits uint8, prefix []byte, entries ...[]byte) []byte {
	body := binary.BigEndian.AppendUint32(nil, 7)
	body = append(body, bits)
	body = append(body, prefix...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(entries)))
	for _, e := range entries {
		body = append(body, e...)
	}
	return body
}

// pathAttrs builds a minimal valid attribute block: ORIGIN + AS_PATH.
func pathAttrs(asPath []byte) []byte {
	ab := appendAttr(nil, flagTransitive, attrOrigin, []byte{0})
	return appendAttr(ab, flagTransitive, attrASPath, asPath)
}

// drain reads entries until the stream ends, splitting outcomes into
// admitted entries, in-sync bad records, and the terminal error.
func drain(t *testing.T, tr *TableDumpReader) (entries []RIBEntry, bad []error, terminal error) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		e, err := tr.Read()
		switch {
		case err == nil:
			entries = append(entries, e)
		case errors.Is(err, io.EOF):
			return entries, bad, io.EOF
		default:
			var bre *BadRecordError
			if errors.As(err, &bre) {
				bad = append(bad, err)
				continue
			}
			return entries, bad, err
		}
	}
	t.Fatal("reader did not terminate within 10000 reads")
	return nil, nil, nil
}

// --- round trips -----------------------------------------------------

func TestTableDumpV2RoundTrip(t *testing.T) {
	ps := bgp.NewPathSet(3, 16)
	ps.Append(asgraph.Path{100, 10, 1})
	ps.Append(asgraph.Path{200, 20, 2, 90000000})
	ps.Append(asgraph.Path{100, 30, 3})

	var buf bytes.Buffer
	if err := WriteTableDumpV2(&buf, ps, 42); err != nil {
		t.Fatalf("WriteTableDumpV2: %v", err)
	}
	tr := NewTableDumpReader(bytes.NewReader(buf.Bytes()))
	entries, bad, term := drain(t, tr)
	if term != io.EOF || len(bad) != 0 {
		t.Fatalf("terminal = %v, bad = %v", term, bad)
	}
	if len(entries) != ps.Len() {
		t.Fatalf("decoded %d entries, want %d", len(entries), ps.Len())
	}
	for i, e := range entries {
		want := ps.At(i)
		if e.Path.String() != want.String() {
			t.Errorf("entry %d path = %v, want %v", i, e.Path, want)
		}
		if e.Prefix != PrefixForAS(want.Origin()) {
			t.Errorf("entry %d prefix = %v, want %v", i, e.Prefix, PrefixForAS(want.Origin()))
		}
		if len(e.LargeCommunities) != 1 ||
			e.LargeCommunities[0] != (LargeCommunity{Global: want[0], Data1: 1, Data2: uint32(want.Origin())}) {
			t.Errorf("entry %d large communities = %v", i, e.LargeCommunities)
		}
		if want[0].Is16Bit() && (len(e.Communities) != 1 ||
			e.Communities[0] != (communities.Community{ASN: want[0], Value: 100})) {
			t.Errorf("entry %d communities = %v", i, e.Communities)
		}
	}
}

func TestTableDumpV2IPv6RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTableDumpWriter(&buf, 42, []asn.ASN{100})
	if err != nil {
		t.Fatal(err)
	}
	p := Prefix{Bits: 48, V6: true}
	p.Addr[0], p.Addr[1], p.Addr[5] = 0x20, 0x01, 0xab
	if err := tw.Write(RIBEntry{Prefix: p, Path: asgraph.Path{100, 10, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr := NewTableDumpReader(bytes.NewReader(buf.Bytes()))
	entries, bad, term := drain(t, tr)
	if term != io.EOF || len(bad) != 0 || len(entries) != 1 {
		t.Fatalf("entries=%d bad=%v term=%v", len(entries), bad, term)
	}
	if entries[0].Prefix != p {
		t.Errorf("prefix = %v, want %v", entries[0].Prefix, p)
	}
	if !entries[0].Prefix.V6 {
		t.Error("V6 flag lost")
	}
}

func TestTableDumpV2MultiEntryRecord(t *testing.T) {
	// The writer emits single-entry records; real collectors pack many
	// entries per prefix. Hand-build a 3-entry record.
	e0 := ribEntry(0, nil, pathAttrs(seq4(100, 10, 1)))
	e1 := ribEntry(1, nil, pathAttrs(seq4(200, 10, 1)))
	e2 := ribEntry(2, nil, pathAttrs(seq4(300, 20, 1)))
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100, 200, 300))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast, ribBody(24, []byte{10, 0, 0}, e0, e1, e2))...)

	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bad, term := drain(t, tr)
	if term != io.EOF || len(bad) != 0 {
		t.Fatalf("terminal = %v, bad = %v", term, bad)
	}
	if len(entries) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(entries))
	}
	for i, want := range []string{"100 10 1", "200 10 1", "300 20 1"} {
		if got := entries[i].Path.String(); got != want {
			t.Errorf("entry %d path = %q, want %q", i, got, want)
		}
		if entries[i].Prefix.Bits != 24 || entries[i].Prefix.Addr[0] != 10 {
			t.Errorf("entry %d prefix = %v", i, entries[i].Prefix)
		}
	}
	// All three entries share one MRT frame but have distinct indices.
	if tr.Index() != 2 {
		t.Errorf("Index() = %d, want 2", tr.Index())
	}
}

func TestTableDumpV2AddPath(t *testing.T) {
	pathID := binary.BigEndian.AppendUint32(nil, 0xdeadbeef)
	e := ribEntry(0, pathID, pathAttrs(seq4(100, 1)))
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4UnicastAddPath, ribBody(8, []byte{10}, e))...)

	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bad, term := drain(t, tr)
	if term != io.EOF || len(bad) != 0 || len(entries) != 1 {
		t.Fatalf("entries=%d bad=%v term=%v", len(entries), bad, term)
	}
	if entries[0].PathID != 0xdeadbeef {
		t.Errorf("PathID = %#x, want 0xdeadbeef", entries[0].PathID)
	}
	if entries[0].Path.String() != "100 1" {
		t.Errorf("path = %v", entries[0].Path)
	}
}

// --- AS_PATH decoding ------------------------------------------------

func TestTableDumpV2ASPathSemantics(t *testing.T) {
	cases := []struct {
		name     string
		asPath   []byte
		as4Path  []byte
		wantPath string
		wantSets int
	}{
		{
			name:     "prepends collapse",
			asPath:   seq4(100, 100, 100, 10, 1, 1),
			wantPath: "100 10 1",
		},
		{
			name:     "single-member AS_SET is a hop",
			asPath:   append(seq4(100, 10), segSet, 1, 0, 0, 0, 7),
			wantPath: "100 10 7",
		},
		{
			name: "multi-member AS_SET only counted",
			asPath: append(seq4(100, 10),
				segSet, 2, 0, 0, 0, 7, 0, 0, 0, 8),
			wantPath: "100 10",
			wantSets: 1,
		},
		{
			name: "confederation segments skipped",
			asPath: append(append([]byte{segConfedSequence, 1, 0, 0, 0, 9},
				seq4(100, 10, 1)...), segConfedSet, 1, 0, 0, 0, 9),
			wantPath: "100 10 1",
		},
		{
			name:     "2-byte AS_PATH with AS_TRANS, AS4_PATH splices the tail",
			asPath:   seq2(100, 200, 23456),
			as4Path:  seq4(200, 90000000),
			wantPath: "100 200 90000000",
		},
		{
			name:     "AS4_PATH longer than AS_PATH is ignored",
			asPath:   seq2(100, 23456),
			as4Path:  seq4(100, 200, 90000000),
			wantPath: "100 23456",
		},
		{
			name:     "AS4_PATH ignored when AS_PATH already 4-byte",
			asPath:   seq4(100, 200, 300),
			as4Path:  seq4(999, 998),
			wantPath: "100 200 300",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			attrs := appendAttr(nil, flagTransitive, attrOrigin, []byte{0})
			attrs = appendAttr(attrs, flagTransitive, attrASPath, tc.asPath)
			if tc.as4Path != nil {
				attrs = appendAttr(attrs, flagOptional|flagTransitive, attrAS4Path, tc.as4Path)
			}
			var e RIBEntry
			if err := parseRIBAttrs(attrs, &e); err != nil {
				t.Fatalf("parseRIBAttrs: %v", err)
			}
			if got := e.Path.String(); got != tc.wantPath {
				t.Errorf("path = %q, want %q", got, tc.wantPath)
			}
			if e.ASSets != tc.wantSets {
				t.Errorf("ASSets = %d, want %d", e.ASSets, tc.wantSets)
			}
		})
	}
}

func TestTableDumpV2ASPathErrors(t *testing.T) {
	cases := map[string][]byte{
		"no AS_PATH":            appendAttr(nil, flagTransitive, attrOrigin, []byte{0}),
		"segment header short":  pathAttrs([]byte{segSequence}),
		"segment members short": pathAttrs([]byte{segSequence, 3, 0, 0, 0, 1}),
		"bad segment type":      pathAttrs([]byte{9, 1, 0, 0, 0, 1}),
		"TLV overruns block":    {flagTransitive, attrASPath, 200, 0},
		"TLV header short":      {flagTransitive},
		"ext-len header short":  {flagTransitive | flagExtLen, attrASPath, 0},
		"bad classic communities": append(pathAttrs(seq4(1, 2)),
			appendAttr(nil, flagOptional|flagTransitive, attrCommunities, []byte{1, 2, 3})...),
		"bad large communities": append(pathAttrs(seq4(1, 2)),
			appendAttr(nil, flagOptional|flagTransitive, attrLargeCommunities, make([]byte, 13))...),
	}
	for name, attrs := range cases {
		var e RIBEntry
		err := parseRIBAttrs(attrs, &e)
		if !errors.Is(err, ErrBadAttribute) {
			t.Errorf("%s: err = %v, want ErrBadAttribute", name, err)
		}
	}
}

// --- damage classification -------------------------------------------

// validDump builds peer table + two single-entry RIB records and
// returns the serialized dump plus the offset of the second RIB record.
func validDump() (dump []byte, secondRec int) {
	dump = mrtRec(mrtType, subPeerIndexTable, peerTableBody(100, 200))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(24, []byte{10, 0, 0}, ribEntry(0, nil, pathAttrs(seq4(100, 10, 1)))))...)
	secondRec = len(dump)
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(24, []byte{10, 0, 1}, ribEntry(1, nil, pathAttrs(seq4(200, 20, 2)))))...)
	return dump, secondRec
}

func TestTableDumpV2BadAttributeFlagsInSync(t *testing.T) {
	dump, _ := validDump()
	// Flip the extended-length bit on the first RIB record's ORIGIN
	// attribute: the TLV walk misreads lengths and the entry dies, but
	// the record framing is intact so the second record still decodes.
	firstRIB := len(mrtRec(mrtType, subPeerIndexTable, peerTableBody(100, 200)))
	// Body layout: seq(4) pl(1) prefix(3) count(2) peer(2) time(4) alen(2) attrs.
	attrOff := firstRIB + 12 + 4 + 1 + 3 + 2 + 2 + 4 + 2
	bad := append([]byte(nil), dump...)
	bad[attrOff] ^= flagExtLen

	tr := NewTableDumpReader(bytes.NewReader(bad))
	entries, bads, term := drain(t, tr)
	if term != io.EOF {
		t.Fatalf("terminal = %v, want EOF", term)
	}
	if len(bads) != 1 || !errors.Is(bads[0], ErrBadAttribute) {
		t.Fatalf("bad records = %v, want one ErrBadAttribute", bads)
	}
	if len(entries) != 1 || entries[0].Path.String() != "200 20 2" {
		t.Fatalf("surviving entries = %v, want the second record's", entries)
	}
}

func TestTableDumpV2BadPeerReferenceInSync(t *testing.T) {
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast, ribBody(8, []byte{10},
		ribEntry(7, nil, pathAttrs(seq4(100, 1))), // slot 7 of a 1-peer table
		ribEntry(0, nil, pathAttrs(seq4(100, 2)))))...)

	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bads, term := drain(t, tr)
	if term != io.EOF {
		t.Fatalf("terminal = %v, want EOF", term)
	}
	if len(bads) != 1 || !errors.Is(bads[0], ErrBadPeerIndex) {
		t.Fatalf("bad records = %v, want one ErrBadPeerIndex", bads)
	}
	if len(entries) != 1 || entries[0].Path.String() != "100 2" {
		t.Fatalf("surviving entries = %v", entries)
	}
}

func TestTableDumpV2CorruptPeerTableDesyncs(t *testing.T) {
	body := peerTableBody(100, 200)
	body[4+2+4] = 9 // declared peer count 9, body holds 2
	dump := mrtRec(mrtType, subPeerIndexTable, body)
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(8, []byte{10}, ribEntry(0, nil, pathAttrs(seq4(100, 1)))))...)

	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bads, term := drain(t, tr)
	if !errors.Is(term, ErrBadPeerIndex) {
		t.Fatalf("terminal = %v, want ErrBadPeerIndex desync", term)
	}
	var bre *BadRecordError
	if errors.As(term, &bre) {
		t.Fatal("corrupt peer table classified as skippable")
	}
	if len(entries) != 0 || len(bads) != 0 {
		t.Fatalf("entries=%v bads=%v after desync", entries, bads)
	}
}

func TestTableDumpV2RIBBeforeTableDesyncs(t *testing.T) {
	dump := mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(8, []byte{10}, ribEntry(0, nil, pathAttrs(seq4(100, 1)))))
	tr := NewTableDumpReader(bytes.NewReader(dump))
	_, _, term := drain(t, tr)
	if !errors.Is(term, ErrBadPeerIndex) {
		t.Fatalf("terminal = %v, want ErrBadPeerIndex", term)
	}
}

func TestTableDumpV2UnsupportedSubtypesInSync(t *testing.T) {
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Multicast, []byte{1, 2, 3})...)
	dump = append(dump, mrtRec(mrtType, subRIBGeneric, []byte{})...)
	dump = append(dump, mrtRec(16, 4, []byte{9, 9})...) // BGP4MP
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(8, []byte{10}, ribEntry(0, nil, pathAttrs(seq4(100, 1)))))...)

	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bads, term := drain(t, tr)
	if term != io.EOF {
		t.Fatalf("terminal = %v, want EOF", term)
	}
	if len(bads) != 3 {
		t.Fatalf("bad records = %d, want 3", len(bads))
	}
	for i, b := range bads {
		if !errors.Is(b, ErrUnsupportedSubtype) {
			t.Errorf("bad %d = %v, want ErrUnsupportedSubtype", i, b)
		}
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
}

func TestTableDumpV2OversizeDesyncs(t *testing.T) {
	hdr := mrtRec(mrtType, subRIBIPv4Unicast, nil)[:12]
	binary.BigEndian.PutUint32(hdr[8:12], maxTableDumpBody+1)
	tr := NewTableDumpReader(bytes.NewReader(hdr))
	_, _, term := drain(t, tr)
	if !errors.Is(term, ErrOversize) {
		t.Fatalf("terminal = %v, want ErrOversize", term)
	}
}

func TestTableDumpV2TrailingBytesAfterEntries(t *testing.T) {
	body := ribBody(8, []byte{10}, ribEntry(0, nil, pathAttrs(seq4(100, 1))))
	body = append(body, 0xfe, 0xfd) // junk the entry count does not cover
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast, body)...)
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(8, []byte{11}, ribEntry(0, nil, pathAttrs(seq4(100, 2)))))...)

	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bads, term := drain(t, tr)
	if term != io.EOF {
		t.Fatalf("terminal = %v", term)
	}
	if len(bads) != 1 || !errors.Is(bads[0], ErrBadAttribute) {
		t.Fatalf("bad records = %v, want one trailing-bytes ErrBadAttribute", bads)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (both real entries survive)", len(entries))
	}
}

func TestTableDumpV2ZeroEntryRecord(t *testing.T) {
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast, ribBody(8, []byte{10}))...)
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(8, []byte{11}, ribEntry(0, nil, pathAttrs(seq4(100, 1)))))...)
	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bads, term := drain(t, tr)
	if term != io.EOF || len(bads) != 0 || len(entries) != 1 {
		t.Fatalf("entries=%d bads=%v term=%v", len(entries), bads, term)
	}
}

func TestTableDumpV2BadPrefixLength(t *testing.T) {
	// /40 in an IPv4 record: in-sync bad attribute, file continues.
	dump := mrtRec(mrtType, subPeerIndexTable, peerTableBody(100))
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(40, []byte{1, 2, 3, 4, 5}, ribEntry(0, nil, pathAttrs(seq4(100, 1)))))...)
	dump = append(dump, mrtRec(mrtType, subRIBIPv4Unicast,
		ribBody(8, []byte{10}, ribEntry(0, nil, pathAttrs(seq4(100, 2)))))...)
	tr := NewTableDumpReader(bytes.NewReader(dump))
	entries, bads, term := drain(t, tr)
	if term != io.EOF || len(bads) != 1 || !errors.Is(bads[0], ErrBadAttribute) {
		t.Fatalf("entries=%d bads=%v term=%v", len(entries), bads, term)
	}
	if len(entries) != 1 || entries[0].Path.String() != "100 2" {
		t.Fatalf("surviving entries = %v", entries)
	}
}

// TestTableDumpV2TruncationSweep cuts a valid dump at every byte
// offset. The reader must terminate without panicking; a cut on a
// record boundary is a clean EOF, anywhere else a desynchronizing
// ErrTruncated.
func TestTableDumpV2TruncationSweep(t *testing.T) {
	dump, _ := validDump()
	boundaries := map[int]bool{0: true, len(dump): true}
	for off := 0; off+12 <= len(dump); {
		blen := int(binary.BigEndian.Uint32(dump[off+8 : off+12]))
		off += 12 + blen
		boundaries[off] = true
	}
	for n := 0; n <= len(dump); n++ {
		tr := NewTableDumpReader(bytes.NewReader(dump[:n]))
		_, _, term := drain(t, tr)
		if boundaries[n] {
			if term != io.EOF {
				t.Fatalf("cut at boundary %d: terminal = %v, want EOF", n, term)
			}
		} else if !errors.Is(term, ErrTruncated) {
			t.Fatalf("cut at %d: terminal = %v, want ErrTruncated", n, term)
		}
	}
}

// --- format detection ------------------------------------------------

func TestDetectFormat(t *testing.T) {
	internal := func() []byte {
		ps := bgp.NewPathSet(1, 4)
		ps.Append(asgraph.Path{100, 10, 1})
		var buf bytes.Buffer
		if err := WriteRIB(&buf, ps, 42); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	v2 := func() []byte {
		ps := bgp.NewPathSet(1, 4)
		ps.Append(asgraph.Path{100, 10, 1})
		var buf bytes.Buffer
		if err := WriteTableDumpV2(&buf, ps, 42); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	v2NoTable, _ := validDump() // leads with a peer table too
	_ = v2NoTable

	cases := []struct {
		name string
		peek []byte
		want Format
	}{
		{"internal dump", internal, FormatInternal},
		{"v2 dump (peer table first)", v2, FormatTableDumpV2},
		{"empty", nil, FormatInternal},
		{"short", []byte{1, 2, 3}, FormatInternal},
		{"garbage type", mrtRec(999, 2, []byte{1, 2, 3}), FormatInternal},
		{"BGP4MP leads", mrtRec(16, 4, []byte{1}), FormatTableDumpV2},
		{"TABLE_DUMP v1 leads", mrtRec(12, 1, []byte{1}), FormatTableDumpV2},
		{"v6 unicast leads", mrtRec(mrtType, subRIBIPv6Unicast, []byte{1}), FormatTableDumpV2},
		{"addpath leads", mrtRec(mrtType, subRIBIPv4UnicastAddPath, []byte{1}), FormatTableDumpV2},
		{"rfc rib body, no table", func() []byte {
			d, _ := validDump()
			return d[len(mrtRec(mrtType, subPeerIndexTable, peerTableBody(100, 200))):]
		}(), FormatTableDumpV2},
	}
	for _, tc := range cases {
		got, err := DetectFormat(tc.peek)
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: format = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDetectFormatAmbiguous constructs the one overlapping code point:
// a type-13/subtype-2 record whose 37-byte body walks as both an
// internal RIB body (bits=24, 8 hops) and an RFC 6396 RIB_IPV4_UNICAST
// body (pl=8, 1 entry, attrLen=21).
func TestDetectFormatAmbiguous(t *testing.T) {
	body := make([]byte, 37)
	body[0] = 24  // internal: prefix bits (3 prefix bytes follow)
	body[4] = 8   // internal: hop count / rfc: prefix length
	body[7] = 1   // rfc: entry count (low byte)
	body[15] = 21 // rfc: attribute length (low byte)
	if !internalBodyShape(body) {
		t.Fatal("crafted body does not walk as internal framing")
	}
	if !ribV4BodyShape(body) {
		t.Fatal("crafted body does not walk as an RFC RIB body")
	}
	_, err := DetectFormat(mrtRec(mrtType, subRIBIPv4Unicast, body))
	if !errors.Is(err, ErrAmbiguousFormat) {
		t.Fatalf("err = %v, want ErrAmbiguousFormat", err)
	}
}

func TestNewAutoReader(t *testing.T) {
	ps := bgp.NewPathSet(2, 8)
	ps.Append(asgraph.Path{100, 10, 1})
	ps.Append(asgraph.Path{200, 20, 2})

	var ibuf, vbuf bytes.Buffer
	if err := WriteRIB(&ibuf, ps, 42); err != nil {
		t.Fatal(err)
	}
	if err := WriteTableDumpV2(&vbuf, ps, 42); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
		want Format
	}{
		{"internal", ibuf.Bytes(), FormatInternal},
		{"tabledumpv2", vbuf.Bytes(), FormatTableDumpV2},
	} {
		rr, f, err := NewAutoReader(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if f != tc.want {
			t.Fatalf("%s: format = %v, want %v", tc.name, f, tc.want)
		}
		var paths []string
		for {
			e, err := rr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			paths = append(paths, e.Path.String())
		}
		if len(paths) != 2 || paths[0] != "100 10 1" || paths[1] != "200 20 2" {
			t.Fatalf("%s: paths = %v", tc.name, paths)
		}
	}

	// An ambiguous leading record surfaces the typed error.
	body := make([]byte, 37)
	body[0], body[4], body[7], body[15] = 24, 8, 1, 21
	_, _, err := NewAutoReader(bytes.NewReader(mrtRec(mrtType, subRIBIPv4Unicast, body)))
	if !errors.Is(err, ErrAmbiguousFormat) {
		t.Fatalf("err = %v, want ErrAmbiguousFormat", err)
	}
}

func TestTableDumpWriterRejections(t *testing.T) {
	if _, err := NewTableDumpWriter(io.Discard, 1, []asn.ASN{7, 7}); err == nil {
		t.Error("duplicate peer accepted")
	}
	tw, err := NewTableDumpWriter(io.Discard, 1, []asn.ASN{100})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(RIBEntry{Prefix: PrefixForAS(1)}); err == nil {
		t.Error("empty path accepted")
	}
	if err := tw.Write(RIBEntry{Prefix: PrefixForAS(1), Path: asgraph.Path{999, 1}}); err == nil {
		t.Error("vantage point outside the peer table accepted")
	}
	if err := tw.Write(RIBEntry{Prefix: PrefixForAS(1), Path: asgraph.Path{100, 1},
		Communities: []communities.Community{{ASN: 90000000, Value: 1}}}); err == nil {
		t.Error("32-bit ASN accepted in a classic community")
	}
}
