// Package wire implements binary codecs for the routing data the
// pipeline exchanges on disk and over pipes: a simplified BGP UPDATE
// message (RFC 4271 framing with ORIGIN, AS_PATH — 4-byte ASNs per RFC
// 6793 — NEXT_HOP and COMMUNITIES attributes) and an MRT-style
// container for RIB snapshots (inspired by RFC 6396's TABLE_DUMP_V2).
//
// The codecs cover exactly the feature subset the AS-relationship
// pipeline needs; they are not a full BGP implementation, but the
// framing matches the real wire formats so real-world tooling concepts
// (marker, attribute flags, prefix encoding) carry over.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/communities"
)

// BGP message framing constants (RFC 4271).
const (
	markerLen     = 16
	headerLen     = 19
	maxMessageLen = 4096

	// TypeUpdate is the BGP UPDATE message type code.
	TypeUpdate = 2
)

// Path attribute type codes.
const (
	attrOrigin           = 1
	attrASPath           = 2
	attrNextHop          = 3
	attrMPReachNLRI      = 14
	attrAS4Path          = 17
	attrCommunities      = 8
	attrLargeCommunities = 32
)

// AS_PATH segment types.
const (
	segSet            = 1
	segSequence       = 2
	segConfedSequence = 3
	segConfedSet      = 4
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Prefix is an NLRI prefix. The address array is 16 bytes so one type
// covers both families; V6 distinguishes an IPv6 prefix from an IPv4
// one (whose address occupies the first four bytes). The simplified
// UPDATE codec only ever carries IPv4; TABLE_DUMP_V2 RIB records carry
// both.
type Prefix struct {
	Addr [16]byte
	Bits uint8
	V6   bool
}

// String implements fmt.Stringer.
func (p Prefix) String() string {
	if p.V6 {
		return fmt.Sprintf("%s/%d", netipString(p.Addr), p.Bits)
	}
	return fmt.Sprintf("%d.%d.%d.%d/%d", p.Addr[0], p.Addr[1], p.Addr[2], p.Addr[3], p.Bits)
}

// netipString renders a 16-byte address in uncompressed IPv6 colon
// notation (no stdlib netip dependency for one formatter).
func netipString(a [16]byte) string {
	var b []byte
	for i := 0; i < 16; i += 2 {
		if i > 0 {
			b = append(b, ':')
		}
		b = fmt.Appendf(b, "%x", uint16(a[i])<<8|uint16(a[i+1]))
	}
	return string(b)
}

// PrefixForAS returns the deterministic synthetic prefix the simulator
// assigns to an origin AS: one /24 from 10.0.0.0/8, unique for ASNs
// below 2^16 (the synthetic worlds allocate far less).
func PrefixForAS(a asn.ASN) Prefix {
	return Prefix{Addr: [16]byte{10, byte(a >> 8), byte(a), 0}, Bits: 24}
}

// LargeCommunity is an RFC 8092 large community; the canonical type
// lives beside the extraction model in internal/communities.
type LargeCommunity = communities.Large

// Update is a simplified BGP UPDATE: announced prefixes with one AS
// path, classic communities (16-bit admins) and large communities
// (32-bit admins). Withdrawals carry no attributes.
type Update struct {
	Withdrawn        []Prefix
	ASPath           asgraph.Path
	Communities      []communities.Community
	LargeCommunities []LargeCommunity
	NLRI             []Prefix
}

// ErrTruncated reports input that ends before its framing says it
// should: a short header, a body shorter than its declared length, or
// an attribute cut mid-value. Callers use errors.Is to distinguish a
// damaged transfer from malformed-but-complete data.
var ErrTruncated = errors.New("wire: truncated message")

// ErrOversize reports a declared length exceeding the format's bounds
// (maxMessageLen for BGP messages, maxRIBBody for MRT record bodies):
// corrupt framing, or hostile input trying to force a huge allocation.
var ErrOversize = errors.New("wire: oversized message")

// Marshal encodes the update with RFC 4271 framing (all-ones marker,
// length, type) and 4-byte AS numbers in AS_PATH.
func (u *Update) Marshal() ([]byte, error) {
	var body bytes.Buffer

	// Withdrawn routes.
	var wd bytes.Buffer
	for _, p := range u.Withdrawn {
		writePrefix(&wd, p)
	}
	if wd.Len() > 0xffff {
		return nil, errors.New("wire: withdrawn section too large")
	}
	binary.Write(&body, binary.BigEndian, uint16(wd.Len()))
	body.Write(wd.Bytes())

	// Path attributes.
	var attrs bytes.Buffer
	if len(u.NLRI) > 0 {
		writeAttr(&attrs, flagTransitive, attrOrigin, []byte{0}) // IGP
		var pb bytes.Buffer
		pb.WriteByte(segSequence)
		if len(u.ASPath) > 255 {
			return nil, errors.New("wire: AS path too long")
		}
		pb.WriteByte(byte(len(u.ASPath)))
		for _, a := range u.ASPath {
			binary.Write(&pb, binary.BigEndian, uint32(a))
		}
		writeAttr(&attrs, flagTransitive, attrASPath, pb.Bytes())
		writeAttr(&attrs, flagTransitive, attrNextHop, []byte{192, 0, 2, 1})
		if len(u.Communities) > 0 {
			for _, c := range u.Communities {
				if !c.ASN.Is16Bit() {
					return nil, fmt.Errorf("wire: community AS %d needs large communities", c.ASN)
				}
			}
			writeAttr(&attrs, flagOptional|flagTransitive, attrCommunities,
				communities.AppendClassic(nil, u.Communities))
		}
		if len(u.LargeCommunities) > 0 {
			writeAttr(&attrs, flagOptional|flagTransitive, attrLargeCommunities,
				communities.AppendLarge(nil, u.LargeCommunities))
		}
	}
	if attrs.Len() > 0xffff {
		return nil, errors.New("wire: attribute section too large")
	}
	binary.Write(&body, binary.BigEndian, uint16(attrs.Len()))
	body.Write(attrs.Bytes())

	for _, p := range u.NLRI {
		writePrefix(&body, p)
	}

	total := headerLen + body.Len()
	if total > maxMessageLen {
		return nil, fmt.Errorf("wire: message length %d exceeds %d", total, maxMessageLen)
	}
	out := make([]byte, 0, total)
	for i := 0; i < markerLen; i++ {
		out = append(out, 0xff)
	}
	out = append(out, byte(total>>8), byte(total), TypeUpdate)
	out = append(out, body.Bytes()...)
	return out, nil
}

func writeAttr(w *bytes.Buffer, flags, code byte, val []byte) {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	w.WriteByte(flags)
	w.WriteByte(code)
	if flags&flagExtLen != 0 {
		binary.Write(w, binary.BigEndian, uint16(len(val)))
	} else {
		w.WriteByte(byte(len(val)))
	}
	w.Write(val)
}

func writePrefix(w *bytes.Buffer, p Prefix) {
	w.WriteByte(p.Bits)
	n := int(p.Bits+7) / 8
	w.Write(p.Addr[:n])
}

// UnmarshalUpdate decodes one UPDATE message produced by Marshal (or
// by any speaker using the same attribute subset). It returns the
// parsed update and the number of bytes consumed.
func UnmarshalUpdate(b []byte) (*Update, int, error) {
	if len(b) < headerLen {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < markerLen; i++ {
		if b[i] != 0xff {
			return nil, 0, fmt.Errorf("wire: bad marker byte at %d", i)
		}
	}
	total := int(binary.BigEndian.Uint16(b[16:18]))
	if total > maxMessageLen {
		return nil, 0, fmt.Errorf("wire: bad message length %d: %w", total, ErrOversize)
	}
	if total < headerLen {
		return nil, 0, fmt.Errorf("wire: bad message length %d", total)
	}
	if len(b) < total {
		return nil, 0, ErrTruncated
	}
	if b[18] != TypeUpdate {
		return nil, 0, fmt.Errorf("wire: unexpected message type %d", b[18])
	}
	body := b[headerLen:total]
	u := &Update{}

	if len(body) < 2 {
		return nil, 0, ErrTruncated
	}
	wdLen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < wdLen {
		return nil, 0, ErrTruncated
	}
	wd := body[:wdLen]
	body = body[wdLen:]
	for len(wd) > 0 {
		p, n, err := readPrefix(wd)
		if err != nil {
			return nil, 0, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wd = wd[n:]
	}

	if len(body) < 2 {
		return nil, 0, ErrTruncated
	}
	atLen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < atLen {
		return nil, 0, ErrTruncated
	}
	attrs := body[:atLen]
	body = body[atLen:]
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, 0, ErrTruncated
		}
		flags, code := attrs[0], attrs[1]
		var vlen, off int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return nil, 0, ErrTruncated
			}
			vlen = int(binary.BigEndian.Uint16(attrs[2:4]))
			off = 4
		} else {
			vlen = int(attrs[2])
			off = 3
		}
		if len(attrs) < off+vlen {
			return nil, 0, ErrTruncated
		}
		val := attrs[off : off+vlen]
		attrs = attrs[off+vlen:]
		switch code {
		case attrASPath:
			if err := parseASPath(val, u); err != nil {
				return nil, 0, err
			}
		case attrCommunities:
			cs, err := communities.DecodeClassic(val)
			if err != nil {
				return nil, 0, fmt.Errorf("wire: %w", err)
			}
			u.Communities = append(u.Communities, cs...)
		case attrLargeCommunities:
			cs, err := communities.DecodeLarge(val)
			if err != nil {
				return nil, 0, fmt.Errorf("wire: %w", err)
			}
			u.LargeCommunities = append(u.LargeCommunities, cs...)
		}
	}

	for len(body) > 0 {
		p, n, err := readPrefix(body)
		if err != nil {
			return nil, 0, err
		}
		u.NLRI = append(u.NLRI, p)
		body = body[n:]
	}
	return u, total, nil
}

func parseASPath(val []byte, u *Update) error {
	for len(val) > 0 {
		if len(val) < 2 {
			return ErrTruncated
		}
		segType, count := val[0], int(val[1])
		if segType != segSequence {
			return fmt.Errorf("wire: unsupported AS_PATH segment type %d", segType)
		}
		need := 2 + count*4
		if len(val) < need {
			return ErrTruncated
		}
		for i := 0; i < count; i++ {
			u.ASPath = append(u.ASPath, asn.ASN(binary.BigEndian.Uint32(val[2+i*4:6+i*4])))
		}
		val = val[need:]
	}
	return nil
}

func readPrefix(b []byte) (Prefix, int, error) {
	if len(b) < 1 {
		return Prefix{}, 0, ErrTruncated
	}
	bits := b[0]
	if bits > 32 {
		return Prefix{}, 0, fmt.Errorf("wire: bad prefix length %d", bits)
	}
	n := int(bits+7) / 8
	if len(b) < 1+n {
		return Prefix{}, 0, ErrTruncated
	}
	var p Prefix
	p.Bits = bits
	copy(p.Addr[:], b[1:1+n])
	return p, 1 + n, nil
}
