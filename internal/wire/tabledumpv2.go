package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/communities"
)

// Real RFC 6396 TABLE_DUMP_V2 decoding: peer-index tables, multi-entry
// RIB records for both address families, RFC 8050 ADDPATH subtypes,
// BGP path-attribute TLV walking, AS_PATH segment decoding with RFC
// 6793 AS4_PATH reconciliation, and COMMUNITIES/LARGE_COMMUNITIES
// extraction. The decoder is built for hostile input: every malformed
// construct either comes back as a skippable *BadRecordError (the
// frame was fully consumed, the stream is still in sync) or as a
// desynchronizing sentinel error (the remaining bytes cannot be
// attributed to record boundaries), exactly the contract the internal
// framing reader already gives internal/ingest.

// TABLE_DUMP_V2 subtype codes (RFC 6396 §4.3, RFC 6397 §3, RFC 8050
// §4). Only the unicast RIB subtypes carry link evidence; the rest
// are recognized so they can be skipped with attribution instead of
// desynchronizing the file.
const (
	subPeerIndexTable          = 1
	subRIBIPv4Unicast          = 2
	subRIBIPv4Multicast        = 3
	subRIBIPv6Unicast          = 4
	subRIBIPv6Multicast        = 5
	subRIBGeneric              = 6
	subGeoPeerTable            = 7
	subRIBIPv4UnicastAddPath   = 8
	subRIBIPv4MulticastAddPath = 9
	subRIBIPv6UnicastAddPath   = 10
	subRIBIPv6MulticastAddPath = 11
)

// maxTableDumpBody bounds a real TABLE_DUMP_V2 record body. Collector
// peer-index tables and heavily announced prefixes run to hundreds of
// kilobytes; 1 MiB covers them while still refusing corrupt length
// fields that would drive a multi-gigabyte allocation.
const maxTableDumpBody = 1 << 20

// ErrBadAttribute reports a malformed BGP path-attribute block inside
// a complete frame: a TLV header or value overrunning its region, a
// bad segment type, a community block of the wrong granularity. The
// damage is confined to one RIB entry; the stream stays in sync.
var ErrBadAttribute = errors.New("wire: malformed path attribute")

// ErrBadPeerIndex reports peer-index damage. Inside a complete RIB
// entry (a reference beyond the table) it is skippable; a corrupt
// PEER_INDEX_TABLE record, or a RIB record arriving before any table,
// desynchronizes the file — without the table no later entry can be
// attributed to a vantage point.
var ErrBadPeerIndex = errors.New("wire: bad peer index")

// ErrUnsupportedSubtype reports a well-framed MRT record whose
// type/subtype the pipeline does not consume (multicast RIBs,
// RIB_GENERIC, BGP4MP, geo peer tables). The frame is consumed and
// the stream stays in sync.
var ErrUnsupportedSubtype = errors.New("wire: unsupported MRT record type")

// TableDumpReader streams RIB entries out of a real RFC 6396
// TABLE_DUMP_V2 dump. Records holding multiple RIB entries are
// unpacked one entry per Read call, so Index() is entry-granular —
// the same unit internal/ingest counts, budgets and ledgers.
type TableDumpReader struct {
	r     *bufio.Reader
	frame []byte // scratch: header+body of the current MRT record
	flen  int
	n     int // entries attempted (Read calls)

	peers     []asn.ASN
	havePeers bool

	// Iteration state for the current RIB record.
	body    []byte // aliases frame[12:flen]; nil between records
	off     int
	left    int // entries remaining in the current record
	addPath bool
	prefix  Prefix
}

// NewTableDumpReader wraps r.
func NewTableDumpReader(r io.Reader) *TableDumpReader {
	return &TableDumpReader{r: bufio.NewReader(r)}
}

// Index reports the zero-based index of the RIB entry the last Read
// call attempted, or -1 before the first call.
func (tr *TableDumpReader) Index() int { return tr.n - 1 }

// LastFrame returns the raw header+body bytes of the MRT record the
// last Read call was positioned in (entries of a multi-entry record
// share one frame). The slice aliases the reader's scratch buffer and
// is only valid until the next Read.
func (tr *TableDumpReader) LastFrame() []byte { return tr.frame[:tr.flen] }

func (tr *TableDumpReader) bad(err error) error {
	return &BadRecordError{Index: tr.n - 1, Err: err}
}

// Read returns the next RIB entry, io.EOF at a clean end of stream, a
// *BadRecordError for in-sync damage, or a desynchronizing error
// (ErrTruncated, ErrOversize, a corrupt peer-index table via
// ErrBadPeerIndex) after which the file must be abandoned.
func (tr *TableDumpReader) Read() (RIBEntry, error) {
	tr.n++
	for {
		if tr.left > 0 {
			return tr.entry()
		}
		if tr.body != nil && tr.off != len(tr.body) {
			trailing := len(tr.body) - tr.off
			tr.body = nil
			return RIBEntry{}, tr.bad(fmt.Errorf(
				"%d trailing bytes after last RIB entry: %w", trailing, ErrBadAttribute))
		}
		tr.body = nil
		err := tr.nextRecord()
		switch {
		case err == nil:
			// A record was loaded (possibly with zero entries) or a
			// peer-index table was absorbed; loop.
		case errors.Is(err, io.EOF):
			tr.n--
			return RIBEntry{}, io.EOF
		default:
			return RIBEntry{}, err
		}
	}
}

// nextRecord reads one MRT record. It returns nil after absorbing a
// peer-index table or loading a RIB record's entry iterator, io.EOF at
// a clean end of stream, *BadRecordError for skippable whole-record
// damage, and a bare sentinel error for desyncs and I/O failures.
func (tr *TableDumpReader) nextRecord() error {
	if tr.frame == nil {
		tr.frame = make([]byte, 12+maxRIBBody)
	}
	tr.flen = 0
	hdr := tr.frame[:12]
	if n, err := io.ReadFull(tr.r, hdr); err != nil {
		tr.flen = n
		if n == 0 && errors.Is(err, io.EOF) {
			return io.EOF
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrTruncated
		}
		return err
	}
	tr.flen = 12
	bodyLen := int(binary.BigEndian.Uint32(hdr[8:12]))
	if bodyLen > maxTableDumpBody {
		// The length field itself is untrustworthy: consuming bodyLen
		// bytes could skip anything, so the stream is lost.
		return fmt.Errorf("wire: bad record length %d: %w", bodyLen, ErrOversize)
	}
	if cap(tr.frame) < 12+bodyLen {
		nf := make([]byte, 12+bodyLen)
		copy(nf, tr.frame[:12])
		tr.frame = nf
	}
	body := tr.frame[12 : 12+bodyLen]
	if n, err := io.ReadFull(tr.r, body); err != nil {
		tr.flen += n
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrTruncated
		}
		return err
	}
	tr.flen += bodyLen

	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	if typ != mrtType {
		return tr.bad(fmt.Errorf("MRT type %d: %w", typ, ErrUnsupportedSubtype))
	}
	switch sub {
	case subPeerIndexTable:
		peers, err := parsePeerTable(body)
		if err != nil {
			// Every later entry resolves vantage points through this
			// table; if it cannot be trusted the whole file is lost.
			return err
		}
		tr.peers, tr.havePeers = peers, true
		return nil
	case subRIBIPv4Unicast, subRIBIPv6Unicast,
		subRIBIPv4UnicastAddPath, subRIBIPv6UnicastAddPath:
		if !tr.havePeers {
			return fmt.Errorf("wire: RIB record before any PEER_INDEX_TABLE: %w", ErrBadPeerIndex)
		}
		return tr.loadRIBRecord(sub, body)
	default:
		return tr.bad(fmt.Errorf("TABLE_DUMP_V2 subtype %d: %w", sub, ErrUnsupportedSubtype))
	}
}

// loadRIBRecord parses a RIB record's prelude (sequence, prefix, entry
// count) and arms the entry iterator.
func (tr *TableDumpReader) loadRIBRecord(sub uint16, body []byte) error {
	v6 := sub == subRIBIPv6Unicast || sub == subRIBIPv6UnicastAddPath
	addPath := sub == subRIBIPv4UnicastAddPath || sub == subRIBIPv6UnicastAddPath
	if len(body) < 5 {
		return tr.bad(fmt.Errorf("RIB record prelude cut short: %w", ErrTruncated))
	}
	bits := body[4]
	maxBits := uint8(32)
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return tr.bad(fmt.Errorf("prefix length %d exceeds /%d: %w", bits, maxBits, ErrBadAttribute))
	}
	pb := (int(bits) + 7) / 8
	if len(body) < 5+pb+2 {
		return tr.bad(fmt.Errorf("RIB record prelude cut short: %w", ErrTruncated))
	}
	var p Prefix
	p.Bits, p.V6 = bits, v6
	copy(p.Addr[:], body[5:5+pb])
	tr.body = body
	tr.off = 5 + pb + 2
	tr.left = int(binary.BigEndian.Uint16(body[5+pb : 5+pb+2]))
	tr.addPath = addPath
	tr.prefix = p
	return nil
}

// entry pops the next RIB entry off the current record. Entry-framing
// truncation abandons the rest of the record (one BadRecordError
// covers the tail) but not the file; attribute and peer-reference
// damage is confined to the one entry.
func (tr *TableDumpReader) entry() (RIBEntry, error) {
	b := tr.body
	hdr := 8 // peer index (2) + originated time (4) + attr length (2)
	if tr.addPath {
		hdr = 12 // + path identifier (4), RFC 8050 §4
	}
	if tr.off+hdr > len(b) {
		tr.left, tr.off = 0, len(b)
		return RIBEntry{}, tr.bad(fmt.Errorf("RIB entry header cut short: %w", ErrTruncated))
	}
	peerIdx := int(binary.BigEndian.Uint16(b[tr.off : tr.off+2]))
	var pathID uint32
	if tr.addPath {
		pathID = binary.BigEndian.Uint32(b[tr.off+6 : tr.off+10])
	}
	attrLen := int(binary.BigEndian.Uint16(b[tr.off+hdr-2 : tr.off+hdr]))
	aoff := tr.off + hdr
	if aoff+attrLen > len(b) {
		have := len(b) - aoff
		tr.left, tr.off = 0, len(b)
		return RIBEntry{}, tr.bad(fmt.Errorf(
			"attribute block needs %d bytes, record has %d: %w", attrLen, have, ErrTruncated))
	}
	attrs := b[aoff : aoff+attrLen]
	tr.off = aoff + attrLen
	tr.left--
	if peerIdx >= len(tr.peers) {
		return RIBEntry{}, tr.bad(fmt.Errorf(
			"entry references peer %d of a %d-peer table: %w", peerIdx, len(tr.peers), ErrBadPeerIndex))
	}
	e := RIBEntry{Prefix: tr.prefix, PathID: pathID}
	if err := parseRIBAttrs(attrs, &e); err != nil {
		return RIBEntry{}, tr.bad(err)
	}
	return e, nil
}

// parsePeerTable decodes a PEER_INDEX_TABLE body into the per-peer AS
// column. Any inconsistency wraps ErrBadPeerIndex and desynchronizes
// the file.
func parsePeerTable(body []byte) ([]asn.ASN, error) {
	bad := func(format string, args ...any) ([]asn.ASN, error) {
		return nil, fmt.Errorf("wire: PEER_INDEX_TABLE "+format+": %w",
			append(args, ErrBadPeerIndex)...)
	}
	if len(body) < 6 {
		return bad("cut short (%d bytes)", len(body))
	}
	viewLen := int(binary.BigEndian.Uint16(body[4:6]))
	off := 6 + viewLen
	if off+2 > len(body) {
		return bad("view name overruns body")
	}
	count := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	peers := make([]asn.ASN, 0, count)
	for i := 0; i < count; i++ {
		if off >= len(body) {
			return bad("holds %d of %d declared peers", i, count)
		}
		pt := body[off]
		addrLen, asLen := 4, 2
		if pt&0x01 != 0 {
			addrLen = 16 // IPv6 peer address
		}
		if pt&0x02 != 0 {
			asLen = 4 // 4-byte peer AS
		}
		need := 1 + 4 + addrLen + asLen
		if off+need > len(body) {
			return bad("peer %d cut short", i)
		}
		asOff := off + 1 + 4 + addrLen
		var a asn.ASN
		if asLen == 2 {
			a = asn.ASN(binary.BigEndian.Uint16(body[asOff : asOff+2]))
		} else {
			a = asn.ASN(binary.BigEndian.Uint32(body[asOff : asOff+4]))
		}
		peers = append(peers, a)
		off += need
	}
	if off != len(body) {
		return bad("%d trailing bytes after peer %d", len(body)-off, count-1)
	}
	return peers, nil
}

// parseRIBAttrs walks the BGP path-attribute TLVs of one RIB entry,
// filling the entry's path and communities. Structural damage wraps
// ErrBadAttribute.
func parseRIBAttrs(attrs []byte, e *RIBEntry) error {
	var asPath, as4Path []byte
	seenASPath := false
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return fmt.Errorf("attribute TLV header cut short: %w", ErrBadAttribute)
		}
		flags, code := attrs[0], attrs[1]
		var vlen, off int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return fmt.Errorf("extended-length attribute header cut short: %w", ErrBadAttribute)
			}
			vlen = int(binary.BigEndian.Uint16(attrs[2:4]))
			off = 4
		} else {
			vlen = int(attrs[2])
			off = 3
		}
		if off+vlen > len(attrs) {
			return fmt.Errorf("attribute %d value needs %d bytes, block has %d: %w",
				code, vlen, len(attrs)-off, ErrBadAttribute)
		}
		val := attrs[off : off+vlen]
		attrs = attrs[off+vlen:]
		switch code {
		case attrASPath:
			asPath, seenASPath = val, true
		case attrAS4Path:
			as4Path = val
		case attrCommunities:
			cs, err := communities.DecodeClassic(val)
			if err != nil {
				return fmt.Errorf("%v: %w", err, ErrBadAttribute)
			}
			e.Communities = cs
		case attrLargeCommunities:
			cs, err := communities.DecodeLarge(val)
			if err != nil {
				return fmt.Errorf("%v: %w", err, ErrBadAttribute)
			}
			e.LargeCommunities = cs
		default:
			// ORIGIN, NEXT_HOP, MED, MP_REACH_NLRI (length-delimited in
			// its truncated TABLE_DUMP_V2 encoding), and every other
			// attribute: the TLV walk validated the framing; the value
			// carries nothing the relationship pipeline consumes.
		}
	}
	if !seenASPath {
		return fmt.Errorf("no AS_PATH attribute: %w", ErrBadAttribute)
	}
	hops, sets, twoByte, err := decodeASPath(asPath)
	if err != nil {
		return err
	}
	if as4Path != nil && twoByte {
		// RFC 6793 §4.2.3: an AS4_PATH no longer than the 2-byte
		// AS_PATH replaces its tail (the leading excess hops were added
		// by old speakers after aggregation); a longer one is ignored.
		hops4, sets4, err4 := decodeASPathSized(as4Path, 4)
		if err4 == nil && len(hops4) <= len(hops) {
			hops = append(hops[:len(hops)-len(hops4)], hops4...)
			sets += sets4
		}
	}
	e.Path = collapsePrepends(hops)
	e.ASSets = sets
	return nil
}

// decodeASPath decodes an AS_PATH attribute value. TABLE_DUMP_V2
// mandates 4-byte ASNs, but dumps written from sessions with old
// 2-byte speakers exist in the wild; when the 4-byte interpretation is
// structurally impossible the 2-byte one is tried, and twoByte reports
// which one won (AS4_PATH reconciliation only applies to the latter).
func decodeASPath(val []byte) (hops []asn.ASN, sets int, twoByte bool, err error) {
	hops, sets, err = decodeASPathSized(val, 4)
	if err == nil {
		return hops, sets, false, nil
	}
	if hops2, sets2, err2 := decodeASPathSized(val, 2); err2 == nil {
		return hops2, sets2, true, nil
	}
	// Report the 4-byte failure: that is the encoding the format
	// mandates.
	return nil, 0, false, err
}

// decodeASPathSized flattens AS_PATH segments with the given ASN
// width. AS_SEQUENCE members become hops; a single-member AS_SET is a
// hop in disguise, multi-member sets are only counted (aggregation is
// not link evidence); confederation segments are skipped.
func decodeASPathSized(val []byte, size int) ([]asn.ASN, int, error) {
	var hops []asn.ASN
	sets := 0
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, 0, fmt.Errorf("AS_PATH segment header cut short: %w", ErrBadAttribute)
		}
		segType, count := val[0], int(val[1])
		need := 2 + count*size
		if len(val) < need {
			return nil, 0, fmt.Errorf("AS_PATH segment needs %d bytes, has %d: %w",
				need, len(val), ErrBadAttribute)
		}
		member := func(i int) asn.ASN {
			if size == 2 {
				return asn.ASN(binary.BigEndian.Uint16(val[2+i*2 : 4+i*2]))
			}
			return asn.ASN(binary.BigEndian.Uint32(val[2+i*4 : 6+i*4]))
		}
		switch segType {
		case segSequence:
			for i := 0; i < count; i++ {
				hops = append(hops, member(i))
			}
		case segSet:
			if count == 1 {
				hops = append(hops, member(0))
			} else if count > 1 {
				sets++
			}
		case segConfedSequence, segConfedSet:
			// Stripped on eBGP export; a leaked one is skipped.
		default:
			return nil, 0, fmt.Errorf("AS_PATH segment type %d: %w", segType, ErrBadAttribute)
		}
		val = val[need:]
	}
	return hops, sets, nil
}

// collapsePrepends removes adjacent duplicate hops (path prepending),
// which carry no extra link evidence and would otherwise fabricate
// self-links.
func collapsePrepends(hops []asn.ASN) asgraph.Path {
	if len(hops) == 0 {
		return nil
	}
	out := make(asgraph.Path, 0, len(hops))
	for _, h := range hops {
		if n := len(out); n > 0 && out[n-1] == h {
			continue
		}
		out = append(out, h)
	}
	return out
}

// TableDumpWriter emits RFC 6396 TABLE_DUMP_V2: one PEER_INDEX_TABLE
// up front, then one single-entry RIB record per written entry. It
// exists to render fixtures that exercise the real decoder (ribflip
// -to v2, tests, fuzz seeds), not to re-serve collector dumps.
type TableDumpWriter struct {
	w   *bufio.Writer
	ts  uint32
	idx map[asn.ASN]uint16
	seq uint32
	err error
}

// NewTableDumpWriter writes the peer-index table for peers (one slot
// per vantage-point AS, in the given order) and returns the writer.
func NewTableDumpWriter(w io.Writer, ts uint32, peers []asn.ASN) (*TableDumpWriter, error) {
	if len(peers) > 0xffff {
		return nil, fmt.Errorf("wire: %d peers exceed the 16-bit index space", len(peers))
	}
	tw := &TableDumpWriter{w: bufio.NewWriter(w), ts: ts,
		idx: make(map[asn.ASN]uint16, len(peers))}
	const view = "breval"
	body := make([]byte, 0, 8+len(view)+13*len(peers))
	body = binary.BigEndian.AppendUint32(body, 0x0a000001) // collector BGP ID
	body = binary.BigEndian.AppendUint16(body, uint16(len(view)))
	body = append(body, view...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(peers)))
	for i, a := range peers {
		if _, dup := tw.idx[a]; dup {
			return nil, fmt.Errorf("wire: duplicate peer AS %d", a)
		}
		tw.idx[a] = uint16(i)
		body = append(body, 0x02)                               // IPv4 address, 4-byte AS
		body = binary.BigEndian.AppendUint32(body, uint32(i+1)) // BGP ID
		body = binary.BigEndian.AppendUint32(body, uint32(i+1)) // peer address
		body = binary.BigEndian.AppendUint32(body, uint32(a))
	}
	tw.record(subPeerIndexTable, body)
	return tw, tw.err
}

// Write emits one entry as a single-entry RIB record. The entry's
// vantage point (first path hop) must be in the peer table.
func (tw *TableDumpWriter) Write(e RIBEntry) error {
	if tw.err != nil {
		return tw.err
	}
	if len(e.Path) == 0 {
		return errors.New("wire: refusing to write an empty AS path")
	}
	pi, ok := tw.idx[e.Path[0]]
	if !ok {
		return fmt.Errorf("wire: vantage point AS %d is not in the peer table", e.Path[0])
	}
	var ab []byte
	ab = appendAttr(ab, flagTransitive, attrOrigin, []byte{0}) // IGP
	var pb []byte
	for rest := e.Path; len(rest) > 0; {
		n := len(rest)
		if n > 255 {
			n = 255
		}
		pb = append(pb, segSequence, byte(n))
		for _, a := range rest[:n] {
			pb = binary.BigEndian.AppendUint32(pb, uint32(a))
		}
		rest = rest[n:]
	}
	ab = appendAttr(ab, flagTransitive, attrASPath, pb)
	if len(e.Communities) > 0 {
		for _, c := range e.Communities {
			if !c.ASN.Is16Bit() {
				return fmt.Errorf("wire: community AS %d needs large communities", c.ASN)
			}
		}
		ab = appendAttr(ab, flagOptional|flagTransitive, attrCommunities,
			communities.AppendClassic(nil, e.Communities))
	}
	if len(e.LargeCommunities) > 0 {
		ab = appendAttr(ab, flagOptional|flagTransitive, attrLargeCommunities,
			communities.AppendLarge(nil, e.LargeCommunities))
	}
	if len(ab) > 0xffff {
		return fmt.Errorf("wire: attribute block length %d exceeds 16 bits", len(ab))
	}
	sub := uint16(subRIBIPv4Unicast)
	if e.Prefix.V6 {
		sub = subRIBIPv6Unicast
	}
	pbytes := (int(e.Prefix.Bits) + 7) / 8
	body := make([]byte, 0, 4+1+pbytes+2+8+len(ab))
	body = binary.BigEndian.AppendUint32(body, tw.seq)
	tw.seq++
	body = append(body, e.Prefix.Bits)
	body = append(body, e.Prefix.Addr[:pbytes]...)
	body = binary.BigEndian.AppendUint16(body, 1) // entry count
	body = binary.BigEndian.AppendUint16(body, pi)
	body = binary.BigEndian.AppendUint32(body, tw.ts) // originated time
	body = binary.BigEndian.AppendUint16(body, uint16(len(ab)))
	body = append(body, ab...)
	tw.record(sub, body)
	return tw.err
}

func (tw *TableDumpWriter) record(sub uint16, body []byte) {
	if tw.err != nil {
		return
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], tw.ts)
	binary.BigEndian.PutUint16(hdr[4:6], mrtType)
	binary.BigEndian.PutUint16(hdr[6:8], sub)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := tw.w.Write(hdr[:]); err != nil {
		tw.err = err
		return
	}
	if _, err := tw.w.Write(body); err != nil {
		tw.err = err
	}
}

// Flush completes the stream.
func (tw *TableDumpWriter) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// appendAttr is writeAttr for byte slices.
func appendAttr(dst []byte, flags, code byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, code)
	if flags&flagExtLen != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, byte(len(val)))
	}
	return append(dst, val...)
}

// WriteTableDumpV2 renders an entire path set as a TABLE_DUMP_V2 dump:
// the peer table holds every distinct vantage point in first-appearance
// order, each path becomes one RIB record with its prefix derived from
// the origin AS (as WriteRIB does), and deterministic community
// attributes are attached so decoder-side extraction has material to
// chew on.
func WriteTableDumpV2(w io.Writer, ps *bgp.PathSet, ts uint32) error {
	var peers []asn.ASN
	seen := make(map[asn.ASN]struct{})
	ps.ForEach(func(p asgraph.Path) {
		if len(p) == 0 {
			return
		}
		if _, ok := seen[p[0]]; !ok {
			seen[p[0]] = struct{}{}
			peers = append(peers, p[0])
		}
	})
	tw, err := NewTableDumpWriter(w, ts, peers)
	if err != nil {
		return err
	}
	var werr error
	ps.ForEach(func(p asgraph.Path) {
		if werr != nil || len(p) == 0 {
			return
		}
		e := RIBEntry{Prefix: PrefixForAS(p.Origin()), Path: p}
		if vp := p[0]; vp.Is16Bit() {
			e.Communities = []communities.Community{{ASN: vp, Value: 100}}
		}
		e.LargeCommunities = []LargeCommunity{
			{Global: p[0], Data1: 1, Data2: uint32(p.Origin())}}
		werr = tw.Write(e)
	})
	if werr != nil {
		return werr
	}
	return tw.Flush()
}
