package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Per-file dump-format auto-detection. Both formats the pipeline reads
// share the 12-byte MRT common header, so the signature is the leading
// header plus — in the one overlapping case — the shape of the first
// record body. Detection is a pure function over peeked bytes: it
// never consumes input, so the chosen reader sees the stream from
// byte zero.

// Format identifies the framing a dump file carries.
type Format uint8

const (
	// FormatInternal is the repo's simplified internal framing
	// (RIBReader): type 13 / subtype 2 with a prefix|hopcount|hops
	// body.
	FormatInternal Format = iota
	// FormatTableDumpV2 is real RFC 6396 TABLE_DUMP_V2
	// (TableDumpReader).
	FormatTableDumpV2
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == FormatTableDumpV2 {
		return "tabledumpv2"
	}
	return "internal"
}

// ErrAmbiguousFormat reports a leading record that parses as both
// formats. Guessing would silently misread every record behind it, so
// the caller must abandon the file (or be told which format it is).
var ErrAmbiguousFormat = errors.New("wire: dump format is ambiguous")

// Other MRT record types (RFC 6396 §4) that mark a file as a real MRT
// dump even though the pipeline cannot consume their records.
const (
	mrtTypeOSPFv2    = 11
	mrtTypeTableDump = 12
	mrtTypeBGP4MP    = 16
	mrtTypeBGP4MPET  = 17
)

// DetectFormat classifies a dump from its leading bytes (pass as much
// as is peekable; 12+maxRIBBody covers every case). Short or
// unrecognizable prefixes resolve to FormatInternal, whose reader
// already classifies them (truncation, unknown type) with the right
// taxonomy.
func DetectFormat(peek []byte) (Format, error) {
	if len(peek) < 12 {
		return FormatInternal, nil
	}
	typ := binary.BigEndian.Uint16(peek[4:6])
	sub := binary.BigEndian.Uint16(peek[6:8])
	if typ != mrtType {
		switch typ {
		case mrtTypeOSPFv2, mrtTypeTableDump, mrtTypeBGP4MP, mrtTypeBGP4MPET:
			// A real MRT dump led by a non-TABLE_DUMP_V2 record: route
			// it to the real decoder, which skips such records with
			// attribution (unsupported-subtype) instead of calling
			// them bad paths.
			return FormatTableDumpV2, nil
		}
		return FormatInternal, nil
	}
	switch sub {
	case subRIBIPv4Unicast:
		// The one code point both formats use. Real dumps lead with a
		// PEER_INDEX_TABLE, so this is almost always internal framing —
		// but "almost" is not a parser, so disambiguate by body shape.
		blen := binary.BigEndian.Uint32(peek[8:12])
		if blen > maxRIBBody || len(peek) < 12+int(blen) {
			// Oversize or cut short: internal's reader classifies it.
			return FormatInternal, nil
		}
		body := peek[12 : 12+blen]
		in, rfc := internalBodyShape(body), ribV4BodyShape(body)
		switch {
		case in && rfc:
			return 0, fmt.Errorf(
				"leading record parses as both internal framing and TABLE_DUMP_V2: %w",
				ErrAmbiguousFormat)
		case rfc:
			return FormatTableDumpV2, nil
		default:
			return FormatInternal, nil
		}
	case subPeerIndexTable, subRIBIPv4Multicast, subRIBIPv6Unicast,
		subRIBIPv6Multicast, subRIBGeneric, subGeoPeerTable,
		subRIBIPv4UnicastAddPath, subRIBIPv4MulticastAddPath,
		subRIBIPv6UnicastAddPath, subRIBIPv6MulticastAddPath:
		return FormatTableDumpV2, nil
	}
	return FormatInternal, nil
}

// internalBodyShape reports whether body is exactly an internal-framing
// RIB body: prefixBits(1) | prefix | hopCount(1) | 4-byte hops.
func internalBodyShape(body []byte) bool {
	if len(body) < 2 {
		return false
	}
	bits := body[0]
	if bits > 32 {
		return false
	}
	pb := (int(bits) + 7) / 8
	if len(body) < 1+pb+1 {
		return false
	}
	hops := int(body[1+pb])
	return len(body) == 1+pb+1+4*hops
}

// ribV4BodyShape reports whether body walks exactly as an RFC 6396
// RIB_IPV4_UNICAST body: sequence(4) | prefixLen(1) | prefix |
// entryCount(2) | entries, each peerIdx(2)+origTime(4)+attrLen(2)+
// attrs. Attribute contents are not validated — only the framing walk.
func ribV4BodyShape(body []byte) bool {
	if len(body) < 7 {
		return false
	}
	bits := body[4]
	if bits > 32 {
		return false
	}
	off := 5 + (int(bits)+7)/8
	if off+2 > len(body) {
		return false
	}
	count := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if count == 0 {
		return false // a real dump's RIB record announces entries
	}
	for i := 0; i < count; i++ {
		if off+8 > len(body) {
			return false
		}
		attrLen := int(binary.BigEndian.Uint16(body[off+6 : off+8]))
		off += 8 + attrLen
		if off > len(body) {
			return false
		}
	}
	return off == len(body)
}

// NewAutoReader sniffs r's format and returns the matching record
// reader positioned at byte zero, plus what it detected. The only
// error is ErrAmbiguousFormat (wrapped); truncation, unknown types and
// I/O failures are left for the chosen reader to classify.
func NewAutoReader(r io.Reader) (RecordReader, Format, error) {
	br, ok := r.(*bufio.Reader)
	if !ok || br.Size() < 12+maxRIBBody {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	peek, _ := br.Peek(12 + maxRIBBody)
	f, err := DetectFormat(peek)
	if err != nil {
		return nil, 0, err
	}
	if f == FormatTableDumpV2 {
		return NewTableDumpReader(br), f, nil
	}
	return NewRIBReader(br), f, nil
}
