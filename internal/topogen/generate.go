package topogen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/org"
	"breval/internal/registry"
	"breval/internal/resilience"
)

// setRel records a relationship via the graph's error-returning
// SetRel, capturing the first failure in b.err so generation degrades
// into a clean error instead of panicking mid-build.
func (b *builder) setRel(x, y asn.ASN, r asgraph.Rel) {
	if b.err != nil {
		return
	}
	if err := b.w.Graph.SetRel(x, y, r); err != nil {
		b.err = err
	}
}

// Generate builds a world from the configuration. Generation is fully
// deterministic in Config.Seed.
func Generate(cfg Config) (*World, error) {
	return GenerateContext(context.Background(), cfg)
}

// GenerateContext is Generate with cancellation: the context is
// checked between builder phases (site "topo.generate"), so a
// deadline or an injected fault aborts generation with an error
// instead of wasting the rest of the budget.
func GenerateContext(ctx context.Context, cfg Config) (*World, error) {
	if cfg.NumASes < 50 {
		return nil, fmt.Errorf("topogen: NumASes = %d too small (min 50)", cfg.NumASes)
	}
	if cfg.CliqueSize < 2 {
		return nil, fmt.Errorf("topogen: CliqueSize = %d too small", cfg.CliqueSize)
	}
	b := &builder{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		w: &World{
			Config:     cfg,
			Graph:      asgraph.New(),
			Region:     make(map[asn.ASN]registry.Region),
			Type:       make(map[asn.ASN]ASType),
			Publishers: make(map[asn.ASN]bool),
			Strippers:  make(map[asn.ASN]bool),
			Orgs:       org.NewTable(),
		},
	}
	phases := []struct {
		name string
		fn   func()
	}{
		{"allocate-asns", b.allocateASNs},
		{"assign-types", b.assignTypes},
		{"wire-providers", b.wireProviders},
		{"wire-clique", b.wireClique},
		{"wire-special-stubs", b.wireSpecialStubs},
		{"mark-partial-transit", b.markPartialTransit},
		{"build-ixps", b.buildIXPs},
		{"wire-hypergiant-pni", b.wireHypergiantPNI},
		{"build-siblings", b.buildSiblings},
		{"choose-vps", b.chooseVPs},
		{"choose-measurement-roles", b.chooseMeasurementRoles},
		{"mark-hybrid-links", b.markHybridLinks},
		{"build-facilities", b.buildFacilitiesAndBehaviour},
		{"build-registry", b.buildRegistryArtifacts},
	}
	for _, p := range phases {
		if err := resilience.Checkpoint(ctx, "topo.generate"); err != nil {
			return nil, fmt.Errorf("topogen: %s: %w", p.name, err)
		}
		p.fn()
		if b.err != nil {
			return nil, fmt.Errorf("topogen: %s: %w", p.name, b.err)
		}
	}
	return b.w, nil
}

type builder struct {
	cfg Config
	rng *rand.Rand
	w   *World
	// err is the first construction error; once set, the remaining
	// phase work becomes a no-op and GenerateContext aborts.
	err error

	byRegion map[registry.Region][]asn.ASN
	// transfers records ASNs whose current region differs from their
	// IANA block region (post-assignment transfers, §5).
	transfers map[asn.ASN]registry.Region
	// ianaRegion is the block region an ASN was initially allocated in.
	ianaRegion map[asn.ASN]registry.Region
}

// regionOrder iterates regions deterministically.
var regionOrder = []registry.Region{
	registry.AFRINIC, registry.APNIC, registry.ARIN, registry.LACNIC, registry.RIPE,
}

// crossProviderAffinity gives, per customer region, the weight of each
// foreign region when a provider is chosen outside the home region.
// The weights encode the dominant international transit flows
// (AFRINIC buys in Europe, LACNIC in North America, ...), which drive
// the cross-region link-class shares of Figure 1.
var crossProviderAffinity = map[registry.Region]map[registry.Region]float64{
	registry.AFRINIC: {registry.RIPE: 0.65, registry.ARIN: 0.25, registry.APNIC: 0.10},
	registry.APNIC:   {registry.RIPE: 0.58, registry.ARIN: 0.40, registry.AFRINIC: 0.02},
	registry.ARIN:    {registry.RIPE: 0.68, registry.LACNIC: 0.17, registry.APNIC: 0.15},
	registry.LACNIC:  {registry.ARIN: 0.78, registry.RIPE: 0.17, registry.APNIC: 0.05},
	registry.RIPE:    {registry.ARIN: 0.57, registry.APNIC: 0.26, registry.AFRINIC: 0.12, registry.LACNIC: 0.05},
}

func (b *builder) allocateASNs() {
	counts := make(map[registry.Region]int, 5)
	total := 0
	for _, r := range regionOrder {
		n := int(b.cfg.RegionShare[r] * float64(b.cfg.NumASes))
		counts[r] = n
		total += n
	}
	counts[registry.RIPE] += b.cfg.NumASes - total // rounding remainder

	b.byRegion = make(map[registry.Region][]asn.ASN, 5)
	b.ianaRegion = make(map[asn.ASN]registry.Region)
	b.transfers = make(map[asn.ASN]registry.Region)
	next := asn.ASN(1)
	for _, r := range regionOrder {
		for i := 0; i < counts[r]; i++ {
			a := next
			next++
			b.w.ASNs = append(b.w.ASNs, a)
			b.w.Region[a] = r
			b.ianaRegion[a] = r
			b.byRegion[r] = append(b.byRegion[r], a)
		}
		// Leave headroom in each block so blocks are disjoint even if
		// transfers are later modelled as renumbering-free.
		next += asn.ASN(counts[r]/4 + 8)
	}

	// Transfer a fraction of ASNs to a different region: the home
	// region changes, the IANA block does not. The §5 delegation
	// refinement exists to catch exactly these.
	nTransfer := int(b.cfg.TransferFrac * float64(len(b.w.ASNs)))
	for i := 0; i < nTransfer; i++ {
		a := b.w.ASNs[b.rng.Intn(len(b.w.ASNs))]
		from := b.w.Region[a]
		to := regionOrder[b.rng.Intn(len(regionOrder))]
		if to == from {
			continue
		}
		// Move between region member lists.
		b.byRegion[from] = removeASN(b.byRegion[from], a)
		b.byRegion[to] = append(b.byRegion[to], a)
		b.w.Region[a] = to
		b.transfers[a] = to
	}
	for _, r := range regionOrder {
		sortASNs(b.byRegion[r])
	}
}

func removeASN(s []asn.ASN, a asn.ASN) []asn.ASN {
	for i := range s {
		if s[i] == a {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func (b *builder) assignTypes() {
	// Default everyone to stub, then promote.
	for _, a := range b.w.ASNs {
		b.w.Type[a] = TypeStub
	}

	// Clique members: lowest ASNs of their region (old allocations).
	for _, r := range regionOrder {
		n := b.cfg.CliqueRegions[r]
		pool := b.byRegion[r]
		for i := 0; i < n && i < len(pool); i++ {
			a := pool[i]
			b.w.Type[a] = TypeTier1
			b.w.Clique = append(b.w.Clique, a)
		}
	}
	sortASNs(b.w.Clique)

	// Hypergiants: concentrated in ARIN, some RIPE/APNIC.
	hgRegions := []registry.Region{registry.ARIN, registry.ARIN, registry.ARIN,
		registry.RIPE, registry.APNIC}
	for i := 0; i < b.cfg.NumHypergiants; i++ {
		r := hgRegions[i%len(hgRegions)]
		a := b.pickUnassigned(r)
		if a == 0 {
			continue
		}
		b.w.Type[a] = TypeHypergiant
		b.w.Hypergiants = append(b.w.Hypergiants, a)
	}
	sortASNs(b.w.Hypergiants)

	// Transit tiers, proportionally per region (every region gets at
	// least one large transit so regional hierarchies exist).
	nLT := int(b.cfg.LargeTransitFrac * float64(b.cfg.NumASes))
	nST := int(b.cfg.SmallTransitFrac * float64(b.cfg.NumASes))
	b.promoteTransit(TypeLargeTransit, nLT, 1)
	b.promoteTransit(TypeSmallTransit, nST, 2)
}

func (b *builder) promoteTransit(t ASType, total, minPerRegion int) {
	for _, r := range regionOrder {
		share := b.cfg.RegionShare[r]
		n := int(share * float64(total))
		if n < minPerRegion {
			n = minPerRegion
		}
		for i := 0; i < n; i++ {
			a := b.pickUnassigned(r)
			if a == 0 {
				break
			}
			b.w.Type[a] = t
		}
	}
}

// pickUnassigned returns a random stub-typed ASN from region r, or 0
// if none remain.
func (b *builder) pickUnassigned(r registry.Region) asn.ASN {
	pool := b.byRegion[r]
	if len(pool) == 0 {
		return 0
	}
	for try := 0; try < 64; try++ {
		a := pool[b.rng.Intn(len(pool))]
		if b.w.Type[a] == TypeStub {
			return a
		}
	}
	// Fall back to a scan for small pools.
	for _, a := range pool {
		if b.w.Type[a] == TypeStub {
			return a
		}
	}
	return 0
}

// typed returns the ASes of region r having type t, ascending.
func (b *builder) typed(r registry.Region, t ASType) []asn.ASN {
	var out []asn.ASN
	for _, a := range b.byRegion[r] {
		if b.w.Type[a] == t {
			out = append(out, a)
		}
	}
	return out
}

func (b *builder) wireProviders() {
	// Pre-index provider pools.
	ltBy := make(map[registry.Region][]asn.ASN)
	stBy := make(map[registry.Region][]asn.ASN)
	t1By := make(map[registry.Region][]asn.ASN)
	for _, r := range regionOrder {
		ltBy[r] = b.typed(r, TypeLargeTransit)
		stBy[r] = b.typed(r, TypeSmallTransit)
		t1By[r] = b.typed(r, TypeTier1)
	}

	pickRegion := func(home registry.Region, intraProb float64) registry.Region {
		if b.rng.Float64() < intraProb {
			return home
		}
		aff := crossProviderAffinity[home]
		x := b.rng.Float64()
		for _, r := range regionOrder {
			w, ok := aff[r]
			if !ok {
				continue
			}
			if x < w {
				return r
			}
			x -= w
		}
		return home
	}

	// Provider choice uses preferential attachment (Pólya urn): every
	// time a provider is picked it is appended to its urn again, so
	// busy providers attract more customers and transit degrees
	// become heavy-tailed — the property Figures 3 and 7-9 depend on.
	clonePools := func(pools map[registry.Region][]asn.ASN) map[registry.Region][]asn.ASN {
		u := make(map[registry.Region][]asn.ASN, len(pools))
		for r, p := range pools {
			u[r] = append([]asn.ASN(nil), p...)
		}
		return u
	}
	// The Tier-1 urn stays uniform (grow=false): every real Tier-1
	// maintains a large customer base, and a starved Tier-1 would
	// drop out of the observable clique.
	urnT1 := clonePools(t1By)
	urnLT := clonePools(ltBy)
	urnST := clonePools(stBy)
	// pickWith returns a random element, weighted preferentially when
	// grow is set (each pick is appended back to the urn), falling
	// back across regions when the preferred urn is empty.
	pickWith := func(urn map[registry.Region][]asn.ASN, r registry.Region, grow bool) asn.ASN {
		pick := func(rr registry.Region) asn.ASN {
			u := urn[rr]
			a := u[b.rng.Intn(len(u))]
			if grow {
				urn[rr] = append(u, a)
			}
			return a
		}
		if len(urn[r]) > 0 {
			return pick(r)
		}
		for _, rr := range regionOrder {
			if len(urn[rr]) > 0 {
				return pick(rr)
			}
		}
		return 0
	}

	addP2C := func(provider, customer asn.ASN) {
		if provider == 0 || provider == customer {
			return
		}
		if _, ok := b.w.Graph.Rel(provider, customer); ok {
			return
		}
		b.setRel(provider, customer, asgraph.P2CRel(provider))
	}

	nProviders := func(min, max int) int {
		if max <= min {
			return min
		}
		return min + b.rng.Intn(max-min+1)
	}

	for _, a := range b.w.ASNs {
		home := b.w.Region[a]
		switch b.w.Type[a] {
		case TypeTier1:
			// provider-free
		case TypeLargeTransit:
			n := nProviders(b.cfg.TransitProviderMin, b.cfg.TransitProviderMax)
			for i := 0; i < n; i++ {
				addP2C(pickWith(urnT1, pickRegion(home, b.cfg.TransitIntraRegionProb), false), a)
			}
		case TypeSmallTransit:
			n := nProviders(b.cfg.TransitProviderMin, b.cfg.TransitProviderMax)
			for i := 0; i < n; i++ {
				r := pickRegion(home, b.cfg.TransitIntraRegionProb)
				// Small transit mostly buys from large transit, with a
				// minority of direct Tier-1 uplinks.
				if b.rng.Float64() < 0.15 {
					addP2C(pickWith(urnT1, r, false), a)
				} else {
					addP2C(pickWith(urnLT, r, true), a)
				}
			}
		case TypeHypergiant:
			// Hypergiants keep one or two Tier-1 transit contracts.
			n := 1 + b.rng.Intn(2)
			for i := 0; i < n; i++ {
				addP2C(pickWith(urnT1, pickRegion(home, b.cfg.TransitIntraRegionProb), false), a)
			}
		case TypeStub:
			n := nProviders(b.cfg.StubProviderMin, b.cfg.StubProviderMax)
			for i := 0; i < n; i++ {
				r := pickRegion(home, b.cfg.IntraRegionProviderProb)
				x := b.rng.Float64()
				switch {
				case x < b.cfg.StubT1ProviderFrac:
					addP2C(pickWith(urnT1, r, false), a)
				case x < b.cfg.StubT1ProviderFrac+b.cfg.StubLTProviderFrac:
					addP2C(pickWith(urnLT, r, true), a)
				default:
					addP2C(pickWith(urnST, r, true), a)
				}
			}
		}
	}

	// Settlement-free Tier-1 / large-transit peering: the true-P2P
	// population of the paper's T1-TR class.
	for _, t1 := range b.w.Clique {
		for _, r := range regionOrder {
			for _, lt := range ltBy[r] {
				if b.rng.Float64() >= b.cfg.T1TransitPeerProb {
					continue
				}
				if _, ok := b.w.Graph.Rel(t1, lt); !ok {
					b.setRel(t1, lt, asgraph.P2PRel())
				}
			}
		}
	}
}

func (b *builder) wireClique() {
	for i, a := range b.w.Clique {
		for _, c := range b.w.Clique[i+1:] {
			b.setRel(a, c, asgraph.P2PRel())
		}
	}
}

func (b *builder) wireSpecialStubs() {
	// Special stubs live mostly in ARIN/RIPE (research networks,
	// anycast DNS operators, clouds) and peer directly with Tier-1s.
	pools := append(append([]asn.ASN{}, b.typed(registry.ARIN, TypeStub)...),
		b.typed(registry.RIPE, TypeStub)...)
	if len(pools) == 0 {
		return
	}
	seen := make(map[asn.ASN]bool)
	for len(b.w.SpecialStubs) < b.cfg.NumSpecialStubs && len(seen) < len(pools) {
		a := pools[b.rng.Intn(len(pools))]
		if seen[a] {
			continue
		}
		seen[a] = true
		b.w.SpecialStubs = append(b.w.SpecialStubs, a)
		for i := 0; i < b.cfg.SpecialStubT1Peers && i < len(b.w.Clique); i++ {
			t1 := b.w.Clique[b.rng.Intn(len(b.w.Clique))]
			if _, ok := b.w.Graph.Rel(a, t1); !ok {
				b.setRel(a, t1, asgraph.P2PRel())
			}
		}
	}
	sortASNs(b.w.SpecialStubs)
}

func (b *builder) markPartialTransit() {
	n := b.cfg.PartialTransitT1s
	if n > len(b.w.Clique) {
		n = len(b.w.Clique)
	}
	// Partial-transit sellers are ARIN clique members first (the
	// AS714 role model is), largest transit-customer base first, so
	// the heavy seller's links land in the well-validated part of the
	// T1-TR class and dominate the §6.1 target links.
	transitCustomers := func(t1 asn.ASN) int {
		n := 0
		for _, c := range b.w.Graph.Customers(t1) {
			if isTransitType(b.w.Type[c]) {
				n++
			}
		}
		return n
	}
	sellers := make([]asn.ASN, 0, len(b.w.Clique))
	for _, t1 := range b.w.Clique {
		if b.w.Region[t1] == registry.ARIN {
			sellers = append(sellers, t1)
		}
	}
	sort.Slice(sellers, func(i, j int) bool {
		ni, nj := transitCustomers(sellers[i]), transitCustomers(sellers[j])
		if ni != nj {
			return ni > nj
		}
		return sellers[i] < sellers[j]
	})
	for _, t1 := range b.w.Clique {
		if b.w.Region[t1] != registry.ARIN {
			sellers = append(sellers, t1)
		}
	}
	for i := 0; i < n && i < len(sellers); i++ {
		t1 := sellers[i]
		b.w.PartialSellers = append(b.w.PartialSellers, t1)
		prob := b.cfg.PartialTransitLightProb
		if i == 0 {
			prob = b.cfg.PartialTransitHeavyProb
		}
		for _, c := range b.w.Graph.Customers(t1) {
			ct := b.w.Type[c]
			if ct != TypeLargeTransit && ct != TypeSmallTransit {
				continue // partial transit is a transit-customer product
			}
			if b.rng.Float64() < prob {
				r, _ := b.w.Graph.Rel(t1, c)
				r.PartialTransit = true
				b.setRel(t1, c, r)
			}
		}
	}
}

func (b *builder) buildIXPs() {
	// Distribute IXPs over regions proportionally to AS share, with a
	// minimum of one per region.
	id := 0
	for _, r := range regionOrder {
		n := int(b.cfg.RegionShare[r] * float64(b.cfg.NumIXPs))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			b.w.IXPs = append(b.w.IXPs, IXP{ID: id, Region: r})
			id++
		}
	}

	// Index IXPs per region.
	ixBy := make(map[registry.Region][]int)
	for i := range b.w.IXPs {
		ixBy[b.w.IXPs[i].Region] = append(ixBy[b.w.IXPs[i].Region], i)
	}

	join := func(ix int, a asn.ASN) {
		b.w.IXPs[ix].Members = append(b.w.IXPs[ix].Members, a)
	}

	for _, a := range b.w.ASNs {
		home := b.w.Region[a]
		local := ixBy[home]
		if len(local) == 0 {
			continue
		}
		var nJoin int
		switch b.w.Type[a] {
		case TypeStub:
			if b.rng.Float64() < 0.35 {
				nJoin = 1
			}
		case TypeSmallTransit:
			nJoin = 1 + b.rng.Intn(2)
		case TypeLargeTransit:
			nJoin = 1 + b.rng.Intn(3)
		case TypeTier1:
			if b.rng.Float64() < 0.2 {
				nJoin = 1
			}
		case TypeHypergiant:
			// Hypergiants join fabrics everywhere.
			for i := range b.w.IXPs {
				if b.rng.Float64() < 0.25 {
					join(i, a)
				}
			}
			continue
		}
		for i := 0; i < nJoin; i++ {
			join(local[b.rng.Intn(len(local))], a)
		}
		// Remote peering: occasionally join a fabric abroad.
		if b.rng.Float64() < b.cfg.RemoteMemberProb {
			ix := b.rng.Intn(len(b.w.IXPs))
			if b.w.IXPs[ix].Region != home {
				join(ix, a)
			}
		}
	}

	// Establish P2P sessions between co-located members.
	for i := range b.w.IXPs {
		ixp := &b.w.IXPs[i]
		sortASNs(ixp.Members)
		ixp.Members = dedupASNs(ixp.Members)
		boost := b.cfg.OpenPeeringBoost[ixp.Region]
		for x := 0; x < len(ixp.Members); x++ {
			for y := x + 1; y < len(ixp.Members); y++ {
				a, c := ixp.Members[x], ixp.Members[y]
				ta, tc := b.w.Type[a], b.w.Type[c]
				if ta == TypeTier1 && tc == TypeTier1 {
					continue // already a full mesh
				}
				p := b.cfg.PeerProb[ta] * b.cfg.PeerProb[tc] * boost
				if b.rng.Float64() >= p {
					continue
				}
				if _, ok := b.w.Graph.Rel(a, c); ok {
					continue // keep existing (e.g. transit) relationship
				}
				b.setRel(a, c, asgraph.P2PRel())
			}
		}
	}
}

func dedupASNs(s []asn.ASN) []asn.ASN {
	out := s[:0]
	var last asn.ASN
	for i, a := range s {
		if i == 0 || a != last {
			out = append(out, a)
		}
		last = a
	}
	return out
}

func (b *builder) wireHypergiantPNI() {
	var transits []asn.ASN
	for _, a := range b.w.ASNs {
		if t := b.w.Type[a]; t == TypeLargeTransit || t == TypeSmallTransit {
			transits = append(transits, a)
		}
	}
	for _, h := range b.w.Hypergiants {
		for _, t1 := range b.w.Clique {
			if b.rng.Float64() >= b.cfg.HypergiantT1PeerProb {
				continue
			}
			if _, ok := b.w.Graph.Rel(h, t1); !ok {
				b.setRel(h, t1, asgraph.P2PRel())
			}
		}
		for _, tr := range transits {
			if b.rng.Float64() >= b.cfg.HypergiantTransitPeerProb {
				continue
			}
			if _, ok := b.w.Graph.Rel(h, tr); !ok {
				b.setRel(h, tr, asgraph.P2PRel())
			}
		}
	}
}

func (b *builder) buildSiblings() {
	// Multi-AS organisations; remaining ASes get singleton orgs so the
	// org table is total, like CAIDA's.
	assigned := make(map[asn.ASN]bool)
	orgID := 0
	for i := 0; i < b.cfg.SiblingOrgs; i++ {
		r := regionOrder[b.rng.Intn(len(regionOrder))]
		pool := b.byRegion[r]
		if len(pool) < 2 {
			continue
		}
		size := 2
		if b.cfg.SiblingOrgMax > 2 {
			size += b.rng.Intn(b.cfg.SiblingOrgMax - 1)
		}
		var members []asn.ASN
		for try := 0; try < 32 && len(members) < size; try++ {
			a := pool[b.rng.Intn(len(pool))]
			if !assigned[a] && b.w.Type[a] != TypeTier1 {
				assigned[a] = true
				members = append(members, a)
			}
		}
		if len(members) < 2 {
			continue
		}
		id := fmt.Sprintf("org-m%04d", orgID)
		orgID++
		b.w.Orgs.AddOrg(org.Organization{ID: id, Name: fmt.Sprintf("MultiAS Org %d", orgID), Country: r.Abbrev()})
		sortASNs(members)
		for _, a := range members {
			b.w.Orgs.Assign(a, id)
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				if _, ok := b.w.Graph.Rel(members[x], members[y]); !ok {
					b.setRel(members[x], members[y], asgraph.S2SRel())
				}
			}
		}
	}
	for _, a := range b.w.ASNs {
		if !assigned[a] {
			id := fmt.Sprintf("org-s%d", a)
			b.w.Orgs.Assign(a, id)
		}
	}
}

func (b *builder) markHybridLinks() {
	// Flag some transit-to-transit peering links as hybrid: their
	// relationship differs per PoP, so community-based extraction
	// legitimately yields multiple labels (§4.2).
	// Prefer links with a publisher endpoint: a hybrid relationship
	// only surfaces as a multi-label validation entry when the
	// publisher's routers tag it differently per PoP.
	var candidates []asgraph.Link
	b.w.Graph.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
		if r.Type != asgraph.P2P {
			return
		}
		ta, tb := b.w.Type[l.A], b.w.Type[l.B]
		if isTransitType(ta) && isTransitType(tb) &&
			(b.w.Publishers[l.A] || b.w.Publishers[l.B]) {
			candidates = append(candidates, l)
		}
	})
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].A != candidates[j].A {
			return candidates[i].A < candidates[j].A
		}
		return candidates[i].B < candidates[j].B
	})
	n := b.cfg.HybridLinkCount
	for i := 0; i < n && len(candidates) > 0; i++ {
		idx := b.rng.Intn(len(candidates))
		l := candidates[idx]
		candidates = append(candidates[:idx], candidates[idx+1:]...)
		r, _ := b.w.Graph.RelOn(l)
		r.Hybrid = true
		b.setRel(l.A, l.B, r)
	}
}

func isTransitType(t ASType) bool {
	return t == TypeSmallTransit || t == TypeLargeTransit
}

func (b *builder) chooseVPs() {
	for _, a := range b.w.ASNs {
		t := b.w.Type[a]
		if t == TypeTier1 {
			b.w.VPs = append(b.w.VPs, a)
			continue
		}
		p := b.cfg.VPProb[t] * b.cfg.VPRegionBoost[b.w.Region[a]]
		if b.rng.Float64() < p {
			b.w.VPs = append(b.w.VPs, a)
		}
	}
	sortASNs(b.w.VPs)
}

func (b *builder) chooseMeasurementRoles() {
	for _, a := range b.w.ASNs {
		t := b.w.Type[a]
		p := b.cfg.PublishProb[t] * b.cfg.PublishRegionBoost[b.w.Region[a]]
		switch {
		case t == TypeTier1:
			// Tier-1 community documentation is maintained regardless
			// of home region (3356, 174, 2914, 1299, ... all publish).
			p = b.cfg.PublishProb[t]
		case t == TypeLargeTransit || t == TypeSmallTransit:
			// Community documentation effort grows with network size:
			// the extensively documented dictionaries come from the
			// big transit providers, which is what skews validation
			// towards large-degree links (Figure 3's mismatch).
			deg := float64(b.w.Graph.Degree(a))
			size := deg / 60
			if size > 1 {
				size = 1
			}
			p *= 0.15 + 0.85*size
		}
		if b.rng.Float64() < p {
			b.w.Publishers[a] = true
		}
		strip := b.cfg.StripProb
		if t == TypeTier1 {
			strip = b.cfg.StripProbTier1
		}
		if b.rng.Float64() < strip {
			b.w.Strippers[a] = true
		}
		if b.rng.Float64() < b.cfg.IRRMaintainerProb[b.w.Region[a]] {
			b.w.IRRRegistrants = append(b.w.IRRRegistrants, a)
		}
	}
}

// buildFacilitiesAndBehaviour adds the PeeringDB-style co-location
// layer and the behavioural flags of Appendix C (features 11 and 12):
// colocation facilities per region, MANRS participation, and a few
// serial-hijacker-like ASes.
func (b *builder) buildFacilitiesAndBehaviour() {
	b.w.MANRS = make(map[asn.ASN]bool)
	b.w.Hijackers = make(map[asn.ASN]bool)

	// Facilities: roughly two per IXP, same regional distribution.
	id := 0
	facBy := make(map[registry.Region][]int)
	for _, r := range regionOrder {
		n := 2 * maxInt(1, int(b.cfg.RegionShare[r]*float64(b.cfg.NumIXPs)))
		for i := 0; i < n; i++ {
			b.w.Facilities = append(b.w.Facilities, IXP{ID: id, Region: r})
			facBy[r] = append(facBy[r], id)
			id++
		}
	}
	for _, a := range b.w.ASNs {
		home := b.w.Region[a]
		local := facBy[home]
		if len(local) == 0 {
			continue
		}
		var n int
		switch b.w.Type[a] {
		case TypeStub:
			if b.rng.Float64() < 0.25 {
				n = 1
			}
		case TypeSmallTransit:
			n = 1 + b.rng.Intn(2)
		case TypeLargeTransit:
			n = 1 + b.rng.Intn(3)
		case TypeTier1, TypeHypergiant:
			n = 2 + b.rng.Intn(3)
		}
		for i := 0; i < n; i++ {
			f := local[b.rng.Intn(len(local))]
			b.w.Facilities[f].Members = append(b.w.Facilities[f].Members, a)
		}
		// Behaviour: MANRS uptake is strongest among European transit
		// networks; hijacker-like behaviour is rare and small.
		manrs := 0.0
		switch b.w.Type[a] {
		case TypeLargeTransit:
			manrs = 0.25
		case TypeSmallTransit:
			manrs = 0.12
		case TypeTier1:
			manrs = 0.4
		case TypeStub:
			manrs = 0.02
		}
		if home == registry.RIPE {
			manrs *= 1.6
		}
		if b.rng.Float64() < manrs {
			b.w.MANRS[a] = true
		} else if b.rng.Float64() < 0.004 {
			b.w.Hijackers[a] = true
		}
	}
	for i := range b.w.Facilities {
		sortASNs(b.w.Facilities[i].Members)
		b.w.Facilities[i].Members = dedupASNs(b.w.Facilities[i].Members)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (b *builder) buildRegistryArtifacts() {
	// IANA blocks: one contiguous block per region covering its
	// initial allocations (headroom included by construction).
	var blocks []asn.Block
	type spanKey struct {
		first, last asn.ASN
		r           registry.Region
	}
	var spans []spanKey
	// Recover contiguous spans from the initial allocation order.
	var cur spanKey
	for _, a := range b.w.ASNs {
		r := b.ianaRegion[a]
		if cur.last != 0 && a == cur.last+1 && r == cur.r {
			cur.last = a
			continue
		}
		if cur.last != 0 {
			spans = append(spans, cur)
		}
		cur = spanKey{first: a, last: a, r: r}
	}
	if cur.last != 0 {
		spans = append(spans, cur)
	}
	for _, s := range spans {
		blocks = append(blocks, asn.Block{
			First: s.first, Last: s.last,
			Authority:   regionAuthority(s.r),
			Description: "Assigned by " + regionAuthority(s.r).String(),
		})
	}
	iana, err := asn.NewRegistry(blocks)
	if err != nil {
		if b.err == nil {
			b.err = fmt.Errorf("building IANA registry: %w", err)
		}
		return
	}
	b.w.IANA = iana

	// Delegation files: each region lists its current holdings
	// (including inbound transfers).
	for _, r := range regionOrder {
		f := &registry.File{Registry: r, Serial: "20180405"}
		for _, a := range b.byRegion[r] {
			f.Delegations = append(f.Delegations, registry.Delegation{
				Registry: r,
				CC:       "ZZ",
				First:    a,
				Count:    1,
				Date:     "20180405",
				Status:   "allocated",
			})
		}
		b.w.Delegations = append(b.w.Delegations, f)
	}
}

func regionAuthority(r registry.Region) asn.Authority {
	switch r {
	case registry.AFRINIC:
		return asn.AuthAFRINIC
	case registry.APNIC:
		return asn.AuthAPNIC
	case registry.ARIN:
		return asn.AuthARIN
	case registry.LACNIC:
		return asn.AuthLACNIC
	case registry.RIPE:
		return asn.AuthRIPE
	}
	return asn.AuthIANA
}
