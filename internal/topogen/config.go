// Package topogen generates seeded synthetic Internet topologies:
// a Tier-1 clique, a regional transit hierarchy, stub networks,
// hypergiants, IXP-mediated peering, sibling organisations, and
// partial-transit arrangements. The generated world also carries the
// registry-side artefacts (IANA block registry, RIR delegation files,
// AS-to-Org table) and the measurement-side roles (route-collector
// vantage points, BGP-community publishers) the validation-bias
// pipeline of Prehn & Feldmann (IMC'21) needs.
//
// The generator substitutes for the proprietary April-2018 BGP and
// registry data the paper uses; its knobs are calibrated so the
// *distribution* of inferred links across regional and topological
// classes matches the paper's Figures 1-3 (see DESIGN.md).
package topogen

import (
	"breval/internal/registry"
)

// ASType is the generator-assigned role of an AS. The evaluation
// pipeline never reads these directly — it re-derives stub/transit
// from customer cones like the paper does — but examples and tests use
// them, and the generator's wiring decisions depend on them.
type ASType uint8

// Generator roles.
const (
	TypeStub ASType = iota
	TypeSmallTransit
	TypeLargeTransit
	TypeTier1
	TypeHypergiant
)

// String implements fmt.Stringer.
func (t ASType) String() string {
	switch t {
	case TypeStub:
		return "stub"
	case TypeSmallTransit:
		return "small-transit"
	case TypeLargeTransit:
		return "large-transit"
	case TypeTier1:
		return "tier1"
	case TypeHypergiant:
		return "hypergiant"
	}
	return "unknown"
}

// Config holds all generator knobs. DefaultConfig returns the
// calibrated defaults; tests use smaller worlds via Scaled.
type Config struct {
	Seed    int64
	NumASes int

	// RegionShare is the fraction of ASes homed in each region,
	// indexed by registry.Region. Entries must sum to ~1 over the five
	// real regions.
	RegionShare map[registry.Region]float64

	// CliqueSize is the number of Tier-1 (provider-free) ASes.
	CliqueSize int
	// CliqueRegions distributes clique members over regions; counts
	// must sum to CliqueSize.
	CliqueRegions map[registry.Region]int

	// NumHypergiants is the number of hypergiant content networks.
	NumHypergiants int

	// LargeTransitFrac and SmallTransitFrac are fractions of NumASes.
	LargeTransitFrac float64
	SmallTransitFrac float64

	// Provider-count ranges (inclusive) per customer type.
	StubProviderMin, StubProviderMax       int
	TransitProviderMin, TransitProviderMax int

	// IntraRegionProviderProb is the probability a stub's provider is
	// chosen from its own region; TransitIntraRegionProb the same for
	// transit customers (international transit is common).
	IntraRegionProviderProb float64
	TransitIntraRegionProb  float64

	// StubT1ProviderFrac and StubLTProviderFrac control which tier a
	// stub buys from: Tier-1 with StubT1ProviderFrac, large transit
	// with StubLTProviderFrac, small transit otherwise.
	StubT1ProviderFrac float64
	StubLTProviderFrac float64

	// T1TransitPeerProb is the probability that a given (Tier-1,
	// large-transit) pair maintains a settlement-free peering — the
	// true-P2P part of the paper's T1-TR class.
	T1TransitPeerProb float64

	// NumIXPs is the number of IXPs; members are drawn from the IXP's
	// region. RemoteMemberProb is the per-AS probability of remote
	// peering: joining one fabric outside the home region.
	NumIXPs          int
	RemoteMemberProb float64

	// PeerProb holds the base probability that two co-located IXP
	// members of the given types establish a P2P session; the pair
	// probability is the product of both endpoints' base values,
	// scaled by the IXP region's OpenPeeringBoost.
	PeerProb map[ASType]float64

	// OpenPeeringBoost scales peering probability per IXP region
	// (LACNIC's IX.br-style fabrics are far more open than average).
	OpenPeeringBoost map[registry.Region]float64

	// HypergiantT1PeerProb and HypergiantTransitPeerProb control
	// direct (PNI) peering of hypergiants.
	HypergiantT1PeerProb      float64
	HypergiantTransitPeerProb float64

	// NumSpecialStubs is the number of research/anycast-DNS/CDN/cloud
	// stubs that peer directly with Tier-1s (the S-T1 P2P class of
	// §6; see Table 1's S-T1 row).
	NumSpecialStubs int
	// SpecialStubT1Peers is how many Tier-1s each special stub peers
	// with.
	SpecialStubT1Peers int

	// SiblingOrgs is the number of multi-AS organisations;
	// SiblingOrgMax is the max ASNs per such organisation.
	SiblingOrgs   int
	SiblingOrgMax int

	// PartialTransitT1s is how many Tier-1s sell partial transit;
	// the first of them is "heavy" (PartialTransitHeavyProb of its
	// transit customers), the rest use PartialTransitLightProb.
	// This reproduces the Cogent-dominated target-link skew of §6.1.
	PartialTransitT1s       int
	PartialTransitHeavyProb float64
	PartialTransitLightProb float64

	// VPProb is the probability an AS of the given type hosts a route
	// collector session (is a vantage point), further scaled by
	// VPRegionBoost for its region. Clique members are always VPs.
	VPProb        map[ASType]float64
	VPRegionBoost map[registry.Region]float64

	// PublishProb is the probability an AS of the given type
	// publishes a relationship-encoding BGP community dictionary,
	// scaled by PublishRegionBoost. This is the principal bias knob:
	// validation labels can only come from publishers.
	PublishProb        map[ASType]float64
	PublishRegionBoost map[registry.Region]float64

	// IRRMaintainerProb is the per-region probability that an AS
	// keeps an aut-num object with routing policies in an IRR — the
	// Luckie et al. source-(ii) population. European networks
	// document heavily (RIPE requires it), ARIN networks rarely do.
	IRRMaintainerProb map[registry.Region]float64

	// StripProb is the probability an AS strips foreign communities
	// on export (tags set below it never reach a collector through
	// it). Tier-1s rarely strip.
	StripProb      float64
	StripProbTier1 float64

	// TransferFrac is the fraction of ASNs transferred between
	// regions after the initial IANA assignment, so the delegation
	// refinement step of §5 has work to do.
	TransferFrac float64

	// HybridLinkCount is the number of peering links flagged as
	// hybrid (relationship differs per PoP); they yield multi-label
	// validation entries (§4.2).
	HybridLinkCount int
}

// DefaultConfig returns the calibrated default configuration
// (~8000 ASes). See DESIGN.md §2 for the calibration targets.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		NumASes: 8000,
		RegionShare: map[registry.Region]float64{
			registry.AFRINIC: 0.035,
			registry.APNIC:   0.150,
			registry.ARIN:    0.210,
			registry.LACNIC:  0.165,
			registry.RIPE:    0.440,
		},
		CliqueSize: 16,
		CliqueRegions: map[registry.Region]int{
			registry.ARIN:  8,
			registry.RIPE:  6,
			registry.APNIC: 2,
		},
		NumHypergiants:   15,
		LargeTransitFrac: 0.070,
		SmallTransitFrac: 0.120,

		StubProviderMin: 1, StubProviderMax: 2,
		TransitProviderMin: 1, TransitProviderMax: 3,
		IntraRegionProviderProb: 0.93,
		TransitIntraRegionProb:  0.72,
		StubT1ProviderFrac:      0.13,
		StubLTProviderFrac:      0.30,
		T1TransitPeerProb:       0.035,

		NumIXPs:          44,
		RemoteMemberProb: 0.17,
		PeerProb: map[ASType]float64{
			TypeStub:         0.20,
			TypeSmallTransit: 0.38,
			TypeLargeTransit: 0.26,
			TypeTier1:        0.02,
			TypeHypergiant:   0.60,
		},
		OpenPeeringBoost: map[registry.Region]float64{
			registry.AFRINIC: 1.0,
			registry.APNIC:   0.8,
			registry.ARIN:    0.6,
			registry.LACNIC:  2.6,
			registry.RIPE:    1.0,
		},
		HypergiantT1PeerProb:      0.15,
		HypergiantTransitPeerProb: 0.04,

		NumSpecialStubs:    10,
		SpecialStubT1Peers: 2,

		SiblingOrgs:   90,
		SiblingOrgMax: 3,

		PartialTransitT1s:       4,
		PartialTransitHeavyProb: 0.55,
		PartialTransitLightProb: 0.09,

		VPProb: map[ASType]float64{
			TypeStub:         0.010,
			TypeSmallTransit: 0.16,
			TypeLargeTransit: 0.55,
			TypeTier1:        1.0,
			TypeHypergiant:   0.1,
		},
		VPRegionBoost: map[registry.Region]float64{
			registry.AFRINIC: 0.4,
			registry.APNIC:   0.6,
			registry.ARIN:    1.0,
			registry.LACNIC:  0.9, // IX.br-hosted collectors
			registry.RIPE:    1.3,
		},

		PublishProb: map[ASType]float64{
			TypeStub:         0.0,
			TypeSmallTransit: 0.02,
			TypeLargeTransit: 0.50,
			TypeTier1:        0.95,
			TypeHypergiant:   0.15,
		},
		PublishRegionBoost: map[registry.Region]float64{
			registry.AFRINIC: 0.03,
			registry.APNIC:   0.30,
			registry.ARIN:    0.85,
			registry.LACNIC:  0.0, // nobody in LACNIC publishes encodings
			registry.RIPE:    0.45,
		},
		IRRMaintainerProb: map[registry.Region]float64{
			registry.AFRINIC: 0.30,
			registry.APNIC:   0.35,
			registry.ARIN:    0.12,
			registry.LACNIC:  0.20,
			registry.RIPE:    0.60,
		},

		StripProb:      0.15,
		StripProbTier1: 0.04,

		TransferFrac:    0.012,
		HybridLinkCount: 60,
	}
}

// Scaled returns a copy of c resized to n ASes with structural counts
// scaled proportionally (minimums keep tiny worlds functional).
func (c Config) Scaled(n int) Config {
	f := float64(n) / float64(c.NumASes)
	c.NumASes = n
	scale := func(v int, min int) int {
		s := int(float64(v) * f)
		if s < min {
			s = min
		}
		return s
	}
	c.CliqueSize = scale(c.CliqueSize, 4)
	c.NumHypergiants = scale(c.NumHypergiants, 2)
	c.NumIXPs = scale(c.NumIXPs, 5)
	c.NumSpecialStubs = scale(c.NumSpecialStubs, 4)
	c.SiblingOrgs = scale(c.SiblingOrgs, 3)
	c.HybridLinkCount = scale(c.HybridLinkCount, 3)
	c.PartialTransitT1s = scale(c.PartialTransitT1s, 1)
	// Re-derive clique regions for the smaller clique.
	ar := c.CliqueSize / 2
	r := c.CliqueSize - ar - c.CliqueSize/8
	ap := c.CliqueSize - ar - r
	c.CliqueRegions = map[registry.Region]int{
		registry.ARIN:  ar,
		registry.RIPE:  r,
		registry.APNIC: ap,
	}
	return c
}
