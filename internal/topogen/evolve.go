package topogen

import (
	"fmt"
	"math/rand"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// EvolveConfig controls one evolution step (one "month") of the
// routing ecosystem. §7 of the paper argues that the ecosystem's
// continuous change can be exploited to over-sample validation data;
// the validation snapshots the paper received span 2014-2018 exactly
// because relationships churn.
type EvolveConfig struct {
	Seed int64
	// PeeringChurnFrac is the fraction of existing P2P links replaced
	// per step: each removed peering is matched by a new one between
	// co-located IXP members.
	PeeringChurnFrac float64
	// ProviderChurnFrac is the fraction of customers that switch one
	// provider per step (the old P2C link disappears, a new one to a
	// different provider of the same tier appears).
	ProviderChurnFrac float64
	// RelFlipFrac is the fraction of links whose relationship type
	// flips per step: a customer upgrading to settlement-free peering
	// or a peer becoming a customer.
	RelFlipFrac float64
}

// DefaultEvolveConfig returns monthly churn rates in line with
// longitudinal AS-topology studies (a few percent of links per month).
func DefaultEvolveConfig(seed int64) EvolveConfig {
	return EvolveConfig{
		Seed:              seed,
		PeeringChurnFrac:  0.03,
		ProviderChurnFrac: 0.015,
		RelFlipFrac:       0.004,
	}
}

// ChangeSet records what one evolution step did.
type ChangeSet struct {
	RemovedPeerings  []asgraph.Link
	AddedPeerings    []asgraph.Link
	ProviderSwitches []asgraph.Link // the new P2C links
	Flips            []asgraph.Link // links whose type flipped
}

// Total returns the number of changes.
func (c ChangeSet) Total() int {
	return len(c.RemovedPeerings) + len(c.AddedPeerings) +
		len(c.ProviderSwitches) + len(c.Flips)
}

// Evolve mutates the world's graph by one step and returns the change
// set. Region assignments, measurement roles and registry artefacts
// stay fixed (monthly churn does not re-home networks); only the
// relationship fabric moves. Evolution is deterministic in cfg.Seed
// and can be chained by bumping the seed per step. A non-nil error
// reports an inconsistent graph mutation; the returned change set
// covers everything applied before the failure.
func Evolve(w *World, cfg EvolveConfig) (ChangeSet, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var cs ChangeSet
	g := w.Graph

	// Collect the mutable link pools.
	var peerings []asgraph.Link
	var transits []asgraph.Link // plain P2C, not partial, not clique-internal
	clique := w.CliqueSet()
	g.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
		switch r.Type {
		case asgraph.P2P:
			if !clique[l.A] || !clique[l.B] { // never unravel the clique mesh
				peerings = append(peerings, l)
			}
		case asgraph.P2C:
			if !r.PartialTransit && !r.Hybrid {
				transits = append(transits, l)
			}
		}
	})
	sortLinks(peerings)
	sortLinks(transits)

	// 1. Peering churn: drop k peerings, add k new ones at IXPs.
	k := int(cfg.PeeringChurnFrac * float64(len(peerings)))
	for i := 0; i < k && len(peerings) > 0; i++ {
		idx := rng.Intn(len(peerings))
		l := peerings[idx]
		peerings = append(peerings[:idx], peerings[idx+1:]...)
		g.Remove(l)
		cs.RemovedPeerings = append(cs.RemovedPeerings, l)
	}
	for i := 0; i < k && len(w.IXPs) > 0; i++ {
		ixp := w.IXPs[rng.Intn(len(w.IXPs))]
		if len(ixp.Members) < 2 {
			continue
		}
		a := ixp.Members[rng.Intn(len(ixp.Members))]
		b := ixp.Members[rng.Intn(len(ixp.Members))]
		if a == b {
			continue
		}
		if _, ok := g.Rel(a, b); ok {
			continue
		}
		if err := g.SetRel(a, b, asgraph.P2PRel()); err != nil {
			return cs, fmt.Errorf("topogen: evolve peering: %w", err)
		}
		cs.AddedPeerings = append(cs.AddedPeerings, asgraph.NewLink(a, b))
	}

	// 2. Provider switches: the customer leaves one provider for
	// another AS of the same generator tier (same region pool).
	k = int(cfg.ProviderChurnFrac * float64(len(transits)))
	for i := 0; i < k && len(transits) > 0; i++ {
		idx := rng.Intn(len(transits))
		l := transits[idx]
		transits = append(transits[:idx], transits[idx+1:]...)
		r, ok := g.RelOn(l)
		if !ok || r.Type != asgraph.P2C {
			continue
		}
		old := r.Provider
		cust, ok := l.OtherOK(old)
		if !ok {
			continue // inconsistent provider record; leave the link alone
		}
		// Candidate providers: same type and region as the old one.
		cands := w.sameTierProviders(old)
		if len(cands) == 0 {
			continue
		}
		nw := cands[rng.Intn(len(cands))]
		if nw == old || nw == cust {
			continue
		}
		if _, exists := g.Rel(nw, cust); exists {
			continue
		}
		// Keep the customer connected: only drop the old link after
		// the new one exists, and never orphan a single-homed
		// customer of its last provider before adding the new one.
		if err := g.SetRel(nw, cust, asgraph.P2CRel(nw)); err != nil {
			return cs, fmt.Errorf("topogen: evolve provider switch: %w", err)
		}
		g.Remove(l)
		cs.ProviderSwitches = append(cs.ProviderSwitches, asgraph.NewLink(nw, cust))
	}

	// 3. Relationship flips: P2C -> P2P (a customer grew into a peer)
	// and P2P -> P2C (a peer started buying transit).
	k = int(cfg.RelFlipFrac * float64(g.NumLinks()))
	links := g.Links()
	for i := 0; i < k && len(links) > 0; i++ {
		l := links[rng.Intn(len(links))]
		r, ok := g.RelOn(l)
		if !ok || r.Hybrid || r.PartialTransit {
			continue
		}
		switch r.Type {
		case asgraph.P2C:
			// Only flip if the customer keeps another provider.
			cust, ok := l.OtherOK(r.Provider)
			if !ok || len(g.Providers(cust)) < 2 || clique[cust] {
				continue
			}
			if err := g.SetRel(l.A, l.B, asgraph.P2PRel()); err != nil {
				return cs, fmt.Errorf("topogen: evolve flip: %w", err)
			}
			cs.Flips = append(cs.Flips, l)
		case asgraph.P2P:
			if clique[l.A] && clique[l.B] {
				continue
			}
			// The bigger side becomes the provider; a clique member
			// always does (Tier-1s never buy transit).
			p := l.A
			if w.Graph.Degree(l.B) > w.Graph.Degree(l.A) {
				p = l.B
			}
			if clique[l.A] {
				p = l.A
			} else if clique[l.B] {
				p = l.B
			}
			if err := g.SetRel(l.A, l.B, asgraph.P2CRel(p)); err != nil {
				return cs, fmt.Errorf("topogen: evolve flip: %w", err)
			}
			cs.Flips = append(cs.Flips, l)
		}
	}
	return cs, nil
}

// sameTierProviders lists ASes of the same generator type and region
// as the given provider.
func (w *World) sameTierProviders(p asn.ASN) []asn.ASN {
	t := w.Type[p]
	r := w.Region[p]
	var out []asn.ASN
	for _, a := range w.ASNs {
		if w.Type[a] == t && w.Region[a] == r {
			out = append(out, a)
		}
	}
	return out
}

func sortLinks(s []asgraph.Link) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].A != s[j].A {
			return s[i].A < s[j].A
		}
		return s[i].B < s[j].B
	})
}
