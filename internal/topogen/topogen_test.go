package topogen

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/registry"
)

func smallWorld(t testing.TB, seed int64) *World {
	t.Helper()
	cfg := DefaultConfig(seed).Scaled(1200)
	w, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := smallWorld(t, 7)
	w2 := smallWorld(t, 7)
	if w1.Graph.NumLinks() != w2.Graph.NumLinks() {
		t.Fatalf("link counts differ: %d vs %d", w1.Graph.NumLinks(), w2.Graph.NumLinks())
	}
	l1, l2 := w1.Graph.Links(), w2.Graph.Links()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("link %d differs: %v vs %v", i, l1[i], l2[i])
		}
		r1, _ := w1.Graph.RelOn(l1[i])
		r2, _ := w2.Graph.RelOn(l2[i])
		if r1 != r2 {
			t.Fatalf("rel on %v differs: %v vs %v", l1[i], r1, r2)
		}
	}
	if len(w1.VPs) != len(w2.VPs) {
		t.Fatal("VP sets differ")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	w1 := smallWorld(t, 1)
	w2 := smallWorld(t, 2)
	if w1.Graph.NumLinks() == w2.Graph.NumLinks() &&
		len(w1.VPs) == len(w2.VPs) && len(w1.Publishers) == len(w2.Publishers) {
		t.Error("different seeds produced suspiciously identical worlds")
	}
}

func TestGenerateRejectsTinyConfigs(t *testing.T) {
	if _, err := Generate(Config{NumASes: 10}); err == nil {
		t.Error("tiny world accepted")
	}
	cfg := DefaultConfig(1)
	cfg.CliqueSize = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("degenerate clique accepted")
	}
}

func TestCliqueIsFullMeshAndProviderFree(t *testing.T) {
	w := smallWorld(t, 3)
	if len(w.Clique) < 4 {
		t.Fatalf("clique too small: %d", len(w.Clique))
	}
	for i, a := range w.Clique {
		if len(w.Graph.Providers(a)) != 0 {
			t.Errorf("clique member %d has providers %v", a, w.Graph.Providers(a))
		}
		for _, c := range w.Clique[i+1:] {
			r, ok := w.Graph.Rel(a, c)
			if !ok || r.Type != asgraph.P2P {
				t.Errorf("clique pair %d-%d: rel %v, ok=%v", a, c, r, ok)
			}
		}
	}
}

func TestEveryASReachesClique(t *testing.T) {
	w := smallWorld(t, 4)
	clique := w.CliqueSet()
	// Upward closure: follow provider (and sibling) edges.
	for _, a := range w.ASNs {
		seen := map[asn.ASN]bool{a: true}
		stack := []asn.ASN{a}
		found := false
		for len(stack) > 0 && !found {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if clique[x] {
				found = true
				break
			}
			for _, n := range w.Graph.Neighbors(x) {
				if (n.Role == asgraph.RoleProvider || n.Role == asgraph.RoleSibling) && !seen[n.ASN] {
					seen[n.ASN] = true
					stack = append(stack, n.ASN)
				}
			}
		}
		if !found {
			t.Fatalf("AS %d (%v) cannot reach the clique via providers", a, w.Type[a])
		}
	}
}

func TestRegionAssignmentsAndMapper(t *testing.T) {
	w := smallWorld(t, 5)
	m := w.Mapper()
	mismatch := 0
	for _, a := range w.ASNs {
		if got := m.Region(a); got != w.Region[a] {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Errorf("%d ASNs map to the wrong region via registry files", mismatch)
	}
	// The IANA bootstrap alone must disagree for transferred ASNs:
	// otherwise the refinement step is pointless.
	boot := registry.NewMapper(w.IANA)
	diffs := 0
	for _, a := range w.ASNs {
		if boot.Region(a) != w.Region[a] {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("no transfers generated; delegation refinement is untested")
	}
}

func TestTypeDistribution(t *testing.T) {
	w := smallWorld(t, 6)
	counts := make(map[ASType]int)
	for _, a := range w.ASNs {
		counts[w.Type[a]]++
	}
	if counts[TypeTier1] != len(w.Clique) {
		t.Errorf("tier1 count %d != clique size %d", counts[TypeTier1], len(w.Clique))
	}
	if counts[TypeStub] < len(w.ASNs)/2 {
		t.Errorf("stubs %d should dominate %d ASes", counts[TypeStub], len(w.ASNs))
	}
	if counts[TypeSmallTransit] == 0 || counts[TypeLargeTransit] == 0 {
		t.Error("missing transit tier")
	}
	if counts[TypeHypergiant] != len(w.Hypergiants) {
		t.Errorf("hypergiant count %d != list %d", counts[TypeHypergiant], len(w.Hypergiants))
	}
}

func TestPartialTransitSkew(t *testing.T) {
	w := smallWorld(t, 8)
	perT1 := make(map[asn.ASN]int)
	w.Graph.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
		if r.Type == asgraph.P2C && r.PartialTransit {
			perT1[r.Provider]++
		}
	})
	if len(perT1) == 0 {
		t.Fatal("no partial-transit links generated")
	}
	if len(w.PartialSellers) == 0 {
		t.Fatal("no partial sellers recorded")
	}
	heavy := w.PartialSellers[0]
	for t1, n := range perT1 {
		if t1 != heavy && n > perT1[heavy] {
			t.Errorf("T1 %d has more partial-transit customers (%d) than the heavy T1 %d (%d)",
				t1, n, heavy, perT1[heavy])
		}
	}
	if perT1[heavy] < 2 {
		t.Errorf("heavy T1 has only %d partial-transit customers", perT1[heavy])
	}
}

func TestSpecialStubsPeerWithT1s(t *testing.T) {
	w := smallWorld(t, 9)
	if len(w.SpecialStubs) == 0 {
		t.Fatal("no special stubs")
	}
	clique := w.CliqueSet()
	for _, s := range w.SpecialStubs {
		found := false
		for _, p := range w.Graph.Peers(s) {
			if clique[p] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("special stub %d has no Tier-1 peer", s)
		}
	}
}

func TestSiblingsExistAndMatchOrgTable(t *testing.T) {
	w := smallWorld(t, 10)
	s2s := 0
	w.Graph.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
		if r.Type == asgraph.S2S {
			s2s++
			if !w.Orgs.Siblings(l.A, l.B) {
				t.Errorf("S2S link %v not siblings in org table", l)
			}
		}
	})
	if s2s == 0 {
		t.Error("no sibling links generated")
	}
	if w.Orgs.NumASNs() != len(w.ASNs) {
		t.Errorf("org table covers %d of %d ASNs", w.Orgs.NumASNs(), len(w.ASNs))
	}
}

func TestHybridLinksFlagged(t *testing.T) {
	w := smallWorld(t, 11)
	n := 0
	w.Graph.ForEachRel(func(_ asgraph.Link, r asgraph.Rel) {
		if r.Hybrid {
			n++
			if r.Type != asgraph.P2P {
				t.Errorf("hybrid link with base type %v", r.Type)
			}
		}
	})
	if n == 0 {
		t.Error("no hybrid links flagged")
	}
}

func TestMeasurementRoles(t *testing.T) {
	w := smallWorld(t, 12)
	if len(w.VPs) < len(w.Clique) {
		t.Errorf("VPs %d < clique %d", len(w.VPs), len(w.Clique))
	}
	clique := w.CliqueSet()
	vpSet := make(map[asn.ASN]bool)
	for _, v := range w.VPs {
		vpSet[v] = true
	}
	for a := range clique {
		if !vpSet[a] {
			t.Errorf("clique member %d is not a VP", a)
		}
	}
	if len(w.Publishers) == 0 {
		t.Fatal("no community publishers")
	}
	// The LACNIC publishing knob is zero: validation coverage for L°
	// must be able to collapse, so assert no LACNIC publishers.
	for a := range w.Publishers {
		if w.Region[a] == registry.LACNIC {
			t.Errorf("LACNIC AS %d publishes communities; bias knob broken", a)
		}
	}
}

func TestIXPMembersSortedUnique(t *testing.T) {
	w := smallWorld(t, 13)
	total := 0
	for _, ix := range w.IXPs {
		total += len(ix.Members)
		for i := 1; i < len(ix.Members); i++ {
			if ix.Members[i] <= ix.Members[i-1] {
				t.Fatalf("IXP %d members not sorted/unique", ix.ID)
			}
		}
	}
	if total == 0 {
		t.Error("IXPs have no members")
	}
}

func TestASesOfType(t *testing.T) {
	w := smallWorld(t, 14)
	t1s := w.ASesOfType(TypeTier1)
	if len(t1s) != len(w.Clique) {
		t.Errorf("ASesOfType(T1) = %d, want %d", len(t1s), len(w.Clique))
	}
}

func TestASTypeString(t *testing.T) {
	for ty, want := range map[ASType]string{
		TypeStub: "stub", TypeSmallTransit: "small-transit",
		TypeLargeTransit: "large-transit", TypeTier1: "tier1",
		TypeHypergiant: "hypergiant", ASType(99): "unknown",
	} {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}
