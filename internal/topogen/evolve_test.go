package topogen

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

func TestEvolveDeterministicAndBounded(t *testing.T) {
	w1 := smallWorld(t, 21)
	w2 := smallWorld(t, 21)
	cs1, err1 := Evolve(w1, DefaultEvolveConfig(5))
	cs2, err2 := Evolve(w2, DefaultEvolveConfig(5))
	if err1 != nil || err2 != nil {
		t.Fatalf("evolve: %v / %v", err1, err2)
	}
	if cs1.Total() != cs2.Total() {
		t.Fatalf("change counts differ: %d vs %d", cs1.Total(), cs2.Total())
	}
	if cs1.Total() == 0 {
		t.Fatal("no changes applied")
	}
	l1, l2 := w1.Graph.Links(), w2.Graph.Links()
	if len(l1) != len(l2) {
		t.Fatal("evolved graphs differ in size")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestEvolvePreservesInvariants(t *testing.T) {
	w := smallWorld(t, 22)
	clique := w.CliqueSet()
	for m := 0; m < 5; m++ {
		if _, err := Evolve(w, DefaultEvolveConfig(int64(100+m))); err != nil {
			t.Fatalf("evolve month %d: %v", m, err)
		}
	}
	// Clique mesh intact and provider-free.
	for i, a := range w.Clique {
		if len(w.Graph.Providers(a)) != 0 {
			t.Errorf("clique member %d gained providers %v", a, w.Graph.Providers(a))
		}
		for _, b := range w.Clique[i+1:] {
			if r, ok := w.Graph.Rel(a, b); !ok || r.Type != asgraph.P2P {
				t.Errorf("clique link %d-%d broken: %v %v", a, b, r, ok)
			}
		}
	}
	// Everyone still reaches the clique upward (no orphaned customer).
	for _, a := range w.ASNs {
		if !reachesClique(w, a, clique) {
			t.Fatalf("AS %d orphaned after evolution", a)
		}
	}
}

func reachesClique(w *World, a asn.ASN, clique map[asn.ASN]bool) bool {
	seen := map[asn.ASN]bool{a: true}
	stack := []asn.ASN{a}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if clique[x] {
			return true
		}
		for _, n := range w.Graph.Neighbors(x) {
			if (n.Role == asgraph.RoleProvider || n.Role == asgraph.RoleSibling) && !seen[n.ASN] {
				seen[n.ASN] = true
				stack = append(stack, n.ASN)
			}
		}
	}
	return false
}
