package topogen

import (
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/org"
	"breval/internal/registry"
)

// IXP is one Internet Exchange Point: a switching fabric in a region
// with a member list.
type IXP struct {
	ID      int
	Region  registry.Region
	Members []asn.ASN
}

// World is a fully generated synthetic Internet, including the
// registry artefacts and measurement roles the validation pipeline
// consumes.
type World struct {
	Config Config

	// Graph is the ground-truth relationship graph (P2C/P2P/S2S with
	// partial-transit and hybrid attributes).
	Graph *asgraph.Graph
	// ASNs lists every allocated ASN in ascending order.
	ASNs []asn.ASN
	// Region is the ground-truth home region per ASN.
	Region map[asn.ASN]registry.Region
	// Type is the generator role per ASN.
	Type map[asn.ASN]ASType

	// Clique is the Tier-1 clique (our stand-in for the Wikipedia
	// Tier-1 list the paper uses), Hypergiants the Böttger-style
	// hypergiant list, SpecialStubs the research/anycast/CDN stubs
	// that peer with Tier-1s.
	Clique       []asn.ASN
	Hypergiants  []asn.ASN
	SpecialStubs []asn.ASN
	// PartialSellers lists the Tier-1s selling partial transit, the
	// heavy (AS714-style) seller first.
	PartialSellers []asn.ASN

	IXPs []IXP
	// Facilities are colocation facilities (the PeeringDB-style
	// co-presence layer behind Appendix C's feature 11); each has a
	// region and a member list like an IXP.
	Facilities []IXP

	// MANRS lists ASes participating in MANRS; Hijackers flags the
	// few ASes behaving like BGP serial hijackers (Appendix C,
	// feature 12).
	MANRS     map[asn.ASN]bool
	Hijackers map[asn.ASN]bool

	// VPs are the route-collector vantage-point ASes.
	VPs []asn.ASN
	// Publishers marks ASes that publish a relationship-encoding BGP
	// community dictionary; Strippers marks ASes that strip foreign
	// communities on export. IRRRegistrants lists ASes maintaining
	// RPSL aut-num objects in an IRR (ascending).
	Publishers     map[asn.ASN]bool
	Strippers      map[asn.ASN]bool
	IRRRegistrants []asn.ASN

	// Orgs is the AS-to-Organization table (multi-AS organisations
	// produce sibling pairs).
	Orgs *org.Table

	// IANA is the initial block registry; Delegations holds one
	// delegated-extended file per region, including post-IANA
	// transfers.
	IANA        *asn.Registry
	Delegations []*registry.File
}

// TypeOf returns the generator role of a (TypeStub for unknown ASNs).
func (w *World) TypeOf(a asn.ASN) ASType { return w.Type[a] }

// ASesOfType returns all ASes with the given role, ascending.
func (w *World) ASesOfType(t ASType) []asn.ASN {
	var out []asn.ASN
	for _, a := range w.ASNs {
		if w.Type[a] == t {
			out = append(out, a)
		}
	}
	return out
}

// Mapper builds the §5-style region mapper from the world's IANA
// registry and delegation files.
func (w *World) Mapper() *registry.Mapper {
	m := registry.NewMapper(w.IANA)
	for _, f := range w.Delegations {
		m.Apply(f)
	}
	return m
}

// CliqueSet returns the clique as a set.
func (w *World) CliqueSet() map[asn.ASN]bool {
	s := make(map[asn.ASN]bool, len(w.Clique))
	for _, a := range w.Clique {
		s[a] = true
	}
	return s
}

// HypergiantSet returns the hypergiants as a set.
func (w *World) HypergiantSet() map[asn.ASN]bool {
	s := make(map[asn.ASN]bool, len(w.Hypergiants))
	for _, a := range w.Hypergiants {
		s[a] = true
	}
	return s
}

// sortASNs sorts a slice of ASNs ascending, in place, and returns it.
func sortASNs(s []asn.ASN) []asn.ASN {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
