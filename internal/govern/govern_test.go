package govern

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"breval/internal/resilience"
)

func TestLimiterBasics(t *testing.T) {
	l := NewLimiter(2)
	if l.Limit() != 2 || l.Max() != 2 || l.InUse() != 0 {
		t.Fatalf("fresh limiter: limit=%d max=%d inUse=%d", l.Limit(), l.Max(), l.InUse())
	}
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if !l.TryAcquire() {
		t.Fatal("second permit refused below the limit")
	}
	if l.TryAcquire() {
		t.Fatal("third permit granted above the limit")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("released permit not reusable")
	}
	l.Release()
	l.Release()
	if l.InUse() != 0 {
		t.Fatalf("inUse = %d after releasing everything", l.InUse())
	}
}

func TestLimiterNilIsUnlimited(t *testing.T) {
	var l *Limiter
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !l.TryAcquire() {
		t.Fatal("nil limiter refused a permit")
	}
	l.Release()
	l.SetLimit(1)
	if l.Limit() != 0 || l.Max() != 0 || l.InUse() != 0 {
		t.Fatal("nil limiter reports non-zero stats")
	}
}

func TestLimiterOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewLimiter(1).Release()
}

func TestLimiterAcquireHonoursCancel(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestLimiterRaiseWakesWaiters: a blocked Acquire proceeds as soon as
// SetLimit raises the limit, without any Release happening.
func TestLimiterRaiseWakesWaiters(t *testing.T) {
	l := NewLimiter(2)
	l.SetLimit(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got <- l.Acquire(context.Background())
	}()
	// The goroutine must be blocked: limit is 1 and the permit is held.
	select {
	case err := <-got:
		t.Fatalf("Acquire returned (%v) while at the limit", err)
	case <-time.After(20 * time.Millisecond):
	}
	l.SetLimit(2)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("raising the limit did not wake the blocked Acquire")
	}
	wg.Wait()
}

// TestLimiterSetLimitClamps: the limit never leaves [1, max].
func TestLimiterSetLimitClamps(t *testing.T) {
	l := NewLimiter(4)
	l.SetLimit(0)
	if l.Limit() != 1 {
		t.Fatalf("limit = %d, want floor 1", l.Limit())
	}
	l.SetLimit(99)
	if l.Limit() != 4 {
		t.Fatalf("limit = %d, want ceiling 4", l.Limit())
	}
}

// governorAt builds an un-started governor whose memory sample is the
// test's to control; step is driven directly so the state machine is
// tested without timing.
func governorAt(sample *int64, soft, hard int64, workers int) *Governor {
	return New(Config{
		SoftBytes:  soft,
		HardBytes:  hard,
		MaxWorkers: workers,
		Sample:     func() int64 { return *sample },
	})
}

// TestGovernorBackpressureProperty is the governor property test:
// under sustained pressure the limit shrinks monotonically to the
// floor; after release it grows monotonically back to the ceiling and
// the state returns to nominal.
func TestGovernorBackpressureProperty(t *testing.T) {
	sample := int64(50)
	g := governorAt(&sample, 100, 0, 8)
	now := time.Now()

	g.step(now)
	if g.State() != StateNominal || g.lim.Limit() != 8 {
		t.Fatalf("below watermark: state=%v limit=%d", g.State(), g.lim.Limit())
	}

	sample = 150
	prev := g.lim.Limit()
	for i := 0; i < 10; i++ {
		g.step(now)
		cur := g.lim.Limit()
		if cur > prev {
			t.Fatalf("limit grew under pressure: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if g.State() != StatePressure {
		t.Fatalf("state = %v under pressure, want pressure", g.State())
	}
	if prev != 1 {
		t.Fatalf("limit = %d after sustained pressure, want floor 1", prev)
	}

	// Recovery needs the sample below the hysteresis band (90% of soft).
	sample = 95
	g.step(now)
	if g.lim.Limit() != 1 {
		t.Fatalf("limit grew inside the hysteresis band: %d", g.lim.Limit())
	}
	sample = 50
	for i := 0; i < 20; i++ {
		g.step(now)
		cur := g.lim.Limit()
		if cur < prev {
			t.Fatalf("limit shrank during recovery: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev != 8 || g.State() != StateNominal {
		t.Fatalf("after recovery: limit=%d state=%v, want 8/nominal", prev, g.State())
	}
	if g.Decisions() == 0 {
		t.Fatal("no decisions counted")
	}
}

// TestGovernorPressureInjection drives the watermark machine through
// the PressureSite data fault, the same mechanism the chaos harness
// and breval's -inject-pressure use: the real sample is tiny, the
// injected inflation crosses the watermark.
func TestGovernorPressureInjection(t *testing.T) {
	defer resilience.ClearFaults()
	sample := int64(10)
	g := governorAt(&sample, 1000, 0, 4)
	resilience.InjectAt(PressureSite, resilience.Fault{
		Kind:    resilience.KindCorrupt,
		Times:   1,
		Corrupt: func(v any) any { return v.(int64) + 2000 },
	})
	now := time.Now()
	g.step(now)
	if g.State() != StatePressure || g.lim.Limit() != 2 {
		t.Fatalf("injected pressure: state=%v limit=%d, want pressure/2", g.State(), g.lim.Limit())
	}
	// Fault exhausted (Times: 1): the next sample is honest and far
	// below the hysteresis band, so the limit recovers.
	g.step(now)
	if g.lim.Limit() != 3 {
		t.Fatalf("limit = %d after pressure released, want 3", g.lim.Limit())
	}
}

// TestGovernorShedSticky: the hard watermark collapses the limit to
// one permit, fires the shed callback exactly once, and never grows
// the limit again — even after the pressure disappears.
func TestGovernorShedSticky(t *testing.T) {
	sample := int64(50)
	g := governorAt(&sample, 100, 200, 8)
	sheds := 0
	g.OnShed(func() { sheds++ })
	now := time.Now()

	sample = 250
	g.step(now)
	g.step(now)
	if g.State() != StateShed || !g.Shed() {
		t.Fatalf("state = %v after hard watermark, want shed", g.State())
	}
	if g.lim.Limit() != 1 {
		t.Fatalf("limit = %d after shed, want 1", g.lim.Limit())
	}
	if sheds != 1 {
		t.Fatalf("shed callback fired %d times, want exactly 1", sheds)
	}
	sample = 10
	for i := 0; i < 5; i++ {
		g.step(now)
	}
	if g.lim.Limit() != 1 || g.State() != StateShed {
		t.Fatalf("shed not sticky: limit=%d state=%v", g.lim.Limit(), g.State())
	}
}

// TestGovernorRuntimeMemoryLimit: Start wires the hard watermark into
// the Go runtime's soft memory limit and Stop restores the previous
// value.
func TestGovernorRuntimeMemoryLimit(t *testing.T) {
	before := debug.SetMemoryLimit(-1)
	defer debug.SetMemoryLimit(before)
	g := New(Config{HardBytes: 1 << 42, Poll: time.Hour})
	g.Start(context.Background())
	if got := debug.SetMemoryLimit(-1); got != 1<<42 {
		t.Fatalf("runtime memory limit = %d during run, want %d", got, int64(1)<<42)
	}
	g.Stop()
	g.Stop() // idempotent
	if got := debug.SetMemoryLimit(-1); got != before {
		t.Fatalf("runtime memory limit = %d after Stop, want restored %d", got, before)
	}
}

func TestNilGovernorIsInert(t *testing.T) {
	var g *Governor
	g.Start(context.Background())
	g.Stop()
	if g.Limiter() != nil || g.State() != StateNominal || g.Shed() || g.Decisions() != 0 {
		t.Fatal("nil governor is not inert")
	}
	if got := From(context.Background()); got != nil {
		t.Fatalf("From(empty ctx) = %v, want nil", got)
	}
}

// TestSuperviseStall: a supervised worker that stops beating has its
// context cancelled with ErrStalled, and Resolve maps the
// cancellation-shaped error the worker observed into a retryable
// ErrStalled wrapper.
func TestSuperviseStall(t *testing.T) {
	g := New(Config{StallTimeout: time.Millisecond})
	ctx := Into(context.Background(), g)
	sctx, hb := Supervise(ctx, "worker", 0)
	if hb == nil {
		t.Fatal("Supervise returned no heartbeat despite StallTimeout")
	}
	defer hb.Stop()

	// Scan from one hour in the future: the deadline has long passed.
	stalled := g.mon.scan(time.Now().Add(time.Hour))
	if len(stalled) != 1 || stalled[0] != "worker" {
		t.Fatalf("scan = %v, want [worker]", stalled)
	}
	if sctx.Err() == nil {
		t.Fatal("stalled context not cancelled")
	}
	if cause := context.Cause(sctx); !errors.Is(cause, ErrStalled) {
		t.Fatalf("cause = %v, want ErrStalled", cause)
	}
	if !hb.Stalled() {
		t.Fatal("heartbeat does not report the stall")
	}
	resolved := hb.Resolve(sctx.Err())
	if !errors.Is(resolved, ErrStalled) {
		t.Fatalf("Resolve = %v, want ErrStalled wrapper", resolved)
	}
	if errors.Is(resolved, context.Canceled) {
		t.Fatal("resolved error still looks like a caller cancel: the retry policy would not re-attempt it")
	}
	// One stall is one decision: the heartbeat was deregistered.
	if again := g.mon.scan(time.Now().Add(2 * time.Hour)); len(again) != 0 {
		t.Fatalf("second scan re-reported the stall: %v", again)
	}
}

// TestSuperviseBeatsKeepWorkerAlive: a beating heartbeat survives the
// scan, and every resilience.Checkpoint call counts as a beat via the
// BeatFunc hook.
func TestSuperviseBeatsKeepWorkerAlive(t *testing.T) {
	g := New(Config{StallTimeout: time.Hour})
	ctx := Into(context.Background(), g)
	sctx, hb := Supervise(ctx, "worker", 0)
	defer hb.Stop()

	before := hb.last.Load()
	time.Sleep(time.Millisecond)
	if err := resilience.Checkpoint(sctx, "some.site"); err != nil {
		t.Fatal(err)
	}
	if hb.last.Load() <= before {
		t.Fatal("Checkpoint did not beat the supervised heartbeat")
	}
	if stalled := g.mon.scan(time.Now()); len(stalled) != 0 {
		t.Fatalf("live worker reported stalled: %v", stalled)
	}
	if sctx.Err() != nil {
		t.Fatal("live worker's context cancelled")
	}
}

// TestSuperviseNoGovernor: without a governor (or with the watchdog
// disabled) Supervise is a transparent no-op and the nil heartbeat's
// methods are safe.
func TestSuperviseNoGovernor(t *testing.T) {
	ctx := context.Background()
	sctx, hb := Supervise(ctx, "worker", 0)
	if sctx != ctx || hb != nil {
		t.Fatal("Supervise without a governor is not a no-op")
	}
	hb.Beat()
	hb.Stop()
	if hb.Stalled() {
		t.Fatal("nil heartbeat stalled")
	}
	if err := hb.Resolve(context.Canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil Resolve rewrote the error: %v", err)
	}

	g := New(Config{SoftBytes: 100}) // watchdog disabled
	gctx := Into(ctx, g)
	if sctx, hb := Supervise(gctx, "worker", 0); sctx != gctx || hb != nil {
		t.Fatal("Supervise with watchdog disabled is not a no-op")
	}
	// An explicit deadline opts in even without a configured timeout.
	if _, hb := Supervise(gctx, "worker", time.Minute); hb == nil {
		t.Fatal("explicit deadline did not arm supervision")
	} else {
		hb.Stop()
	}
}

// BenchmarkLimiterNil measures the ungoverned hot path: worker loops
// pay one nil check per item when no governor is installed.
func BenchmarkLimiterNil(b *testing.B) {
	var l *Limiter
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_ = l.Acquire(ctx)
		l.Release()
	}
}

// BenchmarkLimiterUncontended measures the governed-but-idle hot
// path: acquire/release with permits to spare.
func BenchmarkLimiterUncontended(b *testing.B) {
	l := NewLimiter(8)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_ = l.Acquire(ctx)
		l.Release()
	}
}

// TestShedRecover: with ShedRecover set (the long-lived-server mode),
// a shed governor returns to admitting work once the heap falls below
// the hysteresis band, and a later hard crossing fires the one-shot
// shed callback again. Without the flag, shed stays sticky.
func TestShedRecover(t *testing.T) {
	sample := int64(50)
	sheds := 0
	g := New(Config{
		SoftBytes:   100,
		HardBytes:   200,
		MaxWorkers:  4,
		ShedRecover: true,
		Sample:      func() int64 { return sample },
	})
	g.OnShed(func() { sheds++ })
	now := time.Now()

	sample = 250
	g.step(now)
	if g.State() != StateShed || g.lim.Limit() != 1 || sheds != 1 {
		t.Fatalf("after hard crossing: state=%v limit=%d sheds=%d", g.State(), g.lim.Limit(), sheds)
	}
	// Inside the hysteresis band nothing recovers.
	sample = 95
	g.step(now)
	if g.State() != StateShed {
		t.Fatalf("recovered inside hysteresis band: %v", g.State())
	}
	// Below the band the governor leaves shed and grows the limit back.
	sample = 50
	for i := 0; i < 10; i++ {
		g.step(now)
	}
	if g.State() != StateNominal || g.lim.Limit() != 4 {
		t.Fatalf("after recovery: state=%v limit=%d, want nominal/4", g.State(), g.lim.Limit())
	}
	// A second episode fires the callback again.
	sample = 250
	g.step(now)
	if g.State() != StateShed || sheds != 2 {
		t.Fatalf("second episode: state=%v sheds=%d, want shed/2", g.State(), sheds)
	}

	// Sticky default: no recovery no matter how low the heap falls.
	sample = 250
	sticky := governorAt(&sample, 100, 200, 4)
	sticky.step(now)
	sample = 10
	for i := 0; i < 10; i++ {
		sticky.step(now)
	}
	if sticky.State() != StateShed || sticky.lim.Limit() != 1 {
		t.Fatalf("sticky governor recovered: state=%v limit=%d", sticky.State(), sticky.lim.Limit())
	}
}
