// Package govern is the pipeline's resource-governance layer: a
// memory governor with soft/hard watermarks driving an adaptive
// concurrency limiter, and a heartbeat watchdog supervising worker
// pools.
//
// The governor polls the heap in a background loop. Crossing the
// *soft* watermark signals backpressure: the shared Limiter's permit
// count shrinks (halving per decision, floor 1), so the propagation
// workers, feature-extraction shards and concurrent inference stages
// — all of which acquire one permit per unit of work — thin out
// without restarting. Dropping back under the soft watermark (with
// hysteresis) grows the limit back one permit per decision. Crossing
// the *hard* watermark triggers graceful load-shed: the limiter
// collapses to a single permit for the rest of the run, the OS is
// asked to reclaim free heap, and the pipeline records a
// resilience.StatusShed entry — the run completes degraded instead of
// dying on OOM. Every output is bit-identical at any permit level
// (the parallel stages merge deterministically), so governor
// decisions can never change results, only pacing.
//
// The watchdog half supervises heartbeats (see watchdog.go): every
// resilience.Checkpoint site inside supervised work doubles as a
// beat, and a worker silent past its deadline has its context
// cancelled with ErrStalled so the resilience bounded-retry policy
// re-attempts the stage.
//
// All entry points are nil-safe: with no governor in the context the
// instrumented code paths pay a nil check and nothing else. The
// deterministic chaos/soak harness composing fault injection with
// pressure events lives in the chaos subpackage; the watermark state
// machine is documented in docs/resilience.md.
package govern

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"breval/internal/obs"
	"breval/internal/resilience"
)

// PressureSite is the data-fault injection site the governor passes
// every memory sample through: tests and the chaos harness register a
// KindCorrupt fault there to inflate the observed heap size and force
// watermark crossings deterministically, without allocating anything.
const PressureSite = "govern.pressure.sample"

// State is the governor's watermark state.
type State int32

// Watermark states. Transitions: Nominal ↔ Pressure (soft watermark,
// with hysteresis) and Nominal/Pressure → Shed (hard watermark,
// sticky for the rest of the run).
const (
	StateNominal State = iota
	StatePressure
	StateShed
)

// String names the state for reports and counters.
func (s State) String() string {
	switch s {
	case StatePressure:
		return "pressure"
	case StateShed:
		return "shed"
	default:
		return "nominal"
	}
}

// Config configures a Governor. The zero value disables everything.
type Config struct {
	// SoftBytes is the backpressure watermark: heap use at or above it
	// shrinks the limiter. 0 disables pressure adaptation.
	SoftBytes int64
	// HardBytes is the load-shed watermark: heap use at or above it
	// collapses the limiter to one permit for the rest of the run and
	// fires the shed callback. 0 disables shedding. When set it is
	// also wired into debug.SetMemoryLimit so the Go runtime GC
	// defends the same ceiling.
	HardBytes int64
	// Poll is the sampling interval; 0 selects 100ms.
	Poll time.Duration
	// MaxWorkers is the limiter ceiling; 0 selects GOMAXPROCS.
	MaxWorkers int
	// StallTimeout is the default heartbeat deadline for supervised
	// work; 0 disables the watchdog (Supervise becomes a no-op unless
	// given an explicit deadline).
	StallTimeout time.Duration
	// ShedRecover lets the governor leave the shed state once heap use
	// drops back under the soft watermark's hysteresis band (requires
	// SoftBytes). Batch runs keep the sticky default — a run that hit
	// the hard watermark stays conservative to its end — but a
	// long-lived server must be able to admit work again after the
	// requests that caused the pressure finish and their memory is
	// collected.
	ShedRecover bool
	// Sample overrides the memory reading, for tests; nil reads
	// runtime.ReadMemStats().HeapAlloc. Either way the sample then
	// passes through the PressureSite data fault.
	Sample func() int64
}

// Enabled reports whether the config asks for any governance.
func (c Config) Enabled() bool {
	return c.SoftBytes > 0 || c.HardBytes > 0 || c.StallTimeout > 0
}

// Governor owns the limiter, the watermark state machine and the
// watchdog monitor, and runs the polling loop.
type Governor struct {
	cfg Config
	lim *Limiter
	mon *monitor
	col *obs.Collector

	state    atomic.Int32
	decision atomic.Int64 // total watermark decisions, for tests

	onShed   func()
	shedOnce sync.Once

	stop     chan struct{}
	done     chan struct{}
	prevMem  int64
	stopOnce sync.Once
}

// New builds a governor from cfg. Start must be called to launch the
// polling loop.
func New(cfg Config) *Governor {
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Sample == nil {
		cfg.Sample = heapSample
	}
	return &Governor{
		cfg:  cfg,
		lim:  NewLimiter(cfg.MaxWorkers),
		mon:  newMonitor(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

func heapSample() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// Limiter returns the shared permit pool; nil on a nil governor, which
// Limiter methods treat as "no limit".
func (g *Governor) Limiter() *Limiter {
	if g == nil {
		return nil
	}
	return g.lim
}

// State returns the current watermark state.
func (g *Governor) State() State {
	if g == nil {
		return StateNominal
	}
	return State(g.state.Load())
}

// Shed reports whether the hard watermark fired.
func (g *Governor) Shed() bool { return g.State() == StateShed }

// Decisions returns the number of watermark decisions taken so far.
func (g *Governor) Decisions() int64 {
	if g == nil {
		return 0
	}
	return g.decision.Load()
}

// OnShed registers fn to run exactly once when the hard watermark
// fires. Must be set before Start.
func (g *Governor) OnShed(fn func()) { g.onShed = fn }

// Start launches the polling loop. The collector (for the govern.*
// counters) is taken from ctx. When HardBytes is set the Go runtime's
// own soft memory limit is raised to it, so the GC defends the same
// ceiling the governor sheds at; Stop restores the previous limit.
func (g *Governor) Start(ctx context.Context) {
	if g == nil {
		return
	}
	g.col = obs.From(ctx)
	g.col.SetGauge("govern.limit", float64(g.lim.Limit()))
	if g.cfg.HardBytes > 0 {
		g.prevMem = debug.SetMemoryLimit(g.cfg.HardBytes)
	}
	go func() {
		defer close(g.done)
		t := time.NewTicker(g.cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.step(time.Now())
			}
		}
	}()
}

// Stop terminates the polling loop, takes one final governance
// decision, and restores the runtime memory limit. Safe to call more
// than once and on a nil governor.
//
// The final step guarantees every governed run makes at least one
// watermark decision before its ledger closes: a short CPU-saturated
// run can starve the polling goroutine so badly that the first tick
// lands only as the run ends, and an injected hard-watermark crossing
// (tests, -inject-pressure, the chaos harness) must still surface
// deterministically as a StatusShed entry rather than depending on
// scheduler luck. Callers therefore Stop the governor before they
// snapshot the run report.
func (g *Governor) Stop() {
	if g == nil {
		return
	}
	g.stopOnce.Do(func() {
		close(g.stop)
		<-g.done
		g.step(time.Now())
		if g.cfg.HardBytes > 0 {
			debug.SetMemoryLimit(g.prevMem)
		}
	})
}

// recoverFactor is the hysteresis band: the limit only grows back once
// heap use drops below 90% of the soft watermark, so a heap hovering
// at the watermark does not make the limit oscillate every poll.
const recoverFactor = 0.9

// step takes one governance decision from one memory sample. Split
// out (and driven directly by tests) so the state machine is
// verifiable without timing.
func (g *Governor) step(now time.Time) {
	// A stalled worker's cancellation surfaces in the RunReport through
	// the failing stage itself (ErrStalled); the counter records the
	// governor's side of the decision.
	for range g.mon.scan(now) {
		g.col.Add("govern.watchdog.stalls", 1)
	}

	sample := resilience.CorruptAt(PressureSite, g.cfg.Sample())
	g.col.SetGauge("govern.heap_bytes", float64(sample))

	switch {
	case g.cfg.HardBytes > 0 && sample >= g.cfg.HardBytes:
		g.decision.Add(1)
		g.shed()
	case g.cfg.SoftBytes > 0 && sample >= g.cfg.SoftBytes:
		g.decision.Add(1)
		if g.State() == StateShed {
			return
		}
		g.state.Store(int32(StatePressure))
		old := g.lim.Limit()
		g.lim.SetLimit(old / 2)
		if cur := g.lim.Limit(); cur != old {
			g.col.Add("govern.soft_watermark", 1)
			g.col.SetGauge("govern.limit", float64(cur))
		}
	case g.cfg.SoftBytes > 0 &&
		(g.State() == StatePressure || (g.State() == StateShed && g.cfg.ShedRecover)) &&
		float64(sample) < float64(g.cfg.SoftBytes)*recoverFactor:
		g.decision.Add(1)
		if g.State() == StateShed {
			// Leaving shed: re-arm the one-shot callback so a later
			// crossing fires it (and its ledger entry) again. step runs
			// on a single goroutine, so replacing the Once is safe.
			g.state.Store(int32(StatePressure))
			g.shedOnce = sync.Once{}
			g.col.Add("govern.shed_recover", 1)
		}
		old := g.lim.Limit()
		g.lim.SetLimit(old + 1)
		cur := g.lim.Limit()
		if cur != old {
			g.col.Add("govern.recover", 1)
			g.col.SetGauge("govern.limit", float64(cur))
		}
		if cur == g.lim.Max() {
			g.state.Store(int32(StateNominal))
		}
	}
}

// shed is the hard-watermark action: single-permit mode for the rest
// of the run, an attempt to hand free heap back to the OS, and the
// one-shot shed callback (the pipeline uses it to checkpoint its
// ledger entry). Sticky: once shed, the governor never grows the
// limit again — a run that hit the hard watermark stays conservative.
func (g *Governor) shed() {
	g.state.Store(int32(StateShed))
	g.lim.SetLimit(1)
	g.col.SetGauge("govern.limit", 1)
	g.shedOnce.Do(func() {
		g.col.Add("govern.hard_watermark", 1)
		debug.FreeOSMemory()
		if g.onShed != nil {
			g.onShed()
		}
	})
}

// ctxKey carries the governor in a context.
type ctxKey struct{}

// Into returns a context carrying g.
func Into(ctx context.Context, g *Governor) context.Context {
	return context.WithValue(ctx, ctxKey{}, g)
}

// From returns the context's governor, or nil. All Governor and
// Limiter methods are nil-safe, so callers never branch.
func From(ctx context.Context) *Governor {
	g, _ := ctx.Value(ctxKey{}).(*Governor)
	return g
}
