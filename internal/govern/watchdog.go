package govern

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"breval/internal/resilience"
)

// ErrStalled is the cancellation cause the watchdog uses when a
// supervised worker misses its heartbeat deadline. It deliberately
// does not wrap context.Canceled: the resilience retry policy treats
// cancellation as "the caller asked us to stop" and never retries it,
// whereas a stall is a transient wedge the bounded-retry policy should
// re-attempt.
var ErrStalled = errors.New("govern: worker stalled past heartbeat deadline")

// Heartbeat is one supervised unit of work. Workers call Beat inside
// their loops (every resilience.Checkpoint site beats automatically,
// see the BeatFunc hook in govern.go); the governor's watchdog cancels
// the supervised context when beats stop arriving for longer than the
// deadline. All methods are nil-safe no-ops.
type Heartbeat struct {
	name     string
	deadline time.Duration
	last     atomic.Int64 // unix nanos of the most recent beat
	stalled  atomic.Bool
	cancel   context.CancelCauseFunc
	mon      *monitor
}

// Beat records liveness. Safe for concurrent use from many workers.
func (h *Heartbeat) Beat() {
	if h == nil {
		return
	}
	h.last.Store(time.Now().UnixNano())
}

// Stop deregisters the heartbeat from the watchdog. Always call it
// when the supervised work ends, typically via defer.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	if h.mon != nil {
		h.mon.remove(h)
	}
}

// Stalled reports whether the watchdog cancelled this heartbeat's
// context for missing its deadline.
func (h *Heartbeat) Stalled() bool { return h != nil && h.stalled.Load() }

// Resolve maps a supervised stage's error: when the watchdog stalled
// the work, the cancellation-shaped error the workers observed is
// replaced with an ErrStalled wrapper so the resilience retry policy
// re-attempts the stage instead of treating it as a caller cancel.
func (h *Heartbeat) Resolve(err error) error {
	if h == nil || err == nil || !h.Stalled() {
		return err
	}
	return fmt.Errorf("%s: %w", h.name, ErrStalled)
}

// hbKey carries the innermost heartbeat in a context so that every
// resilience.Checkpoint site inside supervised work beats it.
type hbKey struct{}

// heartbeatFrom returns the context's heartbeat, or nil.
func heartbeatFrom(ctx context.Context) *Heartbeat {
	h, _ := ctx.Value(hbKey{}).(*Heartbeat)
	return h
}

// monitor is the watchdog registry: the governor's poll loop scans it
// and cancels heartbeats whose last beat is older than their deadline.
type monitor struct {
	mu  sync.Mutex
	set map[*Heartbeat]struct{}
}

func newMonitor() *monitor { return &monitor{set: map[*Heartbeat]struct{}{}} }

func (m *monitor) add(h *Heartbeat) {
	m.mu.Lock()
	m.set[h] = struct{}{}
	m.mu.Unlock()
}

func (m *monitor) remove(h *Heartbeat) {
	m.mu.Lock()
	delete(m.set, h)
	m.mu.Unlock()
}

// scan cancels every registered heartbeat whose deadline has passed,
// returning the names of the stalled ones. A cancelled heartbeat is
// deregistered: one stall is one decision.
func (m *monitor) scan(now time.Time) []string {
	m.mu.Lock()
	var stalled []*Heartbeat
	for h := range m.set {
		if now.UnixNano()-h.last.Load() > int64(h.deadline) {
			stalled = append(stalled, h)
			delete(m.set, h)
		}
	}
	m.mu.Unlock()
	names := make([]string, 0, len(stalled))
	for _, h := range stalled {
		h.stalled.Store(true)
		h.cancel(ErrStalled)
		names = append(names, h.name)
	}
	return names
}

// Supervise registers a heartbeat named name with the context's
// governor and returns a derived context the watchdog can cancel. The
// returned heartbeat must be Stopped when the work completes. With no
// governor in ctx (or watchdog supervision disabled) it returns ctx
// unchanged and a nil heartbeat, both safe to use.
//
// deadline 0 selects the governor's configured stall timeout.
func Supervise(ctx context.Context, name string, deadline time.Duration) (context.Context, *Heartbeat) {
	g := From(ctx)
	if g == nil || g.cfg.StallTimeout <= 0 && deadline <= 0 {
		return ctx, nil
	}
	if deadline <= 0 {
		deadline = g.cfg.StallTimeout
	}
	cctx, cancel := context.WithCancelCause(ctx)
	h := &Heartbeat{name: name, deadline: deadline, cancel: cancel, mon: g.mon}
	h.Beat()
	g.mon.add(h)
	return context.WithValue(cctx, hbKey{}, h), h
}

// init installs the heartbeat hook: every resilience.Checkpoint call
// inside supervised work doubles as a beat, so stage runners and
// worker loops publish liveness with no extra call sites.
func init() {
	resilience.BeatFunc = func(ctx context.Context) {
		heartbeatFrom(ctx).Beat()
	}
}
