package chaos

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/core"
	"breval/internal/govern"
	"breval/internal/resilience"
	"breval/internal/wire"
)

func testAlgos() []string { return []string{core.AlgoASRank, core.AlgoGao} }

// TestGenerateDeterministic: the same seed always yields the same
// storm; nearby seeds yield different ones; events are well-formed and
// never stack two faults on one site.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, testAlgos(), false)
	b := Generate(42, testAlgos(), false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different storms:\n%s\n%s", a, b)
	}
	if len(a.Events) < 2 || len(a.Events) > 4 {
		t.Fatalf("storm has %d events, want 2-4: %s", len(a.Events), a)
	}
	sites := map[string]bool{}
	for _, e := range a.Events {
		if sites[e.Site] {
			t.Fatalf("site %s carries two faults: %s", e.Site, a)
		}
		sites[e.Site] = true
		if e.Times < 1 {
			t.Fatalf("unbounded event %s", e)
		}
	}
	differs := false
	for seed := int64(1); seed <= 16 && !differs; seed++ {
		differs = !reflect.DeepEqual(Generate(seed, testAlgos(), false).Events, a.Events)
	}
	if !differs {
		t.Fatal("16 distinct seeds all generated the same storm")
	}
}

// TestGenerateCoversKinds: across a modest seed range every event
// kind appears, so a soak of a few storms exercises crashes, panics,
// errors and pressure, not just one failure mode.
func TestGenerateCoversKinds(t *testing.T) {
	seen := map[Kind]bool{}
	for seed := int64(0); seed < 64; seed++ {
		for _, e := range Generate(seed, testAlgos(), false).Events {
			seen[e.Kind] = true
		}
	}
	for _, k := range []Kind{KindCrash, KindPanic, KindError, KindPressureSoft, KindPressureHard} {
		if !seen[k] {
			t.Errorf("kind %s never generated in 64 seeds", k)
		}
	}
}

// TestInstallPressureInflates: an installed pressure event rewrites
// the governor's sample through the PressureSite data fault by the
// corresponding watermark.
func TestInstallPressureInflates(t *testing.T) {
	defer resilience.ClearFaults()
	gc := govern.Config{SoftBytes: 1000, HardBytes: 4000}
	Schedule{Events: []Event{{Site: govern.PressureSite, Kind: KindPressureHard, Times: 1}}}.Install(gc)
	if got := resilience.CorruptAt(govern.PressureSite, int64(7)); got != 7+gc.HardBytes {
		t.Fatalf("inflated sample = %d, want %d", got, 7+gc.HardBytes)
	}
	// Times: 1 — the next sample is honest again.
	if got := resilience.CorruptAt(govern.PressureSite, int64(7)); got != 7 {
		t.Fatalf("exhausted fault still fired: %d", got)
	}
}

// TestSoakFiveStorms is the acceptance soak: five seeded fault storms
// over a small world, each recovered through the restart loop, every
// recovered artifact set byte-identical to the fault-free baseline.
func TestSoakFiveStorms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline many times")
	}
	s := core.DefaultScenario(1)
	s.NumASes = 450
	s.Algorithms = testAlgos()
	rep, err := Soak(context.Background(), Config{
		Seed:     42,
		Runs:     5,
		Scenario: s,
		Dir:      t.TempDir(),
		Log:      &testLog{t},
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if !rep.OK() || len(rep.Runs) != 5 {
		t.Fatalf("soak not ok: %+v", rep)
	}
	if len(rep.BaselineDigest) != 64 {
		t.Fatalf("baseline digest %q is not sha256 hex", rep.BaselineDigest)
	}
	restarts, crashes, sheds := 0, 0, 0
	for _, rr := range rep.Runs {
		if !rr.Match || rr.Digest != rep.BaselineDigest {
			t.Errorf("storm %d digest mismatch: %s", rr.Run, rr.Digest)
		}
		restarts += rr.Attempts - 1
		crashes += rr.Crashes
		if rr.Shed {
			sheds++
		}
	}
	// The storms must actually bite. Seed 42's sequence is fixed, so
	// these floors are deterministic: crash events kill attempts, at
	// least one storm crosses the hard watermark and sheds, and the
	// restart loop is exercised.
	if restarts == 0 {
		t.Error("no storm forced a restart; the schedules were all no-ops")
	}
	if crashes == 0 {
		t.Error("no injected crash-exit was intercepted")
	}
	if sheds == 0 {
		t.Error("no storm recorded a hard-watermark shed")
	}
	t.Logf("soak: %d restarts, %d injected crashes, %d sheds across 5 storms", restarts, crashes, sheds)
	// The harness restored the crash hook and cleared its faults.
	if err := resilience.Checkpoint(context.Background(), "checkpoint.saved.world"); err != nil {
		t.Fatalf("fault registry not clean after soak: %v", err)
	}
}

// TestSoakIngestStorms: the determinism contract holds when the
// pipeline ingests a RIB dump instead of simulating propagation.
// The dump carries a few damaged records (reserved first hop) inside
// the error budget, and the chosen seed's storms are verified to
// include at least one ingest fault site — so mid-stream read faults
// and quarantine-path faults are exercised, and every storm still
// recovers byte-identically to the fault-free ingest baseline.
func TestSoakIngestStorms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline many times")
	}
	s := core.DefaultScenario(1)
	s.NumASes = 450
	s.Algorithms = testAlgos()
	art, err := core.RunContext(context.Background(), s)
	if err != nil {
		t.Fatalf("seed run: %v", err)
	}
	dir := t.TempDir()
	dump := filepath.Join(dir, "rib")
	f, err := os.Create(dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteRIB(f, art.Paths, 0); err != nil {
		t.Fatal(err)
	}
	// Append damaged records: a reserved first hop is quarantined as
	// "unknown-as" without desynchronizing the stream.
	bw := wire.NewRIBWriter(f, 0)
	for i := 0; i < 4; i++ {
		p := asgraph.Path{asn.Max, asn.ASN(10 + i)}
		if err := bw.Write(wire.RIBEntry{Prefix: wire.PrefixForAS(p.Origin()), Path: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in := s
	in.RIBIn = []string{dump}
	in.IngestMaxBadFrac = 0.05

	// Pick the first seed whose storm sequence includes an ingest-site
	// event, so the soak deterministically hits the new sites even if
	// the pool composition shifts.
	const runs = 3
	seed := int64(-1)
	for cand := int64(100); cand < 200 && seed < 0; cand++ {
		for i := 0; i < runs; i++ {
			for _, e := range Generate(cand+int64(i), testAlgos(), true).Events {
				if strings.HasPrefix(e.Site, "ingest.") {
					seed = cand
				}
			}
		}
	}
	if seed < 0 {
		t.Fatal("no seed in [100,200) generated an ingest-site event")
	}

	rep, err := Soak(context.Background(), Config{
		Seed:     seed,
		Runs:     runs,
		Scenario: in,
		Dir:      filepath.Join(dir, "soak"),
		Log:      &testLog{t},
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if !rep.OK() || len(rep.Runs) != runs {
		t.Fatalf("soak not ok: %+v", rep)
	}
}

// TestSoakConfigValidation: bad configs are rejected before any
// pipeline work.
func TestSoakConfigValidation(t *testing.T) {
	if _, err := Soak(context.Background(), Config{Runs: 0, Dir: "x"}); err == nil {
		t.Error("Runs=0 accepted")
	}
	if _, err := Soak(context.Background(), Config{Runs: 1}); err == nil {
		t.Error("empty Dir accepted")
	}
}

// testLog adapts t.Logf to the harness's progress writer.
type testLog struct{ t *testing.T }

func (w *testLog) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
