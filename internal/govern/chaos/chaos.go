// Package chaos is the deterministic chaos/soak harness: it composes
// the pipeline's existing fault-injection sites (crash-exit at
// checkpoint boundaries, panics and transient errors inside stages,
// memory-pressure inflation at the governor's sampling site) into
// seeded, reproducible fault storms, runs the pipeline through each
// storm with a supervisor-style restart loop, and asserts that the
// final artifacts are byte-identical to a fault-free run.
//
// The determinism contract it verifies is the repo's strongest
// invariant: crashes, retries, degraded attempts, load-shed and any
// permit level may change *pacing* and *which attempt* produced an
// artifact, but never a single byte of the artifacts themselves.
package chaos

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"breval/internal/checkpoint"
	"breval/internal/core"
	"breval/internal/govern"
	"breval/internal/ingest"
	"breval/internal/resilience"
	"breval/internal/wire"
)

// Kind is the behaviour of one scheduled fault event.
type Kind string

// Event kinds. Crash simulates a kill -9 at a checkpoint boundary
// (the run aborts, durable artifacts survive); panic and error hit a
// stage or worker site once; the pressure kinds inflate the
// governor's memory sample past the soft/hard watermark, driving
// backpressure and load-shed without allocating anything.
const (
	KindCrash        Kind = "crash"
	KindPanic        Kind = "panic"
	KindError        Kind = "error"
	KindPressureSoft Kind = "pressure-soft"
	KindPressureHard Kind = "pressure-hard"
)

// Event is one scheduled fault: a kind at a site, skipping the first
// After hits and firing at most Times times.
type Event struct {
	Site  string `json:"site"`
	Kind  Kind   `json:"kind"`
	After int    `json:"after,omitempty"`
	Times int    `json:"times"`
}

// String renders the event compactly for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s@%s(after=%d,times=%d)", e.Kind, e.Site, e.After, e.Times)
}

// Schedule is one seeded fault storm: the events a single soak run
// installs before its first attempt. The same seed always generates
// the same schedule, so a failing storm reproduces exactly.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// String renders the schedule compactly for logs.
func (s Schedule) String() string {
	out := fmt.Sprintf("seed=%d", s.Seed)
	for _, e := range s.Events {
		out += " " + e.String()
	}
	return out
}

// rng is splitmix64 — the same generator resilience.PickSite uses, so
// schedules are reproducible across platforms and Go versions (unlike
// math/rand, whose stream is not part of the compatibility promise).
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// sitePools returns the crash-site pool (checkpoint boundaries, where
// a kill leaves durable artifacts behind) and the stage/worker-site
// pool (where panics and transient errors exercise retry, restart and
// degradation paths), for a run over the given algorithms. A run that
// ingests real RIB dumps (ribIn) has no bgp.propagate stage; the
// ingest stage and its per-record fault sites take its place in the
// storm mix, so storms exercise mid-stream read failures and
// quarantine-path failures too.
func sitePools(algos []string, ribIn bool) (crash, stage []string) {
	crash = []string{
		"checkpoint.saved.world",
		"checkpoint.saved.paths",
		"checkpoint.saved.validation.raw",
		"checkpoint.saved.validation.clean",
	}
	stage = []string{
		"features.compute",
		"features.compute.worker",
		"validation.extract",
		"validation.clean",
		"rpsl.generate",
		"cones.build",
	}
	if ribIn {
		stage = append(stage,
			"ingest.read",
			ingest.SiteRecordRead,
			ingest.SiteQuarantine,
		)
	} else {
		stage = append(stage, "bgp.propagate")
	}
	for _, a := range algos {
		crash = append(crash, "checkpoint.saved."+checkpoint.ArtifactRel(a))
		stage = append(stage, "infer."+a)
	}
	return crash, stage
}

// Generate derives a fault schedule from a seed: 2–4 events drawn
// from the crash/stage site pools plus at most one pressure event at
// the governor's sampling site. Each site carries at most one fault
// (the injection registry replaces, it does not stack). ribIn selects
// the ingest-mode site pool (see sitePools).
func Generate(seed int64, algos []string, ribIn bool) Schedule {
	r := rng(seed)
	crashSites, stageSites := sitePools(algos, ribIn)
	sc := Schedule{Seed: seed}
	used := map[string]bool{}
	want := 2 + r.intn(3)
	for tries := 0; len(sc.Events) < want && tries < 64; tries++ {
		var e Event
		switch roll := r.intn(100); {
		case roll < 30:
			e = Event{Site: crashSites[r.intn(len(crashSites))], Kind: KindCrash, Times: 1}
		case roll < 50:
			e = Event{Site: stageSites[r.intn(len(stageSites))], Kind: KindPanic,
				After: r.intn(3), Times: 1}
		case roll < 75:
			e = Event{Site: stageSites[r.intn(len(stageSites))], Kind: KindError,
				After: r.intn(3), Times: 1}
		case roll < 90:
			e = Event{Site: govern.PressureSite, Kind: KindPressureSoft,
				After: r.intn(2), Times: 2 + r.intn(3)}
		default:
			e = Event{Site: govern.PressureSite, Kind: KindPressureHard,
				After: r.intn(2), Times: 1}
		}
		if used[e.Site] {
			continue
		}
		used[e.Site] = true
		sc.Events = append(sc.Events, e)
	}
	return sc
}

// Install registers the schedule's events with the fault registry.
// Pressure events inflate the governor's memory sample by the
// corresponding watermark from gc, so they cross it regardless of the
// real heap size. The caller owns clearing previous faults.
func (s Schedule) Install(gc govern.Config) {
	for _, e := range s.Events {
		switch e.Kind {
		case KindCrash:
			resilience.InjectAt(e.Site, resilience.Fault{
				Kind: resilience.KindCrash, After: e.After, Times: e.Times})
		case KindPanic:
			resilience.InjectAt(e.Site, resilience.Fault{
				Kind: resilience.KindPanic, After: e.After, Times: e.Times,
				Panic: fmt.Sprintf("chaos: injected panic (seed %d)", s.Seed)})
		case KindError:
			resilience.InjectAt(e.Site, resilience.Fault{
				Kind: resilience.KindError, After: e.After, Times: e.Times,
				Err: fmt.Errorf("chaos: injected error (seed %d)", s.Seed)})
		case KindPressureSoft:
			d := gc.SoftBytes
			resilience.InjectAt(e.Site, resilience.Fault{
				Kind: resilience.KindCorrupt, After: e.After, Times: e.Times,
				Corrupt: func(v any) any { return v.(int64) + d }})
		case KindPressureHard:
			d := gc.HardBytes
			resilience.InjectAt(e.Site, resilience.Fault{
				Kind: resilience.KindCorrupt, After: e.After, Times: e.Times,
				Corrupt: func(v any) any { return v.(int64) + d }})
		}
	}
}

// DigestArtifacts hashes a run's durable artifacts — the propagated
// path set, both validation snapshots and every inference result, in
// deterministic order, through the same codecs the checkpoint store
// persists them with — into one hex digest. Two runs produced the
// same results iff their digests match.
func DigestArtifacts(art *core.Artifacts) (string, error) {
	if art == nil || art.Paths == nil || art.RawValidation == nil || art.Validation == nil {
		return "", errors.New("chaos: digest: artifacts incomplete")
	}
	h := sha256.New()
	w := bufio.NewWriter(h)
	section := func(name string) { _, _ = io.WriteString(w, name+"\n") }
	section("paths")
	if err := wire.WriteRIB(w, art.Paths, 0); err != nil {
		return "", fmt.Errorf("chaos: digest paths: %w", err)
	}
	section("validation.raw")
	if _, err := art.RawValidation.WriteTo(w); err != nil {
		return "", fmt.Errorf("chaos: digest raw snapshot: %w", err)
	}
	section("validation.clean")
	if _, err := art.Validation.WriteTo(w); err != nil {
		return "", fmt.Errorf("chaos: digest clean snapshot: %w", err)
	}
	names := make([]string, 0, len(art.Results))
	for n := range art.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		section("rel." + n)
		if err := checkpoint.EncodeResult(w, art.Results[n]); err != nil {
			return "", fmt.Errorf("chaos: digest %s: %w", n, err)
		}
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Config configures a soak.
type Config struct {
	// Seed drives schedule generation; run i uses Seed+i, so a soak is
	// Runs distinct but individually reproducible storms.
	Seed int64
	// Runs is how many storms to run.
	Runs int
	// MaxRestarts bounds the supervisor restart loop per storm; 0
	// selects 8 (a schedule holds at most 4 single-shot events, each
	// costing at most one attempt).
	MaxRestarts int
	// Scenario is the run under test. CheckpointDir/Resume are managed
	// by the soak; StageRetries is raised to at least 1 so transient
	// errors exercise the retry path; a disabled Govern gets huge
	// watermarks (only injected pressure can cross them) and a fast
	// poll so pressure events land within short runs.
	Scenario core.Scenario
	// Dir is the base directory for the per-storm checkpoint stores.
	Dir string
	// Log, when set, receives per-attempt progress lines.
	Log io.Writer
}

// RunResult is one storm's outcome.
type RunResult struct {
	Run      int      `json:"run"`
	Seed     int64    `json:"seed"`
	Schedule Schedule `json:"schedule"`
	// Attempts is how many pipeline runs the restart loop needed
	// (1 = the storm never forced a restart).
	Attempts int `json:"attempts"`
	// Crashes counts injected crash-exits intercepted during the storm.
	Crashes int `json:"crashes"`
	// Shed reports whether any attempt crossed the hard watermark.
	Shed   bool   `json:"shed"`
	Digest string `json:"digest"`
	// Match is the verdict: the recovered digest equals the baseline.
	Match bool `json:"match"`
}

// Report is a full soak outcome.
type Report struct {
	BaselineDigest string      `json:"baseline_digest"`
	Runs           []RunResult `json:"runs"`
}

// OK reports whether every storm recovered to the baseline digest.
func (r *Report) OK() bool {
	for _, rr := range r.Runs {
		if !rr.Match {
			return false
		}
	}
	return len(r.Runs) > 0
}

// Soak runs the scenario once fault-free to establish the baseline
// digest, then Runs times under generated fault storms. Each storm is
// driven like a process supervisor would: install the schedule, run;
// when the attempt crashes, fails or degrades, restart with
// Resume=true over the same checkpoint store until the run completes
// clean (or MaxRestarts is exhausted, which fails the soak). The
// recovered artifacts are digested and compared to the baseline.
//
// Crash faults are intercepted in-process: resilience.CrashExit is
// swapped for a recorder for the duration, so an injected kill aborts
// the run through the typed StageError path — leaving durable
// checkpoint state behind exactly like a real kill — without taking
// the soak process down. Soak owns the fault registry and the
// CrashExit hook while it runs; it must not race other injection
// users.
func Soak(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Runs <= 0 {
		return nil, errors.New("chaos: soak needs Runs > 0")
	}
	if cfg.Dir == "" {
		return nil, errors.New("chaos: soak needs a checkpoint base dir")
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 8
	}
	sc := cfg.Scenario
	if sc.StageRetries < 1 {
		sc.StageRetries = 1
	}
	if !sc.Govern.Enabled() {
		sc.Govern = govern.Config{
			SoftBytes: 1 << 40,
			HardBytes: 1 << 42,
			Poll:      time.Millisecond,
		}
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	// Intercept injected crash-exits for the whole soak.
	var crashCount atomic.Int64
	prevExit := resilience.CrashExit
	resilience.CrashExit = func(int) { crashCount.Add(1) }
	defer func() { resilience.CrashExit = prevExit }()
	resilience.ClearFaults()
	defer resilience.ClearFaults()

	base := sc
	base.CheckpointDir = ""
	base.Resume = false
	art, err := core.RunContext(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run failed: %w", err)
	}
	if len(art.Degraded) > 0 {
		return nil, fmt.Errorf("chaos: baseline run degraded: %v", art.Degraded)
	}
	baseline, err := DigestArtifacts(art)
	if err != nil {
		return nil, err
	}
	rep := &Report{BaselineDigest: baseline}
	logf("chaos: baseline digest %s", baseline[:16])

	for i := 0; i < cfg.Runs; i++ {
		seed := cfg.Seed + int64(i)
		storm := Generate(seed, algosOf(sc), len(sc.RIBIn) > 0)
		rr := RunResult{Run: i, Seed: seed, Schedule: storm}
		dir := filepath.Join(cfg.Dir, fmt.Sprintf("run%03d", i))
		before := crashCount.Load()
		logf("chaos: run %d: %s", i, storm)

		resilience.ClearFaults()
		storm.Install(sc.Govern)
		for a := 0; a < cfg.MaxRestarts; a++ {
			rr.Attempts++
			run := sc
			run.CheckpointDir = dir
			run.Resume = a > 0
			art, rerr := core.RunContext(ctx, run)
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			if art != nil && art.Report != nil {
				for _, st := range art.Report.Stages {
					if st.Status == resilience.StatusShed {
						rr.Shed = true
					}
				}
			}
			if rerr == nil && len(art.Degraded) == 0 {
				d, derr := DigestArtifacts(art)
				if derr != nil {
					return rep, fmt.Errorf("chaos: run %d: %w", i, derr)
				}
				rr.Digest = d
				break
			}
			logf("chaos: run %d attempt %d: err=%v degraded=%v", i, rr.Attempts, rerr, degradedOf(art))
		}
		resilience.ClearFaults()
		rr.Crashes = int(crashCount.Load() - before)
		if rr.Digest == "" {
			return rep, fmt.Errorf("chaos: run %d did not recover within %d attempts (%s)",
				i, cfg.MaxRestarts, storm)
		}
		rr.Match = rr.Digest == rep.BaselineDigest
		rep.Runs = append(rep.Runs, rr)
		logf("chaos: run %d recovered in %d attempt(s), crashes=%d shed=%v match=%v",
			i, rr.Attempts, rr.Crashes, rr.Shed, rr.Match)
		if !rr.Match {
			return rep, fmt.Errorf("chaos: run %d digest %s != baseline %s (%s)",
				i, rr.Digest[:16], rep.BaselineDigest[:16], storm)
		}
	}
	return rep, nil
}

// algosOf resolves the scenario's algorithm list (nil = all four).
func algosOf(sc core.Scenario) []string {
	if sc.Algorithms != nil {
		return sc.Algorithms
	}
	return []string{core.AlgoASRank, core.AlgoProbLink, core.AlgoTopoScope, core.AlgoGao}
}

// degradedOf is a nil-safe accessor for logging.
func degradedOf(art *core.Artifacts) []string {
	if art == nil {
		return nil
	}
	return art.Degraded
}
