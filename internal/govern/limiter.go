package govern

import (
	"context"
	"sync"
)

// Limiter is a dynamic concurrency permit pool: a counting semaphore
// whose capacity can shrink and grow while permits are outstanding.
// The governor lowers the limit under memory pressure and restores it
// on recovery; worker pools acquire one permit per unit of work, so
// their effective fan-out tracks the limit without restarting any
// worker.
//
// Shrinking never revokes an outstanding permit — workers past the new
// limit simply find Acquire blocking once they release — so a limit
// change is always safe mid-stage. A nil *Limiter admits immediately:
// code paths running without a governor pay only the nil check.
type Limiter struct {
	mu    sync.Mutex
	max   int
	limit int
	inUse int
	// wait is closed and replaced whenever a permit frees up or the
	// limit rises, waking every blocked Acquire to re-check.
	wait chan struct{}
}

// NewLimiter returns a limiter admitting up to max concurrent holders
// (min 1).
func NewLimiter(max int) *Limiter {
	if max < 1 {
		max = 1
	}
	return &Limiter{max: max, limit: max, wait: make(chan struct{})}
}

// Acquire blocks until a permit is free or ctx is done. A nil limiter
// admits immediately.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	for {
		l.mu.Lock()
		if l.inUse < l.limit {
			l.inUse++
			l.mu.Unlock()
			return nil
		}
		ch := l.wait
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// TryAcquire takes a permit without blocking, reporting whether it
// got one. A nil limiter admits immediately.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse < l.limit {
		l.inUse++
		return true
	}
	return false
}

// Release returns a permit. It is a no-op on a nil limiter; releasing
// more than was acquired panics.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse <= 0 {
		panic("govern: Limiter.Release without Acquire")
	}
	l.inUse--
	l.notifyLocked()
}

// SetLimit changes the concurrency limit, clamped to [1, max]. Raising
// it wakes blocked acquirers; lowering it lets outstanding holders
// drain naturally.
func (l *Limiter) SetLimit(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if n > l.max {
		n = l.max
	}
	raised := n > l.limit
	l.limit = n
	if raised {
		l.notifyLocked()
	}
}

// Limit returns the current concurrency limit; a nil limiter reports
// 0 (unlimited).
func (l *Limiter) Limit() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Max returns the limiter's ceiling; 0 for a nil limiter.
func (l *Limiter) Max() int {
	if l == nil {
		return 0
	}
	return l.max
}

// InUse returns the number of outstanding permits.
func (l *Limiter) InUse() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// notifyLocked wakes every blocked Acquire. Caller holds mu.
func (l *Limiter) notifyLocked() {
	close(l.wait)
	l.wait = make(chan struct{})
}
