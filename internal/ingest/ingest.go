// Package ingest is the hardened real-data front end of the pipeline:
// a streaming, bounded-memory, cancellable reader that turns MRT RIB
// dumps — real RFC 6396 TABLE_DUMP_V2 as RouteViews/RIPE RIS publish
// it, or the repo's internal wire framing, plain or gzip-wrapped, one
// file or many, auto-detected per file — into propagation path blocks
// with the same sink contract as bgp.(*Simulator).PropagateBlocks, so
// core.RunContext can fuse it with features.StreamCollector and the
// raw and cleaned path universes never coexist.
//
// Real collector dumps are hostile input: truncated transfers, flipped
// bytes, reserved ASNs, duplicated entries. Instead of aborting on the
// first damaged record, ingest classifies each one into a typed error
// taxonomy (Kind), skips it, counts it, and samples it into a
// quarantine ledger for fuzz-corpus seeding. A configurable error
// budget (Options.MaxBadFrac) decides afterwards whether the surviving
// path set is trustworthy: over budget, the caller degrades the run to
// partial (exit 3) rather than silently analysing a biased world.
// Framing damage that desynchronizes a stream (a cut file, an
// untrustworthy length field, a corrupt gzip wrapper) abandons the
// rest of that file — the remainder cannot be attributed to record
// boundaries — and always exceeds the budget.
//
// Transient read errors (EAGAIN-class I/O on pipes and network
// filesystems) are retried in place with bounded exponential backoff;
// persistent I/O errors propagate so the enclosing resilience stage
// can retry the whole ingest with a fresh collector. Two fault
// -injection sites, "ingest.record.read" and "ingest.quarantine",
// join the chaos storm mix.
package ingest

import (
	"bufio"
	"compress/flate"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"syscall"
	"time"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/wire"
)

// Fault-injection site names (see internal/resilience). The record
// site fires once per record read, the quarantine site once per
// quarantined record.
const (
	SiteRecordRead = "ingest.record.read"
	SiteQuarantine = "ingest.quarantine"
)

// Options configure one streaming ingest.
type Options struct {
	// MaxBadFrac is the error budget: the fraction of records allowed
	// to be bad before the ingested world is declared untrustworthy
	// (Report.Exceeded). 0 — the strict default — tolerates no damage.
	MaxBadFrac float64

	// QuarantineFile, when set, receives the quarantine ledger: one
	// JSON line (Sample) per quarantined record. The file is only
	// created when something is quarantined.
	QuarantineFile string

	// SamplePerKind caps how many ledger lines per Kind carry the raw
	// frame hex (the expensive part, kept small so a rotten dump does
	// not balloon the ledger). 0 selects DefaultSamplePerKind.
	SamplePerKind int

	// MaxLedgerRecords caps total ledger lines. 0 selects
	// DefaultMaxLedgerRecords; beyond the cap records are still
	// counted, just not written.
	MaxLedgerRecords int

	// BlockPaths is how many paths accumulate before a block is
	// flushed to the sink (0 selects DefaultBlockPaths). Block
	// boundaries carry no meaning downstream — the collector output is
	// identical for any block size — they only bound working memory.
	BlockPaths int

	// ReadRetries and ReadBackoff bound the in-place retry of
	// transient (EAGAIN-class) read errors: up to ReadRetries retries
	// per read, sleeping ReadBackoff, doubling each attempt. Zero
	// retries means transient errors surface immediately.
	ReadRetries int
	ReadBackoff time.Duration

	// FileWorkers is how many input files are read and parsed
	// concurrently (0 or 1 keeps the single-goroutine reader). The
	// knob is purely operational: workers emit per-file event streams
	// that the caller's goroutine replays in file-argument order
	// through a bounded reorder window, so every counter, ledger line,
	// fault-site firing and sink block is byte-identical to a serial
	// run regardless of which file finishes first.
	FileWorkers int
}

// Defaults for the zero-valued knobs.
const (
	DefaultSamplePerKind    = 16
	DefaultMaxLedgerRecords = 100000
	DefaultBlockPaths       = 1024
	DefaultReadBackoff      = 5 * time.Millisecond

	// DefaultReadRetries is what the pipeline passes for
	// Options.ReadRetries: in-place retries are cheap and always safe
	// (a retried read resumes at the same offset), so production runs
	// keep a few even when stage retries are off. The Options zero
	// value still means "no retries" so tests see errors immediately.
	DefaultReadRetries = 4
)

func (o Options) blockPaths() int {
	if o.BlockPaths <= 0 {
		return DefaultBlockPaths
	}
	return o.BlockPaths
}

// Stream ingests files in order, feeding path blocks to sink. It is
// single-goroutine and in-order, so the concatenated blocks — and
// therefore everything downstream — are byte-identical for any worker
// count, permit level, or block size.
//
// The returned Report is non-nil whenever ingestion ran at all, even
// alongside an error. A non-nil error means the ingest itself could
// not complete (cancellation, an unreadable file, persistent I/O
// failure, a sink error, an injected fault) and the enclosing stage
// should retry or abort; damaged records are not errors — they land
// in the report and the ledger, and the budget verdict is the
// caller's to apply via Report.Exceeded.
func Stream(ctx context.Context, opts Options, files []string, sink func(*bgp.PathSet) error) (*Report, error) {
	if len(files) == 0 {
		return nil, errors.New("ingest: no input files")
	}
	ing := &ingester{
		opts:  opts,
		sink:  sink,
		rep:   newReport(),
		seen:  make(map[uint64]struct{}, 1024),
		block: bgp.NewPathSet(opts.blockPaths(), opts.blockPaths()*5),
	}
	defer ing.closeLedger()
	if opts.FileWorkers > 1 && len(files) > 1 {
		if err := ing.parallel(ctx, files); err != nil {
			return ing.rep, err
		}
	} else {
		for _, name := range files {
			if err := ing.file(ctx, name); err != nil {
				return ing.rep, err
			}
		}
	}
	if err := ing.flush(ctx); err != nil {
		return ing.rep, err
	}
	col := obs.From(ctx)
	col.Add("ingest.records", ing.rep.Records)
	col.Add("ingest.ingested", ing.rep.Ingested)
	col.Add("ingest.bad", ing.rep.BadTotal())
	col.Add("ingest.retried_reads", ing.rep.RetriedReads)
	col.Add("ingest.communities", ing.rep.Communities)
	col.Add("ingest.large_communities", ing.rep.LargeCommunities)
	return ing.rep, nil
}

type ingester struct {
	opts  Options
	sink  func(*bgp.PathSet) error
	rep   *Report
	seen  map[uint64]struct{} // FNV-1a of record bodies, for duplicate detection
	block *bgp.PathSet

	ledger *ledger
}

// file ingests one dump file. Damage is handled inside; only
// run-fatal conditions (open failure, cancellation, injected faults,
// persistent I/O errors, sink errors) return non-nil.
func (ing *ingester) file(ctx context.Context, name string) error {
	f, err := os.Open(name)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()

	fr := &FileReport{File: name}
	ing.rep.Files = append(ing.rep.Files, fr)

	retry := &retryReader{ctx: ctx, r: f,
		retries: ing.opts.ReadRetries, backoff: ing.opts.ReadBackoff}
	defer func() { ing.rep.RetriedReads += retry.retried }()
	br := bufio.NewReaderSize(retry, 1<<16)
	var src io.Reader = br
	if magic, _ := br.Peek(2); len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, zerr := gzip.NewReader(br)
		if zerr != nil {
			// The magic matched but the header did not parse: damaged
			// wrapper, nothing attributable inside.
			ing.countRecord(fr)
			fr.Aborted = true
			fr.Err = zerr.Error()
			return ing.quarantine(ctx, fr, 0, KindTruncatedFrame, zerr, nil)
		}
		defer zr.Close()
		src = zr
	}

	rr, format, ferr := wire.NewAutoReader(src)
	if ferr != nil {
		// The leading record parses as both dump formats: choosing one
		// would silently misread every record behind it, so — like a
		// damaged gzip wrapper — nothing inside is attributable.
		ing.countRecord(fr)
		fr.Aborted = true
		fr.Err = ferr.Error()
		return ing.quarantine(ctx, fr, 0, KindUnknownFormat, ferr, nil)
	}
	fr.Format = format.String()
	for {
		if err := resilience.Checkpoint(ctx, SiteRecordRead); err != nil {
			return err
		}
		e, err := rr.Read()
		switch {
		case err == nil:
			ing.countRecord(fr)
			if qerr := ing.record(ctx, fr, rr.Index(), dataFor(&e), rr.LastFrame()); qerr != nil {
				return qerr
			}
		case errors.Is(err, io.EOF):
			return nil
		default:
			var bad *wire.BadRecordError
			if errors.As(err, &bad) {
				// The frame was fully consumed; the stream is still in
				// sync. Skip the record and keep reading.
				ing.countRecord(fr)
				if qerr := ing.quarantine(ctx, fr, bad.Index, kindForRecordError(err), err, rr.LastFrame()); qerr != nil {
					return qerr
				}
				continue
			}
			kind, desync := classifyFraming(err)
			if !desync {
				// Persistent I/O failure (transient retries exhausted)
				// or an injected fault: the enclosing stage retries the
				// whole ingest with a fresh collector.
				return fmt.Errorf("ingest: %s: record %d: %w", name, rr.Index(), err)
			}
			// Framing damage: the rest of the file cannot be attributed
			// to record boundaries. Quarantine what was consumed, abandon
			// the file, continue with the next one. An aborted file
			// always exceeds the error budget (Report.Exceeded).
			ing.countRecord(fr)
			fr.Aborted = true
			fr.Err = err.Error()
			return ing.quarantine(ctx, fr, rr.Index(), kind, err, rr.LastFrame())
		}
	}
}

// countRecord tallies one attempted record; Records always equals
// Ingested plus the quarantine counts.
func (ing *ingester) countRecord(fr *FileReport) {
	fr.Records++
	ing.rep.Records++
}

// classifyFraming maps a desynchronizing read error to its taxonomy
// kind; desync is false for real I/O errors, which are run-fatal.
func classifyFraming(err error) (Kind, bool) {
	var corrupt flate.CorruptInputError
	switch {
	case errors.Is(err, wire.ErrOversize):
		return KindOversizeBody, true
	case errors.Is(err, wire.ErrBadPeerIndex):
		// A corrupt PEER_INDEX_TABLE (or a RIB record arriving before
		// any table): no later entry can be attributed to a vantage
		// point, so the file is lost. In-sync peer damage — one entry
		// referencing a slot beyond the table — surfaces as a
		// BadRecordError and never reaches here.
		return KindBadPeerIndex, true
	case errors.Is(err, wire.ErrTruncated):
		return KindTruncatedFrame, true
	case errors.Is(err, gzip.ErrHeader), errors.Is(err, gzip.ErrChecksum), errors.As(err, &corrupt):
		// Damage inside the compression wrapper surfaces as reader
		// errors; it is data corruption, not an I/O failure.
		return KindTruncatedFrame, true
	}
	return "", false
}

// kindForRecordError maps an in-sync *BadRecordError cause to its
// taxonomy kind. The same sentinel can mean skip or desync depending
// on where it surfaced; this is the skip side.
func kindForRecordError(err error) Kind {
	switch {
	case errors.Is(err, wire.ErrTruncated):
		return KindTruncatedFrame
	case errors.Is(err, wire.ErrBadPeerIndex):
		return KindBadPeerIndex
	case errors.Is(err, wire.ErrUnsupportedSubtype):
		return KindUnsupportedSubtype
	case errors.Is(err, wire.ErrBadAttribute):
		return KindBadAttribute
	}
	return KindBadPath
}

// recordData is the slice of a parsed wire.RIBEntry admission needs.
// Parallel workers ship it in fileEvents instead of whole entries, so
// the replay path feeds record() exactly what the serial path does.
type recordData struct {
	path   asgraph.Path
	prefix wire.Prefix
	asSets int
	comms  int
	lcomms int
}

func dataFor(e *wire.RIBEntry) recordData {
	return recordData{path: e.Path, prefix: e.Prefix, asSets: e.ASSets,
		comms: len(e.Communities), lcomms: len(e.LargeCommunities)}
}

// entryKey is the duplicate-detection identity: prefix plus path.
// Timestamps, ADDPATH path identifiers and community attributes do not
// distinguish entries — a re-announced route carries no new link
// evidence — and the key is format-canonical, so an internal-framing
// record and its TABLE_DUMP_V2 rendition collide as the duplicates
// they are.
func entryKey(rec recordData) uint64 {
	h := fnv.New64a()
	pfx := [2]byte{rec.prefix.Bits, 0}
	if rec.prefix.V6 {
		pfx[1] = 1
	}
	h.Write(pfx[:])
	h.Write(rec.prefix.Addr[:(int(rec.prefix.Bits)+7)/8])
	var hop [4]byte
	for _, a := range rec.path {
		binary.BigEndian.PutUint32(hop[:], uint32(a))
		h.Write(hop[:])
	}
	return h.Sum64()
}

// record admits one successfully parsed record, applying the semantic
// taxonomy: AS_SET aggregation, reserved/unassignable ASNs and
// duplicate entries are quarantined, everything else flows into the
// current block. It is shared by the serial reader and the parallel
// replay, which is what keeps their admission semantics identical by
// construction.
func (ing *ingester) record(ctx context.Context, fr *FileReport, index int, rec recordData, frame []byte) error {
	if len(rec.path) == 0 {
		return ing.quarantine(ctx, fr, index, KindBadPath,
			errors.New("empty AS path"), frame)
	}
	if rec.asSets > 0 {
		return ing.quarantine(ctx, fr, index, KindBadAttribute,
			fmt.Errorf("%d multi-member AS_SET segment(s): aggregated paths are not link evidence", rec.asSets), frame)
	}
	for _, a := range rec.path {
		if a.IsReserved() {
			return ing.quarantine(ctx, fr, index, KindUnknownAS,
				fmt.Errorf("reserved AS %d in path", a), frame)
		}
	}
	key := entryKey(rec)
	if _, dup := ing.seen[key]; dup {
		return ing.quarantine(ctx, fr, index, KindDuplicate,
			errors.New("duplicate entry"), frame)
	}
	ing.seen[key] = struct{}{}

	fr.Ingested++
	ing.rep.Ingested++
	ing.rep.Communities += int64(rec.comms)
	ing.rep.LargeCommunities += int64(rec.lcomms)
	ing.block.Append(rec.path)
	if ing.block.Len() >= ing.opts.blockPaths() {
		return ing.flush(ctx)
	}
	return nil
}

// flush hands the accumulated block to the sink.
func (ing *ingester) flush(ctx context.Context) error {
	if ing.block.Len() == 0 {
		return nil
	}
	if err := ing.sink(ing.block); err != nil {
		return err
	}
	ing.block = bgp.NewPathSet(ing.opts.blockPaths(), ing.opts.blockPaths()*5)
	return nil
}

// retryReader retries transient (EAGAIN-class) errors of the
// underlying reader in place, with bounded exponential backoff, so a
// hiccup on a pipe or network filesystem does not cost a whole stage
// retry. It sits below the bufio/gzip layers: those latch the first
// error they see, so the retry must win before they look.
type retryReader struct {
	ctx     context.Context
	r       io.Reader
	retries int
	backoff time.Duration
	retried int64
}

func (rr *retryReader) Read(p []byte) (int, error) {
	backoff := rr.backoff
	if backoff <= 0 {
		backoff = DefaultReadBackoff
	}
	for attempt := 0; ; attempt++ {
		n, err := rr.r.Read(p)
		if n > 0 || err == nil || attempt >= rr.retries || !transient(err) {
			return n, err
		}
		rr.retried++
		select {
		case <-rr.ctx.Done():
			return 0, rr.ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// transient reports whether err is worth retrying in place.
func transient(err error) bool {
	return errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EWOULDBLOCK) ||
		errors.Is(err, syscall.EINTR)
}
