package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// DigestFiles returns the hex SHA-256 identity of the input set:
// every file's bytes in order, length-framed so file boundaries
// cannot alias. File names deliberately do not contribute — the same
// dump under a different path is the same input, so runs share
// checkpoint artifacts and brevald cache entries by content.
//
// The digest is pinned in the checkpoint key and the paths artifact's
// metadata: a swapped or edited input file changes the key, so a
// resumed run detects the swap and recomputes instead of resuming
// into a world the files no longer describe.
func DigestFiles(files []string) (string, error) {
	h := sha256.New()
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return "", fmt.Errorf("ingest: digest: %w", err)
		}
		n, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("ingest: digest %s: %w", name, err)
		}
		fmt.Fprintf(h, "|%d", n)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
