package ingest

// Kind classifies one quarantined record. The taxonomy is closed —
// every damaged record maps to exactly one kind — so counters, the
// ledger, and the chaos harness can enumerate it.
type Kind string

const (
	// KindTruncatedFrame: the record (or the stream inside it) ends
	// before its framing says it should — a cut file, a hop count
	// claiming more bytes than the body holds, a damaged gzip wrapper.
	KindTruncatedFrame Kind = "truncated-frame"
	// KindOversizeBody: the declared body length exceeds the format
	// bound; the length field itself is untrustworthy.
	KindOversizeBody Kind = "oversize-body"
	// KindBadPath: the frame is intact but its contents are not a
	// usable RIB entry — wrong type code, malformed prefix, path
	// length mismatch, empty path.
	KindBadPath Kind = "bad-path"
	// KindUnknownAS: the path names an ASN no real network can hold —
	// AS0, AS_TRANS, reserved, documentation or private ranges.
	KindUnknownAS Kind = "unknown-as"
	// KindDuplicate: an entry with an identical body was already
	// ingested.
	KindDuplicate Kind = "duplicate"
	// KindBadAttribute: a TABLE_DUMP_V2 entry whose BGP path-attribute
	// block is malformed — a TLV overrunning its region, a bad AS_PATH
	// segment, community values of the wrong granularity — or a path
	// carrying multi-member AS_SET aggregation (not link evidence).
	// The frame is intact; only the one entry is lost.
	KindBadAttribute Kind = "bad-attribute"
	// KindBadPeerIndex: peer-index damage. In-sync when one entry
	// references a slot beyond the peer table; a desync when the
	// PEER_INDEX_TABLE itself is corrupt or missing, because no later
	// entry can be attributed to a vantage point.
	KindBadPeerIndex Kind = "bad-peer-index"
	// KindUnsupportedSubtype: a well-framed MRT record whose
	// type/subtype the pipeline does not consume (multicast RIBs,
	// RIB_GENERIC, BGP4MP, geo peer tables). Skipped in sync.
	KindUnsupportedSubtype Kind = "unsupported-subtype"
	// KindUnknownFormat: the file's leading bytes parse as both dump
	// formats (wire.ErrAmbiguousFormat); guessing would misread every
	// record, so the file is abandoned whole. Always a desync.
	KindUnknownFormat Kind = "unknown-format"
)

// Kinds lists the taxonomy in its canonical order.
var Kinds = []Kind{KindTruncatedFrame, KindOversizeBody, KindBadPath, KindUnknownAS,
	KindDuplicate, KindBadAttribute, KindBadPeerIndex, KindUnsupportedSubtype, KindUnknownFormat}

// FileReport is one input file's ingest outcome.
type FileReport struct {
	File     string `json:"file"`
	Records  int64  `json:"records"`
	Ingested int64  `json:"ingested"`
	// Format is the auto-detected dump format ("internal" or
	// "tabledumpv2"); empty when the file died before detection.
	Format string `json:"format,omitempty"`
	// Aborted marks a file whose tail was abandoned after framing
	// damage desynchronized the stream; Err says why.
	Aborted bool   `json:"aborted,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Report is the full outcome of one Stream call.
type Report struct {
	Files    []*FileReport  `json:"files"`
	Records  int64          `json:"records"`  // records attempted across all files
	Ingested int64          `json:"ingested"` // records admitted into the path set
	Bad      map[Kind]int64 `json:"bad"`      // quarantined records per kind

	// Communities and LargeCommunities count the community attributes
	// carried by admitted records — the raw material for
	// internal/communities-based validation.
	Communities      int64 `json:"communities,omitempty"`
	LargeCommunities int64 `json:"large_communities,omitempty"`

	// Desyncs counts aborted files; any desync exceeds the budget,
	// because the abandoned tail is unaccountable.
	Desyncs int `json:"desyncs,omitempty"`

	// RetriedReads counts transient read errors retried in place.
	RetriedReads int64 `json:"retried_reads,omitempty"`

	// LedgerErr records a quarantine-ledger write failure (the ledger
	// is then abandoned; ingestion itself continues).
	LedgerErr string `json:"ledger_err,omitempty"`
}

func newReport() *Report {
	return &Report{Bad: make(map[Kind]int64, len(Kinds))}
}

// BadTotal returns the number of quarantined records.
func (r *Report) BadTotal() int64 {
	var n int64
	for _, c := range r.Bad {
		n += c
	}
	return n
}

// BadFrac returns the quarantined fraction of attempted records.
func (r *Report) BadFrac() float64 {
	if r.Records == 0 {
		return 0
	}
	return float64(r.BadTotal()) / float64(r.Records)
}

// Exceeded applies the error budget: the ingested world is
// untrustworthy when the bad fraction exceeds maxBadFrac, or when any
// file desynchronized (its abandoned tail makes every fraction a lie).
func (r *Report) Exceeded(maxBadFrac float64) bool {
	return r.Desyncs > 0 || r.BadFrac() > maxBadFrac
}
