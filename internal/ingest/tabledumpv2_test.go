package ingest

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/wire"
)

// --- raw RFC 6396 fixture helpers (damage the wire writer refuses) ---

// v2PeerBody builds a PEER_INDEX_TABLE body of IPv4/AS4 peers.
func v2PeerBody(peers ...uint32) []byte {
	body := binary.BigEndian.AppendUint32(nil, 0x0a000001)
	body = binary.BigEndian.AppendUint16(body, 4)
	body = append(body, "view"...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(peers)))
	for i, a := range peers {
		body = append(body, 0x02)
		body = binary.BigEndian.AppendUint32(body, uint32(i+1))
		body = binary.BigEndian.AppendUint32(body, uint32(i+1))
		body = binary.BigEndian.AppendUint32(body, a)
	}
	return body
}

// v2PathAttrs builds a minimal attribute block: ORIGIN + a 4-byte
// AS_SEQUENCE.
func v2PathAttrs(hops ...uint32) []byte {
	ab := []byte{0x40, 1, 1, 0} // ORIGIN, IGP
	seg := []byte{2, byte(len(hops))}
	for _, h := range hops {
		seg = binary.BigEndian.AppendUint32(seg, h)
	}
	ab = append(ab, 0x40, 2, byte(len(seg)))
	return append(ab, seg...)
}

// v2Entry builds one RIB entry with the given peer slot and attributes.
func v2Entry(peerIdx uint16, attrs []byte) []byte {
	b := binary.BigEndian.AppendUint16(nil, peerIdx)
	b = binary.BigEndian.AppendUint32(b, 42)
	b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
	return append(b, attrs...)
}

// v2RIB builds a RIB_IPV4_UNICAST body.
func v2RIB(bits uint8, prefix []byte, entries ...[]byte) []byte {
	body := binary.BigEndian.AppendUint32(nil, 7)
	body = append(body, bits)
	body = append(body, prefix...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(entries)))
	for _, e := range entries {
		body = append(body, e...)
	}
	return body
}

// v2Dump renders paths as a real TABLE_DUMP_V2 dump.
func v2Dump(t *testing.T, paths []asgraph.Path) []byte {
	t.Helper()
	ps := bgp.NewPathSet(len(paths), len(paths)*4)
	for _, p := range paths {
		ps.Append(p)
	}
	var buf bytes.Buffer
	if err := wire.WriteTableDumpV2(&buf, ps, 42); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ambiguousDump is the one overlapping code point: a type-13/subtype-2
// record whose body walks as both formats.
func ambiguousDump() []byte {
	body := make([]byte, 37)
	body[0], body[4], body[7], body[15] = 24, 8, 1, 21
	return mkFrame(42, 13, 2, body)
}

func TestStreamTableDumpV2Clean(t *testing.T) {
	paths := fixturePaths()
	rep, got, err := ingestAll(t, Options{}, dumpFile(t, v2Dump(t, paths)))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Ingested != int64(len(paths)) || rep.BadTotal() != 0 {
		t.Fatalf("clean v2 dump: ingested=%d bad=%d", rep.Ingested, rep.BadTotal())
	}
	if rep.Files[0].Format != "tabledumpv2" {
		t.Errorf("format = %q, want tabledumpv2", rep.Files[0].Format)
	}
	// WriteTableDumpV2 attaches one large community per entry and one
	// classic community per 16-bit vantage point (all of them here).
	if rep.LargeCommunities != int64(len(paths)) || rep.Communities != int64(len(paths)) {
		t.Errorf("communities=%d large=%d, want %d each",
			rep.Communities, rep.LargeCommunities, len(paths))
	}
	i := 0
	got.ForEach(func(p asgraph.Path) {
		if p.String() != paths[i].String() {
			t.Fatalf("path %d = %v, want %v", i, p, paths[i])
		}
		i++
	})
}

// TestStreamCrossFormatParity: the same path universe ingests to
// byte-identical sink output whether it arrives as internal framing,
// real TABLE_DUMP_V2, gzip of the latter, or through parallel workers.
func TestStreamCrossFormatParity(t *testing.T) {
	paths := fixturePaths()
	internal, _ := writeDump(t, paths)
	v2 := v2Dump(t, paths)
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(v2); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	_, wantPS, err := ingestAll(t, Options{}, dumpFile(t, internal))
	if err != nil {
		t.Fatal(err)
	}
	want := pathsBytes(t, wantPS)

	for name, data := range map[string][]byte{
		"tabledumpv2":      v2,
		"tabledumpv2.gzip": zbuf.Bytes(),
	} {
		for _, workers := range []int{0, 2, 4} {
			rep, got, err := ingestAll(t, Options{FileWorkers: workers}, dumpFile(t, data))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			checkInvariant(t, rep)
			if !bytes.Equal(pathsBytes(t, got), want) {
				t.Errorf("%s workers=%d: output differs from internal-format ingest", name, workers)
			}
		}
	}
}

// TestStreamCrossFormatDuplicates: the dedup identity is format-
// canonical, so a v2 rendition of an already-ingested internal dump is
// all duplicates.
func TestStreamCrossFormatDuplicates(t *testing.T) {
	paths := fixturePaths()
	internal, _ := writeDump(t, paths)
	rep, _, err := ingestAll(t, Options{MaxBadFrac: 1},
		dumpFile(t, internal), dumpFile(t, v2Dump(t, paths)))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Ingested != int64(len(paths)) || rep.Bad[KindDuplicate] != int64(len(paths)) {
		t.Fatalf("ingested=%d duplicates=%d, want %d/%d",
			rep.Ingested, rep.Bad[KindDuplicate], len(paths), len(paths))
	}
}

// TestStreamV2Taxonomy routes each new damage class through ingest:
// unsupported subtypes, malformed attributes, out-of-range peer
// references and AS_SET aggregation are all skippable; none desyncs.
func TestStreamV2Taxonomy(t *testing.T) {
	asSet := []byte{0x40, 1, 1, 0} // ORIGIN
	seg := []byte{2, 2}            // AS_SEQUENCE 100, 10
	seg = binary.BigEndian.AppendUint32(seg, 100)
	seg = binary.BigEndian.AppendUint32(seg, 10)
	seg = append(seg, 1, 2) // AS_SET of 2 members
	seg = binary.BigEndian.AppendUint32(seg, 7)
	seg = binary.BigEndian.AppendUint32(seg, 8)
	asSet = append(asSet, 0x40, 2, byte(len(seg)))
	asSet = append(asSet, seg...)

	var dump []byte
	dump = append(dump, mkFrame(42, 13, 1, v2PeerBody(100, 200))...)
	dump = append(dump, mkFrame(42, 13, 6, []byte{1, 2, 3})...) // RIB_GENERIC
	dump = append(dump, mkFrame(42, 16, 4, []byte{9})...)       // BGP4MP
	dump = append(dump, mkFrame(42, 13, 2, v2RIB(24, []byte{10, 0, 0},
		v2Entry(0, []byte{0x40, 1, 1}),           // truncated ORIGIN TLV: bad attribute
		v2Entry(9, v2PathAttrs(100, 10, 1)),      // peer slot 9 of 2: bad peer index
		v2Entry(0, asSet),                        // multi-member AS_SET: not link evidence
		v2Entry(1, v2PathAttrs(200, 20, 2))))...) // clean
	dump = append(dump, mkFrame(42, 13, 2, v2RIB(24, []byte{10, 0, 1},
		v2Entry(0, v2PathAttrs(100, 30, 3))))...) // clean

	rep, got, err := ingestAll(t, Options{MaxBadFrac: 1}, dumpFile(t, dump))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	want := map[Kind]int64{
		KindUnsupportedSubtype: 2,
		KindBadAttribute:       2, // one malformed TLV, one AS_SET path
		KindBadPeerIndex:       1,
	}
	for k, n := range want {
		if rep.Bad[k] != n {
			t.Errorf("Bad[%s] = %d, want %d", k, rep.Bad[k], n)
		}
	}
	if rep.Desyncs != 0 || rep.Files[0].Aborted {
		t.Errorf("in-sync damage desynchronized the file: %+v", rep.Files[0])
	}
	if rep.Ingested != 2 || got.Len() != 2 {
		t.Errorf("ingested = %d, want the 2 clean entries", rep.Ingested)
	}
}

// TestStreamV2CorruptPeerTableDesyncs: a peer table that cannot be
// trusted abandons the whole file — and, like any desync, blows the
// error budget — but later files still ingest.
func TestStreamV2CorruptPeerTableDesyncs(t *testing.T) {
	body := v2PeerBody(100)
	body[4+2+4] = 9 // declared peer count 9, body holds 1
	var dump []byte
	dump = append(dump, mkFrame(42, 13, 1, body)...)
	dump = append(dump, mkFrame(42, 13, 2, v2RIB(8, []byte{10},
		v2Entry(0, v2PathAttrs(100, 10, 1))))...)
	tail, _ := writeDump(t, []asgraph.Path{{50001, 174, 1299}})

	rep, got, err := ingestAll(t, Options{MaxBadFrac: 1},
		dumpFile(t, dump), dumpFile(t, tail))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Desyncs != 1 || !rep.Files[0].Aborted {
		t.Fatalf("corrupt peer table did not desync: %+v", rep.Files[0])
	}
	if rep.Bad[KindBadPeerIndex] != 1 {
		t.Errorf("Bad[bad-peer-index] = %d, want 1", rep.Bad[KindBadPeerIndex])
	}
	if !rep.Exceeded(1) {
		t.Error("a desync must exceed any budget")
	}
	if got.Len() != 1 {
		t.Errorf("the clean tail file did not ingest: %d paths", got.Len())
	}
}

// TestStreamAmbiguousFormat: a file whose leading record parses as
// both formats is abandoned whole under unknown-format — a quarantined
// abort, never a Stream failure — and later files still ingest.
func TestStreamAmbiguousFormat(t *testing.T) {
	tail, _ := writeDump(t, []asgraph.Path{{50001, 174, 1299}})
	files := []string{dumpFile(t, ambiguousDump()), dumpFile(t, tail)}

	repS, pathsS, ledgerS, errS := runIngest(t, Options{MaxBadFrac: 1}, files)
	if errS != nil {
		t.Fatal(errS)
	}
	checkInvariant(t, repS)
	if repS.Bad[KindUnknownFormat] != 1 || repS.Desyncs != 1 {
		t.Fatalf("unknown-format=%d desyncs=%d, want 1/1",
			repS.Bad[KindUnknownFormat], repS.Desyncs)
	}
	if !repS.Files[0].Aborted || repS.Files[0].Format != "" {
		t.Errorf("ambiguous file report: %+v", repS.Files[0])
	}
	if repS.Files[1].Ingested != 1 {
		t.Error("file after the ambiguous one did not ingest")
	}

	// Parallel replay produces the identical outcome.
	rep, paths, ledger, err := runIngest(t, Options{MaxBadFrac: 1, FileWorkers: 2}, files)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, rep), reportJSON(t, repS)) ||
		!bytes.Equal(paths, pathsS) || !bytes.Equal(ledger, ledgerS) {
		t.Error("parallel ambiguous-format handling diverged from serial")
	}
}

// TestStreamMultistreamGzip: concatenated gzip members decompress into
// one stream (each member carries its own peer table; the decoder
// adopts the newest).
func TestStreamMultistreamGzip(t *testing.T) {
	a := v2Dump(t, []asgraph.Path{{30001, 6939, 2914}})
	b := v2Dump(t, []asgraph.Path{{30002, 1299, 701}})
	var zbuf bytes.Buffer
	for _, member := range [][]byte{a, b} {
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(member); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	rep, got, err := ingestAll(t, Options{}, dumpFile(t, zbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Ingested != 2 || got.Len() != 2 {
		t.Fatalf("ingested %d of 2 multistream members", rep.Ingested)
	}
	if rep.Files[0].Format != "tabledumpv2" {
		t.Errorf("format = %q", rep.Files[0].Format)
	}
}

// TestStreamV2ParallelMatchesSerial extends the determinism contract
// to a corpus mixing both formats and every v2 damage class.
func TestStreamV2ParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	var evil []byte
	evil = append(evil, mkFrame(42, 13, 1, v2PeerBody(100, 200))...)
	evil = append(evil, mkFrame(42, 13, 6, []byte{1})...)
	evil = append(evil, mkFrame(42, 13, 2, v2RIB(24, []byte{10, 0, 0},
		v2Entry(0, []byte{0x40, 1, 1}),
		v2Entry(9, v2PathAttrs(100, 10, 1)),
		v2Entry(1, v2PathAttrs(200, 20, 2))))...)

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(v2Dump(t, []asgraph.Path{{30001, 6939, 2914}})); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	internal, _ := writeDump(t, fixturePaths())

	files := []string{
		write("0-clean.mrt", v2Dump(t, fixturePaths()[:3])),
		write("1-evil.mrt", evil),
		write("2-wrapped.mrt.gz", zbuf.Bytes()),
		write("3-ambiguous.mrt", ambiguousDump()),
		write("4-internal.rib", internal),
	}

	repS, pathsS, ledgerS, errS := runIngest(t, Options{MaxBadFrac: 1}, files)
	if errS != nil {
		t.Fatal(errS)
	}
	checkInvariant(t, repS)
	if repS.Bad[KindUnknownFormat] != 1 || repS.Bad[KindBadPeerIndex] != 1 ||
		repS.Bad[KindBadAttribute] != 1 || repS.Bad[KindUnsupportedSubtype] != 1 ||
		repS.Bad[KindDuplicate] != 3 {
		t.Fatalf("fixture lost its damage classes: %+v", repS.Bad)
	}
	for _, workers := range []int{2, 3, 5} {
		rep, paths, ledger, err := runIngest(t, Options{MaxBadFrac: 1, FileWorkers: workers}, files)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkInvariant(t, rep)
		if !bytes.Equal(paths, pathsS) {
			t.Errorf("workers=%d: path set differs from serial", workers)
		}
		if got, want := reportJSON(t, rep), reportJSON(t, repS); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: report differs:\n got %s\nwant %s", workers, got, want)
		}
		if !bytes.Equal(ledger, ledgerS) {
			t.Errorf("workers=%d: quarantine ledger differs from serial", workers)
		}
	}
}
