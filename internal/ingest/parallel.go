package ingest

import (
	"bufio"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"breval/internal/resilience"
	"breval/internal/wire"
)

// Parallel ingest splits Stream's single loop into two halves. Workers
// (one goroutine per in-flight file, Options.FileWorkers at a time)
// do the expensive part — open, decompress, frame, parse — and emit a
// side-effect-free event stream per file. The caller's goroutine then
// replays those streams strictly in file-argument order, performing
// every side effect the serial reader would: attempt/ingest counters,
// the global duplicate check, quarantine ledger lines, block flushes
// to the sink, and the resilience fault-site firings. The per-file
// channels are the reorder window: a file that finishes early parks at
// most reorderWindow parsed events, so memory stays bounded while the
// merged output is byte-identical to a serial run for any worker count
// and any file completion order.

// reorderWindow bounds how many parsed events a finished-early file
// may buffer ahead of the merge cursor (per file; each event holds one
// copied frame capped at frameSampleCap bytes).
const reorderWindow = 128

// evKind discriminates fileEvent. The terminal kinds end a file's
// stream: every worker emits exactly one of them last.
type evKind uint8

const (
	evRecord   evKind = iota // a fully parsed entry (recordData + frame copy)
	evBad                    // skippable in-sync damage (*wire.BadRecordError)
	evEOF                    // clean end of file (terminal)
	evAbort                  // desynchronizing framing damage (terminal)
	evPreAbort               // damage before any record read: a bad gzip wrapper or an ambiguous format (terminal)
	evOpenErr                // the file could not be opened (terminal)
	evFatal                  // run-fatal mid-stream error (terminal)
)

// fileEvent is one record-granularity observation from a worker. Paths
// come straight from the wire reader (allocated per record, safe to
// retain); frames are copied out of the reader's scratch buffer.
type fileEvent struct {
	kind    evKind
	rec     recordData
	frame   []byte
	index   int    // record index within the file, for ledger attribution
	format  string // detected dump format ("" before detection)
	badKind Kind   // evBad/evAbort/evPreAbort: taxonomy kind
	errStr  string // evBad/evAbort/evPreAbort: cause, as the serial reader stringifies it
	err     error  // evOpenErr/evFatal: the error Stream must return
	retried int64  // terminal events: the file's transient-read retry count
}

// parallel ingests files with FileWorkers concurrent readers and a
// strictly ordered replay. Workers are launched in file-argument order
// as semaphore slots free up, which guarantees the file the merge
// cursor is waiting on is always among the running ones.
func (ing *ingester) parallel(ctx context.Context, files []string) error {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := ing.opts.FileWorkers
	if workers > len(files) {
		workers = len(files)
	}
	chans := make([]chan fileEvent, len(files))
	for i := range chans {
		chans[i] = make(chan fileEvent, reorderWindow)
	}
	sem := make(chan struct{}, workers)
	go func() {
		for i, name := range files {
			select {
			case sem <- struct{}{}:
			case <-wctx.Done():
				// Channels whose worker never launched still need a
				// closer so the merge loop cannot hang on them.
				for ; i < len(files); i++ {
					close(chans[i])
				}
				return
			}
			go func(ch chan fileEvent, name string) {
				defer func() { <-sem }()
				readFileEvents(wctx, ing.opts, name, ch)
			}(chans[i], name)
		}
	}()

	for i, name := range files {
		if err := ing.replayFile(ctx, name, chans[i]); err != nil {
			return err
		}
	}
	return nil
}

// readFileEvents is the worker half: it mirrors (*ingester).file's
// control flow exactly but touches no shared state and fires no fault
// sites — both belong to the replay. It always closes out, and always
// ends the stream with a terminal event unless the context is gone.
func readFileEvents(ctx context.Context, opts Options, name string, out chan<- fileEvent) {
	defer close(out)
	send := func(e fileEvent) bool {
		select {
		case out <- e:
			return true
		case <-ctx.Done():
			return false
		}
	}
	copyFrame := func(rr wire.RecordReader) []byte {
		frame := rr.LastFrame()
		if len(frame) > frameSampleCap {
			frame = frame[:frameSampleCap]
		}
		return append([]byte(nil), frame...)
	}

	f, err := os.Open(name)
	if err != nil {
		send(fileEvent{kind: evOpenErr, err: fmt.Errorf("ingest: %w", err)})
		return
	}
	defer f.Close()

	retry := &retryReader{ctx: ctx, r: f,
		retries: opts.ReadRetries, backoff: opts.ReadBackoff}
	br := bufio.NewReaderSize(retry, 1<<16)
	var src io.Reader = br
	if magic, _ := br.Peek(2); len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, zerr := gzip.NewReader(br)
		if zerr != nil {
			send(fileEvent{kind: evPreAbort, badKind: KindTruncatedFrame,
				errStr: zerr.Error(), retried: retry.retried})
			return
		}
		defer zr.Close()
		src = zr
	}

	rr, format, ferr := wire.NewAutoReader(src)
	if ferr != nil {
		send(fileEvent{kind: evPreAbort, badKind: KindUnknownFormat,
			errStr: ferr.Error(), retried: retry.retried})
		return
	}
	fname := format.String()
	for {
		e, err := rr.Read()
		switch {
		case err == nil:
			if !send(fileEvent{kind: evRecord, rec: dataFor(&e), format: fname,
				frame: copyFrame(rr), index: rr.Index()}) {
				return
			}
		case errors.Is(err, io.EOF):
			send(fileEvent{kind: evEOF, format: fname, retried: retry.retried})
			return
		default:
			var bad *wire.BadRecordError
			if errors.As(err, &bad) {
				if !send(fileEvent{kind: evBad, index: bad.Index, badKind: kindForRecordError(err),
					format: fname, errStr: err.Error(), frame: copyFrame(rr)}) {
					return
				}
				continue
			}
			kind, desync := classifyFraming(err)
			if !desync {
				send(fileEvent{kind: evFatal, format: fname,
					err:     fmt.Errorf("ingest: %s: record %d: %w", name, rr.Index(), err),
					retried: retry.retried})
				return
			}
			send(fileEvent{kind: evAbort, index: rr.Index(), badKind: kind, format: fname,
				errStr: err.Error(), frame: copyFrame(rr), retried: retry.retried})
			return
		}
	}
}

// replayFile is the merge half: it consumes one file's event stream
// and applies the exact side-effect sequence (*ingester).file would
// have produced — the ingest.record.read site fires once per record
// read (never for a damaged gzip wrapper, which the serial reader also
// quarantines without a read), FileReports appear only for files that
// opened, and admission goes through the same record method.
func (ing *ingester) replayFile(ctx context.Context, name string, events <-chan fileEvent) error {
	var fr *FileReport
	for ev := range events {
		if fr == nil {
			if ev.kind == evOpenErr {
				return ev.err
			}
			fr = &FileReport{File: name}
			ing.rep.Files = append(ing.rep.Files, fr)
		}
		if fr.Format == "" && ev.format != "" {
			fr.Format = ev.format
		}
		switch ev.kind {
		case evPreAbort:
			ing.rep.RetriedReads += ev.retried
			ing.countRecord(fr)
			fr.Aborted = true
			fr.Err = ev.errStr
			return ing.quarantine(ctx, fr, 0, ev.badKind, errors.New(ev.errStr), nil)
		case evEOF:
			ing.rep.RetriedReads += ev.retried
			return resilience.Checkpoint(ctx, SiteRecordRead)
		case evRecord:
			if err := resilience.Checkpoint(ctx, SiteRecordRead); err != nil {
				return err
			}
			ing.countRecord(fr)
			if err := ing.record(ctx, fr, ev.index, ev.rec, ev.frame); err != nil {
				return err
			}
		case evBad:
			if err := resilience.Checkpoint(ctx, SiteRecordRead); err != nil {
				return err
			}
			ing.countRecord(fr)
			if err := ing.quarantine(ctx, fr, ev.index, ev.badKind, errors.New(ev.errStr), ev.frame); err != nil {
				return err
			}
		case evAbort:
			ing.rep.RetriedReads += ev.retried
			if err := resilience.Checkpoint(ctx, SiteRecordRead); err != nil {
				return err
			}
			ing.countRecord(fr)
			fr.Aborted = true
			fr.Err = ev.errStr
			return ing.quarantine(ctx, fr, ev.index, ev.badKind, errors.New(ev.errStr), ev.frame)
		case evFatal:
			ing.rep.RetriedReads += ev.retried
			if err := resilience.Checkpoint(ctx, SiteRecordRead); err != nil {
				return err
			}
			return ev.err
		}
	}
	// The worker exited without a terminal event: only cancellation
	// does that, and the context error is what the serial reader's
	// next checkpoint would have surfaced.
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("ingest: %s: event stream ended without a terminal event", name)
}
