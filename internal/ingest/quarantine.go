package ingest

import (
	"bufio"
	"context"
	"encoding/hex"
	"encoding/json"
	"os"

	"breval/internal/resilience"
)

// frameSampleCap bounds how many raw frame bytes a ledger line (and a
// parallel worker's copied frame) may carry. Internal-framing frames
// are at most 12+4096 bytes and are never cut; real TABLE_DUMP_V2
// records run to a mebibyte, and a fuzz seed does not need more than
// the frame's head to reproduce the parse.
const frameSampleCap = 8192

// Sample is one quarantine-ledger line: where the damage was, what
// kind it is, and (for the first SamplePerKind of each kind) the raw
// frame bytes — exactly the seed material FuzzIngestReader wants.
type Sample struct {
	File     string `json:"file"`
	Record   int    `json:"record"` // zero-based index within the file
	Kind     Kind   `json:"kind"`
	Error    string `json:"error"`
	FrameHex string `json:"frame_hex,omitempty"`
}

// ledger appends Samples to the quarantine file as JSON lines. It is
// created lazily on the first quarantined record, so a clean ingest
// leaves no file behind.
type ledger struct {
	f       *os.File
	w       *bufio.Writer
	lines   int
	sampled map[Kind]int
	failed  bool
}

// quarantine counts one damaged record, fires the ingest.quarantine
// fault site, and writes its ledger line. Ledger write failures are
// recorded and disable the ledger — losing evidence must not abort an
// otherwise-tolerable ingest — but injected faults at the site
// propagate, so chaos storms can force a stage retry here.
func (ing *ingester) quarantine(ctx context.Context, fr *FileReport, rec int, kind Kind, cause error, frame []byte) error {
	ing.rep.Bad[kind]++
	if fr.Aborted {
		ing.rep.Desyncs++
	}
	if err := resilience.Checkpoint(ctx, SiteQuarantine); err != nil {
		return err
	}
	if ing.opts.QuarantineFile == "" || ing.rep.LedgerErr != "" {
		return nil
	}
	if ing.ledger == nil {
		ing.ledger = &ledger{sampled: make(map[Kind]int, len(Kinds))}
	}
	if err := ing.ledger.write(ing.opts, Sample{
		File:   fr.File,
		Record: rec,
		Kind:   kind,
		Error:  cause.Error(),
	}, frame); err != nil {
		ing.rep.LedgerErr = err.Error()
	}
	return nil
}

func (l *ledger) write(opts Options, s Sample, frame []byte) error {
	maxLines := opts.MaxLedgerRecords
	if maxLines <= 0 {
		maxLines = DefaultMaxLedgerRecords
	}
	if l.lines >= maxLines {
		return nil
	}
	if l.f == nil {
		f, err := os.Create(opts.QuarantineFile)
		if err != nil {
			return err
		}
		l.f = f
		l.w = bufio.NewWriter(f)
	}
	perKind := opts.SamplePerKind
	if perKind <= 0 {
		perKind = DefaultSamplePerKind
	}
	if len(frame) > 0 && l.sampled[s.Kind] < perKind {
		l.sampled[s.Kind]++
		if len(frame) > frameSampleCap {
			frame = frame[:frameSampleCap]
		}
		s.FrameHex = hex.EncodeToString(frame)
	}
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return err
	}
	l.lines++
	return nil
}

// closeLedger flushes and closes the ledger file, recording a failure
// in the report like any other ledger error.
func (ing *ingester) closeLedger() {
	l := ing.ledger
	if l == nil || l.f == nil {
		return
	}
	if err := l.w.Flush(); err != nil && ing.rep.LedgerErr == "" {
		ing.rep.LedgerErr = err.Error()
	}
	if err := l.f.Close(); err != nil && ing.rep.LedgerErr == "" {
		ing.rep.LedgerErr = err.Error()
	}
	ing.ledger = nil
}
