package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/resilience"
	"breval/internal/wire"
)

// mixedFixtureFiles builds a hostile multi-file corpus whose files
// finish parsing in a very different order than they are argued:
// a large clean file first, then tiny files carrying every damage
// class the serial reader distinguishes — semantic damage, cross-file
// duplicates, a gzip wrapper, and a desynchronizing truncation.
func mixedFixtureFiles(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// File 0: 4000 distinct valid records — by far the slowest parse,
	// so every later file completes first and parks in its window.
	// (The origin range starts above AS_TRANS and the documentation
	// blocks so every record is admissible.)
	var big bytes.Buffer
	rw := wire.NewRIBWriter(&big, 1)
	for i := 0; i < 4000; i++ {
		p := asgraph.Path{asn.ASN(100000 + i), 3356, 174}
		if err := rw.Write(wire.RIBEntry{Prefix: wire.PrefixForAS(p.Origin()), Path: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}

	// File 1: semantic damage — an empty path and a reserved ASN
	// between valid records, plus a duplicate of a file-0 record (the
	// cross-file dedupe must see file 0 first even when this file
	// finishes long before it).
	small, _ := writeDump(t, fixturePaths())
	var evil []byte
	evil = append(evil, small...)
	evil = append(evil, mkFrame(0, 13, 2, []byte{24, 10, 0, 1, 0})...) // empty path
	reserved := []byte{24, 10, 0, 2, 1}
	reserved = binary.BigEndian.AppendUint32(reserved, uint32(asn.Max))
	evil = append(evil, mkFrame(0, 13, 2, reserved)...)
	var dup bytes.Buffer
	dw := wire.NewRIBWriter(&dup, 99) // different timestamp, same body identity
	dupPath := asgraph.Path{100000, 3356, 174}
	if err := dw.Write(wire.RIBEntry{
		Prefix: wire.PrefixForAS(dupPath.Origin()),
		Path:   dupPath}); err != nil {
		t.Fatal(err)
	}
	if err := dw.Flush(); err != nil {
		t.Fatal(err)
	}
	evil = append(evil, dup.Bytes()...)

	// File 2: gzip-wrapped valid records.
	more, _ := writeDump(t, []asgraph.Path{
		{30001, 6939, 2914},
		{30002, 1299, 701},
	})
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(more); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	// File 3: truncated mid-record — a desync that abandons its tail
	// but must not stop file 4 from ingesting.
	cut, bounds := writeDump(t, []asgraph.Path{
		{40001, 3257},
		{40002, 3257, 2914},
	})

	// File 4: a last clean file after the desync.
	tail, _ := writeDump(t, []asgraph.Path{{50001, 174, 1299}})

	return []string{
		write("0-big.rib", big.Bytes()),
		write("1-evil.rib", evil),
		write("2-wrapped.rib.gz", zbuf.Bytes()),
		write("3-cut.rib", cut[:bounds[1]+7]),
		write("4-tail.rib", tail),
	}
}

// runIngest streams files with opts into one path set and a ledger
// file, returning the report, the canonical output bytes, the ledger
// bytes, and the Stream error.
func runIngest(t *testing.T, opts Options, files []string) (*Report, []byte, []byte, error) {
	t.Helper()
	opts.QuarantineFile = filepath.Join(t.TempDir(), "quarantine.jsonl")
	total := bgp.NewPathSet(64, 64*5)
	rep, err := Stream(context.Background(), opts, files, func(blk *bgp.PathSet) error {
		total.AppendSet(blk)
		return nil
	})
	ledger, rerr := os.ReadFile(opts.QuarantineFile)
	if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		t.Fatal(rerr)
	}
	return rep, pathsBytes(t, total), ledger, err
}

// reportJSON canonicalizes a report for byte comparison.
func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelMatchesSerial is the parallel reader's core claim: for
// any worker count and any block size, a parallel ingest of a hostile
// multi-file corpus is byte-identical to the serial one — the output
// path set, the full report (counters, per-file outcomes, desyncs) and
// every quarantine ledger line.
func TestParallelMatchesSerial(t *testing.T) {
	files := mixedFixtureFiles(t)
	repS, pathsS, ledgerS, errS := runIngest(t, Options{}, files)
	if errS != nil {
		t.Fatal(errS)
	}
	checkInvariant(t, repS)
	if repS.Desyncs != 1 || repS.Bad[KindDuplicate] == 0 {
		t.Fatalf("fixture lost its damage classes: %+v", repS)
	}

	for _, workers := range []int{2, 3, 5, 16} {
		for _, block := range []int{0, 1, 7} {
			rep, paths, ledger, err := runIngest(t,
				Options{FileWorkers: workers, BlockPaths: block}, files)
			if err != nil {
				t.Fatalf("workers=%d block=%d: %v", workers, block, err)
			}
			checkInvariant(t, rep)
			if !bytes.Equal(paths, pathsS) {
				t.Errorf("workers=%d block=%d: path set differs from serial", workers, block)
			}
			if got, want := reportJSON(t, rep), reportJSON(t, repS); !bytes.Equal(got, want) {
				t.Errorf("workers=%d block=%d: report differs:\n got %s\nwant %s", workers, block, got, want)
			}
			if !bytes.Equal(ledger, ledgerS) {
				t.Errorf("workers=%d block=%d: quarantine ledger differs from serial", workers, block)
			}
		}
	}
}

// TestParallelShuffledCompletionOrder forces completion orders serial
// argument order never sees — the file list reversed and rotated so
// the merge cursor's file is routinely the last to start parsing —
// and checks each permutation against its own serial run.
func TestParallelShuffledCompletionOrder(t *testing.T) {
	base := mixedFixtureFiles(t)
	perms := [][]string{
		{base[4], base[3], base[2], base[1], base[0]},
		{base[2], base[0], base[4], base[1], base[3]},
		{base[1], base[2], base[3], base[4], base[0]},
	}
	for i, files := range perms {
		repS, pathsS, ledgerS, errS := runIngest(t, Options{}, files)
		if errS != nil {
			t.Fatalf("perm %d serial: %v", i, errS)
		}
		rep, paths, ledger, err := runIngest(t, Options{FileWorkers: 4}, files)
		if err != nil {
			t.Fatalf("perm %d parallel: %v", i, err)
		}
		checkInvariant(t, rep)
		if !bytes.Equal(paths, pathsS) || !bytes.Equal(ledger, ledgerS) ||
			!bytes.Equal(reportJSON(t, rep), reportJSON(t, repS)) {
			t.Errorf("perm %d: parallel ingest diverged from serial", i)
		}
	}
}

// TestParallelFatalStopsAtSerialPoint: a run-fatal condition (an
// unreadable path in the middle of the list) must surface at the same
// point with the same partial report as the serial reader, even though
// parallel workers have already read the later files.
func TestParallelFatalStopsAtSerialPoint(t *testing.T) {
	files := mixedFixtureFiles(t)
	badDir := filepath.Join(t.TempDir(), "not-a-file")
	if err := os.Mkdir(badDir, 0o755); err != nil {
		t.Fatal(err)
	}
	withBad := []string{files[0], files[1], badDir, files[2], files[4]}

	repS, pathsS, _, errS := runIngest(t, Options{}, withBad)
	if errS == nil {
		t.Fatal("serial: reading a directory succeeded")
	}
	rep, paths, _, err := runIngest(t, Options{FileWorkers: 4}, withBad)
	if err == nil {
		t.Fatal("parallel: reading a directory succeeded")
	}
	if err.Error() != errS.Error() {
		t.Errorf("errors differ:\n got %v\nwant %v", err, errS)
	}
	if !bytes.Equal(reportJSON(t, rep), reportJSON(t, repS)) || !bytes.Equal(paths, pathsS) {
		t.Error("partial state at the fatal point differs from serial")
	}
	// Opening a directory succeeds on Linux; the EISDIR surfaces on the
	// first read, so the bad entry gets a FileReport — but the files
	// after it, which parallel workers have fully parsed, must not.
	if len(rep.Files) != 3 {
		t.Errorf("files after the fatal one leaked into the report: %d reports", len(rep.Files))
	}
}

// TestParallelInjectedFaultDeterminism: a fault injected at the
// ingest.record.read site fires at the same global record ordinal in
// parallel mode as in serial mode — workers never touch the site, the
// ordered replay does — so chaos storms see one deterministic ingest
// regardless of worker count.
func TestParallelInjectedFaultDeterminism(t *testing.T) {
	files := mixedFixtureFiles(t)
	boom := errors.New("injected record fault")
	run := func(workers int) (*Report, []byte, error) {
		// Hit 4005 is mid-file-1: file 0 accounts for 4001 site hits
		// (4000 records plus the EOF read), so the fault lands while
		// later files' workers are already done parsing.
		resilience.InjectAt(SiteRecordRead, resilience.Fault{
			Kind: resilience.KindError, Err: boom, After: 4004, Times: 1,
		})
		defer resilience.ClearFaults()
		total := bgp.NewPathSet(64, 64*5)
		rep, err := Stream(context.Background(), Options{FileWorkers: workers}, files,
			func(blk *bgp.PathSet) error {
				total.AppendSet(blk)
				return nil
			})
		return rep, pathsBytes(t, total), err
	}

	repS, pathsS, errS := run(0)
	if !errors.Is(errS, boom) {
		t.Fatalf("serial: err=%v, want the injected fault", errS)
	}
	for _, workers := range []int{2, 4} {
		rep, paths, err := run(workers)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want the injected fault", workers, err)
		}
		if !bytes.Equal(reportJSON(t, rep), reportJSON(t, repS)) || !bytes.Equal(paths, pathsS) {
			t.Errorf("workers=%d: fault-point state differs from serial", workers)
		}
	}
}
