package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/wire"
)

// fixturePaths is a small, all-valid path universe.
func fixturePaths() []asgraph.Path {
	return []asgraph.Path{
		{64497 - 1000, 3356, 174}, // arbitrary non-reserved ASNs
		{10001, 1299},
		{10002, 6939, 3257, 2914, 701},
		{10003, 3356},
		{10004, 174, 3356, 1299},
	}
}

// writeDump serializes paths into MRT framing, returning the bytes and
// the cumulative record boundaries (boundaries[0]==0).
func writeDump(t *testing.T, paths []asgraph.Path) (data []byte, boundaries []int) {
	t.Helper()
	var buf bytes.Buffer
	boundaries = append(boundaries, 0)
	rw := wire.NewRIBWriter(&buf, 42)
	for _, p := range paths {
		if err := rw.Write(wire.RIBEntry{Prefix: wire.PrefixForAS(p.Origin()), Path: p}); err != nil {
			t.Fatal(err)
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, buf.Len())
	}
	return buf.Bytes(), boundaries
}

// dumpFile writes data to a file under t.TempDir.
func dumpFile(t *testing.T, data []byte) string {
	t.Helper()
	name := filepath.Join(t.TempDir(), "dump.rib")
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

// ingestAll streams files into one accumulated path set.
func ingestAll(t *testing.T, opts Options, files ...string) (*Report, *bgp.PathSet, error) {
	t.Helper()
	total := bgp.NewPathSet(64, 64*5)
	rep, err := Stream(context.Background(), opts, files, func(blk *bgp.PathSet) error {
		total.AppendSet(blk)
		return nil
	})
	return rep, total, err
}

// checkInvariant asserts the closed-taxonomy accounting: every
// attempted record is either ingested or counted under exactly one
// quarantine kind.
func checkInvariant(t *testing.T, rep *Report) {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	if rep.Records != rep.Ingested+rep.BadTotal() {
		t.Fatalf("accounting broken: records %d != ingested %d + bad %d",
			rep.Records, rep.Ingested, rep.BadTotal())
	}
	var fRecords, fIngested int64
	for _, fr := range rep.Files {
		fRecords += fr.Records
		fIngested += fr.Ingested
	}
	if fRecords != rep.Records || fIngested != rep.Ingested {
		t.Fatalf("per-file totals (%d/%d) disagree with report (%d/%d)",
			fRecords, fIngested, rep.Records, rep.Ingested)
	}
}

// pathsBytes canonicalizes a path set for byte comparison.
func pathsBytes(t *testing.T, ps *bgp.PathSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteRIB(&buf, ps, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mkFrame builds one raw frame with an arbitrary header and body.
func mkFrame(ts uint32, typ, sub uint16, body []byte) []byte {
	f := make([]byte, 12+len(body))
	binary.BigEndian.PutUint32(f[0:4], ts)
	binary.BigEndian.PutUint16(f[4:6], typ)
	binary.BigEndian.PutUint16(f[6:8], sub)
	binary.BigEndian.PutUint32(f[8:12], uint32(len(body)))
	copy(f[12:], body)
	return f
}

func TestStreamCleanDump(t *testing.T) {
	paths := fixturePaths()
	data, _ := writeDump(t, paths)
	rep, got, err := ingestAll(t, Options{}, dumpFile(t, data))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Records != int64(len(paths)) || rep.Ingested != int64(len(paths)) || rep.BadTotal() != 0 {
		t.Fatalf("clean dump: records=%d ingested=%d bad=%d", rep.Records, rep.Ingested, rep.BadTotal())
	}
	if rep.Exceeded(0) {
		t.Fatal("clean dump exceeded a zero budget")
	}
	if got.Len() != len(paths) {
		t.Fatalf("got %d paths, want %d", got.Len(), len(paths))
	}
	i := 0
	got.ForEach(func(p asgraph.Path) {
		if p.String() != paths[i].String() {
			t.Fatalf("path %d = %v, want %v (order must be preserved)", i, p, paths[i])
		}
		i++
	})
}

// TestStreamTruncationAtEveryByteBoundary sweeps every possible cut
// of a multi-record dump: a cut exactly on a record boundary is a
// clean (if short) ingest; a cut anywhere else quarantines exactly
// the damaged tail record, marks the file desynchronized, and always
// exceeds the budget — but never fails the Stream call itself.
func TestStreamTruncationAtEveryByteBoundary(t *testing.T) {
	paths := fixturePaths()
	data, boundaries := writeDump(t, paths)
	onBoundary := make(map[int]int) // cut → surviving record count
	for i, b := range boundaries {
		onBoundary[b] = i
	}
	for cut := 0; cut <= len(data); cut++ {
		rep, got, err := ingestAll(t, Options{}, dumpFile(t, data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: stream failed: %v", cut, err)
		}
		checkInvariant(t, rep)
		if n, ok := onBoundary[cut]; ok {
			if rep.Records != int64(n) || rep.BadTotal() != 0 || rep.Desyncs != 0 {
				t.Fatalf("boundary cut %d: records=%d bad=%d desyncs=%d, want %d clean records",
					cut, rep.Records, rep.BadTotal(), rep.Desyncs, n)
			}
			if got.Len() != n {
				t.Fatalf("boundary cut %d: %d paths, want %d", cut, got.Len(), n)
			}
			if rep.Exceeded(0) {
				t.Fatalf("boundary cut %d exceeded a zero budget", cut)
			}
			continue
		}
		if rep.Desyncs != 1 || rep.Bad[KindTruncatedFrame] != 1 {
			t.Fatalf("mid-record cut %d: desyncs=%d bad=%v, want one truncated-frame desync",
				cut, rep.Desyncs, rep.Bad)
		}
		if !rep.Files[0].Aborted {
			t.Fatalf("mid-record cut %d: file not marked aborted", cut)
		}
		if !rep.Exceeded(1.0) {
			t.Fatalf("mid-record cut %d: desync did not exceed even a 100%% budget", cut)
		}
	}
}

// TestStreamOversizeBody: an untrustworthy length field abandons the
// file (nothing after it is attributable) and the records before it
// survive.
func TestStreamOversizeBody(t *testing.T) {
	paths := fixturePaths()
	data, boundaries := writeDump(t, paths)
	evil := append([]byte(nil), data[:boundaries[2]]...)
	evil = append(evil, mkFrame(0, 13, 2, nil)...)
	// Rewrite the length field to an absurd value, then append the
	// remaining real records — they must be abandoned, not misparsed.
	binary.BigEndian.PutUint32(evil[boundaries[2]+8:boundaries[2]+12], 1<<20)
	evil = append(evil, data[boundaries[2]:]...)

	rep, got, err := ingestAll(t, Options{}, dumpFile(t, evil))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Bad[KindOversizeBody] != 1 || rep.Desyncs != 1 || !rep.Files[0].Aborted {
		t.Fatalf("oversize: bad=%v desyncs=%d aborted=%v", rep.Bad, rep.Desyncs, rep.Files[0].Aborted)
	}
	if rep.Ingested != 2 || got.Len() != 2 {
		t.Fatalf("oversize: ingested %d paths, want the 2 before the damage", got.Len())
	}
	if !rep.Exceeded(1.0) {
		t.Fatal("oversize desync must exceed any budget")
	}
}

// TestStreamSemanticTaxonomy: in-frame damage — flipped type codes,
// empty paths, reserved ASNs, duplicates — is skipped record by
// record without desynchronizing, each under its own kind.
func TestStreamSemanticTaxonomy(t *testing.T) {
	good := fixturePaths()
	data, boundaries := writeDump(t, good)

	var evil []byte
	// Record 0: valid.
	evil = append(evil, data[:boundaries[1]]...)
	// A flipped type code (frame intact): bad-path.
	flipped := append([]byte(nil), data[boundaries[1]:boundaries[2]]...)
	binary.BigEndian.PutUint16(flipped[4:6], 0x4242)
	evil = append(evil, flipped...)
	// An empty AS path (hop count 0, consistent body): bad-path.
	evil = append(evil, mkFrame(0, 13, 2, []byte{24, 10, 0, 1, 0})...)
	// A reserved ASN in the path: unknown-as.
	reserved := make([]byte, 0, 16)
	reserved = append(reserved, 24, 10, 0, 2) // /24 prefix
	reserved = append(reserved, 1)            // one hop
	reserved = binary.BigEndian.AppendUint32(reserved, uint32(asn.Max))
	evil = append(evil, mkFrame(0, 13, 2, reserved)...)
	// Records 1..4: valid, then record 1 again under a different
	// timestamp: duplicate (the header is not part of the identity).
	evil = append(evil, data[boundaries[1]:]...)
	dup := append([]byte(nil), data[boundaries[1]:boundaries[2]]...)
	binary.BigEndian.PutUint32(dup[0:4], 777)
	evil = append(evil, dup...)

	rep, got, err := ingestAll(t, Options{}, dumpFile(t, evil))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	want := map[Kind]int64{KindBadPath: 2, KindUnknownAS: 1, KindDuplicate: 1}
	for k, n := range want {
		if rep.Bad[k] != n {
			t.Errorf("bad[%s] = %d, want %d (all: %v)", k, rep.Bad[k], n, rep.Bad)
		}
	}
	if rep.Desyncs != 0 || rep.Files[0].Aborted {
		t.Fatalf("semantic damage desynchronized the stream: %+v", rep.Files[0])
	}
	if rep.Ingested != int64(len(good)) || got.Len() != len(good) {
		t.Fatalf("ingested %d, want all %d valid records", got.Len(), len(good))
	}
	// Budget arithmetic: 9 records, 4 bad.
	if rep.Records != 9 {
		t.Fatalf("records = %d, want 9", rep.Records)
	}
	if !rep.Exceeded(0.4) || rep.Exceeded(0.5) {
		t.Fatalf("budget verdicts wrong for frac %v", rep.BadFrac())
	}
}

// TestStreamCorruptVsPrunedEquality is the PR's core determinism
// claim at package level: ingesting a damaged dump (within budget)
// yields byte-identical output to ingesting the same dump with the
// damaged records removed.
func TestStreamCorruptVsPrunedEquality(t *testing.T) {
	paths := fixturePaths()
	data, boundaries := writeDump(t, paths)

	var damaged, pruned []byte
	for i := 0; i+1 < len(boundaries); i++ {
		rec := append([]byte(nil), data[boundaries[i]:boundaries[i+1]]...)
		if i%2 == 0 {
			// Poison the first hop: prefixBits at body[0].
			pfxBytes := (int(rec[12]) + 7) / 8
			off := 12 + 1 + pfxBytes + 1
			binary.BigEndian.PutUint32(rec[off:off+4], uint32(asn.Max))
			damaged = append(damaged, rec...)
			continue // pruned dump omits it
		}
		damaged = append(damaged, rec...)
		pruned = append(pruned, rec...)
	}

	repD, gotD, err := ingestAll(t, Options{}, dumpFile(t, damaged))
	if err != nil {
		t.Fatal(err)
	}
	repP, gotP, err := ingestAll(t, Options{}, dumpFile(t, pruned))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, repD)
	checkInvariant(t, repP)
	if repD.Bad[KindUnknownAS] == 0 || repP.BadTotal() != 0 {
		t.Fatalf("fixture broken: damaged bad=%v pruned bad=%v", repD.Bad, repP.Bad)
	}
	if !bytes.Equal(pathsBytes(t, gotD), pathsBytes(t, gotP)) {
		t.Fatal("damaged-within-budget and pruned dumps produced different path sets")
	}
}

// TestStreamGzipTransparent: a gzip-wrapped dump ingests identically
// to its plain form; a corrupted gzip header aborts the file.
func TestStreamGzipTransparent(t *testing.T) {
	data, _ := writeDump(t, fixturePaths())
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	repPlain, gotPlain, err := ingestAll(t, Options{}, dumpFile(t, data))
	if err != nil {
		t.Fatal(err)
	}
	repZ, gotZ, err := ingestAll(t, Options{}, dumpFile(t, zbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if repZ.Ingested != repPlain.Ingested || !bytes.Equal(pathsBytes(t, gotPlain), pathsBytes(t, gotZ)) {
		t.Fatal("gzip wrapping changed the ingested path set")
	}

	// Valid magic, garbage header.
	bad := append([]byte{0x1f, 0x8b}, bytes.Repeat([]byte{0xff}, 64)...)
	repBad, _, err := ingestAll(t, Options{}, dumpFile(t, bad))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, repBad)
	if repBad.Desyncs != 1 || repBad.Bad[KindTruncatedFrame] != 1 {
		t.Fatalf("corrupt gzip header: %+v", repBad)
	}

	// Truncated gzip stream: damage inside the wrapper, also a desync.
	repCut, _, err := ingestAll(t, Options{}, dumpFile(t, zbuf.Bytes()[:zbuf.Len()/2]))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, repCut)
	if repCut.Desyncs != 1 {
		t.Fatalf("truncated gzip stream not a desync: %+v", repCut)
	}
}

// TestStreamMultiFileAndBlockEquality: splitting a dump across files
// and varying the block size never changes the concatenated output.
func TestStreamMultiFileAndBlockEquality(t *testing.T) {
	data, boundaries := writeDump(t, fixturePaths())
	one := dumpFile(t, data)
	a := dumpFile(t, data[:boundaries[2]])
	b := dumpFile(t, data[boundaries[2]:])

	_, whole, err := ingestAll(t, Options{}, one)
	if err != nil {
		t.Fatal(err)
	}
	repSplit, split, err := ingestAll(t, Options{BlockPaths: 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(repSplit.Files) != 2 {
		t.Fatalf("want 2 file reports, got %d", len(repSplit.Files))
	}
	if !bytes.Equal(pathsBytes(t, whole), pathsBytes(t, split)) {
		t.Fatal("file split / block size changed the output")
	}
}

// TestStreamCrossFileDuplicates: duplicate detection spans files — a
// record repeated in a later file of the same Stream call is
// quarantined, keeping multi-file ingests equivalent to their
// concatenation.
func TestStreamCrossFileDuplicates(t *testing.T) {
	data, _ := writeDump(t, fixturePaths())
	rep, got, err := ingestAll(t, Options{}, dumpFile(t, data), dumpFile(t, data))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, rep)
	if rep.Bad[KindDuplicate] != int64(len(fixturePaths())) {
		t.Fatalf("second copy not deduplicated: %v", rep.Bad)
	}
	if got.Len() != len(fixturePaths()) {
		t.Fatalf("got %d paths, want %d", got.Len(), len(fixturePaths()))
	}
}

// TestStreamQuarantineLedger: one JSON line per quarantined record,
// frame hex only on the first SamplePerKind of each kind, no file at
// all for a clean ingest.
func TestStreamQuarantineLedger(t *testing.T) {
	paths := fixturePaths()
	data, boundaries := writeDump(t, paths)
	// Duplicate the whole dump: len(paths) duplicates.
	evil := append(append([]byte(nil), data...), data...)
	_ = boundaries

	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "quarantine.jsonl")
	rep, _, err := ingestAll(t, Options{QuarantineFile: ledgerPath, SamplePerKind: 2}, dumpFile(t, evil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LedgerErr != "" {
		t.Fatalf("ledger error: %s", rep.LedgerErr)
	}
	raw, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if int64(len(lines)) != rep.BadTotal() {
		t.Fatalf("%d ledger lines, want %d (one per quarantined record)", len(lines), rep.BadTotal())
	}
	withHex := 0
	for i, ln := range lines {
		var s Sample
		if err := json.Unmarshal(ln, &s); err != nil {
			t.Fatalf("line %d is not a Sample: %v", i, err)
		}
		if s.Kind != KindDuplicate || s.File == "" {
			t.Fatalf("line %d: unexpected sample %+v", i, s)
		}
		if s.FrameHex != "" {
			withHex++
		}
	}
	if withHex != 2 {
		t.Fatalf("%d lines carry frame hex, want SamplePerKind=2", withHex)
	}

	// Clean ingest: no ledger file.
	cleanLedger := filepath.Join(dir, "clean.jsonl")
	if _, _, err := ingestAll(t, Options{QuarantineFile: cleanLedger}, dumpFile(t, data)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cleanLedger); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("clean ingest left a ledger file: %v", err)
	}
}

// flakyReader yields EAGAIN a fixed number of times before every
// successful read, simulating a congested pipe.
type flakyReader struct {
	r        io.Reader
	failures int
	left     int
}

func (fr *flakyReader) Read(p []byte) (int, error) {
	if fr.left > 0 {
		fr.left--
		return 0, syscall.EAGAIN
	}
	fr.left = fr.failures
	return fr.r.Read(p)
}

func TestRetryReaderTransient(t *testing.T) {
	data, _ := writeDump(t, fixturePaths())
	rr := &retryReader{
		ctx:     context.Background(),
		r:       &flakyReader{r: bytes.NewReader(data), failures: 2, left: 2},
		retries: 4,
		backoff: time.Nanosecond,
	}
	got, err := io.ReadAll(rr)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("retried read failed: err=%v, %d/%d bytes", err, len(got), len(data))
	}
	if rr.retried == 0 {
		t.Fatal("no retries counted")
	}

	// Retries exhausted: the transient error surfaces.
	rr = &retryReader{
		ctx:     context.Background(),
		r:       &flakyReader{r: bytes.NewReader(data), failures: 10, left: 10},
		retries: 2,
		backoff: time.Nanosecond,
	}
	if _, err := io.ReadAll(rr); !errors.Is(err, syscall.EAGAIN) {
		t.Fatalf("exhausted retries: err=%v, want EAGAIN", err)
	}
}

// TestStreamPersistentIOErrorIsFatal: an EAGAIN storm outlasting the
// retry budget fails the Stream call (the enclosing stage retries),
// it is never misfiled as data damage.
func TestStreamPersistentIOErrorIsFatal(t *testing.T) {
	// A FIFO would be the real thing; a plain unreadable file stands in:
	// open succeeds, first read fails.
	dir := t.TempDir()
	name := filepath.Join(dir, "dir-as-dump")
	if err := os.Mkdir(name, 0o755); err != nil {
		t.Fatal(err)
	}
	rep, _, err := ingestAll(t, Options{}, name)
	if err == nil {
		t.Fatalf("reading a directory succeeded: %+v", rep)
	}
	if rep == nil || rep.BadTotal() != 0 {
		t.Fatalf("I/O failure was misfiled as data damage: %+v", rep)
	}
}

func TestStreamCancellation(t *testing.T) {
	data, _ := writeDump(t, fixturePaths())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Stream(ctx, Options{}, []string{dumpFile(t, data)}, func(*bgp.PathSet) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest: err=%v, want context.Canceled", err)
	}
}

func TestStreamNoFiles(t *testing.T) {
	if _, err := Stream(context.Background(), Options{}, nil, func(*bgp.PathSet) error { return nil }); err == nil {
		t.Fatal("empty file list accepted")
	}
}

// TestDigestFiles: content-addressed — renaming changes nothing,
// content changes everything, and concatenation is framed (two files
// never alias one).
func TestDigestFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a", "hello")
	b := write("b", "hello")
	c := write("c", "hellx")
	d1, err := DigestFiles([]string{a})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DigestFiles([]string{b})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("renamed identical content changed the digest")
	}
	d3, err := DigestFiles([]string{c})
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different content, same digest")
	}
	// "he"+"llo" split across two files must not alias one "hello".
	e := write("e", "he")
	f := write("f", "llo")
	d4, err := DigestFiles([]string{e, f})
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d1 {
		t.Fatal("split files alias the concatenated content")
	}
	if _, err := DigestFiles([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing file digested")
	}
}
