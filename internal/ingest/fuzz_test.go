package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/wire"
)

// FuzzIngestReader throws arbitrary bytes at the full ingest path —
// framing, gzip sniffing, taxonomy, dedup, budget accounting — and
// asserts the hardened-front-end contract: no panic, no unbounded
// allocation, and a report whose accounting always closes
// (Records == Ingested + BadTotal, at most one desync per file).
//
// The seed corpus is built the way the quarantine ledger stores
// evidence: raw frame hex from damaged records (see Sample.FrameHex),
// so real quarantined frames can be pasted in as new seeds verbatim.
func FuzzIngestReader(f *testing.F) {
	// A clean two-record dump.
	var clean bytes.Buffer
	rw := wire.NewRIBWriter(&clean, 42)
	for _, p := range []asgraph.Path{{64499 + 1, 3356, 174}, {10001, 1299}} {
		if err := rw.Write(wire.RIBEntry{Prefix: wire.PrefixForAS(p.Origin()), Path: p}); err != nil {
			f.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(clean.Bytes())
	f.Add(clean.Bytes()[:clean.Len()-3]) // mid-record truncation
	f.Add(append(clean.Bytes(), clean.Bytes()...)) // duplicates

	// Quarantine-ledger frame_hex seeds: real damaged frames captured
	// from ingest runs (reserved first hop, flipped type code).
	for _, frameHex := range []string{
		"00000000000d000200000015180a000104ffffffff0000003f0000003e00000001", // unknown-as
		"00000000000d000200000011180a000303ffffffff0000003f00000003",         // unknown-as, short path
	} {
		frame, err := hex.DecodeString(frameHex)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		flipped := append([]byte(nil), frame...)
		binary.BigEndian.PutUint16(flipped[4:6], 0x4242)
		f.Add(flipped)
	}

	// Oversize length field and a gzip-wrapped clean dump.
	evil := append([]byte(nil), clean.Bytes()...)
	binary.BigEndian.PutUint32(evil[8:12], 1<<30)
	f.Add(evil)
	var z bytes.Buffer
	zw := gzip.NewWriter(&z)
	zw.Write(clean.Bytes())
	zw.Close()
	f.Add(z.Bytes())
	f.Add(z.Bytes()[:z.Len()/2])
	f.Add([]byte{0x1f, 0x8b, 0xff, 0xff})

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		name := filepath.Join(dir, "fuzz.rib")
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var fed int64
		rep, err := Stream(context.Background(), Options{}, []string{name},
			func(blk *bgp.PathSet) error {
				fed += int64(blk.Len())
				return nil
			})
		if err != nil {
			// Arbitrary bytes can never be an ingest-fatal condition:
			// those are reserved for I/O failures, cancellation, sink
			// errors and injected faults.
			t.Fatalf("data-dependent fatal error: %v", err)
		}
		if rep.Records != rep.Ingested+rep.BadTotal() {
			t.Fatalf("accounting broken: records %d != ingested %d + bad %d",
				rep.Records, rep.Ingested, rep.BadTotal())
		}
		if fed != rep.Ingested {
			t.Fatalf("sink saw %d paths, report says %d", fed, rep.Ingested)
		}
		if rep.Desyncs > 1 {
			t.Fatalf("a single file desynchronized %d times", rep.Desyncs)
		}
		if rep.Desyncs == 1 && !rep.Exceeded(1.0) {
			t.Fatal("a desync must exceed any budget")
		}
		if rep.BadTotal() > 0 && !rep.Exceeded(0) {
			t.Fatal("damage within a zero budget")
		}
	})
}
