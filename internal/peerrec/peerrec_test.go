package peerrec

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// topo: network 10 (customer of 1, cone {100}); candidates:
//
//	20 with cone {200, 201} sharing IXP 0 with 10,
//	30 with cone {300} on a foreign fabric,
//	40 with empty cone,
//	11 existing peer of 10 with cone {110}.
func fixture() (*Recommender, asn.ASN) {
	g := asgraph.New()
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(10, 100, asgraph.P2CRel(10))
	g.MustSetRel(10, 11, asgraph.P2PRel())
	g.MustSetRel(11, 110, asgraph.P2CRel(11))
	g.MustSetRel(1, 20, asgraph.P2CRel(1))
	g.MustSetRel(20, 200, asgraph.P2CRel(20))
	g.MustSetRel(20, 201, asgraph.P2CRel(20))
	g.MustSetRel(1, 30, asgraph.P2CRel(1))
	g.MustSetRel(30, 300, asgraph.P2CRel(30))
	g.MustSetRel(1, 40, asgraph.P2CRel(1))
	memberships := [][]asn.ASN{
		{10, 20, 40}, // fabric 0: shared with 20
		{30, 300},    // fabric 1: foreign
		{20, 30},     // fabric 2: foreign, two transit members
	}
	return New(g, memberships), 10
}

func TestRecommendPeers(t *testing.T) {
	r, network := fixture()
	recs := r.RecommendPeers(network, 0)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	// Existing neighbors and zero-cone candidates are excluded.
	for _, c := range recs {
		switch c.ASN {
		case 11, 1, 100:
			t.Errorf("existing neighbor %d recommended", c.ASN)
		case 40:
			t.Errorf("empty-cone candidate recommended")
		}
	}
	// 20 outranks 30: bigger new cone AND a shared fabric.
	if recs[0].ASN != 20 {
		t.Errorf("top candidate = %d, want 20 (recs: %+v)", recs[0].ASN, recs)
	}
	if recs[0].NewCone != 2 || recs[0].SharedIXPs != 1 {
		t.Errorf("candidate 20 = %+v", recs[0])
	}
	// The peer's cone counts as covered: 110 contributes to nobody.
	for _, c := range recs {
		if c.ASN == 30 && c.NewCone != 1 {
			t.Errorf("candidate 30 NewCone = %d, want 1", c.NewCone)
		}
	}
}

func TestRecommendPeersLimit(t *testing.T) {
	r, network := fixture()
	recs := r.RecommendPeers(network, 1)
	if len(recs) != 1 {
		t.Fatalf("limit ignored: %d recs", len(recs))
	}
}

func TestRecommendIXPs(t *testing.T) {
	r, network := fixture()
	recs := r.RecommendIXPs(network, 0)
	if len(recs) == 0 {
		t.Fatal("no fabric recommendations")
	}
	// Fabric 0 is excluded (already a member).
	for _, c := range recs {
		if c.Index == 0 {
			t.Error("own fabric recommended")
		}
	}
	// Fabric 2 beats fabric 1: members 20+30 reach {20,30,200,201,300}
	// (5 new) vs fabric 1's {30,300} (2 new).
	if recs[0].Index != 2 {
		t.Errorf("top fabric = %d, want 2 (recs: %+v)", recs[0].Index, recs)
	}
	if recs[0].ReachableCone != 5 {
		t.Errorf("fabric 2 reach = %d, want 5", recs[0].ReachableCone)
	}
}

func TestRecommendationsDependOnRelationshipAccuracy(t *testing.T) {
	// The §7 point: a wrong relationship changes the recommendation.
	// If the graph wrongly believes 20's customers are its peers, its
	// cone collapses and 30 wins instead.
	g := asgraph.New()
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(1, 20, asgraph.P2CRel(1))
	g.MustSetRel(20, 200, asgraph.P2PRel()) // misclassified!
	g.MustSetRel(20, 201, asgraph.P2PRel()) // misclassified!
	g.MustSetRel(1, 30, asgraph.P2CRel(1))
	g.MustSetRel(30, 300, asgraph.P2CRel(30))
	r := New(g, nil)
	recs := r.RecommendPeers(10, 1)
	if len(recs) == 0 || recs[0].ASN != 30 {
		t.Errorf("misclassification should flip the ranking: %+v", recs)
	}
}
