// Package peerrec implements the second §7 incentive system: a
// recommendation engine that ranks IXPs to join and ASes to peer with
// for a given network, computed from AS-relationship data. The paper
// proposes such recommendations as a service operators would trade
// accurate relationship information for.
//
// The benefit model is deliberately simple and fully driven by the
// relationship graph: peering with a candidate AS offloads the traffic
// towards the candidate's customer cone from the network's transit
// providers, so a candidate's value is the size of the cone slice not
// yet reachable through existing peers, scaled by co-location
// feasibility (shared IXPs mean a session is cheap to set up).
package peerrec

import (
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// PeerCandidate is one recommended peering partner.
type PeerCandidate struct {
	ASN asn.ASN
	// NewCone is the number of ASes the candidate would newly make
	// reachable via peering (cone minus what existing peers cover).
	NewCone int
	// SharedIXPs counts fabrics where both networks are present.
	SharedIXPs int
	// Score is the ranking key: NewCone weighted by feasibility.
	Score float64
}

// IXPCandidate is one recommended fabric.
type IXPCandidate struct {
	// Index refers to the fabric's position in the Memberships input.
	Index int
	// ReachableCone is the union cone size of its members the network
	// does not already reach via peers.
	ReachableCone int
	// Members is the fabric's member count.
	Members int
	// Score ranks fabrics by reachable cone per (log-ish) member,
	// favouring dense fabrics with unreached customer cones.
	Score float64
}

// Recommender ranks candidates over a relationship graph.
type Recommender struct {
	g *asgraph.Graph
	// memberships[i] is fabric i's member list.
	memberships [][]asn.ASN
	memberIdx   map[asn.ASN]map[int]bool
	coneCache   map[asn.ASN]map[asn.ASN]bool
}

// New builds a recommender from a relationship graph (typically an
// inferred one — the paper's point is that recommendation quality
// hinges on relationship accuracy) and the IXP membership lists.
func New(g *asgraph.Graph, memberships [][]asn.ASN) *Recommender {
	idx := make(map[asn.ASN]map[int]bool)
	for i, members := range memberships {
		for _, a := range members {
			m := idx[a]
			if m == nil {
				m = make(map[int]bool, 2)
				idx[a] = m
			}
			m[i] = true
		}
	}
	return &Recommender{
		g:           g,
		memberships: memberships,
		memberIdx:   idx,
		coneCache:   make(map[asn.ASN]map[asn.ASN]bool),
	}
}

func (r *Recommender) cone(a asn.ASN) map[asn.ASN]bool {
	if c, ok := r.coneCache[a]; ok {
		return c
	}
	c := r.g.CustomerCone(a)
	r.coneCache[a] = c
	return c
}

// covered returns the set of ASes the network already reaches without
// paying transit: its own cone plus every peer's cone.
func (r *Recommender) covered(network asn.ASN) map[asn.ASN]bool {
	out := map[asn.ASN]bool{network: true}
	for a := range r.cone(network) {
		out[a] = true
	}
	for _, p := range r.g.Peers(network) {
		out[p] = true
		for a := range r.cone(p) {
			out[a] = true
		}
	}
	return out
}

// RecommendPeers ranks up to limit peering partners for network.
// Existing neighbors (any relationship) are excluded.
func (r *Recommender) RecommendPeers(network asn.ASN, limit int) []PeerCandidate {
	covered := r.covered(network)
	myFabrics := r.memberIdx[network]

	seenNeighbor := make(map[asn.ASN]bool)
	for _, nb := range r.g.Neighbors(network) {
		seenNeighbor[nb.ASN] = true
	}

	var out []PeerCandidate
	for _, cand := range r.g.ASes() {
		if cand == network || seenNeighbor[cand] {
			continue
		}
		cone := r.cone(cand)
		if len(cone) == 0 {
			continue // stub cones offload nothing
		}
		nw := 0
		for a := range cone {
			if !covered[a] {
				nw++
			}
		}
		if nw == 0 {
			continue
		}
		shared := 0
		for f := range r.memberIdx[cand] {
			if myFabrics[f] {
				shared++
			}
		}
		score := float64(nw)
		if shared > 0 {
			score *= 1 + 0.5*float64(shared)
		} else {
			score *= 0.25 // a new PNI/fabric is expensive
		}
		out = append(out, PeerCandidate{
			ASN: cand, NewCone: nw, SharedIXPs: shared, Score: score,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ASN < out[j].ASN
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// RecommendIXPs ranks up to limit fabrics for network to join,
// excluding fabrics it is already a member of.
func (r *Recommender) RecommendIXPs(network asn.ASN, limit int) []IXPCandidate {
	covered := r.covered(network)
	myFabrics := r.memberIdx[network]

	var out []IXPCandidate
	for i, members := range r.memberships {
		if myFabrics[i] || len(members) == 0 {
			continue
		}
		reach := make(map[asn.ASN]bool)
		for _, m := range members {
			if m == network {
				continue
			}
			if !covered[m] {
				reach[m] = true
			}
			for a := range r.cone(m) {
				if !covered[a] {
					reach[a] = true
				}
			}
		}
		if len(reach) == 0 {
			continue
		}
		out = append(out, IXPCandidate{
			Index:         i,
			ReachableCone: len(reach),
			Members:       len(members),
			Score:         float64(len(reach)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
