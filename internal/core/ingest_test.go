package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"breval/internal/asn"
	"breval/internal/ingest"
	"breval/internal/wire"
)

// ingestScenario builds a small simulated run, dumps its path set as
// an MRT RIB file, and returns a scenario that ingests that dump plus
// the simulated artifacts for comparison.
func ingestScenario(t *testing.T) (Scenario, *Artifacts, string) {
	t.Helper()
	s := DefaultScenario(3)
	s.NumASes = 450
	s.Algorithms = []string{AlgoASRank}
	art, err := RunContext(context.Background(), s)
	if err != nil {
		t.Fatalf("simulated run: %v", err)
	}
	dump := filepath.Join(t.TempDir(), "rib")
	f, err := os.Create(dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteRIB(f, art.Paths, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	in := s
	in.RIBIn = []string{dump}
	return in, art, dump
}

func ribBytes(t *testing.T, art *Artifacts) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteRIB(&buf, art.Paths, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestRoundTripMatchesSimulation: ingesting a dump written from
// a simulated run reproduces that run's path set byte-identically,
// and everything derived from it downstream (the clean snapshot).
func TestIngestRoundTripMatchesSimulation(t *testing.T) {
	in, simArt, _ := ingestScenario(t)
	art, err := RunContext(context.Background(), in)
	if err != nil {
		t.Fatalf("ingest run: %v", err)
	}
	if art.Ingest == nil {
		t.Fatal("ingest run carries no ingest report")
	}
	if art.Ingest.BadTotal() != 0 || art.Ingest.Records != art.Ingest.Ingested {
		t.Fatalf("clean dump quarantined records: %+v", art.Ingest)
	}
	if len(art.Degraded) != 0 {
		t.Fatalf("clean ingest degraded: %v", art.Degraded)
	}
	if !bytes.Equal(ribBytes(t, art), ribBytes(t, simArt)) {
		t.Fatal("ingested path set differs from the simulated one it was dumped from")
	}
	if art.Scenario.RIBDigest == "" {
		t.Fatal("run did not pin the input digest into its scenario")
	}
}

// TestIngestBudgetDegradesRun: a dump damaged past the budget still
// completes — the surviving experiments render — but the run is
// degraded and the report carries a failed ingest.budget stage, which
// is what drives breval's exit 3.
func TestIngestBudgetDegradesRun(t *testing.T) {
	in, simArt, dump := ingestScenario(t)
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the first record's first hop (reserved ASN).
	pfxBytes := (int(raw[12]) + 7) / 8
	off := 12 + 1 + pfxBytes + 1
	binary.BigEndian.PutUint32(raw[off:off+4], uint32(asn.Max))
	if err := os.WriteFile(dump, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict budget: one bad record exceeds it.
	art, err := RunContext(context.Background(), in)
	if err != nil {
		t.Fatalf("over-budget run must still complete: %v", err)
	}
	found := false
	for _, st := range art.Report.Failed() {
		if st.Stage == "ingest.budget" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failed ingest.budget stage: %+v", art.Report.Failed())
	}
	degraded := false
	for _, d := range art.Degraded {
		if d == "ingest.budget" {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("run not degraded by the budget: %v", art.Degraded)
	}

	// Generous budget: same dump, clean verdict, and the output equals
	// the simulated run minus the poisoned record's path.
	lenient := in
	lenient.IngestMaxBadFrac = 0.05
	lart, err := RunContext(context.Background(), lenient)
	if err != nil {
		t.Fatal(err)
	}
	if len(lart.Degraded) != 0 {
		t.Fatalf("within-budget run degraded: %v", lart.Degraded)
	}
	if lart.Ingest.Bad[ingest.KindUnknownAS] != 1 {
		t.Fatalf("expected one unknown-as quarantine: %+v", lart.Ingest.Bad)
	}
	if lart.Paths.Len() != simArt.Paths.Len()-1 {
		t.Fatalf("paths %d, want %d", lart.Paths.Len(), simArt.Paths.Len()-1)
	}
}

// TestIngestCheckpointResume: an ingest run checkpoints its paths
// with the input digest and full ingest report pinned in the artifact
// meta; a resume run reuses them byte-identically — including the
// budget verdict — without re-reading the dump; and a resume against
// different dump contents lands in a different store (no stale reuse).
func TestIngestCheckpointResume(t *testing.T) {
	in, _, dump := ingestScenario(t)
	in.CheckpointDir = filepath.Join(t.TempDir(), "store")
	first, err := RunContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	resume := in
	resume.Resume = true
	second, err := RunContext(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ribBytes(t, first), ribBytes(t, second)) {
		t.Fatal("resumed ingest differs from the original")
	}
	if second.Ingest == nil || second.Ingest.Records != first.Ingest.Records ||
		second.Ingest.Ingested != first.Ingest.Ingested {
		t.Fatalf("resume lost the ingest report: %+v vs %+v", second.Ingest, first.Ingest)
	}
	reused := false
	for _, st := range second.Report.Stages {
		if st.Stage == "ingest.read" && st.Attempts == 0 && strings.Contains(st.Note, "reused") {
			reused = true
		}
	}
	if !reused {
		t.Fatalf("resume re-ran the ingest stage: %+v", second.Report.Stages)
	}

	// Swap the dump contents in place: the digest changes, so the key
	// changes and the pinned store must not be resumed against.
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	pfxBytes := (int(raw[12]) + 7) / 8
	off := 12 + 1 + pfxBytes + 1
	binary.BigEndian.PutUint32(raw[off:off+4], uint32(asn.Max))
	if err := os.WriteFile(dump, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	swapped := resume
	swapped.IngestMaxBadFrac = 0.05
	sart, err := RunContext(context.Background(), swapped)
	if err != nil {
		t.Fatalf("swapped-input run: %v", err)
	}
	if sart.Ingest.Bad[ingest.KindUnknownAS] != 1 {
		t.Fatalf("swapped input silently resumed the old artifacts: %+v", sart.Ingest)
	}

	// A scenario pinned to the *old* digest must refuse the swapped
	// file outright rather than ingest mismatched data.
	pinned := resume
	pinned.RIBDigest = first.Scenario.RIBDigest
	if _, err := RunContext(context.Background(), pinned); err == nil {
		t.Fatal("pinned digest accepted changed file contents")
	}
}
