package core

import (
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/validation"
)

// ComplexRelReport evaluates hybrid-relationship detection à la
// Giotsas et al. (IMC'14): links whose community-derived labels differ
// across vantage points (multi-label entries in the *raw* snapshot)
// are flagged as hybrid candidates and checked against the ground
// truth's hybrid attribute. §4.2 argues such entries must be excluded
// from validation unless handled explicitly — this report shows how
// reliably they can be identified at all.
type ComplexRelReport struct {
	// Candidates is the number of multi-label raw entries (after
	// dropping spurious endpoints).
	Candidates int
	// TrueHybrids is the number of ground-truth hybrid links that are
	// visible in the path data.
	TrueHybrids int
	// Hits is the number of candidates that really are hybrid.
	Hits int
}

// Precision returns Hits/Candidates (NaN-free: 0 when undefined).
func (r ComplexRelReport) Precision() float64 {
	if r.Candidates == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Candidates)
}

// Recall returns Hits/TrueHybrids (0 when undefined).
func (r ComplexRelReport) Recall() float64 {
	if r.TrueHybrids == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.TrueHybrids)
}

// ComplexRelationships runs the detection.
func (a *Artifacts) ComplexRelationships() ComplexRelReport {
	var rep ComplexRelReport
	a.RawValidation.ForEach(func(l asgraph.Link, lbs []validation.Label) {
		if l.A.IsReserved() || l.B.IsReserved() {
			return
		}
		if len(lbs) < 2 {
			return
		}
		rep.Candidates++
		if r, ok := a.World.Graph.RelOn(l); ok && r.Hybrid {
			rep.Hits++
		}
	})
	a.World.Graph.ForEachRel(func(l asgraph.Link, r asgraph.Rel) {
		if r.Hybrid && a.LinkObserved(l) {
			rep.TrueHybrids++
		}
	})
	return rep
}

// RenderComplexRelationships writes the report.
func (a *Artifacts) RenderComplexRelationships(w io.Writer) error {
	rep := a.ComplexRelationships()
	_, err := fmt.Fprintf(w, `Complex (hybrid) relationship detection (§3.1/§4.2, after Giotsas et al.)

multi-label candidates in the raw snapshot: %d
visible ground-truth hybrid links:          %d
correctly identified:                       %d (precision %.2f, recall %.2f)

hybrid links only surface when a publisher's PoP-dependent tags reach
collectors through differently-homed vantage points; the rest stay
indistinguishable from plain relationships — which is why §4.2 wants
them excluded from validation rather than guessed.
`, rep.Candidates, rep.TrueHybrids, rep.Hits, rep.Precision(), rep.Recall())
	return err
}
