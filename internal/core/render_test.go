package core

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/sampling"
)

func TestRenderFigures(t *testing.T) {
	art := midArtifacts(t)
	var buf bytes.Buffer
	if err := art.RenderFigure1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "R°", "L°", "share", "cover"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 output missing %q", want)
		}
	}
	buf.Reset()
	if err := art.RenderFigure2(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2", "S-TR", "TR°", "T1-TR"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("figure 2 output missing %q", want)
		}
	}
}

func TestRenderTableAnnotatesDeltas(t *testing.T) {
	art := midArtifacts(t)
	tab, err := art.TableFor(AlgoASRank, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Total°") || !strings.Contains(out, "PPV_P") {
		t.Errorf("table output:\n%s", out)
	}
	// The S-T1 / T1-TR degradations must be annotated with a
	// yellow/orange/red mark somewhere.
	if !strings.ContainsAny(out, "yor") {
		t.Error("no degradation marks in table")
	}
}

func TestRenderHeatmapPair(t *testing.T) {
	art := midArtifacts(t)
	var buf bytes.Buffer
	if err := RenderHeatmapPair(&buf, "Figure 3", art.Figure3()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "inferred:") || !strings.Contains(out, "validated:") {
		t.Errorf("heatmap output:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Error("no heatmap body")
	}
}

func TestRenderSamplingAndCaseStudy(t *testing.T) {
	art := midArtifacts(t)
	ser, err := art.Figures4to6(AlgoASRank, "T1-TR", sampling.Config{Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := art.RenderSampling(&buf, AlgoASRank, "T1-TR", ser); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trend slope") {
		t.Errorf("sampling output:\n%s", buf.String())
	}
	buf.Reset()
	if err := art.RenderCaseStudy(&buf, AlgoASRank); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "partial-transit") {
		t.Errorf("case study output:\n%s", buf.String())
	}
}

func TestRenderAllCoversEverything(t *testing.T) {
	art := midArtifacts(t)
	var buf bytes.Buffer
	if err := art.RenderAll(&buf, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figures 4-6",
		"Figure 7", "Figure 8", "Figure 9",
		"ASRank", "ProbLink", "TopoScope", "Gao",
		"Case study", "AS_TRANS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll output missing %q", want)
		}
	}
}
