package core

import (
	"fmt"
	"testing"

	"breval/internal/sampling"
)

// TestCalibrationDiagnostic logs the calibrated shape of every
// experiment next to the paper's published values, for eyeballing
// drift after generator changes. Run with -v; -short skips it.
func TestCalibrationDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration diagnostic")
	}
	s := DefaultScenario(1)
	s.NumASes = 3000
	art, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("world: ASes=%d links=%d VPs=%d publishers=%d", len(art.World.ASNs),
		art.World.Graph.NumLinks(), len(art.World.VPs), len(art.World.Publishers))
	t.Logf("paths=%d inferredLinks=%d rawVal=%d cleanVal=%d", art.Paths.Len(),
		art.InferredLinkCount(), art.RawValidation.Len(), art.Validation.Len())
	t.Logf("clean report: %+v", art.CleanReport)

	t.Log("Figure 1 paper shares:   R°.39 AR°.15 L°.14 AP°.08 AR-R.08 AP-R.06 AP-AR.03 AF-R.02 AR-L.02 AF°.01 L-R.01")
	t.Log("Figure 1 paper coverage: R°.15 AR°.31 L°.00 AP°.05 AR-R.32 AP-R.07 AP-AR.17 AF-R.04 AR-L.18 AF°.00 L-R.08")
	for _, st := range art.Figure1() {
		t.Logf("  %-6s share %.3f cover %.3f (links %d val %d)", st.Class, st.Share, st.Coverage, st.Links, st.Validated)
	}
	t.Log("Figure 2 paper shares:   S-TR.48 TR°.34 S-T1.07 S°.04 T1-TR.04 H-TR.02 H-S.01 H-T1.00")
	t.Log("Figure 2 paper coverage: S-TR.06 TR°.12 S-T1.74 S°.00 T1-TR.74 H-TR.07 H-S.00 H-T1.58")
	for _, st := range art.Figure2() {
		t.Logf("  %-6s share %.3f cover %.3f (links %d val %d)", st.Class, st.Share, st.Coverage, st.Links, st.Validated)
	}
	f3 := art.Figure3()
	t.Logf("Figure 3 corner(1/3): inferred %.3f validated %.3f (want inferred larger)",
		f3.Inferred.CornerMass(1.0/3, 1.0/3), f3.Validated.CornerMass(1.0/3, 1.0/3))

	paperT1TR := map[string][3]float64{ // PPV_P, TPR_P, MCC
		AlgoASRank:    {0.839, 0.955, 0.886},
		AlgoProbLink:  {0.718, 0.670, 0.667},
		AlgoTopoScope: {0.798, 0.947, 0.858},
	}
	for _, algo := range []string{AlgoASRank, AlgoProbLink, AlgoTopoScope} {
		tab, err := art.TableFor(algo, 100)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("Table %s Total: PPVp %.3f TPRp %.3f LCp %d | PPVc %.3f TPRc %.3f LCc %d | MCC %.3f",
			algo, tab.Total.PPVP, tab.Total.TPRP, tab.Total.LCP,
			tab.Total.PPVC, tab.Total.TPRC, tab.Total.LCC, tab.Total.MCC)
		for _, r := range tab.Rows {
			note := ""
			if r.Class == "T1-TR" {
				p := paperT1TR[algo]
				note = fmt.Sprintf(" <- paper: PPVp %.3f TPRp %.3f MCC %.3f", p[0], p[1], p[2])
			}
			t.Logf("  %-6s PPVp %.3f TPRp %.3f LCp %4d | PPVc %.3f TPRc %.3f LCc %5d | MCC %.3f%s",
				r.Class, r.Row.PPVP, r.Row.TPRP, r.Row.LCP,
				r.Row.PPVC, r.Row.TPRC, r.Row.LCC, r.Row.MCC, note)
		}
	}

	cs, err := art.CaseStudy(AlgoASRank)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Case study: wrongP2P=%d focus=%d focusCount=%d byCause=%v (paper: 111 wrong, 54 at AS714)",
		cs.WrongP2P, cs.Focus, cs.FocusCount, cs.ByCause)

	ser, err := art.Figures4to6(AlgoASRank, "T1-TR", sampling.Config{Reps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.Pcts) > 0 {
		t.Logf("Fig 4-6 sampling: eligible=%d slopes PPVP=%.5f TPRP=%.5f MCC=%.5f (paper: no trend)",
			ser.Eligible,
			sampling.TrendSlope(ser.Pcts, ser.PPVP.Median),
			sampling.TrendSlope(ser.Pcts, ser.TPRP.Median),
			sampling.TrendSlope(ser.Pcts, ser.MCC.Median))
	}
}
