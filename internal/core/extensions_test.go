package core

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/asgraph"
)

func TestSourceComparison(t *testing.T) {
	art := midArtifacts(t)
	stats := art.SourceComparison()
	if len(stats) != 3 {
		t.Fatalf("got %d sources", len(stats))
	}
	byName := map[string]SourceStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	comm := byName["communities (iii)"]
	irr := byName["IRR policies (ii)"]
	union := byName["union (ii+iii)"]
	if comm.Entries == 0 || irr.Entries == 0 {
		t.Fatalf("empty source: comm=%d irr=%d", comm.Entries, irr.Entries)
	}
	if union.Entries < comm.Entries || union.Entries < irr.Entries {
		t.Error("union smaller than a component")
	}
	// The decisive regional property: communities never cover L°;
	// the IRR does (LACNIC operators keep WHOIS records even though
	// nobody documents community dictionaries).
	if comm.Coverage["L°"] >= 0.01 {
		t.Errorf("communities L° coverage = %.3f, want ~0", comm.Coverage["L°"])
	}
	if irr.Coverage["L°"] <= comm.Coverage["L°"] {
		t.Errorf("IRR L° coverage %.3f not above communities %.3f",
			irr.Coverage["L°"], comm.Coverage["L°"])
	}
	if union.Coverage["AR°"] < comm.Coverage["AR°"] {
		t.Error("union coverage dropped below a component")
	}
}

func TestIncludeRPSLGrowsValidation(t *testing.T) {
	s := DefaultScenario(3)
	s.NumASes = 800
	s.Algorithms = []string{AlgoASRank}
	base, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.IncludeRPSL = true
	merged, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Validation.Len() <= base.Validation.Len() {
		t.Errorf("IncludeRPSL did not grow the cleaned snapshot: %d vs %d",
			merged.Validation.Len(), base.Validation.Len())
	}
}

func TestRenderSourceComparison(t *testing.T) {
	art := midArtifacts(t)
	var buf bytes.Buffer
	if err := art.RenderSourceComparison(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"communities", "IRR", "union", "L°"} {
		if !strings.Contains(out, want) {
			t.Errorf("source comparison missing %q:\n%s", want, out)
		}
	}
}

func TestHardLinksSkew(t *testing.T) {
	art := midArtifacts(t)
	set, skew := art.HardLinks()
	if set.Total != art.InferredLinkCount() {
		t.Errorf("categorised %d of %d links", set.Total, art.InferredLinkCount())
	}
	if set.HardCount() == 0 {
		t.Fatal("no hard links found")
	}
	if skew.AllHard <= 0 || skew.AllHard > 1 {
		t.Fatalf("AllHard = %v", skew.AllHard)
	}
	// §3.3: the validation data skews towards easy links.
	if skew.ValidatedHard >= skew.AllHard {
		t.Errorf("validated hard share %.3f not below overall %.3f",
			skew.ValidatedHard, skew.AllHard)
	}
}

func TestAppendixCFeatures(t *testing.T) {
	art := midArtifacts(t)
	links := art.Validation.Links()
	if len(links) > 200 {
		links = links[:200]
	}
	feats := art.AppendixC(links)
	if len(feats) != len(links) {
		t.Fatalf("got %d vectors for %d links", len(feats), len(links))
	}
	nonzeroVia, nonzeroIXP := 0, 0
	for _, f := range feats {
		if f.PrefixesVia > 0 {
			nonzeroVia++
		}
		if f.CommonIXPs > 0 {
			nonzeroIXP++
		}
		if f.Behaviour == "" {
			t.Fatalf("empty behaviour for %v", f.Link)
		}
		if f.AddressesVia != 256*f.PrefixesVia {
			t.Fatalf("address arithmetic wrong for %v", f.Link)
		}
	}
	if nonzeroVia == 0 {
		t.Error("no link carries any prefix; feature 2 is broken")
	}
	if nonzeroIXP == 0 {
		t.Error("no link shares an IXP; feature 10 is broken")
	}
}

func TestRenderHardLinks(t *testing.T) {
	art := midArtifacts(t)
	var buf bytes.Buffer
	if err := art.RenderHardLinks(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hard links among all", "low-degree", "top-down-conflict", "share_validated"} {
		if !strings.Contains(out, want) {
			t.Errorf("hard-link report missing %q:\n%s", want, out)
		}
	}
}

func TestAppendixCNilSelectsValidated(t *testing.T) {
	art := midArtifacts(t)
	feats := art.AppendixC(nil)
	if len(feats) != art.Validation.Len() {
		t.Errorf("got %d vectors for %d validated links", len(feats), art.Validation.Len())
	}
	// Vectors arrive in canonical link order.
	for i := 1; i < len(feats); i++ {
		a, b := feats[i-1].Link, feats[i].Link
		if a.A > b.A || (a.A == b.A && a.B >= b.B) {
			t.Fatalf("vectors unordered at %d: %v then %v", i, a, b)
		}
	}
	_ = asgraph.Link{}
}

func TestLookingGlassReclassification(t *testing.T) {
	art := midArtifacts(t)
	r, err := art.LookingGlassReclassification(AlgoASRank)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reclassified == 0 {
		t.Fatal("nothing reclassified")
	}
	// The pass must improve (or at least not hurt) the class.
	if r.After.MCC < r.Before.MCC {
		t.Errorf("MCC worsened: %.3f -> %.3f", r.Before.MCC, r.After.MCC)
	}
	if r.After.PPVP < r.Before.PPVP {
		t.Errorf("PPV_P worsened: %.3f -> %.3f", r.Before.PPVP, r.After.PPVP)
	}
	var buf bytes.Buffer
	if err := art.RenderReclassification(&buf, AlgoASRank); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "before") || !strings.Contains(buf.String(), "after") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestUncertaintyCalibration(t *testing.T) {
	art := midArtifacts(t)
	buckets := art.UncertaintyCalibration(5)
	if len(buckets) != 5 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Links
		if b.Links > 0 && (b.Accuracy < 0 || b.Accuracy > 1) {
			t.Fatalf("accuracy out of range: %+v", b)
		}
	}
	if total == 0 {
		t.Fatal("no validated links bucketed")
	}
	// Calibration: the top-confidence bucket must be at least as
	// accurate as the bottom one (with data in both).
	lo, hi := buckets[0], buckets[len(buckets)-1]
	if lo.Links > 20 && hi.Links > 20 && hi.Accuracy < lo.Accuracy {
		t.Errorf("top bucket accuracy %.3f below bottom %.3f", hi.Accuracy, lo.Accuracy)
	}
	var buf bytes.Buffer
	if err := art.RenderUncertainty(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "confidence") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestVPSweep(t *testing.T) {
	art := midArtifacts(t)
	points := art.VPSweep([]float64{0.25, 1.0})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	quarter, full := points[0], points[1]
	if quarter.VPs >= full.VPs {
		t.Errorf("VP counts not increasing: %d vs %d", quarter.VPs, full.VPs)
	}
	// Fewer VPs see fewer links and infer no better.
	if quarter.VisibleLinks >= full.VisibleLinks {
		t.Errorf("visible links did not grow: %d vs %d", quarter.VisibleLinks, full.VisibleLinks)
	}
	if quarter.Row.MCC > full.Row.MCC+0.02 {
		t.Errorf("quarter VP set outperformed full: %.3f vs %.3f", quarter.Row.MCC, full.Row.MCC)
	}
	var buf bytes.Buffer
	if err := art.RenderVPSweep(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "visible") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestComplexRelationships(t *testing.T) {
	art := midArtifacts(t)
	rep := art.ComplexRelationships()
	if rep.TrueHybrids == 0 {
		t.Fatal("no visible hybrid links in the world")
	}
	if rep.Candidates > 0 && rep.Hits == 0 {
		t.Errorf("multi-label candidates never match hybrids: %+v", rep)
	}
	if p := rep.Precision(); p < 0 || p > 1 {
		t.Errorf("precision %v", p)
	}
	if r := rep.Recall(); r < 0 || r > 1 {
		t.Errorf("recall %v", r)
	}
	var buf bytes.Buffer
	if err := art.RenderComplexRelationships(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "multi-label candidates") {
		t.Errorf("report:\n%s", buf.String())
	}
}
