package core

import (
	"fmt"
	"io"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/hardlinks"
	"breval/internal/textplot"
)

// HardLinks categorises the observed links into Jin et al.'s five
// hard-link classes (§3.3) and computes the easy-link skew of the
// validation data: the paper recalls that validation covers hard
// links far less than their share among all links.
func (a *Artifacts) HardLinks() (*hardlinks.Set, hardlinks.Skew) {
	clique := a.inferredClique()
	set := hardlinks.Categorize(a.Features, clique, a.World.VPs,
		hardlinks.DefaultCriteria(a.Features))
	skew := set.ComputeSkew(a.Validation.Has)
	return set, skew
}

func (a *Artifacts) inferredClique() []asn.ASN {
	if res, ok := a.Results[AlgoASRank]; ok && len(res.Clique) > 0 {
		return res.Clique
	}
	for _, res := range a.Results {
		if len(res.Clique) > 0 {
			return res.Clique
		}
	}
	return a.World.Clique
}

// AppendixC computes the Appendix-C per-link feature vectors for the
// given links (nil selects all validated links).
func (a *Artifacts) AppendixC(links []asgraph.Link) []hardlinks.LinkFeatures {
	if links == nil {
		links = a.Validation.Links()
	}
	ixps := make([][]asn.ASN, 0, len(a.World.IXPs))
	for _, ix := range a.World.IXPs {
		ixps = append(ixps, ix.Members)
	}
	facs := make([][]asn.ASN, 0, len(a.World.Facilities))
	for _, f := range a.World.Facilities {
		facs = append(facs, f.Members)
	}
	return hardlinks.ComputeFeatures(a.Features, links, hardlinks.FeatureInputs{
		ConeSizes:       a.ConeSizes,
		IXPMembers:      ixps,
		FacilityMembers: facs,
		MANRS:           a.World.MANRS,
		Hijackers:       a.World.Hijackers,
	})
}

// RenderHardLinks writes the §3.3 hard-link report.
func (a *Artifacts) RenderHardLinks(w io.Writer) error {
	set, skew := a.HardLinks()
	if _, err := fmt.Fprintf(w, `Hard-to-infer links (§3.3, after Jin et al.)

criteria: node degree < %d, VP count in [%d, %d]
hard links among all inferred links: %.1f%%
hard links among validated links:    %.1f%%
`,
		set.Criteria.MaxNodeDegree, set.Criteria.VPLow, set.Criteria.VPHigh,
		100*skew.AllHard, 100*skew.ValidatedHard); err != nil {
		return err
	}
	if skew.ValidatedHard < skew.AllHard {
		fmt.Fprintln(w, "-> validation is skewed towards easy links, as §3.3 reports")
	}
	fmt.Fprintln(w)

	cats := make([]hardlinks.Category, 0, hardlinks.NumCategories)
	for c := hardlinks.Category(0); c < hardlinks.NumCategories; c++ {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	rows := make([][]string, 0, len(cats))
	for _, c := range cats {
		pc := skew.PerCategory[c]
		rows = append(rows, []string{
			c.String(),
			fmt.Sprintf("%d", set.CategoryCount(c)),
			fmt.Sprintf("%.3f", pc[0]),
			fmt.Sprintf("%.3f", pc[1]),
		})
	}
	_, err := io.WriteString(w, textplot.Table(
		[]string{"category", "links", "share_all", "share_validated"}, rows))
	return err
}
