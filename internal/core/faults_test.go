package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"breval/internal/resilience"
	"breval/internal/sampling"
	"breval/internal/validation"
)

// faultScenario is a small fast world for fault-injection runs.
func faultScenario(algos ...string) Scenario {
	s := DefaultScenario(1)
	s.NumASes = 600
	if len(algos) > 0 {
		s.Algorithms = algos
	}
	return s
}

// TestPipelineFatalStageFaults injects a fault into each fatal
// pipeline stage in turn and checks that RunContext aborts with
// partial Artifacts whose Report names the failed stage and kind.
func TestPipelineFatalStageFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	fatalStages := []string{
		"topo.generate", "bgp.propagate", "features.compute",
		"validation.extract", "validation.clean",
	}
	kinds := []struct {
		name  string
		fault resilience.Fault
		want  resilience.FailureKind
	}{
		{"panic", resilience.Fault{Kind: resilience.KindPanic}, resilience.KindPanic},
		{"error", resilience.Fault{Kind: resilience.KindError}, resilience.KindError},
		{"timeout", resilience.Fault{Kind: resilience.KindTimeout}, resilience.KindTimeout},
	}
	for _, stage := range fatalStages {
		for _, k := range kinds {
			t.Run(stage+"/"+k.name, func(t *testing.T) {
				defer resilience.ClearFaults()
				resilience.InjectAt(stage, k.fault)
				s := faultScenario(AlgoASRank)
				if k.want == resilience.KindTimeout {
					// A zero-delay timeout fault blocks until the
					// attempt's deadline expires. Generous enough
					// that the healthy stages before the faulted one
					// finish in time even under the race detector.
					s.StageTimeout = 2 * time.Second
				}
				art, err := RunContext(context.Background(), s)
				if err == nil {
					t.Fatalf("fault in fatal stage %s: RunContext succeeded", stage)
				}
				if art == nil || art.Report == nil {
					t.Fatal("no partial artifacts / report on fatal failure")
				}
				sr, ok := art.Report.Find(stage)
				if !ok {
					t.Fatalf("report has no entry for %s: %+v", stage, art.Report.Stages)
				}
				if sr.Status != resilience.StatusFailed {
					t.Errorf("stage %s status = %s, want failed", stage, sr.Status)
				}
				if sr.Kind != k.want {
					t.Errorf("stage %s kind = %s, want %s", stage, sr.Kind, k.want)
				}
			})
		}
	}
}

// TestPipelineDegradedStages injects failures into non-fatal stages
// and checks the run completes with the stage degraded and everything
// else intact.
func TestPipelineDegradedStages(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	t.Run("rpsl.generate", func(t *testing.T) {
		defer resilience.ClearFaults()
		resilience.InjectAt("rpsl.generate", resilience.Fault{Kind: resilience.KindPanic})
		art, err := RunContext(context.Background(), faultScenario(AlgoASRank))
		if err != nil {
			t.Fatalf("RunContext: %v", err)
		}
		if art.RPSL != nil {
			t.Error("RPSL snapshot present despite injected failure")
		}
		if len(art.Degraded) != 1 || art.Degraded[0] != "rpsl.generate" {
			t.Errorf("Degraded = %v, want [rpsl.generate]", art.Degraded)
		}
		if art.Validation == nil || len(art.Results) != 1 {
			t.Error("unrelated artifacts missing")
		}
	})
	t.Run("one-algorithm", func(t *testing.T) {
		defer resilience.ClearFaults()
		resilience.InjectAt("infer.Gao", resilience.Fault{Kind: resilience.KindPanic})
		art, err := RunContext(context.Background(), faultScenario(AlgoASRank, AlgoGao))
		if err != nil {
			t.Fatalf("RunContext: %v", err)
		}
		if _, ok := art.Results[AlgoGao]; ok {
			t.Error("Gao result present despite injected panic")
		}
		if _, ok := art.Results[AlgoASRank]; !ok {
			t.Error("ASRank result missing")
		}
		if art.TopoCls == nil {
			t.Error("cones not built from surviving algorithm")
		}
		sr, ok := art.Report.Find("infer.Gao")
		if !ok || sr.Status != resilience.StatusFailed || sr.Kind != resilience.KindPanic {
			t.Errorf("infer.Gao report = %+v, %v", sr, ok)
		}
	})
	t.Run("all-algorithms", func(t *testing.T) {
		defer resilience.ClearFaults()
		resilience.InjectAt("infer.ASRank", resilience.Fault{Kind: resilience.KindPanic})
		resilience.InjectAt("infer.Gao", resilience.Fault{Kind: resilience.KindError})
		art, err := RunContext(context.Background(), faultScenario(AlgoASRank, AlgoGao))
		if err == nil {
			t.Fatal("all algorithms failed but RunContext succeeded")
		}
		if !strings.Contains(err.Error(), "all inference algorithms failed") {
			t.Errorf("err = %v", err)
		}
		if art == nil || art.Validation == nil {
			t.Error("partial artifacts missing upstream outputs")
		}
	})
	t.Run("cones.build", func(t *testing.T) {
		defer resilience.ClearFaults()
		resilience.InjectAt("cones.build", resilience.Fault{Kind: resilience.KindPanic})
		art, err := RunContext(context.Background(), faultScenario(AlgoASRank))
		if err != nil {
			t.Fatalf("RunContext: %v", err)
		}
		if art.TopoCls != nil || art.ConeSizes != nil {
			t.Error("cone artifacts present despite injected failure")
		}
		// Degraded-mode experiments: Figure2 yields nothing, topo-class
		// sampling reports the missing classifier.
		if got := art.Figure2(); got != nil {
			t.Errorf("Figure2 on degraded run = %v, want nil", got)
		}
		if _, err := art.Figures4to6(AlgoASRank, "T1-TR", sampling.Config{}); err == nil {
			t.Error("Figures4to6 on topo class succeeded without classifier")
		}
	})
}

// TestPipelineRetriesTransientFault pairs a transient error (fires
// once) with one retry: the stage must succeed on the second attempt.
func TestPipelineRetriesTransientFault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	resilience.InjectAt("features.compute", resilience.Fault{Kind: resilience.KindError, Times: 1})
	s := faultScenario(AlgoASRank)
	s.StageRetries = 1
	art, err := RunContext(context.Background(), s)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	sr, ok := art.Report.Find("features.compute")
	if !ok || sr.Status != resilience.StatusOK {
		t.Fatalf("features.compute report = %+v, %v", sr, ok)
	}
	if sr.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", sr.Attempts)
	}
}

// TestPipelineCorruptValidation swaps the extracted validation
// snapshot for an empty one at the validation.extract data-fault
// site: the pipeline must complete (empty validation is legal input)
// with the corruption visible downstream.
func TestPipelineCorruptValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	resilience.InjectAt("validation.extract", resilience.Fault{
		Kind: resilience.KindCorrupt,
		Corrupt: func(v any) any {
			if _, ok := v.(*validation.Snapshot); ok {
				return validation.NewSnapshot()
			}
			return v
		},
	})
	art, err := RunContext(context.Background(), faultScenario(AlgoASRank))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if got := art.RawValidation.Len(); got != 0 {
		t.Errorf("raw validation links = %d, want 0 after corruption", got)
	}
	if got := art.Validation.Len(); got != 0 {
		t.Errorf("clean validation links = %d, want 0 after corruption", got)
	}
}

// TestPipelineCanceledContext aborts before the run starts.
func TestPipelineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	art, err := RunContext(ctx, faultScenario(AlgoASRank))
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if art == nil || art.Report == nil {
		t.Fatal("no report on canceled run")
	}
	sr, ok := art.Report.Find("topo.generate")
	if !ok || sr.Kind != resilience.KindCanceled {
		t.Errorf("topo.generate report = %+v, %v (want canceled)", sr, ok)
	}
}

// TestRenderAllSurvivesFailedExperiment injects a panic into one
// experiment renderer: the dump must carry an inline failure note for
// it and still render every other experiment.
func TestRenderAllSurvivesFailedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("renders everything")
	}
	art := midArtifacts(t)
	defer resilience.ClearFaults()
	resilience.InjectAt("render.fig1", resilience.Fault{Kind: resilience.KindPanic})
	var buf bytes.Buffer
	rep, err := art.RenderAllContext(context.Background(), &buf, RenderOptions{MinLinks: 100})
	if err != nil {
		t.Fatalf("RenderAllContext: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "(experiment fig1 failed:") {
		t.Error("no inline failure note for fig1")
	}
	if strings.Contains(out, "Figure 1 — regional imbalance") {
		t.Error("failed experiment leaked partial output")
	}
	for _, want := range []string{
		"Figure 2 — topological imbalance",
		"Per group validation table for ASRank",
		"Case study (§6.1)",
		"Over-sampling through ecosystem change",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("surviving experiment missing: %q", want)
		}
	}
	sr, ok := rep.Find("render.fig1")
	if !ok || sr.Status != resilience.StatusFailed || sr.Kind != resilience.KindPanic {
		t.Errorf("render.fig1 report = %+v, %v", sr, ok)
	}
	if failed := rep.Failed(); len(failed) != 1 {
		t.Errorf("failed stages = %d, want 1", len(failed))
	}
}

// TestRenderOnlyContextIsolation: a failing named experiment does not
// stop the rest of the -only list.
func TestRenderOnlyContextIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("renders experiments")
	}
	art := midArtifacts(t)
	defer resilience.ClearFaults()
	resilience.InjectAt("render.fig1", resilience.Fault{Kind: resilience.KindError})
	var buf bytes.Buffer
	rep, err := art.RenderOnlyContext(context.Background(), &buf,
		[]string{"fig1", "clean"}, RenderOptions{})
	if err != nil {
		t.Fatalf("RenderOnlyContext: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "(experiment fig1 failed:") {
		t.Error("no failure note for fig1")
	}
	if !strings.Contains(out, "Label quality & treatment") {
		t.Error("clean experiment missing")
	}
	if len(rep.Failed()) != 1 {
		t.Errorf("failed = %v", rep.Failed())
	}
	if _, err := art.RenderOnlyContext(context.Background(), &buf,
		[]string{"fig99"}, RenderOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
