package core

import (
	"context"
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/metrics"
	"breval/internal/textplot"
)

// VPSweepPoint is one point of the vantage-point sweep: inference
// quality when only a fraction of the collector sessions exist.
type VPSweepPoint struct {
	// Fraction of the full VP set used.
	Fraction float64
	VPs      int
	// VisibleLinks is the observed link universe at this VP count.
	VisibleLinks int
	// Row is ASRank's evaluation against the full validation data
	// (restricted to links visible at this VP count).
	Row metrics.Row
}

// VPSweep quantifies the §1 visibility problem: the same world,
// observed through progressively smaller vantage-point sets, yields
// smaller link universes and worse inferences. VPs are dropped from
// the end of the (sorted) VP list, which removes mostly non-Tier-1
// sessions first — mirroring how collector projects grew.
func (a *Artifacts) VPSweep(fractions []float64) []VPSweepPoint {
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75, 1.0}
	}
	out := make([]VPSweepPoint, 0, len(fractions))
	for _, f := range fractions {
		n := int(f * float64(len(a.World.VPs)))
		if n < 1 {
			n = 1
		}
		keep := make(map[asn.ASN]bool, n)
		for _, v := range a.World.VPs[:n] {
			keep[v] = true
		}
		// Stream the kept paths into the feature collector in small
		// blocks instead of materialising a filtered copy of the whole
		// arena: each block is cleaned on arrival, so the sweep's peak
		// is one block plus the cleaned universe. Feed order equals
		// arena order, which keeps the result identical to a filtered
		// features.Compute. With a background context the collector
		// cannot fail, so errors get Compute's impossible-panic
		// treatment.
		ctx := context.Background()
		collector := features.NewStreamCollector()
		const blockPaths = 4096
		blk := bgp.NewPathSet(blockPaths, blockPaths*5)
		feed := func() {
			if blk.Len() == 0 {
				return
			}
			if err := collector.Feed(ctx, blk); err != nil {
				panic(err)
			}
			blk = bgp.NewPathSet(blockPaths, blockPaths*5)
		}
		a.Paths.ForEach(func(p asgraph.Path) {
			if keep[p.VantagePoint()] {
				blk.Append(p)
				if blk.Len() >= blockPaths {
					feed()
				}
			}
		})
		feed()
		fs, err := collector.Finish(ctx)
		if err != nil {
			panic(err)
		}
		res := asrank.New(asrank.Options{}).Infer(fs)
		out = append(out, VPSweepPoint{
			Fraction:     f,
			VPs:          n,
			VisibleLinks: fs.NumLinks(),
			Row:          metrics.Evaluate(res, a.Validation, nil),
		})
	}
	return out
}

// RenderVPSweep writes the sweep table.
func (a *Artifacts) RenderVPSweep(w io.Writer, points []VPSweepPoint) error {
	if _, err := fmt.Fprintf(w, "Vantage-point sweep (the §1 visibility problem) — ASRank vs validation\n\n"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*p.Fraction),
			fmt.Sprintf("%d", p.VPs),
			fmt.Sprintf("%d", p.VisibleLinks),
			textplot.Fmt3(p.Row.PPVP),
			textplot.Fmt3(p.Row.TPRP),
			textplot.Fmt3(p.Row.PPVC),
			textplot.Fmt3(p.Row.TPRC),
			textplot.Fmt3(p.Row.MCC),
		})
	}
	_, err := io.WriteString(w, textplot.Table(
		[]string{"VP set", "VPs", "visible", "PPV_P", "TPR_P", "PPV_C", "TPR_C", "MCC"}, rows))
	return err
}
