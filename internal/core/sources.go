package core

import (
	"fmt"
	"io"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/textplot"
	"breval/internal/validation"
)

// SourceStat profiles one validation source over the inferred links:
// total labelled links and the per-class coverage.
type SourceStat struct {
	Name    string
	Entries int
	// Coverage maps regional class name to the fraction of the
	// class's inferred links the source labels.
	Coverage map[string]float64
}

// SourceComparison contrasts the two Luckie et al. validation sources
// the pipeline implements — BGP communities (source iii, what recent
// works rely on exclusively) and IRR routing policies (source ii) —
// plus their union, over the regional link classes. It quantifies the
// §7 argument that combining sources softens but does not remove the
// regional bias (no source covers LACNIC).
func (a *Artifacts) SourceComparison() []SourceStat {
	union := a.RawValidation.Clone()
	a.RPSL.ForEach(func(l asgraph.Link, lbs []validation.Label) {
		for _, lb := range lbs {
			union.Add(l, lb)
		}
	})
	sources := []struct {
		name string
		snap *validation.Snapshot
	}{
		{"communities (iii)", a.RawValidation},
		{"IRR policies (ii)", a.RPSL},
		{"union (ii+iii)", union},
	}
	out := make([]SourceStat, 0, len(sources))
	for _, src := range sources {
		st := SourceStat{Name: src.name, Entries: src.snap.Len(), Coverage: map[string]float64{}}
		counts := map[string][2]int{} // class -> [links, validated]
		a.ForEachInferredLink(func(l asgraph.Link) {
			cls, ok := a.RegionCls.Class(l)
			if !ok {
				return
			}
			c := counts[cls]
			c[0]++
			if src.snap.Has(l) {
				c[1]++
			}
			counts[cls] = c
		})
		for cls, c := range counts {
			if c[0] > 0 {
				st.Coverage[cls] = float64(c[1]) / float64(c[0])
			}
		}
		out = append(out, st)
	}
	return out
}

// RenderSourceComparison writes the source-comparison table.
func (a *Artifacts) RenderSourceComparison(w io.Writer) error {
	stats := a.SourceComparison()
	if _, err := fmt.Fprintf(w, "Validation sources (§3.2/§7) — per-class coverage of inferred links\n\n"); err != nil {
		return err
	}
	classSet := map[string]bool{}
	for _, st := range stats {
		for c := range st.Coverage {
			classSet[c] = true
		}
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	headers := []string{"class"}
	for _, st := range stats {
		headers = append(headers, st.Name)
	}
	rows := make([][]string, 0, len(classes)+1)
	entries := []string{"entries"}
	for _, st := range stats {
		entries = append(entries, fmt.Sprintf("%d", st.Entries))
	}
	rows = append(rows, entries)
	for _, c := range classes {
		row := []string{c}
		for _, st := range stats {
			row = append(row, textplot.Fmt3(st.Coverage[c]))
		}
		rows = append(rows, row)
	}
	_, err := io.WriteString(w, textplot.Table(headers, rows))
	return err
}
