package core

import (
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/inference/problink"
	"breval/internal/textplot"
	"breval/internal/validation"
)

// UncertaintyBucket is one row of the UNARI-style calibration curve:
// validated links whose winning posterior falls into the bucket, and
// the empirical accuracy within it.
type UncertaintyBucket struct {
	// Lo/Hi bound the winning-probability range.
	Lo, Hi float64
	Links  int
	// Accuracy is the fraction whose inferred relationship matches
	// the validation label.
	Accuracy float64
}

// UncertaintyCalibration runs ProbLink with posterior output and bins
// the validated links by confidence. UNARI (Feng et al., CoNEXT'19)
// argued a certainty measure per link is the honest output format;
// the paper could not analyse it for lack of artifacts (footnote 1),
// so this experiment supplies the missing view: if the posterior is
// well calibrated, high-confidence buckets are accurate and the
// misclassified minority classes (partial transit, stub-T1 peerings)
// concentrate in the low-confidence buckets.
func (a *Artifacts) UncertaintyCalibration(buckets int) []UncertaintyBucket {
	if buckets < 2 {
		buckets = 5
	}
	algo := problink.New(problink.Options{})
	res, post := algo.InferWithUncertainty(a.Features)

	counts := make([]int, buckets)
	correct := make([]int, buckets)
	a.Validation.ForEach(func(l asgraph.Link, lbs []validation.Label) {
		if len(lbs) != 1 {
			return
		}
		p, okP := post[l]
		rel, okR := res.Rel(l)
		if !okP || !okR {
			return
		}
		conf := p.Max()
		// Winning probability of a 3-class posterior lies in (1/3, 1];
		// stretch that range over the buckets.
		idx := int((conf - 1.0/3) / (2.0 / 3) * float64(buckets))
		if idx >= buckets {
			idx = buckets - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
		t := lbs[0]
		if rel.Type == t.Type && (rel.Type != asgraph.P2C || rel.Provider == t.Provider) {
			correct[idx]++
		}
	})

	out := make([]UncertaintyBucket, 0, buckets)
	for i := 0; i < buckets; i++ {
		b := UncertaintyBucket{
			Lo: 1.0/3 + float64(i)*2.0/3/float64(buckets),
			Hi: 1.0/3 + float64(i+1)*2.0/3/float64(buckets),
		}
		b.Links = counts[i]
		if counts[i] > 0 {
			b.Accuracy = float64(correct[i]) / float64(counts[i])
		}
		out = append(out, b)
	}
	return out
}

// RenderUncertainty writes the calibration curve.
func (a *Artifacts) RenderUncertainty(w io.Writer) error {
	buckets := a.UncertaintyCalibration(5)
	if _, err := fmt.Fprintf(w, "UNARI-style uncertainty calibration (ProbLink posteriors, validated links)\n\n"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(buckets))
	for _, b := range buckets {
		acc := "-"
		if b.Links > 0 {
			acc = fmt.Sprintf("%.3f", b.Accuracy)
		}
		rows = append(rows, []string{
			fmt.Sprintf("[%.2f, %.2f)", b.Lo, b.Hi),
			fmt.Sprintf("%d", b.Links),
			acc,
		})
	}
	if _, err := io.WriteString(w, textplot.Table(
		[]string{"confidence", "links", "accuracy"}, rows)); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nwell-calibrated output concentrates errors in the low-confidence rows —")
	fmt.Fprintln(w, "the uncertainty-aware answer to evaluating hard classes the paper asks for")
	return err
}
