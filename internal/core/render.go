package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"breval/internal/bias"
	"breval/internal/metrics"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/sampling"
	"breval/internal/textplot"
)

// RenderFigure1 writes the Figure 1 bar pairs (regional link shares
// and validation coverage).
func (a *Artifacts) RenderFigure1(w io.Writer) error {
	return renderImbalance(w, "Figure 1 — regional imbalance", a.Figure1())
}

// RenderFigure2 writes the Figure 2 bar pairs (topological classes).
func (a *Artifacts) RenderFigure2(w io.Writer) error {
	return renderImbalance(w, "Figure 2 — topological imbalance", a.Figure2())
}

func renderImbalance(w io.Writer, title string, stats []bias.ClassStat) error {
	classes := make([]string, 0, len(stats))
	shares := make([]float64, 0, len(stats))
	covers := make([]float64, 0, len(stats))
	rows := make([][]string, 0, len(stats))
	for _, st := range stats {
		classes = append(classes, st.Class)
		shares = append(shares, st.Share)
		covers = append(covers, st.Coverage)
		rows = append(rows, []string{
			st.Class,
			fmt.Sprintf("%.3f", st.Share),
			fmt.Sprintf("%.3f", st.Coverage),
			fmt.Sprintf("%d", st.Links),
			fmt.Sprintf("%d", st.Validated),
		})
	}
	if _, err := fmt.Fprintf(w, "%s\n\n", title); err != nil {
		return err
	}
	if _, err := io.WriteString(w, textplot.Table(
		[]string{"class", "share", "coverage", "links", "validated"}, rows)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	_, err := io.WriteString(w, textplot.BarPairs(classes, shares, covers, 40))
	return err
}

// RenderHeatmapPair writes one Figure 3/7/8/9 panel pair.
func RenderHeatmapPair(w io.Writer, id string, hp HeatmapPair) error {
	corner := func(h interface {
		CornerMass(fx, fy float64) float64
	}) float64 {
		return h.CornerMass(1.0/3, 1.0/3)
	}
	if _, err := fmt.Fprintf(w,
		"%s — %s heatmaps over TR° links (x: larger, y: smaller; last row/col are catch-alls)\n",
		id, hp.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"inferred: %d links, bottom-left ninth holds %.2f of the mass\n%s",
		hp.Inferred.Total, corner(hp.Inferred),
		textplot.Heatmap(hp.Inferred.Frac, "")); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"validated: %d links, bottom-left ninth holds %.2f of the mass\n%s",
		hp.Validated.Total, corner(hp.Validated),
		textplot.Heatmap(hp.Validated.Frac, ""))
	return err
}

// RenderTable writes a per-group validation table in the paper's
// layout, annotating per-class deltas against Total° with the paper's
// colour letters (+ green, y yellow, o orange, r red).
func RenderTable(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "Per group validation table for %s\n\n", t.Algorithm); err != nil {
		return err
	}
	headers := []string{"Class", "PPV_P", "TPR_P", "LC_P", "PPV_C", "TPR_C", "LC_C", "MCC"}
	rows := [][]string{totalRow("Total°", t.Total, t.Total)}
	for _, r := range t.Rows {
		rows = append(rows, totalRow(r.Class, r.Row, t.Total))
	}
	_, err := io.WriteString(w, textplot.Table(headers, rows))
	return err
}

func totalRow(name string, r, total metrics.Row) []string {
	cell := func(v, base float64) string {
		s := textplot.Fmt3(v)
		if name != "Total°" {
			if m := textplot.DeltaMark(metrics.Delta(v, base)); m != "" {
				s += m
			}
		}
		return s
	}
	return []string{
		name,
		cell(r.PPVP, total.PPVP),
		cell(r.TPRP, total.TPRP),
		fmt.Sprintf("%d", r.LCP),
		cell(r.PPVC, total.PPVC),
		cell(r.TPRC, total.TPRC),
		fmt.Sprintf("%d", r.LCC),
		cell(r.MCC, total.MCC),
	}
}

// RenderSampling writes the Figures 4-6 series.
func (a *Artifacts) RenderSampling(w io.Writer, algo, class string, ser sampling.Series) error {
	if _, err := fmt.Fprintf(w,
		"Figures 4-6 — sampling robustness for %s on %s (%d eligible links)\n",
		algo, class, ser.Eligible); err != nil {
		return err
	}
	if len(ser.Pcts) == 0 {
		_, err := io.WriteString(w, "(class too small to sample)\n")
		return err
	}
	for _, m := range []struct {
		name string
		st   sampling.Stats
	}{
		{"PPV_P (Fig. 4)", ser.PPVP},
		{"TPR_P (Fig. 5)", ser.TPRP},
		{"MCC   (Fig. 6)", ser.MCC},
	} {
		slope := sampling.TrendSlope(ser.Pcts, m.st.Median)
		if _, err := fmt.Fprintf(w, "\n%s  trend slope %.6f per %%\n", m.name, slope); err != nil {
			return err
		}
		// Show every 7th point to keep the dump compact.
		var xs []int
		var med, q1, q3 []float64
		for i := 0; i < len(ser.Pcts); i += 7 {
			xs = append(xs, ser.Pcts[i])
			med = append(med, m.st.Median[i])
			q1 = append(q1, m.st.Q1[i])
			q3 = append(q3, m.st.Q3[i])
		}
		if _, err := io.WriteString(w, textplot.MedianIQR(xs, med, q1, q3, "")); err != nil {
			return err
		}
	}
	return nil
}

// RenderCaseStudy writes the §6.1 report.
func (a *Artifacts) RenderCaseStudy(w io.Writer, algo string) error {
	rep, err := a.CaseStudy(algo)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Case study (§6.1) for %s\n\n", algo)
	fmt.Fprintf(w, "validated-P2C links between clique and transit inferred as P2P: %d\n", rep.WrongP2P)
	if rep.FocusCount == 0 {
		_, err := io.WriteString(w, "no focus AS (no wrong links)\n")
		return err
	}
	fmt.Fprintf(w, "focus AS (the AS714 stand-in): AS%d with %d of them (%.0f%%)\n",
		rep.Focus, rep.FocusCount, 100*float64(rep.FocusCount)/float64(rep.WrongP2P))
	withTrip := 0
	for _, tl := range rep.Targets {
		if tl.HasCliqueTriplet {
			withTrip++
		}
	}
	fmt.Fprintf(w, "target links with a clique triplet C|T1|X: %d (the paper finds none)\n", withTrip)
	causes := make([]string, 0, len(rep.ByCause))
	for c, n := range rep.ByCause {
		causes = append(causes, fmt.Sprintf("%s: %d", c, n))
	}
	sort.Strings(causes)
	fmt.Fprintf(w, "looking-glass causes: %s\n", strings.Join(causes, ", "))
	return nil
}

// RenderCleanReport writes the §4.2 label-treatment summary.
func (a *Artifacts) RenderCleanReport(w io.Writer) error {
	r := a.CleanReport
	_, err := fmt.Fprintf(w, `Label quality & treatment (§4.2, policy %s)

entries involving AS_TRANS:        %d (removed)
entries involving reserved ASNs:   %d (removed)
entries with multiple labels:      %d over %d ASes (%d kept)
sibling entries (via AS2Org):      %d (removed)
usable single-label entries:       %d
`, a.Scenario.Policy, r.TransEntries, r.ReservedEntries,
		r.MultiLabelEntries, r.MultiLabelASes, r.MultiLabelKept,
		r.SiblingEntries, r.Kept)
	return err
}

// RenderOptions configures experiment rendering.
type RenderOptions struct {
	// MinLinks is the validated-link threshold for table rows (the
	// paper uses 500); values below 1 default to 100.
	MinLinks int
	// EvolveMonths is the horizon of the §7 evolution study; values
	// below 1 default to 4 (the full-dump default).
	EvolveMonths int
	// StageTimeout/StageRetries apply the pipeline's per-stage policy
	// to each experiment renderer (stage names "render.<experiment>").
	StageTimeout time.Duration
	StageRetries int
}

func (o *RenderOptions) fill() {
	if o.MinLinks < 1 {
		o.MinLinks = 100
	}
	if o.EvolveMonths < 1 {
		o.EvolveMonths = 4
	}
}

// renderFunc writes one experiment. Each experiment renders into a
// private buffer, so a renderer that fails mid-write leaks nothing
// into the output stream.
type renderFunc func(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error

// allExperiment is one entry of the full paper dump: the experiment
// name, an optional silent-skip condition (an experiment that cannot
// apply to this run, e.g. a table for an algorithm the scenario did
// not request — distinct from a failure) and the renderer.
type allExperiment struct {
	name   string
	skip   func(a *Artifacts) string
	render renderFunc
}

func skipWithoutAlgo(algo string) func(a *Artifacts) string {
	return func(a *Artifacts) string {
		if _, ok := a.Results[algo]; !ok {
			return "no " + algo + " result"
		}
		return ""
	}
}

func renderTableExperiment(algo string) renderFunc {
	return func(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
		tab, err := a.TableFor(algo, opts.MinLinks)
		if err != nil {
			return err
		}
		return RenderTable(w, tab)
	}
}

func renderFig1(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderFigure1(w)
}

func renderFig2(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	if a.TopoCls == nil {
		return errNoTopoCls
	}
	return a.RenderFigure2(w)
}

func renderFig3(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	if a.TopoCls == nil {
		return errNoTopoCls
	}
	return RenderHeatmapPair(w, "Figure 3", a.Figure3())
}

func renderFig46(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	ser, err := a.Figures4to6(AlgoASRank, "T1-TR", sampling.Config{})
	if err != nil {
		return err
	}
	return a.RenderSampling(w, AlgoASRank, "T1-TR", ser)
}

// renderFig79 writes the appendix-B heatmaps; sep adds the blank line
// the full dump prints between pairs.
func renderFig79(sep bool) renderFunc {
	return func(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
		if a.TopoCls == nil {
			return errNoTopoCls
		}
		for i, hp := range a.Figures7to9() {
			if err := RenderHeatmapPair(w, fmt.Sprintf("Figure %d", 7+i), hp); err != nil {
				return err
			}
			if sep {
				fmt.Fprintln(w)
			}
		}
		return nil
	}
}

func renderClean(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderCleanReport(w)
}

func renderCase(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderCaseStudy(w, AlgoASRank)
}

func renderHard(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderHardLinks(w)
}

func renderSources(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderSourceComparison(w)
}

func renderReclass(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderReclassification(w, AlgoASRank)
}

func renderComplex(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderComplexRelationships(w)
}

func renderUnari(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderUncertainty(w)
}

func renderEvolve(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	evo, err := a.RunEvolutionContext(ctx, opts.EvolveMonths)
	if err != nil {
		return err
	}
	return a.RenderEvolution(w, evo)
}

func renderVPs(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	return a.RenderVPSweep(w, a.VPSweep(nil))
}

func renderTables(ctx context.Context, a *Artifacts, w io.Writer, opts RenderOptions) error {
	for _, algo := range []string{AlgoASRank, AlgoProbLink, AlgoTopoScope, AlgoGao} {
		if _, ok := a.Results[algo]; !ok {
			continue
		}
		tab, err := a.TableFor(algo, opts.MinLinks)
		if err != nil {
			return err
		}
		if err := RenderTable(w, tab); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// allExperiments is the paper-order sequence of the full dump.
var allExperiments = []allExperiment{
	{name: "clean", render: renderClean},
	{name: "fig1", render: renderFig1},
	{name: "fig2", render: renderFig2},
	{name: "fig3", render: renderFig3},
	{name: "tab:ASRank", skip: skipWithoutAlgo(AlgoASRank), render: renderTableExperiment(AlgoASRank)},
	{name: "tab:ProbLink", skip: skipWithoutAlgo(AlgoProbLink), render: renderTableExperiment(AlgoProbLink)},
	{name: "tab:TopoScope", skip: skipWithoutAlgo(AlgoTopoScope), render: renderTableExperiment(AlgoTopoScope)},
	{name: "tab:Gao", skip: skipWithoutAlgo(AlgoGao), render: renderTableExperiment(AlgoGao)},
	{name: "fig4-6", skip: skipWithoutAlgo(AlgoASRank), render: renderFig46},
	{name: "case", skip: skipWithoutAlgo(AlgoASRank), render: renderCase},
	{name: "fig7-9", render: renderFig79(true)},
	{name: "hard", render: renderHard},
	{name: "sources", render: renderSources},
	{name: "reclass", skip: skipWithoutAlgo(AlgoASRank), render: renderReclass},
	{name: "complex", render: renderComplex},
	{name: "unari", render: renderUnari},
	{name: "evolve", render: renderEvolve},
}

// namedExperiments is the on-demand registry (the -only flag). The
// tab1-3 aliases follow the paper's table numbering.
var namedExperiments = map[string]renderFunc{
	"fig1":    renderFig1,
	"fig2":    renderFig2,
	"fig3":    renderFig3,
	"tables":  renderTables,
	"tab1":    renderTableExperiment(AlgoASRank),
	"tab2":    renderTableExperiment(AlgoProbLink),
	"tab3":    renderTableExperiment(AlgoTopoScope),
	"fig4-6":  renderFig46,
	"fig7-9":  renderFig79(false),
	"clean":   renderClean,
	"case":    renderCase,
	"hard":    renderHard,
	"sources": renderSources,
	"reclass": renderReclass,
	"evolve":  renderEvolve,
	"unari":   renderUnari,
	"vps":     renderVPs,
	"complex": renderComplex,
}

// KnownExperiment reports whether name is a renderable experiment
// (one of the -only names).
func KnownExperiment(name string) bool {
	_, ok := namedExperiments[name]
	return ok
}

// renderStage runs one experiment renderer as an isolated stage: the
// renderer writes into a private buffer under the runner's policy
// (timeout, retry, panic containment), and only a successful attempt's
// bytes reach w.
func renderStage(ctx context.Context, runner *resilience.Runner, pol resilience.Policy,
	a *Artifacts, name string, fn renderFunc, opts RenderOptions) ([]byte, error) {
	stage := "render." + name
	return resilience.Value(ctx, runner, stage, pol,
		func(ctx context.Context) ([]byte, error) {
			if err := resilience.Checkpoint(ctx, stage); err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := fn(ctx, a, &buf, opts); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
}

// RenderAllContext writes every experiment the paper reports, in
// order, with each experiment isolated as its own stage: one failing
// renderer yields an inline "(experiment X failed: ...)" note and the
// dump continues with every other experiment. The returned report has
// one entry per experiment (ok / failed / skipped). The error is
// non-nil only for whole-run problems: context cancellation or a
// write error on w.
func (a *Artifacts) RenderAllContext(ctx context.Context, w io.Writer, opts RenderOptions) (*resilience.RunReport, error) {
	opts.fill()
	runner := resilience.NewRunner()
	pol := resilience.Policy{Timeout: opts.StageTimeout, Retries: opts.StageRetries}
	hr := func() { fmt.Fprintln(w, "\n"+strings.Repeat("=", 72)+"\n") }
	fmt.Fprintf(w, "breval experiments — seed %d, %d ASes, %d links (%d visible), %d VPs\n",
		a.Scenario.Seed, len(a.World.ASNs), a.World.Graph.NumLinks(),
		a.InferredLinkCount(), len(a.World.VPs))
	for _, e := range allExperiments {
		if err := ctx.Err(); err != nil {
			return runner.Report(), err
		}
		if e.skip != nil {
			if note := e.skip(a); note != "" {
				runner.Skip("render."+e.name, note)
				continue
			}
		}
		out, err := renderStage(ctx, runner, pol, a, e.name, e.render, opts)
		hr()
		if err != nil {
			if ctx.Err() != nil {
				return runner.Report(), err
			}
			fmt.Fprintf(w, "(experiment %s failed: %v)\n", e.name, err)
			continue
		}
		obs.From(ctx).Add("render.bytes", int64(len(out)))
		if _, err := w.Write(out); err != nil {
			return runner.Report(), err
		}
	}
	return runner.Report(), nil
}

// RenderOnlyContext renders the named experiments (the -only list) in
// the given order, a blank line after each, with the same per-stage
// isolation as RenderAllContext. Unknown names fail up front, before
// anything renders.
func (a *Artifacts) RenderOnlyContext(ctx context.Context, w io.Writer, names []string, opts RenderOptions) (*resilience.RunReport, error) {
	opts.fill()
	for _, name := range names {
		if !KnownExperiment(name) {
			return nil, fmt.Errorf("core: unknown experiment %q", name)
		}
	}
	runner := resilience.NewRunner()
	pol := resilience.Policy{Timeout: opts.StageTimeout, Retries: opts.StageRetries}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return runner.Report(), err
		}
		out, err := renderStage(ctx, runner, pol, a, name, namedExperiments[name], opts)
		if err != nil {
			if ctx.Err() != nil {
				return runner.Report(), err
			}
			fmt.Fprintf(w, "(experiment %s failed: %v)\n", name, err)
			fmt.Fprintln(w)
			continue
		}
		obs.From(ctx).Add("render.bytes", int64(len(out)))
		if _, err := w.Write(out); err != nil {
			return runner.Report(), err
		}
		fmt.Fprintln(w)
	}
	return runner.Report(), nil
}

// RenderAll writes the full paper dump without external cancellation
// and folds experiment failures into its error: compatibility entry
// point for examples and tests. minLinks is the validated-link
// threshold for table rows (values below 1 default to 100).
func (a *Artifacts) RenderAll(w io.Writer, minLinks int) error {
	rep, err := a.RenderAllContext(context.Background(), w, RenderOptions{MinLinks: minLinks})
	if err != nil {
		return err
	}
	if failed := rep.Failed(); len(failed) > 0 {
		return fmt.Errorf("core: %d experiment(s) failed, first %s: %s",
			len(failed), failed[0].Stage, failed[0].Error)
	}
	return nil
}
