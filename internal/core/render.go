package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"breval/internal/bias"
	"breval/internal/metrics"
	"breval/internal/sampling"
	"breval/internal/textplot"
)

// RenderFigure1 writes the Figure 1 bar pairs (regional link shares
// and validation coverage).
func (a *Artifacts) RenderFigure1(w io.Writer) error {
	return renderImbalance(w, "Figure 1 — regional imbalance", a.Figure1())
}

// RenderFigure2 writes the Figure 2 bar pairs (topological classes).
func (a *Artifacts) RenderFigure2(w io.Writer) error {
	return renderImbalance(w, "Figure 2 — topological imbalance", a.Figure2())
}

func renderImbalance(w io.Writer, title string, stats []bias.ClassStat) error {
	classes := make([]string, 0, len(stats))
	shares := make([]float64, 0, len(stats))
	covers := make([]float64, 0, len(stats))
	rows := make([][]string, 0, len(stats))
	for _, st := range stats {
		classes = append(classes, st.Class)
		shares = append(shares, st.Share)
		covers = append(covers, st.Coverage)
		rows = append(rows, []string{
			st.Class,
			fmt.Sprintf("%.3f", st.Share),
			fmt.Sprintf("%.3f", st.Coverage),
			fmt.Sprintf("%d", st.Links),
			fmt.Sprintf("%d", st.Validated),
		})
	}
	if _, err := fmt.Fprintf(w, "%s\n\n", title); err != nil {
		return err
	}
	if _, err := io.WriteString(w, textplot.Table(
		[]string{"class", "share", "coverage", "links", "validated"}, rows)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	_, err := io.WriteString(w, textplot.BarPairs(classes, shares, covers, 40))
	return err
}

// RenderHeatmapPair writes one Figure 3/7/8/9 panel pair.
func RenderHeatmapPair(w io.Writer, id string, hp HeatmapPair) error {
	corner := func(h interface {
		CornerMass(fx, fy float64) float64
	}) float64 {
		return h.CornerMass(1.0/3, 1.0/3)
	}
	if _, err := fmt.Fprintf(w,
		"%s — %s heatmaps over TR° links (x: larger, y: smaller; last row/col are catch-alls)\n",
		id, hp.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"inferred: %d links, bottom-left ninth holds %.2f of the mass\n%s",
		hp.Inferred.Total, corner(hp.Inferred),
		textplot.Heatmap(hp.Inferred.Frac, "")); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"validated: %d links, bottom-left ninth holds %.2f of the mass\n%s",
		hp.Validated.Total, corner(hp.Validated),
		textplot.Heatmap(hp.Validated.Frac, ""))
	return err
}

// RenderTable writes a per-group validation table in the paper's
// layout, annotating per-class deltas against Total° with the paper's
// colour letters (+ green, y yellow, o orange, r red).
func RenderTable(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "Per group validation table for %s\n\n", t.Algorithm); err != nil {
		return err
	}
	headers := []string{"Class", "PPV_P", "TPR_P", "LC_P", "PPV_C", "TPR_C", "LC_C", "MCC"}
	rows := [][]string{totalRow("Total°", t.Total, t.Total)}
	for _, r := range t.Rows {
		rows = append(rows, totalRow(r.Class, r.Row, t.Total))
	}
	_, err := io.WriteString(w, textplot.Table(headers, rows))
	return err
}

func totalRow(name string, r, total metrics.Row) []string {
	cell := func(v, base float64) string {
		s := textplot.Fmt3(v)
		if name != "Total°" {
			if m := textplot.DeltaMark(metrics.Delta(v, base)); m != "" {
				s += m
			}
		}
		return s
	}
	return []string{
		name,
		cell(r.PPVP, total.PPVP),
		cell(r.TPRP, total.TPRP),
		fmt.Sprintf("%d", r.LCP),
		cell(r.PPVC, total.PPVC),
		cell(r.TPRC, total.TPRC),
		fmt.Sprintf("%d", r.LCC),
		cell(r.MCC, total.MCC),
	}
}

// RenderSampling writes the Figures 4-6 series.
func (a *Artifacts) RenderSampling(w io.Writer, algo, class string, ser sampling.Series) error {
	if _, err := fmt.Fprintf(w,
		"Figures 4-6 — sampling robustness for %s on %s (%d eligible links)\n",
		algo, class, ser.Eligible); err != nil {
		return err
	}
	if len(ser.Pcts) == 0 {
		_, err := io.WriteString(w, "(class too small to sample)\n")
		return err
	}
	for _, m := range []struct {
		name string
		st   sampling.Stats
	}{
		{"PPV_P (Fig. 4)", ser.PPVP},
		{"TPR_P (Fig. 5)", ser.TPRP},
		{"MCC   (Fig. 6)", ser.MCC},
	} {
		slope := sampling.TrendSlope(ser.Pcts, m.st.Median)
		if _, err := fmt.Fprintf(w, "\n%s  trend slope %.6f per %%\n", m.name, slope); err != nil {
			return err
		}
		// Show every 7th point to keep the dump compact.
		var xs []int
		var med, q1, q3 []float64
		for i := 0; i < len(ser.Pcts); i += 7 {
			xs = append(xs, ser.Pcts[i])
			med = append(med, m.st.Median[i])
			q1 = append(q1, m.st.Q1[i])
			q3 = append(q3, m.st.Q3[i])
		}
		if _, err := io.WriteString(w, textplot.MedianIQR(xs, med, q1, q3, "")); err != nil {
			return err
		}
	}
	return nil
}

// RenderCaseStudy writes the §6.1 report.
func (a *Artifacts) RenderCaseStudy(w io.Writer, algo string) error {
	rep, err := a.CaseStudy(algo)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Case study (§6.1) for %s\n\n", algo)
	fmt.Fprintf(w, "validated-P2C links between clique and transit inferred as P2P: %d\n", rep.WrongP2P)
	if rep.FocusCount == 0 {
		_, err := io.WriteString(w, "no focus AS (no wrong links)\n")
		return err
	}
	fmt.Fprintf(w, "focus AS (the AS714 stand-in): AS%d with %d of them (%.0f%%)\n",
		rep.Focus, rep.FocusCount, 100*float64(rep.FocusCount)/float64(rep.WrongP2P))
	withTrip := 0
	for _, tl := range rep.Targets {
		if tl.HasCliqueTriplet {
			withTrip++
		}
	}
	fmt.Fprintf(w, "target links with a clique triplet C|T1|X: %d (the paper finds none)\n", withTrip)
	causes := make([]string, 0, len(rep.ByCause))
	for c, n := range rep.ByCause {
		causes = append(causes, fmt.Sprintf("%s: %d", c, n))
	}
	sort.Strings(causes)
	fmt.Fprintf(w, "looking-glass causes: %s\n", strings.Join(causes, ", "))
	return nil
}

// RenderCleanReport writes the §4.2 label-treatment summary.
func (a *Artifacts) RenderCleanReport(w io.Writer) error {
	r := a.CleanReport
	_, err := fmt.Fprintf(w, `Label quality & treatment (§4.2, policy %s)

entries involving AS_TRANS:        %d (removed)
entries involving reserved ASNs:   %d (removed)
entries with multiple labels:      %d over %d ASes (%d kept)
sibling entries (via AS2Org):      %d (removed)
usable single-label entries:       %d
`, a.Scenario.Policy, r.TransEntries, r.ReservedEntries,
		r.MultiLabelEntries, r.MultiLabelASes, r.MultiLabelKept,
		r.SiblingEntries, r.Kept)
	return err
}

// RenderAll writes every experiment the paper reports, in order.
// minLinks is the validated-link threshold for table rows (the paper
// uses 500); values below 1 default to 100.
func (a *Artifacts) RenderAll(w io.Writer, minLinks int) error {
	hr := func() { fmt.Fprintln(w, "\n"+strings.Repeat("=", 72)+"\n") }
	fmt.Fprintf(w, "breval experiments — seed %d, %d ASes, %d links (%d visible), %d VPs\n",
		a.Scenario.Seed, len(a.World.ASNs), a.World.Graph.NumLinks(),
		len(a.InferredLinks), len(a.World.VPs))
	hr()
	if err := a.RenderCleanReport(w); err != nil {
		return err
	}
	hr()
	if err := a.RenderFigure1(w); err != nil {
		return err
	}
	hr()
	if err := a.RenderFigure2(w); err != nil {
		return err
	}
	hr()
	if err := RenderHeatmapPair(w, "Figure 3", a.Figure3()); err != nil {
		return err
	}
	for _, algo := range []string{AlgoASRank, AlgoProbLink, AlgoTopoScope, AlgoGao} {
		if _, ok := a.Results[algo]; !ok {
			continue
		}
		hr()
		if minLinks < 1 {
			minLinks = 100
		}
		tab, err := a.TableFor(algo, minLinks)
		if err != nil {
			return err
		}
		if err := RenderTable(w, tab); err != nil {
			return err
		}
	}
	if _, ok := a.Results[AlgoASRank]; ok {
		hr()
		ser, err := a.Figures4to6(AlgoASRank, "T1-TR", sampling.Config{})
		if err != nil {
			return err
		}
		if err := a.RenderSampling(w, AlgoASRank, "T1-TR", ser); err != nil {
			return err
		}
		hr()
		if err := a.RenderCaseStudy(w, AlgoASRank); err != nil {
			return err
		}
	}
	hr()
	for i, hp := range a.Figures7to9() {
		if err := RenderHeatmapPair(w, fmt.Sprintf("Figure %d", 7+i), hp); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	hr()
	if err := a.RenderHardLinks(w); err != nil {
		return err
	}
	hr()
	if err := a.RenderSourceComparison(w); err != nil {
		return err
	}
	if _, ok := a.Results[AlgoASRank]; ok {
		hr()
		if err := a.RenderReclassification(w, AlgoASRank); err != nil {
			return err
		}
	}
	hr()
	if err := a.RenderComplexRelationships(w); err != nil {
		return err
	}
	hr()
	if err := a.RenderUncertainty(w); err != nil {
		return err
	}
	hr()
	evo, err := a.RunEvolution(4)
	if err != nil {
		return err
	}
	return a.RenderEvolution(w, evo)
}
