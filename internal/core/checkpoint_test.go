package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"breval/internal/checkpoint"
	"breval/internal/resilience"
	"breval/internal/wire"
)

// checkpointScenario is a small-but-complete scenario for the
// crash/resume property tests: two algorithms keep the inference cost
// down while still exercising the per-algorithm artifacts.
func checkpointScenario(seed int64) Scenario {
	s := DefaultScenario(seed)
	s.NumASes = 600
	s.Algorithms = []string{AlgoASRank, AlgoGao}
	return s
}

// fingerprint serialises everything a run produced that resume must
// reproduce byte-identically: the path set (RIB bytes), both
// validation snapshots, the cleaning report, each inference result
// (name, clique, firm set, relationship dump) and the rendered
// experiment output.
func fingerprint(t *testing.T, art *Artifacts) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteRIB(&buf, art.Paths, 0); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "skipped %d %d\n", art.Paths.SkippedOrigins, art.Paths.SkippedVPs)
	if _, err := art.RawValidation.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := art.Validation.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "clean %+v\n", art.CleanReport)
	algos := make([]string, 0, len(art.Results))
	for name := range art.Results {
		algos = append(algos, name)
	}
	sort.Strings(algos)
	for _, name := range algos {
		res := art.Results[name]
		fmt.Fprintf(&buf, "result %s clique=%v\n", res.Name, res.Clique)
		firm := make([]string, 0, len(res.Firm))
		for l, ok := range res.Firm {
			if ok {
				firm = append(firm, l.String())
			}
		}
		sort.Strings(firm)
		fmt.Fprintf(&buf, "firm %v\n", firm)
		rels := make([]string, 0, len(res.Rels))
		for l, r := range res.Rels {
			rels = append(rels, l.String()+"="+r.String())
		}
		sort.Strings(rels)
		for _, r := range rels {
			fmt.Fprintln(&buf, r)
		}
	}
	cones := make([]string, 0, len(art.ConeSizes))
	for a, n := range art.ConeSizes {
		cones = append(cones, fmt.Sprintf("%d=%d", a, n))
	}
	sort.Strings(cones)
	fmt.Fprintf(&buf, "cones %v\n", cones)

	if _, err := art.RenderOnlyContext(context.Background(), &buf,
		[]string{"clean", "tables"}, RenderOptions{MinLinks: 20}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashResumeByteIdentical is the tentpole property test: for
// three seeds, a run that crashes after propagation and is resumed
// from its checkpoint store produces byte-identical path sets,
// validation snapshots, inference results and experiment output
// compared to an uninterrupted cold run.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full pipeline runs per seed")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cold, err := Run(checkpointScenario(seed))
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(t, cold)

			// Crashed run: an injected kill fires right after the path
			// set is durably saved. CrashExit is intercepted so the test
			// process survives; the pipeline aborts exactly as if killed
			// (modulo the in-flight goroutines a real kill would not
			// wind down).
			dir := t.TempDir()
			oldExit := resilience.CrashExit
			resilience.CrashExit = func(int) {}
			resilience.InjectAt("checkpoint.saved.paths", resilience.Fault{Kind: resilience.KindCrash})
			crashed := checkpointScenario(seed)
			crashed.CheckpointDir = dir
			_, err = Run(crashed)
			resilience.ClearFaults()
			resilience.CrashExit = oldExit
			var se *resilience.StageError
			if !errors.As(err, &se) || se.Kind != resilience.KindCrash {
				t.Fatalf("crashed run: want KindCrash abort, got %v", err)
			}

			// Resume: the path set must be reused, everything downstream
			// regenerated, and the outcome byte-identical.
			resumed := checkpointScenario(seed)
			resumed.CheckpointDir = dir
			resumed.Resume = true
			art, err := Run(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if len(art.Degraded) != 0 {
				t.Fatalf("resumed run degraded: %v", art.Degraded)
			}
			sr, ok := art.Report.Find("bgp.propagate")
			if !ok || !strings.Contains(sr.Note, "reused") {
				t.Fatalf("propagation not resumed from checkpoint: %+v", sr)
			}
			if got := fingerprint(t, art); !bytes.Equal(got, want) {
				t.Fatalf("resumed run differs from cold run (%d vs %d bytes)", len(got), len(want))
			}

			// Second resume: now everything is cached; still identical,
			// and the inference stages are also reused.
			again := checkpointScenario(seed)
			again.CheckpointDir = dir
			again.Resume = true
			art2, err := Run(again)
			if err != nil {
				t.Fatal(err)
			}
			for _, stage := range []string{"bgp.propagate", "validation.extract", "validation.clean", "infer.ASRank", "infer.Gao"} {
				sr, ok := art2.Report.Find(stage)
				if !ok || !strings.Contains(sr.Note, "reused") {
					t.Errorf("stage %s not reused on full resume: %+v", stage, sr)
				}
			}
			if got := fingerprint(t, art2); !bytes.Equal(got, want) {
				t.Fatal("fully-resumed run differs from cold run")
			}
			stats, ok := art2.Report.Checkpoint.(checkpoint.Stats)
			if !ok {
				t.Fatalf("report carries no checkpoint stats: %T", art2.Report.Checkpoint)
			}
			if stats.Hits < 5 || stats.Misses != 0 || stats.Quarantines != 0 {
				t.Errorf("full-resume stats: %+v", stats)
			}
		})
	}
}

// TestCorruptedArtifactsQuarantinedAndRegenerated: corrupting any
// stored artifact — truncation or byte flip — must yield a quarantine
// plus regeneration with a successful, byte-identical run; never an
// error, never silently-wrong output.
func TestCorruptedArtifactsQuarantinedAndRegenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple pipeline runs")
	}
	seed := int64(4)
	dir := t.TempDir()
	warm := checkpointScenario(seed)
	warm.CheckpointDir = dir
	cold, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, cold)

	artifacts := []string{"paths", "validation.raw", "validation.clean", "rel.asrank", "rel.gao"}
	for i, name := range artifacts {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				b = b[:len(b)*2/3] // truncate
			} else {
				b[len(b)/2] ^= 0x20 // flip a payload byte
			}
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}

			resumed := checkpointScenario(seed)
			resumed.CheckpointDir = dir
			resumed.Resume = true
			art, err := Run(resumed)
			if err != nil {
				t.Fatalf("corrupted %s broke the run: %v", name, err)
			}
			if len(art.Report.Failed()) != 0 || len(art.Degraded) != 0 {
				t.Fatalf("corrupted %s failed stages: %v / %v", name, art.Report.Failed(), art.Degraded)
			}
			sr, ok := art.Report.Find("checkpoint." + name)
			if !ok || sr.Status != resilience.StatusQuarantined {
				t.Fatalf("no quarantine entry for %s: %+v (found %v)", name, sr, ok)
			}
			stats, _ := art.Report.Checkpoint.(checkpoint.Stats)
			if stats.Quarantines != 1 || stats.Regenerations < 1 {
				t.Errorf("stats after corrupting %s: %+v", name, stats)
			}
			if got := fingerprint(t, art); !bytes.Equal(got, want) {
				t.Fatalf("run with corrupted %s differs from cold run", name)
			}
		})
	}
}

// TestCheckpointKeyChangesInvalidate: a scenario-knob change must not
// reuse artifacts produced under the old configuration.
func TestCheckpointKeyChangesInvalidate(t *testing.T) {
	if testing.Short() {
		t.Skip("two pipeline runs")
	}
	dir := t.TempDir()
	first := checkpointScenario(5)
	first.CheckpointDir = dir
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}

	second := checkpointScenario(5)
	second.SpuriousReserved += 7 // any key knob
	second.CheckpointDir = dir
	second.Resume = true
	art, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := art.Report.Checkpoint.(checkpoint.Stats)
	if stats.Hits != 0 {
		t.Fatalf("stale artifacts reused across a key change: %+v", stats)
	}
	if stats.Invalidations < 1 {
		t.Fatalf("key change not recorded as invalidation: %+v", stats)
	}
}

// TestLockedStoreDegradesToUncachedRun: when another live process
// owns the checkpoint directory, the pipeline must not fail — it
// degrades to an uncached run, records the skip in the ledger, and
// still produces the full artifact set.
func TestLockedStoreDegradesToUncachedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	dir := t.TempDir()
	// Any key works: the owner lock is taken before key validation,
	// so the second opener is refused regardless of what it asks for.
	owner, err := checkpoint.Open(context.Background(), dir, checkpoint.Key{
		Schema: checkpoint.SchemaVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()

	locked := checkpointScenario(1)
	locked.CheckpointDir = dir
	art, err := Run(locked)
	if err != nil {
		t.Fatalf("run against a locked store failed instead of degrading: %v", err)
	}
	if art.Paths == nil || art.Validation == nil || len(art.Results) != 2 {
		t.Fatal("degraded run is missing artifacts")
	}
	found := false
	for _, sr := range art.Report.Stages {
		if sr.Stage == "checkpoint.open" && sr.Status == resilience.StatusSkipped {
			found = true
		}
	}
	if !found {
		t.Fatalf("no checkpoint.open skip in the ledger: %+v", art.Report.Stages)
	}
	if art.Report.Failed() != nil {
		t.Fatalf("degraded run reports failures: %+v", art.Report.Failed())
	}
}
