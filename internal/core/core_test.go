package core

import (
	"math"
	"sync"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/casestudy"
	"breval/internal/sampling"
	"breval/internal/validation"
)

// shared mid-size artifacts: built once, used by all shape tests.
var (
	artOnce sync.Once
	artMid  *Artifacts
	artErr  error
)

func midArtifacts(t *testing.T) *Artifacts {
	t.Helper()
	artOnce.Do(func() {
		s := DefaultScenario(1)
		s.NumASes = 2500
		artMid, artErr = Run(s)
	})
	if artErr != nil {
		t.Fatalf("Run: %v", artErr)
	}
	return artMid
}

func TestRunProducesAllArtifacts(t *testing.T) {
	art := midArtifacts(t)
	if art.World == nil || art.Paths == nil || art.Features == nil ||
		art.RawValidation == nil || art.Validation == nil ||
		art.RegionCls == nil || art.TopoCls == nil || art.ConeSizes == nil {
		t.Fatal("missing artifacts")
	}
	if len(art.Results) != 4 {
		t.Fatalf("got %d results", len(art.Results))
	}
	if art.Validation.Len() == 0 || art.InferredLinkCount() == 0 {
		t.Fatal("empty data")
	}
	if art.Validation.Len() >= art.InferredLinkCount() {
		t.Error("validation must cover a strict subset of inferred links")
	}
}

func TestCleaningReportMatchesScenario(t *testing.T) {
	art := midArtifacts(t)
	rep := art.CleanReport
	s := art.Scenario
	// Injected dirt may collide on identical links, so counts are
	// bounded by the injection numbers and close to them.
	if rep.TransEntries == 0 || rep.TransEntries > s.SpuriousTrans {
		t.Errorf("TransEntries = %d (injected %d)", rep.TransEntries, s.SpuriousTrans)
	}
	if rep.ReservedEntries == 0 || rep.ReservedEntries > s.SpuriousReserved {
		t.Errorf("ReservedEntries = %d (injected %d)", rep.ReservedEntries, s.SpuriousReserved)
	}
	if rep.MultiLabelEntries == 0 {
		t.Error("no multi-label entries despite hybrid links")
	}
	if rep.Kept != art.Validation.Len() {
		t.Errorf("Kept = %d, snapshot = %d", rep.Kept, art.Validation.Len())
	}
	// Under Ignore, no multi-label entry is kept.
	if rep.MultiLabelKept != 0 {
		t.Errorf("MultiLabelKept = %d under Ignore", rep.MultiLabelKept)
	}
}

func TestFigure1RegionalImbalanceShape(t *testing.T) {
	art := midArtifacts(t)
	stats := art.Figure1()
	if len(stats) < 8 {
		t.Fatalf("only %d regional classes", len(stats))
	}
	byClass := make(map[string]int)
	intraShare := 0.0
	for i, st := range stats {
		byClass[st.Class] = i
		switch st.Class {
		case "AF°", "AP°", "AR°", "L°", "R°":
			intraShare += st.Share
		}
	}
	// ~79% of inferred links are region-internal in the paper.
	if intraShare < 0.65 {
		t.Errorf("region-internal share = %.2f, want >= 0.65", intraShare)
	}
	// The headline claim: AR° and L° have similar shares but AR° is
	// well covered while L° has (near) zero coverage.
	arIdx, okAR := byClass["AR°"]
	lIdx, okL := byClass["L°"]
	if !okAR || !okL {
		t.Fatalf("missing AR°/L° classes: %v", byClass)
	}
	ar, l := stats[arIdx], stats[lIdx]
	if l.Coverage >= 0.01 {
		t.Errorf("L° coverage = %.3f, want < 0.01", l.Coverage)
	}
	if ar.Coverage < 0.15 {
		t.Errorf("AR° coverage = %.3f, want >= 0.15", ar.Coverage)
	}
	if r := ar.Share / l.Share; r < 0.5 || r > 3 {
		t.Errorf("AR°/L° share ratio = %.2f; the classes should be comparable", r)
	}
	// R° is the biggest class.
	if stats[0].Class != "R°" {
		t.Errorf("largest class = %s, want R°", stats[0].Class)
	}
}

func TestFigure2TopologicalImbalanceShape(t *testing.T) {
	art := midArtifacts(t)
	stats := art.Figure2()
	cov := make(map[string]float64)
	share := make(map[string]float64)
	for _, st := range stats {
		cov[st.Class] = st.Coverage
		share[st.Class] = st.Share
	}
	// S-TR and TR° are the two majority classes...
	if share["S-TR"] < share["TR°"] || share["TR°"] < share["T1-TR"] {
		t.Errorf("share order wrong: %v", share)
	}
	if share["S-TR"]+share["TR°"] < 0.6 {
		t.Errorf("majority classes hold %.2f, want >= 0.6", share["S-TR"]+share["TR°"])
	}
	// ...with far lower coverage than the Tier-1-incident classes.
	if cov["T1-TR"] < 3*cov["TR°"] {
		t.Errorf("T1-TR coverage %.2f not >> TR° coverage %.2f", cov["T1-TR"], cov["TR°"])
	}
	if cov["S-T1"] < 3*cov["S-TR"] {
		t.Errorf("S-T1 coverage %.2f not >> S-TR coverage %.2f", cov["S-T1"], cov["S-TR"])
	}
	// S° is near-uncovered (0.00 in the paper). At this scale the
	// class holds only a few dozen links, so tolerate granularity
	// noise from customer-less transit publishers classified as stubs.
	if cov["S°"] > 0.2 {
		t.Errorf("S° coverage = %.2f, want ~0", cov["S°"])
	}
}

func TestFigure3HeatmapShape(t *testing.T) {
	art := midArtifacts(t)
	hp := art.Figure3()
	if hp.Inferred.Total == 0 || hp.Validated.Total == 0 {
		t.Fatal("empty heatmaps")
	}
	if hp.Validated.Total >= hp.Inferred.Total {
		t.Error("validated TR° links must be a subset")
	}
	// Mass must be normalised.
	sum := 0.0
	for _, row := range hp.Inferred.Frac {
		for _, v := range row {
			sum += v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("inferred mass = %v", sum)
	}
}

func TestTablesShapeAcrossAlgorithms(t *testing.T) {
	art := midArtifacts(t)
	for _, algo := range []string{AlgoASRank, AlgoProbLink, AlgoTopoScope} {
		tab, err := art.TableFor(algo, 100)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Total.LCP == 0 || tab.Total.LCC == 0 {
			t.Fatalf("%s: empty totals", algo)
		}
		// Paper: all three algorithms near-perfect for P2C.
		if tab.Total.TPRC < 0.80 || tab.Total.PPVC < 0.85 {
			t.Errorf("%s: P2C correctness too low: PPVc %.3f TPRc %.3f",
				algo, tab.Total.PPVC, tab.Total.TPRC)
		}
		rows := make(map[string]TableRow)
		for _, r := range tab.Rows {
			rows[r.Class] = r
		}
		// The T1-TR correctness drop (precision or recall; MCC
		// captures both failure modes).
		t1tr, ok := rows["T1-TR"]
		if !ok {
			t.Fatalf("%s: no T1-TR row (rows: %v)", algo, tab.Rows)
		}
		if t1tr.Row.MCC >= tab.Total.MCC-0.01 {
			t.Errorf("%s: T1-TR MCC %.3f not below Total %.3f",
				algo, t1tr.Row.MCC, tab.Total.MCC)
		}
		// The S-T1 collapse: recall ~0 for P2P.
		if st1, ok := rows["S-T1"]; ok && st1.Row.TPRP > 0.2 {
			t.Errorf("%s: S-T1 TPR_P = %.3f, want ~0", algo, st1.Row.TPRP)
		}
	}
}

func TestFollowUpAlgorithmsDegradeT1TR(t *testing.T) {
	art := midArtifacts(t)
	mcc := map[string]float64{}
	for _, algo := range []string{AlgoASRank, AlgoProbLink, AlgoTopoScope} {
		tab, err := art.TableFor(algo, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r.Class == "T1-TR" {
				mcc[algo] = r.Row.MCC
			}
		}
	}
	// The paper's §6 observation: the correctness gap for T1-TR grows
	// from ASRank to ProbLink.
	if mcc[AlgoProbLink] >= mcc[AlgoASRank] {
		t.Errorf("ProbLink T1-TR MCC %.3f not below ASRank %.3f",
			mcc[AlgoProbLink], mcc[AlgoASRank])
	}
}

func TestCaseStudyShape(t *testing.T) {
	art := midArtifacts(t)
	rep, err := art.CaseStudy(AlgoASRank)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WrongP2P == 0 || rep.FocusCount == 0 {
		t.Fatalf("no target links: %+v", rep)
	}
	// The focus AS holds a large share of the wrong links (AS714
	// held roughly half in the paper).
	if frac := float64(rep.FocusCount) / float64(rep.WrongP2P); frac < 0.3 {
		t.Errorf("focus share = %.2f, want >= 0.3", frac)
	}
	for _, tl := range rep.Targets {
		if tl.HasCliqueTriplet {
			t.Errorf("target %v has a clique triplet", tl.Link)
		}
	}
	// Partial transit must be the dominant cause.
	if rep.ByCause[casestudy.CausePartialTransit] < rep.FocusCount/2 {
		t.Errorf("partial-transit causes = %d of %d", rep.ByCause[casestudy.CausePartialTransit], rep.FocusCount)
	}
}

func TestSamplingNoCorrelation(t *testing.T) {
	art := midArtifacts(t)
	ser, err := art.Figures4to6(AlgoASRank, "T1-TR", sampling.Config{Reps: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Eligible < 50 {
		t.Skipf("only %d eligible links", ser.Eligible)
	}
	for name, med := range map[string][]float64{
		"PPVP": ser.PPVP.Median, "TPRP": ser.TPRP.Median, "MCC": ser.MCC.Median,
	} {
		if slope := sampling.TrendSlope(ser.Pcts, med); math.Abs(slope) > 0.002 {
			t.Errorf("%s slope = %.5f; Appendix A expects no trend", name, slope)
		}
	}
}

func TestAmbiguousPolicyChangesCounts(t *testing.T) {
	art := midArtifacts(t)
	ignore, _ := validation.Clean(art.RawValidation, art.World.Orgs, validation.Ignore)
	p2pFirst, _ := validation.Clean(art.RawValidation, art.World.Orgs, validation.P2PIfFirst)
	alwaysC, _ := validation.Clean(art.RawValidation, art.World.Orgs, validation.AlwaysP2C)
	// The §4.2 observation: the policy changes the P2P/P2C counts.
	if p2pFirst.Len() <= ignore.Len() {
		t.Errorf("P2PIfFirst kept %d <= Ignore %d", p2pFirst.Len(), ignore.Len())
	}
	if alwaysC.CountByType(asgraph.P2C) < p2pFirst.CountByType(asgraph.P2C) {
		t.Errorf("AlwaysP2C produced fewer P2C labels (%d) than P2PIfFirst (%d)",
			alwaysC.CountByType(asgraph.P2C), p2pFirst.CountByType(asgraph.P2C))
	}
}

func TestRunDeterministic(t *testing.T) {
	s := DefaultScenario(5)
	s.NumASes = 600
	s.Algorithms = []string{AlgoASRank}
	a1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Validation.Len() != a2.Validation.Len() {
		t.Fatal("validation differs between runs")
	}
	r1, r2 := a1.Results[AlgoASRank], a2.Results[AlgoASRank]
	if r1.Len() != r2.Len() {
		t.Fatal("result sizes differ")
	}
	for l, rel := range r1.Rels {
		if r2.Rels[l] != rel {
			t.Fatalf("link %v differs", l)
		}
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	s := DefaultScenario(1)
	s.NumASes = 600
	s.Algorithms = []string{"Oracle"}
	if _, err := Run(s); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
