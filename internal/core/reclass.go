package core

import (
	"fmt"
	"io"

	"breval/internal/bias"
	"breval/internal/casestudy"
	"breval/internal/metrics"
	"breval/internal/textplot"
)

// ReclassResult contrasts an algorithm's T1-TR row before and after
// the looking-glass reclassification of §6.1's target links — the
// "substantial improvement for certain link classes" §6 says is still
// available.
type ReclassResult struct {
	Algorithm     string
	Before, After metrics.Row
	// Reclassified is the number of links the pass flipped.
	Reclassified int
}

// LookingGlassReclassification runs the case study for algo, applies
// casestudy.Reclassify and re-evaluates the T1-TR class.
func (a *Artifacts) LookingGlassReclassification(algo string) (ReclassResult, error) {
	res, ok := a.Results[algo]
	if !ok {
		return ReclassResult{}, fmt.Errorf("core: no result for algorithm %q", algo)
	}
	if a.TopoCls == nil {
		return ReclassResult{}, errNoTopoCls
	}
	rep, err := a.CaseStudy(algo)
	if err != nil {
		return ReclassResult{}, err
	}
	fixed := casestudy.Reclassify(res, rep)

	filter := bias.FilterForClass(a.TopoCls, "T1-TR")
	out := ReclassResult{
		Algorithm: algo,
		Before:    metrics.Evaluate(res, a.Validation, filter),
		After:     metrics.Evaluate(fixed, a.Validation, filter),
	}
	for l, rel := range fixed.Rels {
		if old := res.Rels[l]; old != rel {
			out.Reclassified++
		}
	}
	return out, nil
}

// RenderReclassification writes the before/after comparison.
func (a *Artifacts) RenderReclassification(w io.Writer, algo string) error {
	r, err := a.LookingGlassReclassification(algo)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"Looking-glass reclassification (the §6 improvement headroom) — %s, %d links flipped\n\n",
		r.Algorithm, r.Reclassified); err != nil {
		return err
	}
	row := func(name string, m metrics.Row) []string {
		return []string{name,
			textplot.Fmt3(m.PPVP), textplot.Fmt3(m.TPRP), fmt.Sprintf("%d", m.LCP),
			textplot.Fmt3(m.PPVC), textplot.Fmt3(m.TPRC), fmt.Sprintf("%d", m.LCC),
			textplot.Fmt3(m.MCC)}
	}
	_, err = io.WriteString(w, textplot.Table(
		[]string{"T1-TR", "PPV_P", "TPR_P", "LC_P", "PPV_C", "TPR_C", "LC_C", "MCC"},
		[][]string{row("before", r.Before), row("after", r.After)}))
	return err
}
