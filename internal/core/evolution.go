package core

import (
	"context"
	"fmt"
	"io"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/communities"
	"breval/internal/inference/features"
	"breval/internal/textplot"
	"breval/internal/topogen"
	"breval/internal/validation"
)

// EvolutionStep summarises one monthly snapshot of the §7
// over-sampling study.
type EvolutionStep struct {
	// Month is the step index (0 = the base snapshot).
	Month int
	// Changes is the number of graph mutations applied before this
	// snapshot.
	Changes int
	// Visible and Validated are the per-snapshot link counts.
	Visible   int
	Validated int
	// NewValidated counts validated (link, label) pairs never seen in
	// an earlier snapshot; CumulativePairs is the running union.
	NewValidated    int
	CumulativePairs int
	// ChangedLabels counts re-observed links whose label differs from
	// the previous snapshot — the relationship-stability signal §7
	// says operators would need to quantify for safe re-sampling.
	ChangedLabels int
}

// EvolutionResult is the full study outcome.
type EvolutionResult struct {
	Steps []EvolutionStep
	// VisibilityOverTime maps each ever-seen link to the number of
	// snapshots it appeared in — Appendix C's feature 1.
	VisibilityOverTime map[asgraph.Link]int
	// Months is the number of snapshots taken (including the base).
	Months int
}

// OversamplingGain returns the ratio between the cumulative validated
// pair count and the base snapshot's — how much extra validation data
// the ecosystem's churn yields over the period.
func (r EvolutionResult) OversamplingGain() float64 {
	if len(r.Steps) == 0 || r.Steps[0].Validated == 0 {
		return 0
	}
	return float64(r.Steps[len(r.Steps)-1].CumulativePairs) / float64(r.Steps[0].Validated)
}

// RunEvolution replays the §7 thought experiment: evolve the world
// month by month, re-extract community-based validation data from
// each monthly RIB snapshot, and track how the cumulative validation
// set grows and how stable labels are. The artifacts' world is cloned
// first; the receiver is not mutated.
func (a *Artifacts) RunEvolution(months int) (EvolutionResult, error) {
	return a.RunEvolutionContext(context.Background(), months)
}

// RunEvolutionContext is RunEvolution with cancellation: the context
// is checked between snapshots and threaded into each monthly BGP
// propagation, so a deadline or cancel aborts the study promptly with
// the steps collected so far.
func (a *Artifacts) RunEvolutionContext(ctx context.Context, months int) (EvolutionResult, error) {
	if months < 1 {
		return EvolutionResult{}, fmt.Errorf("core: need at least 1 month, got %d", months)
	}
	// Clone the world's graph so evolution cannot disturb the base
	// artifacts.
	w := *a.World
	w.Graph = a.World.Graph.Clone()

	res := EvolutionResult{
		VisibilityOverTime: make(map[asgraph.Link]int),
		Months:             months + 1,
	}

	type pair struct {
		l  asgraph.Link
		lb validation.Label
	}
	seenPairs := make(map[pair]bool)
	prevLabels := make(map[asgraph.Link]validation.Label)

	snapshot := func(month, changes int) error {
		// Stream each propagation block into the feature collector and
		// the community extractor simultaneously: both consume paths
		// one at a time, so the monthly raw path universe never exists
		// as a whole — only the cleaned arena and the growing snapshot
		// do. Block order equals the monolithic merge order, so the
		// snapshot and features are byte-identical to the old
		// PropagateContext + Compute + Extract sequence.
		sim := bgp.NewSimulator(w.Graph)
		collector := features.NewStreamCollector()
		ex := communities.NewExtractor(w.Graph, w.Publishers, w.Strippers, nil)
		raw := validation.NewSnapshot()
		if _, _, err := sim.PropagateBlocks(ctx, w.ASNs, w.VPs, func(blk *bgp.PathSet) error {
			ex.ExtractInto(blk, raw)
			return collector.Feed(ctx, blk)
		}); err != nil {
			return fmt.Errorf("core: evolution month %d: %w", month, err)
		}
		fs, err := collector.Finish(ctx)
		if err != nil {
			return fmt.Errorf("core: evolution month %d: %w", month, err)
		}
		clean, _ := validation.Clean(raw, w.Orgs, a.Scenario.Policy)

		step := EvolutionStep{
			Month:     month,
			Changes:   changes,
			Visible:   fs.NumLinks(),
			Validated: clean.Len(),
		}
		// VisibilityOverTime spans snapshots with distinct dense-ID
		// spaces, so the cross-snapshot accumulator stays link-keyed;
		// each snapshot contributes its links in dense-ID order.
		tab := fs.Intern
		for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
			res.VisibilityOverTime[tab.Link(lid)]++
		}
		curLabels := make(map[asgraph.Link]validation.Label, clean.Len())
		for _, l := range clean.Links() {
			lb, ok := clean.Label(l)
			if !ok {
				continue
			}
			curLabels[l] = lb
			p := pair{l, lb}
			if !seenPairs[p] {
				seenPairs[p] = true
				step.NewValidated++
			}
			if old, ok := prevLabels[l]; ok && old != lb {
				step.ChangedLabels++
			}
		}
		prevLabels = curLabels
		step.CumulativePairs = len(seenPairs)
		res.Steps = append(res.Steps, step)
		return nil
	}

	if err := snapshot(0, 0); err != nil {
		return res, err
	}
	for m := 1; m <= months; m++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		cs, err := topogen.Evolve(&w, topogen.DefaultEvolveConfig(a.Scenario.Seed+int64(m)*7919))
		if err != nil {
			return res, fmt.Errorf("core: evolution month %d: %w", m, err)
		}
		if err := snapshot(m, cs.Total()); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RenderEvolution writes the §7 over-sampling study.
func (a *Artifacts) RenderEvolution(w io.Writer, res EvolutionResult) error {
	if _, err := fmt.Fprintf(w, "Over-sampling through ecosystem change (§7) — %d monthly snapshots\n\n", res.Months); err != nil {
		return err
	}
	rows := make([][]string, 0, len(res.Steps))
	for _, st := range res.Steps {
		rows = append(rows, []string{
			fmt.Sprintf("%d", st.Month),
			fmt.Sprintf("%d", st.Changes),
			fmt.Sprintf("%d", st.Visible),
			fmt.Sprintf("%d", st.Validated),
			fmt.Sprintf("%d", st.NewValidated),
			fmt.Sprintf("%d", st.CumulativePairs),
			fmt.Sprintf("%d", st.ChangedLabels),
		})
	}
	if _, err := io.WriteString(w, textplot.Table(
		[]string{"month", "changes", "visible", "validated", "new_pairs", "cumulative", "label_changes"},
		rows)); err != nil {
		return err
	}
	// Appendix C feature 1 distribution: how many links were seen in
	// every snapshot vs intermittently.
	always, sometimes := 0, 0
	for _, n := range res.VisibilityOverTime {
		if n == res.Months {
			always++
		} else {
			sometimes++
		}
	}
	_, err := fmt.Fprintf(w, `
cumulative validation grew %.2fx over the period
visibility over time (Appendix C, feature 1): %d links seen in every
snapshot, %d seen intermittently
`, res.OversamplingGain(), always, sometimes)
	return err
}
