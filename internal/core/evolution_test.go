package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEvolution(t *testing.T) {
	s := DefaultScenario(9)
	s.NumASes = 900
	s.Algorithms = []string{AlgoASRank}
	art, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	baseLinks := art.World.Graph.NumLinks()

	res, err := art.RunEvolution(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("got %d steps", len(res.Steps))
	}
	if res.Steps[0].Changes != 0 || res.Steps[1].Changes == 0 {
		t.Errorf("change counts: %+v", res.Steps[:2])
	}
	// The base artifacts must be untouched.
	if art.World.Graph.NumLinks() != baseLinks {
		t.Error("evolution mutated the base world")
	}
	// The §7 claim: churn yields new validation pairs every month, so
	// the cumulative set outgrows any single snapshot.
	last := res.Steps[len(res.Steps)-1]
	if last.CumulativePairs <= res.Steps[0].Validated {
		t.Errorf("no over-sampling gain: cumulative %d vs base %d",
			last.CumulativePairs, res.Steps[0].Validated)
	}
	if res.OversamplingGain() <= 1.0 {
		t.Errorf("gain = %.3f, want > 1", res.OversamplingGain())
	}
	// Some links churn in and out of visibility.
	if len(res.VisibilityOverTime) == 0 {
		t.Fatal("no visibility data")
	}
	sometimes := 0
	for _, n := range res.VisibilityOverTime {
		if n < res.Months {
			sometimes++
		}
	}
	if sometimes == 0 {
		t.Error("every link visible in every snapshot despite churn")
	}
	// Labels change over time (the stability signal).
	changed := 0
	for _, st := range res.Steps[1:] {
		changed += st.ChangedLabels
	}
	if changed == 0 {
		t.Error("no label ever changed despite relationship flips")
	}

	var buf bytes.Buffer
	if err := art.RenderEvolution(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"month", "cumulative", "grew", "feature 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("evolution report missing %q", want)
		}
	}
}

func TestRunEvolutionRejectsZeroMonths(t *testing.T) {
	art := midArtifacts(t)
	if _, err := art.RunEvolution(0); err == nil {
		t.Error("zero months accepted")
	}
}
