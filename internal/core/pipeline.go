// Package core orchestrates the full validation-bias study of Prehn &
// Feldmann (IMC'21) over a synthetic Internet: world generation, BGP
// route propagation, community-based validation extraction, §4.2 label
// cleaning, relationship inference with four algorithms, and the
// experiment drivers that regenerate every table and figure of the
// paper (see experiments.go).
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/bias"
	"breval/internal/checkpoint"
	"breval/internal/communities"
	"breval/internal/govern"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/gao"
	"breval/internal/inference/problink"
	"breval/internal/inference/toposcope"
	"breval/internal/ingest"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/rpsl"
	"breval/internal/topogen"
	"breval/internal/validation"
)

// Algorithm names used as map keys throughout.
const (
	AlgoASRank    = "ASRank"
	AlgoProbLink  = "ProbLink"
	AlgoTopoScope = "TopoScope"
	AlgoGao       = "Gao"
)

// Scenario configures one end-to-end run.
type Scenario struct {
	// Seed drives all randomness; NumASes the world size (0 selects
	// the calibrated default world).
	Seed    int64
	NumASes int
	// Policy is the ambiguous-label treatment (§4.2); the paper
	// argues for Ignore.
	Policy validation.AmbiguousPolicy
	// StaleDictionaries is the number of publishers whose community
	// documentation diverged from their router configs.
	StaleDictionaries int
	// SpuriousTrans/SpuriousReserved are the numbers of dirty
	// validation entries injected involving AS_TRANS and reserved
	// ASNs (§4.2 finds 15 and 112).
	SpuriousTrans    int
	SpuriousReserved int
	// InaccurateT1Labels is the number of true-P2P Tier-1/transit
	// links whose community-derived validation label is flipped to
	// P2C — the §6.1 "inaccurate validation data" case (1 in the
	// paper).
	InaccurateT1Labels int
	// IncludeRPSL additionally merges relationships extracted from
	// the synthetic IRR (Luckie et al.'s source ii) into the raw
	// validation snapshot. The paper's recent-works critique is about
	// relying on communities alone, so the default is off; the
	// source-comparison ablation flips it.
	IncludeRPSL bool
	// Algorithms restricts which classifiers run (nil = all four).
	Algorithms []string
	// TopoConfig overrides the generator configuration; nil derives
	// it from Seed/NumASes.
	TopoConfig *topogen.Config
	// StageTimeout bounds each pipeline stage attempt (0 = no per-stage
	// deadline); StageRetries is how many times a failed retryable
	// stage is re-attempted (panics and cancellations never retry).
	StageTimeout time.Duration
	StageRetries int
	// CheckpointDir, when set, opens a durable artifact store there
	// (see internal/checkpoint): the propagated path set, validation
	// snapshots and per-algorithm inference results are saved after
	// their stages complete, so a later run can resume.
	CheckpointDir string
	// Resume additionally loads artifacts from CheckpointDir instead
	// of recomputing, when they verify against the run's configuration
	// key and the regenerated world's digest. Missing, stale or
	// corrupt artifacts are regenerated (corrupt ones after being
	// quarantined); resume never fails a run.
	Resume bool
	// Govern configures the resource governor (see internal/govern):
	// memory watermarks driving adaptive worker backpressure and
	// load-shed, plus the heartbeat watchdog. The zero value disables
	// governance entirely; outputs are bit-identical either way.
	Govern govern.Config
	// RIBIn lists MRT RIB dump files (plain or gzip-wrapped) to ingest
	// as the path source instead of simulating propagation — see
	// internal/ingest and docs/ingestion.md. The synthetic world is
	// still generated: ingestion replaces only the propagation stage.
	RIBIn []string
	// RIBDigest optionally pins the expected content digest of RIBIn
	// (ingest.DigestFiles): the run aborts if the files on disk no
	// longer match. Empty means "computed at run start". Callers that
	// derive CheckpointKey themselves (the server's result cache) must
	// resolve the digest first or ingest runs would alias.
	RIBDigest string
	// IngestMaxBadFrac is the ingest error budget: the fraction of
	// records allowed to be quarantined before the run degrades to
	// partial. IngestQuarantineFile, when set, receives the quarantine
	// ledger (JSON lines).
	IngestMaxBadFrac     float64
	IngestQuarantineFile string
	// IngestFileWorkers is how many RIB dump files are read and parsed
	// concurrently (0 or 1 keeps the single-goroutine reader). Purely
	// operational — the parallel reader's deterministic merge keeps
	// every counter, ledger line and downstream byte identical — so it
	// deliberately stays out of the checkpoint key.
	IngestFileWorkers int
}

// DefaultScenario returns the calibrated default run.
func DefaultScenario(seed int64) Scenario {
	return Scenario{
		Seed:               seed,
		NumASes:            8000,
		Policy:             validation.Ignore,
		StaleDictionaries:  4,
		SpuriousTrans:      15,
		SpuriousReserved:   112,
		InaccurateT1Labels: 1,
	}
}

// Artifacts is everything a run produces; the experiment drivers and
// examples consume it.
type Artifacts struct {
	Scenario Scenario
	World    *topogen.World
	Paths    *bgp.PathSet
	Features *features.Set

	// RawValidation is the uncleaned community-extracted snapshot;
	// Validation the §4.2-cleaned one; CleanReport what cleaning did.
	// RPSL is the IRR-derived snapshot (source ii), populated whether
	// or not the scenario merges it, so source comparisons are cheap.
	RawValidation *validation.Snapshot
	Validation    *validation.Snapshot
	CleanReport   validation.CleanReport
	RPSL          *validation.Snapshot

	// Results holds one inference per algorithm name.
	Results map[string]*inference.Result

	// RegionCls and TopoCls are the §5 link classifiers; ConeSizes
	// the CAIDA-style customer cones derived from the ASRank
	// inference (used for stub/transit and the Fig. 7/8 heatmaps).
	RegionCls *bias.RegionClassifier
	TopoCls   *bias.TopoClassifier
	ConeSizes map[asn.ASN]int

	// Ingest is the real-data ingestion report: quarantine counts per
	// error kind, per-file outcomes, and the inputs' bad fraction. Nil
	// for simulator runs.
	Ingest *ingest.Report

	// Report records per-stage outcomes (status, attempts, duration,
	// failure kind). It is populated on every return, including fatal
	// ones, so callers can see which stage broke a partial run.
	Report *resilience.RunReport

	// Degraded lists non-fatal stages that failed; the corresponding
	// artifacts (an algorithm's result, the RPSL snapshot, the cone
	// classifier) are missing and downstream consumers degrade.
	Degraded []string
}

// InferredLinkCount returns the size of the observed link universe
// after path cleaning (0 before the features stage ran).
func (a *Artifacts) InferredLinkCount() int {
	if a.Features == nil {
		return 0
	}
	return a.Features.NumLinks()
}

// LinkObserved reports whether l is part of the observed link
// universe.
func (a *Artifacts) LinkObserved(l asgraph.Link) bool {
	if a.Features == nil {
		return false
	}
	_, ok := a.Features.Intern.LinkID(l)
	return ok
}

// ForEachInferredLink calls fn for every observed link in ascending
// canonical order (the dense link-ID order), so iteration is
// deterministic without sorting.
func (a *Artifacts) ForEachInferredLink(fn func(asgraph.Link)) {
	if a.Features == nil {
		return
	}
	tab := a.Features.Intern
	for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
		fn(tab.Link(lid))
	}
}

// Run executes the scenario without external cancellation. It is the
// compatibility entry point for benchmarks, examples and simple tools;
// pipelines that need deadlines or partial-failure reports use
// RunContext.
func Run(s Scenario) (*Artifacts, error) {
	return RunContext(context.Background(), s)
}

// RunContext executes the scenario as a sequence of isolated stages on
// a resilience.Runner. Each stage honours ctx and the scenario's
// StageTimeout/StageRetries policy; a panic anywhere inside a stage is
// recovered into a *resilience.StageError instead of killing the
// caller.
//
// Fatal stages (world generation, propagation, feature computation,
// validation extraction and cleaning) abort the run: RunContext then
// returns the error together with partial Artifacts whose Report names
// the failed stage. Non-fatal stages (the IRR snapshot, each inference
// algorithm, cone building) degrade instead: the run continues with
// the corresponding artifact missing and the stage listed in
// Artifacts.Degraded. Only if every inference algorithm fails does the
// run abort, since no experiment can render without at least one
// result.
func RunContext(ctx context.Context, s Scenario) (*Artifacts, error) {
	s, cfg := resolveTopo(s)

	runner := resilience.NewRunner()
	pol := resilience.Policy{Timeout: s.StageTimeout, Retries: s.StageRetries}
	art := &Artifacts{Scenario: s}

	// Resource governance: when configured, a governor polls the heap
	// against the scenario's watermarks and supervises worker
	// heartbeats. Crossing the hard watermark records a StatusShed
	// ledger entry — the run completes in single-worker mode instead
	// of dying on OOM — which cmd/breval maps to exit code 8.
	var gov *govern.Governor
	if s.Govern.Enabled() {
		gov = govern.New(s.Govern)
		gov.OnShed(func() {
			runner.Record(resilience.StageReport{
				Stage:  "govern.shed",
				Status: resilience.StatusShed,
				Note:   "hard memory watermark crossed: load shed to single-worker mode",
			})
		})
		gov.Start(ctx)
		ctx = govern.Into(ctx, gov)
	}

	// Real-data runs resolve their input identity before anything
	// else: the content digest feeds the checkpoint key, so a swapped
	// or edited dump lands in a different store instead of resuming
	// stale artifacts, and a pinned digest that no longer matches the
	// files on disk is detected here, not discovered mid-analysis.
	if len(s.RIBIn) > 0 {
		d, derr := resilience.Value(ctx, runner, "ingest.digest", pol,
			func(ctx context.Context) (string, error) {
				return ingest.DigestFiles(s.RIBIn)
			})
		if derr != nil {
			return art, fmt.Errorf("core: digest rib input: %w", derr)
		}
		if s.RIBDigest != "" && s.RIBDigest != d {
			return art, fmt.Errorf("core: rib input changed: files digest to %s, pinned %s", d, s.RIBDigest)
		}
		s.RIBDigest = d
		art.Scenario = s
	}

	// Checkpointing is an accelerator, never a dependency: a store
	// that cannot open (including one another live process holds the
	// owner lock on) degrades to a plain (uncached) run.
	var store *checkpoint.Store
	resume := false
	if s.CheckpointDir != "" {
		st, serr := checkpoint.Open(ctx, s.CheckpointDir, checkpointKey(s, cfg))
		if serr != nil {
			runner.Skip("checkpoint.open", serr.Error())
		} else {
			st.Recorder = runner
			store = st
			resume = s.Resume
			defer st.Close()
		}
	}

	defer func() {
		// Stop before snapshotting: Stop takes the governor's final
		// watermark decision, so a shed fired at the last possible
		// moment still lands in this run's ledger.
		gov.Stop()
		art.Report = runner.Report()
		if store != nil {
			art.Report.Checkpoint = store.Stats()
		}
	}()
	degrade := func(stage string) { art.Degraded = append(art.Degraded, stage) }

	// Memstats snapshots bracket the memory-heavy stages; with no
	// collector installed they are free no-ops.
	col := obs.From(ctx)
	col.SnapshotMemStats("pipeline.start")
	defer col.SnapshotMemStats("pipeline.end")

	world, err := resilience.Value(ctx, runner, "topo.generate", pol,
		func(ctx context.Context) (*topogen.World, error) {
			return topogen.GenerateContext(ctx, cfg)
		})
	if err != nil {
		return art, fmt.Errorf("core: generate world: %w", err)
	}
	art.World = world
	art.RegionCls = bias.NewRegionClassifier(world.Mapper())

	// The world is never stored — it regenerates deterministically
	// from the configuration — but its digest is pinned so that code
	// drift in the generator (same config, different world) invalidates
	// every cached artifact instead of being silently combined with
	// them.
	if store != nil {
		digest := checkpoint.WorldDigestOf(world)
		if prev := store.WorldDigest(); prev != "" && prev != digest {
			_ = store.InvalidateAll("world digest changed: regenerated world no longer matches cached artifacts")
		}
		if serr := store.SetWorldDigest(digest); serr != nil {
			runner.Skip("checkpoint.save.world", serr.Error())
		}
	}
	// Crash-injection sites: "kill after stage N" for the crash-resume
	// tests and the check.sh smoke. Free when no fault is registered.
	if err := resilience.Checkpoint(ctx, "checkpoint.saved.world"); err != nil {
		return art, err
	}

	// Propagation streams per-origin path blocks. Each block is teed
	// into the raw path set (still needed by the community extractor
	// and the checkpoint store) and into a feature stream collector,
	// which cleans it shard-by-shard under a governor permit — the full
	// raw and cleaned universes never coexist inside the features
	// stage. The collector survives the stage closure so the features
	// stage can finish it; a retried or resumed features stage falls
	// back to the monolithic ComputeContext, which is byte-identical.
	var sc *features.StreamCollector
	var paths *bgp.PathSet
	var ingRep *ingest.Report
	if len(s.RIBIn) > 0 {
		// Real-data path source: stream the dump(s) through the ingest
		// front end instead of the simulator, teeing each block into
		// the total set and the feature collector exactly like
		// propagation does — the raw and cleaned universes never
		// coexist either way. A resumed artifact must carry the same
		// source digest; its pinned ingest report re-applies the error
		// budget below without re-reading the dump.
		paths, ingRep = resumeIngested(ctx, store, resume, runner, s.RIBDigest)
		if paths == nil {
			type ingested struct {
				ps  *bgp.PathSet
				rep *ingest.Report
			}
			v, verr := resilience.Value(ctx, runner, "ingest.read", pol,
				func(ctx context.Context) (ingested, error) {
					collector := features.NewStreamCollector()
					total := bgp.NewPathSet(4096, 4096*5)
					rep, ierr := ingest.Stream(ctx, ingest.Options{
						MaxBadFrac:     s.IngestMaxBadFrac,
						QuarantineFile: s.IngestQuarantineFile,
						ReadRetries:    ingest.DefaultReadRetries,
						FileWorkers:    s.IngestFileWorkers,
					}, s.RIBIn, func(blk *bgp.PathSet) error {
						total.AppendSet(blk)
						return collector.Feed(ctx, blk)
					})
					if ierr != nil {
						return ingested{}, ierr
					}
					sc = collector
					return ingested{total, rep}, nil
				})
			if verr != nil {
				return art, fmt.Errorf("core: ingest: %w", verr)
			}
			paths, ingRep = v.ps, v.rep
			saveArtifact(runner, store, checkpoint.ArtifactPaths, func() error {
				return checkpoint.PutPathsMeta(ctx, store, checkpoint.ArtifactPaths,
					paths, ingestMeta(s.RIBDigest, ingRep))
			})
		}
	} else {
		paths = resumePaths(ctx, store, resume, runner)
		if paths == nil {
			paths, err = resilience.Value(ctx, runner, "bgp.propagate", pol,
				func(ctx context.Context) (*bgp.PathSet, error) {
					sim := bgp.NewSimulator(world.Graph)
					collector := features.NewStreamCollector()
					total := bgp.NewPathSet(len(world.ASNs)*len(world.VPs), len(world.ASNs)*len(world.VPs)*5)
					so, sv, perr := sim.PropagateBlocks(ctx, world.ASNs, world.VPs, func(blk *bgp.PathSet) error {
						total.AppendSet(blk)
						return collector.Feed(ctx, blk)
					})
					if perr != nil {
						return nil, perr
					}
					total.SkippedOrigins = so
					total.SkippedVPs = sv
					sc = collector
					return total, nil
				})
			if err != nil {
				return art, fmt.Errorf("core: propagate: %w", err)
			}
			saveArtifact(runner, store, checkpoint.ArtifactPaths, func() error {
				return checkpoint.PutPaths(ctx, store, checkpoint.ArtifactPaths, paths)
			})
		}
	}
	art.Paths = paths
	art.Ingest = ingRep
	if err := resilience.Checkpoint(ctx, "checkpoint.saved.paths"); err != nil {
		return art, err
	}
	col.SnapshotMemStats("after.bgp.propagate")

	// Arena spill. When the feature collector consumed the path stream
	// (fresh run, not a resume), the raw arena has only two remaining
	// in-pipeline readers — the features retry fallback and the
	// community extractor — plus the Artifacts contract that Paths is
	// populated on return. Parking the arena in a CRC-trailed scratch
	// file for those gaps means the dense feature build and the triplet
	// inference fan-out, the two memory peaks of the run, never share
	// RAM with the raw path universe. A failed spill degrades to the
	// old keep-in-RAM behaviour; a corrupt reload fails the stage that
	// needed it rather than feeding damaged paths onward.
	var spillFile string
	var spillSO, spillSV int
	arena := func() (*bgp.PathSet, error) {
		if paths != nil {
			return paths, nil
		}
		ps, lerr := checkpoint.LoadSpilledPaths(spillFile)
		if lerr != nil {
			return nil, lerr
		}
		ps.SkippedOrigins, ps.SkippedVPs = spillSO, spillSV
		paths = ps
		return ps, nil
	}
	if sc != nil && !s.Resume {
		if sp, serr := checkpoint.SpillPaths("", paths); serr != nil {
			runner.Skip("arena.spill", serr.Error())
		} else {
			spillFile = sp
			spillSO, spillSV = paths.SkippedOrigins, paths.SkippedVPs
			paths = nil
			art.Paths = nil
			defer func() {
				// Restore the Artifacts contract on every return path,
				// then drop the scratch file. If the extractor already
				// reloaded the arena this is free.
				if ps, lerr := arena(); lerr == nil {
					art.Paths = ps
				}
				os.Remove(spillFile)
			}()
		}
	}

	// The error-budget verdict. Over budget the run degrades to
	// partial — cmd/breval maps a failed ledger stage to exit 3, never
	// 0 — but still renders: a bias analyst wants to see what the
	// damaged data says alongside the verdict, not nothing.
	if ingRep != nil {
		if ingRep.Exceeded(s.IngestMaxBadFrac) {
			runner.Record(resilience.StageReport{
				Stage: "ingest.budget", Status: resilience.StatusFailed,
				Kind: resilience.KindError,
				Error: fmt.Sprintf("ingest error budget exceeded: %d of %d records quarantined (frac %.6f > budget %.6f, %d desynced files)",
					ingRep.BadTotal(), ingRep.Records, ingRep.BadFrac(), s.IngestMaxBadFrac, ingRep.Desyncs),
			})
			degrade("ingest.budget")
		} else if n := ingRep.BadTotal(); n > 0 {
			runner.Record(resilience.StageReport{
				Stage: "ingest.budget", Status: resilience.StatusOK,
				Note: fmt.Sprintf("%d of %d records quarantined (frac %.6f within budget %.6f)",
					n, ingRep.Records, ingRep.BadFrac(), s.IngestMaxBadFrac),
			})
		}
	}

	fs, err := resilience.Value(ctx, runner, "features.compute", pol,
		func(ctx context.Context) (*features.Set, error) {
			if err := resilience.Checkpoint(ctx, "features.compute"); err != nil {
				return nil, err
			}
			if sc != nil {
				collector := sc
				sc = nil // a retry recomputes from the raw paths instead
				return collector.Finish(ctx)
			}
			ps, aerr := arena()
			if aerr != nil {
				return nil, aerr
			}
			return features.ComputeContext(ctx, ps)
		})
	if err != nil {
		return art, fmt.Errorf("core: compute features: %w", err)
	}
	art.Features = fs

	// Community-based validation extraction with stale dictionaries.
	// The cached artifact is saved after the optional RPSL merge below,
	// so a resumed raw snapshot needs no re-merge.
	raw, rawFromCache := resumeSnapshot(ctx, store, resume, runner,
		checkpoint.ArtifactValidation, "validation.extract")
	if raw == nil {
		raw, err = resilience.Value(ctx, runner, "validation.extract", pol,
			func(ctx context.Context) (*validation.Snapshot, error) {
				if err := resilience.Checkpoint(ctx, "validation.extract"); err != nil {
					return nil, err
				}
				stale := pickStale(world, s.StaleDictionaries)
				ex := communities.NewExtractor(world.Graph, world.Publishers, world.Strippers, stale)
				ps, aerr := arena()
				if aerr != nil {
					return nil, aerr
				}
				snap := ex.Extract(ps)
				injectSpuriousLabels(snap, world, s)
				injectInaccurateT1Labels(snap, world, s.InaccurateT1Labels)
				return resilience.CorruptAt("validation.extract", snap), nil
			})
		if err != nil {
			return art, fmt.Errorf("core: extract validation: %w", err)
		}
	}
	art.RawValidation = raw
	if spillFile != "" {
		// The extractor was the last in-pipeline arena reader; park it
		// again so the inference fan-out runs beside the dense tables
		// alone. The deferred restore brings it back for the Artifacts.
		paths = nil
	}

	// Source (ii): relationships from IRR routing policies. Non-fatal:
	// the paper's main line uses communities alone, so a broken IRR
	// snapshot degrades the source-comparison ablation, not the run.
	rpslSnap, err := resilience.Value(ctx, runner, "rpsl.generate", pol,
		func(ctx context.Context) (*validation.Snapshot, error) {
			if err := resilience.Checkpoint(ctx, "rpsl.generate"); err != nil {
				return nil, err
			}
			irr := rpsl.Generate(world.Graph, world.IRRRegistrants, rpsl.DefaultGenerateConfig(s.Seed^0x1225))
			return rpsl.Extract(irr), nil
		})
	switch {
	case err != nil && ctx.Err() != nil:
		return art, err
	case err != nil:
		degrade("rpsl.generate")
	default:
		art.RPSL = rpslSnap
		// A raw snapshot restored from the store already carries the
		// merge (it was saved post-merge); merging twice would be
		// harmless for exact duplicates but is skipped for clarity.
		if s.IncludeRPSL && !rawFromCache {
			rpslSnap.ForEach(func(l asgraph.Link, lbs []validation.Label) {
				for _, lb := range lbs {
					raw.Add(l, lb)
				}
			})
		}
	}
	if !rawFromCache {
		saveArtifact(runner, store, checkpoint.ArtifactValidation, func() error {
			return checkpoint.PutSnapshot(ctx, store, checkpoint.ArtifactValidation, raw, nil)
		})
	}
	if err := resilience.Checkpoint(ctx, "checkpoint.saved.validation.raw"); err != nil {
		return art, err
	}

	type cleaned struct {
		snap *validation.Snapshot
		rep  validation.CleanReport
	}
	cleanSnap, cleanRep, cleanHit := resumeClean(ctx, store, resume, runner)
	if cleanHit {
		art.Validation = cleanSnap
		art.CleanReport = cleanRep
	} else {
		cl, err := resilience.Value(ctx, runner, "validation.clean", pol,
			func(ctx context.Context) (cleaned, error) {
				if err := resilience.Checkpoint(ctx, "validation.clean"); err != nil {
					return cleaned{}, err
				}
				snap, rep := validation.Clean(raw, world.Orgs, s.Policy)
				return cleaned{snap, rep}, nil
			})
		if err != nil {
			return art, fmt.Errorf("core: clean validation: %w", err)
		}
		art.Validation = cl.snap
		art.CleanReport = cl.rep
		saveArtifact(runner, store, checkpoint.ArtifactClean, func() error {
			return checkpoint.PutSnapshot(ctx, store, checkpoint.ArtifactClean,
				cl.snap, encodeCleanReport(cl.rep))
		})
	}
	if err := resilience.Checkpoint(ctx, "checkpoint.saved.validation.clean"); err != nil {
		return art, err
	}

	// Inference. The algorithms are independent and individually
	// deterministic, and the feature set (dense tables included) is
	// read-only once built, so they run concurrently, bounded by
	// GOMAXPROCS. Each algorithm is its own isolated stage on a child
	// runner, so one algorithm's panic or timeout costs only that
	// algorithm's result — and merging the child ledgers after the wait
	// keeps the report's stage order deterministic (algorithm order)
	// regardless of completion order.
	algos := s.Algorithms
	if algos == nil {
		algos = []string{AlgoASRank, AlgoProbLink, AlgoTopoScope, AlgoGao}
	}
	instances := make([]inference.Algorithm, len(algos))
	for i, name := range algos {
		a, err := newAlgorithm(name)
		if err != nil {
			return art, err
		}
		instances[i] = a
	}
	// The cleaned ASN-typed arena duplicates what the dense mirror
	// already carries; only algorithms that declare themselves
	// (TopoScope's VP-group partition) still walk it. When none of the
	// selected ones do, drop it before the fan-out so the triplet
	// passes run beside the dense tables alone.
	releasePaths := true
	for _, inst := range instances {
		if inference.NeedsPaths(inst) {
			releasePaths = false
			break
		}
	}
	if releasePaths {
		fs.ReleasePaths()
	}
	resSlice := make([]*inference.Result, len(algos))
	errSlice := make([]error, len(algos))
	subRunners := make([]*resilience.Runner, len(algos))
	// The per-algorithm fan-out takes its permits from the governor's
	// shared limiter when one is active, so memory pressure thins the
	// concurrent algorithms exactly like the propagation and feature
	// workers; without a governor a fixed GOMAXPROCS-sized limiter
	// preserves the old bound.
	lim := govern.From(ctx).Limiter()
	if lim == nil {
		lim = govern.NewLimiter(runtime.GOMAXPROCS(0))
	}
	var wg sync.WaitGroup
	for i := range instances {
		subRunners[i] = resilience.NewRunner()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := lim.Acquire(ctx); err != nil {
				errSlice[i] = err
				return
			}
			defer lim.Release()
			sub := subRunners[i]
			stage := "infer." + algos[i]
			if store != nil && resume {
				if res, gerr := checkpoint.GetResult(ctx, store, algos[i]); gerr == nil {
					resSlice[i] = res
					recordReuse(sub, stage, checkpoint.ArtifactRel(algos[i]))
					return
				}
			}
			resSlice[i], errSlice[i] = resilience.Value(ctx, sub, stage, pol,
				func(ctx context.Context) (*inference.Result, error) {
					if err := resilience.Checkpoint(ctx, stage); err != nil {
						return nil, err
					}
					return inference.InferContext(ctx, instances[i], fs), nil
				})
			if errSlice[i] == nil {
				saveArtifact(sub, store, checkpoint.ArtifactRel(algos[i]), func() error {
					return checkpoint.PutResult(ctx, store, resSlice[i])
				})
				errSlice[i] = resilience.Checkpoint(ctx, "checkpoint.saved."+checkpoint.ArtifactRel(algos[i]))
			}
		}(i)
	}
	wg.Wait()
	for _, sub := range subRunners {
		for _, sr := range sub.Report().Stages {
			runner.Record(sr)
		}
	}
	col.SnapshotMemStats("after.infer")
	results := make(map[string]*inference.Result, len(algos))
	for i, name := range algos {
		if errSlice[i] != nil {
			degrade("infer." + name)
			continue
		}
		results[name] = resSlice[i]
	}
	if len(results) == 0 {
		if err := ctx.Err(); err != nil {
			return art, err
		}
		return art, fmt.Errorf("core: all inference algorithms failed: %w", errSlice[0])
	}
	art.Results = results

	// Topological classification per §5: customer cones from the
	// inferred relationships (CAIDA-style), refined by the Tier-1 and
	// hypergiant lists. Non-fatal: without it the §5 splits degrade
	// but the accuracy tables still render.
	type cones struct {
		sizes map[asn.ASN]int
		cls   *bias.TopoClassifier
	}
	cb, err := resilience.Value(ctx, runner, "cones.build", pol,
		func(ctx context.Context) (cones, error) {
			if err := resilience.Checkpoint(ctx, "cones.build"); err != nil {
				return cones{}, err
			}
			coneSrc := results[AlgoASRank]
			if coneSrc == nil {
				for _, name := range algos {
					if r := results[name]; r != nil {
						coneSrc = r
						break
					}
				}
			}
			if coneSrc == nil {
				return cones{}, nil
			}
			g := graphFromResult(coneSrc)
			// Context-aware: the cone walk is a long pure loop; a
			// watchdog or deadline cancel must be able to stop it.
			sizes, err := g.ConeSizesContext(ctx)
			if err != nil {
				return cones{}, err
			}
			return cones{sizes, bias.NewTopoClassifier(sizes, world.Clique, world.Hypergiants)}, nil
		})
	switch {
	case err != nil && ctx.Err() != nil:
		return art, err
	case err != nil:
		degrade("cones.build")
	default:
		art.ConeSizes = cb.sizes
		art.TopoCls = cb.cls
	}
	return art, nil
}

// resolveTopo fills the scenario's topology defaults and resolves the
// generator configuration exactly as RunContext will use it: an
// explicit TopoConfig wins, otherwise the seed's default config scaled
// to NumASes (defaulting to the paper-scale 8000).
func resolveTopo(s Scenario) (Scenario, topogen.Config) {
	if s.NumASes == 0 {
		s.NumASes = 8000
	}
	cfg := topogen.DefaultConfig(s.Seed)
	if s.TopoConfig != nil {
		cfg = *s.TopoConfig
	} else if s.NumASes != cfg.NumASes {
		cfg = cfg.Scaled(s.NumASes)
	}
	return s, cfg
}

// CheckpointKey returns the artifact-store key RunContext would derive
// for the scenario — the identity under which its runs cache and
// resume. Two scenarios with equal keys share checkpoint artifacts;
// callers (the server's result cache, tooling) must use this instead
// of re-deriving the key so the mapping cannot drift.
func CheckpointKey(s Scenario) checkpoint.Key {
	s, cfg := resolveTopo(s)
	return checkpointKey(s, cfg)
}

// checkpointKey derives the artifact-store key from the resolved
// topology configuration and every scenario knob that feeds the
// checkpointed stages. Algorithms are deliberately absent: results are
// cached per algorithm, so narrowing Scenario.Algorithms must not
// invalidate the others.
func checkpointKey(s Scenario, cfg topogen.Config) checkpoint.Key {
	return checkpoint.Key{
		Schema:             checkpoint.SchemaVersion,
		Config:             cfg,
		Policy:             s.Policy.String(),
		StaleDictionaries:  s.StaleDictionaries,
		SpuriousTrans:      s.SpuriousTrans,
		SpuriousReserved:   s.SpuriousReserved,
		InaccurateT1Labels: s.InaccurateT1Labels,
		IncludeRPSL:        s.IncludeRPSL,
		RIBDigest:          s.RIBDigest,
	}
}

// recordReuse marks a stage satisfied from the checkpoint store. The
// stage is OK — its output exists and is verified — the note says it
// was loaded, not computed.
func recordReuse(r *resilience.Runner, stage, artifact string) {
	r.Record(resilience.StageReport{Stage: stage, Status: resilience.StatusOK,
		Note: "checkpoint: reused artifact " + artifact})
}

// saveArtifact persists one artifact through put. Failures degrade to
// a recorded note, never a failed run: the artifact is simply not
// cached and the next run recomputes it.
func saveArtifact(r *resilience.Runner, store *checkpoint.Store, name string, put func() error) {
	if store == nil {
		return
	}
	if err := put(); err != nil {
		r.Skip("checkpoint.save."+name, err.Error())
	}
}

// resumePaths loads the cached path set, or nil to recompute. A miss
// or quarantine was already recorded by the store.
func resumePaths(ctx context.Context, store *checkpoint.Store, resume bool, r *resilience.Runner) *bgp.PathSet {
	if store == nil || !resume {
		return nil
	}
	ps, err := checkpoint.GetPaths(ctx, store, checkpoint.ArtifactPaths)
	if err != nil {
		return nil
	}
	recordReuse(r, "bgp.propagate", checkpoint.ArtifactPaths)
	return ps
}

// ingestMeta pins the ingested artifact's provenance in the manifest:
// the source digest plus the full ingest report, so a resume can
// verify and re-apply the budget without touching the dump.
func ingestMeta(digest string, rep *ingest.Report) map[string]string {
	b, err := json.Marshal(rep)
	if err != nil {
		// Report is plain data; Marshal cannot fail. A non-decodable
		// value makes resume recompute, which is the safe direction.
		b = []byte(strconv.Quote(err.Error()))
	}
	return map[string]string{"rib_digest": digest, "ingest_report": string(b)}
}

// resumeIngested loads the cached ingested path set together with its
// pinned ingest report. Anything off — a missing artifact, a digest
// that does not match the current inputs (the key already separates
// digests, so this is belt and braces against a tampered manifest), a
// report that does not decode — is a miss: (nil, nil) recomputes.
func resumeIngested(ctx context.Context, store *checkpoint.Store, resume bool, r *resilience.Runner, digest string) (*bgp.PathSet, *ingest.Report) {
	if store == nil || !resume {
		return nil, nil
	}
	ps, meta, err := checkpoint.GetPathsMeta(ctx, store, checkpoint.ArtifactPaths)
	if err != nil || meta["rib_digest"] != digest {
		return nil, nil
	}
	rep := &ingest.Report{}
	if jerr := json.Unmarshal([]byte(meta["ingest_report"]), rep); jerr != nil || rep.Bad == nil {
		return nil, nil
	}
	recordReuse(r, "ingest.read", checkpoint.ArtifactPaths)
	return ps, rep
}

// resumeSnapshot loads a cached validation snapshot, or (nil, false)
// to recompute.
func resumeSnapshot(ctx context.Context, store *checkpoint.Store, resume bool, r *resilience.Runner, name, stage string) (*validation.Snapshot, bool) {
	if store == nil || !resume {
		return nil, false
	}
	snap, _, err := checkpoint.GetSnapshot(ctx, store, name)
	if err != nil {
		return nil, false
	}
	recordReuse(r, stage, name)
	return snap, true
}

// resumeClean loads the cached cleaned snapshot plus its cleaning
// report (carried as manifest metadata). A snapshot whose metadata
// does not decode counts as corrupt: the decode callback rejects it,
// so the store quarantines the artifact.
func resumeClean(ctx context.Context, store *checkpoint.Store, resume bool, r *resilience.Runner) (*validation.Snapshot, validation.CleanReport, bool) {
	if store == nil || !resume {
		return nil, validation.CleanReport{}, false
	}
	var snap *validation.Snapshot
	var rep validation.CleanReport
	err := store.Get(ctx, checkpoint.ArtifactClean, func(p io.Reader, meta map[string]string) error {
		got, perr := validation.Parse(p)
		if perr != nil {
			return perr
		}
		if jerr := json.Unmarshal([]byte(meta["clean_report"]), &rep); jerr != nil {
			return fmt.Errorf("clean_report meta: %w", jerr)
		}
		snap = got
		return nil
	})
	if err != nil {
		return nil, validation.CleanReport{}, false
	}
	recordReuse(r, "validation.clean", checkpoint.ArtifactClean)
	return snap, rep, true
}

// encodeCleanReport serialises the cleaning report into artifact
// metadata.
func encodeCleanReport(rep validation.CleanReport) map[string]string {
	b, err := json.Marshal(rep)
	if err != nil {
		// CleanReport is plain ints; Marshal cannot fail. Fall back to
		// a value Unmarshal will reject, so resume recomputes.
		return map[string]string{"clean_report": strconv.Quote(err.Error())}
	}
	return map[string]string{"clean_report": string(b)}
}

func newAlgorithm(name string) (inference.Algorithm, error) {
	switch name {
	case AlgoASRank:
		return asrank.New(asrank.Options{}), nil
	case AlgoProbLink:
		return problink.New(problink.Options{}), nil
	case AlgoTopoScope:
		return toposcope.New(toposcope.Options{}), nil
	case AlgoGao:
		return gao.New(gao.Options{}), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}

// graphFromResult materialises an inferred relationship set as a
// graph (for customer-cone computation).
func graphFromResult(res *inference.Result) *asgraph.Graph {
	g := asgraph.New()
	for l, rel := range res.Rels {
		_ = g.SetRel(l.A, l.B, rel)
	}
	return g
}

// pickStale deterministically selects publishers with stale community
// documentation. Clique members are excluded: Tier-1 community
// documentation is actively maintained, and a stale Tier-1 dictionary
// would poison hundreds of labels at once, which is not what real
// snapshots look like. The Tier-1-adjacent inaccuracy of §6.1 is
// modelled separately (Scenario.InaccurateT1Labels).
func pickStale(w *topogen.World, n int) []asn.ASN {
	if n <= 0 {
		return nil
	}
	clique := w.CliqueSet()
	var pubs []asn.ASN
	for _, a := range w.ASNs {
		if w.Publishers[a] && !clique[a] {
			pubs = append(pubs, a)
		}
	}
	if len(pubs) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(w.Config.Seed ^ 0x5717a1e))
	out := make([]asn.ASN, 0, n)
	seen := make(map[asn.ASN]bool, n)
	for len(out) < n && len(seen) < len(pubs) {
		a := pubs[rng.Intn(len(pubs))]
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// injectInaccurateT1Labels flips the validation label of n true-P2P
// links between the first partial-transit Tier-1 and transit ASes to
// P2C — the "inaccurate validation data" case the §6.1 looking-glass
// analysis uncovers (1 of Cogent's 17 re-checked links).
func injectInaccurateT1Labels(snap *validation.Snapshot, w *topogen.World, n int) {
	if n <= 0 {
		return
	}
	clique := w.CliqueSet()
	// Prefer links of the heavy partial-transit seller, so the flipped
	// label surfaces among the §6.1 target links like in the paper.
	preferred := map[asn.ASN]bool{}
	if len(w.PartialSellers) > 0 {
		preferred[w.PartialSellers[0]] = true
	}
	flipped := 0
	for pass := 0; pass < 2 && flipped < n; pass++ {
		for _, l := range snap.Links() {
			if flipped >= n {
				return
			}
			var t1 asn.ASN
			switch {
			case clique[l.A] && !clique[l.B]:
				t1 = l.A
			case clique[l.B] && !clique[l.A]:
				t1 = l.B
			default:
				continue
			}
			if pass == 0 && !preferred[t1] {
				continue
			}
			truth, ok := w.Graph.RelOn(l)
			if !ok || truth.Type != asgraph.P2P {
				continue
			}
			other, ok := l.OtherOK(t1)
			if !ok {
				continue
			}
			if t := w.Type[other]; t != topogen.TypeLargeTransit && t != topogen.TypeSmallTransit {
				continue
			}
			lb, ok := snap.Label(l)
			if !ok || lb.Type != asgraph.P2P {
				continue
			}
			snap.SetLabels(l, []validation.Label{{Type: asgraph.P2C, Provider: t1}})
			flipped++
		}
	}
}

// injectSpuriousLabels adds the §4.2 dirt: entries involving AS_TRANS
// and reserved ASNs, as real community scraping produces.
func injectSpuriousLabels(snap *validation.Snapshot, w *topogen.World, s Scenario) {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x7ca5))
	randomAS := func() asn.ASN { return w.ASNs[rng.Intn(len(w.ASNs))] }
	for i := 0; i < s.SpuriousTrans; i++ {
		snap.Add(asgraph.NewLink(asn.Trans, randomAS()),
			validation.Label{Type: asgraph.P2C, Provider: asn.Trans})
	}
	reservedPool := []asn.ASN{
		asn.Doc16First, asn.Doc16First + 1, asn.Doc16Last,
		asn.Private16First, asn.Private16First + 7, asn.Private16Last,
		asn.Doc32First, asn.Private32First, asn.Max - 1,
	}
	for i := 0; i < s.SpuriousReserved; i++ {
		r := reservedPool[rng.Intn(len(reservedPool))] + asn.ASN(0)
		lbl := validation.Label{Type: asgraph.P2P}
		if rng.Intn(2) == 0 {
			lbl = validation.Label{Type: asgraph.P2C, Provider: r}
		}
		snap.Add(asgraph.NewLink(r, randomAS()), lbl)
	}
}
