package core

import (
	"errors"
	"fmt"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bias"
	"breval/internal/casestudy"
	"breval/internal/metrics"
	"breval/internal/sampling"
)

// errNoTopoCls is returned by experiments that need the §5
// topological classifier when the cones.build stage degraded and
// Artifacts.TopoCls is nil.
var errNoTopoCls = errors.New("core: no topological classifier (cones.build stage degraded)")

// Figure1 computes the regional imbalance of Figure 1: per regional
// link class, the share of inferred links and the validation
// coverage.
func (a *Artifacts) Figure1() []bias.ClassStat {
	return bias.Imbalance(a.Features.Intern, a.Validation, a.RegionCls)
}

// Figure2 computes the topological imbalance of Figure 2. It returns
// nil when the run degraded without a topological classifier.
func (a *Artifacts) Figure2() []bias.ClassStat {
	if a.TopoCls == nil {
		return nil
	}
	return bias.Imbalance(a.Features.Intern, a.Validation, a.TopoCls)
}

// trLinks returns the TR° links of the inferred universe and the
// validatable subset (empty when the topological classifier is
// missing from a degraded run).
func (a *Artifacts) trLinks() (inferred, validated []asgraph.Link) {
	if a.TopoCls == nil {
		return nil, nil
	}
	// Dense-ID iteration is already ascending canonical link order, so
	// the slices come out sorted without an explicit sort.
	a.ForEachInferredLink(func(l asgraph.Link) {
		if name, ok := a.TopoCls.Class(l); ok && name == "TR°" {
			inferred = append(inferred, l)
			if a.Validation.Has(l) {
				validated = append(validated, l)
			}
		}
	})
	return inferred, validated
}

// HeatmapPair is one of the Figure 3/7/8/9 panels: the same binning
// over inferred and validatable TR° links.
type HeatmapPair struct {
	Name      string
	Inferred  *bias.Heatmap
	Validated *bias.Heatmap
}

// Figure3 computes the transit-degree heatmap pair of Figure 3. Both
// panels share one binning ("consistently colored heatmaps"), derived
// from the inferred TR° links so it fits the world's scale; the
// paper's fixed 150/1500 caps assume 2018-Internet degrees.
func (a *Artifacts) Figure3() HeatmapPair {
	inf, val := a.trLinks()
	spec := bias.SpecFromData(inf, a.Features.TransitDegreeOf, 15)
	return HeatmapPair{
		Name:      "transit degree",
		Inferred:  bias.BuildHeatmap(inf, a.Features.TransitDegreeOf, spec),
		Validated: bias.BuildHeatmap(val, a.Features.TransitDegreeOf, spec),
	}
}

// Figures7to9 computes the appendix-B heatmap pairs: customer cone
// size (Fig. 7), customer cone size ignoring links incident to route
// collector peers (Fig. 8) and node degree (Fig. 9).
func (a *Artifacts) Figures7to9() []HeatmapPair {
	inf, val := a.trLinks()

	vpSet := make(map[asn.ASN]bool, len(a.World.VPs))
	for _, v := range a.World.VPs {
		vpSet[v] = true
	}
	noVP := func(links []asgraph.Link) []asgraph.Link {
		var out []asgraph.Link
		for _, l := range links {
			if !vpSet[l.A] && !vpSet[l.B] {
				out = append(out, l)
			}
		}
		return out
	}

	coneOf := func(x asn.ASN) int { return a.ConeSizes[x] }
	cone := bias.SpecFromData(inf, coneOf, 15)
	deg := bias.SpecFromData(inf, a.Features.NodeDegreeOf, 15)
	return []HeatmapPair{
		{
			Name:      "customer cone size (PPDC)",
			Inferred:  bias.BuildHeatmap(inf, coneOf, cone),
			Validated: bias.BuildHeatmap(val, coneOf, cone),
		},
		{
			Name:      "customer cone size, no VP-incident links",
			Inferred:  bias.BuildHeatmap(noVP(inf), coneOf, cone),
			Validated: bias.BuildHeatmap(noVP(val), coneOf, cone),
		},
		{
			Name:      "node degree",
			Inferred:  bias.BuildHeatmap(inf, a.Features.NodeDegreeOf, deg),
			Validated: bias.BuildHeatmap(val, a.Features.NodeDegreeOf, deg),
		},
	}
}

// TableRow is one class row of Tables 1-3.
type TableRow struct {
	Class string
	Row   metrics.Row
}

// Table is one of the paper's per-group validation tables.
type Table struct {
	Algorithm string
	Total     metrics.Row
	Rows      []TableRow
}

// TableFor evaluates one algorithm per link class, keeping classes
// with at least minLinks validated relationships (the paper uses
// 500). The row order matches the paper: regional classes first, then
// topological, both alphabetical.
func (a *Artifacts) TableFor(algo string, minLinks int) (Table, error) {
	res, ok := a.Results[algo]
	if !ok {
		return Table{}, fmt.Errorf("core: no result for algorithm %q", algo)
	}
	t := Table{Algorithm: algo}
	t.Total = metrics.Evaluate(res, a.Validation, nil)

	classes := a.validatedClasses()
	for _, name := range classes {
		var filter metrics.LinkFilter
		if isTopoClass(name) {
			filter = bias.FilterForClass(a.TopoCls, name)
		} else {
			filter = bias.FilterForClass(a.RegionCls, name)
		}
		row := metrics.Evaluate(res, a.Validation, filter)
		if row.LCP+row.LCC < minLinks {
			continue
		}
		t.Rows = append(t.Rows, TableRow{Class: name, Row: row})
	}
	return t, nil
}

// validatedClasses lists every class name occurring in the validation
// data, regional classes first, each group alphabetical.
func (a *Artifacts) validatedClasses() []string {
	regional := make(map[string]bool)
	topological := make(map[string]bool)
	for _, l := range a.Validation.Links() {
		if n, ok := a.RegionCls.Class(l); ok {
			regional[n] = true
		}
		if a.TopoCls == nil {
			continue
		}
		if n, ok := a.TopoCls.Class(l); ok {
			topological[n] = true
		}
	}
	out := sortedKeys(regional)
	out = append(out, sortedKeys(topological)...)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// isTopoClass distinguishes topological class names (built from H, S,
// T1, TR) from regional ones.
func isTopoClass(name string) bool {
	switch name {
	case "H°", "S°", "T1°", "TR°",
		"H-S", "H-T1", "H-TR", "S-T1", "S-TR", "T1-TR":
		return true
	}
	return false
}

// Figures4to6 runs the Appendix-A sampling experiment for one
// algorithm restricted to one link class (the paper uses T1-TR).
func (a *Artifacts) Figures4to6(algo, class string, cfg sampling.Config) (sampling.Series, error) {
	res, ok := a.Results[algo]
	if !ok {
		return sampling.Series{}, fmt.Errorf("core: no result for algorithm %q", algo)
	}
	var filter metrics.LinkFilter
	if class != "" && class != "Total°" {
		if isTopoClass(class) {
			if a.TopoCls == nil {
				return sampling.Series{}, errNoTopoCls
			}
			filter = bias.FilterForClass(a.TopoCls, class)
		} else {
			filter = bias.FilterForClass(a.RegionCls, class)
		}
	}
	return sampling.Run(res, a.Validation, filter, cfg), nil
}

// CaseStudy runs the §6.1 analysis for one algorithm.
func (a *Artifacts) CaseStudy(algo string) (casestudy.Report, error) {
	res, ok := a.Results[algo]
	if !ok {
		return casestudy.Report{}, fmt.Errorf("core: no result for algorithm %q", algo)
	}
	return casestudy.Analyze(res, a.Validation, a.Features, worldGlass{a}), nil
}

// worldGlass answers looking-glass queries from the simulated world's
// ground truth.
type worldGlass struct{ a *Artifacts }

// PartialTransit implements casestudy.LookingGlass.
func (w worldGlass) PartialTransit(t1, x asn.ASN) bool {
	rel, ok := w.a.World.Graph.Rel(t1, x)
	return ok && rel.Type == asgraph.P2C && rel.Provider == t1 && rel.PartialTransit
}

// TrueRelType implements casestudy.LookingGlass.
func (w worldGlass) TrueRelType(a, b asn.ASN) (asgraph.RelType, bool) {
	rel, ok := w.a.World.Graph.Rel(a, b)
	return rel.Type, ok
}
