package core

import (
	"testing"
)

// TestFullScaleShape runs the complete calibrated scenario (~8000
// ASes, all four algorithms) and asserts the paper's headline claims
// at full scale. It takes ~1 minute; -short skips it.
func TestFullScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	art, err := Run(DefaultScenario(1))
	if err != nil {
		t.Fatal(err)
	}

	// Figure 1: L° uncovered, AR° covered.
	var arCov, lCov, arShare, lShare float64
	for _, st := range art.Figure1() {
		switch st.Class {
		case "AR°":
			arCov, arShare = st.Coverage, st.Share
		case "L°":
			lCov, lShare = st.Coverage, st.Share
		}
	}
	if lCov >= 0.01 {
		t.Errorf("L° coverage = %.3f, want < 0.01", lCov)
	}
	if arCov < 0.2 {
		t.Errorf("AR° coverage = %.3f, want >= 0.2 (paper: 0.31)", arCov)
	}
	if r := arShare / lShare; r < 0.5 || r > 3 {
		t.Errorf("AR°/L° shares %.2f/%.2f not comparable", arShare, lShare)
	}

	// Tables: precision drop for T1-TR P2P of at least 5% for every
	// algorithm (paper: 14-25%), ProbLink below ASRank.
	ppv := map[string]float64{}
	totalPPV := map[string]float64{}
	for _, algo := range []string{AlgoASRank, AlgoProbLink, AlgoTopoScope} {
		tab, err := art.TableFor(algo, 500)
		if err != nil {
			t.Fatal(err)
		}
		totalPPV[algo] = tab.Total.PPVP
		for _, r := range tab.Rows {
			if r.Class == "T1-TR" {
				ppv[algo] = r.Row.PPVP
			}
		}
		if tab.Total.TPRC < 0.9 {
			t.Errorf("%s: Total TPR_C = %.3f, want >= 0.9", algo, tab.Total.TPRC)
		}
	}
	for algo, v := range ppv {
		if drop := totalPPV[algo] - v; drop < 0.05 {
			t.Errorf("%s: T1-TR PPV_P drop = %.3f, want >= 0.05", algo, drop)
		}
	}
	if ppv[AlgoProbLink] >= ppv[AlgoASRank] {
		t.Errorf("ProbLink T1-TR PPV_P %.3f not below ASRank %.3f",
			ppv[AlgoProbLink], ppv[AlgoASRank])
	}

	// Case study: enough target links and no clique triplets.
	cs, err := art.CaseStudy(AlgoASRank)
	if err != nil {
		t.Fatal(err)
	}
	if cs.WrongP2P < 10 {
		t.Errorf("only %d wrong-P2P links", cs.WrongP2P)
	}
	for _, tl := range cs.Targets {
		if tl.HasCliqueTriplet {
			t.Errorf("target %v has a clique triplet", tl.Link)
		}
	}

	// Heatmaps: inferred links concentrate at least as hard in the
	// bottom-left corner as validated ones.
	for _, hp := range art.Figures7to9() {
		if hp.Validated.Total < 150 {
			// Sub-sample panels (fig 8 drops VP-incident links, and
			// validated TR° links are mostly VP-incident — itself a
			// facet of the bias) are too noisy to assert a direction.
			continue
		}
		ci := hp.Inferred.CornerMass(1.0/3, 1.0/3)
		cv := hp.Validated.CornerMass(1.0/3, 1.0/3)
		if ci < cv-0.02 {
			t.Errorf("%s: inferred corner %.3f below validated %.3f", hp.Name, ci, cv)
		}
	}
}
