package registry

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/asn"
)

func TestRegionStringAndAbbrev(t *testing.T) {
	for _, c := range []struct {
		r      Region
		name   string
		abbrev string
	}{
		{AFRINIC, "afrinic", "AF"},
		{APNIC, "apnic", "AP"},
		{ARIN, "arin", "AR"},
		{LACNIC, "lacnic", "L"},
		{RIPE, "ripencc", "R"},
		{RegionNone, "none", "-"},
	} {
		if got := c.r.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.r, got, c.name)
		}
		if got := c.r.Abbrev(); got != c.abbrev {
			t.Errorf("Abbrev() = %q, want %q", got, c.abbrev)
		}
	}
}

func TestParseRegionRoundTrip(t *testing.T) {
	for _, r := range Regions {
		got, err := ParseRegion(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRegion(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
		got, err = ParseRegion(r.Abbrev())
		if err != nil || got != r {
			t.Errorf("ParseRegion(%q) = %v, %v; want %v", r.Abbrev(), got, err, r)
		}
	}
	if _, err := ParseRegion("mars"); err == nil {
		t.Error("ParseRegion accepted an unknown region")
	}
}

func TestDelegatedRoundTrip(t *testing.T) {
	f := &File{
		Registry: RIPE,
		Serial:   "20180405",
		Delegations: []Delegation{
			{Registry: RIPE, CC: "DE", First: 3320, Count: 1, Status: "allocated", OpaqueID: "org-dtag"},
			{Registry: RIPE, CC: "NL", First: 1103, Count: 2, Status: "assigned"},
			{Registry: LACNIC, CC: "BR", First: 52000, Count: 10, Status: "allocated"},
		},
	}
	var buf bytes.Buffer
	if err := WriteDelegated(&buf, f); err != nil {
		t.Fatalf("WriteDelegated: %v", err)
	}
	got, err := ParseDelegated(&buf)
	if err != nil {
		t.Fatalf("ParseDelegated: %v", err)
	}
	if got.Registry != RIPE || got.Serial != "20180405" {
		t.Errorf("header: got %v/%s", got.Registry, got.Serial)
	}
	if len(got.Delegations) != 3 {
		t.Fatalf("got %d delegations, want 3", len(got.Delegations))
	}
	d := got.Delegations[1]
	if d.First != 1103 || d.Count != 2 || d.CC != "NL" || d.Last() != 1104 {
		t.Errorf("delegation 1 = %+v", d)
	}
	if got.Delegations[0].OpaqueID != "org-dtag" {
		t.Errorf("opaque id lost: %+v", got.Delegations[0])
	}
}

func TestParseDelegatedRealWorldFragment(t *testing.T) {
	// Structure matches the real delegated-ripencc-extended files,
	// including ipv4 records that must be skipped.
	const in = `2|ripencc|20180405|123456|19830705|20180404|+0000
ripencc|*|asn|*|2|summary
ripencc|*|ipv4|*|1|summary
ripencc|FR|asn|2200|1|19930901|allocated|fr-renater
ripencc|EU|asn|2043|1|19930901|allocated
ripencc|FR|ipv4|2.0.0.0|1048576|20100712|allocated|fr-telecom
`
	f, err := ParseDelegated(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseDelegated: %v", err)
	}
	if len(f.Delegations) != 2 {
		t.Fatalf("got %d asn delegations, want 2", len(f.Delegations))
	}
	if f.Delegations[0].First != 2200 || f.Delegations[0].CC != "FR" {
		t.Errorf("delegation 0 = %+v", f.Delegations[0])
	}
}

func TestParseDelegatedErrors(t *testing.T) {
	for _, in := range []string{
		"ripencc|FR|asn|2200\n",            // too few fields
		"mars|FR|asn|2200|1|x|allocated\n", // unknown registry
		"ripencc|FR|asn|abc|1|x|allocated\n",
		"ripencc|FR|asn|2200|0|x|allocated\n", // zero count
	} {
		if _, err := ParseDelegated(strings.NewReader(in)); err == nil {
			t.Errorf("ParseDelegated(%q) succeeded, want error", in)
		}
	}
}

func ianaForTest(t *testing.T) *asn.Registry {
	t.Helper()
	r, err := asn.NewRegistry([]asn.Block{
		{First: 1, Last: 5000, Authority: asn.AuthARIN},
		{First: 5001, Last: 10000, Authority: asn.AuthRIPE},
		{First: 10001, Last: 15000, Authority: asn.AuthAPNIC},
		{First: 15001, Last: 20000, Authority: asn.AuthLACNIC},
		{First: 20001, Last: 23000, Authority: asn.AuthAFRINIC},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMapperBootstrapAndRefine(t *testing.T) {
	m := NewMapper(ianaForTest(t))
	// Bootstrap only.
	if got := m.Region(100); got != ARIN {
		t.Errorf("Region(100) = %v, want ARIN", got)
	}
	if got := m.Region(5555); got != RIPE {
		t.Errorf("Region(5555) = %v, want RIPE", got)
	}
	// AS 100 was transferred ARIN -> LACNIC.
	m.Apply(&File{Registry: LACNIC, Delegations: []Delegation{
		{Registry: LACNIC, CC: "BR", First: 100, Count: 1, Status: "allocated"},
	}})
	if got := m.Region(100); got != LACNIC {
		t.Errorf("after transfer, Region(100) = %v, want LACNIC", got)
	}
	if m.Overrides() != 1 {
		t.Errorf("Overrides() = %d, want 1", m.Overrides())
	}
	// Neighboring ASNs keep the IANA mapping.
	if got := m.Region(101); got != ARIN {
		t.Errorf("Region(101) = %v, want ARIN", got)
	}
}

func TestMapperSkipsPoolRecords(t *testing.T) {
	m := NewMapper(ianaForTest(t))
	m.Apply(&File{Registry: RIPE, Delegations: []Delegation{
		{Registry: RIPE, First: 200, Count: 1, Status: "available"},
		{Registry: RIPE, First: 201, Count: 1, Status: "reserved"},
	}})
	if m.Overrides() != 0 {
		t.Errorf("pool records created %d overrides", m.Overrides())
	}
	if got := m.Region(200); got != ARIN {
		t.Errorf("Region(200) = %v, want ARIN (IANA bootstrap)", got)
	}
}

func TestMapperReservedASNsHaveNoRegion(t *testing.T) {
	m := NewMapper(ianaForTest(t))
	// Even a (bogus) delegation for AS_TRANS must not give it a region.
	m.Apply(&File{Registry: RIPE, Delegations: []Delegation{
		{Registry: RIPE, First: asn.Trans, Count: 1, Status: "allocated"},
	}})
	if got := m.Region(asn.Trans); got != RegionNone {
		t.Errorf("Region(AS_TRANS) = %v, want none", got)
	}
	if got := m.Region(asn.Private16First); got != RegionNone {
		t.Errorf("Region(private) = %v, want none", got)
	}
}

func TestMapperMultiASNDelegation(t *testing.T) {
	m := NewMapper(nil)
	m.Apply(&File{Registry: APNIC, Delegations: []Delegation{
		{Registry: APNIC, First: 1000, Count: 3, Status: "allocated"},
	}})
	for a := asn.ASN(1000); a <= 1002; a++ {
		if got := m.Region(a); got != APNIC {
			t.Errorf("Region(%d) = %v, want APNIC", a, got)
		}
	}
	if got := m.Region(1003); got != RegionNone {
		t.Errorf("Region(1003) = %v, want none (nil IANA)", got)
	}
}
