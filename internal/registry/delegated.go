package registry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"breval/internal/asn"
)

// Delegation is one "asn" record of an RIR delegated-extended
// statistics file: a contiguous run of Count ASNs starting at First,
// delegated by Registry to a holder in country CC.
type Delegation struct {
	Registry Region
	CC       string // ISO-3166 country code, or "ZZ"
	First    asn.ASN
	Count    uint32
	Date     string // YYYYMMDD, may be empty
	Status   string // allocated | assigned | available | reserved
	OpaqueID string
}

// Last returns the last ASN of the delegated run.
func (d Delegation) Last() asn.ASN { return d.First + asn.ASN(d.Count-1) }

// File is a parsed delegated-extended file: the version/summary header
// plus all ASN delegation records. IPv4/IPv6 records are ignored since
// the relationship pipeline only needs ASNs.
type File struct {
	Registry    Region
	Serial      string
	Delegations []Delegation
}

// WriteDelegated serialises f in the RIR delegated-extended format:
//
//	2|ripencc|20180405|3|19830705|20180404|+0000
//	ripencc|*|asn|*|3|summary
//	ripencc|DE|asn|3320|1|19930901|allocated|org-1
//
// Only an asn summary line is written because only asn records are.
func WriteDelegated(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	reg := f.Registry.String()
	serial := f.Serial
	if serial == "" {
		serial = "20180405"
	}
	fmt.Fprintf(bw, "2|%s|%s|%d|19830705|%s|+0000\n", reg, serial, len(f.Delegations), serial)
	fmt.Fprintf(bw, "%s|*|asn|*|%d|summary\n", reg, len(f.Delegations))
	for _, d := range f.Delegations {
		cc := d.CC
		if cc == "" {
			cc = "ZZ"
		}
		date := d.Date
		if date == "" {
			date = serial
		}
		status := d.Status
		if status == "" {
			status = "allocated"
		}
		fmt.Fprintf(bw, "%s|%s|asn|%d|%d|%s|%s|%s\n",
			d.Registry.String(), cc, d.First, d.Count, date, status, d.OpaqueID)
	}
	return bw.Flush()
}

// ParseDelegated reads a delegated-extended file, keeping only asn
// records. Header, summary and non-asn lines are skipped; comment
// lines start with '#'. The format is the one published at e.g.
// ftp.ripe.net/pub/stats/ripencc/delegated-ripencc-extended-latest.
func ParseDelegated(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	f := &File{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		// Version line: 2|ripencc|20180405|...
		if fields[0] == "2" || fields[0] == "2.3" {
			if len(fields) >= 3 {
				if reg, err := ParseRegion(fields[1]); err == nil {
					f.Registry = reg
				}
				f.Serial = fields[2]
			}
			continue
		}
		// Summary line: ripencc|*|asn|*|N|summary
		if len(fields) >= 6 && fields[5] == "summary" {
			continue
		}
		if len(fields) < 7 {
			return nil, fmt.Errorf("registry: delegated line %d: want >=7 fields, got %d", lineno, len(fields))
		}
		if fields[2] != "asn" {
			continue // ipv4/ipv6 records
		}
		reg, err := ParseRegion(fields[0])
		if err != nil {
			return nil, fmt.Errorf("registry: delegated line %d: %w", lineno, err)
		}
		first, err := asn.Parse(fields[3])
		if err != nil {
			return nil, fmt.Errorf("registry: delegated line %d: %w", lineno, err)
		}
		count, err := strconv.ParseUint(fields[4], 10, 32)
		if err != nil || count == 0 {
			return nil, fmt.Errorf("registry: delegated line %d: bad count %q", lineno, fields[4])
		}
		d := Delegation{
			Registry: reg,
			CC:       fields[1],
			First:    first,
			Count:    uint32(count),
			Date:     fields[5],
			Status:   fields[6],
		}
		if len(fields) >= 8 {
			d.OpaqueID = fields[7]
		}
		f.Delegations = append(f.Delegations, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("registry: delegated: %w", err)
	}
	return f, nil
}
