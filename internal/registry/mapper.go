package registry

import (
	"breval/internal/asn"
)

// Mapper maps ASNs to service regions using the two-stage process of
// §5: IANA's initial block assignments bootstrap the mapping for all
// ASes, and per-ASN RIR delegation records then correct it for
// resources transferred between regions after the initial assignment.
type Mapper struct {
	iana     *asn.Registry
	override map[asn.ASN]Region
}

// NewMapper creates a mapper bootstrapped from the IANA registry.
// A nil registry yields a mapper that knows nothing until delegation
// files are applied.
func NewMapper(iana *asn.Registry) *Mapper {
	return &Mapper{iana: iana, override: make(map[asn.ASN]Region)}
}

// Apply refines the mapping with one RIR delegation file. Records with
// status "available" or "reserved" describe the RIR's own pool, not a
// delegation to a network, and are skipped. Later Apply calls win when
// files disagree, matching the "most recent delegation file" semantics
// of daily re-computation.
func (m *Mapper) Apply(f *File) {
	for _, d := range f.Delegations {
		if d.Status == "available" || d.Status == "reserved" {
			continue
		}
		last := d.Last()
		for a := d.First; ; a++ {
			m.override[a] = d.Registry
			if a == last {
				break
			}
		}
	}
}

// Region returns the service region for a. Reserved ASNs (AS_TRANS,
// documentation, private use, ...) never map to a region, regardless
// of registry contents. ASNs not covered by a delegation record fall
// back to the IANA block assignment.
func (m *Mapper) Region(a asn.ASN) Region {
	if a.IsReserved() {
		return RegionNone
	}
	if r, ok := m.override[a]; ok {
		return r
	}
	if m.iana != nil {
		return FromAuthority(m.iana.Authority(a))
	}
	return RegionNone
}

// Overrides returns the number of per-ASN delegation overrides applied.
func (m *Mapper) Overrides() int { return len(m.override) }
