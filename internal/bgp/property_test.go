package bgp

import (
	"testing"
	"testing/quick"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/topogen"
)

// Property: over arbitrary generated worlds, every collector path is
// loop-free and valley-free, and every observed link exists in the
// ground truth. This is the simulator's core soundness contract — an
// export-rule bug shows up here immediately.
func TestPropagationSoundnessProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		cfg := topogen.DefaultConfig(seed).Scaled(300)
		w, err := topogen.Generate(cfg)
		if err != nil {
			return false
		}
		sim := NewSimulator(w.Graph)
		ps := sim.Propagate(w.ASNs, w.VPs)
		if ps.Len() == 0 {
			return false
		}
		ok := true
		ps.ForEach(func(p asgraph.Path) {
			if p.HasLoop() {
				ok = false
			}
			if len(p) > 1 && !p.ValleyFree(w.Graph) {
				ok = false
			}
			for i := 0; i+1 < len(p); i++ {
				if _, found := w.Graph.Rel(p[i], p[i+1]); !found {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: partial-transit customers' origins are never reachable
// from vantage points outside the provider's customer cone through
// that provider, for arbitrary worlds.
func TestPartialTransitContainmentProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		cfg := topogen.DefaultConfig(seed).Scaled(300)
		w, err := topogen.Generate(cfg)
		if err != nil {
			return false
		}
		sim := NewSimulator(w.Graph)
		ps := sim.Propagate(w.ASNs, w.VPs)
		ok := true
		ps.ForEach(func(p asgraph.Path) {
			p.Triplets(func(left, mid, right asn.ASN) {
				r, found := w.Graph.Rel(mid, right)
				if !found || r.Type != asgraph.P2C || r.Provider != mid || !r.PartialTransit {
					return
				}
				// left received a partial customer's route from mid:
				// left must be mid's customer (or sibling).
				lr, found := w.Graph.Rel(left, mid)
				if !found {
					ok = false
					return
				}
				legit := lr.Type == asgraph.S2S ||
					(lr.Type == asgraph.P2C && lr.Provider == mid)
				if !legit {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
