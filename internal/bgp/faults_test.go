package bgp

import (
	"context"
	"errors"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/resilience"
)

func smallSim(t *testing.T) (*Simulator, []asn.ASN, []asn.ASN) {
	t.Helper()
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(2, 20, asgraph.P2CRel(2))
	g.MustSetRel(10, 100, asgraph.P2CRel(10))
	g.MustSetRel(20, 200, asgraph.P2CRel(20))
	return NewSimulator(g), g.ASes(), []asn.ASN{100, 200}
}

// TestPropagateContextContainsPanic: a panic inside a propagation
// worker must surface as a typed StageError with the recovered stack,
// not crash the caller, and must cancel the sibling workers.
func TestPropagateContextContainsPanic(t *testing.T) {
	defer resilience.ClearFaults()
	resilience.InjectAt("bgp.propagate", resilience.Fault{Kind: resilience.KindPanic})
	sim, origins, vps := smallSim(t)
	ps, err := sim.PropagateContext(context.Background(), origins, vps)
	if err == nil {
		t.Fatal("injected panic did not surface")
	}
	if ps != nil {
		t.Error("path set returned alongside error")
	}
	var se *resilience.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *resilience.StageError", err, err)
	}
	if se.Stage != "bgp.propagate" || se.Kind != resilience.KindPanic {
		t.Errorf("stage/kind = %s/%s", se.Stage, se.Kind)
	}
	if len(se.Stack) == 0 {
		t.Error("no recovered stack")
	}
}

// TestPropagateContextInjectedError: an error fault degrades the
// propagation without a panic.
func TestPropagateContextInjectedError(t *testing.T) {
	defer resilience.ClearFaults()
	resilience.InjectAt("bgp.propagate", resilience.Fault{Kind: resilience.KindError})
	sim, origins, vps := smallSim(t)
	if _, err := sim.PropagateContext(context.Background(), origins, vps); err == nil {
		t.Fatal("injected error did not surface")
	}
}

// TestPropagateContextCanceled: a pre-canceled context yields no
// paths and the context's error.
func TestPropagateContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim, origins, vps := smallSim(t)
	if _, err := sim.PropagateContext(ctx, origins, vps); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPropagateMatchesPropagateContext: the fault-free context path
// returns exactly what the Must-style wrapper returns.
func TestPropagateMatchesPropagateContext(t *testing.T) {
	sim, origins, vps := smallSim(t)
	a := sim.Propagate(origins, vps)
	b, err := sim.PropagateContext(context.Background(), origins, vps)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("path counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i).String() != b.At(i).String() {
			t.Errorf("path %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
}
