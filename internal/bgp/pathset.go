// Package bgp implements an AS-level BGP route-propagation simulator
// with Gao-Rexford export policies, deterministic route selection,
// partial-transit export restrictions, and route-collector vantage
// points. It produces the AS-path sets that relationship-inference
// algorithms and the community-based validation extractor consume.
//
// The model follows the standard routing-tree simulation used in
// interdomain routing studies: for every origin, each AS selects one
// best route preferring customer-learned over peer-learned over
// provider-learned routes, then shorter AS paths, then the lowest
// next-hop ASN. Export follows Gao-Rexford: routes learned from
// customers (and own routes) are exported to everyone; routes learned
// from peers or providers are exported to customers only. Sibling
// links are transparent: siblings exchange all routes.
package bgp

import (
	"breval/internal/asgraph"
	"breval/internal/asn"
)

// PathSet is a compact arena of AS paths. Paths are stored
// back-to-back in one buffer to avoid per-path allocations; At returns
// views into the arena.
type PathSet struct {
	buf  []asn.ASN
	offs []uint32

	// SkippedOrigins and SkippedVPs count requested origins and
	// vantage points the producing propagation dropped because they
	// were absent from the simulator's graph — coverage the path set
	// silently lacks. PropagateContext populates them; AppendSet sums
	// them across merged sets.
	SkippedOrigins int
	SkippedVPs     int
}

// NewPathSet returns an empty path set with capacity hints.
func NewPathSet(nPaths, nHops int) *PathSet {
	return &PathSet{
		buf:  make([]asn.ASN, 0, nHops),
		offs: append(make([]uint32, 0, nPaths+1), 0),
	}
}

// Append adds a copy of p to the set.
func (ps *PathSet) Append(p asgraph.Path) {
	ps.buf = append(ps.buf, p...)
	ps.offs = append(ps.offs, uint32(len(ps.buf)))
}

// AppendSet adds all paths of other to the set and accumulates its
// skipped-coverage counts.
func (ps *PathSet) AppendSet(other *PathSet) {
	base := uint32(len(ps.buf))
	ps.buf = append(ps.buf, other.buf...)
	for _, o := range other.offs[1:] {
		ps.offs = append(ps.offs, base+o)
	}
	ps.SkippedOrigins += other.SkippedOrigins
	ps.SkippedVPs += other.SkippedVPs
}

// Len returns the number of paths.
func (ps *PathSet) Len() int { return len(ps.offs) - 1 }

// At returns the i-th path as a view into the arena; the caller must
// not modify it.
func (ps *PathSet) At(i int) asgraph.Path {
	return asgraph.Path(ps.buf[ps.offs[i]:ps.offs[i+1]])
}

// ForEach calls fn for every path in insertion order.
func (ps *PathSet) ForEach(fn func(asgraph.Path)) {
	for i := 0; i < ps.Len(); i++ {
		fn(ps.At(i))
	}
}

// Links returns the set of distinct links appearing on any path —
// the "inferred links" universe of the paper (§4.1: all AS links
// visible in the snapshot).
func (ps *PathSet) Links() map[asgraph.Link]bool {
	links := make(map[asgraph.Link]bool)
	ps.ForEach(func(p asgraph.Path) {
		for i := 0; i+1 < len(p); i++ {
			links[asgraph.NewLink(p[i], p[i+1])] = true
		}
	})
	return links
}

// VPLinkCounts returns, per link, the number of distinct vantage
// points that observed it.
func (ps *PathSet) VPLinkCounts() map[asgraph.Link]int {
	seen := make(map[asgraph.Link]map[asn.ASN]bool)
	ps.ForEach(func(p asgraph.Path) {
		vp := p.VantagePoint()
		for i := 0; i+1 < len(p); i++ {
			l := asgraph.NewLink(p[i], p[i+1])
			m := seen[l]
			if m == nil {
				m = make(map[asn.ASN]bool, 4)
				seen[l] = m
			}
			m[vp] = true
		}
	})
	out := make(map[asgraph.Link]int, len(seen))
	for l, m := range seen {
		out[l] = len(m)
	}
	return out
}
