// Package bgp implements an AS-level BGP route-propagation simulator
// with Gao-Rexford export policies, deterministic route selection,
// partial-transit export restrictions, and route-collector vantage
// points. It produces the AS-path sets that relationship-inference
// algorithms and the community-based validation extractor consume.
//
// The model follows the standard routing-tree simulation used in
// interdomain routing studies: for every origin, each AS selects one
// best route preferring customer-learned over peer-learned over
// provider-learned routes, then shorter AS paths, then the lowest
// next-hop ASN. Export follows Gao-Rexford: routes learned from
// customers (and own routes) are exported to everyone; routes learned
// from peers or providers are exported to customers only. Sibling
// links are transparent: siblings exchange all routes.
package bgp

import (
	"errors"
	"fmt"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// ErrArenaOverflow is the typed error a PathSet append panics with
// when the hop arena would exceed the addressable limit. At xl scale
// the arena can pass what 32-bit offsets could index; offsets are
// 64-bit now, but the guard keeps a corrupted or adversarial append
// sequence from silently exhausting memory. Stage runners recover the
// panic into a *resilience.StageError, so pipelines see it as an
// ordinary stage failure satisfying errors.Is(err, ErrArenaOverflow).
var ErrArenaOverflow = errors.New("bgp: path arena exceeds addressable hop capacity")

// maxArenaHops bounds the hop column of one PathSet. A var, not a
// const, so the overflow guard is testable without allocating
// terabytes. 2^42 hops ≈ 17 TiB of column — far above any world this
// pipeline targets, far below where uint64 offsets would wrap.
var maxArenaHops = uint64(1) << 42

// PathSet is a packed columnar arena of AS paths. The three columns
// are the hop buffer (all paths back-to-back, 32-bit ASNs), the
// 64-bit offset column delimiting paths, and an explicit per-path
// vantage-point column (the collector-side first hop, kept separately
// so VP lookups never touch the hop column). At returns views into
// the arena; no per-path allocation ever happens.
//
// The zero value is an empty, usable set: decoders may start from
// &PathSet{} and Append into it. Len on a zero-value set is 0, not -1
// (the offset column is normalised lazily on first append).
type PathSet struct {
	hops []asn.ASN
	offs []uint64 // empty, or Len()+1 entries with a leading 0
	vps  []asn.ASN

	// SkippedOrigins and SkippedVPs count requested origins and
	// vantage points the producing propagation dropped because they
	// were absent from the simulator's graph — coverage the path set
	// silently lacks. PropagateContext populates them; AppendSet sums
	// them across merged sets.
	SkippedOrigins int
	SkippedVPs     int
}

// NewPathSet returns an empty path set with capacity hints.
func NewPathSet(nPaths, nHops int) *PathSet {
	return &PathSet{
		hops: make([]asn.ASN, 0, nHops),
		offs: append(make([]uint64, 0, nPaths+1), 0),
		vps:  make([]asn.ASN, 0, nPaths),
	}
}

// ensure normalises a zero-value set so the offset column carries its
// leading 0 before the first append.
func (ps *PathSet) ensure() {
	if len(ps.offs) == 0 {
		ps.offs = append(ps.offs, 0)
	}
}

// guard panics with ErrArenaOverflow when adding n hops would push the
// arena past the addressable limit.
func (ps *PathSet) guard(n int) {
	if uint64(len(ps.hops))+uint64(n) > maxArenaHops {
		panic(fmt.Errorf("%w: %d hops + %d", ErrArenaOverflow, len(ps.hops), n))
	}
}

// Append adds a copy of p to the set.
func (ps *PathSet) Append(p asgraph.Path) {
	ps.ensure()
	ps.guard(len(p))
	ps.hops = append(ps.hops, p...)
	ps.offs = append(ps.offs, uint64(len(ps.hops)))
	ps.vps = append(ps.vps, p.VantagePoint())
}

// AppendSet adds all paths of other to the set and accumulates its
// skipped-coverage counts.
func (ps *PathSet) AppendSet(other *PathSet) {
	ps.ensure()
	ps.guard(len(other.hops))
	base := uint64(len(ps.hops))
	ps.hops = append(ps.hops, other.hops...)
	if len(other.offs) > 0 {
		for _, o := range other.offs[1:] {
			ps.offs = append(ps.offs, base+o)
		}
	}
	ps.vps = append(ps.vps, other.vps...)
	ps.SkippedOrigins += other.SkippedOrigins
	ps.SkippedVPs += other.SkippedVPs
}

// Len returns the number of paths. A zero-value set has length 0.
func (ps *PathSet) Len() int {
	if len(ps.offs) == 0 {
		return 0
	}
	return len(ps.offs) - 1
}

// NumHops returns the total size of the hop column.
func (ps *PathSet) NumHops() int { return len(ps.hops) }

// At returns the i-th path as a view into the arena; the caller must
// not modify it.
func (ps *PathSet) At(i int) asgraph.Path {
	return asgraph.Path(ps.hops[ps.offs[i]:ps.offs[i+1]])
}

// VantagePoint returns the vantage point (first hop) of the i-th path
// from the VP column, without touching the hop column.
func (ps *PathSet) VantagePoint(i int) asn.ASN { return ps.vps[i] }

// ForEach calls fn for every path in insertion order.
func (ps *PathSet) ForEach(fn func(asgraph.Path)) {
	for i := 0; i < ps.Len(); i++ {
		fn(ps.At(i))
	}
}
