// Package bgp implements an AS-level BGP route-propagation simulator
// with Gao-Rexford export policies, deterministic route selection,
// partial-transit export restrictions, and route-collector vantage
// points. It produces the AS-path sets that relationship-inference
// algorithms and the community-based validation extractor consume.
//
// The model follows the standard routing-tree simulation used in
// interdomain routing studies: for every origin, each AS selects one
// best route preferring customer-learned over peer-learned over
// provider-learned routes, then shorter AS paths, then the lowest
// next-hop ASN. Export follows Gao-Rexford: routes learned from
// customers (and own routes) are exported to everyone; routes learned
// from peers or providers are exported to customers only. Sibling
// links are transparent: siblings exchange all routes.
package bgp

import (
	"slices"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// PathSet is a compact arena of AS paths. Paths are stored
// back-to-back in one buffer to avoid per-path allocations; At returns
// views into the arena.
type PathSet struct {
	buf  []asn.ASN
	offs []uint32

	// SkippedOrigins and SkippedVPs count requested origins and
	// vantage points the producing propagation dropped because they
	// were absent from the simulator's graph — coverage the path set
	// silently lacks. PropagateContext populates them; AppendSet sums
	// them across merged sets.
	SkippedOrigins int
	SkippedVPs     int
}

// NewPathSet returns an empty path set with capacity hints.
func NewPathSet(nPaths, nHops int) *PathSet {
	return &PathSet{
		buf:  make([]asn.ASN, 0, nHops),
		offs: append(make([]uint32, 0, nPaths+1), 0),
	}
}

// Append adds a copy of p to the set.
func (ps *PathSet) Append(p asgraph.Path) {
	ps.buf = append(ps.buf, p...)
	ps.offs = append(ps.offs, uint32(len(ps.buf)))
}

// AppendSet adds all paths of other to the set and accumulates its
// skipped-coverage counts.
func (ps *PathSet) AppendSet(other *PathSet) {
	base := uint32(len(ps.buf))
	ps.buf = append(ps.buf, other.buf...)
	for _, o := range other.offs[1:] {
		ps.offs = append(ps.offs, base+o)
	}
	ps.SkippedOrigins += other.SkippedOrigins
	ps.SkippedVPs += other.SkippedVPs
}

// Len returns the number of paths.
func (ps *PathSet) Len() int { return len(ps.offs) - 1 }

// At returns the i-th path as a view into the arena; the caller must
// not modify it.
func (ps *PathSet) At(i int) asgraph.Path {
	return asgraph.Path(ps.buf[ps.offs[i]:ps.offs[i+1]])
}

// ForEach calls fn for every path in insertion order.
func (ps *PathSet) ForEach(fn func(asgraph.Path)) {
	for i := 0; i < ps.Len(); i++ {
		fn(ps.At(i))
	}
}

// packedLink packs a canonical link into one comparable word, smaller
// ASN in the high half.
func packedLink(a, b asn.ASN) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Links returns the set of distinct links appearing on any path —
// the "inferred links" universe of the paper (§4.1: all AS links
// visible in the snapshot). Links are collected as packed words and
// sorted-and-deduped before the single map materialisation, avoiding
// one hash probe per hop.
func (ps *PathSet) Links() map[asgraph.Link]bool {
	packed := make([]uint64, 0, len(ps.buf))
	ps.ForEach(func(p asgraph.Path) {
		for i := 0; i+1 < len(p); i++ {
			packed = append(packed, packedLink(p[i], p[i+1]))
		}
	})
	slices.Sort(packed)
	packed = slices.Compact(packed)
	links := make(map[asgraph.Link]bool, len(packed))
	for _, k := range packed {
		links[asgraph.Link{A: asn.ASN(k >> 32), B: asn.ASN(k)}] = true
	}
	return links
}

// VPLinkCounts returns, per link, the number of distinct vantage
// points that observed it. Instead of one inner map per link, the
// (link, vantage point) pairs are collected flat, sorted, and counted
// in one pass.
func (ps *PathSet) VPLinkCounts() map[asgraph.Link]int {
	type pair struct {
		link uint64
		vp   asn.ASN
	}
	pairs := make([]pair, 0, len(ps.buf))
	ps.ForEach(func(p asgraph.Path) {
		vp := p.VantagePoint()
		for i := 0; i+1 < len(p); i++ {
			pairs = append(pairs, pair{packedLink(p[i], p[i+1]), vp})
		}
	})
	slices.SortFunc(pairs, func(x, y pair) int {
		if x.link != y.link {
			if x.link < y.link {
				return -1
			}
			return 1
		}
		if x.vp != y.vp {
			if x.vp < y.vp {
				return -1
			}
			return 1
		}
		return 0
	})
	out := make(map[asgraph.Link]int)
	for i := 0; i < len(pairs); {
		l := pairs[i].link
		distinct := 0
		for i < len(pairs) && pairs[i].link == l {
			vp := pairs[i].vp
			distinct++
			for i < len(pairs) && pairs[i].link == l && pairs[i].vp == vp {
				i++
			}
		}
		out[asgraph.Link{A: asn.ASN(l >> 32), B: asn.ASN(l)}] = distinct
	}
	return out
}
