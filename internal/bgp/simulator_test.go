package bgp

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/topogen"
)

// hierarchy builds the reference topology used across the tests:
//
//	     1 --- 2      (clique, p2p)
//	    / \     \
//	  10   11    12   (transit; 10--11 peer)
//	  /\    |     |
//	100 101 102  103  (stubs; 100~101 siblings)
func hierarchy() *asgraph.Graph {
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(1, 11, asgraph.P2CRel(1))
	g.MustSetRel(2, 12, asgraph.P2CRel(2))
	g.MustSetRel(10, 100, asgraph.P2CRel(10))
	g.MustSetRel(10, 101, asgraph.P2CRel(10))
	g.MustSetRel(11, 102, asgraph.P2CRel(11))
	g.MustSetRel(12, 103, asgraph.P2CRel(12))
	g.MustSetRel(10, 11, asgraph.P2PRel())
	g.MustSetRel(100, 101, asgraph.S2SRel())
	return g
}

func allASNs(g *asgraph.Graph) []asn.ASN { return g.ASes() }

func pathsBetween(ps *PathSet, vp, origin asn.ASN) []asgraph.Path {
	var out []asgraph.Path
	ps.ForEach(func(p asgraph.Path) {
		if p.VantagePoint() == vp && p.Origin() == origin {
			out = append(out, p)
		}
	})
	return out
}

func pathEq(p asgraph.Path, want ...asn.ASN) bool {
	if len(p) != len(want) {
		return false
	}
	for i := range p {
		if p[i] != want[i] {
			return false
		}
	}
	return true
}

func TestPropagateKnownPaths(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	ps := sim.Propagate(allASNs(g), []asn.ASN{100, 103, 1})

	// 100 -> 103 must cross the clique peering.
	got := pathsBetween(ps, 100, 103)
	if len(got) != 1 || !pathEq(got[0], 100, 10, 1, 2, 12, 103) {
		t.Errorf("path 100->103 = %v", got)
	}
	// Sibling shortcut: 100 reaches 101 directly.
	got = pathsBetween(ps, 100, 101)
	if len(got) != 1 || !pathEq(got[0], 100, 101) {
		t.Errorf("path 100->101 = %v", got)
	}
	// Customer-route preference: VP 1 reaches 102 via its customer 11
	// even though a (longer or equal) peer path could exist.
	got = pathsBetween(ps, 1, 102)
	if len(got) != 1 || !pathEq(got[0], 1, 11, 102) {
		t.Errorf("path 1->102 = %v", got)
	}
	// Each VP has a route to itself (the trivial path).
	got = pathsBetween(ps, 1, 1)
	if len(got) != 1 || !pathEq(got[0], 1) {
		t.Errorf("path 1->1 = %v", got)
	}
}

func TestPropagatePeerRoutePreferredOverProvider(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	ps := sim.Propagate([]asn.ASN{102}, []asn.ASN{100})
	// 10 prefers the peer route via 11 over the provider route via 1.
	got := pathsBetween(ps, 100, 102)
	if len(got) != 1 || !pathEq(got[0], 100, 10, 11, 102) {
		t.Errorf("path 100->102 = %v", got)
	}
}

func TestPropagateAllPathsValleyFree(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	ps := sim.Propagate(allASNs(g), allASNs(g))
	n := 0
	ps.ForEach(func(p asgraph.Path) {
		n++
		if len(p) > 1 && !p.ValleyFree(g) {
			t.Errorf("non-valley-free path %v", p)
		}
		if p.HasLoop() {
			t.Errorf("looping path %v", p)
		}
	})
	if n == 0 {
		t.Fatal("no paths produced")
	}
}

func TestPropagateFullVisibilityOnCleanGraph(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	all := allASNs(g)
	ps := sim.Propagate(all, all)
	// Without export restrictions every AS reaches every origin.
	want := len(all) * len(all)
	if ps.Len() != want {
		t.Errorf("got %d paths, want %d", ps.Len(), want)
	}
}

func TestPartialTransitHidesRoutesFromPeers(t *testing.T) {
	g := hierarchy()
	// 11 becomes a partial-transit customer of 1: 1 must not export
	// 11's routes (or its customers') to its peer 2.
	r, _ := g.Rel(1, 11)
	r.PartialTransit = true
	g.MustSetRel(1, 11, r)

	sim := NewSimulator(g)
	all := allASNs(g)
	ps := sim.Propagate([]asn.ASN{102, 11}, all)

	for _, origin := range []asn.ASN{102, 11} {
		for _, vp := range []asn.ASN{2, 12, 103} {
			if got := pathsBetween(ps, vp, origin); len(got) != 0 {
				t.Errorf("VP %d should not reach %d (partial transit), got %v", vp, origin, got)
			}
		}
	}
	// The provider itself and its customers still have routes.
	if got := pathsBetween(ps, 1, 102); len(got) != 1 || !pathEq(got[0], 1, 11, 102) {
		t.Errorf("path 1->102 = %v", got)
	}
	// 10 hears 102 via its peering with 11, not via 1.
	if got := pathsBetween(ps, 10, 102); len(got) != 1 || !pathEq(got[0], 10, 11, 102) {
		t.Errorf("path 10->102 = %v", got)
	}
	// Crucially for §6.1: no path contains the triplet 2|1|11 — the
	// clique triplet ASRank would need to call 1->11 a P2C link.
	ps2 := sim.Propagate(all, all)
	ps2.ForEach(func(p asgraph.Path) {
		p.Triplets(func(l, m, rr asn.ASN) {
			if l == 2 && m == 1 && (rr == 11 || rr == 102) {
				t.Errorf("forbidden clique triplet %d|%d|%d on %v", l, m, rr, p)
			}
		})
	})
}

func TestPropagateDeterministic(t *testing.T) {
	cfg := topogen.DefaultConfig(21).Scaled(400)
	w, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(w.Graph)
	ps1 := sim.Propagate(w.ASNs, w.VPs)
	ps2 := sim.Propagate(w.ASNs, w.VPs)
	if ps1.Len() != ps2.Len() {
		t.Fatalf("path counts differ: %d vs %d", ps1.Len(), ps2.Len())
	}
	for i := 0; i < ps1.Len(); i++ {
		if ps1.At(i).String() != ps2.At(i).String() {
			t.Fatalf("path %d differs: %v vs %v", i, ps1.At(i), ps2.At(i))
		}
	}
}

func TestPropagateSyntheticWorldInvariants(t *testing.T) {
	cfg := topogen.DefaultConfig(22).Scaled(500)
	w, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(w.Graph)
	ps := sim.Propagate(w.ASNs, w.VPs)
	if ps.Len() == 0 {
		t.Fatal("no paths")
	}
	bad := 0
	ps.ForEach(func(p asgraph.Path) {
		if p.HasLoop() {
			t.Fatalf("loop in %v", p)
		}
		if len(p) > 1 && !p.ValleyFree(w.Graph) {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d non-valley-free paths", bad)
	}
	// Visibility sanity: the observed link universe is a subset of
	// ground truth and contains every clique link.
	links := pathLinks(ps)
	for l := range links {
		if _, ok := w.Graph.RelOn(l); !ok {
			t.Errorf("observed link %v not in ground truth", l)
		}
	}
	for i, a := range w.Clique {
		for _, b := range w.Clique[i+1:] {
			if !links[asgraph.NewLink(a, b)] {
				t.Errorf("clique link %d-%d invisible", a, b)
			}
		}
	}
}

func TestVPLinkCounts(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	ps := sim.Propagate(allASNs(g), []asn.ASN{100, 103})
	counts := pathVPLinkCounts(ps)
	// The 1-2 clique link is crossed by both VPs.
	if got := counts[asgraph.NewLink(1, 2)]; got != 2 {
		t.Errorf("VP count for 1-2 = %d, want 2", got)
	}
	// The 12-103 access link: VP 103 uses it for everything; VP 100
	// crosses it only toward 103.
	if got := counts[asgraph.NewLink(12, 103)]; got != 2 {
		t.Errorf("VP count for 12-103 = %d, want 2", got)
	}
}

func TestPathSetArena(t *testing.T) {
	ps := NewPathSet(2, 8)
	ps.Append(asgraph.Path{1, 2, 3})
	ps.Append(asgraph.Path{4, 5})
	if ps.Len() != 2 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if !pathEq(ps.At(0), 1, 2, 3) || !pathEq(ps.At(1), 4, 5) {
		t.Errorf("At() returned %v / %v", ps.At(0), ps.At(1))
	}
	other := NewPathSet(1, 4)
	other.Append(asgraph.Path{7, 8, 9})
	ps.AppendSet(other)
	if ps.Len() != 3 || !pathEq(ps.At(2), 7, 8, 9) {
		t.Errorf("AppendSet: %v", ps.At(2))
	}
	links := pathLinks(ps)
	if !links[asgraph.NewLink(1, 2)] || !links[asgraph.NewLink(8, 9)] || len(links) != 5 {
		t.Errorf("Links = %v", links)
	}
}

func TestPropagateUnknownVPsAndOrigins(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	ps := sim.Propagate([]asn.ASN{999}, []asn.ASN{888})
	if ps.Len() != 0 {
		t.Errorf("unknown origin/VP produced %d paths", ps.Len())
	}
}
