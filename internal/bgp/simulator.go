package bgp

import (
	"cmp"
	"context"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/govern"
	"breval/internal/obs"
	"breval/internal/resilience"
)

// Route preference classes, higher is preferred. The origin's own
// route ranks above everything.
type routeClass uint8

const (
	clsNone routeClass = iota
	clsProvider
	clsPeer
	clsCustomer
	clsOrigin
)

// neighbor is a compact adjacency entry using dense AS indices.
type neighbor struct {
	id      int32
	role    asgraph.Role
	partial bool // partial-transit customer edge (owner is the provider)
}

// tiebreak deterministically ranks equally-preferred next hops. Real
// routers break ties with IGP distance, router IDs and local policy,
// which looks arbitrary per (chooser, candidate) pair and — crucially
// — differs between choosers. A fixed global order (e.g. lowest ASN)
// would funnel every AS's equal-cost choice through the same next hop
// and starve all other links of path evidence.
func tiebreak(chooser, candidate int32) uint32 {
	h := uint32(chooser)*2654435761 ^ uint32(candidate)*40503
	h ^= h >> 15
	h *= 2246822519
	h ^= h >> 13
	return h
}

// Simulator propagates routes over a relationship graph. It is safe
// for concurrent use after construction.
type Simulator struct {
	asns []asn.ASN
	idx  map[asn.ASN]int32
	nbr  [][]neighbor
}

// NewSimulator compiles g into a dense simulator.
func NewSimulator(g *asgraph.Graph) *Simulator {
	asns := g.ASes()
	idx := make(map[asn.ASN]int32, len(asns))
	for i, a := range asns {
		idx[a] = int32(i)
	}
	nbr := make([][]neighbor, len(asns))
	for i, a := range asns {
		ns := g.Neighbors(a)
		row := make([]neighbor, 0, len(ns))
		for _, n := range ns {
			row = append(row, neighbor{
				id:      idx[n.ASN],
				role:    n.Role,
				partial: n.PartialTransit,
			})
		}
		// Deterministic adjacency order: ascending neighbor ASN.
		slices.SortFunc(row, func(x, y neighbor) int { return int(x.id) - int(y.id) })
		nbr[i] = row
	}
	return &Simulator{asns: asns, idx: idx, nbr: nbr}
}

// NumASes returns the number of ASes known to the simulator.
func (s *Simulator) NumASes() int { return len(s.asns) }

// state holds per-origin propagation state, reused across origins by
// one worker.
type state struct {
	class      []routeClass
	dist       []uint16
	next       []int32 // index of the AS the route was learned from
	restricted []bool  // best route must not be exported to peers/providers
	stamp      []uint32
	cur        uint32
	frontier   []int32
	nextFront  []int32
	buckets    [][]int32
}

func newState(n int) *state {
	return &state{
		class:      make([]routeClass, n),
		dist:       make([]uint16, n),
		next:       make([]int32, n),
		restricted: make([]bool, n),
		stamp:      make([]uint32, n),
	}
}

// reset prepares the state for a new origin using epoch stamps, so no
// O(n) clearing is needed.
func (st *state) reset() { st.cur++ }

func (st *state) fresh(i int32) bool { return st.stamp[i] != st.cur }

func (st *state) set(i int32, c routeClass, d uint16, nh int32, restr bool) {
	st.stamp[i] = st.cur
	st.class[i] = c
	st.dist[i] = d
	st.next[i] = nh
	st.restricted[i] = restr
}

func (st *state) has(i int32) bool { return st.stamp[i] == st.cur }

// Propagate computes, for every origin, the best route of every
// vantage point and returns the resulting VP→origin AS paths.
// Unreachable (vp, origin) pairs yield no path. The computation is
// parallel across origins and fully deterministic.
//
// Propagate is the Must-style convenience for tests and tools running
// without cancellation or fault injection: it panics if the
// propagation fails, which cannot happen under a background context
// with no injected faults. Pipelines use PropagateContext.
func (s *Simulator) Propagate(origins, vps []asn.ASN) *PathSet {
	ps, err := s.PropagateContext(context.Background(), origins, vps)
	if err != nil {
		panic(err)
	}
	return ps
}

// PropagateContext is Propagate with fault isolation: a panic in any
// propagation worker is recovered, the sibling workers are cancelled,
// and the failure surfaces as a *resilience.StageError (stage
// "bgp.propagate") carrying the recovered stack. Context cancellation
// is honoured between origins.
//
// Origins and vantage points absent from the simulator's graph are
// skipped, counted on the returned PathSet (SkippedOrigins/SkippedVPs)
// and in the obs counters bgp.skipped_origins / bgp.skipped_vps, so an
// experiment that quietly loses coverage is visible in its metrics.
//
// PropagateContext is the monolithic convenience over
// PropagateBlocks: it merges every per-origin block into one arena.
// Callers that can consume paths incrementally (the streaming feature
// extractor) should use PropagateBlocks directly and avoid holding
// two copies of the path universe.
func (s *Simulator) PropagateContext(ctx context.Context, origins, vps []asn.ASN) (*PathSet, error) {
	total := NewPathSet(len(origins)*len(vps), len(origins)*len(vps)*5)
	so, sv, err := s.PropagateBlocks(ctx, origins, vps, func(blk *PathSet) error {
		total.AppendSet(blk)
		return nil
	})
	if err != nil {
		return nil, err
	}
	total.SkippedOrigins = so
	total.SkippedVPs = sv
	return total, nil
}

// PropagateBlocks streams propagation results: for every origin
// present in the graph, the vantage-point paths of that origin are
// emitted as one PathSet block to sink, strictly in origin (request)
// order, on the caller's goroutine. Workers run ahead under a bounded
// reorder window — at most a few blocks per worker exist at once — so
// downstream consumers see the exact byte order of the monolithic
// PropagateContext merge while peak memory stays proportional to the
// window, not the world.
//
// A sink error cancels the remaining workers and is returned after
// the pool drains. The returned counts are the requested origins and
// vantage points skipped because they are absent from the graph.
func (s *Simulator) PropagateBlocks(ctx context.Context, origins, vps []asn.ASN, sink func(*PathSet) error) (skippedOrigins, skippedVPs int, err error) {
	col := obs.From(ctx)

	// Under a governor the stage is supervised: every worker beats the
	// heartbeat once per origin (through the resilience.Checkpoint
	// hook), and per-origin permits from the shared limiter make the
	// effective fan-out track memory pressure. Without a governor both
	// are nil and free.
	ctx, hb := govern.Supervise(ctx, "bgp.propagate", 0)
	defer hb.Stop()
	lim := govern.From(ctx).Limiter()

	vpIdx := make([]int32, 0, len(vps))
	for _, v := range vps {
		if i, ok := s.idx[v]; ok {
			vpIdx = append(vpIdx, i)
		}
	}
	slices.Sort(vpIdx)

	type job struct {
		pos    int
		origin int32
	}
	jobs := make([]job, 0, len(origins))
	for pos, o := range origins {
		if i, ok := s.idx[o]; ok {
			jobs = append(jobs, job{pos: pos, origin: i})
		}
	}
	skippedOrigins = len(origins) - len(jobs)
	skippedVPs = len(vps) - len(vpIdx)
	// Always registered, even at zero: "measured and zero" must be
	// distinguishable from "not measured" in the metrics document.
	col.Add("bgp.skipped_origins", int64(skippedOrigins))
	col.Add("bgp.skipped_vps", int64(skippedVPs))
	col.Add("bgp.origins_requested", int64(len(origins)))
	col.Add("bgp.vps_requested", int64(len(vps)))

	nw := runtime.GOMAXPROCS(0)
	if nw > len(jobs) {
		nw = len(jobs)
	}
	if nw < 1 {
		nw = 1
	}
	col.SetGauge("bgp.workers", float64(nw))

	// A failing worker cancels its siblings; the first error wins.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	wctx, wspan := obs.StartSpan(ctx, "bgp.propagate.workers")

	// The reorder window bounds how far workers may run ahead of the
	// in-order delivery point: each in-flight block holds one slot from
	// acquisition until the sink has consumed it. A few blocks per
	// worker keeps everyone busy across uneven origin costs while peak
	// retained memory stays O(window), not O(world).
	window := 4 * nw
	if window < 8 {
		window = 8
	}
	slots := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		slots <- struct{}{}
	}
	type block struct {
		idx int
		ps  *PathSet
	}
	resCh := make(chan block, window)

	var wg sync.WaitGroup
	ch := make(chan int, len(jobs))
	for j := range jobs {
		ch <- j
	}
	close(ch)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					fail(resilience.NewPanic("bgp.propagate", v, debug.Stack()))
				}
			}()
			// Per-worker stats accumulate locally and flush once at
			// worker exit, keeping the collector lock off the per-origin
			// path.
			var ws workerStats
			defer ws.flush(col)
			st := newState(len(s.asns))
			for j := range ch {
				if err := resilience.Checkpoint(wctx, "bgp.propagate"); err != nil {
					fail(err)
					return
				}
				select {
				case <-slots:
				case <-wctx.Done():
					fail(wctx.Err())
					return
				}
				if err := lim.Acquire(wctx); err != nil {
					fail(err)
					return
				}
				ps := NewPathSet(len(vpIdx), len(vpIdx)*5)
				func() {
					// The permit must survive a panicking origin: the
					// worker's recover converts the panic to a typed
					// error, and a leaked permit would shrink capacity
					// for the stage retry.
					defer lim.Release()
					s.propagateOne(st, jobs[j].origin, vpIdx, ps, &ws)
				}()
				ws.origins++
				ws.paths += int64(ps.Len())
				select {
				case resCh <- block{idx: j, ps: ps}:
				case <-wctx.Done():
					fail(wctx.Err())
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// In-order delivery on the caller's goroutine. Blocks arriving out
	// of order park in pending until their turn; slots free only after
	// delivery, which is what bounds worker run-ahead.
	pending := make(map[int]*PathSet, window)
	next := 0
	for b := range resCh {
		pending[b.idx] = b.ps
		for {
			ps, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if !failed() && ctx.Err() == nil {
				if serr := sink(ps); serr != nil {
					fail(serr)
				}
			}
			slots <- struct{}{}
		}
	}
	wspan.End()
	if firstErr != nil {
		return skippedOrigins, skippedVPs, hb.Resolve(firstErr)
	}
	if err := ctx.Err(); err != nil {
		return skippedOrigins, skippedVPs, hb.Resolve(err)
	}
	return skippedOrigins, skippedVPs, nil
}

// workerStats is one propagation worker's locally-accumulated
// observability state. flush folds it into the collector exactly once,
// so hot loops never take the collector lock; the resulting counters
// are schedule-independent (sums and commutative histogram merges).
type workerStats struct {
	origins  int64 // origins this worker propagated
	paths    int64 // VP paths it emitted
	frontier obs.Histogram
}

func (ws *workerStats) flush(col *obs.Collector) {
	if col == nil {
		return
	}
	col.Add("bgp.origins_propagated", ws.origins)
	col.Add("bgp.paths_emitted", ws.paths)
	col.Observe("bgp.worker_origins", ws.origins)
	col.MergeHistogram("bgp.frontier_size", &ws.frontier)
}

// propagateOne computes the routing state for a single origin and
// appends the VP paths to ps, recording frontier sizes into ws.
func (s *Simulator) propagateOne(st *state, origin int32, vpIdx []int32, ps *PathSet, ws *workerStats) {
	st.reset()
	st.set(origin, clsOrigin, 0, -1, false)

	// Phase 1 — customer routes travel uphill. Layered BFS over
	// provider and sibling edges; restricted routes stop climbing.
	// Within a layer, equally-long announcements are resolved by the
	// per-pair tiebreak.
	st.frontier = st.frontier[:0]
	st.frontier = append(st.frontier, origin)
	for len(st.frontier) > 0 {
		st.nextFront = st.nextFront[:0]
		for _, x := range st.frontier {
			if st.restricted[x] && st.class[x] != clsOrigin {
				continue // not exported up or across
			}
			d := st.dist[x] + 1
			for _, n := range s.nbr[x] {
				up := n.role == asgraph.RoleProvider || n.role == asgraph.RoleSibling
				if !up {
					continue
				}
				if st.has(n.id) {
					// Same-layer tie: prefer the tiebreak-best
					// announcer.
					if st.dist[n.id] != d ||
						tiebreak(n.id, x) >= tiebreak(n.id, st.next[n.id]) {
						continue
					}
					restr := st.restricted[x] || s.partialEdge(n.id, x)
					st.set(n.id, clsCustomer, d, x, restr)
					continue // already on the next frontier
				}
				// Does the provider see x over a partial-transit edge?
				restr := st.restricted[x] || s.partialEdge(n.id, x)
				st.set(n.id, clsCustomer, d, x, restr)
				st.nextFront = append(st.nextFront, n.id)
			}
		}
		st.frontier, st.nextFront = st.nextFront, st.frontier
		slices.Sort(st.frontier)
		if len(st.frontier) > 0 {
			ws.frontier.Observe(int64(len(st.frontier)))
		}
	}

	// Phase 2 — one peer hop. Collect announcements from every AS
	// holding an exportable customer/origin route, then apply them.
	type peerOffer struct {
		to, from int32
		dist     uint16
	}
	var offers []peerOffer
	for i := range s.asns {
		x := int32(i)
		if !st.has(x) {
			continue
		}
		if c := st.class[x]; c != clsCustomer && c != clsOrigin {
			continue
		}
		if st.restricted[x] && st.class[x] != clsOrigin {
			continue
		}
		d := st.dist[x] + 1
		for _, n := range s.nbr[x] {
			if n.role != asgraph.RolePeer {
				continue
			}
			if st.has(n.id) { // already has a customer/origin route
				continue
			}
			offers = append(offers, peerOffer{to: n.id, from: x, dist: d})
		}
	}
	slices.SortFunc(offers, func(a, b peerOffer) int {
		if a.to != b.to {
			return int(a.to) - int(b.to)
		}
		if a.dist != b.dist {
			return int(a.dist) - int(b.dist)
		}
		return cmp.Compare(tiebreak(a.to, a.from), tiebreak(b.to, b.from))
	})
	for _, o := range offers {
		if st.has(o.to) {
			continue // first (best) offer wins
		}
		st.set(o.to, clsPeer, o.dist, o.from, false)
	}

	// Phase 3 — downhill. Dijkstra over customer/sibling edges with a
	// bucket queue keyed by path length; every routed AS seeds the
	// queue, provider-class routes chain further down.
	if st.buckets == nil {
		st.buckets = make([][]int32, 64)
	}
	for i := range st.buckets {
		st.buckets[i] = st.buckets[i][:0]
	}
	maxd := 0
	push := func(x int32) {
		d := int(st.dist[x])
		for d >= len(st.buckets) {
			st.buckets = append(st.buckets, nil)
		}
		st.buckets[d] = append(st.buckets[d], x)
		if d > maxd {
			maxd = d
		}
	}
	for i := range s.asns {
		x := int32(i)
		if st.has(x) {
			push(x)
		}
	}
	for d := 0; d <= maxd; d++ {
		layer := st.buckets[d]
		slices.Sort(layer)
		for _, x := range layer {
			if int(st.dist[x]) != d {
				continue // stale entry
			}
			nd := uint16(d + 1)
			for _, n := range s.nbr[x] {
				down := n.role == asgraph.RoleCustomer || n.role == asgraph.RoleSibling
				if !down {
					continue
				}
				// Partial transit restricts both directions: the
				// provider gives such a customer only routes from its
				// own customer cone, never peer- or provider-learned
				// ones.
				if n.partial && st.class[x] != clsCustomer && st.class[x] != clsOrigin {
					continue
				}
				if st.has(n.id) {
					// Existing route is a better class or shorter —
					// except a same-length provider route, where the
					// tiebreak decides.
					if st.class[n.id] != clsProvider || st.dist[n.id] != nd ||
						tiebreak(n.id, x) >= tiebreak(n.id, st.next[n.id]) {
						continue
					}
					st.set(n.id, clsProvider, nd, x, false)
					continue // already queued at this distance
				}
				st.set(n.id, clsProvider, nd, x, false)
				push(n.id)
			}
		}
	}

	// Emit VP paths by walking next-hop pointers.
	var path asgraph.Path
	for _, v := range vpIdx {
		if !st.has(v) {
			continue
		}
		path = path[:0]
		x := v
		for x != -1 {
			path = append(path, s.asns[x])
			if st.class[x] == clsOrigin {
				break
			}
			x = st.next[x]
		}
		ps.Append(path)
	}
}

// partialEdge reports whether provider p sees child c over a
// partial-transit edge.
func (s *Simulator) partialEdge(p, c int32) bool {
	row := s.nbr[p]
	// Binary search by neighbor id.
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid].id < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo].id == c {
		return row[lo].role == asgraph.RoleCustomer && row[lo].partial
	}
	return false
}
