package bgp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/govern"
)

// pathLinks rebuilds the distinct-link universe of a path set. The
// production pipeline gets this from intern.Build; tests keep this
// independent map-based recomputation as an oracle.
func pathLinks(ps *PathSet) map[asgraph.Link]bool {
	links := make(map[asgraph.Link]bool)
	ps.ForEach(func(p asgraph.Path) {
		for i := 0; i+1 < len(p); i++ {
			links[asgraph.NewLink(p[i], p[i+1])] = true
		}
	})
	return links
}

// pathVPLinkCounts rebuilds per-link distinct-vantage-point counts —
// the map oracle for the dense VPCnt column.
func pathVPLinkCounts(ps *PathSet) map[asgraph.Link]int {
	seen := make(map[asgraph.Link]map[asn.ASN]bool)
	ps.ForEach(func(p asgraph.Path) {
		vp := p.VantagePoint()
		for i := 0; i+1 < len(p); i++ {
			l := asgraph.NewLink(p[i], p[i+1])
			if seen[l] == nil {
				seen[l] = make(map[asn.ASN]bool)
			}
			seen[l][vp] = true
		}
	})
	out := make(map[asgraph.Link]int, len(seen))
	for l, vps := range seen {
		out[l] = len(vps)
	}
	return out
}

// TestPathSetZeroValue: a decoder-constructed &PathSet{} must behave
// like an empty set — Len 0 (not -1) — and accept appends.
func TestPathSetZeroValue(t *testing.T) {
	var ps PathSet
	if got := ps.Len(); got != 0 {
		t.Fatalf("zero-value Len = %d, want 0", got)
	}
	if got := ps.NumHops(); got != 0 {
		t.Fatalf("zero-value NumHops = %d, want 0", got)
	}
	ps.ForEach(func(asgraph.Path) { t.Fatal("ForEach on empty set") })

	ps.Append(asgraph.Path{10, 20, 30})
	if ps.Len() != 1 || !pathEq(ps.At(0), 10, 20, 30) {
		t.Fatalf("append into zero value: Len=%d At(0)=%v", ps.Len(), ps.At(0))
	}
	if ps.VantagePoint(0) != 10 {
		t.Fatalf("VantagePoint(0) = %d, want 10", ps.VantagePoint(0))
	}

	// AppendSet into and from zero-value sets.
	var dst PathSet
	dst.AppendSet(&ps)
	var empty PathSet
	dst.AppendSet(&empty)
	if dst.Len() != 1 || !pathEq(dst.At(0), 10, 20, 30) {
		t.Fatalf("AppendSet zero-value round trip: Len=%d", dst.Len())
	}
}

// TestPathSetVPColumn: the vantage-point column tracks the first hop
// through Append and AppendSet.
func TestPathSetVPColumn(t *testing.T) {
	a := NewPathSet(2, 8)
	a.Append(asgraph.Path{100, 1, 2})
	a.Append(asgraph.Path{200, 2, 3, 4})
	b := NewPathSet(1, 4)
	b.Append(asgraph.Path{300, 9})
	a.AppendSet(b)
	want := []asn.ASN{100, 200, 300}
	for i, w := range want {
		if got := a.VantagePoint(i); got != w {
			t.Errorf("VantagePoint(%d) = %d, want %d", i, got, w)
		}
		if got := a.At(i).VantagePoint(); got != w {
			t.Errorf("At(%d).VantagePoint() = %d, want %d", i, got, w)
		}
	}
}

// TestPathSetArenaOverflow: appends past the arena hop limit must
// fail loudly with the typed error, not wrap offsets silently.
func TestPathSetArenaOverflow(t *testing.T) {
	old := maxArenaHops
	maxArenaHops = 8
	defer func() { maxArenaHops = old }()

	recovered := func(fn func()) (err error) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			e, ok := v.(error)
			if !ok {
				t.Fatalf("panic value %v is not an error", v)
			}
			err = e
		}()
		fn()
		return nil
	}

	ps := NewPathSet(4, 8)
	ps.Append(asgraph.Path{1, 2, 3, 4, 5, 6})
	if err := recovered(func() { ps.Append(asgraph.Path{7, 8, 9}) }); !errors.Is(err, ErrArenaOverflow) {
		t.Fatalf("Append past limit: err = %v, want ErrArenaOverflow", err)
	}
	// The failed append must not have corrupted the set.
	if ps.Len() != 1 || !pathEq(ps.At(0), 1, 2, 3, 4, 5, 6) {
		t.Fatalf("set corrupted after rejected append: Len=%d", ps.Len())
	}

	other := NewPathSet(1, 4)
	other.Append(asgraph.Path{7, 8, 9})
	if err := recovered(func() { ps.AppendSet(other) }); !errors.Is(err, ErrArenaOverflow) {
		t.Fatalf("AppendSet past limit: err = %v, want ErrArenaOverflow", err)
	}
	// Exactly at the limit is fine.
	ps.Append(asgraph.Path{7, 8})
	if ps.Len() != 2 {
		t.Fatalf("Len = %d after append at limit", ps.Len())
	}
}

// digestPathSet folds every path (with its VP column) into an
// order-sensitive FNV digest, so two sets are byte-identical iff the
// digests match.
func digestPathSet(ps *PathSet) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(ps.Len()))
	for i := 0; i < ps.Len(); i++ {
		mix(uint64(ps.VantagePoint(i)))
		p := ps.At(i)
		mix(uint64(len(p)))
		for _, a := range p {
			mix(uint64(a))
		}
	}
	mix(uint64(ps.SkippedOrigins)<<32 | uint64(ps.SkippedVPs))
	return h
}

// TestPropagateBlocksParity: the block stream, concatenated, is
// byte-identical to the monolithic PropagateContext result — across
// worker counts and governor permit levels — and blocks arrive in
// origin order, one per propagated origin.
func TestPropagateBlocksParity(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	origins := allASNs(g)
	vps := []asn.ASN{100, 103}

	want := sim.Propagate(origins, vps)
	wantDigest := digestPathSet(want)

	maxProcs := runtime.GOMAXPROCS(0)
	if maxProcs < 4 {
		maxProcs = 4
	}
	for _, workers := range []int{1, 2, maxProcs} {
		for _, permits := range []int{0, 1, 2} { // 0 = no governor
			name := fmt.Sprintf("workers=%d/permits=%d", workers, permits)
			t.Run(name, func(t *testing.T) {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
				ctx := context.Background()
				if permits > 0 {
					gov := govern.New(govern.Config{SoftBytes: 1 << 50, MaxWorkers: permits})
					ctx = govern.Into(ctx, gov)
				}
				got := &PathSet{}
				blocks := 0
				so, sv, err := sim.PropagateBlocks(ctx, origins, vps, func(blk *PathSet) error {
					blocks++
					got.AppendSet(blk)
					return nil
				})
				if err != nil {
					t.Fatalf("PropagateBlocks: %v", err)
				}
				got.SkippedOrigins, got.SkippedVPs = so, sv
				if blocks != len(origins) {
					t.Errorf("got %d blocks, want %d (one per origin)", blocks, len(origins))
				}
				if d := digestPathSet(got); d != wantDigest {
					t.Errorf("stream digest %x != monolithic %x", d, wantDigest)
				}
			})
		}
	}
}

// TestPropagateBlocksSkippedAccounting: origins and VPs absent from
// the graph are counted identically by the streaming and monolithic
// paths, regardless of how many blocks the stream produced.
func TestPropagateBlocksSkippedAccounting(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	origins := append(allASNs(g), 7777, 8888, 9999)
	vps := []asn.ASN{100, 103, 424242}

	mono, err := sim.PropagateContext(context.Background(), origins, vps)
	if err != nil {
		t.Fatal(err)
	}
	if mono.SkippedOrigins != 3 || mono.SkippedVPs != 1 {
		t.Fatalf("monolithic skips = (%d,%d), want (3,1)", mono.SkippedOrigins, mono.SkippedVPs)
	}

	stream := &PathSet{}
	so, sv, err := sim.PropagateBlocks(context.Background(), origins, vps, func(blk *PathSet) error {
		if blk.SkippedOrigins != 0 || blk.SkippedVPs != 0 {
			t.Errorf("per-origin block carries skip counts (%d,%d)", blk.SkippedOrigins, blk.SkippedVPs)
		}
		stream.AppendSet(blk)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stream.SkippedOrigins, stream.SkippedVPs = so, sv
	if so != mono.SkippedOrigins || sv != mono.SkippedVPs {
		t.Errorf("stream skips = (%d,%d), monolithic = (%d,%d)", so, sv, mono.SkippedOrigins, mono.SkippedVPs)
	}
	if digestPathSet(stream) != digestPathSet(mono) {
		t.Error("stream and monolithic sets differ")
	}
}

// TestPropagateBlocksSinkError: a sink error cancels the remaining
// workers and surfaces from PropagateBlocks.
func TestPropagateBlocksSinkError(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	sentinel := errors.New("sink boom")
	calls := 0
	_, _, err := sim.PropagateBlocks(context.Background(), allASNs(g), []asn.ASN{100}, func(blk *PathSet) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

// TestPropagateBlocksOrderUnderLoad: blocks must arrive in strictly
// ascending origin order even when worker completion order is
// scrambled by scheduling.
func TestPropagateBlocksOrderUnderLoad(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	origins := allASNs(g)
	// Shuffle the request order; delivery must follow it exactly.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(origins), func(i, j int) { origins[i], origins[j] = origins[j], origins[i] })

	var seenOrigins []asn.ASN
	_, _, err := sim.PropagateBlocks(context.Background(), origins, []asn.ASN{100, 103}, func(blk *PathSet) error {
		if blk.Len() > 0 {
			seenOrigins = append(seenOrigins, blk.At(0).Origin())
		} else {
			seenOrigins = append(seenOrigins, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seenOrigins) != len(origins) {
		t.Fatalf("got %d blocks, want %d", len(seenOrigins), len(origins))
	}
	for i, o := range origins {
		if seenOrigins[i] != 0 && seenOrigins[i] != o {
			t.Fatalf("block %d is origin %d, want %d (request order)", i, seenOrigins[i], o)
		}
	}
}
