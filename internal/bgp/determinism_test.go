package bgp

import (
	"context"
	"runtime"
	"testing"

	"breval/internal/asn"
	"breval/internal/obs"
	"breval/internal/topogen"
)

// propagateWithWorkers runs PropagateContext with GOMAXPROCS pinned to
// n (restored afterwards) and a fresh collector, returning both.
func propagateWithWorkers(t *testing.T, sim *Simulator, origins, vps []asn.ASN, n int) (*PathSet, *obs.Collector) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	col := obs.NewCollector()
	ps, err := sim.PropagateContext(obs.Into(context.Background(), col), origins, vps)
	if err != nil {
		t.Fatalf("PropagateContext (workers=%d): %v", n, err)
	}
	return ps, col
}

// TestPropagateDeterministicAcrossWorkerCounts is the
// determinism-under-parallelism property: a serial run (GOMAXPROCS=1)
// and a maximally parallel run must produce byte-identical PathSets —
// same paths in the same order — and identical deterministic metrics,
// across several seeds. Worker scheduling must never leak into results.
func TestPropagateDeterministicAcrossWorkerCounts(t *testing.T) {
	many := runtime.NumCPU()
	if many < 4 {
		many = 4
	}
	for _, seed := range []int64{1, 23, 47} {
		cfg := topogen.DefaultConfig(seed).Scaled(450)
		w, err := topogen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSimulator(w.Graph)
		ps1, col1 := propagateWithWorkers(t, sim, w.ASNs, w.VPs, 1)
		psN, colN := propagateWithWorkers(t, sim, w.ASNs, w.VPs, many)

		if ps1.Len() != psN.Len() {
			t.Fatalf("seed %d: path counts differ: serial %d vs parallel %d",
				seed, ps1.Len(), psN.Len())
		}
		for i := 0; i < ps1.Len(); i++ {
			if ps1.At(i).String() != psN.At(i).String() {
				t.Fatalf("seed %d: path %d differs: %v vs %v",
					seed, i, ps1.At(i), psN.At(i))
			}
		}

		// The aggregate counters and the frontier histogram are sums and
		// commutative merges, so they must not depend on the schedule
		// either. (Per-worker distributions like bgp.worker_origins do.)
		d1, dN := col1.Export(), colN.Export()
		for _, name := range []string{
			"bgp.paths_emitted", "bgp.origins_propagated",
			"bgp.skipped_origins", "bgp.skipped_vps",
			"bgp.origins_requested", "bgp.vps_requested",
		} {
			if d1.Counters[name] != dN.Counters[name] {
				t.Errorf("seed %d: counter %s differs: serial %d vs parallel %d",
					seed, name, d1.Counters[name], dN.Counters[name])
			}
		}
		h1, hN := d1.Histograms["bgp.frontier_size"], dN.Histograms["bgp.frontier_size"]
		if h1.Count != hN.Count || h1.Sum != hN.Sum || h1.Min != hN.Min || h1.Max != hN.Max {
			t.Errorf("seed %d: frontier histogram differs: serial %+v vs parallel %+v",
				seed, h1, hN)
		}
	}
}

// TestPropagateSkippedAccounting is the regression test for the silent
// drop of origins and vantage points absent from the graph: they must
// be counted on the PathSet and in the obs counters, while the known
// origins/VPs still propagate normally.
func TestPropagateSkippedAccounting(t *testing.T) {
	g := hierarchy()
	sim := NewSimulator(g)
	col := obs.NewCollector()
	ctx := obs.Into(context.Background(), col)

	origins := []asn.ASN{100, 888, 103, 999} // 888, 999 unknown
	vps := []asn.ASN{1, 777, 102}            // 777 unknown
	ps, err := sim.PropagateContext(ctx, origins, vps)
	if err != nil {
		t.Fatal(err)
	}
	if ps.SkippedOrigins != 2 || ps.SkippedVPs != 1 {
		t.Errorf("PathSet skipped = (%d origins, %d vps), want (2, 1)",
			ps.SkippedOrigins, ps.SkippedVPs)
	}
	doc := col.Export()
	want := map[string]int64{
		"bgp.skipped_origins":    2,
		"bgp.skipped_vps":        1,
		"bgp.origins_requested":  4,
		"bgp.vps_requested":      3,
		"bgp.origins_propagated": 2,
	}
	for name, v := range want {
		if got := doc.Counters[name]; got != v {
			t.Errorf("counter %s = %d, want %d", name, got, v)
		}
	}
	// The known pairs still resolve.
	if got := pathsBetween(ps, 1, 103); len(got) != 1 {
		t.Errorf("path 1->103 lost: %v", got)
	}

	// Fully-known input: the counters must still be registered, at zero
	// ("measured and zero" is distinguishable from "not measured").
	col2 := obs.NewCollector()
	ps2, err := sim.PropagateContext(obs.Into(context.Background(), col2),
		[]asn.ASN{100, 103}, []asn.ASN{1})
	if err != nil {
		t.Fatal(err)
	}
	if ps2.SkippedOrigins != 0 || ps2.SkippedVPs != 0 {
		t.Errorf("clean run skipped = (%d, %d), want (0, 0)",
			ps2.SkippedOrigins, ps2.SkippedVPs)
	}
	doc2 := col2.Export()
	for _, name := range []string{"bgp.skipped_origins", "bgp.skipped_vps"} {
		got, ok := doc2.Counters[name]
		if !ok {
			t.Errorf("counter %s not registered on a clean run", name)
		} else if got != 0 {
			t.Errorf("counter %s = %d, want 0", name, got)
		}
	}

	// AppendSet must sum the accounting, not drop it.
	sum := NewPathSet(1, 8)
	sum.AppendSet(ps)
	sum.AppendSet(ps2)
	if sum.SkippedOrigins != 2 || sum.SkippedVPs != 1 {
		t.Errorf("AppendSet skipped = (%d, %d), want (2, 1)",
			sum.SkippedOrigins, sum.SkippedVPs)
	}
}
