// Package buildinfo reports what binary is running: module version,
// VCS revision and go toolchain, read from the build metadata the Go
// linker embeds (debug.ReadBuildInfo). Both cmd/breval (-version) and
// cmd/brevald (-version, GET /version) serve it, so an operator can
// always answer "which build produced this output" — which matters
// here because checkpoint artifacts are only byte-stable within one
// build.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Info describes the running binary.
type Info struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
	GoVersion string `json:"go_version"`
}

// Get reads the binary's embedded build metadata. Binaries built
// without module support (or test binaries) degrade to "unknown"
// fields rather than failing.
func Get() Info {
	info := Info{Module: "breval", Version: "(devel)", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line -version output.
func (i Info) String() string {
	out := fmt.Sprintf("%s %s", i.Module, i.Version)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " rev " + rev
		if i.Dirty {
			out += " (dirty)"
		}
	}
	return out + " " + i.GoVersion
}
