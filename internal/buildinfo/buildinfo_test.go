package buildinfo

import (
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	i := Get()
	if i.Module == "" || i.Version == "" || i.GoVersion == "" {
		t.Fatalf("incomplete info: %+v", i)
	}
	// Test binaries carry build info with the module path.
	if !strings.Contains(i.Module, "breval") {
		t.Errorf("module = %q, want the breval module", i.Module)
	}
	s := i.String()
	if !strings.Contains(s, i.Module) || !strings.Contains(s, i.Version) {
		t.Errorf("String() = %q does not carry module and version", s)
	}
}

func TestStringTruncatesRevision(t *testing.T) {
	i := Info{Module: "m", Version: "v1", Revision: "abcdef0123456789abcdef", Dirty: true, GoVersion: "go1.22"}
	s := i.String()
	if !strings.Contains(s, "abcdef012345") || strings.Contains(s, "abcdef0123456") {
		t.Errorf("revision not truncated to 12: %q", s)
	}
	if !strings.Contains(s, "(dirty)") {
		t.Errorf("dirty marker missing: %q", s)
	}
}
