package intern

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
)

func pathSet(paths ...asgraph.Path) *bgp.PathSet {
	ps := bgp.NewPathSet(len(paths), 32)
	for _, p := range paths {
		ps.Append(p)
	}
	return ps
}

func TestBuildAssignsSortedIDs(t *testing.T) {
	tab := Build(pathSet(
		asgraph.Path{30, 10, 20},
		asgraph.Path{30, 10, 40},
	))
	if tab.NumAS() != 4 {
		t.Fatalf("NumAS = %d, want 4", tab.NumAS())
	}
	for i := int32(0); i < int32(tab.NumAS()-1); i++ {
		if tab.ASN(i) >= tab.ASN(i+1) {
			t.Fatalf("AS IDs not ASN-ascending: %v vs %v", tab.ASN(i), tab.ASN(i+1))
		}
	}
	if tab.NumLinks() != 3 { // 10-30, 10-20, 10-40
		t.Fatalf("NumLinks = %d, want 3", tab.NumLinks())
	}
	// Link IDs ascend in canonical (A, B) order.
	prev := asgraph.Link{}
	for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
		l := tab.Link(lid)
		if lid > 0 && (l.A < prev.A || (l.A == prev.A && l.B <= prev.B)) {
			t.Fatalf("link IDs not (A,B)-ascending: %v after %v", l, prev)
		}
		prev = l
		if got, ok := tab.LinkID(l); !ok || got != lid {
			t.Fatalf("LinkID(%v) = %d,%v want %d", l, got, ok, lid)
		}
	}
}

func TestLookupsAndCSR(t *testing.T) {
	tab := Build(pathSet(asgraph.Path{3, 1, 2}, asgraph.Path{4, 1, 2}))
	id1, ok := tab.ASID(1)
	if !ok {
		t.Fatal("AS 1 not interned")
	}
	if got := tab.Degree(id1); got != 3 {
		t.Fatalf("Degree(1) = %d, want 3", got)
	}
	nbrs, links := tab.Row(id1)
	if len(nbrs) != 3 || len(links) != 3 {
		t.Fatalf("Row(1) = %v, %v", nbrs, links)
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatal("row not ascending")
		}
	}
	if _, ok := tab.LinkID(asgraph.NewLink(3, 4)); ok {
		t.Error("absent link resolved")
	}
	if _, ok := tab.ASID(99); ok {
		t.Error("absent AS resolved")
	}
	// Edge entries point back at the right row and neighbor.
	lid, _ := tab.LinkID(asgraph.NewLink(1, 2))
	a, b := tab.LinkEnds(lid)
	entA := tab.EdgeEntry(lid, true)
	lo, hi := tab.RowRange(a)
	if entA < lo || entA >= hi {
		t.Fatalf("entA %d outside row [%d,%d)", entA, lo, hi)
	}
	entB := tab.EdgeEntry(lid, false)
	lo, hi = tab.RowRange(b)
	if entB < lo || entB >= hi {
		t.Fatalf("entB %d outside row [%d,%d)", entB, lo, hi)
	}
}

func TestVPIndex(t *testing.T) {
	tab := Build(pathSet(
		asgraph.Path{3, 1, 2},
		asgraph.Path{5, 1},
		asgraph.Path{9}, // hopless: not interned at all
	))
	if tab.NumVPs() != 2 {
		t.Fatalf("NumVPs = %d, want 2 (3 and 5)", tab.NumVPs())
	}
	for _, want := range []asn.ASN{3, 5} {
		id, ok := tab.ASID(want)
		if !ok || tab.VPIndex(id) < 0 {
			t.Errorf("AS %d not a VP", want)
		}
	}
	id2, _ := tab.ASID(2)
	if tab.VPIndex(id2) != -1 {
		t.Error("AS 2 wrongly a VP")
	}
	if _, ok := tab.ASID(9); ok {
		t.Error("hopless path interned")
	}
}

func TestDensify(t *testing.T) {
	ps := pathSet(
		asgraph.Path{3, 1, 2},
		asgraph.Path{7},
		asgraph.Path{2, 1, 3},
	)
	tab := Build(ps)
	d := tab.Densify(ps)
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if len(d.Hops(1)) != 0 || d.VP(1) != -1 {
		t.Error("hopless path has hops or a VP")
	}
	// Path 0 and path 2 traverse the same links in opposite directions.
	h0, h2 := d.Hops(0), d.Hops(2)
	if len(h0) != 2 || len(h2) != 2 {
		t.Fatalf("hop counts: %d, %d", len(h0), len(h2))
	}
	l00, _ := DecodeHop(h0[0])
	l21, _ := DecodeHop(h2[1])
	if l00 != l21 {
		t.Error("same link got different IDs")
	}
	from, to := d.HopEnds(h0[0])
	if tab.ASN(from) != 3 || tab.ASN(to) != 1 {
		t.Errorf("HopEnds = %v→%v, want 3→1", tab.ASN(from), tab.ASN(to))
	}
	left, mid, right := d.Triplet(h0[0], h0[1])
	if tab.ASN(left) != 3 || tab.ASN(mid) != 1 || tab.ASN(right) != 2 {
		t.Errorf("Triplet = %v|%v|%v, want 3|1|2", tab.ASN(left), tab.ASN(mid), tab.ASN(right))
	}
}

func TestBitsetCountRange(t *testing.T) {
	b := NewBitset(300)
	for _, i := range []int32{0, 63, 64, 127, 128, 200, 299} {
		b.Set(i)
	}
	cases := []struct {
		lo, hi int32
		want   int
	}{
		{0, 300, 7}, {0, 64, 2}, {64, 128, 2}, {63, 65, 2},
		{129, 200, 0}, {200, 201, 1}, {5, 5, 0}, {299, 300, 1},
	}
	for _, c := range cases {
		if got := b.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
	other := NewBitset(300)
	other.Set(10)
	b.Or(other)
	if !b.Get(10) || b.CountRange(0, 300) != 8 {
		t.Error("Or failed")
	}
}

func TestCountsAndSets(t *testing.T) {
	tab := Build(pathSet(asgraph.Path{3, 1, 2}))
	ac := NewASCounts(tab)
	if len(ac) != tab.NumAS() {
		t.Errorf("ASCounts len = %d, want %d", len(ac), tab.NumAS())
	}
	id1, _ := tab.ASID(1)
	ac[id1] = 5
	if ac[id1] != 5 {
		t.Errorf("ASCounts[%d] = %d", id1, ac[id1])
	}
	lc := NewLinkCounts(tab)
	lid, _ := tab.LinkID(asgraph.NewLink(1, 2))
	lc[lid] = 2
	if lc[lid] != 2 {
		t.Errorf("LinkCounts[%d] = %d", lid, lc[lid])
	}
	ls := NewLinkSet(tab)
	if ls.Count() != 0 {
		t.Errorf("empty LinkSet Count = %d", ls.Count())
	}
	ls.Add(lid)
	if !ls.Has(lid) || ls.Count() != 1 {
		t.Errorf("LinkSet Has=%v Count=%d after Add", ls.Has(lid), ls.Count())
	}
}
