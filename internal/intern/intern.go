// Package intern assigns dense int32 identities to the ASNs and links
// observed in a path set, so the analysis hot paths — feature
// extraction, the four relationship classifiers, the hard-link
// categorizer — can replace map[asgraph.Link] / map[asn.ASN] hash
// lookups with array indexing.
//
// A Table is built once from a path source and is immutable afterwards:
// concurrent readers need no synchronisation. IDs are deterministic
// regardless of build parallelism or map iteration order: AS IDs are
// assigned in ascending ASN order and link IDs in ascending
// (A, B) endpoint order, so the same path set always produces the same
// table. Because AS IDs are ASN-ordered, iterating links by ID visits
// them in exactly the order of inference.Result.Links() — dense loops
// and the legacy sorted-map loops agree on processing order for free.
//
// The companion containers (ASCounts, LinkCounts, Bitset, DensePaths
// in dense.go) hold per-AS / per-link quantities as flat slices with
// conversion shims back to the map-shaped legacy APIs, so downstream
// callers migrate incrementally.
package intern

import (
	"slices"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// PathSource is the minimal path-iteration surface a Table is built
// from; *bgp.PathSet satisfies it.
type PathSource interface {
	// Len returns the number of paths.
	Len() int
	// At returns the i-th path as a read-only view.
	At(i int) asgraph.Path
}

// Table is the immutable dense-ID universe of one path set: every
// observed AS (an AS appearing as a link endpoint) and every observed
// link, plus a CSR adjacency over them and the vantage-point index.
type Table struct {
	// asns maps dense AS ID → ASN, ascending; asID is the inverse.
	asns []asn.ASN
	asID map[asn.ASN]int32

	// links maps dense link ID → endpoint AS IDs with A < B, sorted
	// lexicographically by (A, B). Since AS IDs are ASN-ordered this
	// equals the canonical (Link.A, Link.B) sort order.
	links []DenseLink

	// CSR adjacency: the neighbors of AS a are nbr[rowStart[a]:
	// rowStart[a+1]], ascending; nbrLink carries the link ID of each
	// adjacency entry. entA/entB give, per link, the adjacency-entry
	// index of that link in its A endpoint's row and B endpoint's row —
	// the two directed half-edges — so scans can mark "AS a was seen
	// forwarding over link l" without searching the row.
	rowStart []int32
	nbr      []int32
	nbrLink  []int32
	entA     []int32
	entB     []int32

	// vps lists the AS IDs observed as vantage points (the first AS of
	// a path with at least one hop), ascending; vpIdx maps AS ID → VP
	// index or -1.
	vps   []int32
	vpIdx []int32
}

// DenseLink is a link in dense-ID space, A < B.
type DenseLink struct{ A, B int32 }

// Build constructs the table for ps: two passes over the paths (AS
// collection, link collection) plus sorts over the distinct ASes and
// links. Paths are taken as-is — callers that clean first intern the
// cleaned set.
func Build(ps PathSource) *Table {
	t := &Table{asID: make(map[asn.ASN]int32)}

	// Pass 1: distinct ASNs among link endpoints. Single-AS paths
	// contribute no links and therefore no table entries, matching the
	// legacy feature maps which only cover link-incident ASes. The
	// dedup sets stay small (the distinct universe, not the hop
	// count), so cache-resident map probes beat sorting the raw hops.
	seen := make(map[asn.ASN]struct{}, 1024)
	n := ps.Len()
	for i := 0; i < n; i++ {
		p := ps.At(i)
		if len(p) < 2 {
			continue
		}
		for _, a := range p {
			seen[a] = struct{}{}
		}
	}
	t.asns = make([]asn.ASN, 0, len(seen))
	for a := range seen {
		t.asns = append(t.asns, a)
	}
	slices.Sort(t.asns)
	for id, a := range t.asns {
		t.asID[a] = int32(id)
	}

	// Pass 2: distinct links as packed (aid, bid) keys, plus the VP
	// set.
	linkSet := make(map[uint64]struct{}, 1024)
	vpSeen := make([]bool, len(t.asns))
	for i := 0; i < n; i++ {
		p := ps.At(i)
		if len(p) < 2 {
			continue
		}
		prev := t.asID[p[0]]
		vpSeen[prev] = true
		for _, a := range p[1:] {
			cur := t.asID[a]
			linkSet[packLink(prev, cur)] = struct{}{}
			prev = cur
		}
	}
	keys := make([]uint64, 0, len(linkSet))
	for k := range linkSet {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	t.links = make([]DenseLink, len(keys))
	for i, k := range keys {
		t.links[i] = DenseLink{A: int32(k >> 32), B: int32(k & 0xffffffff)}
	}

	t.buildCSR()
	t.buildVPs(vpSeen)
	return t
}

// packLink packs the unordered dense pair (a, b) with the smaller ID
// in the high word, so ascending uint64 order is lexicographic (A, B)
// order.
func packLink(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// buildCSR fills the adjacency arrays from the sorted link list.
func (t *Table) buildCSR() {
	nAS := len(t.asns)
	t.rowStart = make([]int32, nAS+1)
	deg := make([]int32, nAS)
	for _, l := range t.links {
		deg[l.A]++
		deg[l.B]++
	}
	for i := 0; i < nAS; i++ {
		t.rowStart[i+1] = t.rowStart[i] + deg[i]
	}
	nEdges := int(t.rowStart[nAS])
	t.nbr = make([]int32, nEdges)
	t.nbrLink = make([]int32, nEdges)
	t.entA = make([]int32, len(t.links))
	t.entB = make([]int32, len(t.links))

	// Two fills in ascending-neighbor order: a row's neighbors split
	// into "larger than me" (I am the A endpoint) and "smaller than me"
	// (I am the B endpoint). Filling the smaller ones first — links in
	// ID order visit B rows with ascending A — then the larger ones —
	// links in ID order visit A rows with ascending B — leaves every
	// row ascending.
	next := make([]int32, nAS)
	copy(next, t.rowStart[:nAS])
	for lid, l := range t.links {
		pos := next[l.B]
		next[l.B]++
		t.nbr[pos] = l.A
		t.nbrLink[pos] = int32(lid)
		t.entB[lid] = pos
	}
	for lid, l := range t.links {
		pos := next[l.A]
		next[l.A]++
		t.nbr[pos] = l.B
		t.nbrLink[pos] = int32(lid)
		t.entA[lid] = pos
	}
}

// buildVPs materialises the vantage-point index.
func (t *Table) buildVPs(vpSeen []bool) {
	t.vpIdx = make([]int32, len(t.asns))
	for i := range t.vpIdx {
		t.vpIdx[i] = -1
	}
	for id, ok := range vpSeen {
		if ok {
			t.vpIdx[id] = int32(len(t.vps))
			t.vps = append(t.vps, int32(id))
		}
	}
}

// NumAS returns the number of interned ASes.
func (t *Table) NumAS() int { return len(t.asns) }

// NumLinks returns the number of interned links.
func (t *Table) NumLinks() int { return len(t.links) }

// NumEdges returns the number of directed half-edges (2×NumLinks),
// the index space of edge-entry bitsets.
func (t *Table) NumEdges() int { return len(t.nbr) }

// NumVPs returns the number of observed vantage points.
func (t *Table) NumVPs() int { return len(t.vps) }

// ASN returns the ASN of dense ID id.
func (t *Table) ASN(id int32) asn.ASN { return t.asns[id] }

// ASID returns the dense ID of a, with ok=false when a was never
// observed as a link endpoint.
func (t *Table) ASID(a asn.ASN) (int32, bool) {
	id, ok := t.asID[a]
	return id, ok
}

// LinkEnds returns the dense endpoint IDs of link lid, A < B.
func (t *Table) LinkEnds(lid int32) (int32, int32) {
	l := t.links[lid]
	return l.A, l.B
}

// Link converts a dense link ID back to its canonical asgraph.Link.
func (t *Table) Link(lid int32) asgraph.Link {
	l := t.links[lid]
	return asgraph.Link{A: t.asns[l.A], B: t.asns[l.B]}
}

// LinkID returns the dense ID of l, with ok=false when l was never
// observed.
func (t *Table) LinkID(l asgraph.Link) (int32, bool) {
	a, ok := t.asID[l.A]
	if !ok {
		return 0, false
	}
	b, ok := t.asID[l.B]
	if !ok {
		return 0, false
	}
	return t.LinkIDOfIDs(a, b)
}

// LinkIDOfIDs returns the dense link ID between the dense AS IDs a and
// b, by binary search over the (ascending) CSR row of the lower-degree
// endpoint.
func (t *Table) LinkIDOfIDs(a, b int32) (int32, bool) {
	if t.Degree(b) < t.Degree(a) {
		a, b = b, a
	}
	lo, hi := t.rowStart[a], t.rowStart[a+1]
	row := t.nbr[lo:hi]
	// Most rows are short (stubs and small ASes dominate, and the
	// search always picks the lower-degree endpoint); a linear scan
	// beats binary search there.
	if len(row) <= 16 {
		for i, nb := range row {
			if nb == b {
				return t.nbrLink[lo+int32(i)], true
			}
		}
		return 0, false
	}
	i, ok := slices.BinarySearch(row, b)
	if !ok {
		return 0, false
	}
	return t.nbrLink[lo+int32(i)], true
}

// HasLinkIDs reports whether the dense AS IDs a and b are adjacent.
func (t *Table) HasLinkIDs(a, b int32) bool {
	_, ok := t.LinkIDOfIDs(a, b)
	return ok
}

// Degree returns the observed degree (row length) of AS id — equal to
// the legacy NodeDegree, since every distinct neighbor is a distinct
// link.
func (t *Table) Degree(id int32) int32 { return t.rowStart[id+1] - t.rowStart[id] }

// Row returns the CSR row of AS id: its neighbor IDs (ascending) and
// the link ID of each adjacency entry. The views are read-only.
func (t *Table) Row(id int32) (nbrs, links []int32) {
	lo, hi := t.rowStart[id], t.rowStart[id+1]
	return t.nbr[lo:hi], t.nbrLink[lo:hi]
}

// RowRange returns the half-open edge-entry index range of AS id's CSR
// row, for use with edge-entry bitsets.
func (t *Table) RowRange(id int32) (int32, int32) {
	return t.rowStart[id], t.rowStart[id+1]
}

// EdgeEntry returns the edge-entry index of the directed half-edge
// from→other of link lid, where from must be one of the link's
// endpoint IDs (the A side when fromA is true).
func (t *Table) EdgeEntry(lid int32, fromA bool) int32 {
	if fromA {
		return t.entA[lid]
	}
	return t.entB[lid]
}

// VPIndex returns the vantage-point index of AS id, or -1 when the AS
// was never observed as a VP.
func (t *Table) VPIndex(id int32) int32 { return t.vpIdx[id] }

// VPAS returns the dense AS ID of vantage point vi.
func (t *Table) VPAS(vi int32) int32 { return t.vps[vi] }

// SortIDsByASN is a convenience for deterministic output: it sorts a
// slice of dense AS IDs so the corresponding ASNs ascend (which, by
// construction, is plain ascending ID order).
func (t *Table) SortIDsByASN(ids []int32) { slices.Sort(ids) }

// ASNsOf converts dense AS IDs to their ASNs, preserving order.
func (t *Table) ASNsOf(ids []int32) []asn.ASN {
	out := make([]asn.ASN, len(ids))
	for i, id := range ids {
		out[i] = t.asns[id]
	}
	return out
}
