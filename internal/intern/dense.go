package intern

import (
	"math/bits"
)

// ASCounts is a per-AS counter vector indexed by dense AS ID.
type ASCounts []int32

// NewASCounts returns a zeroed counter vector for t.
func NewASCounts(t *Table) ASCounts { return make(ASCounts, t.NumAS()) }

// LinkCounts is a per-link counter vector indexed by dense link ID.
type LinkCounts []int32

// NewLinkCounts returns a zeroed counter vector for t.
func NewLinkCounts(t *Table) LinkCounts { return make(LinkCounts, t.NumLinks()) }

// Bitset is a fixed-size bit vector. The zero value of NewBitset(n) is
// all-clear; Or merges another set of the same size.
type Bitset []uint64

// NewBitset returns an all-clear bitset holding n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitset) Get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Or folds other into b; the sizes must match.
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// CountRange returns the number of set bits in [lo, hi).
func (b Bitset) CountRange(lo, hi int32) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return bits.OnesCount64(b[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(b[loW] & loMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(b[w])
	}
	return n + bits.OnesCount64(b[hiW]&hiMask)
}

// LinkSet is a dense set of links: a bitset indexed by link ID.
type LinkSet Bitset

// NewLinkSet returns an empty link set for t.
func NewLinkSet(t *Table) LinkSet { return LinkSet(NewBitset(t.NumLinks())) }

// Add inserts link lid.
func (s LinkSet) Add(lid int32) { Bitset(s).Set(lid) }

// Has reports membership of lid.
func (s LinkSet) Has(lid int32) bool { return Bitset(s).Get(lid) }

// Count returns the number of links in the set.
func (s LinkSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// DensePaths is the dense mirror of a path set: per hop, the link ID
// plus the traversal direction, and per path the vantage-point index.
// It is what the triplet-driven scans (feature extraction, ASRank's
// sweeps, Gao's votes, the hard-link categorizer) iterate instead of
// re-resolving map[Link] keys on every pass.
type DensePaths struct {
	Tab *Table

	// offs[i]..offs[i+1] is the hop range of path i in hops. 64-bit
	// for the same reason as bgp.PathSet offsets: an xl world's hop
	// column can exceed what 32-bit offsets address.
	offs []uint64
	// hops packs lid<<1 | dir, where dir=1 means the hop was traversed
	// A→B (the hop's first AS is the link's canonical A endpoint).
	hops []uint32
	// vp is the per-path vantage-point index, -1 for hopless paths.
	vp []int32
}

// Densify mirrors ps through the table. Every AS and link of ps must
// already be interned (i.e. t was built from the same path set).
func (t *Table) Densify(ps PathSource) *DensePaths {
	n := ps.Len()
	d := &DensePaths{
		Tab:  t,
		offs: make([]uint64, 1, n+1),
		vp:   make([]int32, 0, n),
	}
	nHops := 0
	for i := 0; i < n; i++ {
		if l := len(ps.At(i)); l > 1 {
			nHops += l - 1
		}
	}
	d.hops = make([]uint32, 0, nHops)
	for i := 0; i < n; i++ {
		p := ps.At(i)
		if len(p) < 2 {
			d.vp = append(d.vp, -1)
			d.offs = append(d.offs, uint64(len(d.hops)))
			continue
		}
		prev, _ := t.ASID(p[0])
		d.vp = append(d.vp, t.VPIndex(prev))
		for _, a := range p[1:] {
			cur, _ := t.ASID(a)
			lid, _ := t.LinkIDOfIDs(prev, cur)
			// The canonical A endpoint is always the smaller dense ID
			// (packLink), so the traversal direction needs no lookup.
			dir := uint32(0)
			if prev < cur {
				dir = 1
			}
			d.hops = append(d.hops, uint32(lid)<<1|dir)
			prev = cur
		}
		d.offs = append(d.offs, uint64(len(d.hops)))
	}
	return d
}

// Len returns the number of paths.
func (d *DensePaths) Len() int { return len(d.offs) - 1 }

// NumHops returns the total size of the packed hop column.
func (d *DensePaths) NumHops() int { return len(d.hops) }

// HopSpan returns the number of packed hops covered by paths
// [lo, hi), letting sharded scans presize per-shard buffers exactly.
func (d *DensePaths) HopSpan(lo, hi int) int {
	return int(d.offs[hi] - d.offs[lo])
}

// Hops returns path i's packed hops; decode with DecodeHop.
func (d *DensePaths) Hops(i int) []uint32 { return d.hops[d.offs[i]:d.offs[i+1]] }

// VP returns path i's vantage-point index, -1 when the path has no
// hops.
func (d *DensePaths) VP(i int) int32 { return d.vp[i] }

// DecodeHop unpacks a hop into its link ID and whether it was
// traversed from the link's canonical A endpoint towards B.
func DecodeHop(h uint32) (lid int32, fromA bool) {
	return int32(h >> 1), h&1 == 1
}

// HopEnds returns the (from, to) dense AS IDs of a packed hop.
func (d *DensePaths) HopEnds(h uint32) (from, to int32) {
	lid, fromA := DecodeHop(h)
	a, b := d.Tab.LinkEnds(lid)
	if fromA {
		return a, b
	}
	return b, a
}

// Triplet decodes two consecutive hops of one path into the dense AS
// IDs (left, mid, right) of the corresponding path triplet.
func (d *DensePaths) Triplet(h1, h2 uint32) (left, mid, right int32) {
	left, mid = d.HopEnds(h1)
	_, right = d.HopEnds(h2)
	return left, mid, right
}
