// Package peerlock generates Peerlock-style route-leak protection
// from AS-relationship data — the §7 incentive example: operators
// might contribute accurate relationship data in exchange for
// generated router configurations that protect them against route
// leaks (McDaniel et al., "Peerlock: Flexsealing BGP", NDSS'21).
//
// The Peerlock rule: for a protected AS P (typically a Tier-1), a
// neighbor N of mine must never announce me a route containing P
// unless N is an upstream of P or P itself — otherwise the route is a
// leak. The generated filters encode, per neighbor session, which
// protected ASes must not appear in received AS paths.
//
// The effectiveness of the mechanism depends on how many and how
// accurate the relationships are (the paper's point): filters built
// from misclassified relationships either leave leaks open or drop
// legitimate routes. Evaluate quantifies both against ground truth.
package peerlock

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// Rule is one Peerlock filter entry: on the session with Neighbor,
// reject routes whose AS path contains any of Protected.
type Rule struct {
	Neighbor  asn.ASN
	Protected []asn.ASN
}

// Config is the generated per-AS configuration.
type Config struct {
	// Owner is the AS the configuration protects.
	Owner asn.ASN
	Rules []Rule
}

// Generate builds the Peerlock configuration for owner from a
// relationship graph g (typically an *inferred* one) and the set of
// protected ASes (typically the Tier-1 clique). Sessions with
// providers are exempt for protected ASes reachable through them: a
// route P ... provider ... me is legitimate transit. Peers and
// customers must never announce a protected AS unless they are that
// AS or one of its providers in g.
func Generate(g *asgraph.Graph, owner asn.ASN, protected []asn.ASN) Config {
	cfg := Config{Owner: owner}
	prot := append([]asn.ASN(nil), protected...)
	sort.Slice(prot, func(i, j int) bool { return prot[i] < prot[j] })

	// upstreamOf[p] is the provider set of protected AS p in g.
	upstreamOf := make(map[asn.ASN]map[asn.ASN]bool, len(prot))
	for _, p := range prot {
		ups := make(map[asn.ASN]bool)
		for _, u := range g.Providers(p) {
			ups[u] = true
		}
		upstreamOf[p] = ups
	}

	for _, nb := range g.Neighbors(owner) {
		if nb.Role == asgraph.RoleProvider {
			// Full transit: routes through the provider legitimately
			// carry any AS.
			continue
		}
		var deny []asn.ASN
		for _, p := range prot {
			if nb.ASN == p || upstreamOf[p][nb.ASN] {
				continue // the neighbor may legitimately carry p
			}
			deny = append(deny, p)
		}
		if len(deny) > 0 {
			cfg.Rules = append(cfg.Rules, Rule{Neighbor: nb.ASN, Protected: deny})
		}
	}
	sort.Slice(cfg.Rules, func(i, j int) bool {
		return cfg.Rules[i].Neighbor < cfg.Rules[j].Neighbor
	})
	return cfg
}

// Permits reports whether the configuration accepts a route with the
// given AS path arriving over the session with neighbor. Routes from
// sessions without rules are accepted.
func (c Config) Permits(neighbor asn.ASN, path asgraph.Path) bool {
	for _, r := range c.Rules {
		if r.Neighbor != neighbor {
			continue
		}
		for _, a := range path {
			for _, p := range r.Protected {
				if a == p {
					return false
				}
			}
		}
	}
	return true
}

// WriteTo renders the configuration as as-path filter snippets in an
// IOS-like syntax. WriteTo implements io.WriterTo.
func (c Config) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	emit := func(format string, args ...interface{}) error {
		n, err := fmt.Fprintf(bw, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("! peerlock filters for AS%d (generated)\n", c.Owner); err != nil {
		return total, err
	}
	for i, r := range c.Rules {
		if err := emit("ip as-path access-list PEERLOCK-%d deny _(", i+1); err != nil {
			return total, err
		}
		for j, p := range r.Protected {
			sep := "|"
			if j == len(r.Protected)-1 {
				sep = ""
			}
			if err := emit("%d%s", p, sep); err != nil {
				return total, err
			}
		}
		if err := emit(")_\nip as-path access-list PEERLOCK-%d permit .*\n", i+1); err != nil {
			return total, err
		}
		if err := emit("! apply to neighbor %d inbound\n", r.Neighbor); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Outcome quantifies a configuration against ground truth.
type Outcome struct {
	// LeaksBlocked / LeaksMissed count simulated route leaks the
	// filters stop or let through.
	LeaksBlocked, LeaksMissed int
	// LegitimateDropped counts legitimate announcements the filters
	// wrongly reject (collateral damage from misclassified
	// relationships).
	LegitimateDropped int
}

// Evaluate plays announcements against the configuration: for every
// non-provider neighbor of owner in the TRUE graph, (a) a leak — the
// neighbor announcing a route through each protected AS it has no
// business exporting — and (b) a legitimate announcement of the
// neighbor's own customer-cone routes.
func Evaluate(truth *asgraph.Graph, cfg Config, protected []asn.ASN) Outcome {
	var out Outcome
	protSet := make(map[asn.ASN]bool, len(protected))
	for _, p := range protected {
		protSet[p] = true
	}
	for _, nb := range truth.Neighbors(cfg.Owner) {
		if nb.Role == asgraph.RoleProvider {
			continue
		}
		// (a) Leaks: the neighbor re-exports a provider/peer route
		// containing a protected AS. A neighbor that IS protected or
		// truly upstream of one announces it legitimately.
		for _, p := range protected {
			if nb.ASN == p {
				continue
			}
			legitimate := false
			for _, u := range truth.Providers(p) {
				if u == nb.ASN {
					legitimate = true
					break
				}
			}
			leakPath := asgraph.Path{nb.ASN, p}
			permitted := cfg.Permits(nb.ASN, leakPath)
			switch {
			case legitimate && !permitted:
				out.LegitimateDropped++
			case !legitimate && permitted:
				out.LeaksMissed++
			case !legitimate && !permitted:
				out.LeaksBlocked++
			}
		}
		// (b) Legitimate cone routes must pass.
		for c := range truth.CustomerCone(nb.ASN) {
			if protSet[c] {
				continue // covered above
			}
			if !cfg.Permits(nb.ASN, asgraph.Path{nb.ASN, c}) {
				out.LegitimateDropped++
			}
		}
	}
	return out
}
