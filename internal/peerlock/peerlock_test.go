package peerlock

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// world: clique {1,2}; owner 10 is customer of 1, peers with 11,
// serves customer 100. 11 is customer of 2.
func world() *asgraph.Graph {
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(2, 11, asgraph.P2CRel(2))
	g.MustSetRel(10, 11, asgraph.P2PRel())
	g.MustSetRel(10, 100, asgraph.P2CRel(10))
	g.MustSetRel(11, 110, asgraph.P2CRel(11))
	return g
}

func TestGenerateRules(t *testing.T) {
	g := world()
	cfg := Generate(g, 10, []asn.ASN{1, 2})
	if cfg.Owner != 10 {
		t.Fatalf("owner = %d", cfg.Owner)
	}
	// Provider session (1) has no rules; peer 11 and customer 100 do.
	for _, r := range cfg.Rules {
		if r.Neighbor == 1 {
			t.Errorf("rule on provider session: %+v", r)
		}
	}
	byNb := map[asn.ASN]Rule{}
	for _, r := range cfg.Rules {
		byNb[r.Neighbor] = r
	}
	// Peer 11 may not announce protected 1 (it is not 1's upstream),
	// and may not announce 2 either: 11 is 2's CUSTOMER, not upstream.
	r11, ok := byNb[11]
	if !ok {
		t.Fatal("no rule for peer 11")
	}
	if len(r11.Protected) != 2 {
		t.Errorf("rule for 11 protects %v, want both clique members", r11.Protected)
	}
	// Customer 100: both protected ASes denied.
	r100, ok := byNb[100]
	if !ok || len(r100.Protected) != 2 {
		t.Fatalf("rule for 100 = %+v", r100)
	}
}

func TestPermits(t *testing.T) {
	g := world()
	cfg := Generate(g, 10, []asn.ASN{1, 2})
	// Peer 11 announcing its own cone: fine.
	if !cfg.Permits(11, asgraph.Path{11, 110}) {
		t.Error("legitimate cone route rejected")
	}
	// Peer 11 leaking a route through Tier-1 2: blocked.
	if cfg.Permits(11, asgraph.Path{11, 2}) {
		t.Error("leak through protected AS permitted")
	}
	// Provider session unrestricted.
	if !cfg.Permits(1, asgraph.Path{1, 2, 11, 110}) {
		t.Error("provider transit rejected")
	}
	// Unknown sessions default to permit.
	if !cfg.Permits(999, asgraph.Path{999, 1}) {
		t.Error("session without rules rejected")
	}
}

func TestEvaluatePerfectKnowledge(t *testing.T) {
	g := world()
	cfg := Generate(g, 10, []asn.ASN{1, 2})
	out := Evaluate(g, cfg, []asn.ASN{1, 2})
	if out.LeaksMissed != 0 {
		t.Errorf("leaks missed with perfect knowledge: %+v", out)
	}
	if out.LegitimateDropped != 0 {
		t.Errorf("legitimate routes dropped with perfect knowledge: %+v", out)
	}
	if out.LeaksBlocked == 0 {
		t.Errorf("no leaks blocked: %+v", out)
	}
}

func TestEvaluateMisclassifiedRelationship(t *testing.T) {
	truth := world()
	// The inferred graph wrongly believes peer 11 is a provider of
	// owner 10: no rules get generated for that session, so leaks
	// through it are missed.
	inferred := world()
	inferred.MustSetRel(10, 11, asgraph.P2CRel(11))
	cfg := Generate(inferred, 10, []asn.ASN{1, 2})
	out := Evaluate(truth, cfg, []asn.ASN{1, 2})
	if out.LeaksMissed == 0 {
		t.Errorf("misclassification should open leaks: %+v", out)
	}
}

func TestEvaluateUpstreamException(t *testing.T) {
	// 11 truly is an upstream of protected AS 3: announcing 3 is
	// legitimate and must not be dropped.
	truth := world()
	truth.MustSetRel(11, 3, asgraph.P2CRel(11))
	cfg := Generate(truth, 10, []asn.ASN{1, 2, 3})
	out := Evaluate(truth, cfg, []asn.ASN{1, 2, 3})
	if out.LegitimateDropped != 0 {
		t.Errorf("upstream exception broken: %+v", out)
	}
}

func TestWriteTo(t *testing.T) {
	g := world()
	cfg := Generate(g, 10, []asn.ASN{1, 2})
	var buf bytes.Buffer
	if _, err := cfg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"peerlock filters for AS10", "as-path access-list", "deny _(", "permit .*"} {
		if !strings.Contains(out, want) {
			t.Errorf("config missing %q:\n%s", want, out)
		}
	}
}
