package peerlock_test

import (
	"os"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/peerlock"
)

func ExampleGenerate() {
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())   // protected Tier-1s
	g.MustSetRel(1, 10, asgraph.P2CRel(1)) // 10's provider
	g.MustSetRel(10, 30, asgraph.P2PRel()) // a peer that must not leak them

	cfg := peerlock.Generate(g, 10, []asn.ASN{1, 2})
	cfg.WriteTo(os.Stdout)
	// Output:
	// ! peerlock filters for AS10 (generated)
	// ip as-path access-list PEERLOCK-1 deny _(1|2)_
	// ip as-path access-list PEERLOCK-1 permit .*
	// ! apply to neighbor 30 inbound
}
