// Package validation models AS-relationship validation data: label
// snapshots compiled from BGP community observations, the multi-label
// entries complex relationships produce, and the §4.2 cleaning passes
// of Prehn & Feldmann (IMC'21) — spurious-label removal (AS_TRANS and
// reserved ASNs), ambiguous-label treatment policies, and sibling
// removal via AS-to-Organization data.
package validation

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// Label is one validation label for a link. For P2C labels Provider
// identifies the provider endpoint.
type Label struct {
	Type     asgraph.RelType
	Provider asn.ASN
}

// LabelOf converts a ground-truth relationship into a label.
func LabelOf(r asgraph.Rel) Label {
	return Label{Type: r.Type, Provider: r.Provider}
}

// String implements fmt.Stringer.
func (l Label) String() string {
	if l.Type == asgraph.P2C {
		return fmt.Sprintf("p2c(provider=%d)", l.Provider)
	}
	return l.Type.String()
}

// Snapshot is a validation data set: per link, the list of distinct
// labels observed (in observation order). Most links have exactly one
// label; complex/hybrid links and dirty data have several.
type Snapshot struct {
	labels map[asgraph.Link][]Label
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{labels: make(map[asgraph.Link][]Label)}
}

// Add records a label observation for l, ignoring exact duplicates.
func (s *Snapshot) Add(l asgraph.Link, lb Label) {
	for _, have := range s.labels[l] {
		if have == lb {
			return
		}
	}
	s.labels[l] = append(s.labels[l], lb)
}

// Labels returns the labels recorded for l.
func (s *Snapshot) Labels(l asgraph.Link) []Label { return s.labels[l] }

// Label returns the single label for l; ok is false when l is absent
// or carries multiple labels.
func (s *Snapshot) Label(l asgraph.Link) (Label, bool) {
	lbs := s.labels[l]
	if len(lbs) != 1 {
		return Label{}, false
	}
	return lbs[0], true
}

// Has reports whether l has at least one label.
func (s *Snapshot) Has(l asgraph.Link) bool { return len(s.labels[l]) > 0 }

// Len returns the number of labelled links.
func (s *Snapshot) Len() int { return len(s.labels) }

// Links returns all labelled links in deterministic order.
func (s *Snapshot) Links() []asgraph.Link {
	out := make([]asgraph.Link, 0, len(s.labels))
	for l := range s.labels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ForEach calls fn for every (link, labels) pair in unspecified order.
func (s *Snapshot) ForEach(fn func(asgraph.Link, []Label)) {
	for l, lbs := range s.labels {
		fn(l, lbs)
	}
}

// CountByType returns the number of links whose (single) label has the
// given type. Multi-label links are not counted.
func (s *Snapshot) CountByType(t asgraph.RelType) int {
	n := 0
	for _, lbs := range s.labels {
		if len(lbs) == 1 && lbs[0].Type == t {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (s *Snapshot) Clone() *Snapshot {
	c := NewSnapshot()
	for l, lbs := range s.labels {
		c.labels[l] = append([]Label(nil), lbs...)
	}
	return c
}

// remove deletes the entry for l.
func (s *Snapshot) remove(l asgraph.Link) { delete(s.labels, l) }

// SetLabels replaces the labels of l (deleting the entry when labels
// is empty). It is used to model defects in upstream data, e.g. the
// §6.1 "inaccurate validation data" case.
func (s *Snapshot) SetLabels(l asgraph.Link, labels []Label) {
	if len(labels) == 0 {
		delete(s.labels, l)
		return
	}
	s.labels[l] = append([]Label(nil), labels...)
}

// WriteTo serialises the snapshot in a pipe-separated layout modelled
// on the published ASRank validation data:
//
//	<as1>|<as2>|<label>[,<label>...]
//
// where label is "p2c" (as1 is the provider), "c2p" (as2 is the
// provider), "p2p" or "s2s". WriteTo implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := bw.WriteString("# breval validation snapshot\n")
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, l := range s.Links() {
		parts := make([]string, 0, len(s.labels[l]))
		for _, lb := range s.labels[l] {
			switch {
			case lb.Type == asgraph.P2C && lb.Provider == l.A:
				parts = append(parts, "p2c")
			case lb.Type == asgraph.P2C:
				parts = append(parts, "c2p")
			case lb.Type == asgraph.S2S:
				parts = append(parts, "s2s")
			default:
				parts = append(parts, "p2p")
			}
		}
		n, err := fmt.Fprintf(bw, "%d|%d|%s\n", l.A, l.B, strings.Join(parts, ","))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Parse reads a snapshot produced by WriteTo.
func Parse(r io.Reader) (*Snapshot, error) {
	s := NewSnapshot()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) != 3 {
			return nil, fmt.Errorf("validation: line %d: want 3 fields", lineno)
		}
		a, err := asn.Parse(fields[0])
		if err != nil {
			return nil, fmt.Errorf("validation: line %d: %w", lineno, err)
		}
		b, err := asn.Parse(fields[1])
		if err != nil {
			return nil, fmt.Errorf("validation: line %d: %w", lineno, err)
		}
		l := asgraph.NewLink(a, b)
		for _, part := range strings.Split(fields[2], ",") {
			var lb Label
			switch part {
			case "p2c":
				lb = Label{Type: asgraph.P2C, Provider: a}
			case "c2p":
				lb = Label{Type: asgraph.P2C, Provider: b}
			case "p2p":
				lb = Label{Type: asgraph.P2P}
			case "s2s":
				lb = Label{Type: asgraph.S2S}
			default:
				return nil, fmt.Errorf("validation: line %d: unknown label %q", lineno, part)
			}
			if lb.Type == asgraph.P2C && !l.Has(lb.Provider) {
				return nil, fmt.Errorf("validation: line %d: provider not on link", lineno)
			}
			s.Add(l, lb)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}
	return s, nil
}
