package validation

import (
	"bytes"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/org"
)

func lbP2C(provider asn.ASN) Label { return Label{Type: asgraph.P2C, Provider: provider} }
func lbP2P() Label                 { return Label{Type: asgraph.P2P} }
func lbS2S() Label                 { return Label{Type: asgraph.S2S} }

func TestSnapshotAddDedup(t *testing.T) {
	s := NewSnapshot()
	l := asgraph.NewLink(1, 2)
	s.Add(l, lbP2C(1))
	s.Add(l, lbP2C(1)) // duplicate
	if got := s.Labels(l); len(got) != 1 {
		t.Fatalf("Labels = %v", got)
	}
	s.Add(l, lbP2P())
	if got := s.Labels(l); len(got) != 2 {
		t.Fatalf("Labels after second type = %v", got)
	}
	if _, ok := s.Label(l); ok {
		t.Error("Label() must fail on multi-label entries")
	}
	if !s.Has(l) || s.Len() != 1 {
		t.Error("Has/Len wrong")
	}
}

func TestSnapshotCountByType(t *testing.T) {
	s := NewSnapshot()
	s.Add(asgraph.NewLink(1, 2), lbP2C(1))
	s.Add(asgraph.NewLink(1, 3), lbP2C(1))
	s.Add(asgraph.NewLink(2, 3), lbP2P())
	s.Add(asgraph.NewLink(4, 5), lbP2P())
	s.Add(asgraph.NewLink(4, 5), lbP2C(4)) // multi-label: not counted
	if got := s.CountByType(asgraph.P2C); got != 2 {
		t.Errorf("CountByType(P2C) = %d", got)
	}
	if got := s.CountByType(asgraph.P2P); got != 1 {
		t.Errorf("CountByType(P2P) = %d", got)
	}
}

func TestSnapshotSerializationRoundTrip(t *testing.T) {
	s := NewSnapshot()
	s.Add(asgraph.NewLink(10, 2), lbP2C(10)) // canonical link is (2,10): c2p
	s.Add(asgraph.NewLink(1, 3), lbP2P())
	s.Add(asgraph.NewLink(5, 6), lbS2S())
	multi := asgraph.NewLink(7, 8)
	s.Add(multi, lbP2P())
	s.Add(multi, lbP2C(7))

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	if got.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), s.Len())
	}
	lb, ok := got.Label(asgraph.NewLink(10, 2))
	if !ok || lb.Type != asgraph.P2C || lb.Provider != 10 {
		t.Errorf("p2c direction lost: %v %v", lb, ok)
	}
	if lbs := got.Labels(multi); len(lbs) != 2 {
		t.Errorf("multi-label lost: %v", lbs)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"1|2\n",
		"1|2|bogus\n",
		"x|2|p2p\n",
		"1|y|p2p\n",
	} {
		if _, err := Parse(bytes.NewBufferString(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func cleanFixture() (*Snapshot, *org.Table) {
	s := NewSnapshot()
	// Spurious: AS_TRANS and reserved.
	s.Add(asgraph.NewLink(asn.Trans, 5), lbP2C(5))
	s.Add(asgraph.NewLink(asn.Private16First, 6), lbP2P())
	s.Add(asgraph.NewLink(asn.Doc16First, 7), lbP2P())
	// Ambiguous entries.
	m1 := asgraph.NewLink(20, 21)
	s.Add(m1, lbP2P())
	s.Add(m1, lbP2C(20))
	m2 := asgraph.NewLink(22, 23)
	s.Add(m2, lbP2C(23))
	s.Add(m2, lbP2P())
	// Sibling entries: one labelled s2s, one mislabelled p2c.
	s.Add(asgraph.NewLink(30, 31), lbS2S())
	s.Add(asgraph.NewLink(32, 33), lbP2C(32))
	// Clean entries.
	s.Add(asgraph.NewLink(40, 41), lbP2C(40))
	s.Add(asgraph.NewLink(42, 43), lbP2P())

	orgs := org.NewTable()
	orgs.Assign(32, "o1")
	orgs.Assign(33, "o1")
	return s, orgs
}

func TestCleanIgnorePolicy(t *testing.T) {
	s, orgs := cleanFixture()
	out, rep := Clean(s, orgs, Ignore)
	if rep.TransEntries != 1 || rep.ReservedEntries != 2 {
		t.Errorf("spurious: %+v", rep)
	}
	if rep.MultiLabelEntries != 2 || rep.MultiLabelKept != 0 {
		t.Errorf("multi: %+v", rep)
	}
	if rep.MultiLabelASes != 4 {
		t.Errorf("MultiLabelASes = %d, want 4", rep.MultiLabelASes)
	}
	if rep.SiblingEntries != 2 {
		t.Errorf("siblings: %+v", rep)
	}
	if out.Len() != 2 || rep.Kept != 2 {
		t.Errorf("kept %d entries: %+v", out.Len(), rep)
	}
	if _, ok := out.Label(asgraph.NewLink(40, 41)); !ok {
		t.Error("clean p2c entry lost")
	}
}

func TestCleanP2PIfFirstPolicy(t *testing.T) {
	s, orgs := cleanFixture()
	out, rep := Clean(s, orgs, P2PIfFirst)
	if rep.MultiLabelKept != 2 {
		t.Errorf("MultiLabelKept = %d", rep.MultiLabelKept)
	}
	lb, ok := out.Label(asgraph.NewLink(20, 21))
	if !ok || lb.Type != asgraph.P2P {
		t.Errorf("m1 = %v, %v; want p2p (first label p2p)", lb, ok)
	}
	lb, ok = out.Label(asgraph.NewLink(22, 23))
	if !ok || lb.Type != asgraph.P2C || lb.Provider != 23 {
		t.Errorf("m2 = %v, %v; want p2c(23)", lb, ok)
	}
	if out.Len() != 4 {
		t.Errorf("kept %d entries, want 4", out.Len())
	}
}

func TestCleanAlwaysP2CPolicy(t *testing.T) {
	s, orgs := cleanFixture()
	out, _ := Clean(s, orgs, AlwaysP2C)
	lb, ok := out.Label(asgraph.NewLink(20, 21))
	if !ok || lb.Type != asgraph.P2C || lb.Provider != 20 {
		t.Errorf("m1 = %v, %v; want p2c(20)", lb, ok)
	}
	lb, ok = out.Label(asgraph.NewLink(22, 23))
	if !ok || lb.Type != asgraph.P2C || lb.Provider != 23 {
		t.Errorf("m2 = %v, %v; want p2c(23)", lb, ok)
	}
}

func TestCleanAlwaysP2CDropsP2POnlyMulti(t *testing.T) {
	s := NewSnapshot()
	l := asgraph.NewLink(1, 2)
	s.Add(l, lbP2P())
	s.Add(l, lbS2S())
	out, _ := Clean(s, nil, AlwaysP2C)
	if out.Has(l) {
		t.Error("multi-label entry without p2c label kept under AlwaysP2C")
	}
}

func TestCleanNilOrgTable(t *testing.T) {
	s := NewSnapshot()
	s.Add(asgraph.NewLink(1, 2), lbP2C(1))
	out, rep := Clean(s, nil, Ignore)
	if out.Len() != 1 || rep.SiblingEntries != 0 {
		t.Errorf("nil org table: %+v", rep)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewSnapshot()
	s.Add(asgraph.NewLink(1, 2), lbP2P())
	c := s.Clone()
	c.Add(asgraph.NewLink(3, 4), lbP2P())
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("Clone shares state")
	}
}

func TestPolicyString(t *testing.T) {
	if Ignore.String() != "ignore" || P2PIfFirst.String() != "p2p-if-first" ||
		AlwaysP2C.String() != "always-p2c" || AmbiguousPolicy(9).String() != "unknown" {
		t.Error("policy names wrong")
	}
}
