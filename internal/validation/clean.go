package validation

import (
	"breval/internal/asgraph"
	"breval/internal/org"
)

// AmbiguousPolicy selects how entries with multiple labels are
// treated (§4.2). The paper observes that the published per-year
// P2P/P2C counts of TopoScope match the P2PIfFirst policy and those of
// ProbLink match AlwaysP2C, while arguing that Ignore is the only
// defensible choice for classifiers that predict a single label.
type AmbiguousPolicy uint8

// Ambiguous-label treatment policies.
const (
	// Ignore drops multi-label entries from the validation set.
	Ignore AmbiguousPolicy = iota
	// P2PIfFirst keeps a multi-label entry as P2P if its first label
	// is P2P and as P2C otherwise (reproduces TopoScope's counts).
	P2PIfFirst
	// AlwaysP2C keeps every multi-label entry as P2C, using the first
	// P2C label's direction (reproduces ProbLink's counts). Entries
	// with no P2C label at all are dropped.
	AlwaysP2C
)

// String implements fmt.Stringer.
func (p AmbiguousPolicy) String() string {
	switch p {
	case Ignore:
		return "ignore"
	case P2PIfFirst:
		return "p2p-if-first"
	case AlwaysP2C:
		return "always-p2c"
	}
	return "unknown"
}

// CleanReport records what each §4.2 cleaning pass removed or
// rewrote.
type CleanReport struct {
	// TransEntries is the number of entries involving AS_TRANS
	// (AS 23456), ReservedEntries the number involving other reserved
	// ASNs; both are always removed.
	TransEntries    int
	ReservedEntries int
	// MultiLabelEntries is the number of entries that carried more
	// than one label; MultiLabelASes the number of distinct ASes on
	// such entries. Depending on the policy the entries were dropped
	// or collapsed (MultiLabelKept).
	MultiLabelEntries int
	MultiLabelASes    int
	MultiLabelKept    int
	// SiblingEntries is the number of entries removed because the two
	// ASes belong to the same organisation, whether labelled S2S or
	// not.
	SiblingEntries int
	// Kept is the number of single-label entries in the result.
	Kept int
}

// Clean applies the §4.2 passes in order — spurious labels, ambiguous
// labels, sibling labels — and returns a snapshot in which every link
// has exactly one P2C or P2P label.
func Clean(s *Snapshot, orgs *org.Table, policy AmbiguousPolicy) (*Snapshot, CleanReport) {
	var rep CleanReport
	out := NewSnapshot()

	asesOnMulti := make(map[uint32]bool)

	s.ForEach(func(l asgraph.Link, lbs []Label) {
		// Pass 1 — spurious labels.
		if l.A.IsTrans() || l.B.IsTrans() {
			rep.TransEntries++
			return
		}
		if l.A.IsReserved() || l.B.IsReserved() {
			rep.ReservedEntries++
			return
		}

		// Pass 2 — ambiguous labels.
		var lb Label
		if len(lbs) > 1 {
			rep.MultiLabelEntries++
			asesOnMulti[uint32(l.A)] = true
			asesOnMulti[uint32(l.B)] = true
			switch policy {
			case Ignore:
				return
			case P2PIfFirst:
				if lbs[0].Type == asgraph.P2P {
					lb = Label{Type: asgraph.P2P}
				} else {
					lb = firstP2C(lbs)
					if lb.Type != asgraph.P2C {
						return
					}
				}
			case AlwaysP2C:
				lb = firstP2C(lbs)
				if lb.Type != asgraph.P2C {
					return
				}
			}
			rep.MultiLabelKept++
		} else {
			lb = lbs[0]
		}

		// Pass 3 — sibling labels: drop S2S-labelled entries and any
		// entry whose endpoints share an organisation.
		if lb.Type == asgraph.S2S || (orgs != nil && orgs.Siblings(l.A, l.B)) {
			rep.SiblingEntries++
			return
		}

		out.Add(l, lb)
	})
	rep.MultiLabelASes = len(asesOnMulti)
	rep.Kept = out.Len()
	return out, rep
}

func firstP2C(lbs []Label) Label {
	for _, lb := range lbs {
		if lb.Type == asgraph.P2C {
			return lb
		}
	}
	return Label{Type: asgraph.S2S} // sentinel: no P2C label present
}
