package validation

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/org"
)

// randomSnapshot builds an arbitrary snapshot, possibly including
// reserved ASNs, multi-label entries and sibling pairs.
func randomSnapshot(rng *rand.Rand) (*Snapshot, *org.Table) {
	s := NewSnapshot()
	orgs := org.NewTable()
	n := 5 + rng.Intn(60)
	for i := 0; i < n; i++ {
		a := asn.ASN(rng.Intn(500) + 1)
		b := asn.ASN(rng.Intn(500) + 1)
		if a == b {
			continue
		}
		switch rng.Intn(6) {
		case 0: // reserved endpoint
			a = asn.Trans
		case 1:
			a = asn.Private16First + asn.ASN(rng.Intn(100))
		case 2: // sibling pair
			orgs.Assign(a, "shared")
			orgs.Assign(b, "shared")
		}
		l := asgraph.NewLink(a, b)
		switch rng.Intn(3) {
		case 0:
			s.Add(l, Label{Type: asgraph.P2P})
		case 1:
			s.Add(l, Label{Type: asgraph.P2C, Provider: l.A})
		default:
			s.Add(l, Label{Type: asgraph.S2S})
		}
		if rng.Intn(5) == 0 { // multi-label
			s.Add(l, Label{Type: asgraph.P2C, Provider: l.B})
		}
	}
	return s, orgs
}

// Property: serialization round-trips arbitrary snapshots exactly.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := randomSnapshot(rng)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil || got.Len() != s.Len() {
			return false
		}
		ok := true
		s.ForEach(func(l asgraph.Link, lbs []Label) {
			g := got.Labels(l)
			if len(g) != len(lbs) {
				ok = false
				return
			}
			for i := range lbs {
				if g[i] != lbs[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Clean is idempotent and its output is free of reserved
// ASNs, siblings, S2S labels and multi-label entries — for every
// policy.
func TestCleanIdempotentAndSoundProperty(t *testing.T) {
	f := func(seed int64, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, orgs := randomSnapshot(rng)
		policy := AmbiguousPolicy(policyRaw % 3)

		clean, rep := Clean(s, orgs, policy)
		if rep.Kept != clean.Len() {
			return false
		}
		sound := true
		clean.ForEach(func(l asgraph.Link, lbs []Label) {
			if len(lbs) != 1 {
				sound = false
				return
			}
			if l.A.IsReserved() || l.B.IsReserved() {
				sound = false
			}
			if orgs.Siblings(l.A, l.B) {
				sound = false
			}
			if lbs[0].Type == asgraph.S2S {
				sound = false
			}
		})
		if !sound {
			return false
		}
		// Idempotence: cleaning the cleaned snapshot changes nothing.
		again, rep2 := Clean(clean, orgs, policy)
		if again.Len() != clean.Len() {
			return false
		}
		return rep2.TransEntries == 0 && rep2.ReservedEntries == 0 &&
			rep2.MultiLabelEntries == 0 && rep2.SiblingEntries == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
