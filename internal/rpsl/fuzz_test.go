package rpsl

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the RPSL parser: no panics, and
// successfully parsed databases must round-trip through WriteTo.
func FuzzParse(f *testing.F) {
	f.Add("aut-num: AS64500\nimport: from AS3356 accept ANY\nexport: to AS3356 announce AS64500:AS-CUST\n")
	f.Add("% comment\naut-num: AS1\n")
	f.Add("")
	f.Add("garbage: no aut-num\n")

	f.Fuzz(func(t *testing.T, data string) {
		db, err := Parse(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after successful Parse: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip does not parse: %v", err)
		}
		if again.Len() != db.Len() {
			t.Fatalf("round trip changed object count: %d vs %d", again.Len(), db.Len())
		}
	})
}
