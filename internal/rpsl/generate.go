package rpsl

import (
	"math/rand"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/validation"
)

// GenerateConfig controls synthetic IRR generation.
type GenerateConfig struct {
	Seed int64
	// MaintainProb is the probability a registrant documents a given
	// neighbor at all (records are voluntary and sparse).
	MaintainProb float64
	// StaleProb is the probability a documented policy reflects an
	// old relationship: the relationship's direction is rewritten as
	// if the neighbor were still a provider (the typical "left my old
	// upstream in the object" staleness).
	StaleProb float64
}

// DefaultGenerateConfig mirrors the sparseness real IRRs show.
func DefaultGenerateConfig(seed int64) GenerateConfig {
	return GenerateConfig{Seed: seed, MaintainProb: 0.55, StaleProb: 0.07}
}

// Generate builds a synthetic IRR: every AS in registrants gets an
// aut-num object documenting a subset of its true relationships,
// with a fraction of stale policies.
func Generate(truth *asgraph.Graph, registrants []asn.ASN, cfg GenerateConfig) *Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := NewDatabase()
	for _, a := range registrants {
		neighbors := truth.Neighbors(a)
		if len(neighbors) == 0 {
			continue
		}
		obj := &AutNum{ASN: a, Name: "AS" + a.String() + "-NET"}
		for _, nb := range sortedNeighbors(neighbors) {
			if rng.Float64() >= cfg.MaintainProb {
				continue
			}
			var pol Policy
			pol.Neighbor = nb.ASN
			switch nb.Role {
			case asgraph.RoleProvider:
				pol.ImportAny, pol.ExportAny = true, false
			case asgraph.RoleCustomer:
				pol.ImportAny, pol.ExportAny = false, true
			case asgraph.RolePeer:
				pol.ImportAny, pol.ExportAny = false, false
			default: // siblings: ANY/ANY, the ambiguous form
				pol.ImportAny, pol.ExportAny = true, true
			}
			if rng.Float64() < cfg.StaleProb {
				// Stale record: documented as if the neighbor were a
				// provider, whatever it is today.
				pol.ImportAny, pol.ExportAny = true, false
			}
			obj.Policies = append(obj.Policies, pol)
		}
		if len(obj.Policies) > 0 {
			db.Add(obj)
		}
	}
	return db
}

func sortedNeighbors(ns []asgraph.Neighbor) []asgraph.Neighbor {
	out := append([]asgraph.Neighbor(nil), ns...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ASN < out[j-1].ASN; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Extract compiles a validation snapshot from the database, the
// Luckie et al. source-(ii) way: every documented policy pair yields
// one label for the link between registrant and neighbor.
func Extract(db *Database) *validation.Snapshot {
	snap := validation.NewSnapshot()
	for _, a := range db.ASNs() {
		obj, _ := db.Get(a)
		for _, p := range obj.Policies {
			rel, ok := obj.Rel(p.Neighbor)
			if !ok {
				continue
			}
			snap.Add(asgraph.NewLink(a, p.Neighbor), validation.LabelOf(rel))
		}
	}
	return snap
}
