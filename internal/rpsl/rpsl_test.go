package rpsl

import (
	"bytes"
	"strings"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/topogen"
)

func obj64500() *AutNum {
	return &AutNum{
		ASN:  64500,
		Name: "EXAMPLE-NET",
		Policies: []Policy{
			{Neighbor: 3356, ImportAny: true, ExportAny: false},   // provider
			{Neighbor: 64510, ImportAny: false, ExportAny: true},  // customer
			{Neighbor: 64520, ImportAny: false, ExportAny: false}, // peer
			{Neighbor: 64530, ImportAny: true, ExportAny: true},   // ambiguous
		},
	}
}

func TestAutNumRel(t *testing.T) {
	o := obj64500()
	r, ok := o.Rel(3356)
	if !ok || r.Type != asgraph.P2C || r.Provider != 3356 {
		t.Errorf("provider policy: %v %v", r, ok)
	}
	r, ok = o.Rel(64510)
	if !ok || r.Type != asgraph.P2C || r.Provider != 64500 {
		t.Errorf("customer policy: %v %v", r, ok)
	}
	r, ok = o.Rel(64520)
	if !ok || r.Type != asgraph.P2P {
		t.Errorf("peer policy: %v %v", r, ok)
	}
	if _, ok := o.Rel(64530); ok {
		t.Error("ambiguous ANY/ANY policy produced a relationship")
	}
	if _, ok := o.Rel(9999); ok {
		t.Error("undocumented neighbor produced a relationship")
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.Add(obj64500())
	db.Add(&AutNum{ASN: 64510, Policies: []Policy{
		{Neighbor: 64500, ImportAny: true},
	}})

	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	o, ok := got.Get(64500)
	if !ok || o.Name != "EXAMPLE-NET" || len(o.Policies) != 4 {
		t.Fatalf("object 64500 = %+v", o)
	}
	// Relationship reading survives the round trip.
	r, ok := o.Rel(3356)
	if !ok || r.Type != asgraph.P2C || r.Provider != 3356 {
		t.Errorf("round-tripped provider = %v %v", r, ok)
	}
}

func TestParseRealWorldFragment(t *testing.T) {
	const in = `% RIPE-style comment
aut-num: AS64500
as-name: EXAMPLE
import: from AS3356 action pref=100; accept ANY
export: to AS3356 announce AS64500:AS-CUST
mnt-by: EXAMPLE-MNT
source: RIPE
`
	db, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	o, ok := db.Get(64500)
	if !ok {
		t.Fatal("object missing")
	}
	r, ok := o.Rel(3356)
	if !ok || r.Type != asgraph.P2C || r.Provider != 3356 {
		t.Errorf("rel = %v %v", r, ok)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"import: from AS1 accept ANY\n",               // outside aut-num
		"aut-num: ASx\n",                              // bad ASN
		"aut-num: AS1\nimport: garbage\n",             // short policy
		"aut-num: AS1\nimport: toward AS2 accept X\n", // wrong keyword
		"no separator line\n",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestGenerateAndExtract(t *testing.T) {
	w, err := topogen.Generate(topogen.DefaultConfig(5).Scaled(600))
	if err != nil {
		t.Fatal(err)
	}
	// Register every transit AS.
	var regs []asn.ASN
	for _, a := range w.ASNs {
		switch w.Type[a] {
		case topogen.TypeLargeTransit, topogen.TypeSmallTransit:
			regs = append(regs, a)
		}
	}
	cfg := DefaultGenerateConfig(1)
	cfg.StaleProb = 0 // exact in this test
	db := Generate(w.Graph, regs, cfg)
	if db.Len() == 0 {
		t.Fatal("empty IRR")
	}
	snap := Extract(db)
	if snap.Len() == 0 {
		t.Fatal("no labels extracted")
	}
	// Without staleness, single-label entries must match ground truth
	// (multi-label entries arise when both ends document and one side
	// is stale — impossible here, but hybrid truth is not modelled in
	// RPSL, so just skip multi-label).
	wrong := 0
	for _, l := range snap.Links() {
		lbs := snap.Labels(l)
		if len(lbs) != 1 {
			continue
		}
		truth, ok := w.Graph.RelOn(l)
		if !ok {
			t.Fatalf("label for unknown link %v", l)
		}
		if truth.Type == asgraph.S2S {
			continue // documented as ambiguous, never extracted
		}
		if lbs[0].Type != truth.Type ||
			(truth.Type == asgraph.P2C && lbs[0].Provider != truth.Provider) {
			wrong++
		}
	}
	if wrong != 0 {
		t.Errorf("%d labels disagree with ground truth despite zero staleness", wrong)
	}
}

func TestGenerateStaleness(t *testing.T) {
	w, err := topogen.Generate(topogen.DefaultConfig(6).Scaled(600))
	if err != nil {
		t.Fatal(err)
	}
	var regs []asn.ASN
	for _, a := range w.ASNs {
		if !w.Graph.IsStub(a) {
			regs = append(regs, a)
		}
	}
	cfg := DefaultGenerateConfig(2)
	cfg.StaleProb = 0.5 // exaggerate for the test
	db := Generate(w.Graph, regs, cfg)
	snap := Extract(db)
	wrong := 0
	total := 0
	for _, l := range snap.Links() {
		lbs := snap.Labels(l)
		if len(lbs) != 1 {
			continue
		}
		truth, ok := w.Graph.RelOn(l)
		if !ok || truth.Type == asgraph.S2S {
			continue
		}
		total++
		if lbs[0].Type != truth.Type ||
			(truth.Type == asgraph.P2C && lbs[0].Provider != truth.Provider) {
			wrong++
		}
	}
	if total == 0 || wrong == 0 {
		t.Errorf("staleness produced no wrong labels (%d/%d)", wrong, total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w, err := topogen.Generate(topogen.DefaultConfig(7).Scaled(400))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGenerateConfig(3)
	db1 := Generate(w.Graph, w.ASNs, cfg)
	db2 := Generate(w.Graph, w.ASNs, cfg)
	var b1, b2 bytes.Buffer
	if _, err := db1.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("IRR generation not deterministic")
	}
}
