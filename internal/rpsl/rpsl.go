// Package rpsl implements the second validation-data source of Luckie
// et al. (IMC'13), which the paper's §3.2 discusses alongside the
// community-based one: AS relationships encoded in Routing Policy
// Specification Language (RFC 2622) aut-num objects inside IRR/WHOIS
// databases.
//
// An operator that documents
//
//	aut-num: AS64500
//	import:  from AS3356 accept ANY
//	export:  to AS3356 announce AS64500:AS-CUST
//	import:  from AS64510 accept AS64510
//	export:  to AS64510 announce ANY
//
// reveals its relationships: importing ANY from a neighbor while
// announcing only one's own cone marks the neighbor as a provider;
// announcing ANY to a neighbor that only gives its own routes marks it
// a customer; symmetric customer-cone exchanges mark peers.
//
// As §3.2 notes, WHOIS records are maintained voluntarily and go
// stale; the extractor therefore takes the registry as-is and the
// synthetic IRR generator can age a fraction of the objects so they
// contradict the current ground truth.
package rpsl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// Policy is the per-neighbor import/export pair of an aut-num object.
type Policy struct {
	Neighbor asn.ASN
	// ImportAny is true when the object accepts ANY from the
	// neighbor (typical towards providers).
	ImportAny bool
	// ExportAny is true when the object announces ANY to the
	// neighbor (typical towards customers).
	ExportAny bool
}

// AutNum is one aut-num object.
type AutNum struct {
	ASN      asn.ASN
	Name     string
	Policies []Policy
}

// Rel derives the relationship the object's owner claims to have with
// the given neighbor, following the standard RPSL reading:
//
//	import ANY + export own cone  -> neighbor is a provider
//	import cone + export ANY      -> neighbor is a customer
//	import cone + export own cone -> peer
//	import ANY  + export ANY      -> ambiguous (sibling/backup mix); skipped
func (a *AutNum) Rel(neighbor asn.ASN) (asgraph.Rel, bool) {
	for _, p := range a.Policies {
		if p.Neighbor != neighbor {
			continue
		}
		switch {
		case p.ImportAny && !p.ExportAny:
			return asgraph.P2CRel(neighbor), true // neighbor provides transit
		case !p.ImportAny && p.ExportAny:
			return asgraph.P2CRel(a.ASN), true // owner provides transit
		case !p.ImportAny && !p.ExportAny:
			return asgraph.P2PRel(), true
		}
		return asgraph.Rel{}, false // ANY/ANY: ambiguous
	}
	return asgraph.Rel{}, false
}

// Database is a collection of aut-num objects keyed by ASN.
type Database struct {
	objects map[asn.ASN]*AutNum
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{objects: make(map[asn.ASN]*AutNum)}
}

// Add registers (replacing) an object.
func (db *Database) Add(obj *AutNum) { db.objects[obj.ASN] = obj }

// Get returns the object for a.
func (db *Database) Get(a asn.ASN) (*AutNum, bool) {
	obj, ok := db.objects[a]
	return obj, ok
}

// Len returns the number of objects.
func (db *Database) Len() int { return len(db.objects) }

// ASNs lists all object owners in ascending order.
func (db *Database) ASNs() []asn.ASN {
	out := make([]asn.ASN, 0, len(db.objects))
	for a := range db.objects {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteTo serialises the database in RPSL object layout, objects in
// ascending ASN order, policies in declaration order. WriteTo
// implements io.WriterTo.
func (db *Database) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	emit := func(s string) error {
		n, err := bw.WriteString(s)
		total += int64(n)
		return err
	}
	for _, a := range db.ASNs() {
		obj := db.objects[a]
		if err := emit(fmt.Sprintf("aut-num: AS%d\n", obj.ASN)); err != nil {
			return total, err
		}
		if obj.Name != "" {
			if err := emit(fmt.Sprintf("as-name: %s\n", obj.Name)); err != nil {
				return total, err
			}
		}
		for _, p := range obj.Policies {
			imp := fmt.Sprintf("AS%d", p.Neighbor)
			if p.ImportAny {
				imp = "ANY"
			}
			exp := fmt.Sprintf("AS%d:AS-CUST", obj.ASN)
			if p.ExportAny {
				exp = "ANY"
			}
			if err := emit(fmt.Sprintf("import: from AS%d accept %s\n", p.Neighbor, imp)); err != nil {
				return total, err
			}
			if err := emit(fmt.Sprintf("export: to AS%d announce %s\n", p.Neighbor, exp)); err != nil {
				return total, err
			}
		}
		if err := emit("source: BREVAL-IRR\n\n"); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Parse reads a database written by WriteTo (or hand-authored in the
// same RPSL subset). Unknown attributes are skipped; objects are
// separated by blank lines or the next aut-num attribute.
func Parse(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var cur *AutNum
	// pending tracks half-built policies: neighbor -> *Policy.
	var pending map[asn.ASN]*Policy
	flush := func() {
		if cur != nil {
			db.Add(cur)
		}
		cur = nil
		pending = nil
	}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		attr, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("rpsl: line %d: no attribute separator", lineno)
		}
		attr = strings.ToLower(strings.TrimSpace(attr))
		value = strings.TrimSpace(value)
		switch attr {
		case "aut-num":
			flush()
			a, err := asn.Parse(value)
			if err != nil {
				return nil, fmt.Errorf("rpsl: line %d: %w", lineno, err)
			}
			cur = &AutNum{ASN: a}
			pending = make(map[asn.ASN]*Policy)
		case "as-name":
			if cur != nil {
				cur.Name = value
			}
		case "import", "export":
			if cur == nil {
				return nil, fmt.Errorf("rpsl: line %d: %s outside aut-num", lineno, attr)
			}
			nb, any, err := parsePolicyLine(attr, value)
			if err != nil {
				return nil, fmt.Errorf("rpsl: line %d: %w", lineno, err)
			}
			p := pending[nb]
			if p == nil {
				p = &Policy{Neighbor: nb}
				pending[nb] = p
				cur.Policies = append(cur.Policies, Policy{})
				// placeholder; rewritten on flushPolicies below
			}
			if attr == "import" {
				p.ImportAny = any
			} else {
				p.ExportAny = any
			}
			// Rewrite the object's policies from pending, keeping
			// neighbor order stable by ASN.
			cur.Policies = cur.Policies[:0]
			nbs := make([]asn.ASN, 0, len(pending))
			for n := range pending {
				nbs = append(nbs, n)
			}
			sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
			for _, n := range nbs {
				cur.Policies = append(cur.Policies, *pending[n])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rpsl: %w", err)
	}
	flush()
	return db, nil
}

// parsePolicyLine handles "from ASx accept Y" / "to ASx announce Y".
func parsePolicyLine(attr, value string) (asn.ASN, bool, error) {
	fields := strings.Fields(value)
	if len(fields) < 3 {
		return 0, false, fmt.Errorf("short %s policy %q", attr, value)
	}
	kw1, kw2 := "from", "accept"
	if attr == "export" {
		kw1, kw2 = "to", "announce"
	}
	if !strings.EqualFold(fields[0], kw1) {
		return 0, false, fmt.Errorf("%s policy must start with %q", attr, kw1)
	}
	nb, err := asn.Parse(fields[1])
	if err != nil {
		return 0, false, err
	}
	// The filter follows the accept/announce keyword; action clauses
	// ("action pref=100;") may sit in between.
	for i := 2; i+1 < len(fields); i++ {
		if strings.EqualFold(fields[i], kw2) {
			return nb, strings.EqualFold(fields[i+1], "ANY"), nil
		}
	}
	// Bare form without the keyword: "from ASx ANY".
	if len(fields) == 3 && !strings.EqualFold(fields[2], kw2) {
		return nb, strings.EqualFold(fields[2], "ANY"), nil
	}
	return 0, false, fmt.Errorf("missing %s filter in %q", kw2, value)
}
