package communities

import (
	"encoding/binary"
	"errors"
	"fmt"

	"breval/internal/asn"
)

// Raw attribute codecs for the two community attributes real BGP
// speakers put on the wire: RFC 1997 classic communities (4 bytes
// each) and RFC 8092 large communities (12 bytes each). They live in
// this package — not internal/wire — so every decoder that meets
// community bytes (UPDATE messages, TABLE_DUMP_V2 path attributes)
// feeds the same types the extraction model consumes.

// Large is an RFC 8092 large community: a 4-byte global administrator
// (the tagging ASN, which may be 32-bit) and two 4-byte local data
// fields.
type Large struct {
	Global       asn.ASN
	Data1, Data2 uint32
}

// String implements fmt.Stringer.
func (c Large) String() string {
	return fmt.Sprintf("%d:%d:%d", c.Global, c.Data1, c.Data2)
}

// ErrBadLength reports a community attribute whose value length is not
// a multiple of the element size; per RFC 7606 such an attribute is
// discarded whole rather than decoded partially.
var ErrBadLength = errors.New("communities: attribute length not a multiple of element size")

// DecodeClassic parses an RFC 1997 COMMUNITIES attribute value.
func DecodeClassic(val []byte) ([]Community, error) {
	if len(val)%4 != 0 {
		return nil, fmt.Errorf("%w (classic, %d bytes)", ErrBadLength, len(val))
	}
	if len(val) == 0 {
		return nil, nil
	}
	out := make([]Community, 0, len(val)/4)
	for i := 0; i < len(val); i += 4 {
		out = append(out, Community{
			ASN:   asn.ASN(binary.BigEndian.Uint16(val[i : i+2])),
			Value: binary.BigEndian.Uint16(val[i+2 : i+4]),
		})
	}
	return out, nil
}

// DecodeLarge parses an RFC 8092 LARGE_COMMUNITIES attribute value.
func DecodeLarge(val []byte) ([]Large, error) {
	if len(val)%12 != 0 {
		return nil, fmt.Errorf("%w (large, %d bytes)", ErrBadLength, len(val))
	}
	if len(val) == 0 {
		return nil, nil
	}
	out := make([]Large, 0, len(val)/12)
	for i := 0; i < len(val); i += 12 {
		out = append(out, Large{
			Global: asn.ASN(binary.BigEndian.Uint32(val[i : i+4])),
			Data1:  binary.BigEndian.Uint32(val[i+4 : i+8]),
			Data2:  binary.BigEndian.Uint32(val[i+8 : i+12]),
		})
	}
	return out, nil
}

// AppendClassic appends the attribute-value encoding of cs to dst. The
// caller must have checked every ASN fits 16 bits (asn.ASN.Is16Bit).
func AppendClassic(dst []byte, cs []Community) []byte {
	for _, c := range cs {
		dst = binary.BigEndian.AppendUint16(dst, uint16(c.ASN))
		dst = binary.BigEndian.AppendUint16(dst, c.Value)
	}
	return dst
}

// AppendLarge appends the attribute-value encoding of cs to dst.
func AppendLarge(dst []byte, cs []Large) []byte {
	for _, c := range cs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(c.Global))
		dst = binary.BigEndian.AppendUint32(dst, c.Data1)
		dst = binary.BigEndian.AppendUint32(dst, c.Data2)
	}
	return dst
}
