package communities

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/topogen"
	"breval/internal/validation"
)

// extractFixture: 1--2 clique; 1->10, 1->11 p2c; 10--11 p2p;
// 10->100 p2c; 11->102 p2c.
func extractFixture() *asgraph.Graph {
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(1, 11, asgraph.P2CRel(1))
	g.MustSetRel(10, 11, asgraph.P2PRel())
	g.MustSetRel(10, 100, asgraph.P2CRel(10))
	g.MustSetRel(11, 102, asgraph.P2CRel(11))
	return g
}

func pathSet(paths ...asgraph.Path) *bgp.PathSet {
	ps := bgp.NewPathSet(len(paths), 16)
	for _, p := range paths {
		ps.Append(p)
	}
	return ps
}

func TestDictionaryRoundTrip(t *testing.T) {
	for _, a := range []asn.ASN{1, 2, 3, 4, 100} {
		d := NewDictionary(a)
		for _, role := range []asgraph.Role{
			asgraph.RoleCustomer, asgraph.RolePeer, asgraph.RoleProvider, asgraph.RoleSibling,
		} {
			v, ok := d.AppliedValue(role)
			if !ok {
				t.Fatalf("AS%d: no applied value for %v", a, role)
			}
			m := d.Decode(v)
			want := map[asgraph.Role]Meaning{
				asgraph.RoleCustomer: MeaningFromCustomer,
				asgraph.RolePeer:     MeaningFromPeer,
				asgraph.RoleProvider: MeaningFromProvider,
				asgraph.RoleSibling:  MeaningFromSibling,
			}[role]
			if m != want {
				t.Errorf("AS%d role %v: decoded %v, want %v", a, role, m, want)
			}
		}
	}
}

func TestSchemesDisagree(t *testing.T) {
	// The ambiguity of §3.2: the same value decodes differently (or
	// not at all) at publishers using different schemes.
	d0 := NewDictionary(0) // scheme 0: 200 = peer
	d3 := NewDictionary(3) // scheme 3: 666 = peer
	if d0.Decode(200) != MeaningFromPeer {
		t.Error("scheme 0: 200 should be peer")
	}
	if d3.Decode(666) != MeaningFromPeer {
		t.Error("scheme 3: 666 should be peer")
	}
	if d0.Decode(666) == MeaningFromPeer {
		t.Error("scheme 0 should not decode 666 as peer")
	}
}

func TestStaleDictionaryMislabelsPeers(t *testing.T) {
	d := NewStaleDictionary(7)
	v, _ := d.AppliedValue(asgraph.RolePeer)
	if d.Decode(v) != MeaningFromCustomer {
		t.Error("stale dictionary should decode peer-tagged routes as customer")
	}
	if !d.Stale {
		t.Error("Stale flag unset")
	}
}

func TestDecodeToLabel(t *testing.T) {
	r, ok := DecodeToLabel(10, 100, MeaningFromCustomer)
	if !ok || r.Type != asgraph.P2C || r.Provider != 10 {
		t.Errorf("customer: %v %v", r, ok)
	}
	r, ok = DecodeToLabel(10, 1, MeaningFromProvider)
	if !ok || r.Type != asgraph.P2C || r.Provider != 1 {
		t.Errorf("provider: %v %v", r, ok)
	}
	r, ok = DecodeToLabel(10, 11, MeaningFromPeer)
	if !ok || r.Type != asgraph.P2P {
		t.Errorf("peer: %v %v", r, ok)
	}
	r, ok = DecodeToLabel(10, 11, MeaningFromSibling)
	if !ok || r.Type != asgraph.S2S {
		t.Errorf("sibling: %v %v", r, ok)
	}
	if _, ok := DecodeToLabel(10, 11, MeaningNoExportToPeers); ok {
		t.Error("action community decoded to a label")
	}
	if _, ok := DecodeToLabel(10, 11, MeaningNone); ok {
		t.Error("unknown value decoded to a label")
	}
}

func TestExtractPublisherTagsOnly(t *testing.T) {
	g := extractFixture()
	// Only AS 10 publishes.
	ex := NewExtractor(g, map[asn.ASN]bool{10: true}, nil, nil)
	// Path 100<-10<-1<-11<-102 seen at VP 100 (order VP..origin).
	snap := ex.Extract(pathSet(asgraph.Path{100, 10, 1, 11, 102}))
	// AS 10 is at position 1, next toward origin is 1 (its provider).
	lb, ok := snap.Label(asgraph.NewLink(10, 1))
	if !ok || lb.Type != asgraph.P2C || lb.Provider != 1 {
		t.Errorf("10-1 label = %v, %v; want p2c(1)", lb, ok)
	}
	// No other link may be labelled: 1 and 11 do not publish.
	if snap.Len() != 1 {
		t.Errorf("snapshot has %d entries, want 1: %v", snap.Len(), snap.Links())
	}
}

func TestExtractAllRoles(t *testing.T) {
	g := extractFixture()
	ex := NewExtractor(g, map[asn.ASN]bool{10: true}, nil, nil)
	snap := ex.Extract(pathSet(
		asgraph.Path{100, 10, 1},  // 10 learned from provider 1... position 1, next=1
		asgraph.Path{1, 10, 100},  // 10 tags customer 100
		asgraph.Path{100, 10, 11}, // 10 tags peer 11
	))
	if lb, ok := snap.Label(asgraph.NewLink(10, 100)); !ok || lb.Type != asgraph.P2C || lb.Provider != 10 {
		t.Errorf("10-100 = %v, %v", lb, ok)
	}
	if lb, ok := snap.Label(asgraph.NewLink(10, 11)); !ok || lb.Type != asgraph.P2P {
		t.Errorf("10-11 = %v, %v", lb, ok)
	}
}

func TestExtractStrippingBlocksDeepTags(t *testing.T) {
	g := extractFixture()
	// 11 publishes, but 1 strips foreign communities: the tag 11 sets
	// on the 11-102 link cannot reach VP 100 through 1.
	ex := NewExtractor(g, map[asn.ASN]bool{11: true},
		map[asn.ASN]bool{1: true}, nil)
	snap := ex.Extract(pathSet(asgraph.Path{100, 10, 1, 11, 102}))
	if snap.Len() != 0 {
		t.Errorf("stripped tag extracted: %v", snap.Links())
	}
	// But a VP adjacent to 11 still sees it.
	snap = ex.Extract(pathSet(asgraph.Path{1, 11, 102}))
	// Position 0 is the VP itself (1, strips but tags set by deeper
	// publisher 11 at position 1 must pass through... 1 strips, so no.
	if snap.Len() != 0 {
		t.Errorf("tag through stripping VP extracted: %v", snap.Links())
	}
	snap = ex.Extract(pathSet(asgraph.Path{11, 102}))
	if lb, ok := snap.Label(asgraph.NewLink(11, 102)); !ok || lb.Type != asgraph.P2C || lb.Provider != 11 {
		t.Errorf("VP's own tag lost: %v %v", lb, ok)
	}
}

func TestExtractStaleDictionaryProducesWrongLabel(t *testing.T) {
	g := extractFixture()
	ex := NewExtractor(g, map[asn.ASN]bool{10: true}, nil, []asn.ASN{10})
	snap := ex.Extract(pathSet(asgraph.Path{100, 10, 11})) // 11 is 10's peer
	lb, ok := snap.Label(asgraph.NewLink(10, 11))
	if !ok || lb.Type != asgraph.P2C || lb.Provider != 10 {
		t.Errorf("stale label = %v, %v; want wrong p2c(10)", lb, ok)
	}
}

func TestExtractHybridYieldsMultipleLabels(t *testing.T) {
	g := extractFixture()
	r, _ := g.Rel(10, 11)
	r.Hybrid = true
	g.MustSetRel(10, 11, r)
	ex := NewExtractor(g, map[asn.ASN]bool{10: true}, nil, nil)
	// Two VPs of different parity observe the same link.
	snap := ex.Extract(pathSet(
		asgraph.Path{100, 10, 11}, // vp 100: (100+11)%2 == 1 -> base (peer)
		asgraph.Path{101, 10, 11}, // vp 101: (101+11)%2 == 0 -> customer PoP
	))
	lbs := snap.Labels(asgraph.NewLink(10, 11))
	if len(lbs) != 2 {
		t.Fatalf("hybrid link labels = %v, want 2", lbs)
	}
}

func TestExtractOnSyntheticWorld(t *testing.T) {
	w, err := topogen.Generate(topogen.DefaultConfig(33).Scaled(600))
	if err != nil {
		t.Fatal(err)
	}
	sim := bgp.NewSimulator(w.Graph)
	ps := sim.Propagate(w.ASNs, w.VPs)
	ex := NewExtractor(w.Graph, w.Publishers, w.Strippers, nil)
	snap := ex.Extract(ps)
	if snap.Len() == 0 {
		t.Fatal("no validation data extracted")
	}
	// Every extracted label must describe a link adjacent to a
	// publisher, and (accurate dictionaries, no hybrid surprises
	// beyond multi-labels) match ground truth for single-label
	// non-hybrid entries.
	wrong := 0
	snap.ForEach(func(l asgraph.Link, lbs []validation.Label) {
		if !w.Publishers[l.A] && !w.Publishers[l.B] {
			t.Errorf("label on %v but neither endpoint publishes", l)
		}
		truth, ok := w.Graph.RelOn(l)
		if !ok {
			t.Errorf("label on unknown link %v", l)
			return
		}
		if truth.Hybrid || len(lbs) != 1 {
			return
		}
		if lbs[0].Type != truth.Type ||
			(truth.Type == asgraph.P2C && lbs[0].Provider != truth.Provider) {
			wrong++
		}
	})
	if wrong != 0 {
		t.Errorf("%d single-label entries disagree with ground truth", wrong)
	}
	// Coverage must be partial: publishers are a biased subset.
	visible := make(map[asgraph.Link]bool)
	ps.ForEach(func(p asgraph.Path) {
		for i := 0; i+1 < len(p); i++ {
			visible[asgraph.NewLink(p[i], p[i+1])] = true
		}
	})
	if snap.Len() >= len(visible) {
		t.Errorf("validation covers %d of %d visible links; expected partial coverage",
			snap.Len(), len(visible))
	}
}

func TestCommunityString(t *testing.T) {
	c := Community{ASN: 3356, Value: 666}
	if c.String() != "3356:666" {
		t.Errorf("String = %q", c.String())
	}
	if MeaningFromPeer.String() != "learned-from-peer" || MeaningNone.String() != "none" {
		t.Error("meaning names wrong")
	}
}
