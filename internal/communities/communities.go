// Package communities models relationship-encoding BGP communities and
// the Luckie et al. (IMC'13) extraction method that turns them into
// "best-effort" validation data for AS relationships.
//
// A publisher AS documents a dictionary mapping community values to
// meanings ("learned from customer", "learned from peer", ...). Its
// routers tag every route on ingress with the value that corresponds
// to the true relationship of the neighbor the route was learned from.
// A route collector that receives a route whose communities include
// publisher X's tag for "learned from peer" reveals the relationship
// between X and the next AS on the path.
//
// Two real-world defects are modelled because the paper's §4.2 and
// §6.1 hinge on them:
//
//   - Stale dictionaries: a publisher's documentation may not match
//     its router configuration anymore, producing wrong labels
//     ("inaccurate validation data" in §6.1).
//   - Community stripping: ASes that scrub foreign communities on
//     export destroy tags set below them, so a tag only reaches the
//     collector if no AS between the publisher and the vantage point
//     strips (this is what makes the sampling biased towards links
//     near vantage points).
package communities

import (
	"fmt"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// Community is one RFC 1997 community value: the high 16 bits carry
// the tagging AS, the low 16 bits the value.
type Community struct {
	ASN   asn.ASN // tagging AS (16-bit in the classic attribute)
	Value uint16
}

// String implements fmt.Stringer.
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.ASN, c.Value) }

// Meaning is what a community value encodes in a publisher's
// dictionary.
type Meaning uint8

// Meanings relevant to relationship extraction. MeaningOther covers
// everything else a dictionary documents (blackholing, traffic
// engineering, ...) which extraction ignores.
const (
	MeaningNone Meaning = iota
	MeaningFromCustomer
	MeaningFromPeer
	MeaningFromProvider
	MeaningFromSibling
	MeaningNoExportToPeers // action community, e.g. 174:990
	MeaningOther
)

// String implements fmt.Stringer.
func (m Meaning) String() string {
	switch m {
	case MeaningFromCustomer:
		return "learned-from-customer"
	case MeaningFromPeer:
		return "learned-from-peer"
	case MeaningFromProvider:
		return "learned-from-provider"
	case MeaningFromSibling:
		return "learned-from-sibling"
	case MeaningNoExportToPeers:
		return "no-export-to-peers"
	case MeaningOther:
		return "other"
	}
	return "none"
}

// Dictionary is a publisher's documented community encoding. Values
// holds the documented meaning per community value. Applied holds the
// value the routers actually tag per relationship; for an accurate
// dictionary the two agree.
type Dictionary struct {
	ASN    asn.ASN
	Values map[uint16]Meaning
	// applied maps the true ingress role to the tagged value.
	applied map[asgraph.Role]uint16
	// Stale marks dictionaries whose documentation diverged from the
	// router configuration (see NewStaleDictionary).
	Stale bool
}

// Value schemes: publishers use one of a few conventional layouts
// (mirroring how e.g. 3356, 174 and 2914 use different value ranges),
// so identical values mean different things at different ASes — the
// ambiguity §3.2 discusses.
var schemes = [][4]uint16{
	// customer, peer, provider, sibling
	{100, 200, 300, 400},
	{1000, 2000, 3000, 4000},
	{65, 66, 67, 68},
	{3001, 666, 2001, 4001}, // note: 666 is blackhole at other ASes
}

// NewDictionary builds an accurate dictionary for publisher a using a
// value scheme chosen by the publisher's ASN.
func NewDictionary(a asn.ASN) *Dictionary {
	s := schemes[int(a)%len(schemes)]
	d := &Dictionary{
		ASN: a,
		Values: map[uint16]Meaning{
			s[0]: MeaningFromCustomer,
			s[1]: MeaningFromPeer,
			s[2]: MeaningFromProvider,
			s[3]: MeaningFromSibling,
			990:  MeaningNoExportToPeers,
		},
		applied: map[asgraph.Role]uint16{
			asgraph.RoleCustomer: s[0],
			asgraph.RolePeer:     s[1],
			asgraph.RoleProvider: s[2],
			asgraph.RoleSibling:  s[3],
		},
	}
	return d
}

// NewStaleDictionary builds a dictionary whose documentation is out of
// date: the routers tag peer ingress with the value the documentation
// declares as the customer tag. Extraction through such a dictionary
// yields P2C labels for links that are really P2P — the "inaccurate
// validation data" case of §6.1.
func NewStaleDictionary(a asn.ASN) *Dictionary {
	d := NewDictionary(a)
	d.Stale = true
	// Routers were reconfigured: peer ingress now tags the documented
	// customer value.
	d.applied[asgraph.RolePeer] = d.applied[asgraph.RoleCustomer]
	return d
}

// AppliedValue returns the community value the publisher's routers tag
// for a route learned over the given ingress role.
func (d *Dictionary) AppliedValue(role asgraph.Role) (uint16, bool) {
	v, ok := d.applied[role]
	return v, ok
}

// Decode returns the documented meaning of value v.
func (d *Dictionary) Decode(v uint16) Meaning { return d.Values[v] }

// DecodeToLabel converts a documented meaning observed on a route
// tagged by publisher x about the link x-neighbor into a relationship
// label, following Luckie et al.: "learned from customer" implies the
// neighbor is x's customer, etc. ok is false for non-relationship
// meanings.
func DecodeToLabel(x, neighbor asn.ASN, m Meaning) (asgraph.Rel, bool) {
	switch m {
	case MeaningFromCustomer:
		return asgraph.P2CRel(x), true
	case MeaningFromPeer:
		return asgraph.P2PRel(), true
	case MeaningFromProvider:
		return asgraph.P2CRel(neighbor), true
	case MeaningFromSibling:
		return asgraph.S2SRel(), true
	}
	return asgraph.Rel{}, false
}
