package communities

import (
	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/validation"
)

// Extractor replays the community-based validation-data compilation
// over a set of collector-observed paths. For every path position
// occupied by a publisher X, the tag X applied on ingress (derived
// from the true relationship to the next AS towards the origin, via
// X's — possibly stale — dictionary) is decoded back into a label,
// provided the tag survived to the collector (no stripping AS between
// X and the vantage point).
type Extractor struct {
	// Truth is the ground-truth graph the taggers configure their
	// routers from.
	Truth *asgraph.Graph
	// Dictionaries per publisher AS.
	Dictionaries map[asn.ASN]*Dictionary
	// Strippers are ASes that scrub foreign communities on export.
	Strippers map[asn.ASN]bool
}

// NewExtractor builds an extractor with accurate dictionaries for all
// publishers, then replaces the dictionaries of the ASes listed in
// stale with stale ones.
func NewExtractor(truth *asgraph.Graph, publishers map[asn.ASN]bool, strippers map[asn.ASN]bool, stale []asn.ASN) *Extractor {
	dicts := make(map[asn.ASN]*Dictionary, len(publishers))
	for a, ok := range publishers {
		if ok {
			dicts[a] = NewDictionary(a)
		}
	}
	for _, a := range stale {
		if _, ok := dicts[a]; ok {
			dicts[a] = NewStaleDictionary(a)
		}
	}
	return &Extractor{Truth: truth, Dictionaries: dicts, Strippers: strippers}
}

// ingressRole returns the role of neighbor relative to x for the route
// observed by vantage point vp. Hybrid links resolve to different
// relationships at different PoPs; which PoP a route crosses is
// deterministic in (vp, link).
func (e *Extractor) ingressRole(x, neighbor, vp asn.ASN) (asgraph.Role, bool) {
	r, ok := e.Truth.Rel(x, neighbor)
	if !ok {
		return 0, false
	}
	if r.Hybrid {
		// Half the vantage points observe the link at a PoP where it
		// behaves as P2C (x the provider), the rest at the documented
		// base relationship.
		if (uint32(vp)+uint32(neighbor))%2 == 0 {
			return asgraph.RoleCustomer, true
		}
	}
	switch r.Type {
	case asgraph.P2P:
		return asgraph.RolePeer, true
	case asgraph.S2S:
		return asgraph.RoleSibling, true
	case asgraph.P2C:
		if r.Provider == x {
			return asgraph.RoleCustomer, true
		}
		return asgraph.RoleProvider, true
	}
	return 0, false
}

// Extract compiles the raw (uncleaned) validation snapshot from the
// path set.
func (e *Extractor) Extract(ps *bgp.PathSet) *validation.Snapshot {
	snap := validation.NewSnapshot()
	e.ExtractInto(ps, snap)
	return snap
}

// ExtractInto is Extract's streaming form: it accumulates one path
// block's evidence into snap. Extraction is per-path, so feeding every
// propagation block in emission order yields exactly the snapshot
// Extract would build from the merged arena — callers sitting on
// bgp.(*Simulator).PropagateBlocks never need to materialise the full
// raw path universe.
func (e *Extractor) ExtractInto(blk *bgp.PathSet, snap *validation.Snapshot) {
	blk.ForEach(func(p asgraph.Path) {
		e.extractPath(p, snap)
	})
}

func (e *Extractor) extractPath(p asgraph.Path, snap *validation.Snapshot) {
	vp := p.VantagePoint()
	for i := 0; i+1 < len(p); i++ {
		x := p[i]
		// A tag set by x survives to the collector only if no AS
		// between x and the collector strips foreign communities.
		// Check incrementally: once a stripper is passed, deeper tags
		// are unreachable too — but tags set by the stripper itself
		// survive, so test positions before x only.
		if i > 0 && e.Strippers[p[i-1]] {
			// p[i-1] strips; nothing x or anyone beyond tags gets
			// through — unless an earlier position already failed,
			// which the return below handles uniformly.
			return
		}
		dict, ok := e.Dictionaries[x]
		if !ok {
			continue
		}
		role, ok := e.ingressRole(x, p[i+1], vp)
		if !ok {
			continue
		}
		value, ok := dict.AppliedValue(role)
		if !ok {
			continue
		}
		meaning := dict.Decode(value)
		rel, ok := DecodeToLabel(x, p[i+1], meaning)
		if !ok {
			continue
		}
		snap.Add(asgraph.NewLink(x, p[i+1]), validation.LabelOf(rel))
	}
}
