package communities

import (
	"errors"
	"reflect"
	"testing"
)

func TestClassicCodecRoundTrip(t *testing.T) {
	cs := []Community{{ASN: 3356, Value: 666}, {ASN: 174, Value: 990}, {ASN: 0, Value: 0}}
	got, err := DecodeClassic(AppendClassic(nil, cs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Errorf("round trip = %v, want %v", got, cs)
	}
}

func TestLargeCodecRoundTrip(t *testing.T) {
	cs := []Large{
		{Global: 4200000001, Data1: 1, Data2: 990},
		{Global: 3356, Data1: 0, Data2: 0xffffffff},
	}
	got, err := DecodeLarge(AppendLarge(nil, cs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Errorf("round trip = %v, want %v", got, cs)
	}
	if cs[0].String() != "4200000001:1:990" {
		t.Errorf("String = %q", cs[0].String())
	}
}

func TestDecodeEmptyIsNil(t *testing.T) {
	if cs, err := DecodeClassic(nil); err != nil || cs != nil {
		t.Errorf("classic empty: %v, %v", cs, err)
	}
	if cs, err := DecodeLarge(nil); err != nil || cs != nil {
		t.Errorf("large empty: %v, %v", cs, err)
	}
}

// TestDecodeBadLength: per RFC 7606 a misaligned attribute is refused
// whole — no partial decode of the aligned head.
func TestDecodeBadLength(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7} {
		if _, err := DecodeClassic(make([]byte, n)); !errors.Is(err, ErrBadLength) {
			t.Errorf("classic %d bytes: err = %v, want ErrBadLength", n, err)
		}
	}
	for _, n := range []int{1, 4, 11, 13, 25} {
		if _, err := DecodeLarge(make([]byte, n)); !errors.Is(err, ErrBadLength) {
			t.Errorf("large %d bytes: err = %v, want ErrBadLength", n, err)
		}
	}
}
