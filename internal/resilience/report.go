package resilience

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Status is the recorded outcome of one stage.
type Status string

// Stage outcomes. StatusQuarantined marks a checkpoint artifact that
// failed its integrity check and was moved aside (see
// internal/checkpoint): the run regenerated the data, so the stage is
// degraded-but-recovered, not failed — it never affects exit codes.
// StatusShed marks a run the memory governor dropped to single-worker
// mode after the hard watermark (see internal/govern): every artifact
// still computes, so no stage failed, but the run was degraded —
// cmd/breval maps its presence to the dedicated exit code 8.
const (
	StatusOK          Status = "ok"
	StatusFailed      Status = "failed"
	StatusSkipped     Status = "skipped"
	StatusQuarantined Status = "quarantined"
	StatusShed        Status = "shed"
)

// StageReport is the machine-readable outcome of one stage.
type StageReport struct {
	Stage    string        `json:"stage"`
	Status   Status        `json:"status"`
	Kind     FailureKind   `json:"kind,omitempty"`
	Attempts int           `json:"attempts,omitempty"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	Error    string        `json:"error,omitempty"`
	Note     string        `json:"note,omitempty"`
}

// RunReport is the per-run stage ledger. Stages appear in completion
// order (parallel stages interleave).
type RunReport struct {
	Stages []StageReport `json:"stages"`

	// Metrics is the run's observability document (spans, counters,
	// histograms, memstats — an *obs.Document), attached by callers
	// that ran with a collector so one report file carries both the
	// stage ledger and the measurements. Declared as any to keep the
	// report marshalling independent of the obs types.
	Metrics any `json:"metrics,omitempty"`

	// Checkpoint is the run's artifact-store statistics (a
	// checkpoint.Stats: hits, misses, regenerations, quarantines,
	// bytes), attached by pipelines running with a checkpoint store.
	// Declared as any for the same layering reason as Metrics.
	Checkpoint any `json:"checkpoint,omitempty"`
}

// Report returns a snapshot of the runner's ledger so far.
func (r *Runner) Report() *RunReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &RunReport{Stages: append([]StageReport(nil), r.stages...)}
}

// Merge appends the other report's stages.
func (rep *RunReport) Merge(other *RunReport) {
	if other == nil {
		return
	}
	rep.Stages = append(rep.Stages, other.Stages...)
}

// Failed returns the stages that failed.
func (rep *RunReport) Failed() []StageReport {
	var out []StageReport
	for _, s := range rep.Stages {
		if s.Status == StatusFailed {
			out = append(out, s)
		}
	}
	return out
}

// Degraded returns the stages that did not fully run: failures and
// skips (a skip marks an output degraded by an upstream failure or a
// narrowed scenario).
func (rep *RunReport) Degraded() []StageReport {
	var out []StageReport
	for _, s := range rep.Stages {
		if s.Status != StatusOK {
			out = append(out, s)
		}
	}
	return out
}

// OK reports whether no stage failed.
func (rep *RunReport) OK() bool { return len(rep.Failed()) == 0 }

// Find returns the latest entry recorded for stage.
func (rep *RunReport) Find(stage string) (StageReport, bool) {
	for i := len(rep.Stages) - 1; i >= 0; i-- {
		if rep.Stages[i].Stage == stage {
			return rep.Stages[i], true
		}
	}
	return StageReport{}, false
}

// WriteJSON emits the report as indented JSON.
func (rep *RunReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText emits a one-line-per-stage human summary.
func (rep *RunReport) WriteText(w io.Writer) error {
	for _, s := range rep.Stages {
		line := fmt.Sprintf("%-8s %-24s", s.Status, s.Stage)
		if s.Status != StatusSkipped {
			line += fmt.Sprintf(" %8.1fms x%d", float64(s.Duration)/float64(time.Millisecond), s.Attempts)
		}
		if s.Kind != "" {
			line += " [" + string(s.Kind) + "]"
		}
		if s.Error != "" {
			line += " " + s.Error
		}
		if s.Note != "" {
			line += " (" + s.Note + ")"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
