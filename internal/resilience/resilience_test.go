package resilience

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunOK(t *testing.T) {
	r := NewRunner()
	if err := r.Run(context.Background(), "s", Policy{}, func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	sr, ok := rep.Find("s")
	if !ok || sr.Status != StatusOK || sr.Attempts != 1 {
		t.Fatalf("report = %+v", sr)
	}
	if !rep.OK() {
		t.Error("report not OK")
	}
}

func TestRunRecoversPanic(t *testing.T) {
	r := NewRunner()
	err := r.Run(context.Background(), "boom", Policy{Retries: 3}, func(context.Context) error {
		panic("kaboom")
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if se.Kind != KindPanic || se.Stage != "boom" {
		t.Fatalf("StageError = %+v", se)
	}
	if se.Attempts != 1 {
		t.Errorf("panics must not be retried, got %d attempts", se.Attempts)
	}
	if len(se.Stack) == 0 || !strings.Contains(se.Err.Error(), "kaboom") {
		t.Errorf("missing stack or panic value: %+v", se)
	}
	if sr, _ := r.Report().Find("boom"); sr.Status != StatusFailed || sr.Kind != KindPanic {
		t.Errorf("report = %+v", sr)
	}
}

func TestRunRetriesWithBackoff(t *testing.T) {
	r := NewRunner()
	var slept []time.Duration
	r.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	calls := 0
	err := r.Run(context.Background(), "flaky", Policy{Retries: 3, Backoff: 10 * time.Millisecond},
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoffs = %v", slept)
	}
	if sr, _ := r.Report().Find("flaky"); sr.Attempts != 3 || sr.Status != StatusOK {
		t.Errorf("report = %+v", sr)
	}
}

func TestRunRetriesExhausted(t *testing.T) {
	r := NewRunner()
	r.sleep = func(context.Context, time.Duration) error { return nil }
	err := r.Run(context.Background(), "dead", Policy{Retries: 2},
		func(context.Context) error { return errors.New("always") })
	var se *StageError
	if !errors.As(err, &se) || se.Kind != KindError || se.Attempts != 3 {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTimeout(t *testing.T) {
	r := NewRunner()
	start := time.Now()
	err := r.Run(context.Background(), "slow", Policy{Timeout: 20 * time.Millisecond},
		func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		})
	var se *StageError
	if !errors.As(err, &se) || se.Kind != KindTimeout {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not bound the stage")
	}
}

func TestRunAbandonsNonCooperativeStage(t *testing.T) {
	// A stage that never checks its context is abandoned at the
	// deadline; Run must still return.
	r := NewRunner()
	release := make(chan struct{})
	err := r.Run(context.Background(), "stuck", Policy{Timeout: 20 * time.Millisecond},
		func(context.Context) error {
			<-release
			return nil
		})
	close(release)
	var se *StageError
	if !errors.As(err, &se) || se.Kind != KindTimeout {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCanceledParent(t *testing.T) {
	r := NewRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := r.Run(ctx, "c", Policy{Retries: 5}, func(ctx context.Context) error {
		return ctx.Err()
	})
	var se *StageError
	if !errors.As(err, &se) || se.Kind != KindCanceled {
		t.Fatalf("err = %v", err)
	}
	if se.Attempts != 1 {
		t.Errorf("canceled stage retried: %d attempts", se.Attempts)
	}
}

func TestValue(t *testing.T) {
	r := NewRunner()
	v, err := Value(context.Background(), r, "v", Policy{}, func(context.Context) (int, error) {
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	_, err = Value(context.Background(), r, "v2", Policy{}, func(context.Context) (int, error) {
		return 0, errors.New("nope")
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestRunnerConcurrentStages(t *testing.T) {
	r := NewRunner()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.Run(context.Background(), "par", Policy{}, func(context.Context) error { return nil })
		}()
	}
	wg.Wait()
	if n := len(r.Report().Stages); n != 16 {
		t.Fatalf("recorded %d stages", n)
	}
}

func TestCheckpointKinds(t *testing.T) {
	defer ClearFaults()

	// No fault: free.
	if err := Checkpoint(context.Background(), "quiet"); err != nil {
		t.Fatal(err)
	}

	// Error kind.
	InjectAt("site.err", Fault{Kind: KindError, Err: errors.New("boom")})
	if err := Checkpoint(context.Background(), "site.err"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}

	// Panic kind.
	InjectAt("site.panic", Fault{Kind: KindPanic})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		_ = Checkpoint(context.Background(), "site.panic")
	}()

	// Timeout kind blocks until the context expires.
	InjectAt("site.slow", Fault{Kind: KindTimeout})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := Checkpoint(ctx, "site.slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}

	// Done context wins over injection.
	if err := Checkpoint(ctx, "site.err"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestFaultAfterAndTimes(t *testing.T) {
	defer ClearFaults()
	InjectAt("nth", Fault{Kind: KindError, After: 2, Times: 1})
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, Checkpoint(context.Background(), "nth"))
	}
	for i, want := range []bool{false, false, true, false, false} {
		if (errs[i] != nil) != want {
			t.Errorf("hit %d: err=%v want fired=%v", i+1, errs[i], want)
		}
	}
}

func TestCorruptAt(t *testing.T) {
	defer ClearFaults()
	if got := CorruptAt("clean.site", 7); got != 7 {
		t.Fatalf("no-fault corrupt changed value: %d", got)
	}
	InjectAt("dirty.site", Fault{Kind: KindCorrupt, Corrupt: func(v any) any { return v.(int) * -1 }})
	if got := CorruptAt("dirty.site", 7); got != -7 {
		t.Fatalf("got %d", got)
	}
	// A corrupt fault never fires at Checkpoint and vice versa.
	if err := Checkpoint(context.Background(), "dirty.site"); err != nil {
		t.Fatalf("corrupt fault leaked into Checkpoint: %v", err)
	}
	InjectAt("err.site", Fault{Kind: KindError})
	if got := CorruptAt("err.site", 7); got != 7 {
		t.Fatalf("error fault leaked into CorruptAt: %d", got)
	}
}

func TestClearFault(t *testing.T) {
	defer ClearFaults()
	InjectAt("gone", Fault{Kind: KindError})
	ClearFault("gone")
	if err := Checkpoint(context.Background(), "gone"); err != nil {
		t.Fatal(err)
	}
}

func TestPickSiteDeterministic(t *testing.T) {
	sites := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 64; seed++ {
		if PickSite(seed, sites) != PickSite(seed, sites) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	// All sites reachable over a modest seed range.
	seen := map[string]bool{}
	for seed := int64(0); seed < 256; seed++ {
		seen[PickSite(seed, sites)] = true
	}
	if len(seen) != len(sites) {
		t.Errorf("only %d of %d sites reachable", len(seen), len(sites))
	}
	if PickSite(1, nil) != "" {
		t.Error("empty site list")
	}
}

func TestReportRendering(t *testing.T) {
	r := NewRunner()
	_ = r.Run(context.Background(), "good", Policy{}, func(context.Context) error { return nil })
	_ = r.Run(context.Background(), "bad", Policy{}, func(context.Context) error { return errors.New("x") })
	r.Skip("later", "upstream failed")
	rep := r.Report()

	if rep.OK() {
		t.Error("report with failure considered OK")
	}
	if got := len(rep.Failed()); got != 1 {
		t.Errorf("Failed() = %d", got)
	}
	if got := len(rep.Degraded()); got != 2 {
		t.Errorf("Degraded() = %d", got)
	}

	var txt strings.Builder
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"good", "bad", "later", "upstream failed"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}
	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"stage": "bad"`) || !strings.Contains(js.String(), `"status": "failed"`) {
		t.Errorf("json report:\n%s", js.String())
	}

	other := NewRunner()
	_ = other.Run(context.Background(), "merged", Policy{}, func(context.Context) error { return nil })
	rep.Merge(other.Report())
	if _, ok := rep.Find("merged"); !ok {
		t.Error("merge lost stage")
	}
}

// TestCrashFault: a KindCrash fault calls CrashExit with the
// documented code; with CrashExit intercepted (as here) Checkpoint
// returns a typed crash StageError so the run still aborts.
func TestCrashFault(t *testing.T) {
	defer ClearFaults()
	orig := CrashExit
	defer func() { CrashExit = orig }()
	var gotCode int
	CrashExit = func(code int) { gotCode = code }

	InjectAt("crash.site", Fault{Kind: KindCrash})
	err := Checkpoint(context.Background(), "crash.site")
	if gotCode != CrashExitCode {
		t.Errorf("CrashExit called with %d, want %d", gotCode, CrashExitCode)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Kind != KindCrash {
		t.Fatalf("err = %v, want KindCrash StageError", err)
	}
	if Checkpoint(context.Background(), "other.site") != nil {
		t.Error("crash fault fired at the wrong site")
	}
}

// TestRunnerRecord: externally-produced entries (quarantine reports)
// join the ledger without counting as failures.
func TestRunnerRecord(t *testing.T) {
	r := NewRunner()
	r.Record(StageReport{Stage: "checkpoint.paths", Status: StatusQuarantined,
		Note: "crc mismatch"})
	rep := r.Report()
	if len(rep.Failed()) != 0 {
		t.Error("quarantined entry counted as failed")
	}
	if len(rep.Degraded()) != 1 {
		t.Error("quarantined entry missing from degraded listing")
	}
	sr, ok := rep.Find("checkpoint.paths")
	if !ok || sr.Status != StatusQuarantined || sr.Note != "crc mismatch" {
		t.Errorf("recorded entry = %+v", sr)
	}
}
