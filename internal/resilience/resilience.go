// Package resilience is the pipeline's fault-isolation substrate: a
// stage runner with context cancellation and per-stage deadlines,
// panic containment that converts worker panics into typed
// StageErrors, bounded retry with exponential backoff, a
// machine-readable per-run report (report.go), and a deterministic
// fault-injection registry for tests (inject.go).
//
// The design goal, borrowed from inference-serving data planes, is
// that corrupt or partial inputs degrade output coverage, never
// availability: a failing stage yields a recorded StageError and the
// run continues with whatever the surviving stages produced.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"breval/internal/obs"
)

// FailureKind classifies how a stage failed.
type FailureKind string

// Failure kinds. KindCorrupt and KindCrash never appear in a
// StageError; they exist only as injectable fault classes (see Fault,
// CorruptAt and the crash points of docs/checkpointing.md).
const (
	KindError    FailureKind = "error"
	KindPanic    FailureKind = "panic"
	KindTimeout  FailureKind = "timeout"
	KindCanceled FailureKind = "canceled"
	KindCorrupt  FailureKind = "corrupt"
	KindCrash    FailureKind = "crash"
)

// StageError is the typed failure of one named stage. It wraps the
// underlying error (or recovered panic value) and, for panics, keeps
// the recovered goroutine stack.
type StageError struct {
	Stage    string
	Kind     FailureKind
	Attempts int
	Err      error
	Stack    []byte
}

// Error implements the error interface.
func (e *StageError) Error() string {
	return fmt.Sprintf("stage %s: %s after %d attempt(s): %v", e.Stage, e.Kind, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// NewPanic converts a recovered panic value into a StageError. Worker
// pools that recover their own goroutines (e.g. bgp.Simulator) use it
// to surface the panic as a typed error instead of crashing.
func NewPanic(stage string, v any, stack []byte) *StageError {
	return &StageError{Stage: stage, Kind: KindPanic, Attempts: 1, Err: panicError(v), Stack: stack}
}

func panicError(v any) error {
	if err, ok := v.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", v)
}

// Policy configures how one stage runs.
type Policy struct {
	// Timeout bounds each attempt; 0 means no per-attempt deadline
	// (the parent context may still carry one).
	Timeout time.Duration
	// Retries is the number of extra attempts after the first failure.
	// Panics and parent-context cancellation are never retried.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per
	// retry. Zero selects a 50ms default.
	Backoff time.Duration
	// Retryable overrides the default retry predicate (retry anything
	// except panics and cancellation).
	Retryable func(error) bool
}

const defaultBackoff = 50 * time.Millisecond

// Runner executes stages and accumulates their reports. It is safe
// for concurrent use: independent stages may run in parallel on one
// runner.
type Runner struct {
	mu     sync.Mutex
	stages []StageReport
	sleep  func(ctx context.Context, d time.Duration) error
}

// NewRunner returns an empty runner.
func NewRunner() *Runner { return &Runner{sleep: ctxSleep} }

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (r *Runner) record(sr StageReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stages = append(r.stages, sr)
}

// Skip records a stage that was not attempted (e.g. its upstream
// input is missing) so the report accounts for every planned stage.
func (r *Runner) Skip(stage, note string) {
	r.record(StageReport{Stage: stage, Status: StatusSkipped, Note: note})
}

// Record appends an externally-produced stage report entry. Subsystems
// that are not stages themselves but participate in the run's ledger —
// the checkpoint store recording a quarantined artifact, for example —
// use it so one report documents everything that happened.
func (r *Runner) Record(sr StageReport) { r.record(sr) }

// Run executes fn as one isolated stage: panics are recovered and
// converted to StageErrors, a Policy.Timeout bounds each attempt, and
// retryable failures are retried with exponential backoff. The
// outcome is recorded in the runner's report. A nil return means the
// stage succeeded.
//
// On timeout the attempt goroutine is abandoned, not killed (Go
// cannot preempt it); fn must therefore only write state it owns and
// publish results through its return value — see Value.
func (r *Runner) Run(ctx context.Context, stage string, pol Policy, fn func(context.Context) error) error {
	// Every stage is an observability span when a collector is
	// installed (a flag-off run gets a nil no-op span): the span covers
	// all attempts, and fn receives the span's context so stage
	// internals nest as substages.
	ctx, span := obs.StartSpan(ctx, stage)
	defer span.End()
	start := time.Now()
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	attempts := 0
	var err error
	for {
		attempts++
		err = r.attempt(ctx, pol, fn)
		if err == nil {
			r.record(StageReport{
				Stage: stage, Status: StatusOK,
				Attempts: attempts, Duration: time.Since(start),
			})
			return nil
		}
		if attempts > pol.Retries || !retryable(pol, err) || ctx.Err() != nil {
			break
		}
		if serr := r.sleep(ctx, backoff); serr != nil {
			err = serr
			break
		}
		backoff *= 2
	}
	se := intoStageError(stage, attempts, err)
	r.record(StageReport{
		Stage: stage, Status: StatusFailed, Kind: se.Kind,
		Attempts: attempts, Duration: time.Since(start), Error: se.Err.Error(),
	})
	return se
}

// attempt runs fn once in its own goroutine so a deadline can abandon
// a non-cooperative (CPU-bound) stage, and recovers panics.
func (r *Runner) attempt(ctx context.Context, pol Policy, fn func(context.Context) error) error {
	actx := ctx
	if pol.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, pol.Timeout)
		defer cancel()
	}
	done := make(chan error, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				done <- &StageError{Kind: KindPanic, Err: panicError(v), Stack: debug.Stack()}
			}
		}()
		done <- fn(actx)
	}()
	select {
	case err := <-done:
		return err
	case <-actx.Done():
		return actx.Err()
	}
}

func retryable(pol Policy, err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	var se *StageError
	if errors.As(err, &se) && se.Kind == KindPanic {
		return false
	}
	if pol.Retryable != nil {
		return pol.Retryable(err)
	}
	return true
}

func intoStageError(stage string, attempts int, err error) *StageError {
	var se *StageError
	if errors.As(err, &se) {
		// Keep the inner kind/stack/stage (a worker may have failed at
		// a more specific site); restamp the attempt count.
		out := *se
		if out.Stage == "" {
			out.Stage = stage
		}
		out.Attempts = attempts
		if out.Err == nil {
			out.Err = errors.New(string(out.Kind))
		}
		return &out
	}
	kind := KindError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		kind = KindTimeout
	case errors.Is(err, context.Canceled):
		kind = KindCanceled
	}
	return &StageError{Stage: stage, Kind: kind, Attempts: attempts, Err: err}
}

// Value runs fn as a stage on r and returns its result. The value
// travels over a private buffered channel, so an abandoned
// (timed-out) attempt can never race with the caller's use of the
// result; if a retry succeeds, any value a stale attempt produced is
// also a valid fn output and may be the one returned.
func Value[T any](ctx context.Context, r *Runner, stage string, pol Policy, fn func(context.Context) (T, error)) (T, error) {
	// Negative Retries means "no retries", same as zero; it must not
	// blow up the channel allocation.
	capacity := pol.Retries + 1
	if capacity < 1 {
		capacity = 1
	}
	ch := make(chan T, capacity)
	err := r.Run(ctx, stage, pol, func(ctx context.Context) error {
		v, ferr := fn(ctx)
		if ferr != nil {
			return ferr
		}
		ch <- v
		return nil
	})
	var zero T
	if err != nil {
		return zero, err
	}
	return <-ch, nil
}
