package resilience

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// CrashExitCode is the process exit code of a KindCrash fault: a
// deliberately unusual value so crash-injection smokes (see
// scripts/check.sh) can tell an injected kill from an ordinary
// failure.
const CrashExitCode = 7

// CrashExit is what a KindCrash fault calls to kill the process. It
// defaults to os.Exit so an injected crash behaves like a real one —
// no deferred cleanup runs, temp files stay behind — and is a variable
// so in-process tests can intercept it.
var CrashExit = func(code int) { os.Exit(code) }

// Fault is one injectable failure. Tests register faults at named
// sites; production code marks those sites with Checkpoint (control
// faults) or CorruptAt (data faults) and pays one atomic load when no
// fault is registered.
type Fault struct {
	// Kind selects the behaviour: KindPanic panics, KindError returns
	// an error, KindTimeout blocks (Delay, or until the context
	// expires when Delay is zero), KindCorrupt rewrites data passed
	// through CorruptAt, KindCrash hard-exits the process via
	// CrashExit (simulating a kill -9 mid-pipeline).
	Kind FailureKind
	// Err is returned for KindError; nil selects a generic error.
	Err error
	// Panic is the panic value for KindPanic; nil selects a generic
	// string naming the site.
	Panic any
	// Delay is the KindTimeout stall; 0 blocks until the context is
	// done, which deterministically exercises stage deadlines.
	Delay time.Duration
	// Corrupt rewrites the value passing a CorruptAt site; it must
	// return the same dynamic type it was given.
	Corrupt func(any) any
	// After skips the first After matching hits of the site, so a
	// fault can target e.g. the third origin a worker processes.
	After int
	// Times bounds how often the fault fires; 0 means every hit. A
	// transient fault (Times: 1) paired with a retrying stage tests
	// the retry path.
	Times int
}

type faultEntry struct {
	f     Fault
	hits  int
	fired int
}

var faultReg = struct {
	mu sync.Mutex
	m  map[string]*faultEntry
}{m: map[string]*faultEntry{}}

// activeFaults counts registered sites; Checkpoint's fast path is one
// atomic load when it is zero.
var activeFaults atomic.Int32

// InjectAt registers (or replaces) the fault at a named site. Sites
// are free-form strings; the pipeline's conventional sites are listed
// in docs/resilience.md.
func InjectAt(site string, f Fault) {
	faultReg.mu.Lock()
	defer faultReg.mu.Unlock()
	if _, ok := faultReg.m[site]; !ok {
		activeFaults.Add(1)
	}
	faultReg.m[site] = &faultEntry{f: f}
}

// ClearFault removes the fault at site, if any.
func ClearFault(site string) {
	faultReg.mu.Lock()
	defer faultReg.mu.Unlock()
	if _, ok := faultReg.m[site]; ok {
		delete(faultReg.m, site)
		activeFaults.Add(-1)
	}
}

// ClearFaults removes every registered fault. Tests defer it.
func ClearFaults() {
	faultReg.mu.Lock()
	defer faultReg.mu.Unlock()
	activeFaults.Add(-int32(len(faultReg.m)))
	faultReg.m = map[string]*faultEntry{}
}

// fire counts a hit at site and reports the fault to apply, honouring
// After/Times. wantCorrupt separates data-fault sites (CorruptAt)
// from control-fault sites (Checkpoint).
func fire(site string, wantCorrupt bool) *Fault {
	faultReg.mu.Lock()
	defer faultReg.mu.Unlock()
	e := faultReg.m[site]
	if e == nil || (e.f.Kind == KindCorrupt) != wantCorrupt {
		return nil
	}
	e.hits++
	if e.hits <= e.f.After {
		return nil
	}
	if e.f.Times > 0 && e.fired >= e.f.Times {
		return nil
	}
	e.fired++
	f := e.f
	return &f
}

// BeatFunc, when non-nil, is invoked with the context of every
// Checkpoint call, making each injection/cancellation site double as
// a liveness signal. internal/govern installs its heartbeat hook here
// at init (resilience cannot import govern — that would cycle);
// nothing else may write it after program start.
var BeatFunc func(ctx context.Context)

// Checkpoint is a named cancellation and fault-injection point.
// Production code calls it at stage boundaries and inside worker
// loops; it returns the context's error when the context is done,
// applies any fault registered at site, and is otherwise free.
func Checkpoint(ctx context.Context, site string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if f := BeatFunc; f != nil {
		f(ctx)
	}
	if activeFaults.Load() == 0 {
		return nil
	}
	f := fire(site, false)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindPanic:
		v := f.Panic
		if v == nil {
			v = "resilience: injected panic at " + site
		}
		panic(v)
	case KindCrash:
		CrashExit(CrashExitCode)
		// Only reached when a test swapped CrashExit: surface a typed
		// error so the run still aborts deterministically.
		return &StageError{Stage: site, Kind: KindCrash, Attempts: 1,
			Err: errors.New("injected crash at " + site)}
	case KindTimeout:
		if f.Delay <= 0 {
			<-ctx.Done()
			return ctx.Err()
		}
		if err := ctxSleep(ctx, f.Delay); err != nil {
			return err
		}
		return nil
	default:
		err := f.Err
		if err == nil {
			err = errors.New("injected error")
		}
		return fmt.Errorf("resilience: injected fault at %s: %w", site, err)
	}
}

// CorruptAt passes v through the KindCorrupt fault registered at
// site, if any, so tests can hand a stage deliberately corrupt
// intermediate data without touching production code paths.
func CorruptAt[T any](site string, v T) T {
	if activeFaults.Load() == 0 {
		return v
	}
	f := fire(site, true)
	if f == nil || f.Corrupt == nil {
		return v
	}
	if nv, ok := f.Corrupt(v).(T); ok {
		return nv
	}
	return v
}

// PickSite deterministically selects one of sites from a seed
// (splitmix64), for seed-driven fault schedules: the same seed always
// targets the same site, so a failing schedule reproduces exactly.
func PickSite(seed int64, sites []string) string {
	if len(sites) == 0 {
		return ""
	}
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return sites[z%uint64(len(sites))]
}
