package checkpoint

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/topogen"
	"breval/internal/validation"
	"breval/internal/wire"
)

// Artifact names. The world itself is never stored — it regenerates
// deterministically from the key's config — only its digest is pinned
// (Manifest.WorldDigest) so code drift invalidates the store.
const (
	ArtifactPaths      = "paths"
	ArtifactValidation = "validation.raw"
	ArtifactClean      = "validation.clean"
)

// ArtifactRel returns the artifact name of one algorithm's inferred
// relationships.
func ArtifactRel(algo string) string { return "rel." + strings.ToLower(algo) }

// WorldDigestOf computes a deterministic digest of the generated
// world: the ground-truth graph plus every list and role assignment
// the checkpointed stages consume. Two worlds digest identically iff
// the generator produced the same topology, so a resumed run can
// verify that regeneration still yields the world its cached artifacts
// were derived from.
func WorldDigestOf(w *topogen.World) string {
	h := sha256.New()
	bw := bufio.NewWriter(h)
	fmt.Fprintf(bw, "asns %d\n", len(w.ASNs))
	for _, a := range w.ASNs {
		fmt.Fprintf(bw, "%d %d %d %v %v %v %v\n", a, w.Region[a], w.Type[a],
			w.Publishers[a], w.Strippers[a], w.MANRS[a], w.Hijackers[a])
	}
	// Links() and RelOn are deterministic (sorted canonical links).
	_ = asgraph.WriteSerial1(bw, w.Graph)
	writeASNList(bw, "clique", w.Clique)
	writeASNList(bw, "hypergiants", w.Hypergiants)
	writeASNList(bw, "specialstubs", w.SpecialStubs)
	writeASNList(bw, "partialsellers", w.PartialSellers)
	writeASNList(bw, "vps", w.VPs)
	writeASNList(bw, "irr", w.IRRRegistrants)
	for _, ix := range w.IXPs {
		fmt.Fprintf(bw, "ixp %d %d", ix.ID, ix.Region)
		writeASNList(bw, "", ix.Members)
	}
	for _, fc := range w.Facilities {
		fmt.Fprintf(bw, "fac %d %d", fc.ID, fc.Region)
		writeASNList(bw, "", fc.Members)
	}
	bw.Flush()
	return hex.EncodeToString(h.Sum(nil))
}

func writeASNList(w io.Writer, label string, s []asn.ASN) {
	fmt.Fprintf(w, "%s", label)
	for _, a := range s {
		fmt.Fprintf(w, " %d", a)
	}
	fmt.Fprintln(w)
}

// PutPaths stores a propagated path set under name. The RIB codec
// carries the paths; the skipped-coverage counters ride in the
// manifest metadata (they are bookkeeping, not payload).
func PutPaths(ctx context.Context, s *Store, name string, ps *bgp.PathSet) error {
	return PutPathsMeta(ctx, s, name, ps, nil)
}

// PutPathsMeta is PutPaths with extra manifest metadata merged in —
// the ingest front end pins its source digest and quarantine counts
// alongside the path set, so a resumed run re-verifies provenance and
// re-applies the error budget without re-reading the dump.
func PutPathsMeta(ctx context.Context, s *Store, name string, ps *bgp.PathSet, extra map[string]string) error {
	meta := map[string]string{
		"skipped_origins": strconv.Itoa(ps.SkippedOrigins),
		"skipped_vps":     strconv.Itoa(ps.SkippedVPs),
	}
	for k, v := range extra {
		meta[k] = v
	}
	return s.Put(ctx, name, meta, func(w io.Writer) error {
		return wire.WriteRIB(w, ps, 0)
	})
}

// GetPaths loads a path set stored by PutPaths.
func GetPaths(ctx context.Context, s *Store, name string) (*bgp.PathSet, error) {
	ps, _, err := GetPathsMeta(ctx, s, name)
	return ps, err
}

// GetPathsMeta loads a path set plus its manifest metadata.
func GetPathsMeta(ctx context.Context, s *Store, name string) (*bgp.PathSet, map[string]string, error) {
	var ps *bgp.PathSet
	var gotMeta map[string]string
	err := s.Get(ctx, name, func(payload io.Reader, meta map[string]string) error {
		got, rerr := wire.ReadRIB(payload)
		if rerr != nil {
			return rerr
		}
		if got.SkippedOrigins, rerr = metaInt(meta, "skipped_origins"); rerr != nil {
			return rerr
		}
		if got.SkippedVPs, rerr = metaInt(meta, "skipped_vps"); rerr != nil {
			return rerr
		}
		ps = got
		gotMeta = meta
		return nil
	})
	return ps, gotMeta, err
}

func metaInt(meta map[string]string, key string) (int, error) {
	v, err := strconv.Atoi(meta[key])
	if err != nil {
		return 0, fmt.Errorf("meta %s=%q: %w", key, meta[key], err)
	}
	return v, nil
}

// PutSnapshot stores a validation snapshot (raw or cleaned) under
// name; extra metadata (e.g. the cleaning report) rides alongside.
func PutSnapshot(ctx context.Context, s *Store, name string, snap *validation.Snapshot, meta map[string]string) error {
	return s.Put(ctx, name, meta, func(w io.Writer) error {
		_, err := snap.WriteTo(w)
		return err
	})
}

// GetSnapshot loads a snapshot stored by PutSnapshot, returning its
// metadata alongside.
func GetSnapshot(ctx context.Context, s *Store, name string) (*validation.Snapshot, map[string]string, error) {
	var snap *validation.Snapshot
	var gotMeta map[string]string
	err := s.Get(ctx, name, func(payload io.Reader, meta map[string]string) error {
		got, perr := validation.Parse(payload)
		if perr != nil {
			return perr
		}
		snap = got
		gotMeta = meta
		return nil
	})
	return snap, gotMeta, err
}

// Inferred-relationship codec: a CAIDA serial-1 body (one line per
// link, deterministic link order) preceded by "#!" directive comments
// carrying the Result fields serial-1 cannot express — the algorithm
// name, the inferred clique, firm-evidence links, and partial/hybrid
// attributes. Plain serial-1 consumers skip the directives as
// comments; the store's decoder round-trips the full Result.
const (
	dirName   = "#!name "
	dirClique = "#!clique "
	dirFirm   = "#!firm "
	dirAttr   = "#!attr "
)

// EncodeResult writes res in the store's deterministic
// inferred-relationship codec. Exported for consumers that need a
// canonical byte form outside a store — the chaos harness digests
// artifacts with it to assert byte-identical recovery.
func EncodeResult(w io.Writer, res *inference.Result) error { return writeResult(w, res) }

// PutResult stores one algorithm's inference result under
// ArtifactRel(res.Name).
func PutResult(ctx context.Context, s *Store, res *inference.Result) error {
	return s.Put(ctx, ArtifactRel(res.Name), nil, func(w io.Writer) error {
		return writeResult(w, res)
	})
}

// GetResult loads the inference result stored for algo.
func GetResult(ctx context.Context, s *Store, algo string) (*inference.Result, error) {
	var res *inference.Result
	err := s.Get(ctx, ArtifactRel(algo), func(payload io.Reader, _ map[string]string) error {
		got, perr := readResult(payload)
		if perr != nil {
			return perr
		}
		res = got
		return nil
	})
	return res, err
}

func writeResult(w io.Writer, res *inference.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%s\n", dirName, res.Name)
	// Clique order is preserved, not normalised: downstream consumers
	// may be order-sensitive and a resumed run must be byte-identical.
	for _, a := range res.Clique {
		fmt.Fprintf(bw, "%s%d\n", dirClique, a)
	}
	links := make([]asgraph.Link, 0, len(res.Rels))
	for l := range res.Rels {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	for _, l := range links {
		if res.Firm[l] {
			fmt.Fprintf(bw, "%s%d|%d\n", dirFirm, l.A, l.B)
		}
	}
	for _, l := range links {
		r := res.Rels[l]
		if !r.PartialTransit && !r.Hybrid {
			continue
		}
		fmt.Fprintf(bw, "%s%d|%d|%v|%v\n", dirAttr, l.A, l.B, r.PartialTransit, r.Hybrid)
	}
	for _, l := range links {
		r := res.Rels[l]
		switch r.Type {
		case asgraph.P2C:
			c, ok := l.OtherOK(r.Provider)
			if !ok {
				return fmt.Errorf("checkpoint: provider %d not on link %v", r.Provider, l)
			}
			fmt.Fprintf(bw, "%d|%d|-1\n", r.Provider, c)
		case asgraph.P2P:
			fmt.Fprintf(bw, "%d|%d|0\n", l.A, l.B)
		case asgraph.S2S:
			fmt.Fprintf(bw, "%d|%d|1\n", l.A, l.B)
		default:
			return fmt.Errorf("checkpoint: unencodable relationship %v on %v", r, l)
		}
	}
	return bw.Flush()
}

func readResult(r io.Reader) (*inference.Result, error) {
	res := inference.NewResult("", 1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	attrs := map[asgraph.Link][2]bool{}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, dirName):
			res.Name = strings.TrimPrefix(line, dirName)
		case strings.HasPrefix(line, dirClique):
			a, err := asn.Parse(strings.TrimPrefix(line, dirClique))
			if err != nil {
				return nil, fmt.Errorf("checkpoint: rel line %d: %w", lineno, err)
			}
			res.Clique = append(res.Clique, a)
		case strings.HasPrefix(line, dirFirm):
			l, err := parseLink(strings.TrimPrefix(line, dirFirm))
			if err != nil {
				return nil, fmt.Errorf("checkpoint: rel line %d: %w", lineno, err)
			}
			if res.Firm == nil {
				res.Firm = map[asgraph.Link]bool{}
			}
			res.Firm[l] = true
		case strings.HasPrefix(line, dirAttr):
			fields := strings.Split(strings.TrimPrefix(line, dirAttr), "|")
			if len(fields) != 4 {
				return nil, fmt.Errorf("checkpoint: rel line %d: malformed attr %q", lineno, line)
			}
			l, err := parseLink(fields[0] + "|" + fields[1])
			if err != nil {
				return nil, fmt.Errorf("checkpoint: rel line %d: %w", lineno, err)
			}
			attrs[l] = [2]bool{fields[2] == "true", fields[3] == "true"}
		case strings.HasPrefix(line, "#"):
			continue
		default:
			fields := strings.Split(line, "|")
			if len(fields) != 3 {
				return nil, fmt.Errorf("checkpoint: rel line %d: want 3 fields, got %q", lineno, line)
			}
			a, err := asn.Parse(fields[0])
			if err != nil {
				return nil, fmt.Errorf("checkpoint: rel line %d: %w", lineno, err)
			}
			b, err := asn.Parse(fields[1])
			if err != nil {
				return nil, fmt.Errorf("checkpoint: rel line %d: %w", lineno, err)
			}
			var rel asgraph.Rel
			switch fields[2] {
			case "-1":
				rel = asgraph.P2CRel(a)
			case "0":
				rel = asgraph.P2PRel()
			case "1":
				rel = asgraph.S2SRel()
			default:
				return nil, fmt.Errorf("checkpoint: rel line %d: unknown relationship %q", lineno, fields[2])
			}
			res.Rels[asgraph.NewLink(a, b)] = rel
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: rel: %w", err)
	}
	for l, fl := range attrs {
		r, ok := res.Rels[l]
		if !ok {
			return nil, fmt.Errorf("checkpoint: rel: attr for unknown link %v", l)
		}
		r.PartialTransit, r.Hybrid = fl[0], fl[1]
		res.Rels[l] = r
	}
	if res.Name == "" {
		return nil, fmt.Errorf("checkpoint: rel: missing %q directive", strings.TrimSpace(dirName))
	}
	return res, nil
}

func parseLink(s string) (asgraph.Link, error) {
	a, b, ok := strings.Cut(s, "|")
	if !ok {
		return asgraph.Link{}, fmt.Errorf("malformed link %q", s)
	}
	an, err := asn.Parse(a)
	if err != nil {
		return asgraph.Link{}, err
	}
	bn, err := asn.Parse(b)
	if err != nil {
		return asgraph.Link{}, err
	}
	return asgraph.NewLink(an, bn), nil
}
