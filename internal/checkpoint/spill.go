package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"breval/internal/bgp"
	"breval/internal/wire"
)

// Arena spill: a scratch-file sibling of the artifact store. When the
// pipeline keeps a checkpointed total path arena around only so a
// later stage can re-read it, SpillPaths parks the arena on disk in
// the store's wire codec — with the same BRC1/CRC32C trailer every
// durable artifact carries, so bit rot between spill and reload fails
// closed instead of feeding a silently damaged universe to validation.
// A spill file is not an artifact: it has no manifest entry, lives
// only for one run, and the caller removes it when done.

// SpillPaths writes ps to a new scratch file under dir (the system
// temp directory when dir is empty) and returns its path. The file is
// complete and fsynced on return.
func SpillPaths(dir string, ps *bgp.PathSet) (string, error) {
	f, err := os.CreateTemp(dir, "breval-paths-*.spill")
	if err != nil {
		return "", fmt.Errorf("checkpoint: spill: %w", err)
	}
	name := f.Name()
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(name)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}
	if err := wire.WriteRIB(cw, ps, 0); err != nil {
		return "", fmt.Errorf("checkpoint: spill: %w", err)
	}
	var tr [trailerLen]byte
	copy(tr[:4], trailerMagic)
	binary.BigEndian.PutUint64(tr[4:12], uint64(cw.n))
	binary.BigEndian.PutUint32(tr[12:16], cw.sum)
	if _, err := bw.Write(tr[:]); err != nil {
		return "", fmt.Errorf("checkpoint: spill: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return "", fmt.Errorf("checkpoint: spill: %w", err)
	}
	if err := f.Sync(); err != nil {
		return "", fmt.Errorf("checkpoint: spill: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: spill: %w", err)
	}
	ok = true
	return name, nil
}

// LoadSpilledPaths reads a file written by SpillPaths, verifying its
// trailer (magic, length, CRC32C) before decoding. The skipped-
// coverage counters are not part of the wire payload — callers that
// need them keep them in memory across the spill, exactly like the
// artifact store keeps them in manifest metadata.
func LoadSpilledPaths(path string) (*bgp.PathSet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: spill %s: %w", filepath.Base(path), err)
	}
	if len(raw) < trailerLen {
		return nil, fmt.Errorf("checkpoint: spill %s: file shorter than trailer (%d bytes)", filepath.Base(path), len(raw))
	}
	tr := raw[len(raw)-trailerLen:]
	payload := raw[:len(raw)-trailerLen]
	if string(tr[:4]) != trailerMagic {
		return nil, fmt.Errorf("checkpoint: spill %s: bad trailer magic %q", filepath.Base(path), tr[:4])
	}
	if wantLen := binary.BigEndian.Uint64(tr[4:12]); wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("checkpoint: spill %s: payload length %d, trailer says %d (truncated?)",
			filepath.Base(path), len(payload), wantLen)
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.BigEndian.Uint32(tr[12:16]) {
		return nil, fmt.Errorf("checkpoint: spill %s: crc32c mismatch: file %08x, trailer %08x",
			filepath.Base(path), sum, binary.BigEndian.Uint32(tr[12:16]))
	}
	ps, err := wire.ReadRIB(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: spill %s: %w", filepath.Base(path), err)
	}
	return ps, nil
}
