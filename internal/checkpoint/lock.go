package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// lockFile is the store's owner lock. A writing store (Open) takes an
// exclusive flock on it and stamps the owner pid; a reading store
// (OpenShared) takes a shared flock, so any number of concurrent
// readers coexist with each other but never with a writer. A process
// that cannot acquire its lock degrades to an uncached run instead of
// interleaving manifest writes with the owner (two last-writer-wins
// manifests would silently drop each other's artifact entries).
//
// The kernel releases a flock when the owning process exits —
// including a crash — so on a healthy host a stale LOCK file never
// blocks a later run. A LOCK whose exclusive flock somehow outlives
// its stamped owner (a store directory restored from another host, a
// filesystem whose flocks persist, a container whose pid namespace
// rolled over) is reclaimed: when acquisition fails and the stamped
// owner pid is provably dead, the LOCK file is unlinked — orphaning
// whatever inode the stale flock lives on — and acquisition retries
// against a fresh file. Reclaim never fires while live readers hold
// the lock: a shared probe distinguishes "blocked by readers" from
// "blocked by a dead exclusive owner".
const lockFile = "LOCK"

// errLockHeld marks an acquisition refused because a live owner holds
// the lock. Callers degrade; tests match with errors.Is.
var errLockHeld = errors.New("checkpoint: store lock held by a live owner")

// lockRetries bounds the reclaim loop: each pass either acquires,
// refuses (live owner), or unlinks a provably-stale LOCK and retries.
const lockRetries = 3

// acquireLock takes the store's owner lock — exclusive for writers,
// shared for readers — returning the open lock file (held until
// Close) and whether a stale LOCK was reclaimed along the way. On
// contention it classifies the holder: a live stamped owner or a
// shared-reader population is a hard refusal (errLockHeld); an
// exclusive holder whose stamped pid is dead marks the LOCK stale and
// it is reclaimed by unlink-and-retry.
func acquireLock(dir string, shared bool) (*os.File, bool, error) {
	path := filepath.Join(dir, lockFile)
	how := syscall.LOCK_EX
	if shared {
		how = syscall.LOCK_SH
	}
	reclaimed := false
	for attempt := 0; attempt < lockRetries; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, reclaimed, fmt.Errorf("checkpoint: open lock: %w", err)
		}
		if flock(f, how) == nil {
			// Guard against racing with a concurrent reclaim: if the path
			// no longer names the inode we locked, our flock is on an
			// orphaned file and protects nothing — retry on the new one.
			if !sameFile(f, path) {
				f.Close()
				continue
			}
			if !shared {
				// Best-effort owner stamp for diagnostics and staleness
				// detection; the flock, not the content, is the guard.
				if terr := f.Truncate(0); terr == nil {
					_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
				}
			}
			return f, reclaimed, nil
		}

		// Contended. An exclusive request that a shared probe satisfies
		// is blocked only by live readers (their flocks die with their
		// processes), never by a stale owner: refuse, do not reclaim.
		if !shared && flock(f, syscall.LOCK_SH) == nil {
			_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
			f.Close()
			return nil, reclaimed, fmt.Errorf("checkpoint: store %s is held by concurrent readers: %w",
				dir, errLockHeld)
		}

		owner, stamped := readOwner(path)
		f.Close()
		if !stamped || pidAlive(owner) {
			// A live owner, or an exclusive holder mid-acquire that has
			// not stamped yet: refuse. (The unstamped window is a few
			// instructions wide; treating it as live is the safe side.)
			who := "pid unknown"
			if stamped {
				who = fmt.Sprintf("pid %d", owner)
			}
			return nil, reclaimed, fmt.Errorf("checkpoint: store %s is owned by another live process (%s): %w",
				dir, who, errLockHeld)
		}
		// Exclusive holder whose stamped owner is dead: a stale lock.
		// Unlink so the stale flock keeps only the orphaned inode, and
		// retry against a fresh LOCK file.
		_ = os.Remove(path)
		reclaimed = true
		time.Sleep(10 * time.Millisecond)
	}
	return nil, reclaimed, fmt.Errorf("checkpoint: store %s lock still contended after %d reclaim attempts: %w",
		dir, lockRetries, errLockHeld)
}

func flock(f *os.File, how int) error {
	return syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB)
}

// readOwner parses the stamped owner pid out of the LOCK file.
func readOwner(path string) (int, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	pid, perr := strconv.Atoi(strings.TrimSpace(string(b)))
	if perr != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// pidAlive reports whether a process with the given pid exists.
// Signal 0 performs every check but delivers nothing; EPERM still
// means the process is there.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// sameFile reports whether the open file f still is what path names.
func sameFile(f *os.File, path string) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	pi, err := os.Stat(path)
	if err != nil {
		return false
	}
	return os.SameFile(fi, pi)
}

// Close releases the store's owner lock. The store must not be used
// afterwards; calling Close more than once (or on a store whose Open
// failed) is safe.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return nil
	}
	lf := s.lock
	s.lock = nil
	_ = syscall.Flock(int(lf.Fd()), syscall.LOCK_UN)
	return lf.Close()
}
