package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// lockFile is the store's owner lock. Open takes an exclusive flock
// on it and writes the owner pid; a second process pointing at the
// same -checkpoint-dir fails to open and degrades to an uncached run
// instead of interleaving manifest writes with the first (two
// last-writer-wins manifests would silently drop each other's
// artifact entries). The kernel releases the lock when the owning
// process exits — including a crash — so a stale LOCK file is
// harmless and never blocks a later run.
const lockFile = "LOCK"

// acquireLock takes the store's exclusive owner lock, returning the
// open lock file (held until Close) or an error naming the current
// owner when another live process holds it.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner, _ := os.ReadFile(path)
		f.Close()
		return nil, fmt.Errorf("checkpoint: store %s is owned by another live process (pid %s): %w",
			dir, strings.TrimSpace(string(owner)), err)
	}
	// Best-effort owner stamp for diagnostics; the flock, not the
	// content, is the guard.
	if err := f.Truncate(0); err == nil {
		_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
	}
	return f, nil
}

// Close releases the store's owner lock. The store must not be used
// afterwards; calling Close more than once (or on a store whose Open
// failed) is safe.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return nil
	}
	lf := s.lock
	s.lock = nil
	_ = syscall.Flock(int(lf.Fd()), syscall.LOCK_UN)
	return lf.Close()
}
