package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"breval/internal/topogen"
)

// SchemaVersion is the code schema version baked into every run key.
// Bump it whenever an artifact codec, a pipeline stage, or anything
// else that changes artifact bytes changes, so stores written by older
// code are treated as stale instead of silently reused.
const SchemaVersion = 1

// ManifestVersion is the manifest file format version.
const ManifestVersion = 1

// manifestFile is the manifest's file name inside a store directory.
const manifestFile = "MANIFEST.json"

// Key identifies the full upstream configuration an artifact set was
// produced under: the code schema version, the complete topology
// generator configuration (which embeds the seed), and every scenario
// knob that feeds the checkpointed stages. Two runs share artifacts
// exactly when their Keys hash identically.
type Key struct {
	Schema int            `json:"schema"`
	Config topogen.Config `json:"config"`

	Policy             string `json:"policy"`
	StaleDictionaries  int    `json:"stale_dictionaries"`
	SpuriousTrans      int    `json:"spurious_trans"`
	SpuriousReserved   int    `json:"spurious_reserved"`
	InaccurateT1Labels int    `json:"inaccurate_t1_labels"`
	IncludeRPSL        bool   `json:"include_rpsl"`

	// RIBDigest is the content digest of the ingested RIB dump set
	// when the run's paths came from real data instead of the
	// simulator (ingest.DigestFiles). omitempty keeps simulator-run
	// keys — and therefore every existing store — hash-stable; for
	// ingest runs, swapping an input file changes the digest, the key,
	// and the store directory, so stale artifacts are never resumed
	// against different data.
	RIBDigest string `json:"rib_digest,omitempty"`
}

// Hash returns the key's content hash: hex SHA-256 over the canonical
// JSON encoding (encoding/json sorts map keys, so the encoding — and
// therefore the hash — is deterministic).
func (k Key) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Key holds only plain data; Marshal cannot fail on it. Keep a
		// deterministic fallback anyway rather than panicking.
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Entry is one artifact's manifest record. Size and CRC describe the
// payload (the file minus its trailer); the trailer repeats them so a
// swapped or re-keyed file is caught even when internally consistent.
type Entry struct {
	File string `json:"file"`
	Size int64  `json:"size"`
	// CRC is the payload's CRC32C (Castagnoli) as 8 hex digits.
	CRC string `json:"crc32c"`
	// Meta carries small artifact-side metadata that must survive a
	// resume but does not belong in the payload codec (e.g. the path
	// set's skipped-coverage counts, the cleaning report).
	Meta map[string]string `json:"meta,omitempty"`
}

// Manifest is the store's versioned index: which artifacts exist,
// under which key they were produced, and their integrity data.
type Manifest struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	// WorldDigest pins the generated world the artifacts derive from;
	// a resumed run regenerates the world and refuses every artifact
	// when the digest no longer matches (code drift).
	WorldDigest string           `json:"world_digest,omitempty"`
	Artifacts   map[string]Entry `json:"artifacts"`
}

func newManifest(key string) *Manifest {
	return &Manifest{Version: ManifestVersion, Key: key, Artifacts: map[string]Entry{}}
}

// DecodeManifest parses and validates a manifest document. It never
// panics on arbitrary input (fuzzed in fuzz_test.go) and rejects
// anything that could make the store misbehave: unknown versions,
// malformed hashes, artifact file names that escape the store
// directory, or integrity fields that cannot be real.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if !isHex(m.Key) || len(m.Key) != sha256.Size*2 {
		return nil, fmt.Errorf("checkpoint: manifest key %q is not a sha256 hex digest", m.Key)
	}
	if m.WorldDigest != "" && !isHex(m.WorldDigest) {
		return nil, fmt.Errorf("checkpoint: world digest %q is not hex", m.WorldDigest)
	}
	if m.Artifacts == nil {
		m.Artifacts = map[string]Entry{}
	}
	for name, e := range m.Artifacts {
		if err := validArtifactName(name); err != nil {
			return nil, err
		}
		if err := validArtifactName(e.File); err != nil {
			return nil, err
		}
		if e.Size < 0 {
			return nil, fmt.Errorf("checkpoint: artifact %q has negative size %d", name, e.Size)
		}
		if len(e.CRC) != 8 || !isHex(e.CRC) {
			return nil, fmt.Errorf("checkpoint: artifact %q has malformed crc %q", name, e.CRC)
		}
	}
	return &m, nil
}

// validArtifactName rejects names that are empty, contain path
// separators or traversal elements, or collide with the store's own
// files. Artifact names double as file names, so this is the
// manifest's path-safety boundary.
func validArtifactName(name string) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("checkpoint: bad artifact name %q", name)
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." ||
		strings.HasPrefix(name, ".") {
		return fmt.Errorf("checkpoint: unsafe artifact name %q", name)
	}
	if name == manifestFile || name == quarantineDir {
		return fmt.Errorf("checkpoint: reserved artifact name %q", name)
	}
	return nil
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

func (m *Manifest) encode() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
