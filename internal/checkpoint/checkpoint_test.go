package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/topogen"
	"breval/internal/validation"
)

func testKey(seed int64) Key {
	return Key{Schema: SchemaVersion, Config: topogen.DefaultConfig(seed)}
}

func openTest(t *testing.T, dir string, key Key) *Store {
	t.Helper()
	s, err := Open(context.Background(), dir, key)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func putBytes(t *testing.T, s *Store, name string, data []byte) {
	t.Helper()
	err := s.Put(context.Background(), name, nil, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func getBytes(s *Store, name string) ([]byte, error) {
	var out []byte
	err := s.Get(context.Background(), name, func(p io.Reader, _ map[string]string) error {
		b, rerr := io.ReadAll(p)
		out = b
		return rerr
	})
	return out, err
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), testKey(1))
	want := []byte("hello artifact payload")
	putBytes(t, s, "blob", want)
	got, err := getBytes(s, "blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload mismatch: %q vs %q", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.BytesWritten != int64(len(want)) || st.BytesRead != int64(len(want)) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenSurvivesProcess(t *testing.T) {
	dir := t.TempDir()
	key := testKey(2)
	s1 := openTest(t, dir, key)
	putBytes(t, s1, "blob", []byte("persisted"))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, key)
	got, err := getBytes(s2, "blob")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopen get: %q, %v", got, err)
	}
}

func TestKeyMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, testKey(1))
	putBytes(t, s1, "blob", []byte("old world"))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, testKey(99))
	if _, err := getBytes(s2, "blob"); !errors.Is(err, ErrMiss) {
		t.Fatalf("stale artifact served across key change: %v", err)
	}
	if st := s2.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations: %+v", st)
	}
}

func TestMissThenRegeneration(t *testing.T) {
	s := openTest(t, t.TempDir(), testKey(1))
	if _, err := getBytes(s, "blob"); !errors.Is(err, ErrMiss) {
		t.Fatalf("want ErrMiss, got %v", err)
	}
	putBytes(t, s, "blob", []byte("fresh"))
	st := s.Stats()
	if st.Misses != 1 || st.Regenerations != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A second Put of the same name is an overwrite, not a regeneration.
	putBytes(t, s, "blob", []byte("fresh2"))
	if st := s.Stats(); st.Regenerations != 1 {
		t.Fatalf("overwrite counted as regeneration: %+v", st)
	}
}

// recorder captures store events for assertions.
type recorder struct {
	mu  sync.Mutex
	got []resilience.StageReport
}

func (r *recorder) Record(sr resilience.StageReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, sr)
}

func (r *recorder) find(stage string) (resilience.StageReport, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sr := range r.got {
		if sr.Stage == stage {
			return sr, true
		}
	}
	return resilience.StageReport{}, false
}

func corruptionCases() map[string]func(path string) error {
	flip := func(path string, off int) error {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		i := off
		if i < 0 {
			i += len(b)
		}
		b[i] ^= 0x01
		return os.WriteFile(path, b, 0o644)
	}
	return map[string]func(string) error{
		"truncate-payload": func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)-trailerLen-3], 0o644)
		},
		"truncate-trailer": func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)-5], 0o644)
		},
		"flip-payload-byte": func(p string) error { return flip(p, 2) },
		"flip-trailer-byte": func(p string) error { return flip(p, -2) },
		"empty-file":        func(p string) error { return os.WriteFile(p, nil, 0o644) },
	}
}

func TestCorruptionQuarantinesAndRegenerates(t *testing.T) {
	for name, corrupt := range corruptionCases() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, testKey(1))
			rec := &recorder{}
			s.Recorder = rec
			putBytes(t, s, "blob", []byte("payload under attack"))
			if err := corrupt(filepath.Join(dir, "blob")); err != nil {
				t.Fatal(err)
			}

			if _, err := getBytes(s, "blob"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			// The damaged file must be quarantined, not visible.
			if _, err := os.Stat(filepath.Join(dir, "blob")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt artifact still visible: %v", err)
			}
			q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine dir: %v entries, err %v", len(q), err)
			}
			sr, ok := rec.find("checkpoint.blob")
			if !ok || sr.Status != resilience.StatusQuarantined {
				t.Fatalf("quarantine event missing or wrong: %+v (found %v)", sr, ok)
			}
			// Recovery: regenerate and read back.
			putBytes(t, s, "blob", []byte("payload under attack"))
			if got, gerr := getBytes(s, "blob"); gerr != nil || string(got) != "payload under attack" {
				t.Fatalf("post-recovery get: %q, %v", got, gerr)
			}
			st := s.Stats()
			if st.Quarantines != 1 || st.Regenerations != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestDecodeFailureQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testKey(1))
	putBytes(t, s, "blob", []byte("not a rib"))
	err := s.Get(context.Background(), "blob", func(io.Reader, map[string]string) error {
		return errors.New("schema says no")
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on decode failure, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "blob")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("artifact with undecodable payload left visible")
	}
}

func TestCorruptManifestQuarantinedOnOpen(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	s1 := openTest(t, dir, key)
	putBytes(t, s1, "blob", []byte("x"))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, key)
	if _, err := getBytes(s2, "blob"); !errors.Is(err, ErrMiss) {
		t.Fatalf("orphaned artifact served without manifest: %v", err)
	}
	if st := s2.Stats(); st.Quarantines != 1 {
		t.Fatalf("stats: %+v", st)
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(q) != 1 || !strings.HasPrefix(q[0].Name(), manifestFile) {
		t.Fatalf("manifest not quarantined: %v, %v", q, err)
	}
	// The store must still be fully usable.
	putBytes(t, s2, "blob", []byte("y"))
	if got, gerr := getBytes(s2, "blob"); gerr != nil || string(got) != "y" {
		t.Fatalf("store unusable after manifest quarantine: %q, %v", got, gerr)
	}
}

// TestFailedPutLeavesNoVisibleArtifact is the partial-artifact
// guarantee (run under -race in make check): a stage failing after
// writing part of an artifact — injected encode error, injected fault
// at the put site, or an intercepted crash — leaves no visible
// (non-temp, non-quarantined) file behind.
func TestFailedPutLeavesNoVisibleArtifact(t *testing.T) {
	assertNoVisible := func(t *testing.T, dir string) {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range ents {
			name := de.Name()
			if name == manifestFile || name == quarantineDir || name == lockFile {
				continue
			}
			t.Errorf("unexpected file after failed put: %s", name)
		}
	}

	t.Run("encode-error", func(t *testing.T) {
		dir := t.TempDir()
		s := openTest(t, dir, testKey(1))
		err := s.Put(context.Background(), "blob", nil, func(w io.Writer) error {
			io.WriteString(w, "half of the pay")
			return errors.New("encoder died")
		})
		if err == nil {
			t.Fatal("put succeeded despite encode error")
		}
		assertNoVisible(t, dir)
	})

	t.Run("injected-fault-at-put-site", func(t *testing.T) {
		defer resilience.ClearFaults()
		resilience.InjectAt("checkpoint.put.blob", resilience.Fault{Kind: resilience.KindError})
		dir := t.TempDir()
		s := openTest(t, dir, testKey(1))
		err := s.Put(context.Background(), "blob", nil, func(w io.Writer) error {
			_, werr := io.WriteString(w, "payload")
			return werr
		})
		if err == nil {
			t.Fatal("put succeeded despite injected fault")
		}
		assertNoVisible(t, dir)
		if _, gerr := getBytes(s, "blob"); !errors.Is(gerr, ErrMiss) {
			t.Fatalf("torn write visible through Get: %v", gerr)
		}
	})

	t.Run("intercepted-crash-at-put-site", func(t *testing.T) {
		defer resilience.ClearFaults()
		old := resilience.CrashExit
		defer func() { resilience.CrashExit = old }()
		resilience.CrashExit = func(int) {}
		resilience.InjectAt("checkpoint.put.blob", resilience.Fault{Kind: resilience.KindCrash})
		dir := t.TempDir()
		s := openTest(t, dir, testKey(1))
		err := s.Put(context.Background(), "blob", nil, func(w io.Writer) error {
			_, werr := io.WriteString(w, "payload")
			return werr
		})
		var se *resilience.StageError
		if !errors.As(err, &se) || se.Kind != resilience.KindCrash {
			t.Fatalf("want KindCrash StageError, got %v", err)
		}
		assertNoVisible(t, dir)
	})
}

func TestCorruptAtArtifactSite(t *testing.T) {
	defer resilience.ClearFaults()
	resilience.InjectAt("checkpoint.artifact.blob", resilience.Fault{
		Kind: resilience.KindCorrupt,
		Corrupt: func(v any) any {
			path := v.(string)
			b, _ := os.ReadFile(path)
			b[len(b)-1] ^= 0xff
			os.WriteFile(path, b, 0o644)
			return v
		},
	})
	dir := t.TempDir()
	s := openTest(t, dir, testKey(1))
	putBytes(t, s, "blob", []byte("soon to be damaged"))
	if _, err := getBytes(s, "blob"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("registry-corrupted artifact not detected: %v", err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testKey(1))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("rel.algo%d", i)
			err := s.Put(context.Background(), name, nil, func(w io.Writer) error {
				_, werr := fmt.Fprintf(w, "payload %d", i)
				return werr
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		got, err := getBytes(s, fmt.Sprintf("rel.algo%d", i))
		if err != nil || string(got) != fmt.Sprintf("payload %d", i) {
			t.Fatalf("artifact %d: %q, %v", i, got, err)
		}
	}
}

func TestPathsRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testKey(1))
	ps := bgp.NewPathSet(4, 16)
	ps.Append(asgraph.Path{64500, 3356, 174})
	ps.Append(asgraph.Path{64501, 1299})
	ps.SkippedOrigins = 3
	ps.SkippedVPs = 1
	if err := PutPaths(ctx, s, ArtifactPaths, ps); err != nil {
		t.Fatal(err)
	}
	got, err := GetPaths(ctx, s, ArtifactPaths)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.SkippedOrigins != 3 || got.SkippedVPs != 1 {
		t.Fatalf("restored path set: len %d, skipped %d/%d", got.Len(), got.SkippedOrigins, got.SkippedVPs)
	}
	for i := 0; i < ps.Len(); i++ {
		if !reflect.DeepEqual(ps.At(i), got.At(i)) {
			t.Fatalf("path %d: %v vs %v", i, ps.At(i), got.At(i))
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testKey(1))
	snap := validation.NewSnapshot()
	l1 := asgraph.NewLink(3356, 174)
	l2 := asgraph.NewLink(1299, 2914)
	snap.Add(l1, validation.Label{Type: asgraph.P2C, Provider: 3356})
	snap.Add(l2, validation.Label{Type: asgraph.P2P})
	snap.Add(l2, validation.Label{Type: asgraph.P2C, Provider: 1299})
	meta := map[string]string{"kept": "2"}
	if err := PutSnapshot(ctx, s, ArtifactValidation, snap, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := GetSnapshot(ctx, s, ArtifactValidation)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta["kept"] != "2" {
		t.Fatalf("meta lost: %v", gotMeta)
	}
	var a, b bytes.Buffer
	if _, err := snap.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshot not byte-identical after round trip:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestResultRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testKey(1))
	res := inference.NewResult("ASRank", 8)
	l1 := asgraph.NewLink(3356, 174)
	l2 := asgraph.NewLink(1299, 2914)
	l3 := asgraph.NewLink(64500, 64501)
	res.Set(l1, asgraph.P2PRel())
	res.Set(l2, asgraph.P2CRel(1299))
	pt := asgraph.P2CRel(64500)
	pt.PartialTransit = true
	res.Set(l3, pt)
	res.Clique = []asn.ASN{2914, 174, 3356} // deliberately unsorted
	res.Firm = map[asgraph.Link]bool{l1: true}

	if err := PutResult(ctx, s, res); err != nil {
		t.Fatal(err)
	}
	got, err := GetResult(ctx, s, "ASRank")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ASRank" {
		t.Fatalf("name: %q", got.Name)
	}
	if !reflect.DeepEqual(got.Clique, res.Clique) {
		t.Fatalf("clique order not preserved: %v vs %v", got.Clique, res.Clique)
	}
	if !reflect.DeepEqual(got.Rels, res.Rels) {
		t.Fatalf("rels: %v vs %v", got.Rels, res.Rels)
	}
	if !reflect.DeepEqual(got.Firm, res.Firm) {
		t.Fatalf("firm: %v vs %v", got.Firm, res.Firm)
	}
	// Determinism: storing the restored result encodes identical bytes.
	var a, b bytes.Buffer
	if err := writeResult(&a, res); err != nil {
		t.Fatal(err)
	}
	if err := writeResult(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("result codec not deterministic across a round trip")
	}
}

func TestWorldDigestDeterministic(t *testing.T) {
	cfg := topogen.DefaultConfig(7).Scaled(400)
	w1, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if WorldDigestOf(w1) != WorldDigestOf(w2) {
		t.Fatal("same config digests differently")
	}
	w3, err := topogen.Generate(topogen.DefaultConfig(8).Scaled(400))
	if err != nil {
		t.Fatal(err)
	}
	if WorldDigestOf(w1) == WorldDigestOf(w3) {
		t.Fatal("different seeds digest identically")
	}
}

func TestObsCounters(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.Into(context.Background(), col)
	s, err := Open(ctx, t.TempDir(), testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := getBytes(s, "blob"); !errors.Is(err, ErrMiss) {
		t.Fatal(err)
	}
	putBytes(t, s, "blob", []byte("abc"))
	if _, err := getBytes(s, "blob"); err != nil {
		t.Fatal(err)
	}
	checks := map[string]int64{
		"checkpoint.hits":          1,
		"checkpoint.misses":        1,
		"checkpoint.regenerations": 1,
		"checkpoint.quarantines":   0,
		"checkpoint.bytes_read":    3,
		"checkpoint.bytes_written": 3,
	}
	for name, want := range checks {
		if got := col.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestFsck(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testKey(1))
	putBytes(t, s, "good", []byte("intact"))
	putBytes(t, s, "bad", []byte("to be flipped"))
	putBytes(t, s, "gone", []byte("to be deleted"))

	b, err := os.ReadFile(filepath.Join(dir, "bad"))
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "bad"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "gone")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray"), []byte("?"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "half.tmp"), []byte("?"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("fsck reported a damaged store clean")
	}
	if !reflect.DeepEqual(res.OK, []string{"good"}) {
		t.Errorf("ok: %v", res.OK)
	}
	if len(res.Corrupt) != 1 || res.Corrupt[0].Name != "bad" {
		t.Errorf("corrupt: %v", res.Corrupt)
	}
	if !reflect.DeepEqual(res.Missing, []string{"gone"}) {
		t.Errorf("missing: %v", res.Missing)
	}
	if !reflect.DeepEqual(res.Orphans, []string{"stray"}) {
		t.Errorf("orphans: %v", res.Orphans)
	}
	if !reflect.DeepEqual(res.Temps, []string{"half.tmp"}) {
		t.Errorf("temps: %v", res.Temps)
	}

	var text, js bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "NOT clean") {
		t.Errorf("text report: %q", text.String())
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}

	// A clean store passes.
	dir2 := t.TempDir()
	s2 := openTest(t, dir2, testKey(1))
	putBytes(t, s2, "only", []byte("fine"))
	res2, err := Fsck(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Clean() || len(res2.OK) != 1 {
		t.Fatalf("clean store flagged: %+v", res2)
	}
}

func TestValidArtifactName(t *testing.T) {
	bad := []string{"", ".", "..", ".hidden", "a/b", `a\b`, "quarantine",
		manifestFile, strings.Repeat("x", 256)}
	for _, n := range bad {
		if err := validArtifactName(n); err == nil {
			t.Errorf("name %q accepted", n)
		}
	}
	good := []string{"paths", "validation.raw", "rel.asrank", "a-b_c.1"}
	for _, n := range good {
		if err := validArtifactName(n); err != nil {
			t.Errorf("name %q rejected: %v", n, err)
		}
	}
}
