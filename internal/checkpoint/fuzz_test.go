package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeManifest drives arbitrary bytes through the manifest
// decoder: it must never panic, and any manifest it accepts must be
// internally safe (valid names, sane integrity fields) and re-encode
// to a document it accepts again.
func FuzzDecodeManifest(f *testing.F) {
	key := testKey(1).Hash()
	valid, err := newManifest(key).encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	withArtifacts := &Manifest{
		Version: ManifestVersion,
		Key:     key,
		Artifacts: map[string]Entry{
			"paths":      {File: "paths", Size: 123, CRC: "deadbeef"},
			"rel.asrank": {File: "rel.asrank", Size: 0, CRC: "00000000", Meta: map[string]string{"k": "v"}},
		},
	}
	wab, err := withArtifacts.encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wab)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"key":"zz","artifacts":{}}`))
	f.Add([]byte(`{"version":1,"key":"` + key + `","artifacts":{"../evil":{"file":"../evil","size":1,"crc32c":"00000000"}}}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"key":"` + key + `","artifacts":{"a":{"file":"a","size":-5,"crc32c":"00000000"}}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must be safe and re-encodable.
		if m.Version != ManifestVersion {
			t.Fatalf("accepted manifest with version %d", m.Version)
		}
		for name, e := range m.Artifacts {
			if verr := validArtifactName(name); verr != nil {
				t.Fatalf("accepted unsafe artifact name %q: %v", name, verr)
			}
			if strings.ContainsAny(e.File, "/\\") {
				t.Fatalf("accepted path-escaping file %q", e.File)
			}
			if e.Size < 0 || len(e.CRC) != 8 {
				t.Fatalf("accepted bad integrity fields: %+v", e)
			}
		}
		enc, err := m.encode()
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		m2, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		enc2, err := m2.encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("manifest encoding not a fixed point")
		}
	})
}
