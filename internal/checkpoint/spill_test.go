package checkpoint

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/bgp"
)

func spillFixture() *bgp.PathSet {
	ps := bgp.NewPathSet(8, 32)
	ps.Append(asgraph.Path{64500, 3356, 174})
	ps.Append(asgraph.Path{64501, 1299})
	ps.Append(asgraph.Path{64502, 6939, 2914, 701})
	return ps
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ps := spillFixture()
	name, err := SpillPaths(dir, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(name)
	if !strings.HasPrefix(name, dir) {
		t.Fatalf("spill landed outside the requested dir: %s", name)
	}
	got, err := LoadSpilledPaths(name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ps.Len() {
		t.Fatalf("restored %d paths, want %d", got.Len(), ps.Len())
	}
	for i := 0; i < ps.Len(); i++ {
		if !reflect.DeepEqual(ps.At(i), got.At(i)) {
			t.Fatalf("path %d: %v vs %v", i, ps.At(i), got.At(i))
		}
	}
}

func TestSpillDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	name, err := SpillPaths(dir, spillFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(name)
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}

	// A payload bit flip must fail the CRC, and a truncated file must
	// fail the length check — the spill is fail-closed like every
	// durable artifact.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(name, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpilledPaths(name); err == nil {
		t.Fatal("bit-flipped spill loaded cleanly")
	}

	if err := os.WriteFile(name, raw[:len(raw)-trailerLen-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpilledPaths(name); err == nil {
		t.Fatal("truncated spill loaded cleanly")
	}
}

func TestSpillFailureLeavesNoScratchFile(t *testing.T) {
	dir := t.TempDir()
	sub := dir + "/missing"
	if _, err := SpillPaths(sub, spillFixture()); err == nil {
		t.Fatal("spilling into a missing directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed spill left debris: %v", ents)
	}
}
