package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsckProblem is one integrity finding: an artifact (or the manifest)
// and what is wrong with it.
type FsckProblem struct {
	Name   string `json:"name"`
	Reason string `json:"reason"`
}

// FsckResult is a read-only integrity report over a store directory.
// Fsck never modifies the store: it flags, the next run quarantines.
type FsckResult struct {
	// OK lists artifacts whose file, trailer and manifest agree.
	OK []string `json:"ok"`
	// Corrupt lists artifacts failing a trailer or manifest check, and
	// the manifest itself when it does not decode.
	Corrupt []FsckProblem `json:"corrupt,omitempty"`
	// Missing lists manifest entries whose file is gone.
	Missing []string `json:"missing,omitempty"`
	// Orphans lists artifact-shaped files the manifest does not know.
	Orphans []string `json:"orphans,omitempty"`
	// Temps lists leftover *.tmp files (an interrupted write; harmless,
	// the store never reads them).
	Temps []string `json:"temps,omitempty"`
	// Quarantined lists files previously moved into quarantine/.
	Quarantined []string `json:"quarantined,omitempty"`
}

// Clean reports whether the store passed: no corruption and no missing
// artifacts. Orphans, temp files and old quarantine evidence are
// informational, not failures.
func (r *FsckResult) Clean() bool {
	return len(r.Corrupt) == 0 && len(r.Missing) == 0
}

// WriteJSON emits the report as indented JSON.
func (r *FsckResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText emits a human-readable report.
func (r *FsckResult) WriteText(w io.Writer) error {
	for _, n := range r.OK {
		fmt.Fprintf(w, "ok        %s\n", n)
	}
	for _, p := range r.Corrupt {
		fmt.Fprintf(w, "corrupt   %s: %s\n", p.Name, p.Reason)
	}
	for _, n := range r.Missing {
		fmt.Fprintf(w, "missing   %s\n", n)
	}
	for _, n := range r.Orphans {
		fmt.Fprintf(w, "orphan    %s\n", n)
	}
	for _, n := range r.Temps {
		fmt.Fprintf(w, "tempfile  %s\n", n)
	}
	for _, n := range r.Quarantined {
		fmt.Fprintf(w, "quarantined %s\n", n)
	}
	if r.Clean() {
		_, err := fmt.Fprintf(w, "store clean: %d artifact(s) verified\n", len(r.OK))
		return err
	}
	_, err := fmt.Fprintf(w, "store NOT clean: %d corrupt, %d missing\n",
		len(r.Corrupt), len(r.Missing))
	return err
}

// Fsck verifies a store directory offline: the manifest decodes, every
// manifest entry's file exists and matches its trailer and manifest
// integrity fields, and nothing unexpected lives in the directory. It
// is the implementation behind breval's -checkpoint-verify flag.
func Fsck(dir string) (*FsckResult, error) {
	res := &FsckResult{OK: []string{}}

	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: fsck: %w", err)
	}
	man, derr := DecodeManifest(raw)
	if derr != nil {
		res.Corrupt = append(res.Corrupt, FsckProblem{Name: manifestFile, Reason: derr.Error()})
		man = newManifest(strings.Repeat("0", 64))
	}

	names := make([]string, 0, len(man.Artifacts))
	for n := range man.Artifacts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		e := man.Artifacts[name]
		fraw, ferr := os.ReadFile(filepath.Join(dir, e.File))
		if errors.Is(ferr, os.ErrNotExist) {
			res.Missing = append(res.Missing, name)
			continue
		}
		if ferr != nil {
			return nil, fmt.Errorf("checkpoint: fsck %s: %w", name, ferr)
		}
		if _, verr := verifyTrailer(fraw, e); verr != nil {
			res.Corrupt = append(res.Corrupt, FsckProblem{Name: name, Reason: verr.Error()})
			continue
		}
		res.OK = append(res.OK, name)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: fsck: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		switch {
		case name == manifestFile:
		case name == lockFile:
			// The owner lock is store infrastructure, not an artifact;
			// a leftover LOCK after a crash is inert (flocks die with
			// their process).
		case name == quarantineDir && de.IsDir():
			qents, qerr := os.ReadDir(filepath.Join(dir, quarantineDir))
			if qerr != nil {
				return nil, fmt.Errorf("checkpoint: fsck: %w", qerr)
			}
			for _, qe := range qents {
				res.Quarantined = append(res.Quarantined, qe.Name())
			}
		case strings.HasSuffix(name, ".tmp"):
			res.Temps = append(res.Temps, name)
		case de.IsDir():
			res.Orphans = append(res.Orphans, name+"/")
		default:
			if _, ok := man.Artifacts[name]; !ok {
				res.Orphans = append(res.Orphans, name)
			}
		}
	}
	sort.Strings(res.Orphans)
	sort.Strings(res.Temps)
	sort.Strings(res.Quarantined)
	return res, nil
}
