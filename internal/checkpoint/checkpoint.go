// Package checkpoint is the pipeline's durable artifact store: a
// crash-safe, checksummed cache of intermediate pipeline products
// (propagated path sets, inferred relationship files, validation
// snapshots) that lets a run resume after a crash instead of
// recomputing everything, while guaranteeing that stale, truncated or
// bit-flipped artifacts are never silently consumed.
//
// Durability and integrity come from three layers:
//
//   - Atomic writes. Every artifact is written to a temp file in the
//     store directory, fsynced, and renamed into place. A crash mid-
//     write leaves only a *.tmp file, which the store never reads.
//
//   - A CRC32C trailer. Every artifact file ends with a fixed trailer
//     (magic, payload length, CRC32C/Castagnoli of the payload).
//     Truncation changes the length, bit flips change the checksum;
//     either way the load fails closed.
//
//   - A versioned manifest keyed by a content hash of the full
//     upstream configuration (seed, topology generator config,
//     scenario knobs, code schema version). A store written under a
//     different configuration or an older code schema is treated as
//     stale, never reused.
//
// A failed load — checksum mismatch, truncation, or decode failure —
// quarantines the artifact (renames it into quarantine/, bumps an obs
// counter, records a resilience.RunReport entry) and reports a miss,
// so the pipeline regenerates the data: graceful degradation, never a
// crash and never silently-bad data. See docs/checkpointing.md.
package checkpoint

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"breval/internal/obs"
	"breval/internal/resilience"
)

// quarantineDir is the sub-directory corrupt artifacts are moved to.
const quarantineDir = "quarantine"

// Trailer framing: magic | payload length (big endian) | CRC32C.
const (
	trailerMagic = "BRC1"
	trailerLen   = 4 + 8 + 4
)

// castagnoli is the CRC32C table (iSCSI/ext4 polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors. Callers match with errors.Is: ErrMiss means the
// artifact is absent or stale (regenerate, nothing was wrong);
// ErrCorrupt means the artifact failed integrity or decode checks and
// has been quarantined (regenerate, and the store kept the evidence).
var (
	ErrMiss    = errors.New("checkpoint: artifact missing or stale")
	ErrCorrupt = errors.New("checkpoint: artifact corrupt (quarantined)")
	// ErrReadOnly rejects writes through a store opened with OpenShared.
	ErrReadOnly = errors.New("checkpoint: store is read-only (opened shared)")
)

// Stats are the store's lifetime counters for one process. They are
// mirrored into obs counters ("checkpoint.*") and embedded in the run
// report (resilience.RunReport.Checkpoint).
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Regenerations int64 `json:"regenerations"`
	Quarantines   int64 `json:"quarantines"`
	Invalidations int64 `json:"invalidations"`
	BytesRead     int64 `json:"bytes_read"`
	BytesWritten  int64 `json:"bytes_written"`
}

// Recorder receives store events as stage-report entries; the pipeline
// passes its resilience.Runner so quarantines and invalidations appear
// in the per-run ledger.
type Recorder interface {
	Record(resilience.StageReport)
}

// Store is a durable artifact store rooted at one directory. It is
// safe for concurrent use: parallel inference stages save their
// artifacts through one store.
type Store struct {
	dir string
	key string

	// Recorder, when set, receives quarantine/invalidation events.
	// Set it before the store is used from multiple goroutines.
	Recorder Recorder

	col *obs.Collector

	// readOnly marks a store opened with OpenShared: it holds the
	// shared flock, serves Gets, and rejects every mutation with
	// ErrReadOnly (including quarantine side effects — a reader never
	// moves a writer's files).
	readOnly bool
	// reclaimed records that acquiring the lock unlinked a stale LOCK
	// file left by a dead owner.
	reclaimed bool

	mu     sync.Mutex
	lock   *os.File // owner flock (exclusive or shared), released by Close
	man    *Manifest
	missed map[string]bool
	stats  Stats
}

// counterNames lists the obs counters the store maintains; all are
// registered at Open so "measured and zero" is visible in exports.
var counterNames = []string{
	"checkpoint.hits", "checkpoint.misses", "checkpoint.regenerations",
	"checkpoint.quarantines", "checkpoint.invalidations",
	"checkpoint.bytes_read", "checkpoint.bytes_written",
	"checkpoint.lock_reclaims",
}

// Open opens (creating if needed) the store at dir for the given key,
// taking an exclusive owner lock: a second live process pointing at
// the same directory fails to open (and should degrade to an uncached
// run) rather than corrupt the manifest with interleaved writes. A
// stale LOCK file whose stamped owner is dead is reclaimed instead of
// refusing forever (see lock.go). An existing manifest written under
// a different key or manifest version is treated as stale and
// replaced with a fresh one; a manifest that fails to decode is
// quarantined. The context supplies the run's obs collector (if any)
// for the checkpoint.* counters. Callers release the lock with Close.
func Open(ctx context.Context, dir string, key Key) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	return open(ctx, dir, key, false)
}

// OpenShared opens an existing store read-only under a shared lock:
// any number of OpenShared readers coexist (with each other, never
// with an exclusive writer), so a server's read-mostly result cache
// can serve concurrent requests from one store. A read-only store
// serves Get and rejects every mutation with ErrReadOnly; integrity
// failures return errors matching ErrCorrupt but quarantine nothing —
// a reader never moves a writer's files. A manifest keyed for a
// different configuration reads as empty (every Get misses).
func OpenShared(ctx context.Context, dir string, key Key) (*Store, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: open shared store: %w", err)
	}
	return open(ctx, dir, key, true)
}

func open(ctx context.Context, dir string, key Key, shared bool) (*Store, error) {
	lock, reclaimed, err := acquireLock(dir, shared)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		key:       key.Hash(),
		col:       obs.From(ctx),
		readOnly:  shared,
		reclaimed: reclaimed,
		lock:      lock,
		missed:    map[string]bool{},
	}
	for _, n := range counterNames {
		s.col.Add(n, 0)
	}
	if reclaimed {
		s.col.Add("checkpoint.lock_reclaims", 1)
	}

	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.man = newManifest(s.key)
	case err != nil:
		s.Close()
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	default:
		man, derr := DecodeManifest(raw)
		switch {
		case derr != nil && s.readOnly:
			// A reader cannot quarantine; it just sees an empty store.
			s.man = newManifest(s.key)
		case derr != nil:
			// A corrupt manifest orphans every artifact: quarantine it
			// and start fresh. The artifact files stay where they are
			// (fsck can still see them) and are overwritten on save.
			s.man = newManifest(s.key)
			s.quarantineFile("manifest", manifestFile, derr)
		case man.Key != s.key:
			s.man = newManifest(s.key)
			if !s.readOnly {
				s.bumpInvalidation("manifest key mismatch (configuration or schema changed)")
			}
		default:
			s.man = man
		}
	}
	return s, nil
}

// ReadOnly reports whether the store was opened with OpenShared.
func (s *Store) ReadOnly() bool { return s.readOnly }

// LockReclaimed reports whether opening the store unlinked a stale
// LOCK file stamped by a dead owner.
func (s *Store) LockReclaimed() bool { return s.reclaimed }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// WorldDigest returns the pinned world digest, if any.
func (s *Store) WorldDigest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.WorldDigest
}

// SetWorldDigest pins the world digest in the manifest.
func (s *Store) SetWorldDigest(digest string) error {
	if s.readOnly {
		return ErrReadOnly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.WorldDigest = digest
	return s.writeManifestLocked()
}

// InvalidateAll drops every artifact from the manifest (files are left
// in place and overwritten on the next save). The pipeline calls it
// when the regenerated world's digest no longer matches the pinned
// one: every downstream artifact is then untrustworthy.
func (s *Store) InvalidateAll(reason string) error {
	if s.readOnly {
		return ErrReadOnly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Artifacts = map[string]Entry{}
	s.man.WorldDigest = ""
	s.bumpInvalidationLocked(reason)
	return s.writeManifestLocked()
}

func (s *Store) bumpInvalidation(reason string) {
	s.mu.Lock()
	s.bumpInvalidationLocked(reason)
	s.mu.Unlock()
}

func (s *Store) bumpInvalidationLocked(reason string) {
	s.stats.Invalidations++
	s.col.Add("checkpoint.invalidations", 1)
	s.event(resilience.StageReport{
		Stage: "checkpoint.invalidate", Status: resilience.StatusSkipped, Note: reason,
	})
}

// event reports a store event to the Recorder, if one is installed.
func (s *Store) event(sr resilience.StageReport) {
	if s.Recorder != nil {
		s.Recorder.Record(sr)
	}
}

// Put writes one artifact atomically: encode streams the payload into
// a temp file, a CRC32C trailer is appended, the file is fsynced and
// renamed into place, and the manifest is updated (also atomically).
// On any failure the temp file is removed — a failed or crashed save
// never leaves a visible artifact behind.
//
// Put honours two fault-injection sites for crash testing (see
// docs/checkpointing.md): the control site "checkpoint.put.<name>"
// fires between payload write and rename (a torn write), and the data
// site "checkpoint.artifact.<name>" receives the final path after
// rename so tests can truncate or bit-flip the just-written file.
func (s *Store) Put(ctx context.Context, name string, meta map[string]string, encode func(io.Writer) error) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if err := validArtifactName(name); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	committed := false
	defer func() {
		if !committed {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}
	if err := encode(cw); err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", name, err)
	}
	if err := resilience.Checkpoint(ctx, "checkpoint.put."+name); err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	var tr [trailerLen]byte
	copy(tr[:4], trailerMagic)
	binary.BigEndian.PutUint64(tr[4:12], uint64(cw.n))
	binary.BigEndian.PutUint32(tr[12:16], cw.sum)
	if _, err := bw.Write(tr[:]); err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	final := filepath.Join(s.dir, name)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", name, err)
	}
	committed = true
	// Data-fault hook: tests corrupt the durable file through the
	// registry, simulating damage between process runs.
	resilience.CorruptAt("checkpoint.artifact."+name, final)

	s.mu.Lock()
	defer s.mu.Unlock()
	var metaCopy map[string]string
	if len(meta) > 0 {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	s.man.Artifacts[name] = Entry{
		File: name,
		Size: cw.n,
		CRC:  fmt.Sprintf("%08x", cw.sum),
		Meta: metaCopy,
	}
	s.stats.BytesWritten += cw.n
	s.col.Add("checkpoint.bytes_written", cw.n)
	if s.missed[name] {
		delete(s.missed, name)
		s.stats.Regenerations++
		s.col.Add("checkpoint.regenerations", 1)
	}
	return s.writeManifestLocked()
}

// Get loads one artifact: it verifies the manifest entry, the trailer
// (magic, length, CRC32C) and the manifest/trailer agreement, then
// hands the payload to decode. A missing or stale artifact returns
// ErrMiss. Any integrity or decode failure quarantines the file and
// returns an error matching ErrCorrupt; the caller regenerates.
func (s *Store) Get(ctx context.Context, name string, decode func(payload io.Reader, meta map[string]string) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	e, ok := s.man.Artifacts[name]
	if !ok {
		s.missLocked(name)
		s.mu.Unlock()
		return fmt.Errorf("checkpoint: get %s: %w", name, ErrMiss)
	}
	s.mu.Unlock()

	raw, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if errors.Is(err, os.ErrNotExist) {
		s.mu.Lock()
		delete(s.man.Artifacts, name)
		s.missLocked(name)
		if !s.readOnly {
			_ = s.writeManifestLocked()
		}
		s.mu.Unlock()
		return fmt.Errorf("checkpoint: get %s: file vanished: %w", name, ErrMiss)
	}
	if err != nil {
		return fmt.Errorf("checkpoint: get %s: %w", name, err)
	}

	payload, verr := verifyTrailer(raw, e)
	if verr != nil {
		return s.quarantine(name, e, verr)
	}
	if err := decode(bytes.NewReader(payload), e.Meta); err != nil {
		return s.quarantine(name, e, fmt.Errorf("decode: %w", err))
	}

	s.mu.Lock()
	s.stats.Hits++
	s.stats.BytesRead += int64(len(payload))
	s.mu.Unlock()
	s.col.Add("checkpoint.hits", 1)
	s.col.Add("checkpoint.bytes_read", int64(len(payload)))
	return nil
}

// missLocked records a cache miss for name. Caller holds mu.
func (s *Store) missLocked(name string) {
	s.missed[name] = true
	s.stats.Misses++
	s.col.Add("checkpoint.misses", 1)
}

// verifyTrailer checks a raw artifact file against its trailer and
// manifest entry, returning the payload on success.
func verifyTrailer(raw []byte, e Entry) ([]byte, error) {
	if len(raw) < trailerLen {
		return nil, fmt.Errorf("file shorter than trailer (%d bytes)", len(raw))
	}
	tr := raw[len(raw)-trailerLen:]
	payload := raw[:len(raw)-trailerLen]
	if string(tr[:4]) != trailerMagic {
		return nil, fmt.Errorf("bad trailer magic %q", tr[:4])
	}
	wantLen := binary.BigEndian.Uint64(tr[4:12])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("payload length %d, trailer says %d (truncated?)", len(payload), wantLen)
	}
	sum := crc32.Checksum(payload, castagnoli)
	if sum != binary.BigEndian.Uint32(tr[12:16]) {
		return nil, fmt.Errorf("crc32c mismatch: file %08x, trailer %08x",
			sum, binary.BigEndian.Uint32(tr[12:16]))
	}
	if e.Size != int64(len(payload)) {
		return nil, fmt.Errorf("payload length %d, manifest says %d", len(payload), e.Size)
	}
	if got := fmt.Sprintf("%08x", sum); got != e.CRC {
		return nil, fmt.Errorf("crc32c %s, manifest says %s", got, e.CRC)
	}
	return payload, nil
}

// quarantine moves a corrupt artifact into quarantine/, drops its
// manifest entry, and reports the event. The returned error matches
// ErrCorrupt. A read-only store only drops its in-memory entry —
// evidence preservation is the writing owner's job.
func (s *Store) quarantine(name string, e Entry, reason error) error {
	s.mu.Lock()
	delete(s.man.Artifacts, name)
	s.missLocked(name)
	if !s.readOnly {
		_ = s.writeManifestLocked()
	}
	s.mu.Unlock()
	if !s.readOnly {
		s.quarantineFile(name, e.File, reason)
	}
	return fmt.Errorf("checkpoint: get %s: %v: %w", name, reason, ErrCorrupt)
}

// quarantineFile performs the move + accounting shared by artifact and
// manifest quarantines.
func (s *Store) quarantineFile(name, file string, reason error) {
	qdir := filepath.Join(s.dir, quarantineDir)
	_ = os.MkdirAll(qdir, 0o755)
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", file, time.Now().UnixNano()))
	if err := os.Rename(filepath.Join(s.dir, file), dst); err != nil {
		// The evidence could not be preserved (e.g. the file vanished);
		// the artifact is still treated as corrupt and regenerated.
		dst = ""
	}
	s.mu.Lock()
	s.stats.Quarantines++
	s.mu.Unlock()
	s.col.Add("checkpoint.quarantines", 1)
	note := fmt.Sprintf("%v", reason)
	if dst != "" {
		note += " (moved to " + filepath.Join(quarantineDir, filepath.Base(dst)) + ")"
	}
	s.event(resilience.StageReport{
		Stage: "checkpoint." + name, Status: resilience.StatusQuarantined, Note: note,
	})
}

// writeManifestLocked persists the manifest atomically. Caller holds mu.
func (s *Store) writeManifestLocked() error {
	b, err := s.man.encode()
	if err != nil {
		return fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	return nil
}

// crcWriter counts and checksums the payload as it streams out.
type crcWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}
