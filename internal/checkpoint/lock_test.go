package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

// TestStoreOwnerLock is the concurrent-resume regression test: two
// stores over the same directory would interleave last-writer-wins
// manifest writes and silently drop each other's artifacts, so the
// second Open must fail while the first owner lives, and succeed
// again once the owner closes.
func TestStoreOwnerLock(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)

	s1 := openTest(t, dir, key)
	putBytes(t, s1, "blob", []byte("owned"))

	// Second open while the lock is held: refused, naming the owner.
	_, err := Open(t.Context(), dir, key)
	if err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if !strings.Contains(err.Error(), "owned by another live process") ||
		!strings.Contains(err.Error(), strconv.Itoa(os.Getpid())) {
		t.Fatalf("lock error does not name the owner: %v", err)
	}

	// The owner stamp is diagnostics, not the guard: check it anyway.
	b, rerr := os.ReadFile(filepath.Join(dir, lockFile))
	if rerr != nil || strings.TrimSpace(string(b)) != strconv.Itoa(os.Getpid()) {
		t.Fatalf("LOCK stamp = %q, %v; want this pid", b, rerr)
	}

	// Close releases ownership; a successor opens and sees the data.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	s2 := openTest(t, dir, key)
	defer s2.Close()
	if got, gerr := getBytes(s2, "blob"); gerr != nil || string(got) != "owned" {
		t.Fatalf("successor store get: %q, %v", got, gerr)
	}
}

// TestFsckIgnoresLockFile: the owner lock is store infrastructure; a
// leftover LOCK (flocks die with their process) must not show up as
// an orphan or fail fsck.
func TestFsckIgnoresLockFile(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testKey(1))
	putBytes(t, s, "blob", []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockFile)); err != nil {
		t.Fatalf("no LOCK file after open/close: %v", err)
	}
	res, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("store with LOCK not clean: %+v", res)
	}
	for _, o := range res.Orphans {
		if o == lockFile {
			t.Fatal("LOCK reported as orphan")
		}
	}
}

// TestOpenSharedReaders: the shared-read/exclusive-write relaxation.
// Concurrent readers coexist and see the writer's data, reject every
// mutation, and exclude (and are excluded by) a live writer.
func TestOpenSharedReaders(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)

	w := openTest(t, dir, key)
	putBytes(t, w, "blob", []byte("shared"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r1, err := OpenShared(t.Context(), dir, key)
	if err != nil {
		t.Fatalf("first shared open: %v", err)
	}
	defer r1.Close()
	r2, err := OpenShared(t.Context(), dir, key)
	if err != nil {
		t.Fatalf("second concurrent shared open: %v", err)
	}
	defer r2.Close()
	for i, r := range []*Store{r1, r2} {
		if !r.ReadOnly() {
			t.Errorf("reader %d not marked read-only", i+1)
		}
		if got, gerr := getBytes(r, "blob"); gerr != nil || string(got) != "shared" {
			t.Errorf("reader %d get: %q, %v", i+1, got, gerr)
		}
	}

	// Mutations through a reader are rejected, not silently dropped.
	if err := r1.Put(t.Context(), "x", nil, func(w2 io.Writer) error {
		_, werr := w2.Write([]byte("y"))
		return werr
	}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put on reader: %v, want ErrReadOnly", err)
	}
	if err := r1.SetWorldDigest("00"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("SetWorldDigest on reader: %v, want ErrReadOnly", err)
	}
	if err := r1.InvalidateAll("nope"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("InvalidateAll on reader: %v, want ErrReadOnly", err)
	}

	// A writer cannot open while readers hold the lock...
	if _, werr := Open(t.Context(), dir, key); !errors.Is(werr, errLockHeld) {
		t.Fatalf("writer open under live readers: %v, want errLockHeld", werr)
	}
	// ...and once the readers close, it can, and readers are then
	// excluded by the live writer.
	r1.Close()
	r2.Close()
	w2 := openTest(t, dir, key)
	defer w2.Close()
	if _, rerr := OpenShared(t.Context(), dir, key); !errors.Is(rerr, errLockHeld) {
		t.Fatalf("shared open under live writer: %v, want errLockHeld", rerr)
	}
}

// TestOpenSharedMissingStore: a reader of a store that does not exist
// fails fast instead of creating an empty directory.
func TestOpenSharedMissingStore(t *testing.T) {
	if _, err := OpenShared(t.Context(), filepath.Join(t.TempDir(), "nope"), testKey(1)); err == nil {
		t.Fatal("shared open of a missing store succeeded")
	}
}

// deadPID returns a pid that provably belonged to an exited process.
func deadPID(t *testing.T) int {
	t.Helper()
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Fatal(err)
	}
	pid := cmd.Process.Pid
	if pidAlive(pid) {
		t.Skipf("pid %d still alive after reap", pid)
	}
	return pid
}

// TestStaleLockReclaim is the stale-lock regression test: a LOCK file
// whose exclusive flock outlived its stamped (now dead) owner used to
// be refused forever, degrading every later run to uncached. Open
// must detect the dead owner, reclaim the lock, and serve the cached
// data.
func TestStaleLockReclaim(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)

	s := openTest(t, dir, key)
	putBytes(t, s, "blob", []byte("survives"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fake the stale state: hold an exclusive flock on LOCK from a
	// separate descriptor (standing in for a holder whose flock
	// persisted) while the stamp names a dead pid.
	path := filepath.Join(dir, lockFile)
	stale, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if err := syscall.Flock(int(stale.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(fmt.Sprintf("%d\n", deadPID(t))), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(t.Context(), dir, key)
	if err != nil {
		t.Fatalf("open over stale lock: %v (want reclaim)", err)
	}
	defer s2.Close()
	if !s2.LockReclaimed() {
		t.Error("store does not report the lock reclaim")
	}
	if got, gerr := getBytes(s2, "blob"); gerr != nil || string(got) != "survives" {
		t.Fatalf("cached data after reclaim: %q, %v", got, gerr)
	}

	// A live stamped owner is still a hard refusal: restamp with our
	// own (live) pid while holding the flock.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	stale2, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		syscall.Flock(int(stale2.Fd()), syscall.LOCK_UN)
		stale2.Close()
	}()
	if err := syscall.Flock(int(stale2.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.Context(), dir, key); !errors.Is(err, errLockHeld) {
		t.Fatalf("open under live owner: %v, want errLockHeld", err)
	}
}
