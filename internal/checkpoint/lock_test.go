package checkpoint

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestStoreOwnerLock is the concurrent-resume regression test: two
// stores over the same directory would interleave last-writer-wins
// manifest writes and silently drop each other's artifacts, so the
// second Open must fail while the first owner lives, and succeed
// again once the owner closes.
func TestStoreOwnerLock(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)

	s1 := openTest(t, dir, key)
	putBytes(t, s1, "blob", []byte("owned"))

	// Second open while the lock is held: refused, naming the owner.
	_, err := Open(t.Context(), dir, key)
	if err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if !strings.Contains(err.Error(), "owned by another live process") ||
		!strings.Contains(err.Error(), strconv.Itoa(os.Getpid())) {
		t.Fatalf("lock error does not name the owner: %v", err)
	}

	// The owner stamp is diagnostics, not the guard: check it anyway.
	b, rerr := os.ReadFile(filepath.Join(dir, lockFile))
	if rerr != nil || strings.TrimSpace(string(b)) != strconv.Itoa(os.Getpid()) {
		t.Fatalf("LOCK stamp = %q, %v; want this pid", b, rerr)
	}

	// Close releases ownership; a successor opens and sees the data.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	s2 := openTest(t, dir, key)
	defer s2.Close()
	if got, gerr := getBytes(s2, "blob"); gerr != nil || string(got) != "owned" {
		t.Fatalf("successor store get: %q, %v", got, gerr)
	}
}

// TestFsckIgnoresLockFile: the owner lock is store infrastructure; a
// leftover LOCK (flocks die with their process) must not show up as
// an orphan or fail fsck.
func TestFsckIgnoresLockFile(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testKey(1))
	putBytes(t, s, "blob", []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockFile)); err != nil {
		t.Fatalf("no LOCK file after open/close: %v", err)
	}
	res, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("store with LOCK not clean: %+v", res)
	}
	for _, o := range res.Orphans {
		if o == lockFile {
			t.Fatal("LOCK reported as orphan")
		}
	}
}
