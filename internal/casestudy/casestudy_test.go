package casestudy

import (
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/inference/features"
	"breval/internal/validation"
)

// glass is a test looking glass backed by a plain graph.
type glass struct{ g *asgraph.Graph }

func (gl glass) PartialTransit(t1, x asn.ASN) bool {
	r, ok := gl.g.Rel(t1, x)
	return ok && r.Type == asgraph.P2C && r.Provider == t1 && r.PartialTransit
}

func (gl glass) TrueRelType(a, b asn.ASN) (asgraph.RelType, bool) {
	r, ok := gl.g.Rel(a, b)
	return r.Type, ok
}

// fixture: clique {1,2,3}; 1 has partial customers 20, 21 (validated
// P2C, inferred P2P), one true peer 22 with a wrong P2C validation
// label, and a normal customer 23; 2 has one partial customer 30.
func fixture(t *testing.T) (*inference.Result, *validation.Snapshot, *features.Set, glass) {
	t.Helper()
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())
	g.MustSetRel(1, 3, asgraph.P2PRel())
	g.MustSetRel(2, 3, asgraph.P2PRel())
	for _, c := range []asn.ASN{20, 21} {
		g.MustSetRel(1, c, asgraph.Rel{Type: asgraph.P2C, Provider: 1, PartialTransit: true})
	}
	g.MustSetRel(1, 22, asgraph.P2PRel())
	g.MustSetRel(1, 23, asgraph.P2CRel(1))
	g.MustSetRel(2, 30, asgraph.Rel{Type: asgraph.P2C, Provider: 2, PartialTransit: true})
	// Give the transit ASes customers so they have transit degree.
	for i, tr := range []asn.ASN{20, 21, 22, 23, 30} {
		g.MustSetRel(tr, asn.ASN(100+i), asgraph.P2CRel(tr))
	}

	pred := inference.NewResult("ASRank", 8)
	pred.Clique = []asn.ASN{1, 2, 3}
	pred.Set(asgraph.NewLink(1, 20), asgraph.P2PRel()) // wrong
	pred.Set(asgraph.NewLink(1, 21), asgraph.P2PRel()) // wrong
	pred.Set(asgraph.NewLink(1, 22), asgraph.P2PRel()) // right, but validation says P2C
	pred.Set(asgraph.NewLink(1, 23), asgraph.P2CRel(1))
	pred.Set(asgraph.NewLink(2, 30), asgraph.P2PRel()) // wrong

	truth := validation.NewSnapshot()
	truth.Add(asgraph.NewLink(1, 20), validation.Label{Type: asgraph.P2C, Provider: 1})
	truth.Add(asgraph.NewLink(1, 21), validation.Label{Type: asgraph.P2C, Provider: 1})
	truth.Add(asgraph.NewLink(1, 22), validation.Label{Type: asgraph.P2C, Provider: 1}) // inaccurate
	truth.Add(asgraph.NewLink(1, 23), validation.Label{Type: asgraph.P2C, Provider: 1})
	truth.Add(asgraph.NewLink(2, 30), validation.Label{Type: asgraph.P2C, Provider: 2})

	// Paths: normal customer 23 has a clique triplet (2|1|23); the
	// partial customers appear only below 1.
	ps := bgp.NewPathSet(8, 64)
	ps.Append(asgraph.Path{2, 1, 23, 103})
	ps.Append(asgraph.Path{23, 1, 20, 100})
	ps.Append(asgraph.Path{23, 1, 21, 101})
	ps.Append(asgraph.Path{23, 1, 22, 102})
	ps.Append(asgraph.Path{30, 2, 1, 23})
	ps.Append(asgraph.Path{2, 30, 104}) // 30 in transit position
	fs := features.Compute(ps)
	return pred, truth, fs, glass{g}
}

func TestAnalyze(t *testing.T) {
	pred, truth, fs, lg := fixture(t)
	rep := Analyze(pred, truth, fs, lg)

	if rep.WrongP2P != 4 {
		t.Errorf("WrongP2P = %d, want 4", rep.WrongP2P)
	}
	if rep.Focus != 1 || rep.FocusCount != 3 {
		t.Errorf("Focus = %d (%d links), want AS1 with 3", rep.Focus, rep.FocusCount)
	}
	if len(rep.Targets) != 3 {
		t.Fatalf("targets = %v", rep.Targets)
	}
	for _, tl := range rep.Targets {
		if tl.HasCliqueTriplet {
			t.Errorf("target %v has a clique triplet; it should not", tl.Link)
		}
		if tl.Tier1 != 1 {
			t.Errorf("target %v attributed to %d", tl.Link, tl.Tier1)
		}
	}
	if rep.ByCause[CausePartialTransit] != 2 {
		t.Errorf("partial-transit causes = %d, want 2", rep.ByCause[CausePartialTransit])
	}
	if rep.ByCause[CauseInaccurateValidation] != 1 {
		t.Errorf("inaccurate-validation causes = %d, want 1", rep.ByCause[CauseInaccurateValidation])
	}
}

func TestAnalyzeTripletDetection(t *testing.T) {
	pred, truth, _, lg := fixture(t)
	// Add a path that DOES provide a clique triplet for 1-20: the
	// analysis must flag it.
	ps := bgp.NewPathSet(2, 16)
	ps.Append(asgraph.Path{3, 1, 20, 100})
	ps.Append(asgraph.Path{23, 1, 21, 101})
	fs := features.Compute(ps)
	rep := Analyze(pred, truth, fs, lg)
	found := false
	for _, tl := range rep.Targets {
		if tl.Link == asgraph.NewLink(1, 20) {
			found = true
			if !tl.HasCliqueTriplet {
				t.Error("clique triplet 3|1|20 not detected")
			}
		}
	}
	if !found {
		t.Fatal("target 1-20 missing")
	}
}

func TestAnalyzeNilLookingGlass(t *testing.T) {
	pred, truth, fs, _ := fixture(t)
	rep := Analyze(pred, truth, fs, nil)
	if rep.ByCause[CauseOther] != len(rep.Targets) {
		t.Errorf("without a looking glass all causes must be other: %v", rep.ByCause)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	pred := inference.NewResult("x", 0)
	rep := Analyze(pred, validation.NewSnapshot(), features.Compute(bgp.NewPathSet(0, 0)), nil)
	if rep.WrongP2P != 0 || rep.FocusCount != 0 || len(rep.Targets) != 0 {
		t.Errorf("empty analysis: %+v", rep)
	}
}

func TestCauseString(t *testing.T) {
	if CausePartialTransit.String() != "partial-transit" ||
		CauseInaccurateValidation.String() != "inaccurate-validation" ||
		CauseOther.String() != "other" {
		t.Error("cause names wrong")
	}
}

func TestAllTargetsCoverEveryT1(t *testing.T) {
	pred, truth, fs, lg := fixture(t)
	rep := Analyze(pred, truth, fs, lg)
	if len(rep.AllTargets) != rep.WrongP2P {
		t.Errorf("AllTargets = %d, want %d", len(rep.AllTargets), rep.WrongP2P)
	}
	t1s := map[asn.ASN]bool{}
	for _, tl := range rep.AllTargets {
		t1s[tl.Tier1] = true
	}
	if !t1s[1] || !t1s[2] {
		t.Errorf("AllTargets misses a Tier-1: %v", t1s)
	}
}

func TestReclassify(t *testing.T) {
	pred, truth, fs, lg := fixture(t)
	rep := Analyze(pred, truth, fs, lg)
	fixed := Reclassify(pred, rep)
	if fixed.Len() != pred.Len() {
		t.Fatalf("result size changed: %d vs %d", fixed.Len(), pred.Len())
	}
	// Partial-transit targets become P2C with the Tier-1 as provider.
	for _, l := range []asgraph.Link{asgraph.NewLink(1, 20), asgraph.NewLink(1, 21), asgraph.NewLink(2, 30)} {
		rel, ok := fixed.Rel(l)
		if !ok || rel.Type != asgraph.P2C || !rel.PartialTransit {
			t.Errorf("%v not reclassified: %v %v", l, rel, ok)
		}
	}
	// The inaccurate-validation link stays P2P (the inference was right).
	if rel, _ := fixed.Rel(asgraph.NewLink(1, 22)); rel.Type != asgraph.P2P {
		t.Errorf("1-22 flipped although validation was wrong: %v", rel)
	}
	// The original is untouched.
	if rel, _ := pred.Rel(asgraph.NewLink(1, 20)); rel.Type != asgraph.P2P {
		t.Error("Reclassify mutated its input")
	}
	if fixed.Name != "ASRank+LG" {
		t.Errorf("Name = %q", fixed.Name)
	}
}
