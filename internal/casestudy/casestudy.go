// Package casestudy reproduces §6.1 of Prehn & Feldmann (IMC'21): the
// AS714 (Cogent) analysis of Tier-1-to-transit links that an inference
// wrongly classifies as P2P although the validation data says P2C.
//
// The study proceeds exactly like the paper:
//
//  1. Find the "target links": validated-P2C, inferred-P2P links
//     between the inferred clique and transit ASes, and identify the
//     Tier-1 involved in most of them (the AS714 stand-in).
//  2. Verify algorithmic cause: no observed path contains a triplet
//     C|T1|X with C another clique member — the evidence ASRank would
//     need for a P2C inference.
//  3. Explain the routing cause via the "looking glass": the
//     customer's routes carry a no-export-to-peers community at the
//     provider (partial transit), or the validation data itself is
//     wrong (stale community documentation).
package casestudy

import (
	"context"
	"runtime"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/inference"
	"breval/internal/inference/features"
	"breval/internal/intern"
	"breval/internal/validation"
)

// Cause classifies why a target link was wrongly inferred (or wrongly
// validated).
type Cause uint8

// Causes surfaced by the looking-glass analysis.
const (
	// CausePartialTransit: the link is P2C with a no-export-to-peers
	// arrangement, hiding the clique triplets (the paper's majority
	// case).
	CausePartialTransit Cause = iota
	// CauseInaccurateValidation: the link is really P2P; the
	// community-derived validation label is wrong (1 case in the
	// paper).
	CauseInaccurateValidation
	// CauseOther: neither explanation applies (e.g. visibility
	// artifacts).
	CauseOther
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CausePartialTransit:
		return "partial-transit"
	case CauseInaccurateValidation:
		return "inaccurate-validation"
	}
	return "other"
}

// TargetLink is one wrongly-inferred link with its diagnosis.
type TargetLink struct {
	Link asgraph.Link
	// Tier1 is the clique endpoint.
	Tier1 asn.ASN
	// HasCliqueTriplet reports whether any path contains C|T1|X with C
	// another clique member — expected false for all target links.
	HasCliqueTriplet bool
	Cause            Cause
}

// Report is the full §6.1 analysis.
type Report struct {
	// WrongP2P is the total number of validated-P2C links between
	// clique and transit ASes that the algorithm inferred as P2P
	// (the paper's 111).
	WrongP2P int
	// Focus is the Tier-1 involved in most wrong links (AS714's
	// stand-in) and FocusCount its number of wrong links (54 in the
	// paper).
	Focus      asn.ASN
	FocusCount int
	// Targets describes the focus AS's wrong links.
	Targets []TargetLink
	// AllTargets describes every wrong link (all clique members),
	// diagnosed the same way; Targets is its focus-AS subset.
	AllTargets []TargetLink
	// ByCause counts the diagnosed causes over the focus targets.
	ByCause map[Cause]int
}

// LookingGlass answers "does the route from customer X at provider T1
// carry a no-export-to-peers community, and what is the relationship
// really?". In a real deployment this queries the operator's looking
// glass; here it is answered from the simulator's ground truth, which
// plays that role.
type LookingGlass interface {
	// PartialTransit reports whether t1 treats x as a partial-transit
	// customer (routes tagged no-export-to-peers).
	PartialTransit(t1, x asn.ASN) bool
	// TrueRelType returns the actual relationship type of the link.
	TrueRelType(a, b asn.ASN) (asgraph.RelType, bool)
}

// Analyze runs the case study for the given inference.
func Analyze(res *inference.Result, truth *validation.Snapshot, fs *features.Set, lg LookingGlass) Report {
	rep := Report{ByCause: make(map[Cause]int)}
	cliqueSet := make(map[asn.ASN]bool, len(res.Clique))
	for _, c := range res.Clique {
		cliqueSet[c] = true
	}

	// Step 1: wrong-P2P links per clique member.
	perT1 := make(map[asn.ASN][]asgraph.Link)
	truth.ForEach(func(l asgraph.Link, lbs []validation.Label) {
		if len(lbs) != 1 || lbs[0].Type != asgraph.P2C {
			return
		}
		var t1 asn.ASN
		switch {
		case cliqueSet[l.A] && !cliqueSet[l.B]:
			t1 = l.A
		case cliqueSet[l.B] && !cliqueSet[l.A]:
			t1 = l.B
		default:
			return
		}
		// Transit counterpart only (the T1-TR class).
		if fs.TransitDegreeOf(l.Other(t1)) == 0 {
			return
		}
		p, ok := res.Rel(l)
		if !ok || p.Type != asgraph.P2P {
			return
		}
		rep.WrongP2P++
		perT1[t1] = append(perT1[t1], l)
	})

	for t1, links := range perT1 {
		if len(links) > rep.FocusCount ||
			(len(links) == rep.FocusCount && t1 < rep.Focus) {
			rep.Focus = t1
			rep.FocusCount = len(links)
		}
	}
	if rep.FocusCount == 0 {
		return rep
	}

	// Step 2: clique-triplet search for the focus AS's target links.
	targets := perT1[rep.Focus]
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].A != targets[j].A {
			return targets[i].A < targets[j].A
		}
		return targets[i].B < targets[j].B
	})
	// The triplet search runs over the dense hop encoding: link
	// membership tests become bitset probes on interned link IDs.
	tab, d := fs.Intern, fs.Dense
	targetSet := intern.NewLinkSet(tab)
	for _, l := range targets {
		if lid, ok := tab.LinkID(l); ok {
			targetSet.Add(lid)
		}
	}
	inClique := make([]bool, tab.NumAS())
	for _, c := range res.Clique {
		if id, ok := tab.ASID(c); ok {
			inClique[id] = true
		}
	}
	// The scan streams the dense paths block by block into per-worker
	// link bitsets; bitwise-or merging is commutative, so the union is
	// schedule-independent. A failed streamed scan (a worker panic)
	// falls back to one serial pass.
	hasTriplet := intern.NewLinkSet(tab)
	if fid, ok := tab.ASID(rep.Focus); ok {
		scanBlock := func(out intern.LinkSet, lo, hi int) {
			for i := lo; i < hi; i++ {
				hops := d.Hops(i)
				for j := 0; j+1 < len(hops); j++ {
					left, mid, right := d.Triplet(hops[j], hops[j+1])
					if mid != fid {
						continue
					}
					lid1, _ := intern.DecodeHop(hops[j])   // link mid-left
					lid2, _ := intern.DecodeHop(hops[j+1]) // link mid-right
					if inClique[left] && targetSet.Has(lid2) {
						out.Add(lid2)
					}
					if inClique[right] && targetSet.Has(lid1) {
						out.Add(lid1)
					}
				}
			}
		}
		workers := runtime.GOMAXPROCS(0)
		blockPaths := d.Len() / (workers * 4)
		if blockPaths < 4096 {
			blockPaths = 4096
		}
		shards := make([]intern.LinkSet, workers)
		err := fs.ScanBlocks(context.Background(), "casestudy.triplets.scan",
			workers, blockPaths, func(_ context.Context, w, _, lo, hi int) error {
				if shards[w] == nil {
					shards[w] = intern.NewLinkSet(tab)
				}
				scanBlock(shards[w], lo, hi)
				return nil
			})
		if err != nil {
			scanBlock(hasTriplet, 0, d.Len())
		} else {
			for _, sh := range shards {
				if sh != nil {
					intern.Bitset(hasTriplet).Or(intern.Bitset(sh))
				}
			}
		}
	}
	withTriplet := func(l asgraph.Link) bool {
		lid, ok := tab.LinkID(l)
		return ok && hasTriplet.Has(lid)
	}

	// Step 3: looking-glass diagnosis, for the focus AS's targets and
	// for every other clique member's wrong links.
	diagnose := func(t1 asn.ASN, l asgraph.Link, withTriplet bool) TargetLink {
		t := TargetLink{Link: l, Tier1: t1, HasCliqueTriplet: withTriplet}
		x := l.Other(t1)
		switch {
		case lg != nil && lg.PartialTransit(t1, x):
			t.Cause = CausePartialTransit
		case lg != nil && trueTypeIs(lg, l, asgraph.P2P):
			t.Cause = CauseInaccurateValidation
		default:
			t.Cause = CauseOther
		}
		return t
	}
	for _, l := range targets {
		t := diagnose(rep.Focus, l, withTriplet(l))
		rep.ByCause[t.Cause]++
		rep.Targets = append(rep.Targets, t)
	}
	t1s := make([]asn.ASN, 0, len(perT1))
	for t1 := range perT1 {
		t1s = append(t1s, t1)
	}
	sort.Slice(t1s, func(i, j int) bool { return t1s[i] < t1s[j] })
	for _, t1 := range t1s {
		links := perT1[t1]
		sort.Slice(links, func(i, j int) bool {
			if links[i].A != links[j].A {
				return links[i].A < links[j].A
			}
			return links[i].B < links[j].B
		})
		for _, l := range links {
			rep.AllTargets = append(rep.AllTargets, diagnose(t1, l, withTriplet(l)))
		}
	}
	return rep
}

// Reclassify applies the looking-glass diagnosis back to the
// inference, the improvement §6 says is still available to future
// classification efforts: every wrong-P2P link whose cause is partial
// transit becomes a P2C (with the partial-transit attribute), and
// links whose validation label was found inaccurate stay P2P. The
// input result is not modified.
func Reclassify(res *inference.Result, rep Report) *inference.Result {
	out := inference.NewResult(res.Name+"+LG", res.Len())
	out.Clique = res.Clique
	for l, rel := range res.Rels {
		out.Set(l, rel)
	}
	for _, t := range rep.AllTargets {
		if t.Cause != CausePartialTransit {
			continue
		}
		out.Set(t.Link, asgraph.Rel{
			Type:           asgraph.P2C,
			Provider:       t.Tier1,
			PartialTransit: true,
		})
	}
	return out
}

func trueTypeIs(lg LookingGlass, l asgraph.Link, want asgraph.RelType) bool {
	got, ok := lg.TrueRelType(l.A, l.B)
	return ok && got == want
}
