package asn

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpecialASNs(t *testing.T) {
	cases := []struct {
		n        ASN
		reserved bool
	}{
		{Zero, true},
		{Trans, true},
		{Last16, true},
		{Max, true},
		{Doc16First, true},
		{Doc16Last, true},
		{Doc32First, true},
		{Doc32Last, true},
		{Private16First, true},
		{Private16Last, true},
		{Private32First, true},
		{Private32Last, true},
		{1, false},
		{3356, false},
		{714, false},
		{23455, false},
		{23457, false},
		{64495, false},      // just below documentation range
		{65552, false},      // just above 32-bit documentation range
		{4199999999, false}, // just below 32-bit private range
	}
	for _, c := range cases {
		if got := c.n.IsReserved(); got != c.reserved {
			t.Errorf("ASN(%d).IsReserved() = %v, want %v", c.n, got, c.reserved)
		}
	}
}

func TestIsTrans(t *testing.T) {
	if !Trans.IsTrans() {
		t.Error("Trans.IsTrans() = false")
	}
	if ASN(3356).IsTrans() {
		t.Error("3356.IsTrans() = true")
	}
}

func TestIs16Bit(t *testing.T) {
	if !ASN(65535).Is16Bit() {
		t.Error("65535 should be 16-bit")
	}
	if ASN(65536).Is16Bit() {
		t.Error("65536 should not be 16-bit")
	}
}

func TestParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want ASN
		ok   bool
	}{
		{"3356", 3356, true},
		{"AS3356", 3356, true},
		{"as714", 714, true},
		{"0", 0, true},
		{"4294967295", Max, true},
		{"4294967296", 0, false},
		{"-1", 0, false},
		{"", 0, false},
		{"AS", 0, false},
		{"1.0", 65536, true}, // asdot (RFC 5396)
		{"AS1.5698", 1<<16 + 5698, true},
		{"1.70000", 0, false}, // asdot low word overflow
		{"70000.1", 0, false}, // asdot high word overflow
	} {
		got, err := Parse(c.in)
		if (err == nil) != c.ok {
			t.Errorf("Parse(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		got, err := Parse(ASN(n).String())
		return err == nil && got == ASN(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAuthority(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Authority
	}{
		{"Assigned by ARIN", AuthARIN},
		{"Assigned by RIPE NCC", AuthRIPE},
		{"Assigned by APNIC", AuthAPNIC},
		{"Assigned by LACNIC", AuthLACNIC},
		{"Assigned by AFRINIC", AuthAFRINIC},
		{"Reserved by IANA", AuthIANA},
		{"AS_TRANS; reserved by IANA", AuthIANA},
		{"Unallocated", AuthIANA},
		{"something else", AuthUnknown},
	} {
		if got := ParseAuthority(c.in); got != c.want {
			t.Errorf("ParseAuthority(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry([]Block{
		{First: 1, Last: 1876, Authority: AuthARIN},
		{First: 1877, Last: 1901, Authority: AuthRIPE},
		{First: 2043, Last: 2043, Authority: AuthRIPE},
		{First: 23456, Last: 23456, Authority: AuthIANA, Description: "AS_TRANS; reserved by IANA"},
		{First: 131072, Last: 132095, Authority: AuthAPNIC},
	})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return r
}

func TestRegistryLookup(t *testing.T) {
	r := testRegistry(t)
	for _, c := range []struct {
		n    ASN
		want Authority
	}{
		{1, AuthARIN},
		{1876, AuthARIN},
		{1877, AuthRIPE},
		{2043, AuthRIPE},
		{2044, AuthUnknown},
		{23456, AuthIANA},
		{131072, AuthAPNIC},
		{132095, AuthAPNIC},
		{132096, AuthUnknown},
	} {
		if got := r.Authority(c.n); got != c.want {
			t.Errorf("Authority(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestRegistryRejectsOverlap(t *testing.T) {
	_, err := NewRegistry([]Block{
		{First: 1, Last: 100, Authority: AuthARIN},
		{First: 100, Last: 200, Authority: AuthRIPE},
	})
	if err == nil {
		t.Fatal("NewRegistry accepted overlapping blocks")
	}
}

func TestRegistryRejectsInvertedRange(t *testing.T) {
	_, err := NewRegistry([]Block{{First: 100, Last: 1, Authority: AuthARIN}})
	if err == nil {
		t.Fatal("NewRegistry accepted an inverted range")
	}
}

func TestRegistrySerializationRoundTrip(t *testing.T) {
	r := testRegistry(t)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ParseRegistry(&buf)
	if err != nil {
		t.Fatalf("ParseRegistry: %v", err)
	}
	if got.Len() != r.Len() {
		t.Fatalf("round trip: got %d blocks, want %d", got.Len(), r.Len())
	}
	for i, b := range got.Blocks() {
		want := r.Blocks()[i]
		if b.First != want.First || b.Last != want.Last || b.Authority != want.Authority {
			t.Errorf("block %d: got %+v, want %+v", i, b, want)
		}
	}
}

func TestParseRegistryRealWorldFragment(t *testing.T) {
	// A fragment copied (in structure) from IANA's as-numbers.csv,
	// with a trailing column ParseRegistry must tolerate.
	const in = `Number,Description
# comment line
1-1876,Assigned by ARIN
1877-1901,Assigned by RIPE NCC
23456,AS_TRANS; reserved by IANA

64496-64511,Reserved for use in documentation and sample code
`
	r, err := ParseRegistry(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseRegistry: %v", err)
	}
	if r.Len() != 4 {
		t.Fatalf("got %d blocks, want 4", r.Len())
	}
	if got := r.Authority(23456); got != AuthIANA {
		t.Errorf("Authority(23456) = %v, want IANA", got)
	}
	if got := r.Authority(1900); got != AuthRIPE {
		t.Errorf("Authority(1900) = %v, want RIPE", got)
	}
}

func TestParseRegistryErrors(t *testing.T) {
	for _, in := range []string{
		"garbage line without comma\n",
		"5-2,inverted range\n",
		"abc,not a number\n",
	} {
		if _, err := ParseRegistry(strings.NewReader(in)); err == nil {
			t.Errorf("ParseRegistry(%q) succeeded, want error", in)
		}
	}
}

func TestAuthorityString(t *testing.T) {
	if AuthRIPE.String() != "RIPE NCC" {
		t.Errorf("AuthRIPE.String() = %q", AuthRIPE.String())
	}
	if got := Authority(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown authority String() = %q", got)
	}
}

func TestAsdot(t *testing.T) {
	if got := ASN(3356).Asdot(); got != "3356" {
		t.Errorf("Asdot(3356) = %q", got)
	}
	if got := ASN(1<<16 + 5698).Asdot(); got != "1.5698" {
		t.Errorf("Asdot = %q, want 1.5698", got)
	}
	// Round trip through asdot.
	a := ASN(393216)
	got, err := Parse(a.Asdot())
	if err != nil || got != a {
		t.Errorf("asdot round trip: %v %v", got, err)
	}
}
